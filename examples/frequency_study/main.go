// Frequency study: walk the DVFS clock ladder and find the
// energy-optimal operating point. Memory-bound codes barely slow down at
// reduced clocks — the cores wait for DRAM either way — so their minimum
// energy sits at the bottom of the ladder. Compute-bound codes lose wall
// time linearly with clock, and with a 40-50% idle power floor the lost
// time costs more baseline energy than the voltage drop saves:
// race-to-idle, minimum energy at full clock.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/spechpc/spechpc-sim/internal/analysis"
	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/units"
)

func main() {
	a := machine.MustGet("ClusterA")
	engine := campaign.New(0)

	// One ccNUMA domain, full DVFS ladder (800 MHz .. 2.4 GHz on the Ice
	// Lake system), one memory-bound and one compute-bound kernel. The
	// engine fans the clock points across host cores.
	ranks := a.CPU.CoresPerDomain()
	fmt.Printf("%s DVFS ladder: %s .. %s in %s steps, %d ranks (one domain)\n\n",
		a.Name,
		units.Frequency(a.CPU.DVFS.MinHz), units.Frequency(a.CPU.DVFS.MaxHz),
		units.Frequency(a.CPU.DVFS.StepHz), ranks)

	plot := report.NewPlot("Energy vs core clock on one ClusterA domain (tiny)",
		"clock GHz", "energy J")
	for _, name := range []string{"pot3d", "sph-exa"} {
		results, err := engine.FrequencySweep(spec.RunSpec{
			Benchmark: name, Class: bench.Tiny, Cluster: a, Ranks: ranks,
		}, nil) // nil = the cluster's full ladder
		if err != nil {
			log.Fatal(err)
		}
		pts := analysis.ClockPoints(results)
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i] = p.ClockHz / 1e9
			ys[i] = p.Energy
		}
		plot.Add(name, xs, ys)

		minE := pts[analysis.MinEnergyClock(pts)]
		base := pts[len(pts)-1] // last ladder point = the pinned base clock
		fmt.Printf("%-8s min energy at %s: %s (%.1f%% below base clock), wall %+.1f%%\n",
			name, units.Frequency(minE.ClockHz), units.Energy(minE.Energy),
			100*(1-minE.Energy/base.Energy), 100*(minE.Wall/base.Wall-1))
	}
	fmt.Println()
	if err := plot.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("pot3d saturates the domain's DRAM bandwidth: lowering the clock is")
	fmt.Println("nearly free in time and saves dynamic power. sph-exa runs out of the")
	fmt.Println("cores: every MHz lost is wall time and baseline energy — race to idle.")
}
