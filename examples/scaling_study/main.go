// Scaling study: reproduce the paper's core node-level finding — memory-
// bound codes saturate within a ccNUMA domain while compute-bound codes
// scale — and classify multi-node behaviour into the paper's cases A-D.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/spechpc/spechpc-sim/internal/analysis"
	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

func main() {
	a := machine.MustGet("ClusterA")
	// The campaign engine runs each sweep's points in parallel across
	// host cores and memoizes every job.
	engine := campaign.New(0)

	// Node level: pot3d (strongly memory-bound) vs sph-exa (compute
	// bound) across one node of ClusterA.
	points := []int{1, 2, 4, 9, 18, 36, 54, 72}
	plot := report.NewPlot("Node-level speedup on ClusterA (tiny)", "ranks", "speedup")
	for _, name := range []string{"pot3d", "sph-exa"} {
		results, err := engine.Sweep(spec.RunSpec{
			Benchmark: name, Class: bench.Tiny, Cluster: a,
		}, points)
		if err != nil {
			log.Fatal(err)
		}
		pts := analysis.Points(results)
		sp := analysis.Speedup(pts)
		xs := make([]float64, len(pts))
		for i, p := range pts {
			xs[i] = p.Ranks
		}
		plot.Add(name, xs, sp)
		eff, _ := analysis.DomainEfficiency(pts, 18, 72)
		fmt.Printf("%-8s domain-baseline parallel efficiency: %.0f%%\n", name, eff)
	}
	if err := plot.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Multi-node: classify three representative codes into the paper's
	// scaling cases using the small suite.
	fmt.Println("Multi-node scaling cases (small suite, ClusterA):")
	for _, name := range []string{"pot3d", "cloverleaf", "soma"} {
		results, err := engine.Sweep(spec.RunSpec{
			Benchmark: name, Class: bench.Small, Cluster: a,
			Options: bench.Options{SimSteps: 1},
		}, []int{72, 144, 288, 576})
		if err != nil {
			log.Fatal(err)
		}
		c := analysis.Classify(analysis.Points(results))
		fmt.Printf("  %-11s -> case %s\n", name, c)
	}
}
