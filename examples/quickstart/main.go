// Quickstart: run one simulated SPEChpc benchmark and read its verified
// metrics — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite" // register all nine kernels
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/units"
)

func main() {
	// Clusters are resolved by name from the machine registry; the
	// campaign engine executes jobs (in parallel for batches) and
	// memoizes every result.
	clusterA := machine.MustGet("ClusterA")
	engine := campaign.New(0) // 0 = one worker per host core

	// Run tealeaf's tiny workload on one ccNUMA domain (18 cores) of the
	// Ice Lake cluster. The harness verifies the solver's checks (CG
	// residual reduction) and extrapolates the simulated iterations to
	// the full Table 1 workload.
	outs := engine.Run([]spec.RunSpec{{
		Benchmark: "tealeaf",
		Class:     bench.Tiny,
		Cluster:   clusterA,
		Ranks:     18,
	}})
	if outs[0].Err != nil {
		log.Fatal(outs[0].Err)
	}
	res := outs[0].Result

	u := res.Usage
	fmt.Println("tealeaf tiny on ClusterA, one ccNUMA domain (18 ranks)")
	fmt.Println("  wall time:        ", units.Seconds(u.Wall))
	fmt.Println("  performance:      ", units.FlopRate(u.PerfFlops()))
	fmt.Println("  memory bandwidth: ", units.Bandwidth(u.MemBandwidth()),
		"(domain saturates at", units.Bandwidth(clusterA.CPU.MemSaturatedPerDomain), "- memory bound)")
	fmt.Println("  chip power:       ", units.Power(u.ChipPower()))
	fmt.Println("  total energy:     ", units.Energy(u.TotalEnergy()))
	fmt.Println("  MPI time share:   ", fmt.Sprintf("%.1f%%", 100*u.MPIFraction()))
	for _, c := range res.Report.Checks {
		fmt.Printf("  check %-32s %.3g (ok=%v)\n", c.Name+":", c.Value, c.OK)
	}
}
