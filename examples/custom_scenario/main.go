// A declarative scenario executed programmatically: load the scenario
// file next to this program, run it through the planner on a persistent
// store, and report how much of the study the cache served. The same
// file runs without any Go via
// `go run ./cmd/figures -scenario examples/custom_scenario/scenario.json`.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite" // register all nine kernels
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/scenario"
)

func main() {
	sc, err := scenario.LoadFile(filepath.Join("examples", "custom_scenario", "scenario.json"))
	if err != nil {
		fail(err)
	}

	// A persistent store makes the study incremental: re-running after
	// editing one sweep only simulates the new jobs.
	cacheDir := filepath.Join(os.TempDir(), "spechpc-sim-cache")
	store, err := campaign.NewDirStore(cacheDir)
	if err != nil {
		fail(err)
	}
	p := &scenario.Planner{Engine: campaign.NewWithStore(0, store)}

	fmt.Printf("scenario %s: %s\n\n", sc.Name, sc.Title)
	if err := p.Execute(sc, os.Stdout, ""); err != nil {
		fail(err)
	}
	st := p.Engine.Stats()
	fmt.Printf("campaign: %d jobs, %d simulated fresh, %d from the store at %s\n",
		st.Jobs, st.Misses, st.StoreHits, cacheDir)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "custom_scenario:", err)
	os.Exit(1)
}
