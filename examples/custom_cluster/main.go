// Custom cluster: the machine model is parametric, so "what if" studies
// beyond the paper's two systems take a dozen lines. Here we sketch a
// hypothetical next-generation node (HBM-class bandwidth, lower idle
// power) and ask which workloads would benefit — extending the paper's
// Sect. 4.3 energy comparison.
package main

import (
	"fmt"
	"log"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/units"
	"os"
)

// hypotheticalClusterC models a node with 2.5x the memory bandwidth of
// Sapphire Rapids (HBM-class) and a lower idle floor.
func hypotheticalClusterC() *machine.ClusterSpec {
	cs := machine.ClusterB()
	cs.Name = "ClusterC (hypothetical HBM node)"
	cs.CPU.Name = "hypothetical HBM CPU"
	cs.CPU.MemTheoreticalPerDomain *= 2.5
	cs.CPU.MemSaturatedPerDomain *= 2.5
	cs.CPU.MemPerCoreMax *= 2
	cs.CPU.BasePowerPerSocket = 120 // better idle management
	cs.CPU.DRAMEnergyPerByte *= 0.6 // HBM pJ/bit advantage
	if err := cs.Validate(); err != nil {
		log.Fatal(err)
	}
	return cs
}

func main() {
	clusters := []*machine.ClusterSpec{
		machine.ClusterA(),
		machine.ClusterB(),
		hypotheticalClusterC(),
	}
	t := report.NewTable(
		"Full-node wall time and energy: memory-bound (pot3d) vs compute-bound (sph-exa)",
		"cluster", "pot3d wall", "pot3d energy", "sph-exa wall", "sph-exa energy")
	for _, cs := range clusters {
		cells := []string{cs.Name}
		for _, name := range []string{"pot3d", "sph-exa"} {
			res, err := spec.Run(spec.RunSpec{
				Benchmark: name, Class: bench.Tiny, Cluster: cs,
				Ranks: cs.CPU.CoresPerNode(),
			})
			if err != nil {
				log.Fatal(err)
			}
			cells = append(cells, units.Seconds(res.Usage.Wall),
				units.Energy(res.Usage.TotalEnergy()))
		}
		t.AddRow(cells...)
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("The HBM node pays off for the memory-bound code; the compute-bound")
	fmt.Println("code sees no speedup but benefits from the lower idle floor.")
}
