// Custom cluster: the machine model is parametric and clusters live in a
// named registry, so "what if" studies beyond the paper's two systems
// take a dozen lines. Here we register a hypothetical next-generation
// node (HBM-class bandwidth, lower idle power) under its own name and ask
// which workloads would benefit — extending the paper's Sect. 4.3 energy
// comparison. Every consumer of the registry (including cmd/figures
// -clusters and cmd/spechpc -cluster) can resolve the new system by name
// without code changes.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// hypotheticalClusterC models a node with 2.5x the memory bandwidth of
// Sapphire Rapids (HBM-class) and a lower idle floor.
func hypotheticalClusterC() *machine.ClusterSpec {
	cs := machine.MustGet("ClusterB")
	cs.Name = "ClusterC"
	cs.CPU.Name = "hypothetical HBM CPU"
	cs.CPU.MemTheoreticalPerDomain *= 2.5
	cs.CPU.MemSaturatedPerDomain *= 2.5
	cs.CPU.MemPerCoreMax *= 2
	cs.CPU.BasePowerPerSocket = 120 // better idle management
	cs.CPU.DRAMEnergyPerByte *= 0.6 // HBM pJ/bit advantage
	return cs
}

func main() {
	// Register validates the spec and makes "ClusterC" resolvable
	// everywhere clusters are looked up by name.
	machine.Register("ClusterC", hypotheticalClusterC)

	// Build the full campaign (3 clusters x 2 kernels) as one batch; the
	// engine runs the jobs in parallel across host cores.
	clusters := machine.All()
	kernels := []string{"pot3d", "sph-exa"}
	var jobs []spec.RunSpec
	for _, cs := range clusters {
		for _, name := range kernels {
			jobs = append(jobs, spec.RunSpec{
				Benchmark: name, Class: bench.Tiny, Cluster: cs,
				Ranks: cs.CPU.CoresPerNode(),
			})
		}
	}
	outs := campaign.New(0).Run(jobs)

	t := report.NewTable(
		"Full-node wall time and energy: memory-bound (pot3d) vs compute-bound (sph-exa)",
		"cluster", "pot3d wall", "pot3d energy", "sph-exa wall", "sph-exa energy")
	i := 0
	for _, cs := range clusters {
		cells := []string{fmt.Sprintf("%s (%s)", cs.Name, cs.CPU.Name)}
		for range kernels {
			o := outs[i]
			i++
			if o.Err != nil {
				log.Fatal(o.Err)
			}
			cells = append(cells, units.Seconds(o.Result.Usage.Wall),
				units.Energy(o.Result.Usage.TotalEnergy()))
		}
		t.AddRow(cells...)
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("The HBM node pays off for the memory-bound code; the compute-bound")
	fmt.Println("code sees no speedup but benefits from the lower idle floor.")
}
