// Tracing: reproduce the paper's ITAC-style diagnosis of the minisweep
// serialization bug (Sect. 4.1.5). At 59 ranks the 2D sweep decomposition
// degenerates to a 1x59 chain; blocking rendezvous sends resolve serially
// and MPI_Recv waiting dominates. At 64 ranks (8x8) the pipeline is
// healthy.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

func main() {
	a := machine.MustGet("ClusterA")
	t := report.NewTable("minisweep global time shares (tiny, ClusterA)",
		"ranks", "compute %", "MPI_Recv %", "MPI_Send %", "wall s")
	var walls []float64
	for _, n := range []int{58, 59, 64} {
		res, err := spec.Run(spec.RunSpec{
			Benchmark: "minisweep", Class: bench.Tiny, Cluster: a, Ranks: n,
			Options: bench.Options{SimSteps: 1},
		})
		if err != nil {
			log.Fatal(err)
		}
		rec := res.Trace
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", 100*rec.GlobalFraction(trace.KindCompute)),
			fmt.Sprintf("%.1f", 100*rec.GlobalFraction(trace.KindRecv)),
			fmt.Sprintf("%.1f", 100*rec.GlobalFraction(trace.KindSend)),
			fmt.Sprintf("%.2f", res.Usage.Wall))
		walls = append(walls, res.Usage.Wall)
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("59 ranks run %.1fx slower than 58 — the paper reports a 75%%\n", walls[1]/walls[0])
	fmt.Println("performance drop from 58 to 59 processes caused by exactly this effect.")

	// Per-rank timeline excerpt (the inset of Fig. 2g): first ranks of
	// the 59-rank chain, attributed per state.
	res, err := spec.Run(spec.RunSpec{
		Benchmark: "minisweep", Class: bench.Tiny, Cluster: a, Ranks: 59,
		Options: bench.Options{SimSteps: 1}, KeepTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	tt := report.NewTable("Per-rank breakdown at 59 ranks (chain serialization)",
		"rank", "compute %", "MPI_Recv %", "MPI_Send %")
	for _, rank := range []int{0, 14, 29, 44, 58} {
		tt.AddRow(fmt.Sprintf("%d", rank),
			fmt.Sprintf("%.1f", 100*res.Trace.Fraction(rank, trace.KindCompute)),
			fmt.Sprintf("%.1f", 100*res.Trace.Fraction(rank, trace.KindRecv)),
			fmt.Sprintf("%.1f", 100*res.Trace.Fraction(rank, trace.KindSend)))
	}
	if err := tt.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
