// Energy study: the paper's race-to-idle finding. On CPUs whose idle
// power is 40-50% of TDP, the minimum-energy and minimum-EDP operating
// points coincide at the fastest configuration — idling cores saves
// almost nothing, making code speed the primary energy lever.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/spechpc/spechpc-sim/internal/analysis"
	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/units"
)

func main() {
	engine := campaign.New(0)
	// machine.All returns every registered cluster — the paper's two
	// systems here, plus anything added via machine.Register.
	for _, cluster := range machine.All() {
		fmt.Printf("=== %s (%s)\n", cluster.Name, cluster.CPU.Name)
		fmt.Printf("baseline %s of %s TDP per socket\n",
			units.Power(cluster.CPU.BasePowerPerSocket), units.Power(cluster.CPU.TDPPerSocket))

		// Sweep pot3d (memory-bound) over one ccNUMA domain and build
		// the paper's Z-plot: energy vs speedup.
		points := spec.DomainPoints(cluster)
		results, err := engine.Sweep(spec.RunSpec{
			Benchmark: "pot3d", Class: bench.Tiny, Cluster: cluster,
		}, points)
		if err != nil {
			log.Fatal(err)
		}
		z := analysis.ZPlot(analysis.Points(results))

		plot := report.NewPlot(
			fmt.Sprintf("Z-plot: pot3d total energy vs speedup on one %s domain", cluster.Name),
			"speedup", "energy J")
		xs := make([]float64, len(z))
		ys := make([]float64, len(z))
		for i, p := range z {
			xs[i] = p.Speedup
			ys[i] = p.Energy
		}
		plot.Add("pot3d", xs, ys)
		if err := plot.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}

		minE := z[analysis.MinEnergyPoint(z)]
		minEDP := z[analysis.MinEDPPoint(z)]
		fmt.Printf("minimum energy at %2.0f ranks (%.3g J); minimum EDP at %2.0f ranks\n",
			minE.Ranks, minE.Energy, minEDP.Ranks)
		if minE.Ranks == minEDP.Ranks {
			fmt.Println("-> E and EDP minima coincide: race-to-idle (the paper's conclusion)")
		} else {
			fmt.Println("-> E and EDP minima nearly coincide")
		}
		fmt.Println()
	}
}
