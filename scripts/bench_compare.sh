#!/usr/bin/env bash
# bench_compare.sh — benchmark regression gate for the simulator hot path.
#
# Records the sim/mpi microbenchmarks as a flat JSON file and compares a
# fresh run against the checked-in baseline, failing on throughput
# regressions beyond the tolerance. CI runs `compare` on every push;
# refresh BENCH_baseline.json with `record` after intentional changes.
#
# Usage:
#   scripts/bench_compare.sh record  [out.json]       # default BENCH_baseline.json
#   scripts/bench_compare.sh compare [baseline.json]  # default BENCH_baseline.json
#   scripts/bench_compare.sh fig5    [out.json]       # headline macro benchmark -> BENCH_pr3.json
#
# Environment:
#   BENCH_TOLERANCE_PCT  allowed metric growth before compare fails (default 20)
#   BENCH_COUNT          repetitions per benchmark; the minimum is kept (default 3)
#   BENCH_TIME           -benchtime passed to go test (default 200x)
#   BENCH_METRIC         ns_op (default) or allocs_op. Timings are only
#                        comparable on the machine that recorded the
#                        baseline — CI records its own baseline from the
#                        parent commit on the same runner. allocs_op is
#                        hardware-independent and suits cross-machine
#                        comparison against the checked-in baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-compare}"
TOL="${BENCH_TOLERANCE_PCT:-20}"
COUNT="${BENCH_COUNT:-3}"
BENCHTIME="${BENCH_TIME:-200x}"
METRIC="${BENCH_METRIC:-ns_op}"
MICRO_PKGS="./internal/sim ./internal/mpi"

# run_benches <packages> <bench regex> <benchtime> <count>
# Emits flat JSON: one line per benchmark, minimum ns/op (and its
# B/op / allocs/op) across repetitions.
run_benches() {
    local pkgs="$1" regex="$2" benchtime="$3" count="$4"
    # shellcheck disable=SC2086
    go test -run '^$' -bench "$regex" -benchtime "$benchtime" -count "$count" -benchmem $pkgs |
        awk '
            $1 ~ /^Benchmark/ && $4 == "ns/op" {
                name = $1
                sub(/-[0-9]+$/, "", name)      # strip -cpus suffix
                ns = $3 + 0
                if (!(name in best) || ns < best[name]) {
                    best[name] = ns
                    bytes[name] = $5 + 0
                    allocs[name] = $7 + 0
                }
                if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
            }
            END {
                if (n == 0) { print "bench_compare: no benchmark output parsed" > "/dev/stderr"; exit 1 }
                print "{"
                for (i = 1; i <= n; i++) {
                    name = order[i]
                    printf "  \"%s\": {\"ns_op\": %.1f, \"bytes_op\": %d, \"allocs_op\": %d}%s\n", \
                        name, best[name], bytes[name], allocs[name], (i < n ? "," : "")
                }
                print "}"
            }'
}

case "$MODE" in
record)
    OUT="${2:-BENCH_baseline.json}"
    run_benches "$MICRO_PKGS" . "$BENCHTIME" "$COUNT" > "$OUT"
    echo "bench_compare: recorded $(grep -c ns_op "$OUT") benchmarks to $OUT"
    ;;
fig5)
    OUT="${2:-BENCH_pr3.json}"
    run_benches "." 'BenchmarkFig5MultiNode' 1x 1 > "$OUT"
    echo "bench_compare: recorded headline macro benchmark to $OUT"
    ;;
compare)
    BASE="${2:-BENCH_baseline.json}"
    [ -f "$BASE" ] || { echo "bench_compare: missing baseline $BASE (run: $0 record)"; exit 1; }
    CUR="$(mktemp)"
    trap 'rm -f "$CUR"' EXIT
    run_benches "$MICRO_PKGS" . "$BENCHTIME" "$COUNT" > "$CUR"
    awk -v tol="$TOL" -v metric="$METRIC" '
        # Flat one-entry-per-line JSON: "Name": {"ns_op": N, ...}
        function parse(line, arr,    name, pat, off) {
            if (match(line, /"Benchmark[^"]*"/) == 0) return ""
            name = substr(line, RSTART + 1, RLENGTH - 2)
            pat = "\"" metric "\": [0-9.]+"
            off = length(metric) + 4
            if (match(line, pat) == 0) return ""
            arr[name] = substr(line, RSTART + off, RLENGTH - off) + 0
            return name
        }
        NR == FNR { parse($0, base); next }
        { n = parse($0, cur); if (n != "") { order[++cnt] = n } }
        END {
            status = 0
            printf "%-32s %14s %14s %9s   (metric: %s)\n", "benchmark", "baseline", "current", "delta", metric
            for (i = 1; i <= cnt; i++) {
                name = order[i]
                if (!(name in base)) {
                    printf "%-32s %14s %14.1f %9s\n", name, "-", cur[name], "new"
                    continue
                }
                if (base[name] == 0) {
                    # Zero baselines (e.g. allocs_op 0) cannot grow by a
                    # percentage: any nonzero current value is a regression.
                    flag = (cur[name] > 0) ? "  << REGRESSION" : ""
                    if (flag != "") status = 1
                    printf "%-32s %14.1f %14.1f %9s%s\n", name, base[name], cur[name], "-", flag
                    delete base[name]
                    continue
                }
                delta = 100 * (cur[name] - base[name]) / base[name]
                flag = ""
                if (delta > tol) { flag = "  << REGRESSION"; status = 1 }
                printf "%-32s %14.1f %14.1f %+8.1f%%%s\n", name, base[name], cur[name], delta, flag
                delete base[name]
            }
            for (name in base) {
                printf "%-32s %14.1f %14s %9s  << MISSING\n", name, base[name], "-", "-"
                status = 1
            }
            if (status) {
                printf "bench_compare: FAIL — throughput regressed beyond %s%% (or benchmarks disappeared)\n", tol
            } else {
                printf "bench_compare: OK (tolerance %s%%)\n", tol
            }
            exit status
        }' "$BASE" "$CUR"
    ;;
*)
    echo "usage: $0 {record|compare|fig5} [file.json]" >&2
    exit 2
    ;;
esac
