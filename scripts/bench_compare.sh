#!/usr/bin/env bash
# bench_compare.sh — statistical benchmark regression gate for the
# simulator hot path.
#
# Benchmarks are recorded as standard Go benchmark output (benchfmt:
# exactly what `go test -bench -count N` prints), N samples per
# benchmark, and compared with cmd/benchgate: a Mann-Whitney U test over
# the samples per benchmark (the benchstat methodology), failing only on
# shifts that are both statistically significant and beyond the growth
# allowance. This replaces the single-run 20% threshold from PR 3, which
# became noise-limited once the remaining deltas got small.
#
# Usage:
#   scripts/bench_compare.sh record  [out.bench]       # default bench/baseline.bench
#   scripts/bench_compare.sh compare [baseline.bench]  # gate fresh samples against a baseline
#   scripts/bench_compare.sh fig5    [out.bench]       # headline macro benchmark samples
#   scripts/bench_compare.sh workers [out.bench]       # worker + window-mode scaling sweep (lbm, pot3d, compute-heavy) + tables
#   scripts/bench_compare.sh json    <in.bench> [out]  # benchfmt -> flat JSON means (stdout default)
#
# Environment:
#   BENCH_COUNT          samples per benchmark (default 6; the gate wants >= 5)
#   BENCH_TIME           -benchtime per sample (default 200x)
#   BENCH_METRIC         ns/op (default) or allocs/op. Timings are only
#                        comparable on the machine that recorded the
#                        baseline — CI records its own baseline from the
#                        parent commit on the same runner. allocs/op is
#                        deterministic and suits cross-machine comparison
#                        against the checked-in bench/baseline.bench.
#   BENCH_ALPHA          significance level (default 0.05)
#   BENCH_MAX_GROWTH_PCT allowed metric growth before a significant shift
#                        fails the gate (default 10)
#   BENCH_MIN_COUNT      required samples per side (default 5; 0 disables)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-compare}"
COUNT="${BENCH_COUNT:-6}"
BENCHTIME="${BENCH_TIME:-200x}"
METRIC="${BENCH_METRIC:-ns/op}"
ALPHA="${BENCH_ALPHA:-0.05}"
MAX_GROWTH="${BENCH_MAX_GROWTH_PCT:-10}"
MIN_COUNT="${BENCH_MIN_COUNT:-5}"
MICRO_PKGS="./internal/sim ./internal/mpi ./internal/surrogate"

# Accept the legacy metric spellings the PR 3 gate used.
case "$METRIC" in
ns_op) METRIC="ns/op" ;;
allocs_op) METRIC="allocs/op" ;;
esac

# run_benches <packages> <bench regex> <benchtime> <count>
# Emits raw benchfmt on stdout; non-result lines (goos/pkg headers,
# PASS) ride along harmlessly — the parser skips them.
run_benches() {
    local pkgs="$1" regex="$2" benchtime="$3" count="$4"
    # shellcheck disable=SC2086
    go test -run '^$' -bench "$regex" -benchtime "$benchtime" -count "$count" -benchmem $pkgs
}

count_benches() {
    grep -c '^Benchmark' "$1" || true
}

case "$MODE" in
record)
    OUT="${2:-bench/baseline.bench}"
    mkdir -p "$(dirname "$OUT")"
    run_benches "$MICRO_PKGS" . "$BENCHTIME" "$COUNT" > "$OUT"
    echo "bench_compare: recorded $(count_benches "$OUT") samples ($COUNT per benchmark) to $OUT"
    ;;
fig5)
    OUT="${2:-bench/fig5.bench}"
    mkdir -p "$(dirname "$OUT")"
    # The macro benchmark regenerates all of Fig. 5 per iteration, so one
    # iteration per sample and fewer samples keep the runtime sane.
    run_benches "." '^BenchmarkFig5MultiNode$' 1x "${BENCH_COUNT:-5}" > "$OUT"
    echo "bench_compare: recorded $(count_benches "$OUT") headline macro samples to $OUT"
    ;;
workers)
    # Sweep the partitioned-engine worker ladder on three multi-node
    # jobs — communication-heavy lbm (Fig5), compute-bound pot3d, and
    # the compute-heavy staggered-flow job the adaptive window targets —
    # and print a scaling table per job (mean ns/op, speedup vs the
    # serial engine). Results are byte-identical at every worker count
    # and window mode, so the sweep isolates execution strategy. With
    # BENCH_MIN_SPEEDUP set, additionally gate workers=8 vs serial on
    # the two kernel jobs via benchgate -assert (as the CI psim gate
    # does); with BENCH_MIN_ADAPTIVE set, gate adaptive workers=8 vs
    # static windows at workers=8 on the compute-heavy job (the CI
    # adaptive gate).
    OUT="${2:-bench/workers.bench}"
    mkdir -p "$(dirname "$OUT")"
    run_benches "." '^Benchmark(Fig5|Pot3d|ComputeHeavy)MultiNodeJob$' 1x "$COUNT" > "$OUT"
    echo "bench_compare: recorded $(count_benches "$OUT") worker-sweep samples to $OUT"
    awk '
        /^Benchmark(Fig5|Pot3d|ComputeHeavy)MultiNodeJob\// {
            name = $1; sub(/-[0-9]+$/, "", name)
            sub(/^Benchmark/, "", name); sub(/MultiNodeJob\//, "/", name)
            split(name, p, "/"); job = p[1]; eng = p[2]
            sum[name] += $3; n[name]++
            if (!(job in jseen)) { jseen[job] = 1; jorder[++jk] = job }
            if (!(eng in eseen)) { eseen[eng] = 1; eorder[++ek] = eng }
        }
        END {
            for (j = 1; j <= jk; j++) {
                job = jorder[j]
                if (!((job "/serial") in sum)) { printf "bench_compare: no serial samples for %s\n", job; exit 1 }
                base = sum[job "/serial"] / n[job "/serial"]
                printf "%s\n%-18s %14s %10s\n", job, "engine", "mean ns/op", "speedup"
                for (e = 1; e <= ek; e++) {
                    name = job "/" eorder[e]
                    if (!(name in sum)) continue
                    mean = sum[name] / n[name]
                    printf "%-18s %14.0f %9.2fx\n", eorder[e], mean, base / mean
                }
            }
        }' "$OUT"
    if [ -n "${BENCH_MIN_SPEEDUP:-}" ]; then
        for JOB in Fig5 Pot3d; do
            go run ./cmd/benchgate -assert "$OUT" \
                -faster "${JOB}MultiNodeJob/workers=8" -slower "${JOB}MultiNodeJob/serial" \
                -min-speedup "$BENCH_MIN_SPEEDUP" -alpha "$ALPHA" -min-count "$MIN_COUNT"
        done
    fi
    if [ -n "${BENCH_MIN_ADAPTIVE:-}" ]; then
        go run ./cmd/benchgate -assert "$OUT" \
            -faster 'ComputeHeavyMultiNodeJob/workers=8' -slower 'ComputeHeavyMultiNodeJob/static-workers=8' \
            -min-speedup "$BENCH_MIN_ADAPTIVE" -alpha "$ALPHA" -min-count "$MIN_COUNT"
    fi
    ;;
json)
    IN="${2:?usage: $0 json <in.bench> [out.json]}"
    if [ $# -ge 3 ]; then
        go run ./cmd/benchgate -summarize "$IN" > "$3"
        echo "bench_compare: summarized $IN to $3"
    else
        go run ./cmd/benchgate -summarize "$IN"
    fi
    ;;
compare)
    BASE="${2:-bench/baseline.bench}"
    [ -f "$BASE" ] || { echo "bench_compare: missing baseline $BASE (run: $0 record)"; exit 1; }
    CUR="$(mktemp)"
    trap 'rm -f "$CUR"' EXIT
    run_benches "$MICRO_PKGS" . "$BENCHTIME" "$COUNT" > "$CUR"
    go run ./cmd/benchgate -old "$BASE" -new "$CUR" \
        -metric "$METRIC" -alpha "$ALPHA" -max-growth "$MAX_GROWTH" -min-count "$MIN_COUNT"
    ;;
*)
    echo "usage: $0 {record|compare|fig5|workers|json} [file]" >&2
    exit 2
    ;;
esac
