#!/usr/bin/env bash
# bench_compare.sh — statistical benchmark regression gate for the
# simulator hot path.
#
# Benchmarks are recorded as standard Go benchmark output (benchfmt:
# exactly what `go test -bench -count N` prints), N samples per
# benchmark, and compared with cmd/benchgate: a Mann-Whitney U test over
# the samples per benchmark (the benchstat methodology), failing only on
# shifts that are both statistically significant and beyond the growth
# allowance. This replaces the single-run 20% threshold from PR 3, which
# became noise-limited once the remaining deltas got small.
#
# Usage:
#   scripts/bench_compare.sh record  [out.bench]       # default bench/baseline.bench
#   scripts/bench_compare.sh compare [baseline.bench]  # gate fresh samples against a baseline
#   scripts/bench_compare.sh fig5    [out.bench]       # headline macro benchmark samples
#   scripts/bench_compare.sh workers [out.bench]       # -sim-workers 1/2/4/8 scaling sweep + table
#   scripts/bench_compare.sh json    <in.bench> [out]  # benchfmt -> flat JSON means (stdout default)
#
# Environment:
#   BENCH_COUNT          samples per benchmark (default 6; the gate wants >= 5)
#   BENCH_TIME           -benchtime per sample (default 200x)
#   BENCH_METRIC         ns/op (default) or allocs/op. Timings are only
#                        comparable on the machine that recorded the
#                        baseline — CI records its own baseline from the
#                        parent commit on the same runner. allocs/op is
#                        deterministic and suits cross-machine comparison
#                        against the checked-in bench/baseline.bench.
#   BENCH_ALPHA          significance level (default 0.05)
#   BENCH_MAX_GROWTH_PCT allowed metric growth before a significant shift
#                        fails the gate (default 10)
#   BENCH_MIN_COUNT      required samples per side (default 5; 0 disables)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-compare}"
COUNT="${BENCH_COUNT:-6}"
BENCHTIME="${BENCH_TIME:-200x}"
METRIC="${BENCH_METRIC:-ns/op}"
ALPHA="${BENCH_ALPHA:-0.05}"
MAX_GROWTH="${BENCH_MAX_GROWTH_PCT:-10}"
MIN_COUNT="${BENCH_MIN_COUNT:-5}"
MICRO_PKGS="./internal/sim ./internal/mpi ./internal/surrogate"

# Accept the legacy metric spellings the PR 3 gate used.
case "$METRIC" in
ns_op) METRIC="ns/op" ;;
allocs_op) METRIC="allocs/op" ;;
esac

# run_benches <packages> <bench regex> <benchtime> <count>
# Emits raw benchfmt on stdout; non-result lines (goos/pkg headers,
# PASS) ride along harmlessly — the parser skips them.
run_benches() {
    local pkgs="$1" regex="$2" benchtime="$3" count="$4"
    # shellcheck disable=SC2086
    go test -run '^$' -bench "$regex" -benchtime "$benchtime" -count "$count" -benchmem $pkgs
}

count_benches() {
    grep -c '^Benchmark' "$1" || true
}

case "$MODE" in
record)
    OUT="${2:-bench/baseline.bench}"
    mkdir -p "$(dirname "$OUT")"
    run_benches "$MICRO_PKGS" . "$BENCHTIME" "$COUNT" > "$OUT"
    echo "bench_compare: recorded $(count_benches "$OUT") samples ($COUNT per benchmark) to $OUT"
    ;;
fig5)
    OUT="${2:-bench/fig5.bench}"
    mkdir -p "$(dirname "$OUT")"
    # The macro benchmark regenerates all of Fig. 5 per iteration, so one
    # iteration per sample and fewer samples keep the runtime sane.
    run_benches "." '^BenchmarkFig5MultiNode$' 1x "${BENCH_COUNT:-5}" > "$OUT"
    echo "bench_compare: recorded $(count_benches "$OUT") headline macro samples to $OUT"
    ;;
workers)
    # Sweep the partitioned-engine worker ladder on one Fig.5-class
    # multi-node job and print a scaling table (mean ns/op, speedup vs
    # the serial engine). Results are byte-identical at every worker
    # count, so the sweep isolates execution strategy. With
    # BENCH_MIN_SPEEDUP set, additionally gate workers=8 vs serial via
    # benchgate -assert (as the CI psim gate does).
    OUT="${2:-bench/workers.bench}"
    mkdir -p "$(dirname "$OUT")"
    run_benches "." '^BenchmarkFig5MultiNodeJob$' 1x "$COUNT" > "$OUT"
    echo "bench_compare: recorded $(count_benches "$OUT") worker-sweep samples to $OUT"
    awk '
        /^BenchmarkFig5MultiNodeJob\// {
            name = $1; sub(/-[0-9]+$/, "", name); sub(/^BenchmarkFig5MultiNodeJob\//, "", name)
            sum[name] += $3; n[name]++
            if (!(name in seen)) { seen[name] = 1; order[++k] = name }
        }
        END {
            if (!("serial" in sum)) { print "bench_compare: no serial samples"; exit 1 }
            base = sum["serial"] / n["serial"]
            printf "%-12s %14s %10s\n", "engine", "mean ns/op", "speedup"
            for (i = 1; i <= k; i++) {
                name = order[i]; mean = sum[name] / n[name]
                printf "%-12s %14.0f %9.2fx\n", name, mean, base / mean
            }
        }' "$OUT"
    if [ -n "${BENCH_MIN_SPEEDUP:-}" ]; then
        go run ./cmd/benchgate -assert "$OUT" \
            -faster 'Fig5MultiNodeJob/workers=8' -slower 'Fig5MultiNodeJob/serial' \
            -min-speedup "$BENCH_MIN_SPEEDUP" -alpha "$ALPHA" -min-count "$MIN_COUNT"
    fi
    ;;
json)
    IN="${2:?usage: $0 json <in.bench> [out.json]}"
    if [ $# -ge 3 ]; then
        go run ./cmd/benchgate -summarize "$IN" > "$3"
        echo "bench_compare: summarized $IN to $3"
    else
        go run ./cmd/benchgate -summarize "$IN"
    fi
    ;;
compare)
    BASE="${2:-bench/baseline.bench}"
    [ -f "$BASE" ] || { echo "bench_compare: missing baseline $BASE (run: $0 record)"; exit 1; }
    CUR="$(mktemp)"
    trap 'rm -f "$CUR"' EXIT
    run_benches "$MICRO_PKGS" . "$BENCHTIME" "$COUNT" > "$CUR"
    go run ./cmd/benchgate -old "$BASE" -new "$CUR" \
        -metric "$METRIC" -alpha "$ALPHA" -max-growth "$MAX_GROWTH" -min-count "$MIN_COUNT"
    ;;
*)
    echo "usage: $0 {record|compare|fig5|workers|json} [file]" >&2
    exit 2
    ;;
esac
