#!/bin/sh
# Cross-process cache correctness gate (run by CI): execute a quick
# scenario twice against one -cache-dir and fail unless the second pass
# is served entirely from the persistent store — zero fresh simulations,
# at least one store hit, no store faults. This is the end-to-end proof
# that canonical job keys are stable across processes and that persisted
# records reconstruct results the planner accepts.
#
# Usage: scripts/warm_cache_check.sh [scenario-file]
set -eu

scenario=${1:-examples/custom_scenario/scenario.json}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "warm_cache_check: building cmd/figures"
go build -o "$workdir/figures" ./cmd/figures

field() { # field <name> <stats-line>
    printf '%s\n' "$2" | sed -n "s/.*$1=\([0-9][0-9]*\).*/\1/p"
}

run_pass() { # run_pass <label>
    "$workdir/figures" -scenario "$scenario" -quick -out "" \
        -cache-dir "$workdir/store" 2>"$workdir/$1.err" >/dev/null
    stats=$(grep '^campaign:' "$workdir/$1.err" | tail -1)
    if [ -z "$stats" ]; then
        echo "warm_cache_check: $1: no campaign stats line on stderr" >&2
        cat "$workdir/$1.err" >&2
        exit 1
    fi
    echo "warm_cache_check: $1: $stats"
}

run_pass cold
cold_fresh=$(field fresh-sims "$stats")
if [ "$cold_fresh" -eq 0 ]; then
    echo "warm_cache_check: cold pass simulated nothing — scenario too small?" >&2
    exit 1
fi

run_pass warm
warm_fresh=$(field fresh-sims "$stats")
warm_hits=$(field store-hits "$stats")
warm_faults=$(field store-faults "$stats")
if [ "$warm_fresh" -ne 0 ] || [ "$warm_hits" -eq 0 ] || [ "$warm_faults" -ne 0 ]; then
    echo "warm_cache_check: FAIL: warm pass must be 100% store hits (fresh-sims=0, store-hits>0, store-faults=0)" >&2
    exit 1
fi

sh scripts/cache_stats.sh "$workdir/store"
echo "warm_cache_check: OK ($warm_hits jobs served from the store, 0 re-simulated)"
