#!/bin/sh
# check_pkg_docs.sh verifies that every internal/ package declares a
# package comment (a // comment block immediately preceding one
# `package` clause), so godoc renders a synopsis for each layer.
# CI runs it next to `go vet`; run it locally from the repo root.
set -eu

missing=0
for dir in $(go list -f '{{.Dir}}' ./internal/...); do
	ok=0
	for f in "$dir"/*.go; do
		case "$f" in *_test.go) continue ;; esac
		# Accept both // line comments and the closing line of a /* */
		# block comment directly above the package clause.
		if grep -B1 -m1 '^package ' "$f" | head -n 1 | grep -Eq '^//|\*/[[:space:]]*$'; then
			ok=1
			break
		fi
	done
	if [ "$ok" -eq 0 ]; then
		echo "missing package comment: ${dir#"$(pwd)"/}" >&2
		missing=1
	fi
done
exit $missing
