#!/bin/sh
# End-to-end smoke test of the distributed serving tier (run by CI):
# boot a coordinator plus three workers, then drill the fleet
# guarantees over real processes and sockets:
#
#   1. /readyz tracks the fleet: 503 while the coordinator has no
#      workers, 200 once the three have registered.
#   2. A scenario submitted twice costs fresh simulations exactly once —
#      the coordinator's store and coalescing are fleet-wide.
#   3. A rapid submission burst from one client is shed with
#      429 + Retry-After while other clients keep working.
#   4. SIGKILL-ing the worker that owns most of the next batch's keys
#      mid-campaign loses nothing: every job completes on the survivors
#      (retries visible in /statsz), each fresh key simulates exactly
#      once fleet-wide, and the dead worker shows up in worker health.
#
# Usage: scripts/fleet_smoke.sh [scenario-file]
set -eu

scenario=${1:-examples/custom_scenario/scenario.json}
workdir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "fleet_smoke: building cmd/spechpcd"
go build -o "$workdir/spechpcd" ./cmd/spechpcd

# wait_addr <log> <err> <pid>: poll for the load-bearing
# "spechpcd: listening on http://HOST:PORT" line and set $addr.
wait_addr() {
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's#^spechpcd: listening on \(http://[0-9.:]*\).*#\1#p' "$1")
        [ -n "$addr" ] && break
        kill -0 "$3" 2>/dev/null || {
            echo "fleet_smoke: daemon died on startup" >&2
            cat "$2" >&2
            exit 1
        }
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "fleet_smoke: daemon never reported its address" >&2
        exit 1
    fi
}

# json_field <name> <file>: pull one scalar out of indented JSON.
json_field() {
    sed -n "s/^ *\"$1\": *\"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$2" | head -1
}

http_code() { # http_code <url>
    curl -s -o /dev/null -w '%{http_code}' "$1"
}

# --- coordinator: the fleet's front door, store, and dispatcher.
"$workdir/spechpcd" -addr 127.0.0.1:0 -quick -parallel 4 \
    -coordinator -suspect-after 2s -dead-after 4s \
    -rate-limit 2 -rate-burst 4 \
    -cache-dir "$workdir/store" -artifacts "$workdir/artifacts" \
    >"$workdir/coord.log" 2>"$workdir/coord.err" &
coord_pid=$!
pids="$pids $coord_pid"
wait_addr "$workdir/coord.log" "$workdir/coord.err" "$coord_pid"
coord=$addr
echo "fleet_smoke: coordinator up at $coord"

curl -sf "$coord/healthz" >/dev/null || {
    echo "fleet_smoke: coordinator healthz failed" >&2
    exit 1
}
code=$(http_code "$coord/readyz")
if [ "$code" != "503" ]; then
    echo "fleet_smoke: FAIL: workerless coordinator /readyz = $code, want 503" >&2
    exit 1
fi

# --- three workers joining the fleet. Stable IDs w1..w3: rendezvous
# placement depends on them, and the kill phase below relies on that.
w1_pid=""
for i in 1 2 3; do
    "$workdir/spechpcd" -addr 127.0.0.1:0 -quick -parallel 2 \
        -join "$coord" -worker-id "w$i" -heartbeat 200ms \
        >"$workdir/w$i.log" 2>"$workdir/w$i.err" &
    wpid=$!
    pids="$pids $wpid"
    [ "$i" = 1 ] && w1_pid=$wpid
    wait_addr "$workdir/w$i.log" "$workdir/w$i.err" "$wpid"
    echo "fleet_smoke: worker w$i up at $addr"
done

ready=""
for _ in $(seq 1 100); do
    [ "$(http_code "$coord/readyz")" = "200" ] && { ready=yes; break; }
    sleep 0.1
done
if [ -z "$ready" ]; then
    echo "fleet_smoke: FAIL: coordinator never became ready after workers joined" >&2
    exit 1
fi
curl -sf "$coord/statsz" >"$workdir/join.statsz.json"
alive=$(json_field workers_alive "$workdir/join.statsz.json")
if [ "$alive" != "3" ]; then
    echo "fleet_smoke: FAIL: workers_alive = $alive, want 3" >&2
    exit 1
fi
echo "fleet_smoke: fleet ready (3 workers alive)"

submit_and_wait() { # submit_and_wait <label>
    curl -sf -X POST --data-binary "@$scenario" \
        "$coord/api/v1/scenarios" >"$workdir/$1.json"
    sid=$(json_field id "$workdir/$1.json")
    if [ -z "$sid" ]; then
        echo "fleet_smoke: $1: submission returned no id" >&2
        cat "$workdir/$1.json" >&2
        exit 1
    fi
    state=""
    for _ in $(seq 1 600); do
        curl -sf "$coord/api/v1/scenarios/$sid" >"$workdir/$1.status.json"
        state=$(json_field state "$workdir/$1.status.json")
        [ "$state" = "done" ] || [ "$state" = "failed" ] && break
        sleep 0.2
    done
    if [ "$state" != "done" ]; then
        echo "fleet_smoke: $1: scenario ended as '$state'" >&2
        cat "$workdir/$1.status.json" >&2
        exit 1
    fi
    curl -sf "$coord/statsz" >"$workdir/$1.statsz.json"
    fresh=$(json_field fresh_sims "$workdir/$1.statsz.json")
    echo "fleet_smoke: $1: scenario $sid done, fleet-wide fresh_sims=$fresh"
}

# --- passes 1+2: the distributed warm-path guarantee.
submit_and_wait cold
cold_fresh=$fresh
if [ "$cold_fresh" -eq 0 ]; then
    echo "fleet_smoke: cold pass simulated nothing - scenario too small?" >&2
    exit 1
fi
dispatched=$(json_field dispatched "$workdir/cold.statsz.json")
if [ -z "$dispatched" ] || [ "$dispatched" -eq 0 ]; then
    echo "fleet_smoke: FAIL: cold pass dispatched nothing to the workers" >&2
    exit 1
fi

submit_and_wait warm
if [ "$fresh" -ne "$cold_fresh" ]; then
    echo "fleet_smoke: FAIL: second submission ran $((fresh - cold_fresh)) fresh simulations; want 0 fleet-wide" >&2
    exit 1
fi

# --- overload: a single client bursting past its token bucket is shed
# with 429 + Retry-After; the probe job is warm, so admitted ones are free.
saw_429=""
retry_after=""
for _ in $(seq 1 12); do
    code=$(curl -s -o /dev/null -D "$workdir/probe.headers" -w '%{http_code}' \
        -X POST -H 'X-Client-ID: burst-probe' \
        -d '{"benchmark":"tealeaf","cluster":"ClusterA","class":"tiny","ranks":1,"sim_steps":2}' \
        "$coord/api/v1/jobs")
    if [ "$code" = "429" ]; then
        saw_429=yes
        retry_after=$(sed -n 's/^[Rr]etry-[Aa]fter: *\([0-9]*\).*/\1/p' "$workdir/probe.headers")
        break
    fi
done
if [ -z "$saw_429" ]; then
    echo "fleet_smoke: FAIL: 12-request burst never got a 429" >&2
    exit 1
fi
if [ -z "$retry_after" ] || [ "$retry_after" -lt 1 ]; then
    echo "fleet_smoke: FAIL: 429 carried Retry-After '$retry_after', want >= 1s" >&2
    exit 1
fi
echo "fleet_smoke: burst shed with 429, Retry-After=${retry_after}s"

# --- worker loss: SIGKILL w1 (rendezvous owner of most of the keys
# below), then immediately submit 12 fresh jobs. The registry still
# thinks w1 is alive, so its keys are dispatched to the corpse, fail,
# and re-shard to the survivors — zero lost jobs, zero duplicates.
base_fresh=$fresh
kill -9 "$w1_pid"
echo "fleet_smoke: SIGKILLed worker w1"

jobids=""
i=1
while [ "$i" -le 12 ]; do
    curl -sf -X POST -H "X-Client-ID: killjob-$i" \
        -d "{\"benchmark\":\"lbm\",\"cluster\":\"ClusterA\",\"class\":\"tiny\",\"ranks\":$i,\"sim_steps\":1,\"priority\":1}" \
        "$coord/api/v1/jobs" >"$workdir/kill$i.json"
    jobids="$jobids $(json_field id "$workdir/kill$i.json")"
    i=$((i + 1))
done

for id in $jobids; do
    state=""
    for _ in $(seq 1 300); do
        curl -sf "$coord/api/v1/jobs/$id" >"$workdir/job.status.json"
        state=$(json_field state "$workdir/job.status.json")
        [ "$state" = "done" ] || [ "$state" = "failed" ] || [ "$state" = "cancelled" ] && break
        sleep 0.1
    done
    if [ "$state" != "done" ]; then
        echo "fleet_smoke: FAIL: job $id ended as '$state' after the worker kill" >&2
        cat "$workdir/job.status.json" >&2
        exit 1
    fi
done
echo "fleet_smoke: all 12 jobs survived the worker kill"

curl -sf "$coord/statsz" >"$workdir/kill.statsz.json"
fresh=$(json_field fresh_sims "$workdir/kill.statsz.json")
if [ "$fresh" -ne $((base_fresh + 12)) ]; then
    echo "fleet_smoke: FAIL: fresh_sims went $base_fresh -> $fresh across 12 unique jobs; want exactly +12 (no losses, no duplicates)" >&2
    exit 1
fi
retries=$(json_field retries "$workdir/kill.statsz.json")
if [ -z "$retries" ] || [ "$retries" -lt 1 ]; then
    echo "fleet_smoke: FAIL: dispatcher recorded $retries retries; the kill should have forced re-dispatch" >&2
    exit 1
fi

# The dead worker ages out of the health view (dead-after is 4s).
dead=""
for _ in $(seq 1 100); do
    curl -sf "$coord/statsz" >"$workdir/health.statsz.json"
    dead=$(json_field workers_dead "$workdir/health.statsz.json")
    [ "$dead" = "1" ] && break
    sleep 0.1
done
if [ "$dead" != "1" ]; then
    echo "fleet_smoke: FAIL: workers_dead = $dead, want 1 after the kill" >&2
    exit 1
fi
echo "fleet_smoke: dead worker visible in /statsz (retries=$retries)"

# --- graceful shutdown: the coordinator drains cleanly on SIGTERM.
kill -TERM "$coord_pid"
i=0
while kill -0 "$coord_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "fleet_smoke: FAIL: coordinator ignored SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q '^campaign:' "$workdir/coord.err" || {
    echo "fleet_smoke: FAIL: coordinator shutdown printed no campaign stats line" >&2
    cat "$workdir/coord.err" >&2
    exit 1
}
echo "fleet_smoke: OK (fleet-wide warm path, 429 shedding, worker-loss recovery, clean shutdown)"
