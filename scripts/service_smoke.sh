#!/bin/sh
# End-to-end smoke test of the spechpcd HTTP service (run by CI): start
# the daemon against a temp cache directory, submit a scenario, wait for
# it to finish, then submit the identical scenario again and fail unless
# the second pass performs ZERO fresh simulations — the proof that the
# serving layer's store lookups and cross-request coalescing make a
# repeated query free. Finishes with a graceful SIGTERM shutdown check.
#
# Usage: scripts/service_smoke.sh [scenario-file]
set -eu

scenario=${1:-examples/custom_scenario/scenario.json}
workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "service_smoke: building cmd/spechpcd"
go build -o "$workdir/spechpcd" ./cmd/spechpcd

"$workdir/spechpcd" -addr 127.0.0.1:0 -quick -parallel 4 \
    -cache-dir "$workdir/store" -artifacts "$workdir/artifacts" \
    >"$workdir/daemon.log" 2>"$workdir/daemon.err" &
daemon_pid=$!

# The daemon prints "spechpcd: listening on http://127.0.0.1:PORT ..."
# once the listener is up; poll for it.
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's#^spechpcd: listening on \(http://[0-9.:]*\).*#\1#p' "$workdir/daemon.log")
    [ -n "$base" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || {
        echo "service_smoke: daemon died on startup" >&2
        cat "$workdir/daemon.err" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "service_smoke: daemon never reported its address" >&2
    exit 1
fi
echo "service_smoke: daemon up at $base"

curl -sf "$base/healthz" >/dev/null || {
    echo "service_smoke: healthz failed" >&2
    exit 1
}

# json_field <name> <file>: pull one numeric/string scalar out of the
# service's indented JSON (one field per line, no jq needed).
json_field() {
    sed -n "s/^ *\"$1\": *\"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$2" | head -1
}

submit_and_wait() { # submit_and_wait <label>
    curl -sf -X POST --data-binary "@$scenario" \
        "$base/api/v1/scenarios" >"$workdir/$1.json"
    sid=$(json_field id "$workdir/$1.json")
    if [ -z "$sid" ]; then
        echo "service_smoke: $1: submission returned no id" >&2
        cat "$workdir/$1.json" >&2
        exit 1
    fi
    state=""
    for _ in $(seq 1 600); do
        curl -sf "$base/api/v1/scenarios/$sid" >"$workdir/$1.status.json"
        state=$(json_field state "$workdir/$1.status.json")
        [ "$state" = "done" ] || [ "$state" = "failed" ] && break
        sleep 0.2
    done
    if [ "$state" != "done" ]; then
        echo "service_smoke: $1: scenario ended as '$state'" >&2
        cat "$workdir/$1.status.json" >&2
        exit 1
    fi
    curl -sf "$base/statsz" >"$workdir/$1.statsz.json"
    fresh=$(json_field fresh_sims "$workdir/$1.statsz.json")
    echo "service_smoke: $1: scenario $sid done, cumulative fresh_sims=$fresh"
}

submit_and_wait cold
cold_fresh=$fresh
if [ "$cold_fresh" -eq 0 ]; then
    echo "service_smoke: cold pass simulated nothing - scenario too small?" >&2
    exit 1
fi

submit_and_wait warm
if [ "$fresh" -ne "$cold_fresh" ]; then
    echo "service_smoke: FAIL: second submission ran $((fresh - cold_fresh)) fresh simulations; want 0 (store + coalescing must serve it)" >&2
    exit 1
fi

# The repeat must have been served from the memo/store: the stats line
# confirms hits advanced.
warm_hits=$(json_field memo_hits "$workdir/warm.statsz.json")
if [ -z "$warm_hits" ] || [ "$warm_hits" -eq 0 ]; then
    echo "service_smoke: FAIL: warm pass recorded no memo hits" >&2
    exit 1
fi

# Graceful shutdown: SIGTERM must stop the daemon cleanly.
kill -TERM "$daemon_pid"
i=0
while kill -0 "$daemon_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "service_smoke: FAIL: daemon ignored SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
daemon_pid=""
grep -q '^campaign:' "$workdir/daemon.err" || {
    echo "service_smoke: FAIL: shutdown printed no campaign stats line" >&2
    cat "$workdir/daemon.err" >&2
    exit 1
}
echo "service_smoke: OK (second submission served with zero fresh simulations, clean shutdown)"
