#!/bin/sh
# coverage_gate.sh — fail CI when a package's statement coverage drops
# below its floor.
#
# The surrogate package is the only place the repo answers queries
# without simulating, so its correctness rests entirely on its tests:
# the floor keeps future edits from landing untested prediction paths.
# Coverage is measured across the whole subtree (the validate/ harness
# exercises the fitting code cross-package via -coverpkg).
#
# Usage: scripts/coverage_gate.sh [<coverpkg> [<min-pct>]]
set -eu
cd "$(dirname "$0")/.."

pkg=${1:-./internal/surrogate}
min=${2:-85}

profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

go test -coverprofile="$profile" -coverpkg="$pkg" "$pkg/..."

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%$/, "", $NF); print $NF}')
if [ -z "$total" ]; then
    echo "coverage_gate: no total line in cover profile" >&2
    exit 1
fi

echo "coverage_gate: $pkg statement coverage ${total}% (floor ${min}%)"
awk -v t="$total" -v m="$min" 'BEGIN { exit (t + 0 >= m + 0) ? 0 : 1 }' || {
    echo "coverage_gate: ${total}% is below the ${min}% floor for $pkg" >&2
    echo "coverage_gate: per-function breakdown:" >&2
    go tool cover -func="$profile" >&2
    exit 1
}
