#!/bin/sh
# Inspect a campaign result store directory (docs/SCENARIOS.md): record
# count, disk usage, and per-benchmark / per-cluster / per-class
# breakdowns. Records are one-line JSON carrying flat summary fields
# ("bench", "cluster", "class") precisely so plain POSIX tools can read
# them — no jq required.
#
# Usage: scripts/cache_stats.sh <store-dir>
set -eu

dir=${1:?usage: cache_stats.sh <store-dir>}
if [ ! -d "$dir" ]; then
    echo "cache_stats: $dir is not a directory" >&2
    exit 1
fi

files=$(find "$dir" -type f -name '*.json')
if [ -z "$files" ]; then
    count=0
else
    count=$(printf '%s\n' "$files" | wc -l | tr -d ' ')
fi
echo "store:   $dir"
echo "records: $count"
du -sh "$dir" 2>/dev/null | awk '{print "disk:    " $1}'
[ "$count" -gt 0 ] || exit 0

summary() {
    # Pull one flat string field out of every record and histogram it.
    printf '%s\n' "$files" |
        xargs sed -n "s/.*\"$1\":\"\([^\"]*\)\".*/\1/p" |
        sort | uniq -c | sort -rn | awk '{printf "  %6d  %s\n", $1, $2}'
}

echo "by benchmark:"
summary bench
echo "by cluster:"
summary cluster
echo "by class:"
summary class
