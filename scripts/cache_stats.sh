#!/bin/sh
# Inspect a campaign result store directory (docs/SCENARIOS.md): record
# count, disk usage, and per-benchmark / per-cluster / per-class
# breakdowns. Records are one-line JSON carrying flat summary fields
# ("bench", "cluster", "class") precisely so plain POSIX tools can read
# them — no jq required.
#
# Stores hold two record classes: raw simulation results ("v1-*.json")
# and fitted surrogate models ("m1-*.json", under models/). They are
# counted separately, and the per-benchmark breakdowns read raw records
# only (model files carry the same flat fields and would double-count).
#
# With --prune <max-bytes>, evict records by oldest access time until
# the store's record bytes fit the budget — the maintenance valve that
# keeps a long-running spechpcd cache directory bounded. Raw results
# are always evicted before fitted models: a model summarizes many
# simulations, so per byte it is the most expensive thing in the store
# to lose. Eviction is safe at any time: a pruned raw record degrades
# the next identical job to one re-simulation and re-write, and a
# pruned model to one refit from whatever results remain.
#
# Usage: scripts/cache_stats.sh [--prune <max-bytes>] <store-dir>
set -eu

prune_bytes=""
if [ "${1:-}" = "--prune" ]; then
    prune_bytes=${2:?usage: cache_stats.sh --prune <max-bytes> <store-dir>}
    shift 2
    case $prune_bytes in
    '' | *[!0-9]*)
        echo "cache_stats: --prune wants a byte count, got '$prune_bytes'" >&2
        exit 1
        ;;
    esac
fi

dir=${1:?usage: cache_stats.sh [--prune <max-bytes>] <store-dir>}
if [ ! -d "$dir" ]; then
    echo "cache_stats: $dir is not a directory" >&2
    exit 1
fi

# List records of one class as "atime size path" lines: GNU stat
# first, BSD fallback. $1 is the find -name pattern; surrogate model
# files ("m1-*") are excluded from the raw class by name, wherever they
# sit.
atime_size_path() {
    find "$dir" -type f -name "$1" ! -name 'm1-*' -exec sh -c '
        if stat -c "%X %s %n" "$@" 2>/dev/null; then :; else stat -f "%a %z %N" "$@"; fi
    ' sh {} +
}

model_atime_size_path() {
    find "$dir" -type f -name 'm1-*.json' -exec sh -c '
        if stat -c "%X %s %n" "$@" 2>/dev/null; then :; else stat -f "%a %z %N" "$@"; fi
    ' sh {} +
}

if [ -n "$prune_bytes" ]; then
    # Oldest-accessed raw records first, then — only if still over
    # budget — oldest fitted models; evict while over budget. awk emits
    # the victim paths (none when the store already fits). substr keeps
    # the path byte-exact — rebuilding from fields would collapse any
    # repeated whitespace inside it.
    {
        atime_size_path '*.json' | sort -n
        model_atime_size_path | sort -n
    } | awk -v max="$prune_bytes" '
        {
            size[NR] = $2
            path[NR] = substr($0, length($1) + length($2) + 3)
            total += size[NR]
        }
        END {
            for (i = 1; i <= NR && total > max; i++) {
                print path[i]
                total -= size[i]
            }
        }
    ' | while IFS= read -r victim; do
        if [ -f "$victim" ]; then
            rm -f -- "$victim"
            echo "pruned:  $victim"
        else
            echo "cache_stats: skipping unexpected prune path '$victim'" >&2
        fi
    done
fi

files=$(find "$dir" -type f -name '*.json' ! -name 'm1-*')
if [ -z "$files" ]; then
    count=0
else
    count=$(printf '%s\n' "$files" | wc -l | tr -d ' ')
fi
models=$(find "$dir" -type f -name 'm1-*.json' | wc -l | tr -d ' ')
echo "store:   $dir"
echo "records: $count"
echo "models:  $models"
du -sh "$dir" 2>/dev/null | awk '{print "disk:    " $1}'
[ "$count" -gt 0 ] || exit 0

summary() {
    # Pull one flat string field out of every record and histogram it.
    printf '%s\n' "$files" |
        xargs sed -n "s/.*\"$1\":\"\([^\"]*\)\".*/\1/p" |
        sort | uniq -c | sort -rn | awk '{printf "  %6d  %s\n", $1, $2}'
}

echo "by benchmark:"
summary bench
echo "by cluster:"
summary cluster
echo "by class:"
summary class
