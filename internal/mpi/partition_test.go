package mpi

import (
	"reflect"
	"strings"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// crossNodeBody is a small protocol workout spanning the eager and
// rendezvous paths plus a collective, sized so ranks land on multiple
// ClusterA nodes when the rank count exceeds one node.
func crossNodeBody(t *testing.T) func(r *Rank) {
	return func(r *Rank) {
		n := r.Size()
		right, left := (r.ID()+1)%n, (r.ID()+n-1)%n
		small := []float64{float64(r.ID())}
		big := make([]float64, 16*1024) // > eager threshold
		big[0] = float64(r.ID())
		reqs := []*Request{
			r.Isend(right, 1, small, 8),
			r.Isend(right, 2, big, 8*float64(len(big))),
			r.Irecv(left, 1),
			r.Irecv(left, 2),
		}
		msgs := r.Waitall(reqs)
		if msgs[2].Data[0] != float64(left) || msgs[3].Data[0] != float64(left) {
			t.Errorf("rank %d received ring data from wrong peer", r.ID())
		}
		sum := r.Allreduce([]float64{1}, 8, OpSum)
		if sum[0] != float64(n) {
			t.Errorf("rank %d allreduce = %v, want %v", r.ID(), sum[0], n)
		}
	}
}

// TestPartitionedMatchesSerial runs the same multi-node job serially and
// partitioned and requires identical Usage results.
func TestPartitionedMatchesSerial(t *testing.T) {
	ranks := machine.ClusterA().CPU.CoresPerNode() + 3 // two nodes, uneven
	base := Config{Cluster: machine.ClusterA(), Ranks: ranks}
	serial, err := Run(base, crossNodeBody(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.SimWorkers = workers
		res, err := Run(cfg, crossNodeBody(t))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res.Usage, serial.Usage) {
			t.Errorf("workers=%d Usage diverged from serial:\n got %+v\nwant %+v",
				workers, res.Usage, serial.Usage)
		}
	}
}

// TestPartitionedWorkerOscillation re-runs one job with worker counts
// bouncing between serial and partitioned, stressing pooled-job reuse:
// a serial run must be able to recycle state a partitioned run left
// behind and vice versa. Run under -race this also checks partition
// concurrency. Results must stay bit-identical throughout.
func TestPartitionedWorkerOscillation(t *testing.T) {
	ranks := machine.ClusterA().CPU.CoresPerNode() + 3
	var want Result
	for i, workers := range []int{0, 8, 1, 4, 0, 2, 8, 0} {
		cfg := Config{Cluster: machine.ClusterA(), Ranks: ranks, SimWorkers: workers}
		res, err := Run(cfg, crossNodeBody(t))
		if err != nil {
			t.Fatalf("iteration %d (workers=%d): %v", i, workers, err)
		}
		if i == 0 {
			want = res
		} else if !reflect.DeepEqual(res.Usage, want.Usage) {
			t.Errorf("iteration %d (workers=%d) diverged", i, workers)
		}
	}
}

// TestPartitionedSingleNodeStaysSerial checks a single-node job ignores
// SimWorkers: there is only one partition, so the serial engine runs it
// without the window machinery.
func TestPartitionedSingleNodeStaysSerial(t *testing.T) {
	cfg := Config{Cluster: machine.ClusterA(), Ranks: 4, SimWorkers: 8}
	if _, err := Run(cfg, func(r *Rank) {
		r.Compute(machine.Phase{Name: "x", FlopsScalar: 1 * units.M, BytesMem: 1 * units.K})
		r.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionedRejectsZeroLatencyFabric checks the error path: a
// fabric without a positive inter-node latency has no conservative
// lookahead window, so a partitioned run must fail loudly instead of
// deadlocking or silently running serial.
func TestPartitionedRejectsZeroLatencyFabric(t *testing.T) {
	net := netsim.HDR100()
	net.InterNodeLatency = 0
	ranks := machine.ClusterA().CPU.CoresPerNode() + 1
	cfg := Config{Cluster: machine.ClusterA(), Ranks: ranks, Net: net, SimWorkers: 4}
	_, err := Run(cfg, func(r *Rank) { r.Barrier() })
	if err == nil {
		t.Fatal("zero-latency fabric accepted by partitioned run")
	}
	if !strings.Contains(err.Error(), "lookahead") {
		t.Errorf("error %q does not explain the missing lookahead window", err)
	}
}
