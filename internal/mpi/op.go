package mpi

import "fmt"

// Op is a reduction operation for Allreduce/Reduce. Operations really
// execute elementwise on the payload slices, so kernels get numerically
// meaningful global results (residual norms, conserved sums).
type Op int

// Supported reduction operations.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

// String returns the MPI-style name of the operation.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "MPI_SUM"
	case OpMax:
		return "MPI_MAX"
	case OpMin:
		return "MPI_MIN"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// apply reduces src into dst elementwise; the slices must have equal
// length (a kernel bug otherwise, so it panics).
func (o Op) apply(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mpi: reduction length mismatch %d vs %d", len(dst), len(src)))
	}
	switch o {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		panic(fmt.Sprintf("mpi: unknown op %d", int(o)))
	}
}
