package mpi

import (
	"testing"

	"github.com/spechpc/spechpc-sim/internal/machine"
)

// The MPI microbenchmarks pin the simulated protocol stack end to end —
// envelope matching, eager/rendezvous state machines, collective
// algorithms — on top of the scheduler. scripts/bench_compare.sh gates
// them against BENCH_baseline.json in CI.

// benchJob runs one job per iteration on ClusterA without a trace
// recorder, the configuration campaign sweeps use.
func benchJob(b *testing.B, ranks int, body func(r *Rank)) {
	b.Helper()
	cluster := machine.ClusterA()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Cluster: cluster, Ranks: ranks}, body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPingPongEager measures the eager protocol: 64 round trips of
// a small (sub-threshold) message between two intra-node ranks.
func BenchmarkPingPongEager(b *testing.B) {
	payload := []float64{1, 2, 3, 4}
	benchJob(b, 2, func(r *Rank) {
		for i := 0; i < 64; i++ {
			if r.ID() == 0 {
				r.Send(1, 1, payload, 1024)
				r.Recv(1, 2)
			} else {
				r.Recv(0, 1)
				r.Send(0, 2, payload, 1024)
			}
		}
	})
}

// BenchmarkPingPongRendezvous measures the rendezvous handshake: 64
// round trips of an above-threshold message, each paying the
// clear-to-send exchange and the batched symmetric completion wake.
func BenchmarkPingPongRendezvous(b *testing.B) {
	payload := []float64{1, 2, 3, 4}
	benchJob(b, 2, func(r *Rank) {
		for i := 0; i < 64; i++ {
			if r.ID() == 0 {
				r.Send(1, 1, payload, 256*1024)
				r.Recv(1, 2)
			} else {
				r.Recv(0, 1)
				r.Send(0, 2, payload, 256*1024)
			}
		}
	})
}

// BenchmarkBarrier measures 16 dissemination barriers across a full
// ccNUMA domain of 18 ranks.
func BenchmarkBarrier(b *testing.B) {
	benchJob(b, 18, func(r *Rank) {
		for i := 0; i < 16; i++ {
			r.Barrier()
		}
	})
}

// BenchmarkAllreduceSmall measures recursive-doubling allreduces (the
// latency-bound regime) across 18 ranks.
func BenchmarkAllreduceSmall(b *testing.B) {
	benchJob(b, 18, func(r *Rank) {
		data := []float64{float64(r.ID()), 1}
		for i := 0; i < 8; i++ {
			r.Allreduce(data, 16, OpSum)
		}
	})
}

// BenchmarkAllreduceLarge measures the Rabenseifner reduce-scatter +
// allgather path (the bandwidth-bound regime soma exercises).
func BenchmarkAllreduceLarge(b *testing.B) {
	benchJob(b, 18, func(r *Rank) {
		data := make([]float64, 64)
		for i := range data {
			data[i] = float64(r.ID() + i)
		}
		for i := 0; i < 4; i++ {
			r.Allreduce(data, 512*1024, OpSum)
		}
	})
}

// BenchmarkReduce measures binomial-tree reductions onto rank 0 across
// 18 ranks (the collection step of every per-iteration residual check).
func BenchmarkReduce(b *testing.B) {
	benchJob(b, 18, func(r *Rank) {
		data := []float64{float64(r.ID()), 1, 2, 3}
		for i := 0; i < 8; i++ {
			r.Reduce(0, data, 32, OpSum)
		}
	})
}

// BenchmarkBcast measures binomial-tree broadcasts from rank 0 across
// 18 ranks (parameter distribution at iteration boundaries).
func BenchmarkBcast(b *testing.B) {
	benchJob(b, 18, func(r *Rank) {
		data := []float64{1, 2, 3, 4}
		for i := 0; i < 8; i++ {
			r.Bcast(0, data, 32)
		}
	})
}

// BenchmarkAllgather measures the ring allgather across 18 ranks — the
// n-1 step pipeline sphexa's domain exchange is built on.
func BenchmarkAllgather(b *testing.B) {
	benchJob(b, 18, func(r *Rank) {
		data := []float64{float64(r.ID()), 1}
		for i := 0; i < 4; i++ {
			r.Allgather(data, 64)
		}
	})
}

// BenchmarkAlltoall measures the pairwise-exchange alltoall across 18
// ranks, the densest communication pattern in the collective set.
func BenchmarkAlltoall(b *testing.B) {
	// Per-rank chunk tables are built once, outside the measured loop, so
	// the benchmark counts MPI-layer allocations rather than its own setup.
	const ranks = 18
	all := make([][][]float64, ranks)
	for id := range all {
		chunks := make([][]float64, ranks)
		for i := range chunks {
			chunks[i] = []float64{float64(id), float64(i)}
		}
		all[id] = chunks
	}
	benchJob(b, ranks, func(r *Rank) {
		chunks := all[r.ID()]
		for i := 0; i < 4; i++ {
			r.Alltoall(chunks, 64)
		}
	})
}

// BenchmarkHaloExchange measures the Sendrecv ring pattern every
// stencil kernel uses, with per-message sizes around the eager
// threshold boundary.
func BenchmarkHaloExchange(b *testing.B) {
	payload := make([]float64, 32)
	benchJob(b, 18, func(r *Rank) {
		n := r.Size()
		right := (r.ID() + 1) % n
		left := (r.ID() - 1 + n) % n
		for i := 0; i < 16; i++ {
			r.Sendrecv(right, 3, payload, 48*1024, left, 3)
			r.Sendrecv(left, 4, payload, 48*1024, right, 4)
		}
	})
}
