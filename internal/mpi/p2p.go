package mpi

import (
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/trace"
)

// Message is a received point-to-point message.
type Message struct {
	// Src is the sending rank; Tag the message tag.
	Src int
	Tag int
	// ModelBytes is the paper-scale payload size used for timing.
	ModelBytes float64
	// Data is the real payload.
	Data []float64
}

// reqState tracks the lifecycle of a Request.
type reqState int

const (
	reqPending reqState = iota
	reqDone
)

// Request is a nonblocking operation handle, returned by Isend/Irecv and
// finished by Wait/Waitall.
type Request struct {
	rank  *Rank
	send  bool
	peer  int // destination (send) or expected source (recv)
	tag   int
	state reqState
	msg   *Message // set on completed receives
	env   *envelope
}

// Done reports whether the operation completed.
func (q *Request) Done() bool { return q.state == reqDone }

// Message returns the received message of a completed receive (nil for
// sends or incomplete receives) without blocking.
func (q *Request) Message() *Message { return q.msg }

// Waitany blocks until at least one of the requests completes and returns
// its index. Completed requests are NOT removed; callers track them.
// Time blocked here is attributed to MPI_Recv when every request is a
// receive (matching how blocking-receive-structured codes appear in ITAC
// traces), MPI_Wait otherwise.
func (r *Rank) Waitany(reqs []*Request) int {
	if len(reqs) == 0 {
		panic("mpi: Waitany with no requests")
	}
	allRecv := true
	for _, q := range reqs {
		if q != nil && q.send {
			allRecv = false
			break
		}
	}
	def := trace.KindWait
	if allRecv {
		def = trace.KindRecv
	}
	kind := r.traceKind(def)
	t0 := r.proc.Now()
	for {
		for i, q := range reqs {
			if q != nil && q.state == reqDone {
				r.mpiInterval(kind, t0, q.peer)
				return i
			}
		}
		r.oState = oBlocked
		r.proc.Park("mpi waitany")
		r.oState = oActive
	}
}

// envelope is the in-flight representation of one message. Its header
// arrives at the destination one latency after injection (preserving MPI
// pair ordering); its data arrives when the wire flows finish (eager) or
// after the rendezvous handshake. The job pointer lets the protocol
// advance through static callbacks (sim.AfterArg / netsim.StartTransferArg)
// instead of per-message closures.
type envelope struct {
	job           *Job
	src, dst      int
	tag           int
	modelBytes    float64
	data          []float64
	eager         bool
	dataArrived   bool
	headerArrived bool
	sendReq       *Request
	recvReq       *Request
}

// envHeaderArrive, eagerDataArrived, rendezvousCTS, and rendezvousDone
// are the static protocol-event callbacks: everything they need rides in
// the envelope, so scheduling them allocates nothing.
func envHeaderArrive(a any) {
	env := a.(*envelope)
	env.job.headerArrive(env)
}

func eagerDataArrived(a any) {
	env := a.(*envelope)
	env.dataArrived = true
	// The source side settles here: the sender's last protocol event —
	// the wire injection — strictly precedes data arrival at the
	// destination. The destination settles once header AND data have
	// arrived; whichever event fires second performs the decrement. An
	// unmatched-but-fully-arrived eager envelope holds no count: it has
	// no future events, and the eventual receive completes locally.
	env.job.notePending(env.src, -1)
	if env.headerArrived {
		env.job.notePending(env.dst, -1)
	}
	if env.recvReq != nil {
		env.job.completeRecv(env)
	}
}

// rendezvousCTS fires when the clear-to-send reaches the sender: the data
// crosses the wire. Intra-node transfers complete symmetrically when the
// copy finishes; inter-node transfers complete at the receiver first,
// and the sender unblocks one wire latency later when the delivery
// acknowledgment returns (see rendezvousArrive / rendezvousAck).
func rendezvousCTS(a any) {
	env := a.(*envelope)
	j := env.job
	srcNode := j.ranks[env.src].place.Node
	dstNode := j.ranks[env.dst].place.Node
	if srcNode == dstNode {
		j.net.StartTransferArg(srcNode, dstNode, env.modelBytes, rendezvousDone, env)
		return
	}
	j.net.StartTransferArg(srcNode, dstNode, env.modelBytes, rendezvousArrive, env)
}

// rendezvousDone completes an intra-node rendezvous transfer. The
// completion is symmetric — sender and receiver unblock at the same
// instant — so both wakeups ride one batched queue entry.
func rendezvousDone(a any) {
	env := a.(*envelope)
	j := env.job
	env.dataArrived = true
	env.sendReq.state = reqDone
	j.notePending(env.src, -1) // source side settles with the copy
	if j.finishRecv(env) {
		j.wakePair(env.src, env.dst)
	} else {
		j.wake(env.src)
	}
}

// rendezvousArrive fires on the receiver's partition when an inter-node
// rendezvous payload has fully arrived: the receive completes here, and
// the delivery acknowledgment starts its trip back to the sender.
func rendezvousArrive(a any) {
	env := a.(*envelope)
	j := env.job
	env.dataArrived = true
	if j.finishRecv(env) {
		j.wake(env.dst)
	}
	j.post(env.dst, env.src, j.net.Spec().InterNodeLatency, rendezvousAck, env)
}

// rendezvousAck fires on the sender's partition one wire latency after
// delivery: the send request completes and the sender unblocks.
func rendezvousAck(a any) {
	env := a.(*envelope)
	env.sendReq.state = reqDone
	env.job.notePending(env.src, -1) // last source-side protocol event
	env.job.wake(env.src)
}

// Isend starts a nonblocking send of data to rank dst. ModelBytes drives
// the timing model (protocol selection, wire time); the real data slice is
// copied so the caller may reuse its buffer immediately, as after a real
// MPI_Isend completion.
func (r *Rank) Isend(dst, tag int, data []float64, modelBytes float64) *Request {
	r.checkPeerTag("Isend", dst, tag, false)
	j := r.job
	kind := r.traceKind(trace.KindSend)
	t0 := r.proc.Now()
	r.proc.Wait(j.net.Spec().SendOverhead)
	r.mpiInterval(kind, t0, dst)

	pa := r.arena()
	env := pa.newEnvelope()
	env.job = j
	env.src = r.id
	env.dst = dst
	env.tag = tag
	env.modelBytes = modelBytes
	// The payload is captured at submission time (the caller may reuse
	// its buffer immediately, as after a real MPI_Isend completion); the
	// copy lives in the sender node's payload arena. Every envelope
	// field the receiver reads is written here, before the first
	// cross-partition post, so the window-barrier handoff orders the
	// writes before any destination-side access.
	env.data = pa.cloneFloats(data)
	req := pa.newRequest()
	req.rank, req.send, req.peer, req.tag, req.env = r, true, dst, tag, env
	env.sendReq = req
	env.eager = j.net.Eager(modelBytes)
	// The envelope is now in flight on both sides: until each side's
	// protocol events settle (see Job.pending), neither node's oracle
	// may promise a send bound — wire legs, CTS, and acks can all
	// produce cross-node output at their own event times.
	j.notePending(r.id, 1)
	j.notePending(dst, 1)

	srcNode, dstNode := r.place.Node, j.ranks[dst].place.Node
	lat := j.net.Latency(srcNode, dstNode)
	if env.eager {
		// Eager: buffer is on the wire; the send completes locally.
		req.state = reqDone
		j.net.StartTransferArg(srcNode, dstNode, modelBytes, eagerDataArrived, env)
	}
	j.post(r.id, dst, lat, envHeaderArrive, env)
	return req
}

// Irecv posts a nonblocking receive for a message from src (or AnySource)
// with the given tag (or AnyTag).
func (r *Rank) Irecv(src, tag int) *Request {
	r.checkPeerTag("Irecv", src, tag, true)
	j := r.job
	kind := r.traceKind(trace.KindRecv)
	t0 := r.proc.Now()
	r.proc.Wait(j.net.Spec().RecvOverhead)
	r.mpiInterval(kind, t0, src)

	req := r.arena().newRequest()
	req.rank, req.peer, req.tag = r, src, tag
	if env := r.matchUnexpected(req); env != nil {
		j.matchEnvelope(env, req)
		return req
	}
	r.posted = append(r.posted, req)
	return req
}

// Wait blocks until the request completes and returns the message for
// receives (nil for sends).
func (r *Rank) Wait(q *Request) *Message { return r.waitAs(q, trace.KindWait) }

// Waitall blocks until every request completes, returning receive messages
// in request order (nil entries for sends). The result slice is backed by
// the job arena and stays valid for the life of the job.
func (r *Rank) Waitall(reqs []*Request) []*Message {
	msgs := r.arena().allocMsgPtrs(len(reqs))
	for i, q := range reqs {
		msgs[i] = r.waitAs(q, trace.KindWait)
	}
	return msgs
}

// waitAs blocks on a request, attributing blocked time to the given trace
// kind (MPI_Send for blocking sends, MPI_Recv for blocking receives,
// MPI_Wait for explicit waits).
func (r *Rank) waitAs(q *Request, kind trace.Kind) *Message {
	if q.rank != r {
		panic("mpi: waiting on another rank's request")
	}
	kind = r.traceKind(kind)
	t0 := r.proc.Now()
	for q.state != reqDone {
		// The reason string is the MPI call class; Kind.String returns a
		// constant, so parking allocates nothing. While parked the rank
		// is silent to the adaptive-lookahead oracle: it cannot send
		// until something else wakes it.
		r.oState = oBlocked
		r.proc.Park(kind.String())
		r.oState = oActive
	}
	r.mpiInterval(kind, t0, q.peer)
	return q.msg
}

// Send performs a blocking standard-mode send: eager messages return once
// buffered; rendezvous messages block until the receiver has posted a
// matching receive and the data has been transferred — the semantics
// behind minisweep's serialization chain.
func (r *Rank) Send(dst, tag int, data []float64, modelBytes float64) {
	q := r.Isend(dst, tag, data, modelBytes)
	r.waitAs(q, trace.KindSend)
}

// Recv performs a blocking receive.
func (r *Rank) Recv(src, tag int) *Message {
	q := r.Irecv(src, tag)
	return r.waitAs(q, trace.KindRecv)
}

// Sendrecv sends to dst and receives from src simultaneously, the idiom
// halo exchanges use to avoid deadlock.
func (r *Rank) Sendrecv(dst, stag int, data []float64, modelBytes float64, src, rtag int) *Message {
	wasColl := r.inColl
	if !wasColl {
		// Attribute both halves to MPI_Sendrecv.
		r.inColl = true
		r.collKind = trace.KindSendrecv
		defer func() { r.inColl = false }()
	}
	sq := r.Isend(dst, stag, data, modelBytes)
	rq := r.Irecv(src, rtag)
	msg := r.waitAs(rq, trace.KindSendrecv)
	r.waitAs(sq, trace.KindSendrecv)
	return msg
}

// checkPeerTag validates arguments; wildcards are only legal on receives.
func (r *Rank) checkPeerTag(op string, peer, tag int, recv bool) {
	n := len(r.job.ranks)
	if recv {
		if peer != AnySource && (peer < 0 || peer >= n) {
			panic(fmt.Sprintf("mpi: %s source %d out of range [0,%d)", op, peer, n))
		}
		if tag != AnyTag && tag < 0 {
			panic(fmt.Sprintf("mpi: %s negative tag %d", op, tag))
		}
		return
	}
	if peer < 0 || peer >= n {
		panic(fmt.Sprintf("mpi: %s destination %d out of range [0,%d)", op, peer, n))
	}
	if peer == r.id {
		panic(fmt.Sprintf("mpi: %s to self (rank %d) unsupported", op, r.id))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: %s negative tag %d", op, tag))
	}
}

// matchUnexpected scans the unexpected-message queue in arrival order for
// an envelope matching a newly posted receive.
func (r *Rank) matchUnexpected(req *Request) *envelope {
	for i, env := range r.unexpected {
		if matches(req, env) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			return env
		}
	}
	return nil
}

// matchPosted scans posted receives in post order for one matching an
// arriving envelope header.
func (r *Rank) matchPosted(env *envelope) *Request {
	for i, req := range r.posted {
		if matches(req, env) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			return req
		}
	}
	return nil
}

// matches implements MPI matching rules with wildcards.
func matches(req *Request, env *envelope) bool {
	if req.peer != AnySource && req.peer != env.src {
		return false
	}
	if req.tag != AnyTag && req.tag != env.tag {
		return false
	}
	return true
}

// headerArrive delivers an envelope header at the destination: match a
// posted receive or queue as unexpected.
func (j *Job) headerArrive(env *envelope) {
	env.headerArrived = true
	if env.eager {
		if env.dataArrived {
			j.notePending(env.dst, -1)
		}
	} else {
		// A rendezvous envelope goes quiescent once its header lands:
		// neither side has another protocol event until the receiver
		// matches it (matchEnvelope re-arms both counts before the CTS).
		// Without this an early sender would suppress its own and the
		// receiving node's window promises for the whole time the
		// receiver is still computing.
		j.notePending(env.src, -1)
		j.notePending(env.dst, -1)
	}
	dst := j.ranks[env.dst]
	if req := dst.matchPosted(env); req != nil {
		j.matchEnvelope(env, req)
		return
	}
	dst.unexpected = append(dst.unexpected, env)
}

// matchEnvelope pairs an envelope with a receive request and advances the
// protocol: eager messages complete once data has arrived; rendezvous
// messages start the clear-to-send handshake and wire transfer.
func (j *Job) matchEnvelope(env *envelope, req *Request) {
	env.recvReq = req
	req.env = env
	if env.eager {
		if env.dataArrived {
			j.completeRecv(env)
		}
		return
	}
	// Rendezvous: CTS travels back to the sender (one latency), then the
	// data crosses the wire (see rendezvousCTS / rendezvousDone /
	// rendezvousArrive). This runs on the receiver's partition; the CTS
	// is a destination-to-source post. The envelope leaves its quiescent
	// period here: both sides re-arm their pending counts before the
	// CTS is in flight (headerArrive dropped them at header delivery).
	j.notePending(env.src, 1)
	j.notePending(env.dst, 1)
	src, dst := j.ranks[env.src], j.ranks[env.dst]
	lat := j.net.Latency(src.place.Node, dst.place.Node)
	j.post(env.dst, env.src, lat, rendezvousCTS, env)
}

// finishRecv marks a matched receive whose data has arrived as complete
// and reports whether it was newly completed (the receiver then needs a
// wake).
func (j *Job) finishRecv(env *envelope) bool {
	req := env.recvReq
	if req.state == reqDone {
		return false
	}
	req.state = reqDone
	// A rendezvous destination settles here: its last output-capable
	// event — the transfer completion that may post the delivery ack —
	// is the one calling finishRecv. Eager envelopes settled both sides
	// already at header/data arrival (see eagerDataArrived).
	if !env.eager {
		j.notePending(env.dst, -1)
	}
	m := j.arenaOf(env.dst).newMessage()
	m.Src, m.Tag, m.ModelBytes, m.Data = env.src, env.tag, env.modelBytes, env.data
	req.msg = m
	return true
}

// completeRecv finishes a matched receive whose data has arrived.
func (j *Job) completeRecv(env *envelope) {
	if j.finishRecv(env) {
		j.wake(env.dst)
	}
}
