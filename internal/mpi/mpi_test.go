package mpi

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/trace"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// testRun runs a job on ClusterA with a trace recorder attached.
func testRun(t *testing.T, ranks int, body func(r *Rank)) (Result, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder(ranks, true)
	res, err := Run(Config{Cluster: machine.ClusterA(), Ranks: ranks, Trace: rec}, body)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

func TestSendRecvDataIntegrity(t *testing.T) {
	payload := []float64{3.14, 2.71, 1.41}
	_, _ = testRun(t, 2, func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 7, payload, 24)
		case 1:
			m := r.Recv(0, 7)
			if m.Src != 0 || m.Tag != 7 {
				t.Errorf("message envelope = src %d tag %d, want 0/7", m.Src, m.Tag)
			}
			for i, v := range payload {
				if m.Data[i] != v {
					t.Errorf("data[%d] = %v, want %v", i, m.Data[i], v)
				}
			}
		}
	})
}

func TestSendCopiesBuffer(t *testing.T) {
	_, _ = testRun(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			buf := []float64{1}
			q := r.Isend(1, 0, buf, 8)
			buf[0] = 999 // mutate after Isend: receiver must see 1
			r.Wait(q)
		} else {
			m := r.Recv(0, 0)
			if m.Data[0] != 1 {
				t.Errorf("receiver saw mutated buffer: %v", m.Data[0])
			}
		}
	})
}

func TestEagerSendDoesNotBlock(t *testing.T) {
	// Small message: sender completes even though the receiver posts its
	// receive only after a long compute.
	var sendDone float64
	_, _ = testRun(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, []float64{1}, 100)
			sendDone = r.Now()
		} else {
			r.Compute(machine.Phase{FlopsSIMD: 76.8e9}) // ~1 s
			r.Recv(0, 0)
		}
	})
	if sendDone > 0.01 {
		t.Fatalf("eager send returned at %v, want immediately", sendDone)
	}
}

func TestRendezvousSendBlocksUntilRecvPosted(t *testing.T) {
	// Large message: the sender must block until the receiver posts.
	var sendDone float64
	_, _ = testRun(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, []float64{1}, 4*units.MiB)
			sendDone = r.Now()
		} else {
			r.Compute(machine.Phase{FlopsSIMD: 76.8e9}) // ~1 s
			r.Recv(0, 0)
		}
	})
	if sendDone < 1.0 {
		t.Fatalf("rendezvous send returned at %v, want >= 1.0 (blocked on receiver)", sendDone)
	}
}

func TestRendezvousBlockedTimeIsTraced(t *testing.T) {
	_, rec := testRun(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, nil, 4*units.MiB)
		} else {
			r.Compute(machine.Phase{FlopsSIMD: 76.8e9})
			r.Recv(0, 0)
		}
	})
	if got := rec.Sum(0, trace.KindSend); got < 0.9 {
		t.Fatalf("rank 0 MPI_Send time = %v, want ~1 s of rendezvous blocking", got)
	}
}

func TestMessageOrderingPerPair(t *testing.T) {
	// Two same-tag messages must match in send order even though the
	// second is smaller and its data lands earlier.
	_, _ = testRun(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 5, []float64{1}, 32*units.KiB)
			r.Send(1, 5, []float64{2}, 16)
		} else {
			m1 := r.Recv(0, 5)
			m2 := r.Recv(0, 5)
			if m1.Data[0] != 1 || m2.Data[0] != 2 {
				t.Errorf("out-of-order matching: got %v then %v", m1.Data[0], m2.Data[0])
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	_, _ = testRun(t, 3, func(r *Rank) {
		switch r.ID() {
		case 0:
			m := r.Recv(AnySource, AnyTag)
			if m.Data[0] != float64(m.Src) {
				t.Errorf("wildcard recv: data %v from src %d", m.Data[0], m.Src)
			}
			m2 := r.Recv(AnySource, AnyTag)
			if m2.Data[0] != float64(m2.Src) {
				t.Errorf("wildcard recv 2: data %v from src %d", m2.Data[0], m2.Src)
			}
			if m.Src == m2.Src {
				t.Error("received twice from same source")
			}
		default:
			r.Send(0, r.ID(), []float64{float64(r.ID())}, 8)
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	_, _ = testRun(t, 2, func(r *Rank) {
		other := 1 - r.ID()
		m := r.Sendrecv(other, 3, []float64{float64(r.ID())}, 1*units.MiB, other, 3)
		if m.Data[0] != float64(other) {
			t.Errorf("rank %d got %v, want %v", r.ID(), m.Data[0], float64(other))
		}
	})
}

func TestIsendIrecvWaitall(t *testing.T) {
	_, _ = testRun(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			reqs := []*Request{
				r.Isend(1, 1, []float64{10}, 8),
				r.Isend(1, 2, []float64{20}, 8),
			}
			r.Waitall(reqs)
		} else {
			q1 := r.Irecv(0, 2)
			q2 := r.Irecv(0, 1)
			msgs := r.Waitall([]*Request{q1, q2})
			if msgs[0].Data[0] != 20 || msgs[1].Data[0] != 10 {
				t.Errorf("tag-selective irecv got %v/%v", msgs[0].Data[0], msgs[1].Data[0])
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	// Rank 1 computes ~1 s before the barrier; every rank must leave the
	// barrier no earlier than that.
	exits := make([]float64, 4)
	_, _ = testRun(t, 4, func(r *Rank) {
		if r.ID() == 1 {
			r.Compute(machine.Phase{FlopsSIMD: 76.8e9})
		}
		r.Barrier()
		exits[r.ID()] = r.Now()
	})
	for i, e := range exits {
		if e < 1.0 {
			t.Errorf("rank %d left barrier at %v, before straggler arrived", i, e)
		}
		if e > 1.01 {
			t.Errorf("rank %d left barrier at %v, too long after straggler", i, e)
		}
	}
}

func TestBarrierTracksWaitTime(t *testing.T) {
	_, rec := testRun(t, 4, func(r *Rank) {
		if r.ID() == 1 {
			r.Compute(machine.Phase{FlopsSIMD: 76.8e9})
		}
		r.Barrier()
	})
	// Rank 0 waited ~1 s in the barrier; rank 1 almost none.
	if w := rec.Sum(0, trace.KindBarrier); w < 0.9 {
		t.Errorf("rank 0 barrier time %v, want ~1 s", w)
	}
	if w := rec.Sum(1, trace.KindBarrier); w > 0.1 {
		t.Errorf("rank 1 barrier time %v, want ~0", w)
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			_, _ = testRun(t, n, func(r *Rank) {
				in := []float64{float64(r.ID()), 1}
				out := r.Allreduce(in, 16, OpSum)
				wantSum := float64(n*(n-1)) / 2
				if out[0] != wantSum || out[1] != float64(n) {
					t.Errorf("rank %d allreduce = %v, want [%v %v]", r.ID(), out, wantSum, float64(n))
				}
			})
		})
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	_, _ = testRun(t, 5, func(r *Rank) {
		v := float64(r.ID())
		if got := r.Allreduce([]float64{v}, 8, OpMax)[0]; got != 4 {
			t.Errorf("max = %v, want 4", got)
		}
		if got := r.Allreduce([]float64{v}, 8, OpMin)[0]; got != 0 {
			t.Errorf("min = %v, want 0", got)
		}
	})
}

func TestReduceToRoot(t *testing.T) {
	for _, root := range []int{0, 2} {
		root := root
		t.Run(fmt.Sprintf("root=%d", root), func(t *testing.T) {
			_, _ = testRun(t, 6, func(r *Rank) {
				out := r.Reduce(root, []float64{1}, 8, OpSum)
				if r.ID() == root {
					if out == nil || out[0] != 6 {
						t.Errorf("root result = %v, want [6]", out)
					}
				} else if out != nil {
					t.Errorf("non-root rank %d got %v, want nil", r.ID(), out)
				}
			})
		})
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{2, 3, 8, 11} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			_, _ = testRun(t, n, func(r *Rank) {
				var in []float64
				if r.ID() == 1 {
					in = []float64{42, 43}
				} else {
					in = []float64{0, 0}
				}
				out := r.Bcast(1, in, 16)
				if out[0] != 42 || out[1] != 43 {
					t.Errorf("rank %d bcast got %v", r.ID(), out)
				}
			})
		})
	}
}

func TestAllgather(t *testing.T) {
	_, _ = testRun(t, 5, func(r *Rank) {
		out := r.Allgather([]float64{float64(r.ID() * 10)}, 8)
		for i := 0; i < 5; i++ {
			if out[i][0] != float64(i*10) {
				t.Errorf("rank %d allgather[%d] = %v, want %v", r.ID(), i, out[i][0], float64(i*10))
			}
		}
	})
}

func TestAlltoall(t *testing.T) {
	_, _ = testRun(t, 4, func(r *Rank) {
		chunks := make([][]float64, 4)
		for i := range chunks {
			chunks[i] = []float64{float64(r.ID()*100 + i)}
		}
		out := r.Alltoall(chunks, 8)
		for i := 0; i < 4; i++ {
			want := float64(i*100 + r.ID())
			if out[i][0] != want {
				t.Errorf("rank %d alltoall[%d] = %v, want %v", r.ID(), i, out[i][0], want)
			}
		}
	})
}

func TestConsecutiveCollectivesDoNotCrossMatch(t *testing.T) {
	// A fast rank racing ahead into the next collective must not steal
	// messages from the previous one.
	_, _ = testRun(t, 3, func(r *Rank) {
		for iter := 0; iter < 10; iter++ {
			out := r.Allreduce([]float64{1}, 8, OpSum)
			if out[0] != 3 {
				t.Errorf("iter %d: allreduce = %v, want 3", iter, out[0])
			}
			r.Barrier()
		}
	})
}

func TestDeadlockIsReported(t *testing.T) {
	err := func() error {
		_, err := Run(Config{Cluster: machine.ClusterA(), Ranks: 2}, func(r *Rank) {
			r.Recv(1-r.ID(), 0) // both receive first: deadlock
		})
		return err
	}()
	if err == nil {
		t.Fatal("mutual Recv did not report deadlock")
	}
}

func TestMPITimeFeedsUsage(t *testing.T) {
	res, _ := testRun(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(machine.Phase{FlopsSIMD: 76.8e9})
			r.Send(1, 0, nil, 4*units.MiB)
		} else {
			r.Recv(0, 0) // waits ~1 s for the sender to compute
		}
	})
	if res.Usage.TimeMPI < 0.9 {
		t.Fatalf("usage MPI time = %v, want ~1 s", res.Usage.TimeMPI)
	}
}

func TestSelfSendPanics(t *testing.T) {
	_, err := Run(Config{Cluster: machine.ClusterA(), Ranks: 2}, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(0, 0, nil, 8)
		}
	})
	if err == nil {
		t.Fatal("send-to-self did not error")
	}
}

func TestAllreduceMatchesLocalReductionProperty(t *testing.T) {
	f := func(raw [7]int32, nSel uint8) bool {
		var vals [7]float64
		for i, v := range raw {
			vals[i] = float64(v) / 16 // bounded, exactly representable
		}
		n := 2 + int(nSel)%6 // 2..7 ranks
		ok := true
		_, err := Run(Config{Cluster: machine.ClusterA(), Ranks: n}, func(r *Rank) {
			in := []float64{vals[r.ID()]}
			out := r.Allreduce(in, 8, OpSum)
			want := 0.0
			for i := 0; i < n; i++ {
				want += vals[i]
			}
			if math.Abs(out[0]-want) > 1e-9*(1+math.Abs(want)) {
				ok = false
			}
		})
		return err == nil && ok
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierScalingCost(t *testing.T) {
	// Dissemination barrier cost grows with log2(P): 16 ranks should pay
	// more rounds than 2 ranks but far less than linearly.
	cost := func(n int) float64 {
		res, _ := testRun(t, n, func(r *Rank) {
			r.Barrier()
		})
		return res.Wall
	}
	c2, c16 := cost(2), cost(16)
	if c16 <= c2 {
		t.Fatalf("barrier cost did not grow: %v vs %v", c2, c16)
	}
	if c16 > 8*c2 {
		t.Fatalf("barrier cost grew linearly: %v vs %v", c2, c16)
	}
}

func TestAllreduceLargePayloadRabenseifner(t *testing.T) {
	// Payloads above the threshold take the reduce-scatter + allgather
	// path; the result must match the local reduction exactly for every
	// rank count, including non-powers of two.
	for _, n := range []int{3, 4, 5, 7, 8, 12, 16} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const L = 64
			_, err := Run(Config{Cluster: machine.ClusterA(), Ranks: n}, func(r *Rank) {
				in := make([]float64, L)
				for i := range in {
					in[i] = float64(r.ID()*1000 + i)
				}
				out := r.Allreduce(in, 4*units.MiB, OpSum)
				for i := range out {
					want := float64(i*n) + 1000*float64(n*(n-1))/2
					if math.Abs(out[i]-want) > 1e-9 {
						t.Fatalf("rank %d out[%d] = %v, want %v", r.ID(), i, out[i], want)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllreduceLargeMovesLessDataThanDoubling(t *testing.T) {
	// The bandwidth-optimal path must beat recursive doubling for large
	// payloads: compare wall time for a 4 MiB reduction on 16 ranks
	// against a hypothetical log2(P) x payload pattern.
	res, _ := testRun(t, 16, func(r *Rank) {
		in := make([]float64, 128)
		r.Allreduce(in, 4*units.MiB, OpSum)
	})
	// Recursive doubling would move log2(16)=4 full payloads per rank:
	// >= 4 * 8 MiB / 10 GB/s ~ 3.3 ms. Rabenseifner should be well under.
	if res.Wall > 3e-3 {
		t.Fatalf("large allreduce took %.2f ms; bandwidth-optimal path not effective", res.Wall*1e3)
	}
}

func TestWaitanyReturnsFirstCompleted(t *testing.T) {
	_, _ = testRun(t, 3, func(r *Rank) {
		switch r.ID() {
		case 0:
			q1 := r.Irecv(1, 1) // arrives late
			q2 := r.Irecv(2, 2) // arrives early
			idx := r.Waitany([]*Request{q1, q2})
			if idx != 1 {
				t.Errorf("Waitany = %d, want 1 (early sender)", idx)
			}
			if msg := q2.Message(); msg == nil || msg.Data[0] != 22 {
				t.Errorf("early message wrong: %+v", q2.Message())
			}
			r.Wait(q1)
		case 1:
			r.Compute(machine.Phase{FlopsSIMD: 76.8e9}) // ~1 s delay
			r.Send(0, 1, []float64{11}, 8)
		case 2:
			r.Send(0, 2, []float64{22}, 8)
		}
	})
}

func TestWaitanyAttributesRecvTime(t *testing.T) {
	_, rec := testRun(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			q := r.Irecv(1, 0)
			r.Waitany([]*Request{q})
		} else {
			r.Compute(machine.Phase{FlopsSIMD: 76.8e9})
			r.Send(0, 0, nil, 8)
		}
	})
	if got := rec.Sum(0, trace.KindRecv); got < 0.9 {
		t.Fatalf("Waitany on receives recorded %v s as MPI_Recv, want ~1", got)
	}
}

func TestRequestDoneAndMessage(t *testing.T) {
	_, _ = testRun(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			q := r.Isend(1, 0, []float64{5}, 8)
			if !q.Done() { // eager send completes locally
				t.Error("eager Isend not immediately done")
			}
			if q.Message() != nil {
				t.Error("send request carries a message")
			}
		} else {
			q := r.Irecv(0, 0)
			r.Wait(q)
			if !q.Done() || q.Message() == nil {
				t.Error("completed recv lacks message")
			}
		}
	})
}

func TestAllreduceHierarchicalMultiNode(t *testing.T) {
	// 80 ranks span two ClusterA nodes: the large-payload path goes
	// through the hierarchical algorithm and must still reduce exactly.
	const L = 64
	_, err := Run(Config{Cluster: machine.ClusterA(), Ranks: 80}, func(r *Rank) {
		in := make([]float64, L)
		for i := range in {
			in[i] = float64(r.ID() + i)
		}
		out := r.Allreduce(in, 8*units.MiB, OpSum)
		n := float64(r.Size())
		base := n * (n - 1) / 2 // sum of rank ids
		for i := range out {
			want := base + n*float64(i)
			if math.Abs(out[i]-want) > 1e-9 {
				t.Fatalf("rank %d out[%d] = %v, want %v", r.ID(), i, out[i], want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalCheaperThanFlat(t *testing.T) {
	// At 4 nodes, the hierarchical reduction must beat a flat
	// rank-level reduce-scatter: only leaders use the NICs.
	cost := func(body func(r *Rank)) float64 {
		res, err := Run(Config{Cluster: machine.ClusterA(), Ranks: 288}, body)
		if err != nil {
			t.Fatal(err)
		}
		return res.Wall
	}
	payload := make([]float64, 1024)
	hier := cost(func(r *Rank) {
		r.Allreduce(payload, 32*units.MiB, OpSum)
	})
	flat := cost(func(r *Rank) {
		all := make([]int, r.Size())
		for i := range all {
			all[i] = i
		}
		r.beginColl(trace.KindAllreduce)
		r.rsagAmong(all, append([]float64(nil), payload...), 32*units.MiB, OpSum, 0)
		r.endColl()
	})
	if hier >= flat {
		t.Fatalf("hierarchical allreduce (%.4fs) not cheaper than flat (%.4fs)", hier, flat)
	}
}
