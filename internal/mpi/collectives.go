package mpi

import (
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// Collectives are implemented with the textbook algorithms on top of the
// simulated point-to-point layer, so their costs — latency terms growing
// with log2(P), bandwidth terms with the payload — emerge from the same
// protocol machinery as application messages.
//
// Tag scheme: each collective call consumes a per-rank sequence number
// (identical across ranks because collectives are globally ordered per
// MPI semantics); tags are TagUserMax + seq*maxRounds + round, preventing
// cross-matching between consecutive collectives.

const collRounds = 64 // max rounds of any collective; bounds the tag space per call

// collTag returns the internal tag for a round of the current collective.
func (r *Rank) collTag(round int) int {
	return TagUserMax + r.collSeq*collRounds + round
}

// beginColl enters collective context for trace attribution.
func (r *Rank) beginColl(kind trace.Kind) {
	r.inColl = true
	r.collKind = kind
}

// endColl leaves collective context and advances the sequence number.
func (r *Rank) endColl() {
	r.inColl = false
	r.collSeq++
}

// Barrier synchronizes all ranks using the dissemination algorithm:
// ceil(log2 P) rounds of pairwise token exchanges.
func (r *Rank) Barrier() {
	n := r.Size()
	if n == 1 {
		return
	}
	r.beginColl(trace.KindBarrier)
	defer r.endColl()
	round := 0
	for dist := 1; dist < n; dist *= 2 {
		dst := (r.id + dist) % n
		src := (r.id - dist + n) % n
		sq := r.Isend(dst, r.collTag(round), nil, 8)
		rq := r.Irecv(src, r.collTag(round))
		r.waitAs(rq, trace.KindBarrier)
		r.waitAs(sq, trace.KindBarrier)
		round++
	}
}

// AllreduceRabenseifnerThreshold is the payload size above which
// Allreduce switches from recursive doubling (latency-optimal) to
// reduce-scatter + allgather (bandwidth-optimal, ~2 x payload per rank
// instead of log2(P) x payload) — the algorithm selection real MPI
// libraries perform for large reductions such as soma's density field.
const AllreduceRabenseifnerThreshold = 256 * 1024

// Allreduce reduces data elementwise across all ranks with op and returns
// the result on every rank. modelBytes is the paper-scale payload of the
// reduced buffer. Small payloads use recursive doubling with the standard
// fold-in step for non-power-of-two rank counts; large payloads use the
// Rabenseifner reduce-scatter + allgather algorithm.
func (r *Rank) Allreduce(data []float64, modelBytes float64, op Op) []float64 {
	if modelBytes > AllreduceRabenseifnerThreshold && r.Size() > 2 {
		if r.job.sys.Nodes() > 1 {
			// Multi-node jobs reduce within each node first, so only one
			// rank per node pays inter-node bandwidth — the hierarchical
			// algorithm production MPIs select for large payloads. This
			// is what bounds soma's reduction cost and produces its
			// per-node bandwidth plateau (Sect. 5.1.2).
			return r.allreduceHierarchical(data, modelBytes, op)
		}
		p2 := 1
		for p2*2 <= r.Size() {
			p2 *= 2
		}
		// The segment arithmetic needs at least two elements per
		// participant; tiny real payloads keep the latency-optimal path.
		if len(data) >= 2*p2 {
			return r.allreduceLarge(data, modelBytes, op)
		}
	}
	n := r.Size()
	acc := r.arena().cloneFloats(data)
	if n == 1 {
		return acc
	}
	r.beginColl(trace.KindAllreduce)
	defer r.endColl()
	// The dense identity participant list makes this exactly the
	// recursive-doubling-with-fold exchange the dedicated code used to
	// spell out inline: same partners, same tags, same event order.
	return r.doublingAmong(r.job.allRanks, acc, modelBytes, op, 0)
}

// allreduceLarge is the single-node Rabenseifner path: reduce-scatter +
// allgather over all ranks. Each rank moves ~2x the payload in total,
// which is why MPI libraries select this algorithm for large buffers.
func (r *Rank) allreduceLarge(data []float64, modelBytes float64, op Op) []float64 {
	acc := r.arena().cloneFloats(data)
	if r.Size() == 1 {
		return acc
	}
	r.beginColl(trace.KindAllreduce)
	defer r.endColl()
	return r.rsagAmong(r.job.allRanks, acc, modelBytes, op, 0)
}

// allreduceHierarchical reduces within each node to a leader rank,
// allreduces among the node leaders, and broadcasts back within each
// node. Intra-node phases run over shared memory; only leaders touch the
// inter-node fabric. Tag-round layout: intra reduce 0..9, leader phase
// 10..39, intra bcast 40..49 (all within the per-call tag window).
func (r *Rank) allreduceHierarchical(data []float64, modelBytes float64, op Op) []float64 {
	acc := r.arena().cloneFloats(data)
	r.beginColl(trace.KindAllreduce)
	defer r.endColl()

	n := r.Size()
	cpn := r.job.cpn
	node := r.place.Node
	first := node * cpn
	last := first + cpn - 1
	if last >= n {
		last = n - 1
	}
	nLocal := last - first + 1
	rel := r.id - first

	// Phase 1: binomial reduce onto the node leader (rank `first`).
	round := 0
	for mask := 1; mask < nLocal; mask *= 2 {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < nLocal {
				msg := r.Recv(first+srcRel, r.collTag(round))
				op.apply(acc, msg.Data)
			}
		} else {
			r.Send(first+(rel&^mask), r.collTag(round), acc, modelBytes)
			break
		}
		round++
	}

	// Phase 2: leaders allreduce across nodes (topology precomputed in
	// mpi.Run).
	if rel == 0 {
		leaders := r.job.leaders
		if len(leaders) > 1 {
			p2 := 1
			for p2*2 <= len(leaders) {
				p2 *= 2
			}
			if len(acc) >= 2*p2 {
				acc = r.rsagAmong(leaders, acc, modelBytes, op, 10)
			} else {
				// Tiny real payload: recursive doubling with fold.
				acc = r.doublingAmong(leaders, acc, modelBytes, op, 10)
			}
		}
	}

	// Phase 3: binomial broadcast from the node leader.
	mask := 1
	for mask < nLocal {
		if rel&mask != 0 {
			msg := r.Recv(first+(rel&^mask), r.collTag(40))
			acc = msg.Data
			break
		}
		mask *= 2
	}
	mask /= 2
	for mask > 0 {
		if rel+mask < nLocal {
			r.Send(first+rel+mask, r.collTag(40), acc, modelBytes)
		}
		mask /= 2
	}
	return acc
}

// indexOf returns the position of id in list (-1 if absent).
func indexOf(list []int, id int) int {
	for i, v := range list {
		if v == id {
			return i
		}
	}
	return -1
}

// foldRank maps a dense [0,p2) doubling index back to the participant
// rank, undoing the fold of the first 2*rem participants into pairs.
func foldRank(participants []int, rem, i int) int {
	if i < rem {
		return participants[2*i]
	}
	return participants[i+rem]
}

// doublingAmong is a full-payload recursive-doubling allreduce over an
// arbitrary participant list (with fold-in for non-powers of two), used
// when payloads are too small for segment arithmetic.
func (r *Rank) doublingAmong(participants []int, acc []float64, modelBytes float64, op Op, roundBase int) []float64 {
	n := len(participants)
	idx := indexOf(participants, r.id)
	p2 := 1
	for p2*2 <= n {
		p2 *= 2
	}
	rem := n - p2
	round := roundBase
	participating := true
	if idx < 2*rem {
		if idx%2 == 1 {
			r.Send(participants[idx-1], r.collTag(round), acc, modelBytes)
			participating = false
		} else {
			msg := r.Recv(participants[idx+1], r.collTag(round))
			op.apply(acc, msg.Data)
		}
	}
	round++
	if participating {
		my := idx
		if idx < 2*rem {
			my = idx / 2
		} else {
			my = idx - rem
		}
		for dist := 1; dist < p2; dist *= 2 {
			partner := foldRank(participants, rem, my^dist)
			sq := r.Isend(partner, r.collTag(round), acc, modelBytes)
			msg := r.Recv(partner, r.collTag(round))
			r.waitAs(sq, trace.KindAllreduce)
			op.apply(acc, msg.Data)
			round++
		}
	} else {
		round += log2ceil(p2)
	}
	if idx < 2*rem {
		if idx%2 == 0 {
			r.Send(participants[idx+1], r.collTag(round), acc, modelBytes)
		} else {
			msg := r.Recv(participants[idx-1], r.collTag(round))
			acc = msg.Data
		}
	}
	return acc
}

// rsagAmong performs the Rabenseifner reduce-scatter + allgather
// allreduce over an arbitrary participant list; r.id must be a member.
// Rounds start at roundBase within the call's tag window.
func (r *Rank) rsagAmong(participants []int, acc []float64, modelBytes float64, op Op, roundBase int) []float64 {
	n := len(participants)
	length := len(acc)
	idx := indexOf(participants, r.id)
	p2 := 1
	for p2*2 <= n {
		p2 *= 2
	}
	rem := n - p2
	round := roundBase

	// Fold to a power of two.
	participating := true
	if idx < 2*rem {
		if idx%2 == 1 {
			r.Send(participants[idx-1], r.collTag(round), acc, modelBytes)
			participating = false
		} else {
			msg := r.Recv(participants[idx+1], r.collTag(round))
			op.apply(acc, msg.Data)
		}
	}
	round++

	rounds := log2ceil(p2)
	if participating {
		my := idx
		if idx < 2*rem {
			my = idx / 2
		} else {
			my = idx - rem
		}
		bounds := r.boundsScratch(rounds + 1)
		lo, hi := 0, length
		bounds[0] = [2]int{lo, hi}
		d := p2 / 2
		for t := 0; t < rounds; t++ {
			mid := lo + (hi-lo)/2
			if my&d == 0 {
				hi = mid
			} else {
				lo = mid
			}
			bounds[t+1] = [2]int{lo, hi}
			d /= 2
		}
		// Reduce-scatter.
		d = p2 / 2
		for t := 0; t < rounds; t++ {
			partner := foldRank(participants, rem, my^d)
			mine := bounds[t+1]
			cur := bounds[t]
			theirLo, theirHi := cur[0], cur[1]
			if mine[0] == cur[0] {
				theirLo = mine[1]
			} else {
				theirHi = mine[0]
			}
			frac := float64(theirHi-theirLo) / float64(length)
			sq := r.Isend(partner, r.collTag(round), acc[theirLo:theirHi], modelBytes*frac)
			msg := r.Recv(partner, r.collTag(round))
			r.waitAs(sq, trace.KindAllreduce)
			op.apply(acc[mine[0]:mine[1]], msg.Data)
			round++
			d /= 2
		}
		// Allgather.
		d = 1
		for t := rounds - 1; t >= 0; t-- {
			partner := foldRank(participants, rem, my^d)
			mine := bounds[t+1]
			cur := bounds[t]
			theirLo, theirHi := cur[0], cur[1]
			if mine[0] == cur[0] {
				theirLo = mine[1]
			} else {
				theirHi = mine[0]
			}
			frac := float64(mine[1]-mine[0]) / float64(length)
			sq := r.Isend(partner, r.collTag(round), acc[mine[0]:mine[1]], modelBytes*frac)
			msg := r.Recv(partner, r.collTag(round))
			r.waitAs(sq, trace.KindAllreduce)
			copy(acc[theirLo:theirHi], msg.Data)
			round++
			d *= 2
		}
	} else {
		round += 2 * rounds
	}

	// Unfold.
	if idx < 2*rem {
		if idx%2 == 0 {
			r.Send(participants[idx+1], r.collTag(round), acc, modelBytes)
		} else {
			msg := r.Recv(participants[idx-1], r.collTag(round))
			acc = msg.Data
		}
	}
	return acc
}

// Reduce reduces data onto root using a binomial tree; non-root ranks
// return nil.
func (r *Rank) Reduce(root int, data []float64, modelBytes float64, op Op) []float64 {
	n := r.Size()
	acc := r.arena().cloneFloats(data)
	if n == 1 {
		return acc
	}
	r.beginColl(trace.KindReduce)
	defer r.endColl()

	rel := (r.id - root + n) % n
	round := 0
	for mask := 1; mask < n; mask *= 2 {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < n {
				msg := r.Recv((srcRel+root)%n, r.collTag(round))
				op.apply(acc, msg.Data)
			}
		} else {
			dstRel := rel &^ mask
			r.Send((dstRel+root)%n, r.collTag(round), acc, modelBytes)
			round++
			break
		}
		round++
	}
	// Drain remaining sequence space consistently (tags are per-call
	// unique already, so nothing further needed).
	if r.id == root {
		return acc
	}
	return nil
}

// Bcast broadcasts root's data to all ranks using a binomial tree and
// returns the received slice (root returns its own copy).
func (r *Rank) Bcast(root int, data []float64, modelBytes float64) []float64 {
	n := r.Size()
	buf := r.arena().cloneFloats(data)
	if n == 1 {
		return buf
	}
	r.beginColl(trace.KindBcast)
	defer r.endColl()

	rel := (r.id - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root + n) % n
			msg := r.Recv(src, r.collTag(0))
			buf = msg.Data
			break
		}
		mask *= 2
	}
	mask /= 2
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + root) % n
			r.Send(dst, r.collTag(0), buf, modelBytes)
		}
		mask /= 2
	}
	return buf
}

// Allgather gathers each rank's data slice on every rank using the ring
// algorithm; result[i] is rank i's contribution. modelBytes is the
// paper-scale size of one rank's contribution.
func (r *Rank) Allgather(data []float64, modelBytes float64) [][]float64 {
	n := r.Size()
	out := r.arena().allocSlices(n)
	out[r.id] = r.arena().cloneFloats(data)
	if n == 1 {
		return out
	}
	r.beginColl(trace.KindAllgather)
	defer r.endColl()

	right := (r.id + 1) % n
	left := (r.id - 1 + n) % n
	cur := r.id
	for step := 0; step < n-1; step++ {
		sq := r.Isend(right, r.collTag(step%collRounds), out[cur], modelBytes)
		msg := r.Recv(left, r.collTag(step%collRounds))
		r.waitAs(sq, trace.KindAllgather)
		cur = (cur - 1 + n) % n
		out[cur] = msg.Data
	}
	return out
}

// Alltoall exchanges personalized data between all rank pairs; chunks[i]
// goes to rank i, and the result's entry i came from rank i. modelBytes
// is the paper-scale size of a single chunk.
func (r *Rank) Alltoall(chunks [][]float64, modelBytes float64) [][]float64 {
	n := r.Size()
	if len(chunks) != n {
		panic("mpi: Alltoall chunk count != ranks")
	}
	out := r.arena().allocSlices(n)
	out[r.id] = r.arena().cloneFloats(chunks[r.id])
	if n == 1 {
		return out
	}
	r.beginColl(trace.KindAlltoall)
	defer r.endColl()

	for step := 1; step < n; step++ {
		dst := (r.id + step) % n
		src := (r.id - step + n) % n
		sq := r.Isend(dst, r.collTag(step%collRounds), chunks[dst], modelBytes)
		msg := r.Recv(src, r.collTag(step%collRounds))
		r.waitAs(sq, trace.KindAlltoall)
		out[src] = msg.Data
	}
	return out
}

// log2ceil returns ceil(log2(v)) for v >= 1.
func log2ceil(v int) int {
	n, p := 0, 1
	for p < v {
		p *= 2
		n++
	}
	return n
}
