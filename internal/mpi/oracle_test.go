package mpi

import (
	"reflect"
	"strings"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// computeHeavyBody models the pot3d/sph-exa shape: a long run of compute
// phases closed by one collective. Every rank has the same in-core time
// (globally aligned phase ends) but rank-staggered L3/memory traffic, so
// each phase scatters flow-completion events across many distinct
// interior times. The static engine must barrier on every one of those
// clusters; the adaptive oracle promises the phase end and swallows the
// whole interior in a single window.
func computeHeavyBody(r *Rank) {
	for iter := 0; iter < 6; iter++ {
		r.Compute(machine.Phase{
			Name:        "stencil",
			FlopsScalar: 50 * units.M,
			BytesMem:    units.M * float64(1+r.ID()%7),
			BytesL3:     units.M * float64(1+r.ID()%5),
		})
	}
	r.Allreduce([]float64{1}, 8, OpSum)
}

// TestAdaptiveWindowCollapse pins the tentpole win mechanically: the
// same compute-heavy job runs under static and adaptive windows, must
// produce identical results, and the adaptive run must execute orders
// of magnitude fewer window barriers.
func TestAdaptiveWindowCollapse(t *testing.T) {
	ranks := machine.ClusterA().CPU.CoresPerNode() + 3 // two nodes
	base := Config{Cluster: machine.ClusterA(), Ranks: ranks, SimWorkers: 2}

	static := base
	static.StaticWindows = true
	sres, err := Run(static, computeHeavyBody)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := Run(base, computeHeavyBody)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ares.Usage, sres.Usage) {
		t.Errorf("adaptive Usage diverged from static:\n got %+v\nwant %+v",
			ares.Usage, sres.Usage)
	}
	if sres.Psim.AdaptiveWindows != 0 {
		t.Errorf("static run widened %d windows", sres.Psim.AdaptiveWindows)
	}
	if ares.Psim.AdaptiveWindows == 0 {
		t.Error("adaptive run never widened a window")
	}
	if ares.Psim.Windows*10 > sres.Psim.Windows {
		t.Errorf("windows did not collapse: adaptive %d vs static %d",
			ares.Psim.Windows, sres.Psim.Windows)
	}
	if ares.Psim.Mail != sres.Psim.Mail {
		t.Errorf("mail diverged: adaptive %d vs static %d — the same simulation must flow through the barriers",
			ares.Psim.Mail, sres.Psim.Mail)
	}
}

// TestOracleBalance checks the envelope accounting invariant: after any
// clean adaptive run, every node's pending counter is back to zero —
// each Isend's two increments found their matching settle points.
func TestOracleBalance(t *testing.T) {
	checked := false
	testOracleCheck = func(j *Job) {
		checked = true
		for node := range j.pending {
			if n := j.pending[node].n.Load(); n != 0 {
				t.Errorf("node %d ends with %d unsettled envelopes", node, n)
			}
		}
	}
	defer func() { testOracleCheck = nil }()

	ranks := machine.ClusterA().CPU.CoresPerNode() + 3
	cfg := Config{Cluster: machine.ClusterA(), Ranks: ranks, SimWorkers: 4}
	if _, err := Run(cfg, crossNodeBody(t)); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("oracle check hook never ran")
	}
}

// TestAdaptiveDeadlockDetected parks two ranks on different nodes in
// receives nothing will ever satisfy. Both partitions promise +Inf; the
// engine must drain, break out of the window loop, and report the
// deadlock — not spin widening windows toward infinity.
func TestAdaptiveDeadlockDetected(t *testing.T) {
	cpn := machine.ClusterA().CPU.CoresPerNode()
	cfg := Config{Cluster: machine.ClusterA(), Ranks: cpn + 1, SimWorkers: 2}
	_, err := Run(cfg, func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Recv(cpn, 7)
		case cpn:
			r.Recv(0, 7)
		}
	})
	if err == nil {
		t.Fatal("cross-node mutual recv deadlock reported success")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error %q does not report the deadlock", err)
	}
}

// TestAdaptiveZeroComputeFloor runs a job of zero-cost compute phases
// and cross-node ping-pong: the oracle has nothing to promise (phase
// end floors collapse to now), so windows must degrade gracefully to
// the static latency floor — never below it — and results must match
// the serial engine.
func TestAdaptiveZeroComputeFloor(t *testing.T) {
	cpn := machine.ClusterA().CPU.CoresPerNode()
	body := func(r *Rank) {
		peer := -1
		switch r.ID() {
		case 0:
			peer = cpn
		case cpn:
			peer = 0
		}
		for i := 0; i < 5; i++ {
			r.Compute(machine.Phase{Name: "nop"})
			if peer < 0 {
				continue
			}
			if r.ID() == 0 {
				r.Send(peer, 3, []float64{float64(i)}, 8)
				r.Recv(peer, 4)
			} else {
				r.Recv(peer, 3)
				r.Send(peer, 4, []float64{float64(i)}, 8)
			}
		}
	}
	base := Config{Cluster: machine.ClusterA(), Ranks: cpn + 1}
	serial, err := Run(base, body)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.SimWorkers = 2
	res, err := Run(cfg, body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Usage, serial.Usage) {
		t.Error("zero-compute adaptive run diverged from serial")
	}
	floor, err := netsim.HDR100().LatencyFloor()
	if err != nil {
		t.Fatal(err)
	}
	if res.Psim.Narrowest < floor {
		t.Errorf("narrowest window %g below latency floor %g — windows must only widen",
			res.Psim.Narrowest, floor)
	}
}

// TestAdaptiveStaticOscillation bounces one job between the serial
// engine and partitioned runs with adaptive and static windows, on
// pooled jobs and environments; results must stay bit-identical
// throughout. Under -race this also exercises the oracle's cross-window
// atomics against the engine's barrier reads.
func TestAdaptiveStaticOscillation(t *testing.T) {
	ranks := machine.ClusterA().CPU.CoresPerNode() + 3
	var want Result
	steps := []struct {
		workers int
		static  bool
	}{
		{0, false}, {8, false}, {8, true}, {2, false}, {0, true},
		{4, true}, {4, false}, {8, false}, {0, false},
	}
	for i, st := range steps {
		cfg := Config{
			Cluster: machine.ClusterA(), Ranks: ranks,
			SimWorkers: st.workers, StaticWindows: st.static,
		}
		res, err := Run(cfg, computeHeavyBody)
		if err != nil {
			t.Fatalf("step %d (workers=%d static=%v): %v", i, st.workers, st.static, err)
		}
		if i == 0 {
			want = res
		} else if !reflect.DeepEqual(res.Usage, want.Usage) {
			t.Errorf("step %d (workers=%d static=%v) diverged", i, st.workers, st.static)
		}
	}
}
