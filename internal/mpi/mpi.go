// Package mpi implements a simulated MPI runtime on top of the
// discrete-event engine: ranks are sim processes, point-to-point messages
// follow eager or rendezvous protocols over the netsim interconnect, and
// collectives are built from the same point-to-point machinery with the
// standard algorithms (dissemination barrier, recursive-doubling
// allreduce, binomial trees, ring allgather).
//
// Because the protocol state machine is executed rather than approximated,
// communication pathologies emerge mechanistically: the rendezvous
// serialization chain of minisweep, barrier waiting behind a straggler in
// lbm, and the log(P) cost growth of soma's large allreduces.
//
// The API mirrors the MPI subset the SPEChpc 2021 codes use. Payloads are
// real []float64 slices (collectives really reduce them); ModelBytes
// carries the paper-scale message size that drives the timing model, so
// kernels can run scaled-down grids while communication costs stay at
// paper scale.
package mpi

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/sim"
	"github.com/spechpc/spechpc-sim/internal/sim/psim"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// Wildcards for Recv matching, and the tag space boundary: user tags must
// stay below TagUserMax because collectives use the space above it.
const (
	AnySource = -1
	AnyTag    = -1
	// TagUserMax is the first tag reserved for internal collective use.
	TagUserMax = 1 << 20
)

// Config describes one simulated MPI job.
type Config struct {
	// Cluster is the machine the job runs on.
	Cluster *machine.ClusterSpec
	// Net holds interconnect parameters; a zero value selects HDR100.
	Net netsim.Spec
	// Ranks is the number of MPI processes, block-mapped onto cores.
	Ranks int
	// Trace, if non-nil, receives per-rank timeline events.
	Trace *trace.Recorder
	// SimWorkers > 1 executes a multi-node job on the conservative-
	// lookahead parallel engine (internal/sim/psim) with that many
	// concurrent partition executors. Output is byte-identical to the
	// serial engine at every worker count; single-node jobs and
	// SimWorkers <= 1 run serially. Requires a fabric with a positive
	// latency floor.
	SimWorkers int
	// StaticWindows disables the adaptive earliest-output-time window
	// widening of the partitioned engine, pinning every window to the
	// fabric latency floor (the pre-adaptive behavior). Results are
	// byte-identical either way; the knob exists for benchmarking and
	// bisection. Ignored on the serial path.
	StaticWindows bool
}

// Result is the outcome of a simulated job.
type Result struct {
	// Usage holds the aggregated performance/energy record.
	Usage machine.Usage
	// Trace is the recorder passed in the config (nil if none).
	Trace *trace.Recorder
	// Wall is the job wall-clock virtual time in seconds.
	Wall float64
	// Partitioned reports whether the job ran on the parallel engine;
	// Psim then holds its window statistics (zero for serial runs).
	Partitioned bool
	Psim        psim.Stats
}

// Job is the runtime state of a simulated MPI application. Jobs are
// recycled through jobPool: the System/Network instances, the Rank
// structs (with their matching-queue and collective-scratch capacity),
// and the spawn closures all survive across runs, so a steady-state
// campaign job performs no per-rank setup allocation.
type Job struct {
	rt    sim.Router
	sys   *machine.System
	net   *netsim.Network
	rec   *trace.Recorder
	ranks []*Rank // live ranks for this run: rankStore[:n]

	// rankStore keeps every Rank ever created for this Job at its
	// high-water length, so shrinking and regrowing the job shape does
	// not reconstruct ranks.
	rankStore []*Rank

	// parts holds one protocol-object arena per node; live entries are
	// parts[:nodes]. Sharding by node keeps the allocation-free hot
	// path when partitions execute concurrently: every allocation
	// happens on the arena of the partition the allocating code runs
	// on, so arenas are never shared between executors.
	parts []partArena

	// Collective topology, precomputed once per run in mpi.Run instead
	// of per collective call: the dense identity participant list, the
	// node-leader list of the hierarchical allreduce, and the
	// cores-per-node stride that defines it.
	allRanks []int
	leaders  []int
	cpn      int

	// Adaptive-lookahead oracle state (attachOracle). pending counts
	// live point-to-point protocol activity per node, from both sides:
	// an Isend increments the source AND destination node, and each
	// side's count drops when its last possible protocol event has
	// provably fired — eager sources at data arrival (the wire
	// injection strictly precedes it), eager destinations once header
	// and data have both landed, rendezvous both sides during the
	// quiescent gap between header arrival and match (re-armed with the
	// CTS) and finally at the transfer completion and delivery ack.
	// While a node's count is nonzero, protocol events not owned by any
	// rank's park state may still produce cross-node output, so its
	// oracle makes no promise. The counters are atomics because a
	// remote partition's events adjust this node's count mid-window;
	// they are read only at window barriers, after the engine's
	// wg.Wait.
	oracleOn bool
	pending  []pendingCount
	oracles  []nodeOracle
}

// pendingCount pads each node's envelope counter to its own cache
// line: the counters are the one piece of state partition executors
// update from several OS threads at once (an Isend bumps both
// endpoints' nodes), and unpadded they pack 8 to a line — hot protocol
// paths of unrelated nodes would false-share every increment.
type pendingCount struct {
	n atomic.Int64
	_ [56]byte
}

// nodeOracle is one node's sim.OutputOracle: a conservative promise
// about the node's next cross-partition send, derived from the park
// state of its ranks. The engine reads it only at window barriers.
type nodeOracle struct {
	j    *Job
	node int
}

// EarliestOutputTime returns a lower bound on the node's next
// cross-node send. No promise (-Inf, collapsing to the static window)
// whenever any protocol envelope touching the node is unsettled or any
// rank is mid-MPI-call; otherwise the earliest compute-phase end floor
// over computing ranks. Blocked ranks contribute no bound of their own:
// every path that could wake one is covered elsewhere — incoming or
// in-flight protocol events by the pending counter, local compute
// completions by their floor, and anything already queued by the
// environment's next-event bound (sim.Env.EarliestOutput takes the max
// with it). Nodes where every rank is blocked or done promise +Inf,
// which the environment honors only when its event queue is empty, so
// a deadlocked partition never gates other partitions' windows and is
// still reported by the normal drain-and-check path.
func (o *nodeOracle) EarliestOutputTime() float64 {
	j := o.j
	if j.pending[o.node].n.Load() != 0 {
		return math.Inf(-1)
	}
	bound := math.Inf(1)
	lo := o.node * j.cpn
	hi := lo + j.cpn
	if hi > len(j.ranks) {
		hi = len(j.ranks)
	}
	for _, r := range j.ranks[lo:hi] {
		switch r.oState {
		case oComputing:
			if f := j.sys.PhaseEndFloor(r.id); f < bound {
				bound = f
			}
		case oBlocked:
			// Parked in a wait; cannot send until woken.
		default: // oActive: mid-call, next action rides a queued event.
			return math.Inf(-1)
		}
	}
	return bound
}

// notePending adjusts the unsettled-envelope count of a rank's node.
// No-op outside adaptive partitioned runs.
func (j *Job) notePending(rank int, d int64) {
	if j.oracleOn {
		j.pending[j.ranks[rank].place.Node].n.Add(d)
	}
}

// attachOracle wires the per-node earliest-output oracle into the
// partition environments and arms the pending counters. Called after
// init (the environments exist) and before the engine runs.
func (j *Job) attachOracle(eng *psim.Engine, nodes int) {
	if len(j.pending) < nodes {
		j.pending = make([]pendingCount, nodes)
	}
	for i := range j.pending {
		j.pending[i].n.Store(0)
	}
	if len(j.oracles) < nodes {
		j.oracles = make([]nodeOracle, nodes)
	}
	for node := 0; node < nodes; node++ {
		j.oracles[node] = nodeOracle{j: j, node: node}
		eng.NodeEnv(node).SetOutputOracle(&j.oracles[node])
	}
	j.oracleOn = true
}

// testOracleCheck, when set by tests, runs after a successful
// partitioned run with the job still intact (invariant checks on the
// oracle state).
var testOracleCheck func(*Job)

// partArena is one node's bump arenas (sim.BumpAlloc) for protocol
// objects. Envelopes, requests, and messages all die with the job, so
// handing them out from chunks trades one allocation per object for one
// per chunk. The chunks are dropped (not pooled) when the job is
// released: any payload or message a rank body leaked to its caller
// stays valid forever, pinned by the GC, instead of being clobbered by
// the next pooled run.
type partArena struct {
	ranks    int // ranks on this node, for chunk sizing
	envChunk []envelope
	reqChunk []Request
	msgChunk []Message
	// floatChunk backs every payload copy (Isend capture, collective
	// accumulators) and sliceChunk the out-slice headers of
	// Allgather/Alltoall; msgsChunk backs Waitall result slices.
	floatChunk []float64
	sliceChunk [][]float64
	msgsChunk  []*Message
}

// drop severs the arena's chunks so the next run starts fresh.
func (pa *partArena) drop() {
	pa.envChunk, pa.reqChunk, pa.msgChunk = nil, nil, nil
	pa.floatChunk, pa.sliceChunk, pa.msgsChunk = nil, nil, nil
}

// arenaChunk scales a per-rank chunk quota to the node's rank count,
// clamped so a 2-rank ping-pong job does not pay for 18-rank slabs and
// a full-node job does not allocate multi-megabyte ones. Refills stay
// amortized: steady state is a handful of chunk allocations per node at
// any size.
func (pa *partArena) arenaChunk(perRank, floor, limit int) int {
	n := perRank * pa.ranks
	if n < floor {
		n = floor
	}
	if n > limit {
		n = limit
	}
	return n
}

func (pa *partArena) newEnvelope() *envelope {
	return sim.BumpAlloc(&pa.envChunk, pa.arenaChunk(64, 128, 8192))
}
func (pa *partArena) newRequest() *Request {
	return sim.BumpAlloc(&pa.reqChunk, pa.arenaChunk(128, 256, 16384))
}
func (pa *partArena) newMessage() *Message {
	return sim.BumpAlloc(&pa.msgChunk, pa.arenaChunk(64, 128, 8192))
}

// allocFloats hands out a zeroed []float64 of length n from the node's
// payload arena. Zero-length requests return nil, matching the historic
// `append([]float64(nil), data...)` behavior for empty payloads.
func (pa *partArena) allocFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	if n > len(pa.floatChunk) {
		size := pa.arenaChunk(512, 1024, 65536)
		if n > size {
			size = n
		}
		pa.floatChunk = make([]float64, size)
	}
	s := pa.floatChunk[:n:n]
	pa.floatChunk = pa.floatChunk[n:]
	return s
}

// cloneFloats copies data into the payload arena.
func (pa *partArena) cloneFloats(data []float64) []float64 {
	s := pa.allocFloats(len(data))
	copy(s, data)
	return s
}

// allocSlices hands out a [][]float64 of length n from the node arena
// (backing for Allgather/Alltoall results).
func (pa *partArena) allocSlices(n int) [][]float64 {
	if n > len(pa.sliceChunk) {
		size := pa.arenaChunk(4, 64, 4096)
		if n > size {
			size = n
		}
		pa.sliceChunk = make([][]float64, size)
	}
	s := pa.sliceChunk[:n:n]
	pa.sliceChunk = pa.sliceChunk[n:]
	return s
}

// allocMsgPtrs hands out a []*Message of length n from the node arena
// (backing for Waitall results).
func (pa *partArena) allocMsgPtrs(n int) []*Message {
	if n > len(pa.msgsChunk) {
		size := pa.arenaChunk(8, 64, 4096)
		if n > size {
			size = n
		}
		pa.msgsChunk = make([]*Message, size)
	}
	s := pa.msgsChunk[:n:n]
	pa.msgsChunk = pa.msgsChunk[n:]
	return s
}

// arena returns the rank's node-local arena; all of a rank's own
// allocations come from it.
func (r *Rank) arena() *partArena { return &r.job.parts[r.place.Node] }

// arenaOf returns the arena of the node hosting the given rank — used
// by destination-side protocol events (message construction on receive).
func (j *Job) arenaOf(rank int) *partArena {
	return &j.parts[j.ranks[rank].place.Node]
}

// envOf returns the environment simulating the given rank's node.
func (j *Job) envOf(rank int) *sim.Env {
	return j.rt.NodeEnv(j.ranks[rank].place.Node)
}

// post schedules fn(arg) delay seconds from now on the partition of
// dstRank's node, from code currently executing on srcRank's partition.
// On the serial engine this is a plain AfterArg; on the parallel engine
// cross-node posts travel through the window-barrier mailbox. delay must
// be at least the fabric latency floor for cross-node posts — true for
// every protocol event, which is what makes conservative windows safe.
func (j *Job) post(srcRank, dstRank int, delay float64, fn func(any), arg any) {
	srcNode := j.ranks[srcRank].place.Node
	dstNode := j.ranks[dstRank].place.Node
	e := j.rt.NodeEnv(srcNode)
	j.rt.Post(srcNode, dstNode, e.Now()+delay, fn, arg)
}

// jobPool recycles Job state across runs. Like the sim environment pool,
// each campaign worker acquires its own Job, so reuse is race-free by
// construction; failed runs (deadlock, panic) are abandoned to the GC
// because blocked rank goroutines may still reference them.
var jobPool = sync.Pool{New: func() any { return &Job{} }}

// Rank is one MPI process. All methods must be called from within the
// rank's own body function.
type Rank struct {
	job   *Job
	id    int
	proc  *sim.Proc
	place machine.Placement
	body  func(*Rank)
	runFn func(*sim.Proc) // persistent spawn closure; reused across pooled runs

	unexpected []*envelope
	posted     []*Request
	bounds     [][2]int // rsag chunk-bounds scratch; never escapes a collective
	collSeq    int
	collKind   trace.Kind
	inColl     bool
	// oState is the rank's park state as seen by the adaptive-lookahead
	// oracle. Written only by the rank's own partition; read by the
	// engine coordinator at window barriers (ordered by the barrier's
	// wg.Wait / channel handoff).
	oState uint8
}

// Oracle park states. oActive is the zero value: any rank not known to
// be in a promisable state makes no promise.
const (
	oActive    uint8 = iota // running or mid-MPI-call
	oComputing              // inside Rank.Compute: promise PhaseEndFloor
	oBlocked                // parked in a wait, or finished: silent until woken
)

// boundsScratch returns the rank's reusable [n][2]int table for the
// reduce-scatter/allgather segment arithmetic.
func (r *Rank) boundsScratch(n int) [][2]int {
	if cap(r.bounds) < n {
		r.bounds = make([][2]int, n)
	}
	return r.bounds[:n]
}

// Run simulates an MPI job: it spawns cfg.Ranks processes each executing
// body, runs the event loop to completion, and returns the aggregated
// usage. An error is returned for deadlocks or panics inside rank bodies.
func Run(cfg Config, body func(r *Rank)) (Result, error) {
	if cfg.Cluster == nil {
		return Result{}, fmt.Errorf("mpi: config without cluster")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Ranks <= 0 {
		return Result{}, fmt.Errorf("mpi: non-positive rank count %d", cfg.Ranks)
	}
	if cfg.Ranks > cfg.Cluster.MaxRanks() {
		return Result{}, fmt.Errorf("mpi: %d ranks exceed %s capacity %d",
			cfg.Ranks, cfg.Cluster.Name, cfg.Cluster.MaxRanks())
	}
	if cfg.Net.Name == "" {
		cfg.Net = netsim.HDR100()
	}
	if err := cfg.Net.Validate(); err != nil {
		return Result{}, err
	}

	// A multi-node job with SimWorkers > 1 runs on the conservative-
	// lookahead parallel engine; everything else runs serially. The two
	// paths produce byte-identical results (pinned by the determinism
	// goldens), so the choice is purely a wall-clock matter.
	nodes := cfg.Cluster.NodesFor(cfg.Ranks)
	if cfg.SimWorkers > 1 && nodes > 1 {
		return runPartitioned(cfg, nodes, body)
	}

	// Environments and job state come from pools: event slabs, process
	// structs, resume channels, machine/network resources, and Rank
	// structs are all recycled across campaign jobs. Failed runs
	// (deadlock, panic) are abandoned instead of released, since blocked
	// rank goroutines may still reference them.
	env := sim.AcquireEnv()
	job := jobPool.Get().(*Job)
	job.init(sim.UniRouter{E: env}, cfg, body)
	if err := env.Run(); err != nil {
		return Result{}, err
	}
	u := job.sys.Usage()
	sim.ReleaseEnv(env)
	job.release()
	return Result{Usage: u, Trace: cfg.Trace, Wall: u.Wall}, nil
}

// runPartitioned executes a multi-node job on the psim engine: one
// partition per node, advancing concurrently inside lookahead windows
// derived from the fabric latency floor.
func runPartitioned(cfg Config, nodes int, body func(r *Rank)) (Result, error) {
	floor, err := cfg.Net.LatencyFloor()
	if err != nil {
		return Result{}, fmt.Errorf("mpi: SimWorkers=%d: %w", cfg.SimWorkers, err)
	}
	adaptive := !cfg.StaticWindows
	eng := psim.Acquire(nodes, cfg.SimWorkers, floor, adaptive)
	job := jobPool.Get().(*Job)
	job.init(eng, cfg, body)
	if adaptive {
		job.attachOracle(eng, nodes)
	}
	if err := eng.Run(); err != nil {
		// Failed runs abandon the job (blocked rank goroutines may still
		// reference it); the engine releases what stayed clean.
		eng.Release()
		return Result{}, err
	}
	if testOracleCheck != nil {
		testOracleCheck(job)
	}
	u := job.sys.Usage()
	st := eng.Stats()
	eng.Release()
	job.release()
	return Result{Usage: u, Trace: cfg.Trace, Wall: u.Wall,
		Partitioned: true, Psim: st}, nil
}

// init prepares a pooled Job for one run: reinitializes the machine and
// network instances in place, resets the live ranks, and precomputes the
// collective topology. In steady state (shapes at or below the pool
// entry's high-water marks) it allocates nothing. The router decides the
// execution mode: sim.UniRouter for the serial engine, a psim.Engine for
// partitioned execution — the job wiring is identical either way.
func (j *Job) init(rt sim.Router, cfg Config, body func(r *Rank)) {
	n := cfg.Ranks
	j.rt, j.rec = rt, cfg.Trace
	j.oracleOn = false // armed separately by attachOracle
	if j.sys == nil {
		j.sys = &machine.System{}
	}
	j.sys.ReinitRouted(rt, cfg.Cluster, n)
	nodes := cfg.Cluster.NodesFor(n)
	if j.net == nil {
		j.net = &netsim.Network{}
	}
	j.net.ReinitRouted(rt, cfg.Net, nodes)

	// Per-node arenas: drop last run's chunks, size this run's shape.
	for len(j.parts) < nodes {
		j.parts = append(j.parts, partArena{})
	}
	cpn := cfg.Cluster.CPU.CoresPerNode()
	for node := 0; node < nodes; node++ {
		pa := &j.parts[node]
		pa.drop()
		onNode := n - node*cpn
		if onNode > cpn {
			onNode = cpn
		}
		pa.ranks = onNode
	}

	// Collective topology for this job: identity participant list and
	// node-leader list, shared by every collective call of the run.
	j.cpn = cfg.Cluster.CPU.CoresPerNode()
	j.allRanks = j.allRanks[:0]
	j.leaders = j.leaders[:0]
	for i := 0; i < n; i++ {
		j.allRanks = append(j.allRanks, i)
	}
	for l := 0; l < n; l += j.cpn {
		j.leaders = append(j.leaders, l)
	}

	for len(j.rankStore) < n {
		r := &Rank{job: j, id: len(j.rankStore)}
		// The spawn closure is built once per Rank lifetime and reused
		// by every pooled run, so spawning allocates no per-run closure.
		r.runFn = func(p *sim.Proc) {
			r.proc = p
			r.body(r)
			// A finished rank never sends again: permanently silent to
			// the oracle.
			r.oState = oBlocked
			r.job.sys.RankFinished(r.id, p.Now())
		}
		j.rankStore = append(j.rankStore, r)
	}
	j.ranks = j.rankStore[:n]
	for i, r := range j.ranks {
		r.place = cfg.Cluster.Place(i)
		r.body = body
		r.collSeq, r.collKind, r.inColl = 0, 0, false
		r.oState = oActive
		// Each rank lives on the partition simulating its node; under
		// the serial router every node maps to the same environment.
		r.proc = rt.NodeEnv(r.place.Node).Spawn(rankName(i), r.runFn)
	}
}

// release drops the job-scoped arenas (so leaked payloads stay valid,
// pinned by the GC), severs references the pool must not retain, and
// returns the Job for reuse.
func (j *Job) release() {
	j.rt, j.rec = nil, nil
	for i := range j.parts {
		j.parts[i].drop()
	}
	for _, r := range j.rankStore {
		r.body, r.proc = nil, nil
		// The matching queues are empty after a clean run, but their
		// backing arrays still hold stale pointers into the dropped
		// chunks; clear up to capacity so the pool does not pin them.
		clear(r.posted[:cap(r.posted)])
		clear(r.unexpected[:cap(r.unexpected)])
		r.posted, r.unexpected = r.posted[:0], r.unexpected[:0]
	}
	jobPool.Put(j)
}

// rankNames caches process names for common rank counts so spawning a
// job does not Sprintf once per rank.
var rankNames = func() [1024]string {
	var n [1024]string
	for i := range n {
		n[i] = fmt.Sprintf("rank%d", i)
	}
	return n
}()

func rankName(i int) string {
	if i < len(rankNames) {
		return rankNames[i]
	}
	return fmt.Sprintf("rank%d", i)
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the job.
func (r *Rank) Size() int { return len(r.job.ranks) }

// Place returns the rank's hardware placement.
func (r *Rank) Place() machine.Placement { return r.place }

// Now returns the current virtual time.
func (r *Rank) Now() float64 { return r.proc.Now() }

// Cluster returns the cluster specification the job runs on.
func (r *Rank) Cluster() *machine.ClusterSpec { return r.job.sys.Spec() }

// Compute executes a compute phase on this rank's core through the
// machine model and records it on the trace timeline. For the duration
// of the phase the rank promises the oracle it cannot send before the
// phase's end floor (machine.System.PhaseEndFloor).
func (r *Rank) Compute(ph machine.Phase) {
	t0 := r.proc.Now()
	r.oState = oComputing
	r.job.sys.Compute(r.proc, r.id, ph)
	r.oState = oActive
	r.job.rec.Record(r.id, trace.KindCompute, t0, r.proc.Now(), -1)
}

// traceKind returns the kind to attribute an MPI interval to: the
// surrounding collective if one is active, otherwise the point-to-point
// default.
func (r *Rank) traceKind(def trace.Kind) trace.Kind {
	if r.inColl {
		return r.collKind
	}
	return def
}

// mpiInterval charges [t0,now) as MPI time to power accounting and the
// trace.
func (r *Rank) mpiInterval(kind trace.Kind, t0 float64, peer int) {
	now := r.proc.Now()
	if now <= t0 {
		return
	}
	r.job.sys.AccountMPI(r.id, now-t0)
	r.job.rec.Record(r.id, kind, t0, now, peer)
}

// wake makes the rank re-check its blocking condition if it is parked.
// Ranks in timed waits or running observe state changes on their own.
// Must be called from the rank's own partition.
func (j *Job) wake(rank int) {
	p := j.ranks[rank].proc
	if p.State() == sim.StateParked {
		j.envOf(rank).Wake(p)
	}
}

// wakePair wakes ranks a and b (in that order) after a symmetric
// completion. When both are parked the wakes share one batched queue
// entry instead of one event per rank. Only used for same-node
// completions (intra-node rendezvous), so both ranks share a partition.
func (j *Job) wakePair(a, b int) {
	pa, pb := j.ranks[a].proc, j.ranks[b].proc
	aParked := pa.State() == sim.StateParked
	bParked := pb.State() == sim.StateParked
	switch {
	case aParked && bParked:
		j.envOf(a).WakePair(pa, pb)
	case aParked:
		j.envOf(a).Wake(pa)
	case bParked:
		j.envOf(b).Wake(pb)
	}
}
