// Package mpi implements a simulated MPI runtime on top of the
// discrete-event engine: ranks are sim processes, point-to-point messages
// follow eager or rendezvous protocols over the netsim interconnect, and
// collectives are built from the same point-to-point machinery with the
// standard algorithms (dissemination barrier, recursive-doubling
// allreduce, binomial trees, ring allgather).
//
// Because the protocol state machine is executed rather than approximated,
// communication pathologies emerge mechanistically: the rendezvous
// serialization chain of minisweep, barrier waiting behind a straggler in
// lbm, and the log(P) cost growth of soma's large allreduces.
//
// The API mirrors the MPI subset the SPEChpc 2021 codes use. Payloads are
// real []float64 slices (collectives really reduce them); ModelBytes
// carries the paper-scale message size that drives the timing model, so
// kernels can run scaled-down grids while communication costs stay at
// paper scale.
package mpi

import (
	"fmt"
	"sync"

	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/sim"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// Wildcards for Recv matching, and the tag space boundary: user tags must
// stay below TagUserMax because collectives use the space above it.
const (
	AnySource = -1
	AnyTag    = -1
	// TagUserMax is the first tag reserved for internal collective use.
	TagUserMax = 1 << 20
)

// Config describes one simulated MPI job.
type Config struct {
	// Cluster is the machine the job runs on.
	Cluster *machine.ClusterSpec
	// Net holds interconnect parameters; a zero value selects HDR100.
	Net netsim.Spec
	// Ranks is the number of MPI processes, block-mapped onto cores.
	Ranks int
	// Trace, if non-nil, receives per-rank timeline events.
	Trace *trace.Recorder
}

// Result is the outcome of a simulated job.
type Result struct {
	// Usage holds the aggregated performance/energy record.
	Usage machine.Usage
	// Trace is the recorder passed in the config (nil if none).
	Trace *trace.Recorder
	// Wall is the job wall-clock virtual time in seconds.
	Wall float64
}

// Job is the runtime state of a simulated MPI application. Jobs are
// recycled through jobPool: the System/Network instances, the Rank
// structs (with their matching-queue and collective-scratch capacity),
// and the spawn closures all survive across runs, so a steady-state
// campaign job performs no per-rank setup allocation.
type Job struct {
	env   *sim.Env
	sys   *machine.System
	net   *netsim.Network
	rec   *trace.Recorder
	ranks []*Rank // live ranks for this run: rankStore[:n]

	// rankStore keeps every Rank ever created for this Job at its
	// high-water length, so shrinking and regrowing the job shape does
	// not reconstruct ranks.
	rankStore []*Rank

	// Per-job bump arenas (sim.BumpAlloc) for protocol objects.
	// Envelopes, requests, and messages all die with the job, so
	// handing them out from chunks trades one allocation per object
	// for one per chunk. The chunks are dropped (not pooled) when the
	// job is released: any payload or message a rank body leaked to
	// its caller stays valid forever, pinned by the GC, instead of
	// being clobbered by the next pooled run.
	envChunk []envelope
	reqChunk []Request
	msgChunk []Message
	// floatChunk backs every payload copy (Isend capture, collective
	// accumulators) and sliceChunk the out-slice headers of
	// Allgather/Alltoall; msgsChunk backs Waitall result slices.
	floatChunk []float64
	sliceChunk [][]float64
	msgsChunk  []*Message

	// Collective topology, precomputed once per run in mpi.Run instead
	// of per collective call: the dense identity participant list, the
	// node-leader list of the hierarchical allreduce, and the
	// cores-per-node stride that defines it.
	allRanks []int
	leaders  []int
	cpn      int
}

// arenaChunk scales a per-rank chunk quota to the job size, clamped so
// a 2-rank ping-pong job does not pay for 18-rank slabs and an 800-rank
// job does not allocate multi-megabyte ones. Refills stay amortized:
// steady state is a handful of chunk allocations per job at any size.
func (j *Job) arenaChunk(perRank, floor, limit int) int {
	n := perRank * len(j.ranks)
	if n < floor {
		n = floor
	}
	if n > limit {
		n = limit
	}
	return n
}

func (j *Job) newEnvelope() *envelope {
	return sim.BumpAlloc(&j.envChunk, j.arenaChunk(64, 128, 8192))
}
func (j *Job) newRequest() *Request {
	return sim.BumpAlloc(&j.reqChunk, j.arenaChunk(128, 256, 16384))
}
func (j *Job) newMessage() *Message {
	return sim.BumpAlloc(&j.msgChunk, j.arenaChunk(64, 128, 8192))
}

// allocFloats hands out a zeroed []float64 of length n from the job's
// payload arena. Zero-length requests return nil, matching the historic
// `append([]float64(nil), data...)` behavior for empty payloads.
func (j *Job) allocFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	if n > len(j.floatChunk) {
		size := j.arenaChunk(512, 1024, 65536)
		if n > size {
			size = n
		}
		j.floatChunk = make([]float64, size)
	}
	s := j.floatChunk[:n:n]
	j.floatChunk = j.floatChunk[n:]
	return s
}

// cloneFloats copies data into the payload arena.
func (j *Job) cloneFloats(data []float64) []float64 {
	s := j.allocFloats(len(data))
	copy(s, data)
	return s
}

// allocSlices hands out a [][]float64 of length n from the job arena
// (backing for Allgather/Alltoall results).
func (j *Job) allocSlices(n int) [][]float64 {
	if n > len(j.sliceChunk) {
		size := j.arenaChunk(4, 64, 4096)
		if n > size {
			size = n
		}
		j.sliceChunk = make([][]float64, size)
	}
	s := j.sliceChunk[:n:n]
	j.sliceChunk = j.sliceChunk[n:]
	return s
}

// allocMsgPtrs hands out a []*Message of length n from the job arena
// (backing for Waitall results).
func (j *Job) allocMsgPtrs(n int) []*Message {
	if n > len(j.msgsChunk) {
		size := j.arenaChunk(8, 64, 4096)
		if n > size {
			size = n
		}
		j.msgsChunk = make([]*Message, size)
	}
	s := j.msgsChunk[:n:n]
	j.msgsChunk = j.msgsChunk[n:]
	return s
}

// jobPool recycles Job state across runs. Like the sim environment pool,
// each campaign worker acquires its own Job, so reuse is race-free by
// construction; failed runs (deadlock, panic) are abandoned to the GC
// because blocked rank goroutines may still reference them.
var jobPool = sync.Pool{New: func() any { return &Job{} }}

// Rank is one MPI process. All methods must be called from within the
// rank's own body function.
type Rank struct {
	job   *Job
	id    int
	proc  *sim.Proc
	place machine.Placement
	body  func(*Rank)
	runFn func(*sim.Proc) // persistent spawn closure; reused across pooled runs

	unexpected []*envelope
	posted     []*Request
	bounds     [][2]int // rsag chunk-bounds scratch; never escapes a collective
	collSeq    int
	collKind   trace.Kind
	inColl     bool
}

// boundsScratch returns the rank's reusable [n][2]int table for the
// reduce-scatter/allgather segment arithmetic.
func (r *Rank) boundsScratch(n int) [][2]int {
	if cap(r.bounds) < n {
		r.bounds = make([][2]int, n)
	}
	return r.bounds[:n]
}

// Run simulates an MPI job: it spawns cfg.Ranks processes each executing
// body, runs the event loop to completion, and returns the aggregated
// usage. An error is returned for deadlocks or panics inside rank bodies.
func Run(cfg Config, body func(r *Rank)) (Result, error) {
	if cfg.Cluster == nil {
		return Result{}, fmt.Errorf("mpi: config without cluster")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Ranks <= 0 {
		return Result{}, fmt.Errorf("mpi: non-positive rank count %d", cfg.Ranks)
	}
	if cfg.Ranks > cfg.Cluster.MaxRanks() {
		return Result{}, fmt.Errorf("mpi: %d ranks exceed %s capacity %d",
			cfg.Ranks, cfg.Cluster.Name, cfg.Cluster.MaxRanks())
	}
	if cfg.Net.Name == "" {
		cfg.Net = netsim.HDR100()
	}
	if err := cfg.Net.Validate(); err != nil {
		return Result{}, err
	}

	// Environments and job state come from pools: event slabs, process
	// structs, resume channels, machine/network resources, and Rank
	// structs are all recycled across campaign jobs. Failed runs
	// (deadlock, panic) are abandoned instead of released, since blocked
	// rank goroutines may still reference them.
	env := sim.AcquireEnv()
	job := jobPool.Get().(*Job)
	job.init(env, cfg, body)
	if err := env.Run(); err != nil {
		return Result{}, err
	}
	u := job.sys.Usage()
	sim.ReleaseEnv(env)
	job.release()
	return Result{Usage: u, Trace: cfg.Trace, Wall: u.Wall}, nil
}

// init prepares a pooled Job for one run: reinitializes the machine and
// network instances in place, resets the live ranks, and precomputes the
// collective topology. In steady state (shapes at or below the pool
// entry's high-water marks) it allocates nothing.
func (j *Job) init(env *sim.Env, cfg Config, body func(r *Rank)) {
	n := cfg.Ranks
	j.env, j.rec = env, cfg.Trace
	if j.sys == nil {
		j.sys = machine.NewSystem(env, cfg.Cluster, n)
	} else {
		j.sys.Reinit(env, cfg.Cluster, n)
	}
	nodes := cfg.Cluster.NodesFor(n)
	if j.net == nil {
		j.net = netsim.New(env, cfg.Net, nodes)
	} else {
		j.net.Reinit(env, cfg.Net, nodes)
	}

	// Collective topology for this job: identity participant list and
	// node-leader list, shared by every collective call of the run.
	j.cpn = cfg.Cluster.CPU.CoresPerNode()
	j.allRanks = j.allRanks[:0]
	j.leaders = j.leaders[:0]
	for i := 0; i < n; i++ {
		j.allRanks = append(j.allRanks, i)
	}
	for l := 0; l < n; l += j.cpn {
		j.leaders = append(j.leaders, l)
	}

	for len(j.rankStore) < n {
		r := &Rank{job: j, id: len(j.rankStore)}
		// The spawn closure is built once per Rank lifetime and reused
		// by every pooled run, so spawning allocates no per-run closure.
		r.runFn = func(p *sim.Proc) {
			r.proc = p
			r.body(r)
			r.job.sys.RankFinished(r.id, p.Now())
		}
		j.rankStore = append(j.rankStore, r)
	}
	j.ranks = j.rankStore[:n]
	for i, r := range j.ranks {
		r.place = cfg.Cluster.Place(i)
		r.body = body
		r.collSeq, r.collKind, r.inColl = 0, 0, false
		r.proc = env.Spawn(rankName(i), r.runFn)
	}
}

// release drops the job-scoped arenas (so leaked payloads stay valid,
// pinned by the GC), severs references the pool must not retain, and
// returns the Job for reuse.
func (j *Job) release() {
	j.env, j.rec = nil, nil
	j.envChunk, j.reqChunk, j.msgChunk = nil, nil, nil
	j.floatChunk, j.sliceChunk, j.msgsChunk = nil, nil, nil
	for _, r := range j.rankStore {
		r.body, r.proc = nil, nil
		// The matching queues are empty after a clean run, but their
		// backing arrays still hold stale pointers into the dropped
		// chunks; clear up to capacity so the pool does not pin them.
		clear(r.posted[:cap(r.posted)])
		clear(r.unexpected[:cap(r.unexpected)])
		r.posted, r.unexpected = r.posted[:0], r.unexpected[:0]
	}
	jobPool.Put(j)
}

// rankNames caches process names for common rank counts so spawning a
// job does not Sprintf once per rank.
var rankNames = func() [1024]string {
	var n [1024]string
	for i := range n {
		n[i] = fmt.Sprintf("rank%d", i)
	}
	return n
}()

func rankName(i int) string {
	if i < len(rankNames) {
		return rankNames[i]
	}
	return fmt.Sprintf("rank%d", i)
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the job.
func (r *Rank) Size() int { return len(r.job.ranks) }

// Place returns the rank's hardware placement.
func (r *Rank) Place() machine.Placement { return r.place }

// Now returns the current virtual time.
func (r *Rank) Now() float64 { return r.proc.Now() }

// Cluster returns the cluster specification the job runs on.
func (r *Rank) Cluster() *machine.ClusterSpec { return r.job.sys.Spec() }

// Compute executes a compute phase on this rank's core through the
// machine model and records it on the trace timeline.
func (r *Rank) Compute(ph machine.Phase) {
	t0 := r.proc.Now()
	r.job.sys.Compute(r.proc, r.id, ph)
	r.job.rec.Record(r.id, trace.KindCompute, t0, r.proc.Now(), -1)
}

// traceKind returns the kind to attribute an MPI interval to: the
// surrounding collective if one is active, otherwise the point-to-point
// default.
func (r *Rank) traceKind(def trace.Kind) trace.Kind {
	if r.inColl {
		return r.collKind
	}
	return def
}

// mpiInterval charges [t0,now) as MPI time to power accounting and the
// trace.
func (r *Rank) mpiInterval(kind trace.Kind, t0 float64, peer int) {
	now := r.proc.Now()
	if now <= t0 {
		return
	}
	r.job.sys.AccountMPI(r.id, now-t0)
	r.job.rec.Record(r.id, kind, t0, now, peer)
}

// wake makes the rank re-check its blocking condition if it is parked.
// Ranks in timed waits or running observe state changes on their own.
func (j *Job) wake(rank int) {
	p := j.ranks[rank].proc
	if p.State() == sim.StateParked {
		j.env.Wake(p)
	}
}

// wakePair wakes ranks a and b (in that order) after a symmetric
// completion. When both are parked the wakes share one batched queue
// entry instead of one event per rank.
func (j *Job) wakePair(a, b int) {
	pa, pb := j.ranks[a].proc, j.ranks[b].proc
	aParked := pa.State() == sim.StateParked
	bParked := pb.State() == sim.StateParked
	switch {
	case aParked && bParked:
		j.env.WakePair(pa, pb)
	case aParked:
		j.env.Wake(pa)
	case bParked:
		j.env.Wake(pb)
	}
}
