// Package mpi implements a simulated MPI runtime on top of the
// discrete-event engine: ranks are sim processes, point-to-point messages
// follow eager or rendezvous protocols over the netsim interconnect, and
// collectives are built from the same point-to-point machinery with the
// standard algorithms (dissemination barrier, recursive-doubling
// allreduce, binomial trees, ring allgather).
//
// Because the protocol state machine is executed rather than approximated,
// communication pathologies emerge mechanistically: the rendezvous
// serialization chain of minisweep, barrier waiting behind a straggler in
// lbm, and the log(P) cost growth of soma's large allreduces.
//
// The API mirrors the MPI subset the SPEChpc 2021 codes use. Payloads are
// real []float64 slices (collectives really reduce them); ModelBytes
// carries the paper-scale message size that drives the timing model, so
// kernels can run scaled-down grids while communication costs stay at
// paper scale.
package mpi

import (
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/sim"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// Wildcards for Recv matching, and the tag space boundary: user tags must
// stay below TagUserMax because collectives use the space above it.
const (
	AnySource = -1
	AnyTag    = -1
	// TagUserMax is the first tag reserved for internal collective use.
	TagUserMax = 1 << 20
)

// Config describes one simulated MPI job.
type Config struct {
	// Cluster is the machine the job runs on.
	Cluster *machine.ClusterSpec
	// Net holds interconnect parameters; a zero value selects HDR100.
	Net netsim.Spec
	// Ranks is the number of MPI processes, block-mapped onto cores.
	Ranks int
	// Trace, if non-nil, receives per-rank timeline events.
	Trace *trace.Recorder
}

// Result is the outcome of a simulated job.
type Result struct {
	// Usage holds the aggregated performance/energy record.
	Usage machine.Usage
	// Trace is the recorder passed in the config (nil if none).
	Trace *trace.Recorder
	// Wall is the job wall-clock virtual time in seconds.
	Wall float64
}

// Job is the runtime state of a simulated MPI application.
type Job struct {
	env   *sim.Env
	sys   *machine.System
	net   *netsim.Network
	rec   *trace.Recorder
	ranks []*Rank

	// Per-job bump arenas (sim.BumpAlloc) for protocol objects.
	// Envelopes, requests, and messages all die with the job, so
	// handing them out from chunks trades one allocation per object
	// for one per chunk.
	envChunk []envelope
	reqChunk []Request
	msgChunk []Message
}

func (j *Job) newEnvelope() *envelope { return sim.BumpAlloc(&j.envChunk, 128) }
func (j *Job) newRequest() *Request   { return sim.BumpAlloc(&j.reqChunk, 128) }
func (j *Job) newMessage() *Message   { return sim.BumpAlloc(&j.msgChunk, 128) }

// Rank is one MPI process. All methods must be called from within the
// rank's own body function.
type Rank struct {
	job   *Job
	id    int
	proc  *sim.Proc
	place machine.Placement

	unexpected []*envelope
	posted     []*Request
	collSeq    int
	collKind   trace.Kind
	inColl     bool
}

// Run simulates an MPI job: it spawns cfg.Ranks processes each executing
// body, runs the event loop to completion, and returns the aggregated
// usage. An error is returned for deadlocks or panics inside rank bodies.
func Run(cfg Config, body func(r *Rank)) (Result, error) {
	if cfg.Cluster == nil {
		return Result{}, fmt.Errorf("mpi: config without cluster")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Ranks <= 0 {
		return Result{}, fmt.Errorf("mpi: non-positive rank count %d", cfg.Ranks)
	}
	if cfg.Ranks > cfg.Cluster.MaxRanks() {
		return Result{}, fmt.Errorf("mpi: %d ranks exceed %s capacity %d",
			cfg.Ranks, cfg.Cluster.Name, cfg.Cluster.MaxRanks())
	}
	if cfg.Net.Name == "" {
		cfg.Net = netsim.HDR100()
	}
	if err := cfg.Net.Validate(); err != nil {
		return Result{}, err
	}

	// Environments come from the sim pool: event slabs, process structs,
	// and resume channels are recycled across campaign jobs. Failed runs
	// (deadlock, panic) are abandoned instead of released, since blocked
	// rank goroutines may still reference the environment.
	env := sim.AcquireEnv()
	sys := machine.NewSystem(env, cfg.Cluster, cfg.Ranks)
	net := netsim.New(env, cfg.Net, cfg.Cluster.NodesFor(cfg.Ranks))
	job := &Job{env: env, sys: sys, net: net, rec: cfg.Trace}
	job.ranks = make([]*Rank, cfg.Ranks)
	for i := 0; i < cfg.Ranks; i++ {
		r := &Rank{job: job, id: i, place: cfg.Cluster.Place(i)}
		job.ranks[i] = r
		r.proc = env.Spawn(rankName(i), func(p *sim.Proc) {
			r.proc = p
			body(r)
			sys.RankFinished(r.id, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		return Result{}, err
	}
	u := sys.Usage()
	sim.ReleaseEnv(env)
	return Result{Usage: u, Trace: cfg.Trace, Wall: u.Wall}, nil
}

// rankNames caches process names for common rank counts so spawning a
// job does not Sprintf once per rank.
var rankNames = func() [1024]string {
	var n [1024]string
	for i := range n {
		n[i] = fmt.Sprintf("rank%d", i)
	}
	return n
}()

func rankName(i int) string {
	if i < len(rankNames) {
		return rankNames[i]
	}
	return fmt.Sprintf("rank%d", i)
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the job.
func (r *Rank) Size() int { return len(r.job.ranks) }

// Place returns the rank's hardware placement.
func (r *Rank) Place() machine.Placement { return r.place }

// Now returns the current virtual time.
func (r *Rank) Now() float64 { return r.proc.Now() }

// Cluster returns the cluster specification the job runs on.
func (r *Rank) Cluster() *machine.ClusterSpec { return r.job.sys.Spec() }

// Compute executes a compute phase on this rank's core through the
// machine model and records it on the trace timeline.
func (r *Rank) Compute(ph machine.Phase) {
	t0 := r.proc.Now()
	r.job.sys.Compute(r.proc, r.id, ph)
	r.job.rec.Record(r.id, trace.KindCompute, t0, r.proc.Now(), -1)
}

// traceKind returns the kind to attribute an MPI interval to: the
// surrounding collective if one is active, otherwise the point-to-point
// default.
func (r *Rank) traceKind(def trace.Kind) trace.Kind {
	if r.inColl {
		return r.collKind
	}
	return def
}

// mpiInterval charges [t0,now) as MPI time to power accounting and the
// trace.
func (r *Rank) mpiInterval(kind trace.Kind, t0 float64, peer int) {
	now := r.proc.Now()
	if now <= t0 {
		return
	}
	r.job.sys.AccountMPI(r.id, now-t0)
	r.job.rec.Record(r.id, kind, t0, now, peer)
}

// wake makes the rank re-check its blocking condition if it is parked.
// Ranks in timed waits or running observe state changes on their own.
func (j *Job) wake(rank int) {
	p := j.ranks[rank].proc
	if p.State() == sim.StateParked {
		j.env.Wake(p)
	}
}

// wakePair wakes ranks a and b (in that order) after a symmetric
// completion. When both are parked the wakes share one batched queue
// entry instead of one event per rank.
func (j *Job) wakePair(a, b int) {
	pa, pb := j.ranks[a].proc, j.ranks[b].proc
	aParked := pa.State() == sim.StateParked
	bParked := pb.State() == sim.StateParked
	switch {
	case aParked && bParked:
		j.env.WakePair(pa, pb)
	case aParked:
		j.env.Wake(pa)
	case bParked:
		j.env.Wake(pb)
	}
}
