//go:build race

package mpi

// raceEnabled reports whether the race detector is compiled in. Race
// instrumentation allocates shadow state per goroutine and per sync
// operation, so allocation-budget tests are meaningless under -race.
const raceEnabled = true
