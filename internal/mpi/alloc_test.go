package mpi

import (
	"testing"

	"github.com/spechpc/spechpc-sim/internal/machine"
)

// Steady-state allocation budgets for the protocol stack. These are
// regression tests, not benchmarks: they fail deterministically when a
// change reintroduces per-message closures, per-job Sprintf naming, or
// fresh scratch buffers on a hot path, without needing timing baselines.
//
// Budgets are set ~30-50% above the measured steady state (11-44
// allocs/job at the time of writing) to absorb amortized arena-chunk
// refills and pool misses, while still catching any per-message or
// per-rank regression: one closure per send alone costs hundreds of
// allocs per job at these message counts.

// allocsPerJob measures the average allocations of one full Run after
// warming the job/env pools. testing.AllocsPerRun does not force GC
// between runs, so pooled state survives and the measurement reflects
// the steady state a campaign sweep sees.
func allocsPerJob(t *testing.T, ranks int, body func(r *Rank)) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("race instrumentation allocates per goroutine; budgets only hold without -race")
	}
	cluster := machine.ClusterA()
	run := func() {
		if _, err := Run(Config{Cluster: cluster, Ranks: ranks}, body); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run() // warm sync.Pool entries and high-water slice capacities
	}
	return testing.AllocsPerRun(10, run)
}

func checkAllocBudget(t *testing.T, name string, got, budget float64) {
	t.Helper()
	if got > budget {
		t.Errorf("%s: %.1f allocs/job exceeds budget %.0f", name, got, budget)
	}
	t.Logf("%s: %.1f allocs/job (budget %.0f)", name, got, budget)
}

func TestAllocBudgetPingPongEager(t *testing.T) {
	payload := []float64{1, 2, 3, 4}
	got := allocsPerJob(t, 2, func(r *Rank) {
		for i := 0; i < 64; i++ {
			if r.ID() == 0 {
				r.Send(1, 1, payload, 1024)
				r.Recv(1, 2)
			} else {
				r.Recv(0, 1)
				r.Send(0, 2, payload, 1024)
			}
		}
	})
	checkAllocBudget(t, "PingPongEager", got, 20)
}

func TestAllocBudgetPingPongRendezvous(t *testing.T) {
	payload := []float64{1, 2, 3, 4}
	got := allocsPerJob(t, 2, func(r *Rank) {
		for i := 0; i < 64; i++ {
			if r.ID() == 0 {
				r.Send(1, 1, payload, 256*1024)
				r.Recv(1, 2)
			} else {
				r.Recv(0, 1)
				r.Send(0, 2, payload, 256*1024)
			}
		}
	})
	checkAllocBudget(t, "PingPongRendezvous", got, 20)
}

func TestAllocBudgetBarrier(t *testing.T) {
	got := allocsPerJob(t, 18, func(r *Rank) {
		for i := 0; i < 16; i++ {
			r.Barrier()
		}
	})
	checkAllocBudget(t, "Barrier", got, 50)
}

func TestAllocBudgetAllreduceSmall(t *testing.T) {
	got := allocsPerJob(t, 18, func(r *Rank) {
		data := []float64{float64(r.ID()), 1}
		for i := 0; i < 8; i++ {
			r.Allreduce(data, 16, OpSum)
		}
	})
	checkAllocBudget(t, "AllreduceSmall", got, 50)
}

func TestAllocBudgetAllreduceLarge(t *testing.T) {
	got := allocsPerJob(t, 18, func(r *Rank) {
		data := make([]float64, 64)
		for i := range data {
			data[i] = float64(r.ID() + i)
		}
		for i := 0; i < 4; i++ {
			r.Allreduce(data, 512*1024, OpSum)
		}
	})
	checkAllocBudget(t, "AllreduceLarge", got, 50)
}

func TestAllocBudgetHierarchicalAllreduce(t *testing.T) {
	// 72 ranks span two ClusterA nodes, forcing the hierarchical
	// (intra-node reduce, leader rsag, intra-node bcast) path.
	got := allocsPerJob(t, 72, func(r *Rank) {
		data := make([]float64, 64)
		for i := range data {
			data[i] = float64(r.ID() + i)
		}
		r.Allreduce(data, 512*1024, OpSum)
	})
	checkAllocBudget(t, "HierarchicalAllreduce", got, 120)
}

func TestAllocBudgetReduce(t *testing.T) {
	got := allocsPerJob(t, 18, func(r *Rank) {
		data := []float64{float64(r.ID()), 1, 2, 3}
		for i := 0; i < 8; i++ {
			r.Reduce(0, data, 32, OpSum)
		}
	})
	checkAllocBudget(t, "Reduce", got, 50)
}

func TestAllocBudgetBcast(t *testing.T) {
	got := allocsPerJob(t, 18, func(r *Rank) {
		data := []float64{1, 2, 3, 4}
		for i := 0; i < 8; i++ {
			r.Bcast(0, data, 32)
		}
	})
	checkAllocBudget(t, "Bcast", got, 50)
}

func TestAllocBudgetAllgather(t *testing.T) {
	got := allocsPerJob(t, 18, func(r *Rank) {
		data := []float64{float64(r.ID()), 1}
		for i := 0; i < 4; i++ {
			r.Allgather(data, 64)
		}
	})
	checkAllocBudget(t, "Allgather", got, 70)
}

func TestAllocBudgetAlltoall(t *testing.T) {
	const ranks = 18
	all := make([][][]float64, ranks)
	for id := range all {
		chunks := make([][]float64, ranks)
		for i := range chunks {
			chunks[i] = []float64{float64(id), float64(i)}
		}
		all[id] = chunks
	}
	got := allocsPerJob(t, ranks, func(r *Rank) {
		chunks := all[r.ID()]
		for i := 0; i < 4; i++ {
			r.Alltoall(chunks, 64)
		}
	})
	checkAllocBudget(t, "Alltoall", got, 70)
}

func TestAllocBudgetHaloExchange(t *testing.T) {
	payload := make([]float64, 32)
	got := allocsPerJob(t, 18, func(r *Rank) {
		n := r.Size()
		right := (r.ID() + 1) % n
		left := (r.ID() - 1 + n) % n
		for i := 0; i < 16; i++ {
			r.Sendrecv(right, 3, payload, 48*1024, left, 3)
			r.Sendrecv(left, 4, payload, 48*1024, right, 4)
		}
	})
	checkAllocBudget(t, "HaloExchange", got, 50)
}
