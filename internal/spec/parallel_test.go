package spec_test

import (
	"sync"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// parityWorkers are the worker counts whose output must be byte-identical
// to the serial engine. 2 and 4 exercise partial partition/worker ratios;
// 8 saturates (and exceeds, on small node counts) the partition count.
var parityWorkers = []int{2, 4, 8}

// parityJobs builds one multi-node job per registered kernel per paper
// cluster: ranks span four nodes (three full nodes plus a one-rank
// straggler node) so partition mail, window barriers, and uneven
// partition load are all exercised, while SimSteps 1 keeps the matrix
// fast. All nine kernels appear because their communication patterns
// stress different protocol paths (rendezvous wavefronts, halo
// exchanges, large allreduces, alltoall).
func parityJobs(t *testing.T) []spec.RunSpec {
	t.Helper()
	// The bench registry is process-global and other tests register
	// synthetic kernels (e.g. "always-invalid"); only the paper's
	// kernels carry full Table 1 metadata, so filter on it.
	var kernels []string
	for _, b := range bench.All() {
		if b.LOC > 0 {
			kernels = append(kernels, b.Name)
		}
	}
	var jobs []spec.RunSpec
	for _, cname := range []string{"ClusterA", "ClusterB"} {
		cs := machine.MustGet(cname)
		ranks := 3*cs.CPU.CoresPerNode() + 1
		for _, b := range kernels {
			jobs = append(jobs, spec.RunSpec{
				Benchmark: b, Class: bench.Tiny,
				Cluster: cs, Ranks: ranks,
				Options:   bench.Options{SimSteps: 1},
				KeepTrace: true,
			})
		}
	}
	return jobs
}

// TestParallelEngineParity runs every parity job serially and under the
// partitioned engine at 2, 4, and 8 workers, and demands byte-identical
// fingerprints — the full event timeline, per-rank totals, and aggregate
// usage down to the last ULP. This is the determinism contract of
// internal/sim/psim: worker count selects wall-clock strategy only.
func TestParallelEngineParity(t *testing.T) {
	for _, rs := range parityJobs(t) {
		rs := rs
		t.Run(rs.Benchmark+"_"+rs.Cluster.Name, func(t *testing.T) {
			t.Parallel()
			serial, err := spec.Run(rs)
			if err != nil {
				t.Fatal(err)
			}
			want := renderDeterminism(serial, true)
			for _, w := range parityWorkers {
				prs := rs
				prs.SimWorkers = w
				res, err := spec.Run(prs)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got := renderDeterminism(res, true); got != want {
					t.Errorf("workers=%d diverged from serial engine\n%s",
						w, firstDiff(want, got))
				}
			}
			// Static windows are the same simulation through narrower
			// barriers; one saturated-worker run pins that mode too.
			srs := rs
			srs.SimWorkers = 8
			srs.SimStaticWindows = true
			res, err := spec.Run(srs)
			if err != nil {
				t.Fatalf("static windows: %v", err)
			}
			if got := renderDeterminism(res, true); got != want {
				t.Errorf("static windows diverged from serial engine\n%s",
					firstDiff(want, got))
			}
		})
	}
}

// TestParallelEngineStress oscillates worker counts across back-to-back
// runs of the same jobs under -race, exercising pooled-job and pooled-
// engine reuse: a serial run must leave no state behind that corrupts a
// following partitioned run and vice versa, and concurrent partition
// execution must be free of data races. Fingerprints are checked against
// the first run of each job.
func TestParallelEngineStress(t *testing.T) {
	jobs := []spec.RunSpec{
		{Benchmark: "tealeaf", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterA"), Ranks: 3*72 + 1,
			Options: bench.Options{SimSteps: 1}, KeepTrace: true},
		{Benchmark: "soma", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterB"), Ranks: 3*104 + 1,
			Options: bench.Options{SimSteps: 1}, KeepTrace: true},
	}
	workerSeq := []struct {
		workers int
		static  bool
	}{
		{0, false}, {8, false}, {1, false}, {8, true}, {4, false},
		{8, false}, {0, true}, {2, true}, {8, false},
	}
	var mu sync.Mutex
	want := map[string]string{}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, w := range workerSeq {
				rs := jobs[(g+i)%len(jobs)]
				rs.SimWorkers = w.workers
				rs.SimStaticWindows = w.static
				res, err := spec.Run(rs)
				if err != nil {
					t.Errorf("goroutine %d workers=%d static=%v: %v", g, w.workers, w.static, err)
					return
				}
				got := renderDeterminism(res, true)
				mu.Lock()
				if prev, ok := want[rs.Benchmark]; !ok {
					want[rs.Benchmark] = got
				} else if got != prev {
					t.Errorf("goroutine %d: %s at workers=%d static=%v diverged from first run\n%s",
						g, rs.Benchmark, w.workers, w.static, firstDiff(prev, got))
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
}
