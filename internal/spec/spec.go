// Package spec is the SPEChpc-like harness: it runs registered benchmark
// kernels on simulated clusters, verifies their validation checks (as
// SPEC's tooling verifies results), extrapolates the simulated iteration
// subset to the full Table 1 workload, and produces the sweep series the
// paper's figures are built from.
package spec

import (
	"fmt"
	"sort"
	"sync"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// RunSpec describes one benchmark execution.
type RunSpec struct {
	// Benchmark is the registered kernel name (e.g. "lbm").
	Benchmark string
	// Class selects the tiny or small workload.
	Class bench.Class
	// Cluster is the machine to run on.
	Cluster *machine.ClusterSpec
	// Ranks is the MPI process count.
	Ranks int
	// ClockHz overrides the core clock: the run executes on
	// Cluster.WithClock(ClockHz), scaling in-core peaks and dynamic
	// power per the cluster's DVFS model. Zero runs at the pinned
	// BaseClockHz. Distinct clocks memoize independently in campaigns.
	ClockHz float64
	// Options tunes simulated steps / real-array scaling (zero = kernel
	// defaults).
	Options bench.Options
	// KeepTrace records the full per-rank event timeline (costly for
	// large jobs; per-kind sums are always recorded).
	KeepTrace bool
	// Net overrides the interconnect (zero value = HDR100).
	Net netsim.Spec
	// SimWorkers > 1 executes a multi-node job on the conservative-
	// lookahead parallel engine with that many concurrent partition
	// executors (internal/sim/psim). Results are byte-identical at
	// every worker count, so the field selects wall-clock strategy, not
	// simulation semantics — campaign job keys deliberately exclude it.
	SimWorkers int
	// SimStaticWindows pins the partitioned engine's windows to the
	// static fabric latency floor instead of the default adaptive
	// earliest-output widening. Like SimWorkers it changes wall-clock
	// strategy only — results are byte-identical — so campaign job keys
	// exclude it too. No effect on serial runs.
	SimStaticWindows bool
}

// RunResult is the outcome of one verified benchmark execution.
type RunResult struct {
	Spec RunSpec
	// Usage is extrapolated to the full workload step count; RawUsage is
	// the simulated subset as measured.
	Usage    machine.Usage
	RawUsage machine.Usage
	// Report carries validation checks and step accounting from rank 0.
	Report bench.RunReport
	// Trace is the recorder (always non-nil).
	Trace *trace.Recorder
}

// Run executes and verifies one benchmark.
func Run(rs RunSpec) (RunResult, error) {
	b, err := bench.Get(rs.Benchmark)
	if err != nil {
		return RunResult{}, err
	}
	if rs.Cluster == nil {
		return RunResult{}, fmt.Errorf("spec: run without cluster")
	}
	if rs.Ranks <= 0 {
		return RunResult{}, fmt.Errorf("spec: non-positive rank count")
	}
	cluster := rs.Cluster
	if rs.ClockHz > 0 {
		// Memoized: a frequency sweep derives and validates each ladder
		// point once per process, however many jobs run at it.
		cluster, err = cluster.WithClockCached(rs.ClockHz)
		if err != nil {
			return RunResult{}, fmt.Errorf("spec: %s/%s: %w", rs.Benchmark, rs.Class, err)
		}
		// Report the clock the simulation actually ran at: WithClock
		// snaps the request onto the DVFS ladder.
		rs.ClockHz = cluster.CPU.BaseClockHz
	}
	rec := trace.NewRecorder(rs.Ranks, rs.KeepTrace)
	// Rank bodies run on distinct (serially interleaved) goroutines, so
	// the first-error and rank-0-report capture is guarded by a mutex to
	// stay race-clean under `go test -race` and parallel campaign runs.
	var mu sync.Mutex
	var rep bench.RunReport
	var runErr error
	res, err := mpi.Run(mpi.Config{
		Cluster:       cluster,
		Ranks:         rs.Ranks,
		Trace:         rec,
		Net:           rs.Net,
		SimWorkers:    rs.SimWorkers,
		StaticWindows: rs.SimStaticWindows,
	}, func(r *mpi.Rank) {
		rr, err := b.Run(r, rs.Class, rs.Options)
		mu.Lock()
		if err != nil && runErr == nil {
			runErr = err
		}
		if r.ID() == 0 {
			rep = rr
		}
		mu.Unlock()
	})
	if err != nil {
		return RunResult{}, fmt.Errorf("spec: %s/%s on %s with %d ranks: %w",
			rs.Benchmark, rs.Class, rs.Cluster.Name, rs.Ranks, err)
	}
	if runErr != nil {
		return RunResult{}, runErr
	}
	if !rep.Valid() {
		return RunResult{}, fmt.Errorf("spec: %s/%s verification FAILED: %+v",
			rs.Benchmark, rs.Class, rep.Checks)
	}
	return RunResult{
		Spec:     rs,
		Usage:    res.Usage.Scale(rep.RepFactor()),
		RawUsage: res.Usage,
		Report:   rep,
		Trace:    rec,
	}, nil
}

// NodePoints returns the rank counts used for node-level sweeps on a
// cluster: every core count from 1 up to a full node would be expensive,
// so the sweep uses 1, 2, 4, then steps of one third of a ccNUMA domain
// (18-core domains advance by 6, 13-core domains by 4), plus every
// domain multiple, hitting every domain and socket boundary exactly —
// enough resolution for the saturation curves of Fig. 1-4. The exact
// point sets for the paper's two clusters are pinned by
// TestNodePointsPaperClusters; on-disk campaign caches key on rank
// counts, so changing this ladder invalidates warm sweeps.
func NodePoints(cs *machine.ClusterSpec) []int {
	cpd := cs.CPU.CoresPerDomain()
	cpn := cs.CPU.CoresPerNode()
	set := map[int]bool{1: true}
	for _, seed := range []int{2, 4} {
		if seed <= cpn {
			set[seed] = true
		}
	}
	step := cpd / 3
	if step < 1 {
		step = 1
	}
	for p := step; p <= cpn; p += step {
		set[p] = true
	}
	for d := 1; d*cpd <= cpn; d++ {
		set[d*cpd] = true
	}
	points := make([]int, 0, len(set))
	for p := range set {
		points = append(points, p)
	}
	sort.Ints(points)
	return points
}

// DomainPoints returns 1..cores-per-domain, the x axis of the
// power-vs-speedup plots (Fig. 3a/3c).
func DomainPoints(cs *machine.ClusterSpec) []int {
	cpd := cs.CPU.CoresPerDomain()
	points := make([]int, 0, cpd)
	for p := 1; p <= cpd; p++ {
		points = append(points, p)
	}
	return points
}

// MultiNodePoints returns full-node rank counts 1,2,4,8,...,MaxNodes plus
// the largest even node counts, the x axis of Fig. 5-6.
func MultiNodePoints(cs *machine.ClusterSpec) []int {
	cpn := cs.CPU.CoresPerNode()
	var points []int
	for nodes := 1; nodes <= cs.MaxNodes; nodes *= 2 {
		points = append(points, nodes*cpn)
	}
	last := points[len(points)-1]
	if full := cs.MaxNodes * cpn; full > last {
		points = append(points, full)
	}
	return points
}

// Sweep runs one benchmark over a list of rank counts serially and
// returns results in order. Options apply to every point. It is the
// uncached serial reference; sweeps that should parallelize across host
// cores and memoize repeated jobs go through internal/campaign instead.
func Sweep(base RunSpec, points []int) ([]RunResult, error) {
	out := make([]RunResult, 0, len(points))
	for _, p := range points {
		rs := base
		rs.Ranks = p
		r, err := Run(rs)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
