package spec_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

var updateGolden = flag.Bool("update", false, "rewrite determinism golden files")

// goldenJobs are the runs whose exact event-by-event schedules are pinned
// by golden files recorded with the pre-optimization engine. The full
// trace timeline is the scheduler's observable output: any change to
// event (time, seq) ordering reorders Record calls and shows up as a
// diff. The set covers the protocol paths that stress the scheduler
// differently: a rendezvous wavefront chain, a memory-bound halo code, a
// large-payload allreduce, and multi-node jobs exercising the interconnect
// and the hierarchical allreduce.
func goldenJobs() []struct {
	name string
	rs   spec.RunSpec
	full bool // record the full event list, not just per-kind sums
} {
	return []struct {
		name string
		rs   spec.RunSpec
		full bool
	}{
		{"minisweep_A8", spec.RunSpec{Benchmark: "minisweep", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterA"), Ranks: 8,
			Options: bench.Options{SimSteps: 1}, KeepTrace: true}, true},
		{"tealeaf_A6", spec.RunSpec{Benchmark: "tealeaf", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterA"), Ranks: 6,
			Options: bench.Options{SimSteps: 2}, KeepTrace: true}, true},
		{"soma_B8", spec.RunSpec{Benchmark: "soma", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterB"), Ranks: 8,
			Options: bench.Options{SimSteps: 1}, KeepTrace: true}, true},
		{"lbm_A72", spec.RunSpec{Benchmark: "lbm", Class: bench.Small,
			Cluster: machine.MustGet("ClusterA"), Ranks: 72,
			Options: bench.Options{SimSteps: 1}}, false},
		{"cloverleaf_B104", spec.RunSpec{Benchmark: "cloverleaf", Class: bench.Small,
			Cluster: machine.MustGet("ClusterB"), Ranks: 104,
			Options: bench.Options{SimSteps: 1}}, false},
	}
}

// renderDeterminism produces the canonical text fingerprint of a run.
// Floats print with %.17g so any ULP-level timing drift is a diff.
func renderDeterminism(res spec.RunResult, full bool) string {
	var b strings.Builder
	u := res.RawUsage
	fmt.Fprintf(&b, "wall=%.17g energy=%.17g flops=%.17g mem=%.17g\n",
		u.Wall, u.TotalEnergy(), u.FlopsScalar+u.FlopsSIMD, u.BytesMem)
	rec := res.Trace
	for rank := 0; rank < rec.Ranks(); rank++ {
		fmt.Fprintf(&b, "rank %d total=%.17g\n", rank, rec.RankTotal(rank))
	}
	if full {
		for _, ev := range rec.Events() {
			fmt.Fprintf(&b, "%d %s %.17g %.17g %d\n",
				ev.Rank, ev.Kind, ev.Start, ev.End, ev.Peer)
		}
	}
	return b.String()
}

// TestDeterminismGolden asserts the scheduler replays the exact event
// schedule recorded with the original (pre slab-queue) engine: same
// virtual times, same per-rank interval order, same aggregate counters.
// Regenerate with `go test ./internal/spec -run Determinism -update`
// only when an intentional model change alters simulated results.
func TestDeterminismGolden(t *testing.T) {
	for _, job := range goldenJobs() {
		job := job
		t.Run(job.name, func(t *testing.T) {
			res, err := spec.Run(job.rs)
			if err != nil {
				t.Fatal(err)
			}
			got := renderDeterminism(res, job.full)
			path := filepath.Join("testdata", "determinism_"+job.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to record): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s: simulated schedule diverged from the recorded engine\n%s",
					job.name, firstDiff(string(want), got))
			}
		})
	}
}

// TestDeterminismRepeat runs the same job twice in one process and
// demands identical fingerprints, catching any nondeterminism introduced
// by state reuse (pooled environments, recycled event slots).
func TestDeterminismRepeat(t *testing.T) {
	job := goldenJobs()[0]
	a, err := spec.Run(job.rs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run(job.rs)
	if err != nil {
		t.Fatal(err)
	}
	if renderDeterminism(a, true) != renderDeterminism(b, true) {
		t.Fatal("back-to-back identical runs produced different schedules")
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n want: %s\n  got: %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count: want %d got %d", len(wl), len(gl))
}
