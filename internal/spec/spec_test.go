package spec

import (
	"reflect"
	"strings"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

func TestAllNineBenchmarksRegistered(t *testing.T) {
	names := realBenchmarks()
	want := []string{"lbm", "soma", "tealeaf", "cloverleaf", "minisweep",
		"pot3d", "sph-exa", "hpgmgfv", "weather"}
	if len(names) != len(want) {
		t.Fatalf("registered %d benchmarks (%v), want %d", len(names), names, len(want))
	}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("benchmark %q missing from registry", w)
		}
	}
}

func TestRunVerifiesAndExtrapolates(t *testing.T) {
	res, err := Run(RunSpec{
		Benchmark: "tealeaf",
		Class:     bench.Tiny,
		Cluster:   machine.ClusterA(),
		Ranks:     4,
		Options:   bench.Options{SimSteps: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Report.RepFactor()
	if f <= 1 {
		t.Fatalf("rep factor = %v, want > 1", f)
	}
	if got := res.Usage.Wall / res.RawUsage.Wall; got < f*0.99 || got > f*1.01 {
		t.Fatalf("usage scaling = %v, want rep factor %v", got, f)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	_, err := Run(RunSpec{Benchmark: "nope", Cluster: machine.ClusterA(), Ranks: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestNodePointsCoverDomainsAndNode(t *testing.T) {
	for _, cs := range []*machine.ClusterSpec{machine.ClusterA(), machine.ClusterB()} {
		pts := NodePoints(cs)
		if pts[0] != 1 {
			t.Errorf("%s: first point %d, want 1", cs.Name, pts[0])
		}
		has := func(v int) bool {
			for _, p := range pts {
				if p == v {
					return true
				}
			}
			return false
		}
		cpd := cs.CPU.CoresPerDomain()
		for d := 1; d*cpd <= cs.CPU.CoresPerNode(); d++ {
			if !has(d * cpd) {
				t.Errorf("%s: missing domain boundary %d", cs.Name, d*cpd)
			}
		}
		if pts[len(pts)-1] != cs.CPU.CoresPerNode() {
			t.Errorf("%s: last point %d, want full node", cs.Name, pts[len(pts)-1])
		}
	}
}

// TestNodePointsPaperClusters pins the exact node-sweep ladders of the
// two paper systems: 1, 2, 4, then one-third-domain steps (6 on Ice
// Lake's 18-core domains, 4 on Sapphire Rapids' 13-core domains) plus
// every domain multiple. These rank counts are part of every figure's
// job plan — and therefore of the persistent campaign cache keys — so a
// change here silently invalidates warm stores and must be deliberate.
func TestNodePointsPaperClusters(t *testing.T) {
	cases := []struct {
		cluster string
		want    []int
	}{
		{"ClusterA", []int{
			1, 2, 4, 6, 12, 18, 24, 30, 36, 42, 48, 54, 60, 66, 72,
		}},
		{"ClusterB", []int{
			1, 2, 4, 8, 12, 13, 16, 20, 24, 26, 28, 32, 36, 39, 40, 44, 48,
			52, 56, 60, 64, 65, 68, 72, 76, 78, 80, 84, 88, 91, 92, 96, 100, 104,
		}},
	}
	for _, c := range cases {
		got := NodePoints(machine.MustGet(c.cluster))
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s node points:\n got %v\nwant %v", c.cluster, got, c.want)
		}
	}
}

func TestMultiNodePoints(t *testing.T) {
	a := machine.ClusterA()
	pts := MultiNodePoints(a)
	if pts[0] != 72 || pts[len(pts)-1] != 1152 {
		t.Fatalf("multi-node points %v, want 72..1152", pts)
	}
}

// tinyCluster builds a minimal valid cluster with very few cores, the
// edge case for the sweep point generators.
func tinyCluster(coresPerSocket, sockets, domains, nodes int) *machine.ClusterSpec {
	cs := machine.ClusterA()
	cs.Name = "tiny-test"
	cs.CPU.CoresPerSocket = coresPerSocket
	cs.CPU.SocketsPerNode = sockets
	cs.CPU.DomainsPerSocket = domains
	cs.MaxNodes = nodes
	return cs
}

func TestNodePointsTinyCoreCounts(t *testing.T) {
	// 2 cores per node, 1 domain: step = cpd/3 = 0 must clamp to 1, and
	// the seed points 2/4 must not exceed the node.
	cs := tinyCluster(2, 1, 1, 2)
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	pts := NodePoints(cs)
	if len(pts) == 0 || pts[0] != 1 {
		t.Fatalf("points %v, want to start at 1", pts)
	}
	cpn := cs.CPU.CoresPerNode()
	for i, p := range pts {
		if p < 1 || p > cpn {
			t.Errorf("point %d out of node range [1,%d]: %v", p, cpn, pts)
		}
		if i > 0 && pts[i-1] >= p {
			t.Errorf("points not strictly increasing: %v", pts)
		}
	}
	if pts[len(pts)-1] != cpn {
		t.Errorf("last point %d, want full node %d", pts[len(pts)-1], cpn)
	}

	// Single-core node degenerates to exactly one point.
	if pts := NodePoints(tinyCluster(1, 1, 1, 1)); len(pts) != 1 || pts[0] != 1 {
		t.Errorf("1-core node points = %v, want [1]", pts)
	}
}

func TestMultiNodePointsTinyClusters(t *testing.T) {
	// One node: a single full-node point, no duplicate.
	cs := tinyCluster(2, 1, 1, 1)
	if pts := MultiNodePoints(cs); len(pts) != 1 || pts[0] != 2 {
		t.Errorf("1-node points = %v, want [2]", pts)
	}
	// Three nodes: powers of two (1, 2) plus the full machine (3).
	cs = tinyCluster(2, 1, 1, 3)
	want := []int{2, 4, 6}
	pts := MultiNodePoints(cs)
	if len(pts) != len(want) {
		t.Fatalf("3-node points = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("3-node points = %v, want %v", pts, want)
		}
	}
}

func TestSweepRunsAllPoints(t *testing.T) {
	results, err := Sweep(RunSpec{
		Benchmark: "cloverleaf",
		Class:     bench.Tiny,
		Cluster:   machine.ClusterA(),
		Options:   bench.Options{SimSteps: 2},
	}, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, want := range []int{1, 4, 8} {
		if results[i].Usage.Ranks != want {
			t.Errorf("result %d has %d ranks, want %d", i, results[i].Usage.Ranks, want)
		}
	}
	// Strong scaling: wall time decreases.
	if results[2].Usage.Wall >= results[0].Usage.Wall {
		t.Error("8-rank run not faster than 1-rank run")
	}
}

func TestEveryBenchmarkRunsUnderHarness(t *testing.T) {
	for _, name := range realBenchmarks() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := Run(RunSpec{
				Benchmark: name,
				Class:     bench.Tiny,
				Cluster:   machine.ClusterA(),
				Ranks:     4,
				Options:   bench.Options{SimSteps: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Usage.Flops() <= 0 || res.Usage.Wall <= 0 {
				t.Fatalf("degenerate usage: %+v", res.Usage)
			}
		})
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	// The DES engine guarantees bit-identical results for identical
	// specs — the property that makes every figure reproducible.
	run := func() (float64, float64, float64) {
		res, err := Run(RunSpec{
			Benchmark: "minisweep",
			Class:     bench.Tiny,
			Cluster:   machine.ClusterB(),
			Ranks:     26,
			Options:   bench.Options{SimSteps: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Usage.Wall, res.Usage.ChipEnergy, res.Usage.TimeMPI
	}
	w1, e1, m1 := run()
	w2, e2, m2 := run()
	if w1 != w2 || e1 != e2 || m1 != m2 {
		t.Fatalf("nondeterministic run: wall %v vs %v, energy %v vs %v, mpi %v vs %v",
			w1, w2, e1, e2, m1, m2)
	}
}

func TestVerificationFailureIsRefused(t *testing.T) {
	// A benchmark whose checks fail must be rejected like SPEC's
	// invalid-run handling. Exercised via a synthetic registry entry.
	bench.Register(&bench.Benchmark{
		ID:   99,
		Name: "always-invalid",
		Run: func(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
			rep := bench.RunReport{StepsModeled: 1, StepsSimulated: 1}
			if r.ID() == 0 {
				rep.Checks = []bench.Check{{Name: "synthetic", OK: false}}
			}
			return rep, nil
		},
	})
	_, err := Run(RunSpec{
		Benchmark: "always-invalid", Class: bench.Tiny,
		Cluster: machine.ClusterA(), Ranks: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "verification FAILED") {
		t.Fatalf("invalid run not refused: %v", err)
	}
}

// realBenchmarks filters out synthetic registry entries other tests add.
func realBenchmarks() []string {
	var names []string
	for _, n := range bench.Names() {
		if n != "always-invalid" {
			names = append(names, n)
		}
	}
	return names
}
