package spec

import (
	"math"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/machine"
)

// checkEnergyIdentity asserts the accounting invariant of one usage
// record: reported energy equals the integrated average power times the
// wall time, per socket and per DRAM domain.
func checkEnergyIdentity(t *testing.T, tag string, u machine.Usage) {
	t.Helper()
	const tol = 1e-9
	var chip float64
	for _, p := range u.SocketChipPower {
		chip += p * u.Wall
	}
	if rel := math.Abs(chip-u.ChipEnergy) / u.ChipEnergy; rel > tol {
		t.Errorf("%s: chip energy %g J vs integrated power x time %g J (rel %g)",
			tag, u.ChipEnergy, chip, rel)
	}
	var dram float64
	for _, p := range u.DomainDRAMPower {
		dram += p * u.Wall
	}
	if rel := math.Abs(dram-u.DRAMEnergy) / u.DRAMEnergy; rel > tol {
		t.Errorf("%s: DRAM energy %g J vs integrated power x time %g J (rel %g)",
			tag, u.DRAMEnergy, dram, rel)
	}
}

// TestEnergyEqualsPowerTimesTime runs one memory-bound and one
// compute-bound kernel and checks the identity on both the extrapolated
// and the raw usage records, at the base clock and at a reduced clock.
func TestEnergyEqualsPowerTimesTime(t *testing.T) {
	a := machine.MustGet("ClusterA")
	for _, name := range []string{"pot3d", "sph-exa"} {
		for _, hz := range []float64{0, 1.2e9} {
			res, err := Run(RunSpec{
				Benchmark: name, Class: bench.Tiny, Cluster: a, Ranks: 4,
				ClockHz: hz, Options: bench.Options{SimSteps: 1},
			})
			if err != nil {
				t.Fatalf("%s at %g Hz: %v", name, hz, err)
			}
			tag := name
			checkEnergyIdentity(t, tag+"/usage", res.Usage)
			checkEnergyIdentity(t, tag+"/raw", res.RawUsage)
		}
	}
}

// TestComputeBoundEnergyMonotoneInClock checks the race-to-idle shape:
// for a compute-bound kernel, total energy falls monotonically as the
// clock rises — the baseline power term dominates the dynamic savings of
// slower clocks.
func TestComputeBoundEnergyMonotoneInClock(t *testing.T) {
	a := machine.MustGet("ClusterA")
	clocks := []float64{0.8e9, 1.2e9, 1.6e9, 2.0e9, 2.4e9}
	var prevE, prevWall float64
	for i, hz := range clocks {
		res, err := Run(RunSpec{
			Benchmark: "sph-exa", Class: bench.Tiny, Cluster: a, Ranks: 8,
			ClockHz: hz, Options: bench.Options{SimSteps: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		e := res.Usage.TotalEnergy()
		wall := res.Usage.Wall
		if i > 0 {
			if e >= prevE {
				t.Errorf("energy rose from %g J to %g J when clock rose to %g Hz (want monotone fall)",
					prevE, e, hz)
			}
			if wall >= prevWall {
				t.Errorf("compute-bound wall time did not fall with clock at %g Hz", hz)
			}
		}
		prevE, prevWall = e, wall
	}
}

// TestMemoryBoundWallFlatAcrossLadder checks the other half of the DVFS
// trade-off: a memory-bound kernel saturating its ccNUMA domain barely
// slows down at the bottom of the ladder, and its energy minimum sits at
// a reduced clock.
func TestMemoryBoundWallFlatAcrossLadder(t *testing.T) {
	a := machine.MustGet("ClusterA")
	run := func(hz float64) machine.Usage {
		t.Helper()
		res, err := Run(RunSpec{
			Benchmark: "pot3d", Class: bench.Tiny, Cluster: a,
			Ranks:   a.CPU.CoresPerDomain(), // saturate one domain
			ClockHz: hz, Options: bench.Options{SimSteps: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Usage
	}
	slow := run(a.CPU.DVFS.MinHz)
	fast := run(a.CPU.DVFS.MaxHz)
	if ratio := slow.Wall / fast.Wall; ratio > 1.10 {
		t.Errorf("memory-bound wall time grew %.2fx from max to min clock (want ~flat, <= 1.10x)", ratio)
	}
	if slow.TotalEnergy() >= fast.TotalEnergy() {
		t.Errorf("memory-bound energy at min clock (%g J) not below max clock (%g J)",
			slow.TotalEnergy(), fast.TotalEnergy())
	}
}
