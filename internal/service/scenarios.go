package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/scenario"
)

// syncBuffer is a mutex-guarded output buffer: the renderer goroutine
// appends plots/tables per sweep while status requests read whatever
// has landed so far.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

// Bytes returns a copy of everything rendered so far.
func (sb *syncBuffer) Bytes() []byte {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return append([]byte(nil), sb.b.Bytes()...)
}

// Len returns the rendered size without copying.
func (sb *syncBuffer) Len() int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Len()
}

// scenarioRun is one HTTP-submitted scenario: the per-sweep tickets
// (progress tracking), the renderer goroutine's growing output, and the
// CSV artifact directory.
type scenarioRun struct {
	id     string
	name   string
	title  string
	mode   string
	cancel context.CancelFunc
	sweeps [][]*campaign.Ticket
	pinned []*campaign.Ticket
	buf    *syncBuffer
	artDir string
	// renderDone closes when the renderer goroutine exits; shutdown
	// waits on it before removing artDir, so a still-writing renderer
	// can never recreate a directory cleanup just deleted.
	renderDone chan struct{}

	mu     sync.Mutex
	state  string // running, done, failed
	errMsg string
}

// setState records the renderer's terminal state.
func (run *scenarioRun) setState(state, errMsg string) {
	run.mu.Lock()
	run.state, run.errMsg = state, errMsg
	run.mu.Unlock()
}

// snapshot reads the current state.
func (run *scenarioRun) snapshot() (state, errMsg string) {
	run.mu.Lock()
	defer run.mu.Unlock()
	return run.state, run.errMsg
}

// sweepProgress is the wire form of one sweep's completion state.
type sweepProgress struct {
	Sweep     int `json:"sweep"`
	Total     int `json:"total"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// scenarioStatus is the wire form of one scenario run.
type scenarioStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Title string `json:"title,omitempty"`
	// Mode is the scenario's query tier ("exact" or "fast").
	Mode string `json:"mode"`
	// State is "running" until the renderer finished every sweep, then
	// "done" or "failed".
	State  string          `json:"state"`
	Error  string          `json:"error,omitempty"`
	Sweeps []sweepProgress `json:"sweeps"`
	// PinnedJobs counts the scenario's pinned single jobs (progress is
	// folded into the last sweep of the renderer's output).
	PinnedJobs     int      `json:"pinned_jobs"`
	PinnedDone     int      `json:"pinned_done"`
	OutputBytes    int      `json:"output_bytes"`
	ArtifactsReady []string `json:"artifacts,omitempty"`
}

// progress tallies one ticket group.
func progress(idx int, tickets []*campaign.Ticket) sweepProgress {
	p := sweepProgress{Sweep: idx + 1, Total: len(tickets)}
	for _, t := range tickets {
		out, resolved := t.Outcome()
		if !resolved {
			continue
		}
		switch {
		case out.Err == nil:
			p.Done++
		case t.State() == campaign.Cancelled:
			p.Cancelled++
		default:
			p.Failed++
		}
	}
	return p
}

// status snapshots the run, listing finished CSV artifacts.
func (run *scenarioRun) status() scenarioStatus {
	state, errMsg := run.snapshot()
	st := scenarioStatus{
		ID: run.id, Name: run.name, Title: run.title, Mode: run.mode,
		State: state, Error: errMsg,
		PinnedJobs:  len(run.pinned),
		OutputBytes: run.buf.Len(),
	}
	for i, tickets := range run.sweeps {
		st.Sweeps = append(st.Sweeps, progress(i, tickets))
	}
	st.PinnedDone = progress(0, run.pinned).Done
	if entries, err := os.ReadDir(run.artDir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
				st.ArtifactsReady = append(st.ArtifactsReady, e.Name())
			}
		}
		sort.Strings(st.ArtifactsReady)
	}
	return st
}

// handleSubmitScenario accepts a scenario document (docs/SCENARIOS.md
// format, comments allowed), submits its whole expansion to the
// scheduler, and starts a renderer goroutine that draws each sweep as
// its results land. The response is immediate: poll the returned id.
func (s *Server) handleSubmitScenario(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	// Scenarios are bulk load (priority 0) and expand to whole sweeps,
	// so they hit the tighter bulk lane and never degrade: a partially
	// surrogate-answered figure would be misleading.
	if _, ok := s.admit(w, r, 0, false); !ok {
		return
	}
	s.mu.Lock()
	s.nextRun++
	id := fmt.Sprintf("s-%d", s.nextRun)
	s.mu.Unlock()

	sc, err := scenario.Parse(body, id)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	planner := s.planner()
	sweepBatches, pinnedBatch, err := planner.ExpandParts(sc)
	if err != nil {
		writeError(w, http.StatusBadRequest, "expanding scenario: %v", err)
		return
	}
	artDir, err := s.artifactDir(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "artifact directory: %v", err)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	run := &scenarioRun{
		id: id, name: sc.Name, title: sc.Title, mode: sc.Mode.String(),
		cancel:     cancel,
		buf:        &syncBuffer{},
		artDir:     artDir,
		renderDone: make(chan struct{}),
		state:      "running",
	}
	// Submissions carry the scenario's query mode, so a "fast" study is
	// answered from the surrogate wherever its models are tight enough
	// and simulates only the refusals (the renderer's own engine requests
	// coalesce onto these tickets either way).
	for _, batch := range sweepBatches {
		tickets := make([]*campaign.Ticket, len(batch))
		for i, rs := range batch {
			tickets[i] = s.sched.SubmitMode(ctx, rs, 0, sc.Mode)
		}
		run.sweeps = append(run.sweeps, tickets)
	}
	for _, rs := range pinnedBatch {
		run.pinned = append(run.pinned, s.sched.SubmitMode(ctx, rs, 0, sc.Mode))
	}

	s.mu.Lock()
	s.runs[id] = run
	s.runOrder = append(s.runOrder, id)
	s.evictRunsLocked()
	s.mu.Unlock()

	// The renderer's engine requests coalesce onto the tickets above and
	// block per sweep, so output and CSV artifacts appear incrementally.
	// Render (not ExecuteCtx): the expansion is already submitted above,
	// and the renderer shares the run's context, so DELETE stops it at
	// the next sweep boundary.
	go func() {
		defer close(run.renderDone)
		if err := planner.Render(ctx, sc, run.buf, run.artDir); err != nil {
			run.setState("failed", err.Error())
			return
		}
		run.setState("done", "")
	}()

	writeJSON(w, http.StatusAccepted, run.status())
}

// artifactDir resolves the per-run CSV directory, creating it.
func (s *Server) artifactDir(id string) (string, error) {
	root := s.opts.ArtifactDir
	if root == "" {
		dir, err := os.MkdirTemp("", "spechpcd-"+id+"-")
		return dir, err
	}
	dir := filepath.Join(root, id)
	return dir, os.MkdirAll(dir, 0o755)
}

// run resolves a path id to its scenario run.
func (s *Server) run(r *http.Request) (*scenarioRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	run, ok := s.runs[r.PathValue("id")]
	return run, ok
}

// handleListScenarios lists every run in submit order.
func (s *Server) handleListScenarios(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	runs := make([]*scenarioRun, 0, len(s.runOrder))
	for _, id := range s.runOrder {
		runs = append(runs, s.runs[id])
	}
	s.mu.Unlock()
	out := make([]scenarioStatus, len(runs))
	for i, run := range runs {
		out[i] = run.status()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleScenarioStatus answers one run's per-sweep progress.
func (s *Server) handleScenarioStatus(w http.ResponseWriter, r *http.Request) {
	run, ok := s.run(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, run.status())
}

// handleCancelScenario releases the run's claims: jobs still queued are
// dropped (unless another submission wants them), running simulations
// complete and memoize. The renderer goroutine then fails fast on the
// cancelled jobs.
func (s *Server) handleCancelScenario(w http.ResponseWriter, r *http.Request) {
	run, ok := s.run(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	run.cancel()
	for _, tickets := range run.sweeps {
		for _, t := range tickets {
			t.Cancel()
		}
	}
	for _, t := range run.pinned {
		t.Cancel()
	}
	writeJSON(w, http.StatusOK, run.status())
}

// handleScenarioOutput streams the rendered plots/tables as they exist
// right now: partial while the run is in flight (the X-Scenario-State
// header says which), complete once state is done.
func (s *Server) handleScenarioOutput(w http.ResponseWriter, r *http.Request) {
	run, ok := s.run(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	state, _ := run.snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Scenario-State", state)
	w.Write(run.buf.Bytes())
}

// handleScenarioArtifacts lists the run's finished CSV artifacts.
func (s *Server) handleScenarioArtifacts(w http.ResponseWriter, r *http.Request) {
	run, ok := s.run(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, run.status().ArtifactsReady)
}

// handleScenarioArtifact serves one CSV artifact by name.
func (s *Server) handleScenarioArtifact(w http.ResponseWriter, r *http.Request) {
	run, ok := s.run(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	name := r.PathValue("name")
	if name != filepath.Base(name) || !strings.HasSuffix(name, ".csv") {
		writeError(w, http.StatusBadRequest, "artifact name must be a plain .csv file name")
		return
	}
	data, err := os.ReadFile(filepath.Join(run.artDir, name))
	if err != nil {
		writeError(w, http.StatusNotFound, "no artifact %q in scenario %s", name, run.id)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Write(data)
}

// Close cancels every outstanding submission, waits for the scenario
// renderers to exit, and removes temp artifact directories the server
// created (runs under an explicit ArtifactDir are kept). The daemon
// calls this on graceful shutdown, before closing the scheduler: the
// cancellations drop the runs' queued jobs, so renderers blocked on
// them fail fast instead of riding out the whole queue.
func (s *Server) Close() {
	// Unready first: /readyz flips before any work is cancelled, so a
	// load balancer stops routing here while the drain proceeds.
	s.draining.Store(true)
	s.mu.Lock()
	runs := make([]*scenarioRun, 0, len(s.runs))
	for _, run := range s.runs {
		runs = append(runs, run)
	}
	jobs := make([]*jobSub, 0, len(s.jobs))
	for _, js := range s.jobs {
		jobs = append(jobs, js)
	}
	s.mu.Unlock()
	for _, js := range jobs {
		js.cancel()
	}
	for _, run := range runs {
		run.cancel()
	}
	for _, run := range runs {
		<-run.renderDone // renderers stop at the next engine wait
		if s.opts.ArtifactDir == "" && run.artDir != "" {
			os.RemoveAll(run.artDir)
		}
	}
}
