package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/surrogate"
)

// fitRanks is the rank grid the surrogate server's tealeaf/ClusterA
// model is fitted over: queries inside [1, 36] are in-hull, anything
// beyond must fall back to the simulator.
var fitRanks = []int{1, 2, 3, 4, 6, 9, 12, 18, 24, 36}

// newSurrogateServer builds a server whose index is pre-fitted from an
// exact tealeaf sweep on ClusterA. MaxBound is generous so the tests
// exercise the hull/no-model axes deterministically, independent of how
// tight the kernel's LOO bounds happen to be.
func newSurrogateServer(t *testing.T) (*httptest.Server, *surrogate.Index, *campaign.Scheduler) {
	t.Helper()
	results, err := spec.Sweep(spec.RunSpec{
		Benchmark: "tealeaf",
		Class:     bench.Tiny,
		Cluster:   machine.MustGet("ClusterA"),
		Options:   bench.Options{SimSteps: 1},
	}, fitRanks)
	if err != nil {
		t.Fatal(err)
	}
	idx := surrogate.NewIndex()
	idx.MaxBound = 10
	for _, res := range results {
		idx.Observe(res)
	}
	sched := campaign.NewScheduler(2, nil)
	srv := New(sched, Options{Quick: true, ArtifactDir: t.TempDir(), Surrogate: idx})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		sched.Close()
	})
	return ts, idx, sched
}

// TestJobModeFastHit round-trips a fast-mode job inside the fitted
// hull: the answer comes from the surrogate (bound attached, no
// simulation) and /statsz counts the hit on both the scheduler and the
// model-inventory side.
func TestJobModeFastHit(t *testing.T) {
	ts, _, _ := newSurrogateServer(t)

	var sub jobStatus
	resp := doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		`{"benchmark":"tealeaf","cluster":"A","class":"tiny","ranks":8,"sim_steps":1,"mode":"fast"}`, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	st := waitState(t, ts.URL+"/api/v1/jobs/"+sub.ID)
	if st.State != "done" {
		t.Fatalf("fast job ended as %s (%s)", st.State, st.Error)
	}
	if st.Surrogate == nil || st.Surrogate.Bound <= 0 {
		t.Fatalf("fast in-hull job not marked surrogate-served: %+v", st.Surrogate)
	}
	if st.Result == nil || st.Result.Usage.Wall <= 0 {
		t.Fatalf("surrogate answer carries no usage: %+v", st.Result)
	}
	if st.Result.Usage.Ranks != 8 {
		t.Errorf("synthesized ranks = %d, want 8", st.Result.Usage.Ranks)
	}
	if v, ok := st.Result.Metrics["wall_s"]; !ok || v <= 0 {
		t.Errorf("derived metrics missing from surrogate answer: %v", st.Result.Metrics)
	}

	var stats statszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", "", &stats)
	if stats.Campaign.SurrogateHits != 1 || stats.Campaign.FreshSims != 0 {
		t.Errorf("campaign stats = %+v, want 1 surrogate hit and 0 fresh sims", stats.Campaign)
	}
	if stats.Surrogate == nil {
		t.Fatal("statsz lacks the surrogate block despite an attached index")
	}
	if stats.Surrogate.Models < 1 || stats.Surrogate.Hits != 1 {
		t.Errorf("surrogate block = %+v, want >=1 model with 1 hit", stats.Surrogate)
	}
	if stats.Surrogate.Observed != int64(len(fitRanks)) {
		t.Errorf("observed = %d, want the %d fitted sweep points", stats.Surrogate.Observed, len(fitRanks))
	}
}

// TestJobModeFastFallbacks round-trips the two fallback flavours: an
// out-of-hull query (model exists, refuses to extrapolate) and a
// no-model query (kernel never observed). Both must simulate exactly
// and finish with real results, counted distinctly.
func TestJobModeFastFallbacks(t *testing.T) {
	ts, _, _ := newSurrogateServer(t)

	// Extrapolation refused: ranks=60 is beyond the fitted [1, 36] hull.
	var refused jobStatus
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		`{"benchmark":"tealeaf","cluster":"A","class":"tiny","ranks":60,"sim_steps":1,"mode":"fast"}`, &refused)
	st := waitState(t, ts.URL+"/api/v1/jobs/"+refused.ID)
	if st.State != "done" {
		t.Fatalf("out-of-hull fallback ended as %s (%s)", st.State, st.Error)
	}
	if st.Surrogate != nil {
		t.Fatal("out-of-hull job claims a surrogate answer")
	}
	if st.Result == nil || st.Result.Usage.Wall <= 0 {
		t.Fatal("fallback simulation carries no usage")
	}

	// No model: lbm was never observed.
	var noModel jobStatus
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		`{"benchmark":"lbm","cluster":"A","class":"tiny","ranks":4,"sim_steps":1,"mode":"fast"}`, &noModel)
	if st := waitState(t, ts.URL+"/api/v1/jobs/"+noModel.ID); st.State != "done" || st.Surrogate != nil {
		t.Fatalf("no-model fallback: state=%s surrogate=%+v", st.State, st.Surrogate)
	}

	var stats statszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", "", &stats)
	if stats.Campaign.SurrogateRefused != 1 || stats.Campaign.SurrogateMisses != 1 {
		t.Errorf("campaign stats = %+v, want 1 refused + 1 miss", stats.Campaign)
	}
	if stats.Campaign.FreshSims != 2 {
		t.Errorf("fresh_sims = %d, want 2 (both fallbacks simulated)", stats.Campaign.FreshSims)
	}
	if stats.Surrogate.Refused != 1 || stats.Surrogate.NoModel != 1 {
		t.Errorf("surrogate block = %+v, want 1 refused + 1 no-model", stats.Surrogate)
	}
}

// TestJobModeExactBypassesSurrogate checks the default tier is
// untouched by an attached index: an exact submission simulates even
// when a fitted model covers it.
func TestJobModeExactBypassesSurrogate(t *testing.T) {
	ts, _, _ := newSurrogateServer(t)

	var sub jobStatus
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		`{"benchmark":"tealeaf","cluster":"A","class":"tiny","ranks":8,"sim_steps":1,"mode":"exact"}`, &sub)
	st := waitState(t, ts.URL+"/api/v1/jobs/"+sub.ID)
	if st.State != "done" || st.Surrogate != nil {
		t.Fatalf("exact job: state=%s surrogate=%+v", st.State, st.Surrogate)
	}

	var stats statszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", "", &stats)
	if stats.Campaign.SurrogateHits != 0 || stats.Campaign.FreshSims != 1 {
		t.Errorf("campaign stats = %+v, want 0 surrogate hits and 1 fresh sim", stats.Campaign)
	}
}

// TestJobModeValidation rejects unknown mode values with a 400.
func TestJobModeValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	var e map[string]string
	resp := doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		`{"benchmark":"tealeaf","cluster":"A","ranks":2,"mode":"turbo"}`, &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mode=turbo: status %d, want 400", resp.StatusCode)
	}
	if e["error"] == "" {
		t.Error("mode=turbo: no error message")
	}
}

// TestScenarioModeFast runs a whole scenario through the fast tier: all
// of its points sit inside the fitted hull, so the study completes with
// zero fresh simulations and the run reports its mode.
func TestScenarioModeFast(t *testing.T) {
	ts, _, _ := newSurrogateServer(t)

	doc := `{
	  "name": "fastsvc",
	  "mode": "fast",
	  "sweeps": [
	    {"benchmarks": ["tealeaf"], "clusters": ["ClusterA"], "points": [2, 8, 20], "metrics": ["wall_s"]}
	  ]
	}`
	var sub scenarioStatus
	resp := doJSON(t, http.MethodPost, ts.URL+"/api/v1/scenarios", doc, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %+v", resp.StatusCode, sub)
	}
	if sub.Mode != "fast" {
		t.Errorf("scenario mode = %q, want fast", sub.Mode)
	}

	deadline := time.Now().Add(60 * time.Second)
	var st scenarioStatus
	for {
		doJSON(t, http.MethodGet, ts.URL+"/api/v1/scenarios/"+sub.ID, "", &st)
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scenario never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("scenario ended as %s (%s)", st.State, st.Error)
	}

	var stats statszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", "", &stats)
	if stats.Campaign.FreshSims != 0 {
		t.Errorf("fresh_sims = %d, want 0 (the whole study rode the surrogate)", stats.Campaign.FreshSims)
	}
	if stats.Campaign.SurrogateHits < 3 {
		t.Errorf("surrogate_hits = %d, want >= 3 (one per sweep point)", stats.Campaign.SurrogateHits)
	}
}
