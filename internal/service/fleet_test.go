package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/fleet"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/surrogate"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// Gate kernel for saturating the scheduler queue deterministically:
// each svc-fleet-gate execution blocks on svcGate until the test
// releases it.
var (
	svcGate    chan struct{}
	svcStarted atomic.Int64
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:   94,
		Name: "svc-fleet-gate",
		Run: func(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
			svcStarted.Add(1)
			<-svcGate
			r.Compute(machine.Phase{Name: "gate", FlopsSIMD: 1e6, BytesMem: 1e4})
			rep := bench.RunReport{StepsModeled: 1, StepsSimulated: 1}
			if r.ID() == 0 {
				rep.Checks = []bench.Check{{Name: "synthetic", Value: 0, OK: true}}
			}
			return rep, nil
		},
	})
}

// postJSON sends one JSON request with optional headers and decodes the
// response.
func postJSON(t *testing.T, url, body string, headers map[string]string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp
}

// TestReadyzLifecycle walks the readiness probe through a standalone
// server's life: ready while serving, unready (but still live) once
// draining begins.
func TestReadyzLifecycle(t *testing.T) {
	srv, ts, _ := newTestServer(t, nil)

	if resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while serving = %d, want 200", resp.StatusCode)
	}
	srv.Close() // drain
	if resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", "", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining = %d; liveness must outlast readiness", resp.StatusCode)
	}
}

// TestReadyzCoordinatorNeedsWorkers pins coordinator readiness to the
// worker pool: a coordinator with no live workers cannot serve fresh
// simulations, so it reports unready until one registers — httptest
// covering the startup window before the fleet has joined.
func TestReadyzCoordinatorNeedsWorkers(t *testing.T) {
	sched := campaign.NewScheduler(2, nil)
	coord := fleet.NewCoordinator(fleet.NewRegistry(time.Hour, 2*time.Hour), nil)
	srv := New(sched, Options{Quick: true, ArtifactDir: t.TempDir(), Fleet: coord})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); sched.Close() })

	if resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", "", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("workerless coordinator readyz = %d, want 503", resp.StatusCode)
	}
	// Registration over the wire flips readiness.
	resp := postJSON(t, ts.URL+fleet.RegisterPath,
		`{"worker":{"id":"w1","url":"http://127.0.0.1:1"}}`, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register = %d, want 200", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", "", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("coordinator readyz with a live worker = %d, want 200", resp.StatusCode)
	}

	// Heartbeat round trip, known and unknown.
	if resp := postJSON(t, ts.URL+fleet.HeartbeatPath, `{"id":"w1"}`, nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("heartbeat for registered worker = %d, want 200", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+fleet.HeartbeatPath, `{"id":"ghost"}`, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("heartbeat for unknown worker = %d, want 404 (re-register signal)", resp.StatusCode)
	}
	var workers []fleet.WorkerStatus
	doJSON(t, http.MethodGet, ts.URL+fleet.WorkersPath, "", &workers)
	if len(workers) != 1 || workers[0].ID != "w1" || workers[0].State != fleet.Alive {
		t.Errorf("workers snapshot = %+v, want [w1 alive]", workers)
	}

	var stats statszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", "", &stats)
	if stats.Fleet == nil || stats.Fleet.WorkersAlive != 1 {
		t.Errorf("statsz fleet block = %+v, want 1 alive worker", stats.Fleet)
	}
}

// TestFleetEndpointsAbsentStandalone checks the coordinator-only routes
// answer 404 on a standalone daemon.
func TestFleetEndpointsAbsentStandalone(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	if resp := postJSON(t, ts.URL+fleet.RegisterPath,
		`{"worker":{"id":"w1","url":"http://x"}}`, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("register on standalone = %d, want 404", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+fleet.WorkersPath, "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("workers on standalone = %d, want 404", resp.StatusCode)
	}
}

// TestFleetRunEndpoint dispatches one job to a worker-shaped server the
// way a coordinator would and checks the record round-trips into a
// result; then the error contract: KeepTrace is 400, a deterministic
// simulation failure is 422, and a draining worker answers 503.
func TestFleetRunEndpoint(t *testing.T) {
	srv, ts, _ := newTestServer(t, nil)

	rs := spec.RunSpec{
		Benchmark: "tealeaf", Class: bench.Tiny,
		Cluster: machine.MustGet("ClusterA"), Ranks: 2,
		Options: bench.Options{SimSteps: 1},
	}
	body, _ := json.Marshal(fleet.RunRequest{Spec: rs})
	var rec campaign.Record
	if resp := postJSON(t, ts.URL+fleet.RunPath, string(body), nil, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet run = %d, want 200", resp.StatusCode)
	}
	res, ok := rec.Result()
	if !ok {
		t.Fatalf("dispatched record unusable: %+v", rec)
	}
	if res.Usage.Wall <= 0 || res.Spec.Benchmark != "tealeaf" {
		t.Errorf("dispatched result malformed: %+v", res.Usage)
	}

	traced := rs
	traced.KeepTrace = true
	body, _ = json.Marshal(fleet.RunRequest{Spec: traced})
	if resp := postJSON(t, ts.URL+fleet.RunPath, string(body), nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("KeepTrace dispatch = %d, want 400", resp.StatusCode)
	}

	bad := rs
	bad.Benchmark = "no-such-kernel"
	body, _ = json.Marshal(fleet.RunRequest{Spec: bad})
	if resp := postJSON(t, ts.URL+fleet.RunPath, string(body), nil, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("deterministically failing dispatch = %d, want 422", resp.StatusCode)
	}

	srv.Close()
	body, _ = json.Marshal(fleet.RunRequest{Spec: rs})
	if resp := postJSON(t, ts.URL+fleet.RunPath, string(body), nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("dispatch to draining worker = %d, want 503", resp.StatusCode)
	}
}

// TestFleetStoreEndpoints round-trips a record through the shared-store
// routes using the production RemoteStore client against a
// DirStore-backed server.
func TestFleetStoreEndpoints(t *testing.T) {
	st, err := campaign.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, st)
	remote := &fleet.RemoteStore{Base: ts.URL, WorkerID: "w-test"}

	rs := spec.RunSpec{
		Benchmark: "tealeaf", Class: bench.Tiny,
		Cluster: machine.MustGet("ClusterA"), Ranks: 1,
		Options: bench.Options{SimSteps: 1},
	}
	key := campaign.Key(rs)
	if _, ok, err := remote.Get(key); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v, want clean miss", ok, err)
	}
	rec := campaign.NewRecord(key, spec.RunResult{Spec: rs, Trace: trace.FromSums(make([][]float64, 1))})
	if err := remote.Put(key, rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := remote.Get(key)
	if err != nil || !ok || got.Key != key {
		t.Fatalf("after put: ok=%v err=%v key=%s", ok, err, got.Key)
	}
	// The record landed in the server's DirStore, not some side cache.
	if _, ok, _ := st.Get(key); !ok {
		t.Error("record not visible in the backing DirStore")
	}
	// Key mismatch between URL and body is rejected.
	if err := remote.Put("v1-doesnotmatch", rec); err == nil {
		t.Error("mismatched put accepted")
	}
}

// TestRateLimit429 hits the front door over its per-client budget and
// checks the shed shape: 429, a Retry-After hint in whole seconds, and
// isolation between clients. /statsz must count the sheds.
func TestRateLimit429(t *testing.T) {
	sched := campaign.NewScheduler(4, nil)
	srv := New(sched, Options{
		Quick: true, ArtifactDir: t.TempDir(),
		Admission: fleet.AdmissionConfig{RatePerClient: 1, Burst: 3},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); sched.Close() })

	job := `{"benchmark":"tealeaf","cluster":"A","class":"tiny","ranks":1,"sim_steps":1}`
	alice := map[string]string{"X-Client-ID": "alice"}
	for i := 0; i < 3; i++ {
		if resp := postJSON(t, ts.URL+"/api/v1/jobs", job, alice, nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d = %d, want 202", i, resp.StatusCode)
		}
	}
	resp := postJSON(t, ts.URL+"/api/v1/jobs", job, alice, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive whole-second hint", ra)
	}
	// Scenario submissions share the same gate.
	if resp := postJSON(t, ts.URL+"/api/v1/scenarios", `{"name":"x"}`, alice, nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("scenario over budget = %d, want 429", resp.StatusCode)
	}
	// Another client's bucket is untouched.
	if resp := postJSON(t, ts.URL+"/api/v1/jobs", job,
		map[string]string{"X-Client-ID": "bob"}, nil); resp.StatusCode != http.StatusAccepted {
		t.Errorf("other client shed alongside: %d", resp.StatusCode)
	}

	var stats statszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", "", &stats)
	if stats.Admission.RateLimited != 2 || stats.Admission.Admitted != 4 {
		t.Errorf("admission stats = %+v, want 4 admitted / 2 rate-limited", stats.Admission)
	}
}

// TestQueueShedAndPriorityLane saturates a 1-worker scheduler with
// gated jobs and checks the lanes: bulk (priority 0) submissions shed
// at half the queue bound while an interactive (priority 1) one still
// passes, and the shed carries Retry-After.
func TestQueueShedAndPriorityLane(t *testing.T) {
	svcGate = make(chan struct{})
	svcStarted.Store(0)
	released := false
	release := func() {
		if !released {
			released = true
			close(svcGate)
		}
	}
	defer release()

	sched := campaign.NewScheduler(1, nil)
	srv := New(sched, Options{
		Quick: true, ArtifactDir: t.TempDir(),
		Admission: fleet.AdmissionConfig{MaxQueue: 4}, // bulk lane = 2
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { release(); ts.Close(); srv.Close(); sched.Close() })

	gateJob := func(tag int) string {
		return `{"benchmark":"svc-fleet-gate","cluster":"A","class":"tiny","ranks":1,"sim_steps":` +
			string(rune('0'+tag)) + `}`
	}
	// First job occupies the only worker; two more fill the bulk lane.
	if resp := postJSON(t, ts.URL+"/api/v1/jobs", gateJob(1), nil, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pin job = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svcStarted.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("gate job never started")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 2; i <= 3; i++ {
		if resp := postJSON(t, ts.URL+"/api/v1/jobs", gateJob(i), nil, nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queue fill job %d = %d", i, resp.StatusCode)
		}
	}
	// Bulk lane (2) is full: priority 0 sheds, priority 1 passes.
	resp := postJSON(t, ts.URL+"/api/v1/jobs", gateJob(4), nil, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bulk submit at full bulk lane = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue shed lacks Retry-After")
	}
	pri := `{"benchmark":"svc-fleet-gate","cluster":"A","class":"tiny","ranks":1,"sim_steps":9,"priority":1}`
	if resp := postJSON(t, ts.URL+"/api/v1/jobs", pri, nil, nil); resp.StatusCode != http.StatusAccepted {
		t.Errorf("interactive submit in the priority lane = %d, want 202", resp.StatusCode)
	}
	release()
}

// TestDegradedModeAnswersFromSurrogate saturates the exact queue on a
// degraded-mode server and checks the fallback split: an in-hull query
// is answered by the surrogate (202, X-Degraded header, bound
// attached, no queue growth) while an out-of-hull query — which the
// surrogate refuses — sheds with 429. /statsz counts both.
func TestDegradedModeAnswersFromSurrogate(t *testing.T) {
	svcGate = make(chan struct{})
	svcStarted.Store(0)
	released := false
	release := func() {
		if !released {
			released = true
			close(svcGate)
		}
	}
	defer release()

	// Fit tealeaf/ClusterA over the standard grid, as mode_test does.
	results, err := spec.Sweep(spec.RunSpec{
		Benchmark: "tealeaf", Class: bench.Tiny,
		Cluster: machine.MustGet("ClusterA"),
		Options: bench.Options{SimSteps: 1},
	}, fitRanks)
	if err != nil {
		t.Fatal(err)
	}
	idx := surrogate.NewIndex()
	idx.MaxBound = 10
	for _, res := range results {
		idx.Observe(res)
	}

	sched := campaign.NewScheduler(1, nil)
	srv := New(sched, Options{
		Quick: true, ArtifactDir: t.TempDir(),
		Surrogate: idx, Degraded: true,
		Admission: fleet.AdmissionConfig{MaxQueue: 1},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { release(); ts.Close(); srv.Close(); sched.Close() })

	// Saturate: one gated job running, one queued (depth 1 = MaxQueue).
	gate := `{"benchmark":"svc-fleet-gate","cluster":"A","class":"tiny","ranks":1,"sim_steps":1,"priority":1}`
	if resp := postJSON(t, ts.URL+"/api/v1/jobs", gate, nil, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pin job = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svcStarted.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("gate job never started")
		}
		time.Sleep(time.Millisecond)
	}
	gate2 := `{"benchmark":"svc-fleet-gate","cluster":"A","class":"tiny","ranks":1,"sim_steps":2,"priority":1}`
	if resp := postJSON(t, ts.URL+"/api/v1/jobs", gate2, nil, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue fill = %d", resp.StatusCode)
	}

	// In-hull exact query under saturation: degraded to the surrogate.
	var sub jobStatus
	inHull := `{"benchmark":"tealeaf","cluster":"A","class":"tiny","ranks":8,"sim_steps":1,"priority":1}`
	resp := postJSON(t, ts.URL+"/api/v1/jobs", inHull, nil, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("degradable submit = %d, want 202", resp.StatusCode)
	}
	if resp.Header.Get("X-Degraded") != "surrogate" {
		t.Error("degraded answer lacks the X-Degraded marker")
	}
	st := waitState(t, ts.URL+"/api/v1/jobs/"+sub.ID)
	if st.State != "done" || st.Surrogate == nil || st.Surrogate.Bound <= 0 {
		t.Fatalf("degraded job = %s surrogate=%+v, want done with a bound", st.State, st.Surrogate)
	}

	// Out-of-hull: the surrogate refuses to extrapolate, so the
	// saturated front door sheds instead.
	outHull := `{"benchmark":"tealeaf","cluster":"A","class":"tiny","ranks":60,"sim_steps":1,"priority":1}`
	if resp := postJSON(t, ts.URL+"/api/v1/jobs", outHull, nil, nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("undegradable submit = %d, want 429", resp.StatusCode)
	}

	var stats statszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", "", &stats)
	if stats.Admission.Degraded != 1 || stats.Admission.QueueShed != 1 {
		t.Errorf("admission stats = %+v, want 1 degraded / 1 queue-shed", stats.Admission)
	}
	release()
}
