package service

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strconv"
	"time"

	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/fleet"
)

// This file is the service's fleet face: the worker-side run endpoint
// the coordinator dispatches to, the coordinator-side membership and
// shared-store endpoints workers call, and the front-door admission
// helpers. Route paths come from the fleet package's protocol
// constants, so coordinator, worker, and tests cannot drift apart.

// handleReadyz is the readiness probe — distinct from /healthz
// liveness: a live process may still be unable to do useful work. Ready
// means the scheduler is accepting (not draining, not closed) and, in
// coordinator mode, at least one worker is not Dead; a worker or
// standalone daemon with an accepting scheduler is simply ready.
// Load balancers use this to pull a draining or workerless coordinator
// out of rotation while /healthz still answers ok.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || s.sched.Closed() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if c := s.opts.Fleet; c != nil {
		alive, suspect, _ := c.Registry.Counts()
		if alive+suspect == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no live workers"})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleFleetRun executes one dispatched job on this worker and blocks
// until it resolves — the fleet's unit of work. The job joins the
// local scheduler like any submission (coalescing with local and HTTP
// traffic), and the response is the store exchange format, so the
// coordinator's dispatcher and a store read decode identically.
func (s *Server) handleFleetRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "worker is draining")
		return
	}
	var req fleet.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding run request: %v", err)
		return
	}
	if req.Spec.KeepTrace {
		// Event timelines are not part of the wire format; the
		// coordinator runs such jobs locally and must never ship them.
		writeError(w, http.StatusBadRequest, "KeepTrace jobs are not dispatchable")
		return
	}
	ticket := s.sched.Submit(r.Context(), req.Spec)
	out := ticket.Wait(r.Context())
	switch {
	case out.Err == nil:
		writeJSON(w, http.StatusOK, campaign.NewRecord(ticket.Key(), out.Result))
	case errors.Is(out.Err, campaign.ErrClosed), errors.Is(out.Err, campaign.ErrCancelled),
		r.Context().Err() != nil:
		// Worker shutting down or the coordinator gave up: retryable.
		writeError(w, http.StatusServiceUnavailable, "job not run: %v", out.Err)
	default:
		// Deterministic simulation failure — retrying elsewhere would
		// reproduce it. 422 tells the dispatcher not to.
		writeError(w, http.StatusUnprocessableEntity, "%v", out.Err)
	}
}

// handleFleetRegister enrols a worker (coordinator mode only).
func (s *Server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	c := s.opts.Fleet
	if c == nil {
		writeError(w, http.StatusNotFound, "not a coordinator")
		return
	}
	var req fleet.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding register request: %v", err)
		return
	}
	if err := c.Registry.Register(req.Worker); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "registered"})
}

// handleFleetHeartbeat refreshes a worker's liveness; 404 for an
// unknown ID tells the worker to re-register (the coordinator may have
// restarted and lost membership).
func (s *Server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	c := s.opts.Fleet
	if c == nil {
		writeError(w, http.StatusNotFound, "not a coordinator")
		return
	}
	var req fleet.HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding heartbeat: %v", err)
		return
	}
	if !c.Registry.Heartbeat(req.ID) {
		writeError(w, http.StatusNotFound, "unknown worker %q; re-register", req.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleFleetWorkers lists registered workers with health state.
func (s *Server) handleFleetWorkers(w http.ResponseWriter, r *http.Request) {
	c := s.opts.Fleet
	if c == nil {
		writeError(w, http.StatusNotFound, "not a coordinator")
		return
	}
	writeJSON(w, http.StatusOK, c.Registry.Snapshot())
}

// handleFleetStoreGet serves one record from the shared store — the
// read half of fleet.RemoteStore. 404 is a miss; a store fault (torn
// record being self-healed) surfaces as 500 and the client treats it
// as a miss plus a counted fault.
func (s *Server) handleFleetStoreGet(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Store()
	if st == nil {
		writeError(w, http.StatusNotFound, "no store attached")
		return
	}
	key := r.PathValue("key")
	rec, ok, err := st.Get(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no record %q", key)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleFleetStorePut writes one record into the shared store — the
// write half of fleet.RemoteStore. Keys are content-addressed, so a
// concurrent double write is harmless; the only rejected bodies are
// malformed ones or records whose embedded key disagrees with the URL.
func (s *Server) handleFleetStorePut(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Store()
	if st == nil {
		writeError(w, http.StatusNotFound, "no store attached")
		return
	}
	key := r.PathValue("key")
	var rec campaign.Record
	if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding record: %v", err)
		return
	}
	if rec.Key != key {
		writeError(w, http.StatusBadRequest, "record key %q does not match URL key %q", rec.Key, key)
		return
	}
	if err := st.Put(key, rec); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// clientKey identifies the caller for per-client rate limiting: the
// X-Client-ID header when set (trusted deployments, smoke tests), else
// the remote host without its ephemeral port.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// shed answers 429 with a Retry-After hint, rounding the hint up to a
// whole second (the header is integer seconds and zero would invite an
// immediate retry).
func shed(w http.ResponseWriter, retryAfter time.Duration) {
	secs := int(retryAfter / time.Second)
	if retryAfter%time.Second != 0 || secs == 0 {
		secs++
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, "over capacity; retry after %ds", secs)
}

// admit runs the front-door gate for one submission. It answers false
// after writing the 429 when the submission must be shed; degrade=true
// means the queue is saturated but the caller should try the surrogate
// fast tier before giving up.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, priority int, canDegrade bool) (degrade, ok bool) {
	d, retryAfter := s.admission.Decide(clientKey(r), priority, s.sched.QueueDepth(), canDegrade)
	switch d {
	case fleet.Shed:
		shed(w, retryAfter)
		return false, false
	case fleet.Degrade:
		return true, true
	default:
		return false, true
	}
}
