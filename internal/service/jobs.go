package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/fleet"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/scenario"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// jobSub is one HTTP-submitted job: the ticket plus the submission's
// cancel handle (DELETE releases the claim; the scheduler drops the job
// if no other submission wants it).
type jobSub struct {
	id     string
	req    jobRequest
	ticket *campaign.Ticket
	cancel context.CancelFunc
}

// jobRequest is the POST /api/v1/jobs body.
type jobRequest struct {
	Benchmark string  `json:"benchmark"`
	Cluster   string  `json:"cluster"`
	Class     string  `json:"class"`
	Ranks     int     `json:"ranks"`
	ClockGHz  float64 `json:"clock_ghz"`
	SimSteps  int     `json:"sim_steps"`
	ScaleDiv  int     `json:"scale_div"`
	// Priority orders the scheduler queue: higher runs sooner. Interactive
	// clients can jump ahead of bulk sweeps.
	Priority int `json:"priority"`
	// Mode selects the query tier: "exact" (default) always simulates;
	// "fast" serves an analytic surrogate answer when one is fitted and
	// within tolerance, falling back to exact simulation otherwise. See
	// docs/SERVICE.md.
	Mode string `json:"mode"`
}

// mode resolves the request's query tier.
func (jr jobRequest) mode() (campaign.Mode, error) {
	return scenario.ParseMode(jr.Mode)
}

// runSpec resolves the request into a RunSpec, validating every field
// before anything reaches the scheduler.
func (jr jobRequest) runSpec() (spec.RunSpec, error) {
	if jr.Benchmark == "" {
		return spec.RunSpec{}, fmt.Errorf("missing benchmark")
	}
	if _, err := bench.Get(jr.Benchmark); err != nil {
		return spec.RunSpec{}, err
	}
	if jr.Cluster == "" {
		return spec.RunSpec{}, fmt.Errorf("missing cluster")
	}
	cs, err := machine.Get(jr.Cluster)
	if err != nil {
		return spec.RunSpec{}, err
	}
	class, err := parseClass(jr.Class)
	if err != nil {
		return spec.RunSpec{}, err
	}
	if jr.Ranks <= 0 {
		return spec.RunSpec{}, fmt.Errorf("ranks must be positive, got %d", jr.Ranks)
	}
	if jr.ClockGHz < 0 || jr.SimSteps < 0 || jr.ScaleDiv < 0 {
		return spec.RunSpec{}, fmt.Errorf("negative clock_ghz/sim_steps/scale_div")
	}
	return spec.RunSpec{
		Benchmark: jr.Benchmark,
		Class:     class,
		Cluster:   cs,
		Ranks:     jr.Ranks,
		ClockHz:   jr.ClockGHz * 1e9,
		Options:   bench.Options{SimSteps: jr.SimSteps, ScaleDiv: jr.ScaleDiv},
	}, nil
}

// jobStatus is the wire form of one job's state.
type jobStatus struct {
	ID    string     `json:"id"`
	Key   string     `json:"key"`
	State string     `json:"state"`
	Job   jobRequest `json:"job"`
	// Result is present once the job finished successfully.
	Result *jobResult `json:"result,omitempty"`
	// Surrogate is present when the result came from the analytic fast
	// tier instead of a simulation; Bound is the model's self-reported
	// relative error bound for this query.
	Surrogate *jobSurrogate `json:"surrogate,omitempty"`
	// Error is present once the job failed or was cancelled.
	Error string `json:"error,omitempty"`
}

// jobSurrogate marks a surrogate-served result.
type jobSurrogate struct {
	Bound float64 `json:"bound"`
}

// jobResult carries the job's raw Usage record plus every derived
// metric of the scenario registry, keyed by the stable metric names
// scenario files use.
type jobResult struct {
	Usage   machine.Usage      `json:"usage"`
	Metrics map[string]float64 `json:"metrics"`
	Checks  []bench.Check      `json:"checks"`
}

// resultPayload derives the wire result from a finished run.
func resultPayload(res spec.RunResult) *jobResult {
	metrics := map[string]float64{}
	for _, name := range scenario.MetricNames() {
		m, ok := scenario.MetricByName(name)
		if !ok || m.Relative {
			continue // speedup needs a series baseline, not one point
		}
		metrics[name] = m.Get(res)
	}
	return &jobResult{Usage: res.Usage, Metrics: metrics, Checks: res.Report.Checks}
}

// status snapshots one submission; withResult controls whether a done
// job's full payload (Usage + derived metrics) is attached — the list
// endpoint serves lightweight summaries, the per-job endpoint the whole
// record.
func (js *jobSub) status(withResult bool) jobStatus {
	st := jobStatus{ID: js.id, Key: js.ticket.Key(), Job: js.req}
	out, resolved := js.ticket.Outcome()
	if !resolved {
		st.State = js.ticket.State().String()
		return st
	}
	switch {
	case out.Err == nil:
		st.State = "done"
		if bound, ok := js.ticket.Surrogate(); ok {
			st.Surrogate = &jobSurrogate{Bound: bound}
		}
		if withResult {
			st.Result = resultPayload(out.Result)
		}
	case errors.Is(out.Err, campaign.ErrCancelled) || errors.Is(out.Err, campaign.ErrClosed):
		st.State = "cancelled"
		st.Error = out.Err.Error()
	default:
		st.State = "failed"
		st.Error = out.Err.Error()
	}
	return st
}

// handleSubmitJob enqueues one job and answers 202 with its status; the
// scheduler coalesces identical jobs, so a duplicate submission gets
// its own id but shares the single simulation.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var jr jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jr); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job request: %v", err)
		return
	}
	rs, err := jr.runSpec()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid job: %v", err)
		return
	}
	mode, err := jr.mode()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid job: %v", err)
		return
	}
	// Front door: rate limits and queue-depth shedding, with the
	// degraded-mode escape hatch when a surrogate is attached. A
	// Degrade verdict retargets the submission at the fast tier; if the
	// surrogate cannot answer this query (no model, out of hull), the
	// submission sheds like any other — the exact queue is saturated.
	canDegrade := s.opts.Degraded && s.opts.Surrogate != nil && !rs.KeepTrace
	degrade, ok := s.admit(w, r, jr.Priority, canDegrade)
	if !ok {
		return
	}
	if degrade {
		mode = campaign.Fast
	}
	ctx, cancel := context.WithCancel(context.Background())
	ticket := s.sched.SubmitMode(ctx, rs, jr.Priority, mode)
	if degrade {
		if _, answered := ticket.Surrogate(); !answered {
			ticket.Cancel()
			cancel()
			s.admission.NoteDegradeShed()
			shed(w, fleet.DefaultRetryAfter)
			return
		}
		s.admission.NoteDegraded()
		w.Header().Set("X-Degraded", "surrogate")
	}

	s.mu.Lock()
	s.nextJob++
	js := &jobSub{id: fmt.Sprintf("j-%d", s.nextJob), req: jr, ticket: ticket, cancel: cancel}
	s.jobs[js.id] = js
	s.jobOrder = append(s.jobOrder, js.id)
	s.evictJobsLocked()
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, js.status(false))
}

// job resolves a path id to its submission.
func (s *Server) job(r *http.Request) (*jobSub, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[r.PathValue("id")]
	return js, ok
}

// handleListJobs lists every submission in submit order.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	subs := make([]*jobSub, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		subs = append(subs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]jobStatus, len(subs))
	for i, js := range subs {
		out[i] = js.status(false)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleJobStatus answers one job's status and, when finished, its
// result with derived metrics.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	js, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, js.status(true))
}

// handleCancelJob releases the submission's claim on its job. A queued
// job with no other interested submission is dropped without ever
// simulating; running or finished jobs are unaffected (the simulation
// completes and memoizes either way).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	js, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	js.cancel()
	js.ticket.Cancel()
	writeJSON(w, http.StatusOK, js.status(true))
}

// handleJobCSV renders a finished job's metrics as a two-line CSV
// (header, values) — shell-friendly, one curl away from a spreadsheet.
func (s *Server) handleJobCSV(w http.ResponseWriter, r *http.Request) {
	js, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	out, resolved := js.ticket.Outcome()
	if !resolved {
		writeError(w, http.StatusConflict, "job %s is %s; CSV is available once it is done",
			js.id, js.ticket.State())
		return
	}
	if out.Err != nil {
		writeError(w, http.StatusConflict, "job %s did not produce a result: %v", js.id, out.Err)
		return
	}
	res := resultPayload(out.Result)
	headers := []string{"benchmark", "cluster", "class", "ranks", "nodes"}
	values := []string{
		out.Result.Spec.Benchmark,
		out.Result.Usage.Cluster,
		out.Result.Spec.Class.String(),
		fmt.Sprintf("%d", out.Result.Usage.Ranks),
		fmt.Sprintf("%d", out.Result.Usage.Nodes),
	}
	for _, name := range scenario.MetricNames() {
		v, ok := res.Metrics[name]
		if !ok {
			continue
		}
		headers = append(headers, name)
		values = append(values, fmt.Sprintf("%g", v))
	}
	w.Header().Set("Content-Type", "text/csv")
	fmt.Fprintf(w, "%s\n%s\n", strings.Join(headers, ","), strings.Join(values, ","))
}
