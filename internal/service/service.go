// Package service is the HTTP serving layer over the asynchronous
// campaign scheduler: the paper's query shape — "run this benchmark x
// cluster x rank/clock point and derive metrics" — exposed as a JSON
// API instead of a CLI invocation.
//
// A Server wraps one long-lived campaign.Scheduler. Clients submit
// single jobs or whole declarative scenarios (the docs/SCENARIOS.md
// format), poll their status, and fetch results as JSON or CSV.
// Identical submissions — across requests, and across HTTP and any
// in-process planner use of the same scheduler — coalesce onto one
// simulation; with a persistent store attached, results also survive
// restarts, so a repeated query costs a disk read. cmd/spechpcd is the
// daemon front end.
//
// With a fleet.Coordinator attached (Options.Fleet) the same server is
// the fleet front door: submissions shard across registered workers by
// campaign key, and the /api/v1/fleet/* routes carry the membership,
// dispatch, and shared-store protocol (see docs/FLEET.md). Admission
// control (Options.Admission) gates the public submission routes with
// per-client token buckets and queue-depth shedding.
//
// Endpoints (all under the mux returned by Handler):
//
//	GET    /healthz                       liveness probe
//	GET    /readyz                        readiness probe (store+scheduler+workers)
//	GET    /statsz                        scheduler + store counters
//	GET    /api/v1/benchmarks             registered kernels
//	GET    /api/v1/clusters               registered clusters
//	POST   /api/v1/jobs                   submit one job
//	GET    /api/v1/jobs                   list submitted jobs
//	GET    /api/v1/jobs/{id}              job status + result
//	DELETE /api/v1/jobs/{id}              cancel a queued job
//	GET    /api/v1/jobs/{id}/csv          result metrics as CSV
//	POST   /api/v1/scenarios              submit a scenario document
//	GET    /api/v1/scenarios              list submitted scenarios
//	GET    /api/v1/scenarios/{id}         per-sweep progress
//	DELETE /api/v1/scenarios/{id}         cancel queued scenario jobs
//	GET    /api/v1/scenarios/{id}/output  rendered plots/tables (streams)
//	GET    /api/v1/scenarios/{id}/artifacts        CSV artifact list
//	GET    /api/v1/scenarios/{id}/artifacts/{name} one CSV artifact
//	POST   /api/v1/fleet/run              execute one dispatched job (worker)
//	POST   /api/v1/fleet/register         enrol a worker (coordinator)
//	POST   /api/v1/fleet/heartbeat        refresh worker liveness (coordinator)
//	GET    /api/v1/fleet/workers          worker health snapshot (coordinator)
//	GET    /api/v1/fleet/store/{key}      read one shared-store record
//	PUT    /api/v1/fleet/store/{key}      write one shared-store record
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite" // register all kernels
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/fleet"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/scenario"
	"github.com/spechpc/spechpc-sim/internal/sim/psim"
	"github.com/spechpc/spechpc-sim/internal/surrogate"
)

// Options tunes a Server.
type Options struct {
	// Quick runs scenarios at reduced sweep resolution (the planner's
	// quick mode) — smoke tests and demo deployments.
	Quick bool
	// DefaultClusters resolves scenario sweeps that name no clusters;
	// empty means the paper's two systems.
	DefaultClusters []string
	// ArtifactDir is where scenario CSV artifacts are written (one
	// subdirectory per scenario). Empty selects a temp directory.
	ArtifactDir string
	// Surrogate attaches the analytic fast tier: New registers the index
	// as the scheduler's predictor (and feedback observer), mode=fast
	// submissions may be answered from its fitted models, and /statsz
	// gains a surrogate block. Nil serves every query exactly.
	Surrogate *surrogate.Index
	// Fleet makes this server a coordinator: the scheduler's runner is
	// replaced by the coordinator's dispatcher (fresh simulations run on
	// registered workers, not in process), the fleet membership routes
	// come alive, and /readyz requires at least one non-dead worker.
	Fleet *fleet.Coordinator
	// Admission tunes the front-door gate on the public submission
	// routes; the zero value admits everything.
	Admission fleet.AdmissionConfig
	// Degraded lets saturation-time job submissions fall back to the
	// surrogate fast tier (mode=fast with an error bound) instead of
	// being shed — only effective with a Surrogate attached.
	Degraded bool
}

// Server serves the campaign scheduler over HTTP. Construct with New;
// all methods are safe for concurrent use.
type Server struct {
	sched  *campaign.Scheduler
	engine *campaign.Engine
	opts   Options

	mu       sync.Mutex
	jobs     map[string]*jobSub
	jobOrder []string
	runs     map[string]*scenarioRun
	runOrder []string
	nextJob  int
	nextRun  int

	// Store-usage cache for /statsz: walking a big store per scrape
	// would be O(records) disk I/O, so the numbers refresh at most once
	// per storeStatsTTL.
	storeStats   *statszStore
	storeStatsAt time.Time

	admission *fleet.Admission
	// draining flips first in Close: /readyz goes unready and dispatched
	// fleet jobs are refused while in-flight work still completes.
	draining atomic.Bool
}

// New wraps a scheduler in a Server. The scheduler may be shared with
// in-process planners; the service's submissions coalesce with theirs.
func New(sched *campaign.Scheduler, opts Options) *Server {
	if opts.Surrogate != nil {
		sched.SetPredictor(opts.Surrogate)
	}
	if opts.Fleet != nil {
		sched.SetRunner(opts.Fleet.Runner())
	}
	return &Server{
		sched:     sched,
		engine:    campaign.NewWithScheduler(sched),
		opts:      opts,
		jobs:      map[string]*jobSub{},
		runs:      map[string]*scenarioRun{},
		admission: fleet.NewAdmission(opts.Admission),
	}
}

// Retention caps: the daemon keeps a bounded history of finished
// submissions so a sustained workload cannot grow its memory (and, for
// temp scenario artifacts, /tmp) without bound. Only resolved entries
// are evicted — in-flight work always survives — oldest first; with a
// persistent store attached, an evicted job's result remains one
// identical resubmission away.
const (
	maxRetainedJobs = 1024
	maxRetainedRuns = 64
)

// evictJobsLocked trims resolved job history down to the cap. Callers
// hold s.mu.
func (s *Server) evictJobsLocked() {
	if len(s.jobOrder) <= maxRetainedJobs {
		return
	}
	kept := s.jobOrder[:0]
	over := len(s.jobOrder) - maxRetainedJobs
	for _, id := range s.jobOrder {
		js := s.jobs[id]
		if over > 0 {
			if _, resolved := js.ticket.Outcome(); resolved {
				delete(s.jobs, id)
				over--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// evictRunsLocked trims finished scenario history down to the cap,
// removing temp artifact directories. Callers hold s.mu.
func (s *Server) evictRunsLocked() {
	if len(s.runOrder) <= maxRetainedRuns {
		return
	}
	kept := s.runOrder[:0]
	over := len(s.runOrder) - maxRetainedRuns
	for _, id := range s.runOrder {
		run := s.runs[id]
		if over > 0 {
			if state, _ := run.snapshot(); state != "running" {
				delete(s.runs, id)
				over--
				if s.opts.ArtifactDir == "" && run.artDir != "" {
					os.RemoveAll(run.artDir)
				}
				continue
			}
		}
		kept = append(kept, id)
	}
	s.runOrder = kept
}

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /api/v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /api/v1/clusters", s.handleClusters)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /api/v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/csv", s.handleJobCSV)
	mux.HandleFunc("POST /api/v1/scenarios", s.handleSubmitScenario)
	mux.HandleFunc("GET /api/v1/scenarios", s.handleListScenarios)
	mux.HandleFunc("GET /api/v1/scenarios/{id}", s.handleScenarioStatus)
	mux.HandleFunc("DELETE /api/v1/scenarios/{id}", s.handleCancelScenario)
	mux.HandleFunc("GET /api/v1/scenarios/{id}/output", s.handleScenarioOutput)
	mux.HandleFunc("GET /api/v1/scenarios/{id}/artifacts", s.handleScenarioArtifacts)
	mux.HandleFunc("GET /api/v1/scenarios/{id}/artifacts/{name}", s.handleScenarioArtifact)
	mux.HandleFunc("POST "+fleet.RunPath, s.handleFleetRun)
	mux.HandleFunc("POST "+fleet.RegisterPath, s.handleFleetRegister)
	mux.HandleFunc("POST "+fleet.HeartbeatPath, s.handleFleetHeartbeat)
	mux.HandleFunc("GET "+fleet.WorkersPath, s.handleFleetWorkers)
	mux.HandleFunc("GET "+fleet.StorePathPrefix+"{key}", s.handleFleetStoreGet)
	mux.HandleFunc("PUT "+fleet.StorePathPrefix+"{key}", s.handleFleetStorePut)
	return mux
}

// planner builds a fresh planner view over the shared engine; scenario
// expansion through it lands on the scheduler every HTTP submission
// shares.
func (s *Server) planner() *scenario.Planner {
	return &scenario.Planner{
		Engine:          s.engine,
		Quick:           s.opts.Quick,
		DefaultClusters: s.opts.DefaultClusters,
	}
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders the uniform error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statszResponse is the /statsz schema. The campaign counter names
// mirror Stats.String(): scripts/service_smoke.sh reads fresh_sims to
// assert a warm service re-serves a scenario without simulating.
type statszResponse struct {
	Campaign   statszCampaign `json:"campaign"`
	Workers    int            `json:"workers"`
	QueueDepth int            `json:"queue_depth"`
	Active     int            `json:"active"`
	Jobs       int            `json:"jobs_submitted"`
	Scenarios  int            `json:"scenarios_submitted"`
	Store      *statszStore   `json:"store"`
	// Surrogate is present when an analytic surrogate index is attached
	// (Options.Surrogate).
	Surrogate *statszSurrogate `json:"surrogate,omitempty"`
	// Admission counts front-door outcomes (always present; all zero
	// with the gate disabled).
	Admission fleet.AdmissionStats `json:"admission"`
	// Fleet is present in coordinator mode: worker health plus dispatch
	// retry/reshard counters.
	Fleet *statszFleet `json:"fleet,omitempty"`
	// Psim is the process-wide partitioned-engine window accounting:
	// how many runs used the parallel engine, how many windows they
	// executed, and how far the adaptive oracle widened them.
	Psim statszPsim `json:"psim"`
}

// statszPsim mirrors psim.Totals for scrapes; window spans are virtual
// seconds.
type statszPsim struct {
	Runs            int64   `json:"runs"`
	AdaptiveRuns    int64   `json:"adaptive_runs"`
	Windows         int64   `json:"windows"`
	AdaptiveWindows int64   `json:"adaptive_windows"`
	Mail            int64   `json:"mail_merged"`
	IdleParts       int64   `json:"idle_partition_windows"`
	WidestWindow    float64 `json:"widest_window_s"`
	NarrowestWindow float64 `json:"narrowest_window_s"`
}

// statszFleet is the coordinator's worker-health and dispatch view.
type statszFleet struct {
	WorkersAlive   int    `json:"workers_alive"`
	WorkersSuspect int    `json:"workers_suspect"`
	WorkersDead    int    `json:"workers_dead"`
	Dispatched     uint64 `json:"dispatched"`
	Retries        uint64 `json:"retries"`
	Resharded      uint64 `json:"resharded"`
	NoWorkers      uint64 `json:"no_workers"`
}

type statszCampaign struct {
	Jobs        int `json:"jobs"`
	MemoHits    int `json:"memo_hits"`
	Coalesced   int `json:"coalesced"`
	StoreHits   int `json:"store_hits"`
	FreshSims   int `json:"fresh_sims"`
	StoreFaults int `json:"store_faults"`
	Cancelled   int `json:"cancelled"`
	// Surrogate taxonomy, mirroring Stats: hits answered from the fast
	// tier, misses had no fitted model, refused had a model outside its
	// hull or tolerance (both fall back to exact simulation).
	SurrogateHits    int `json:"surrogate_hits"`
	SurrogateMisses  int `json:"surrogate_misses"`
	SurrogateRefused int `json:"surrogate_refused"`
}

// statszSurrogate is the model-inventory view of the attached index.
type statszSurrogate struct {
	Models   int   `json:"models"`
	Families int   `json:"families"`
	Observed int64 `json:"observed"`
	Hits     int64 `json:"hits"`
	Refused  int64 `json:"refused"`
	NoModel  int64 `json:"no_model"`
}

type statszStore struct {
	Dir     string `json:"dir"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
}

// handleStatsz reports scheduler and store counters.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	s.mu.Lock()
	jobs, runs := len(s.jobs), len(s.runs)
	s.mu.Unlock()
	resp := statszResponse{
		Campaign: statszCampaign{
			Jobs:             st.Jobs,
			MemoHits:         st.Hits,
			Coalesced:        st.Coalesced,
			StoreHits:        st.StoreHits,
			FreshSims:        st.Misses,
			StoreFaults:      st.StoreFaults,
			Cancelled:        st.Cancelled,
			SurrogateHits:    st.SurrogateHits,
			SurrogateMisses:  st.SurrogateMisses,
			SurrogateRefused: st.SurrogateRefused,
		},
		Workers:    s.sched.Workers(),
		QueueDepth: s.sched.QueueDepth(),
		Active:     s.sched.Active(),
		Jobs:       jobs,
		Scenarios:  runs,
	}
	resp.Store = s.storeUsage()
	resp.Admission = s.admission.Stats()
	if c := s.opts.Fleet; c != nil {
		alive, suspect, dead := c.Registry.Counts()
		ds := c.Dispatcher.Stats()
		resp.Fleet = &statszFleet{
			WorkersAlive: alive, WorkersSuspect: suspect, WorkersDead: dead,
			Dispatched: ds.Dispatched, Retries: ds.Retries,
			Resharded: ds.Resharded, NoWorkers: ds.NoWorkers,
		}
	}
	if idx := s.opts.Surrogate; idx != nil {
		fitted, families := idx.Models()
		hits, refused, noModel, observed := idx.Counters()
		resp.Surrogate = &statszSurrogate{
			Models: fitted, Families: families, Observed: observed,
			Hits: hits, Refused: refused, NoModel: noModel,
		}
	}
	pt := psim.Snapshot()
	resp.Psim = statszPsim{
		Runs:            pt.Runs,
		AdaptiveRuns:    pt.AdaptiveRuns,
		Windows:         pt.Windows,
		AdaptiveWindows: pt.AdaptiveWindows,
		Mail:            pt.Mail,
		IdleParts:       pt.IdleParts,
		WidestWindow:    pt.Widest,
		NarrowestWindow: pt.Narrowest,
	}
	writeJSON(w, http.StatusOK, resp)
}

// storeStatsTTL bounds how often /statsz re-walks the on-disk store.
const storeStatsTTL = 5 * time.Second

// storeUsage returns the (possibly cached) store size block, or nil
// when no DirStore backs the scheduler.
func (s *Server) storeUsage() *statszStore {
	ds, ok := s.sched.Store().(*campaign.DirStore)
	if !ok {
		return nil
	}
	s.mu.Lock()
	if s.storeStats != nil && time.Since(s.storeStatsAt) < storeStatsTTL {
		cached := s.storeStats
		s.mu.Unlock()
		return cached
	}
	s.mu.Unlock()

	records, bytes, err := ds.Usage() // off the lock: this walks the store
	if err != nil {
		return nil
	}
	fresh := &statszStore{Dir: ds.Dir(), Records: records, Bytes: bytes}
	s.mu.Lock()
	s.storeStats, s.storeStatsAt = fresh, time.Now()
	s.mu.Unlock()
	return fresh
}

// handleBenchmarks lists the registered kernels.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	type benchInfo struct {
		ID          int    `json:"id"`
		Name        string `json:"name"`
		Language    string `json:"language"`
		Collective  string `json:"collective"`
		MemoryBound bool   `json:"memory_bound"`
		Numerics    string `json:"numerics"`
	}
	var out []benchInfo
	for _, b := range bench.All() {
		out = append(out, benchInfo{
			ID: b.ID, Name: b.Name, Language: b.Language,
			Collective: b.Collective, MemoryBound: b.MemoryBound,
			Numerics: b.Numerics,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleClusters lists the registered clusters with the geometry a
// client needs to pick rank and clock points.
func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	type clusterInfo struct {
		Name           string    `json:"name"`
		CPU            string    `json:"cpu"`
		MaxNodes       int       `json:"max_nodes"`
		CoresPerNode   int       `json:"cores_per_node"`
		CoresPerDomain int       `json:"cores_per_domain"`
		BaseClockGHz   float64   `json:"base_clock_ghz"`
		DVFSLadderGHz  []float64 `json:"dvfs_ladder_ghz"`
	}
	var out []clusterInfo
	for _, name := range machine.Names() {
		cs, err := machine.Get(name)
		if err != nil {
			continue
		}
		info := clusterInfo{
			Name:           cs.Name,
			CPU:            cs.CPU.Name,
			MaxNodes:       cs.MaxNodes,
			CoresPerNode:   cs.CPU.CoresPerNode(),
			CoresPerDomain: cs.CPU.CoresPerDomain(),
			BaseClockGHz:   cs.CPU.BaseClockHz / 1e9,
		}
		for _, hz := range cs.CPU.DVFS.Ladder() {
			info.DVFSLadderGHz = append(info.DVFSLadderGHz, hz/1e9)
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// parseClass maps the API class names onto bench classes.
func parseClass(s string) (bench.Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "tiny":
		return bench.Tiny, nil
	case "small":
		return bench.Small, nil
	default:
		return 0, fmt.Errorf("unknown class %q (want tiny or small)", s)
	}
}
