package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/spechpc/spechpc-sim/internal/campaign"
)

// newTestServer builds a quick-mode server over a fresh scheduler and
// an httptest front end. The caller owns both.
func newTestServer(t *testing.T, store campaign.Store) (*Server, *httptest.Server, *campaign.Scheduler) {
	t.Helper()
	sched := campaign.NewScheduler(4, store)
	srv := New(sched, Options{Quick: true, ArtifactDir: t.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		sched.Close()
	})
	return srv, ts, sched
}

// doJSON performs one request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url, body string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

// waitState polls a job until it reaches a terminal state.
func waitState(t *testing.T, url string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st jobStatus
		doJSON(t, http.MethodGet, url, "", &st)
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job at %s never finished (state %s)", url, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHealthzAndDiscovery round-trips the liveness probe and the
// benchmark/cluster discovery endpoints.
func TestHealthzAndDiscovery(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)

	var health map[string]string
	if resp := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", &health); resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}

	var benches []map[string]any
	doJSON(t, http.MethodGet, ts.URL+"/api/v1/benchmarks", "", &benches)
	if len(benches) < 9 {
		t.Errorf("only %d benchmarks listed, want the full suite", len(benches))
	}

	var clusters []struct {
		Name          string    `json:"name"`
		CoresPerNode  int       `json:"cores_per_node"`
		DVFSLadderGHz []float64 `json:"dvfs_ladder_ghz"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/api/v1/clusters", "", &clusters)
	found := false
	for _, c := range clusters {
		if c.Name == "ClusterA" {
			found = true
			if c.CoresPerNode <= 0 || len(c.DVFSLadderGHz) == 0 {
				t.Errorf("ClusterA info incomplete: %+v", c)
			}
		}
	}
	if !found {
		t.Error("ClusterA missing from /api/v1/clusters")
	}
}

// TestJobLifecycle submits one job and walks it to completion: status
// polling, result metrics, the CSV rendering, and the list endpoint.
func TestJobLifecycle(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)

	var sub jobStatus
	resp := doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		`{"benchmark":"tealeaf","cluster":"A","class":"tiny","ranks":2,"sim_steps":1}`, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if sub.ID == "" || sub.Key == "" {
		t.Fatalf("submission lacks id/key: %+v", sub)
	}

	st := waitState(t, ts.URL+"/api/v1/jobs/"+sub.ID)
	if st.State != "done" {
		t.Fatalf("job finished as %s (%s)", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Usage.Wall <= 0 {
		t.Fatalf("done job carries no usage: %+v", st.Result)
	}
	if v, ok := st.Result.Metrics["wall_s"]; !ok || v <= 0 {
		t.Errorf("derived metric wall_s missing or non-positive: %v", st.Result.Metrics)
	}
	if len(st.Result.Checks) == 0 {
		t.Error("done job carries no verification checks")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/jobs/"+sub.ID+"/csv", nil)
	cr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	csv := readAll(t, cr)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "benchmark,cluster,class,ranks,nodes") {
		t.Errorf("job CSV malformed:\n%s", csv)
	}
	if !strings.HasPrefix(lines[1], "tealeaf,") {
		t.Errorf("job CSV values malformed:\n%s", csv)
	}

	var list []jobStatus
	doJSON(t, http.MethodGet, ts.URL+"/api/v1/jobs", "", &list)
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Errorf("job list = %+v, want the one submission", list)
	}
}

// TestStatszPsimWindows submits a multi-node job to an otherwise-idle
// server — the scheduler donates its worker budget, so the job runs on
// the partitioned engine in adaptive mode — and checks /statsz reports
// the engine's window accounting.
func TestStatszPsimWindows(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)

	var before statszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", "", &before)

	var sub jobStatus
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		`{"benchmark":"tealeaf","cluster":"A","class":"tiny","ranks":100,"sim_steps":1}`, &sub)
	if st := waitState(t, ts.URL+"/api/v1/jobs/"+sub.ID); st.State != "done" {
		t.Fatalf("multi-node job finished as %s (%s)", st.State, st.Error)
	}

	var after statszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", "", &after)
	if after.Psim.Runs <= before.Psim.Runs {
		t.Fatalf("psim runs did not advance: %+v -> %+v", before.Psim, after.Psim)
	}
	if after.Psim.AdaptiveRuns <= before.Psim.AdaptiveRuns {
		t.Errorf("partitioned run was not adaptive: %+v", after.Psim)
	}
	if after.Psim.Windows <= before.Psim.Windows {
		t.Errorf("no windows accounted: %+v", after.Psim)
	}
	if after.Psim.NarrowestWindow <= 0 {
		t.Errorf("narrowest window %g not positive", after.Psim.NarrowestWindow)
	}
}

// TestJobValidation rejects malformed submissions with 400s.
func TestJobValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	for _, body := range []string{
		`{"cluster":"A","ranks":2}`,                                // no benchmark
		`{"benchmark":"no-such","cluster":"A","ranks":2}`,          // unknown kernel
		`{"benchmark":"tealeaf","cluster":"Nowhere","ranks":2}`,    // unknown cluster
		`{"benchmark":"tealeaf","cluster":"A","ranks":0}`,          // bad ranks
		`{"benchmark":"tealeaf","cluster":"A","ranks":2,"x":true}`, // unknown key
		`not json at all`,
	} {
		var e map[string]string
		resp := doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs", body, &e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
		if e["error"] == "" {
			t.Errorf("body %s: no error message", body)
		}
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/api/v1/jobs/j-999", "", new(map[string]string)); resp.StatusCode != 404 {
		t.Errorf("unknown job id: status %d, want 404", resp.StatusCode)
	}
}

// TestJobCoalescingAcrossRequests submits the same job through two HTTP
// requests and checks the scheduler ran one simulation: the service's
// cross-request coalescing guarantee, visible in /statsz.
func TestJobCoalescingAcrossRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)

	body := `{"benchmark":"tealeaf","cluster":"A","class":"tiny","ranks":3,"sim_steps":1}`
	var first, second jobStatus
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs", body, &first)
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs", body, &second)
	if first.ID == second.ID {
		t.Fatal("two submissions shared one id")
	}
	if first.Key != second.Key {
		t.Fatal("identical jobs got different canonical keys")
	}
	s1 := waitState(t, ts.URL+"/api/v1/jobs/"+first.ID)
	s2 := waitState(t, ts.URL+"/api/v1/jobs/"+second.ID)
	if s1.State != "done" || s2.State != "done" {
		t.Fatalf("jobs finished as %s/%s", s1.State, s2.State)
	}
	if s1.Result.Usage.Wall != s2.Result.Usage.Wall {
		t.Error("coalesced submissions disagree on the result")
	}

	var stats statszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", "", &stats)
	if stats.Campaign.FreshSims != 1 {
		t.Errorf("fresh_sims = %d, want exactly 1 (identical requests share one simulation)",
			stats.Campaign.FreshSims)
	}
	if stats.Campaign.Jobs != 2 || stats.Campaign.MemoHits != 1 {
		t.Errorf("statsz campaign = %+v, want 2 jobs with 1 memo hit", stats.Campaign)
	}
	if stats.Jobs != 2 {
		t.Errorf("statsz jobs_submitted = %d, want 2", stats.Jobs)
	}
}

// TestJobCancellation fills the single worker with one job and cancels
// a queued second job over HTTP before it can start.
func TestJobCancellation(t *testing.T) {
	sched := campaign.NewScheduler(1, nil)
	srv := New(sched, Options{Quick: true, ArtifactDir: t.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close(); sched.Close() }()

	// A real (small) job occupies the only worker long enough on most
	// machines; correctness does not depend on the race — if the second
	// job sneaks into Running/Done, DELETE is a no-op and states say so.
	var a, b jobStatus
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		`{"benchmark":"pot3d","cluster":"A","ranks":4,"sim_steps":2}`, &a)
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		`{"benchmark":"sph-exa","cluster":"A","ranks":4,"sim_steps":2}`, &b)

	var del jobStatus
	resp := doJSON(t, http.MethodDelete, ts.URL+"/api/v1/jobs/"+b.ID, "", &del)
	if resp.StatusCode != 200 {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	final := waitState(t, ts.URL+"/api/v1/jobs/"+b.ID)
	if final.State != "cancelled" && final.State != "done" {
		t.Fatalf("cancelled job ended as %s (%s)", final.State, final.Error)
	}
	if final.State == "cancelled" && final.Error == "" {
		t.Error("cancelled job carries no error message")
	}
	if st := waitState(t, ts.URL+"/api/v1/jobs/"+a.ID); st.State != "done" {
		t.Errorf("sibling job ended as %s", st.State)
	}
}

// scenarioDoc is a small two-sweep scenario exercising per-sweep
// progress, output streaming, and CSV artifacts.
const scenarioDoc = `{
  // service test scenario
  "name": "svc",
  "title": "service round trip",
  "sweeps": [
    {"benchmarks": ["tealeaf"], "clusters": ["ClusterA"], "points": [1, 2], "metrics": ["wall_s"]},
    {"benchmarks": ["lbm"], "clusters": ["ClusterA"], "points": [2], "metrics": ["speedup"]}
  ],
  "jobs": [
    {"benchmark": "tealeaf", "cluster": "ClusterA", "ranks": 2}
  ]
}`

// TestScenarioLifecycle submits a scenario and follows it to
// completion: per-sweep progress, streamed output, artifact list, and
// artifact content.
func TestScenarioLifecycle(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)

	var sub scenarioStatus
	resp := doJSON(t, http.MethodPost, ts.URL+"/api/v1/scenarios", scenarioDoc, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %+v", resp.StatusCode, sub)
	}
	if len(sub.Sweeps) != 2 || sub.Sweeps[0].Total != 2 || sub.Sweeps[1].Total != 1 {
		t.Fatalf("per-sweep totals wrong: %+v", sub.Sweeps)
	}
	if sub.PinnedJobs != 1 {
		t.Fatalf("pinned jobs = %d, want 1", sub.PinnedJobs)
	}

	deadline := time.Now().Add(60 * time.Second)
	var st scenarioStatus
	for {
		doJSON(t, http.MethodGet, ts.URL+"/api/v1/scenarios/"+sub.ID, "", &st)
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scenario never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("scenario ended as %s (%s)", st.State, st.Error)
	}
	for i, sw := range st.Sweeps {
		if sw.Done != sw.Total || sw.Failed != 0 {
			t.Errorf("sweep %d progress = %+v, want all done", i+1, sw)
		}
	}
	if st.PinnedDone != 1 {
		t.Errorf("pinned done = %d, want 1", st.PinnedDone)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/scenarios/"+sub.ID+"/output", nil)
	or, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	output := readAll(t, or)
	if or.Header.Get("X-Scenario-State") != "done" {
		t.Errorf("output state header = %q", or.Header.Get("X-Scenario-State"))
	}
	if !strings.Contains(output, "svc:") || !strings.Contains(output, "pinned jobs") {
		t.Errorf("rendered output incomplete:\n%s", output)
	}

	var artifacts []string
	doJSON(t, http.MethodGet, ts.URL+"/api/v1/scenarios/"+sub.ID+"/artifacts", "", &artifacts)
	if len(artifacts) == 0 {
		t.Fatal("no CSV artifacts listed")
	}
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/api/v1/scenarios/"+sub.ID+"/artifacts/"+artifacts[0], nil)
	ar, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ar.StatusCode != 200 {
		t.Fatalf("artifact fetch status %d", ar.StatusCode)
	}
	if body := readAll(t, ar); !strings.Contains(body, ",") {
		t.Errorf("artifact %s is not CSV:\n%s", artifacts[0], body)
	}

	var list []scenarioStatus
	doJSON(t, http.MethodGet, ts.URL+"/api/v1/scenarios", "", &list)
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Errorf("scenario list = %+v", list)
	}
}

// TestScenarioValidationAndCancel rejects malformed scenario documents
// and round-trips DELETE on a live run.
func TestScenarioValidationAndCancel(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)

	for _, body := range []string{
		`{"name":"x"}`, // no sweeps, no jobs
		`{"name":"x","sweeps":[{"benchmarks":["nope"],"points":[1]}]}`, // unknown kernel
		`{"name":"x","sweeps":[{"points":"bogus-preset"}]}`,            // bad preset
		`{broken`,
	} {
		var e map[string]string
		resp := doJSON(t, http.MethodPost, ts.URL+"/api/v1/scenarios", body, &e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/api/v1/scenarios/s-99", "", new(map[string]string)); resp.StatusCode != 404 {
		t.Errorf("unknown scenario: status %d, want 404", resp.StatusCode)
	}

	var sub scenarioStatus
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/scenarios", scenarioDoc, &sub)
	var cancelled scenarioStatus
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/api/v1/scenarios/"+sub.ID, "", &cancelled); resp.StatusCode != 200 {
		t.Errorf("cancel status %d", resp.StatusCode)
	}
	// Artifact path traversal is rejected.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/scenarios/"+sub.ID+"/artifacts/..%2Fsecrets.csv", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
		t.Errorf("traversal artifact name: status %d, want 400/404", resp.StatusCode)
	}
}

// TestStatszStore checks the store block appears when a DirStore backs
// the scheduler and counts persisted records.
func TestStatszStore(t *testing.T) {
	dir := t.TempDir()
	store, err := campaign.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, store)

	var sub jobStatus
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		`{"benchmark":"tealeaf","cluster":"A","ranks":1,"sim_steps":1}`, &sub)
	if st := waitState(t, ts.URL+"/api/v1/jobs/"+sub.ID); st.State != "done" {
		t.Fatalf("job ended as %s", st.State)
	}

	var stats statszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", "", &stats)
	if stats.Store == nil {
		t.Fatal("statsz lacks the store block despite a DirStore")
	}
	if stats.Store.Dir != dir || stats.Store.Records != 1 || stats.Store.Bytes <= 0 {
		t.Errorf("store stats = %+v, want 1 record under %s", stats.Store, dir)
	}
}

// readAll drains a response body as a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
