// Package scenario is the declarative experiment layer: a Scenario
// describes a study — which benchmarks, on which clusters, over which
// rank/clock axes, rendered through which metrics — as plain data, and a
// Planner expands it into a campaign batch, executes it on the shared
// engine, and renders tables, ASCII plots, and CSV artifacts.
//
// Scenarios come from two places. The built-in figures of the paper
// (internal/figures) define their job plans as Scenario values and keep
// bespoke renderers; user studies are loaded from scenario files (see
// Load) and rendered generically, so new studies — different kernels,
// rank ladders, clock sweeps, even modified interconnects — need no Go.
//
// Every simulation a scenario requests flows through one
// campaign.Engine, so jobs parallelize across host cores, duplicate jobs
// within and across scenarios are simulated at most once per process,
// and — with a persistent store attached — at most once per cache
// directory, across processes.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/netsim"
)

// PointsKind names a rank axis: a preset ladder derived from the target
// cluster's topology, or an explicit list.
type PointsKind string

// Rank-axis kinds. The presets mirror the paper's sweeps: "node" is the
// node-level ladder of Fig. 1-4 (1, 2, 4, then 1/3-domain steps hitting
// every domain and socket boundary), "domain" is 1..cores-per-domain
// (Fig. 3a/4a), "multinode" is full-node powers of two up to the cluster
// size (Fig. 5-6), and "one-domain" is the single point of one full
// ccNUMA domain (the frequency study's geometry).
const (
	PointsNode      PointsKind = "node"
	PointsDomain    PointsKind = "domain"
	PointsMultiNode PointsKind = "multinode"
	PointsOneDomain PointsKind = "one-domain"
	PointsList      PointsKind = "list"
)

// Points is the rank axis of a sweep.
type Points struct {
	// Kind selects a preset ladder; PointsList uses List verbatim.
	Kind PointsKind
	// List holds the explicit rank counts for PointsList.
	List []int
}

// Validate checks the axis is well formed.
func (p Points) Validate() error {
	switch p.Kind {
	case PointsNode, PointsDomain, PointsMultiNode, PointsOneDomain:
		return nil
	case PointsList:
		if len(p.List) == 0 {
			return fmt.Errorf("scenario: empty rank list")
		}
		for _, r := range p.List {
			if r <= 0 {
				return fmt.Errorf("scenario: non-positive rank count %d", r)
			}
		}
		return nil
	default:
		return fmt.Errorf("scenario: unknown points kind %q (want node, domain, multinode, one-domain, or a rank list)", p.Kind)
	}
}

// Clocks is the optional frequency axis of a sweep.
type Clocks struct {
	// Ladder selects the target cluster's full DVFS ladder.
	Ladder bool
	// GHz holds explicit clock points when Ladder is false.
	GHz []float64
}

// Active reports whether the sweep has a frequency axis at all.
func (c Clocks) Active() bool { return c.Ladder || len(c.GHz) > 0 }

// Validate checks the axis is well formed.
func (c Clocks) Validate() error {
	if c.Ladder && len(c.GHz) > 0 {
		return fmt.Errorf("scenario: clocks cannot be both \"ladder\" and an explicit list")
	}
	for _, g := range c.GHz {
		if g <= 0 {
			return fmt.Errorf("scenario: non-positive clock %g GHz", g)
		}
	}
	return nil
}

// Sweep is one declarative experiment axis product: benchmarks x
// clusters x rank points (x clock points). A frequency sweep requires a
// rank axis that resolves to exactly one point per cluster.
type Sweep struct {
	// Benchmarks names the kernels to run; empty means every registered
	// kernel in SPEC id order.
	Benchmarks []string
	// Clusters names registered clusters; empty means the planner's
	// default set (the paper's two systems unless overridden).
	Clusters []string
	// Class selects the workload suite.
	Class bench.Class
	// Points is the rank axis.
	Points Points
	// Clocks is the optional frequency axis.
	Clocks Clocks
	// SimSteps pins the simulated step count; 0 lets the planner choose
	// (1 in quick mode, otherwise the kernel default).
	SimSteps int
	// ScaleDiv divides the real in-memory geometry (0 = kernel default).
	ScaleDiv int
	// Net overrides the interconnect (nil = the default HDR100 fabric).
	Net *netsim.Spec
	// Metrics names the derived quantities the generic renderer draws;
	// empty selects DefaultMetrics. Built-in figures ignore this and
	// render with their bespoke code.
	Metrics []string
}

// Validate checks the sweep, including that every named benchmark is
// registered — a typo must fail before any simulation starts, not after
// the sibling sweeps have been paid for.
func (s *Sweep) Validate() error {
	for _, name := range s.Benchmarks {
		if _, err := bench.Get(name); err != nil {
			return err
		}
	}
	if err := s.Points.Validate(); err != nil {
		return err
	}
	if err := s.Clocks.Validate(); err != nil {
		return err
	}
	if s.Clocks.Active() {
		single := s.Points.Kind == PointsOneDomain ||
			(s.Points.Kind == PointsList && len(s.Points.List) == 1)
		if !single {
			return fmt.Errorf("scenario: a frequency sweep needs a single rank point (\"one-domain\" or a one-element list)")
		}
	}
	if s.Class != bench.Tiny && s.Class != bench.Small {
		return fmt.Errorf("scenario: unsupported class %v", s.Class)
	}
	if s.SimSteps < 0 || s.ScaleDiv < 0 {
		return fmt.Errorf("scenario: negative sim_steps/scale_div")
	}
	if s.Net != nil {
		if err := s.Net.Validate(); err != nil {
			return err
		}
	}
	for _, m := range s.Metrics {
		if _, ok := MetricByName(m); !ok {
			return fmt.Errorf("scenario: unknown metric %q (known: %v)", m, MetricNames())
		}
	}
	return nil
}

// Job is one explicitly pinned single run — the declarative form of the
// paper's inset jobs (minisweep at 59 ranks, lbm at 71).
type Job struct {
	Benchmark string
	Cluster   string
	Class     bench.Class
	Ranks     int
	// ClockGHz optionally overrides the core clock (0 = pinned base).
	ClockGHz float64
	// SimSteps pins the simulated step count; 0 lets the planner choose.
	SimSteps int
	ScaleDiv int
}

// Validate checks the job.
func (j *Job) Validate() error {
	if j.Benchmark == "" {
		return fmt.Errorf("scenario: job without benchmark")
	}
	if _, err := bench.Get(j.Benchmark); err != nil {
		return err
	}
	switch {
	case j.Cluster == "":
		return fmt.Errorf("scenario: job %s without cluster", j.Benchmark)
	case j.Ranks <= 0:
		return fmt.Errorf("scenario: job %s with non-positive ranks", j.Benchmark)
	case j.ClockGHz < 0 || j.SimSteps < 0 || j.ScaleDiv < 0:
		return fmt.Errorf("scenario: job %s with negative clock/steps/scale", j.Benchmark)
	}
	return nil
}

// ParseMode maps the scenario/service mode names onto campaign query
// modes: "exact" (or empty, the default) always simulates; "fast" lets
// in-tolerance surrogate answers skip simulation, falling back to the
// exact tier on refusal. See docs/SCENARIOS.md.
func ParseMode(s string) (campaign.Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "exact":
		return campaign.Exact, nil
	case "fast":
		return campaign.Fast, nil
	default:
		return campaign.Exact, fmt.Errorf("scenario: unknown mode %q (want exact or fast)", s)
	}
}

// Scenario is one declarative study: any number of sweeps plus pinned
// single jobs.
type Scenario struct {
	// Name is the short identifier (artifact file prefix).
	Name string
	// Title describes the study in output headers.
	Title  string
	Sweeps []Sweep
	Jobs   []Job
	// Mode selects the query tier for every run the scenario requests:
	// campaign.Exact (zero value) always simulates, campaign.Fast serves
	// in-tolerance surrogate answers when the planner's engine has a
	// predictor attached and falls back to exact simulation otherwise.
	Mode campaign.Mode
}

// Validate checks the scenario as a whole.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if len(sc.Sweeps) == 0 && len(sc.Jobs) == 0 {
		return fmt.Errorf("scenario %s: no sweeps and no jobs", sc.Name)
	}
	if sc.Mode != campaign.Exact && sc.Mode != campaign.Fast {
		return fmt.Errorf("scenario %s: unknown mode %d", sc.Name, sc.Mode)
	}
	for i := range sc.Sweeps {
		if err := sc.Sweeps[i].Validate(); err != nil {
			return fmt.Errorf("scenario %s, sweep %d: %w", sc.Name, i+1, err)
		}
	}
	for i := range sc.Jobs {
		if err := sc.Jobs[i].Validate(); err != nil {
			return fmt.Errorf("scenario %s, job %d: %w", sc.Name, i+1, err)
		}
	}
	return nil
}

// dedupSorted returns the positive values of v, sorted and deduplicated —
// the normal form of every preset rank ladder.
func dedupSorted(v []int) []int {
	seen := map[int]bool{}
	out := make([]int, 0, len(v))
	for _, x := range v {
		if x > 0 && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}
