package scenario

import (
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// The quick-mode point reductions below are the single source of truth
// for both file scenarios and the built-in figures (internal/figures
// delegates here), so the two paths cannot drift apart: a job plan
// expanded from a scenario is exactly the set of jobs the corresponding
// renderer asks the engine for.

// NodePoints returns the node-level rank ladder of a cluster. Quick mode
// trades resolution for speed: seeds plus half/full domain, two domains,
// one socket, and the full node.
func NodePoints(cs *machine.ClusterSpec, quick bool) []int {
	if !quick {
		return spec.NodePoints(cs)
	}
	cpd := cs.CPU.CoresPerDomain()
	cps := cs.CPU.CoresPerSocket
	cpn := cs.CPU.CoresPerNode()
	return dedupSorted([]int{1, 2, 4, cpd / 2, cpd, 2 * cpd, cps, cpn})
}

// DomainPoints returns the within-domain rank ladder (1..cores per
// domain); quick mode keeps seeds, half, and the full domain.
func DomainPoints(cs *machine.ClusterSpec, quick bool) []int {
	if !quick {
		return spec.DomainPoints(cs)
	}
	cpd := cs.CPU.CoresPerDomain()
	return dedupSorted([]int{1, 2, 4, cpd / 2, cpd})
}

// MultiNodePoints returns the multi-node rank ladder (full nodes); quick
// mode keeps 1, 2, and 4 nodes.
func MultiNodePoints(cs *machine.ClusterSpec, quick bool) []int {
	if !quick {
		return spec.MultiNodePoints(cs)
	}
	cpn := cs.CPU.CoresPerNode()
	return []int{cpn, 2 * cpn, 4 * cpn}
}

// ClockLadder returns a cluster's DVFS frequency axis; quick mode keeps
// the endpoints and the midpoint. An empty result means the cluster has
// no DVFS model.
func ClockLadder(cs *machine.ClusterSpec, quick bool) []float64 {
	ladder := cs.CPU.DVFS.Ladder()
	if quick && len(ladder) > 3 {
		return []float64{ladder[0], ladder[len(ladder)/2], ladder[len(ladder)-1]}
	}
	return ladder
}

// RankPoints resolves a rank axis against a cluster.
func RankPoints(cs *machine.ClusterSpec, p Points, quick bool) ([]int, error) {
	switch p.Kind {
	case PointsNode:
		return NodePoints(cs, quick), nil
	case PointsDomain:
		return DomainPoints(cs, quick), nil
	case PointsMultiNode:
		return MultiNodePoints(cs, quick), nil
	case PointsOneDomain:
		return []int{cs.CPU.CoresPerDomain()}, nil
	case PointsList:
		return dedupSorted(p.List), nil
	default:
		return nil, fmt.Errorf("scenario: unknown points kind %q", p.Kind)
	}
}

// ClockPoints resolves a frequency axis against a cluster, in Hz and
// ladder order; nil means the sweep has no frequency axis. A ladder
// request on a cluster without a DVFS model resolves to the pinned base
// clock as its only point.
func ClockPoints(cs *machine.ClusterSpec, c Clocks, quick bool) []float64 {
	switch {
	case c.Ladder:
		if ladder := ClockLadder(cs, quick); len(ladder) > 0 {
			return ladder
		}
		return []float64{cs.CPU.BaseClockHz}
	case len(c.GHz) > 0:
		out := make([]float64, len(c.GHz))
		for i, g := range c.GHz {
			out[i] = g * 1e9
		}
		return out
	default:
		return nil
	}
}
