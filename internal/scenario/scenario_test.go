package scenario

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite" // register all nine kernels
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// writeScenario drops a scenario document into a temp file.
func writeScenario(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "study.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleDoc = `
// A two-kernel strong-scaling study with a custom fabric.
{
  "name": "sample",
  "title": "sample study",
  "sweeps": [
    {
      "benchmarks": ["tealeaf", "lbm"],
      "clusters": ["ClusterA"],
      "class": "tiny",
      "points": [1, 2, 4],
      "sim_steps": 1,
      "metrics": ["wall_s", "speedup"],
      "net": {"name": "HDR200", "link_bandwidth_gbs": 25}
    },
    {
      "benchmarks": ["pot3d"],
      "clusters": ["A"],
      "class": "tiny",
      "points": "one-domain",
      "clocks": [1.2, 2.4],
      "sim_steps": 1,
      "metrics": ["energy_j"]
    }
  ],
  "jobs": [
    {"benchmark": "minisweep", "cluster": "ClusterA", "class": "tiny", "ranks": 3, "sim_steps": 1}
  ]
}
`

// TestLoadFile parses the sample document: comments, preset and list
// points, a clock axis, and a fabric override.
func TestLoadFile(t *testing.T) {
	sc, err := LoadFile(writeScenario(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "sample" || len(sc.Sweeps) != 2 || len(sc.Jobs) != 1 {
		t.Fatalf("parsed %+v", sc)
	}
	s0 := sc.Sweeps[0]
	if s0.Points.Kind != PointsList || !reflect.DeepEqual(s0.Points.List, []int{1, 2, 4}) {
		t.Errorf("sweep 1 points = %+v", s0.Points)
	}
	if s0.Net == nil || s0.Net.Name != "HDR200" || s0.Net.LinkBandwidth != 25*units.G {
		t.Errorf("sweep 1 net override = %+v", s0.Net)
	}
	if s0.Net.InterNodeLatency <= 0 {
		t.Error("net override lost the HDR100 defaults for unset fields")
	}
	s1 := sc.Sweeps[1]
	if s1.Points.Kind != PointsOneDomain || s1.Clocks.Active() != true ||
		!reflect.DeepEqual(s1.Clocks.GHz, []float64{1.2, 2.4}) {
		t.Errorf("sweep 2 axes = %+v / %+v", s1.Points, s1.Clocks)
	}
	if sc.Jobs[0].Benchmark != "minisweep" || sc.Jobs[0].Ranks != 3 {
		t.Errorf("job = %+v", sc.Jobs[0])
	}
}

// TestLoadRejects pins the loader's error behaviour: unknown keys,
// unknown metrics, unknown classes, clock sweeps over many rank points,
// and empty scenarios all fail loudly.
func TestLoadRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown key", `{"name":"x","sweeps":[{"class":"tiny","points":"node","typo_key":1}]}`, "typo_key"},
		{"unknown metric", `{"name":"x","sweeps":[{"class":"tiny","points":"node","metrics":["wat"]}]}`, "unknown metric"},
		{"unknown benchmark", `{"name":"x","sweeps":[{"class":"tiny","points":"node","benchmarks":["tealeafe"]}]}`, "unknown benchmark"},
		{"unknown job benchmark", `{"name":"x","jobs":[{"benchmark":"lbmm","cluster":"A","ranks":2}]}`, "unknown benchmark"},
		{"unknown class", `{"name":"x","sweeps":[{"class":"medium","points":"node"}]}`, "unknown class"},
		{"bad points", `{"name":"x","sweeps":[{"class":"tiny","points":"nodez"}]}`, "points kind"},
		{"multi-point clock sweep", `{"name":"x","sweeps":[{"class":"tiny","points":[1,2],"clocks":"ladder"}]}`, "single rank point"},
		{"empty", `{"name":"x"}`, "no sweeps and no jobs"},
		{"no points", `{"name":"x","sweeps":[{"class":"tiny"}]}`, "without points"},
		{"job without cluster", `{"name":"x","jobs":[{"benchmark":"lbm","ranks":2}]}`, "without cluster"},
		{"trailing content", `{"name":"x","sweeps":[{"class":"tiny","points":"node"}]} {"name":"y"}`, "trailing content"},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.doc), "x"); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestExpandDeterministic expands the sample scenario twice and checks
// the batches are identical, complete, and in cluster-major order.
func TestExpandDeterministic(t *testing.T) {
	sc, err := LoadFile(writeScenario(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	p := &Planner{Engine: campaign.New(2)}
	jobs, err := p.Expand(sc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := p.Expand(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, again) {
		t.Error("expansion is not deterministic")
	}
	// Sweep 1: 2 kernels x 3 points; sweep 2: 1 kernel x 1 point x 2
	// clocks; plus 1 pinned job.
	if want := 2*3 + 2 + 1; len(jobs) != want {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), want)
	}
	first := jobs[0]
	if first.Benchmark != "tealeaf" || first.Ranks != 1 || first.Cluster.Name != "ClusterA" ||
		first.Net.Name != "HDR200" || first.Options.SimSteps != 1 {
		t.Errorf("first job = %+v", first)
	}
	clocked := jobs[6]
	if clocked.Benchmark != "pot3d" || clocked.ClockHz != 1.2e9 ||
		clocked.Ranks != machine.MustGet("ClusterA").CPU.CoresPerDomain() {
		t.Errorf("clock job = %+v", clocked)
	}
	last := jobs[len(jobs)-1]
	if last.Benchmark != "minisweep" || last.Ranks != 3 {
		t.Errorf("pinned job = %+v", last)
	}
}

// TestExpandAppliesQuickDefaults checks quick mode reduces preset axes
// and pins one simulated step, while explicit step counts win.
func TestExpandAppliesQuickDefaults(t *testing.T) {
	sc := &Scenario{Name: "q", Sweeps: []Sweep{{
		Benchmarks: []string{"tealeaf"},
		Clusters:   []string{"ClusterA"},
		Class:      bench.Tiny,
		Points:     Points{Kind: PointsMultiNode},
	}}}
	quick := &Planner{Quick: true}
	jobs, err := quick.Expand(sc)
	if err != nil {
		t.Fatal(err)
	}
	cpn := machine.MustGet("ClusterA").CPU.CoresPerNode()
	if len(jobs) != 3 || jobs[0].Ranks != cpn || jobs[0].Options.SimSteps != 1 {
		t.Errorf("quick multinode expansion = %d jobs, first %+v", len(jobs), jobs[0])
	}
	sc.Sweeps[0].SimSteps = 4
	jobs, err = quick.Expand(sc)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Options.SimSteps != 4 {
		t.Errorf("explicit sim_steps overridden: %+v", jobs[0].Options)
	}
	full := &Planner{}
	jobs, err = full.Expand(&Scenario{Name: "f", Sweeps: []Sweep{{
		Benchmarks: []string{"tealeaf"}, Clusters: []string{"ClusterA"},
		Class: bench.Tiny, Points: Points{Kind: PointsMultiNode},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) <= 3 || jobs[0].Options.SimSteps != 0 {
		t.Errorf("full multinode expansion = %d jobs, first opts %+v", len(jobs), jobs[0].Options)
	}
}

// TestExecuteGenericRenderer runs a small scenario end to end: plots on
// the writer, CSV artifacts on disk, one engine simulation per unique
// job, and a frequency sweep rendered over the clock axis.
func TestExecuteGenericRenderer(t *testing.T) {
	sc, err := LoadFile(writeScenario(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	outDir := t.TempDir()
	var sb strings.Builder
	p := &Planner{Engine: campaign.New(4)}
	if err := p.Execute(sc, &sb, outDir); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"sample: ClusterA wall time [s] (tiny)",
		"sample: ClusterA speedup (first-point baseline) (tiny)",
		"sample: ClusterA total energy [J] (tiny)",
		"sample: pinned jobs",
		"minisweep",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, f := range []string{
		"sample_s1_wall_s_ClusterA.csv",
		"sample_s1_speedup_ClusterA.csv",
		"sample_s2_energy_j_ClusterA.csv",
		"sample_jobs.csv",
	} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
	// The clock-axis CSV carries GHz x values.
	data, err := os.ReadFile(filepath.Join(outDir, "sample_s2_energy_j_ClusterA.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "clock_ghz,") {
		t.Errorf("clock sweep CSV header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	// Execute warmed every job once; re-running is all memo hits.
	st := p.Engine.Stats()
	if st.Misses == 0 {
		t.Fatal("nothing simulated")
	}
	if err := p.Execute(sc, &strings.Builder{}, ""); err != nil {
		t.Fatal(err)
	}
	if got := p.Engine.Stats(); got.Misses != st.Misses {
		t.Errorf("re-execution simulated fresh jobs: misses %d -> %d", st.Misses, got.Misses)
	}
}

// TestWarmCoversRender pins the core planner contract: after Warm, the
// renderer's engine requests are served entirely from the memo.
func TestWarmCoversRender(t *testing.T) {
	sc, err := LoadFile(writeScenario(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	p := &Planner{Engine: campaign.New(4)}
	if err := p.Warm(sc); err != nil {
		t.Fatal(err)
	}
	st := p.Engine.Stats()
	for si := range sc.Sweeps {
		if err := p.renderSweep(context.Background(), sc, si, &strings.Builder{}, ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.renderJobs(context.Background(), sc, &strings.Builder{}, ""); err != nil {
		t.Fatal(err)
	}
	if got := p.Engine.Stats(); got.Misses != st.Misses {
		t.Errorf("render simulated %d jobs Warm did not plan", got.Misses-st.Misses)
	}
}
