package scenario

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// Planner turns scenarios into campaign batches and artifacts. The zero
// value works (fresh host-sized engine, paper clusters, full resolution);
// share one Planner — or at least one Engine — across scenarios so their
// overlapping jobs memoize.
type Planner struct {
	// Engine executes and memoizes every simulation (nil = a fresh
	// host-sized engine on first use).
	Engine *campaign.Engine
	// Quick trades sweep resolution for speed (used by tests and CI).
	Quick bool
	// DefaultClusters resolves sweeps that name no clusters; empty means
	// the paper's two systems.
	DefaultClusters []string
}

// engine returns the planner's engine, creating one on first use.
func (p *Planner) engine() *campaign.Engine {
	if p.Engine == nil {
		p.Engine = campaign.New(0)
	}
	return p.Engine
}

// engineFor returns the engine view carrying a scenario's query mode:
// the shared engine itself for exact studies, a Fast-mode view of the
// same scheduler for surrogate-eligible ones. Both views share one
// memo, store, and worker pool.
func (p *Planner) engineFor(sc *Scenario) *campaign.Engine {
	return p.engine().WithMode(sc.Mode)
}

// Clusters resolves a sweep's cluster names through the machine
// registry, applying the planner default for an empty list.
func (p *Planner) Clusters(names []string) ([]*machine.ClusterSpec, error) {
	if len(names) == 0 {
		names = p.DefaultClusters
	}
	if len(names) == 0 {
		names = []string{"ClusterA", "ClusterB"}
	}
	out := make([]*machine.ClusterSpec, 0, len(names))
	for _, n := range names {
		cs, err := machine.Get(n)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

// SimSteps resolves a step override: explicit values win, otherwise
// quick mode simulates one step and full runs use the kernel default.
func (p *Planner) SimSteps(explicit int) int {
	if explicit != 0 {
		return explicit
	}
	if p.Quick {
		return 1
	}
	return 0
}

// benchNames resolves a sweep's benchmark list (empty = all registered,
// in SPEC id order).
func benchNames(names []string) []string {
	if len(names) == 0 {
		return bench.Names()
	}
	return names
}

// ExpandParts flattens a scenario into one campaign batch per sweep
// plus the pinned single jobs, each in deterministic order
// (cluster-major, then benchmark, rank, clock). The concatenation of
// the parts is exactly the set of simulations the scenario's renderer
// will ask the engine for; keeping the parts separate lets callers — the
// HTTP service above all — track and stream per-sweep completion.
func (p *Planner) ExpandParts(sc *Scenario) ([][]spec.RunSpec, []spec.RunSpec, error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	sweeps := make([][]spec.RunSpec, len(sc.Sweeps))
	for si := range sc.Sweeps {
		sw := &sc.Sweeps[si]
		clusters, err := p.Clusters(sw.Clusters)
		if err != nil {
			return nil, nil, err
		}
		var net netsim.Spec
		if sw.Net != nil {
			net = *sw.Net
		}
		var jobs []spec.RunSpec
		for _, cs := range clusters {
			points, err := RankPoints(cs, sw.Points, p.Quick)
			if err != nil {
				return nil, nil, err
			}
			clocks := ClockPoints(cs, sw.Clocks, p.Quick)
			for _, name := range benchNames(sw.Benchmarks) {
				for _, r := range points {
					rs := spec.RunSpec{
						Benchmark: name,
						Class:     sw.Class,
						Cluster:   cs,
						Ranks:     r,
						Options: bench.Options{
							SimSteps: p.SimSteps(sw.SimSteps),
							ScaleDiv: sw.ScaleDiv,
						},
						Net: net,
					}
					if len(clocks) == 0 {
						jobs = append(jobs, rs)
						continue
					}
					for _, hz := range clocks {
						rs.ClockHz = hz
						jobs = append(jobs, rs)
					}
				}
			}
		}
		sweeps[si] = jobs
	}
	var pinned []spec.RunSpec
	for i := range sc.Jobs {
		j := &sc.Jobs[i]
		cs, err := machine.Get(j.Cluster)
		if err != nil {
			return nil, nil, err
		}
		pinned = append(pinned, spec.RunSpec{
			Benchmark: j.Benchmark,
			Class:     j.Class,
			Cluster:   cs,
			Ranks:     j.Ranks,
			ClockHz:   j.ClockGHz * 1e9,
			Options: bench.Options{
				SimSteps: p.SimSteps(j.SimSteps),
				ScaleDiv: j.ScaleDiv,
			},
		})
	}
	return sweeps, pinned, nil
}

// Expand flattens a scenario into its single campaign batch: the sweep
// batches in order, then the pinned jobs. See ExpandParts.
func (p *Planner) Expand(sc *Scenario) ([]spec.RunSpec, error) {
	sweeps, pinned, err := p.ExpandParts(sc)
	if err != nil {
		return nil, err
	}
	var jobs []spec.RunSpec
	for _, b := range sweeps {
		jobs = append(jobs, b...)
	}
	return append(jobs, pinned...), nil
}

// Enqueue expands a scenario and submits its whole batch to the
// engine's asynchronous scheduler without waiting: one ticket per
// expanded job, in plan order. Jobs start executing immediately on the
// scheduler's worker pool; later engine requests for the same jobs —
// from a bespoke figure renderer, the generic one, or a concurrent HTTP
// request — coalesce onto the in-flight simulations instead of
// re-running them. Per-job failures are memoized, not returned: the
// renderer (or the ticket waiter) surfaces them with full context.
//
// ctx governs the submissions' interest: cancelling it drops the jobs
// still queued (a service request abandoning a scenario releases the
// queue for other callers), while running simulations always complete
// and memoize.
func (p *Planner) Enqueue(ctx context.Context, sc *Scenario) ([]*campaign.Ticket, error) {
	jobs, err := p.Expand(sc)
	if err != nil {
		return nil, err
	}
	e := p.engineFor(sc)
	tickets := make([]*campaign.Ticket, len(jobs))
	for i, rs := range jobs {
		tickets[i] = e.Submit(ctx, rs)
	}
	return tickets, nil
}

// Warm expands a scenario and executes its whole batch on the engine in
// one parallel campaign, so every later engine request — from a bespoke
// figure renderer or the generic one — is a memo hit. The blocking
// counterpart of Enqueue.
func (p *Planner) Warm(sc *Scenario) error {
	tickets, err := p.Enqueue(context.Background(), sc)
	if err != nil {
		return err
	}
	for _, t := range tickets {
		t.Wait(context.Background())
	}
	return nil
}

// Execute runs a scenario end to end with the generic renderer: submit
// the full batch to the scheduler up front, then draw each sweep's
// metric series as ASCII plots (plus CSV artifacts under outDir, unless
// empty) and each pinned job as a summary table. Tables and plots go to
// w. Rendering streams: each sweep is drawn as soon as its own results
// land — the first sweep's plots appear while later sweeps are still
// simulating, since the renderer's engine requests wait only on the
// jobs they need.
func (p *Planner) Execute(sc *Scenario, w io.Writer, outDir string) error {
	return p.ExecuteCtx(context.Background(), sc, w, outDir)
}

// ExecuteCtx is Execute under a cancellable context: the batch is
// enqueued with ctx (cancelling it drops the scenario's queued jobs,
// modulo claims other callers hold), then rendered with Render.
func (p *Planner) ExecuteCtx(ctx context.Context, sc *Scenario, w io.Writer, outDir string) error {
	if _, err := p.Enqueue(ctx, sc); err != nil {
		return err
	}
	return p.Render(ctx, sc, w, outDir)
}

// Render draws a scenario's artifacts without enqueueing its batch
// first: each sweep's engine requests wait on — and coalesce with —
// whatever is already submitted or memoized, simulating on demand
// otherwise. Callers that submitted the expansion themselves (the HTTP
// service tracks per-sweep tickets) use this to avoid double-claiming
// every job. Rendering stops at the next sweep boundary once ctx is
// cancelled, instead of re-submitting work the cancellation just
// released.
func (p *Planner) Render(ctx context.Context, sc *Scenario, w io.Writer, outDir string) error {
	for si := range sc.Sweeps {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("scenario %s: abandoned before sweep %d: %w", sc.Name, si+1, err)
		}
		if err := p.renderSweep(ctx, sc, si, w, outDir); err != nil {
			return err
		}
	}
	if len(sc.Jobs) > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("scenario %s: abandoned before pinned jobs: %w", sc.Name, err)
		}
		if err := p.renderJobs(ctx, sc, w, outDir); err != nil {
			return err
		}
	}
	return nil
}

// sweepMetrics resolves a sweep's metric selection.
func sweepMetrics(sw *Sweep) ([]Metric, error) {
	names := sw.Metrics
	if len(names) == 0 {
		names = DefaultMetrics
	}
	out := make([]Metric, 0, len(names))
	for _, n := range names {
		m, ok := MetricByName(n)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown metric %q (known: %v)", n, MetricNames())
		}
		out = append(out, m)
	}
	return out, nil
}

// renderSweep draws one sweep: per cluster and metric, one plot with a
// series per benchmark over the rank axis (or the clock axis for
// frequency sweeps), each saved as CSV. Engine requests ride ctx, so an
// abandoned scenario's renderer can never pin (or resurrect) jobs its
// cancellation released.
func (p *Planner) renderSweep(ctx context.Context, sc *Scenario, si int, w io.Writer, outDir string) error {
	sw := &sc.Sweeps[si]
	metrics, err := sweepMetrics(sw)
	if err != nil {
		return err
	}
	clusters, err := p.Clusters(sw.Clusters)
	if err != nil {
		return err
	}
	for _, cs := range clusters {
		points, err := RankPoints(cs, sw.Points, p.Quick)
		if err != nil {
			return err
		}
		clocks := ClockPoints(cs, sw.Clocks, p.Quick)
		names := benchNames(sw.Benchmarks)

		// Collect the result matrix through the (warm) engine.
		results := make(map[string][]spec.RunResult, len(names))
		for _, name := range names {
			base := spec.RunSpec{
				Benchmark: name,
				Class:     sw.Class,
				Cluster:   cs,
				Options: bench.Options{
					SimSteps: p.SimSteps(sw.SimSteps),
					ScaleDiv: sw.ScaleDiv,
				},
			}
			if sw.Net != nil {
				base.Net = *sw.Net
			}
			var res []spec.RunResult
			if len(clocks) > 0 {
				base.Ranks = points[0]
				res, err = p.engineFor(sc).FrequencySweepCtx(ctx, base, clocks)
			} else {
				res, err = p.engineFor(sc).SweepCtx(ctx, base, points)
			}
			if err != nil {
				return fmt.Errorf("scenario %s: sweep %d: %s on %s: %w",
					sc.Name, si+1, name, cs.Name, err)
			}
			results[name] = res
		}

		xName, xLabel := "ranks", "processes"
		if len(clocks) > 0 {
			xName, xLabel = "clock_ghz", "core clock [GHz]"
		}
		for _, m := range metrics {
			plot := report.NewPlot(
				fmt.Sprintf("%s: %s %s (%s)", sc.Name, cs.Name, m.Label, sw.Class),
				xLabel, m.Label)
			var series []report.Series
			for _, name := range names {
				res := results[name]
				xs := make([]float64, len(res))
				for i, r := range res {
					if len(clocks) > 0 {
						xs[i] = r.Spec.ClockHz / 1e9 // ladder-snapped
					} else {
						xs[i] = float64(r.Usage.Ranks)
					}
				}
				ys := metricValues(m, res)
				plot.Add(name, xs, ys)
				series = append(series, report.Series{Name: name, X: xs, Y: ys})
			}
			if err := plot.Write(w); err != nil {
				return err
			}
			csv := fmt.Sprintf("%s_s%d_%s_%s.csv", sc.Name, si+1, m.Name, cs.Name)
			if err := saveSeriesCSV(outDir, csv, xName, series); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderJobs draws the pinned single jobs as one summary table.
func (p *Planner) renderJobs(ctx context.Context, sc *Scenario, w io.Writer, outDir string) error {
	t := report.NewTable(
		fmt.Sprintf("%s: pinned jobs", sc.Name),
		"benchmark", "class", "cluster", "ranks", "wall", "perf", "mem BW",
		"chip power", "energy", "MPI %")
	for i := range sc.Jobs {
		j := &sc.Jobs[i]
		cs, err := machine.Get(j.Cluster)
		if err != nil {
			return err
		}
		outs := p.engineFor(sc).RunCtx(ctx, []spec.RunSpec{{
			Benchmark: j.Benchmark,
			Class:     j.Class,
			Cluster:   cs,
			Ranks:     j.Ranks,
			ClockHz:   j.ClockGHz * 1e9,
			Options: bench.Options{
				SimSteps: p.SimSteps(j.SimSteps),
				ScaleDiv: j.ScaleDiv,
			},
		}})
		if outs[0].Err != nil {
			return fmt.Errorf("scenario %s: job %d: %w", sc.Name, i+1, outs[0].Err)
		}
		u := outs[0].Result.Usage
		t.AddRow(j.Benchmark, j.Class.String(), cs.Name,
			fmt.Sprintf("%d", u.Ranks),
			units.Seconds(u.Wall),
			units.FlopRate(u.PerfFlops()),
			units.Bandwidth(u.MemBandwidth()),
			units.Power(u.ChipPower()),
			units.Energy(u.TotalEnergy()),
			fmt.Sprintf("%.1f", 100*u.MPIFraction()))
	}
	if err := t.Write(w); err != nil {
		return err
	}
	return saveCSV(outDir, sc.Name+"_jobs.csv", t)
}

// saveCSV writes a table as CSV into dir ("" = no artifacts).
func saveCSV(dir, name string, t *report.Table) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// saveSeriesCSV writes plot series as CSV into dir ("" = no artifacts).
func saveSeriesCSV(dir, name, xName string, series []report.Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.SeriesCSV(f, xName, series)
}
