package scenario

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// Planner turns scenarios into campaign batches and artifacts. The zero
// value works (fresh host-sized engine, paper clusters, full resolution);
// share one Planner — or at least one Engine — across scenarios so their
// overlapping jobs memoize.
type Planner struct {
	// Engine executes and memoizes every simulation (nil = a fresh
	// host-sized engine on first use).
	Engine *campaign.Engine
	// Quick trades sweep resolution for speed (used by tests and CI).
	Quick bool
	// DefaultClusters resolves sweeps that name no clusters; empty means
	// the paper's two systems.
	DefaultClusters []string
}

// engine returns the planner's engine, creating one on first use.
func (p *Planner) engine() *campaign.Engine {
	if p.Engine == nil {
		p.Engine = campaign.New(0)
	}
	return p.Engine
}

// Clusters resolves a sweep's cluster names through the machine
// registry, applying the planner default for an empty list.
func (p *Planner) Clusters(names []string) ([]*machine.ClusterSpec, error) {
	if len(names) == 0 {
		names = p.DefaultClusters
	}
	if len(names) == 0 {
		names = []string{"ClusterA", "ClusterB"}
	}
	out := make([]*machine.ClusterSpec, 0, len(names))
	for _, n := range names {
		cs, err := machine.Get(n)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

// SimSteps resolves a step override: explicit values win, otherwise
// quick mode simulates one step and full runs use the kernel default.
func (p *Planner) SimSteps(explicit int) int {
	if explicit != 0 {
		return explicit
	}
	if p.Quick {
		return 1
	}
	return 0
}

// benchNames resolves a sweep's benchmark list (empty = all registered,
// in SPEC id order).
func benchNames(names []string) []string {
	if len(names) == 0 {
		return bench.Names()
	}
	return names
}

// Expand flattens a scenario into its campaign batch, in deterministic
// order: sweeps first (cluster-major, then benchmark, rank, clock), then
// the pinned jobs. The batch is exactly the set of simulations the
// scenario's renderer will ask the engine for.
func (p *Planner) Expand(sc *Scenario) ([]spec.RunSpec, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	var jobs []spec.RunSpec
	for si := range sc.Sweeps {
		sw := &sc.Sweeps[si]
		clusters, err := p.Clusters(sw.Clusters)
		if err != nil {
			return nil, err
		}
		var net netsim.Spec
		if sw.Net != nil {
			net = *sw.Net
		}
		for _, cs := range clusters {
			points, err := RankPoints(cs, sw.Points, p.Quick)
			if err != nil {
				return nil, err
			}
			clocks := ClockPoints(cs, sw.Clocks, p.Quick)
			for _, name := range benchNames(sw.Benchmarks) {
				for _, r := range points {
					rs := spec.RunSpec{
						Benchmark: name,
						Class:     sw.Class,
						Cluster:   cs,
						Ranks:     r,
						Options: bench.Options{
							SimSteps: p.SimSteps(sw.SimSteps),
							ScaleDiv: sw.ScaleDiv,
						},
						Net: net,
					}
					if len(clocks) == 0 {
						jobs = append(jobs, rs)
						continue
					}
					for _, hz := range clocks {
						rs.ClockHz = hz
						jobs = append(jobs, rs)
					}
				}
			}
		}
	}
	for i := range sc.Jobs {
		j := &sc.Jobs[i]
		cs, err := machine.Get(j.Cluster)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, spec.RunSpec{
			Benchmark: j.Benchmark,
			Class:     j.Class,
			Cluster:   cs,
			Ranks:     j.Ranks,
			ClockHz:   j.ClockGHz * 1e9,
			Options: bench.Options{
				SimSteps: p.SimSteps(j.SimSteps),
				ScaleDiv: j.ScaleDiv,
			},
		})
	}
	return jobs, nil
}

// Warm expands a scenario and executes its whole batch on the engine in
// one parallel campaign, so every later engine request — from a bespoke
// figure renderer or the generic one — is a memo hit. Per-job failures
// are memoized, not returned: the renderer surfaces them with full
// context.
func (p *Planner) Warm(sc *Scenario) error {
	jobs, err := p.Expand(sc)
	if err != nil {
		return err
	}
	p.engine().Run(jobs)
	return nil
}

// Execute runs a scenario end to end with the generic renderer: warm the
// engine with the full batch, then draw each sweep's metric series as
// ASCII plots (plus CSV artifacts under outDir, unless empty) and each
// pinned job as a summary table. Tables and plots go to w.
func (p *Planner) Execute(sc *Scenario, w io.Writer, outDir string) error {
	if err := p.Warm(sc); err != nil {
		return err
	}
	for si := range sc.Sweeps {
		if err := p.renderSweep(sc, si, w, outDir); err != nil {
			return err
		}
	}
	if len(sc.Jobs) > 0 {
		if err := p.renderJobs(sc, w, outDir); err != nil {
			return err
		}
	}
	return nil
}

// sweepMetrics resolves a sweep's metric selection.
func sweepMetrics(sw *Sweep) ([]Metric, error) {
	names := sw.Metrics
	if len(names) == 0 {
		names = DefaultMetrics
	}
	out := make([]Metric, 0, len(names))
	for _, n := range names {
		m, ok := MetricByName(n)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown metric %q (known: %v)", n, MetricNames())
		}
		out = append(out, m)
	}
	return out, nil
}

// renderSweep draws one sweep: per cluster and metric, one plot with a
// series per benchmark over the rank axis (or the clock axis for
// frequency sweeps), each saved as CSV.
func (p *Planner) renderSweep(sc *Scenario, si int, w io.Writer, outDir string) error {
	sw := &sc.Sweeps[si]
	metrics, err := sweepMetrics(sw)
	if err != nil {
		return err
	}
	clusters, err := p.Clusters(sw.Clusters)
	if err != nil {
		return err
	}
	for _, cs := range clusters {
		points, err := RankPoints(cs, sw.Points, p.Quick)
		if err != nil {
			return err
		}
		clocks := ClockPoints(cs, sw.Clocks, p.Quick)
		names := benchNames(sw.Benchmarks)

		// Collect the result matrix through the (warm) engine.
		results := make(map[string][]spec.RunResult, len(names))
		for _, name := range names {
			base := spec.RunSpec{
				Benchmark: name,
				Class:     sw.Class,
				Cluster:   cs,
				Options: bench.Options{
					SimSteps: p.SimSteps(sw.SimSteps),
					ScaleDiv: sw.ScaleDiv,
				},
			}
			if sw.Net != nil {
				base.Net = *sw.Net
			}
			var res []spec.RunResult
			if len(clocks) > 0 {
				base.Ranks = points[0]
				res, err = p.engine().FrequencySweep(base, clocks)
			} else {
				res, err = p.engine().Sweep(base, points)
			}
			if err != nil {
				return fmt.Errorf("scenario %s: sweep %d: %s on %s: %w",
					sc.Name, si+1, name, cs.Name, err)
			}
			results[name] = res
		}

		xName, xLabel := "ranks", "processes"
		if len(clocks) > 0 {
			xName, xLabel = "clock_ghz", "core clock [GHz]"
		}
		for _, m := range metrics {
			plot := report.NewPlot(
				fmt.Sprintf("%s: %s %s (%s)", sc.Name, cs.Name, m.Label, sw.Class),
				xLabel, m.Label)
			var series []report.Series
			for _, name := range names {
				res := results[name]
				xs := make([]float64, len(res))
				for i, r := range res {
					if len(clocks) > 0 {
						xs[i] = r.Spec.ClockHz / 1e9 // ladder-snapped
					} else {
						xs[i] = float64(r.Usage.Ranks)
					}
				}
				ys := metricValues(m, res)
				plot.Add(name, xs, ys)
				series = append(series, report.Series{Name: name, X: xs, Y: ys})
			}
			if err := plot.Write(w); err != nil {
				return err
			}
			csv := fmt.Sprintf("%s_s%d_%s_%s.csv", sc.Name, si+1, m.Name, cs.Name)
			if err := saveSeriesCSV(outDir, csv, xName, series); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderJobs draws the pinned single jobs as one summary table.
func (p *Planner) renderJobs(sc *Scenario, w io.Writer, outDir string) error {
	t := report.NewTable(
		fmt.Sprintf("%s: pinned jobs", sc.Name),
		"benchmark", "class", "cluster", "ranks", "wall", "perf", "mem BW",
		"chip power", "energy", "MPI %")
	for i := range sc.Jobs {
		j := &sc.Jobs[i]
		cs, err := machine.Get(j.Cluster)
		if err != nil {
			return err
		}
		outs := p.engine().Run([]spec.RunSpec{{
			Benchmark: j.Benchmark,
			Class:     j.Class,
			Cluster:   cs,
			Ranks:     j.Ranks,
			ClockHz:   j.ClockGHz * 1e9,
			Options: bench.Options{
				SimSteps: p.SimSteps(j.SimSteps),
				ScaleDiv: j.ScaleDiv,
			},
		}})
		if outs[0].Err != nil {
			return fmt.Errorf("scenario %s: job %d: %w", sc.Name, i+1, outs[0].Err)
		}
		u := outs[0].Result.Usage
		t.AddRow(j.Benchmark, j.Class.String(), cs.Name,
			fmt.Sprintf("%d", u.Ranks),
			units.Seconds(u.Wall),
			units.FlopRate(u.PerfFlops()),
			units.Bandwidth(u.MemBandwidth()),
			units.Power(u.ChipPower()),
			units.Energy(u.TotalEnergy()),
			fmt.Sprintf("%.1f", 100*u.MPIFraction()))
	}
	if err := t.Write(w); err != nil {
		return err
	}
	return saveCSV(outDir, sc.Name+"_jobs.csv", t)
}

// saveCSV writes a table as CSV into dir ("" = no artifacts).
func saveCSV(dir, name string, t *report.Table) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// saveSeriesCSV writes plot series as CSV into dir ("" = no artifacts).
func saveSeriesCSV(dir, name, xName string, series []report.Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.SeriesCSV(f, xName, series)
}
