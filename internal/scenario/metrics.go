package scenario

import (
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// Metric is one derived quantity the generic renderer can plot per sweep
// point. Relative metrics (speedup) are computed against the first point
// of each series instead of per result.
type Metric struct {
	// Name is the identifier used in scenario files.
	Name string
	// Label is the human axis/plot label.
	Label string
	// Get derives the value of one result; nil for relative metrics.
	Get func(spec.RunResult) float64
	// Relative marks series-relative metrics (first point = baseline).
	Relative bool
}

// metricTable lists every metric in display order. Names are stable: they
// appear in user scenario files.
var metricTable = []Metric{
	{Name: "speedup", Label: "speedup (first-point baseline)", Relative: true},
	{Name: "wall_s", Label: "wall time [s]",
		Get: func(r spec.RunResult) float64 { return r.Usage.Wall }},
	{Name: "perf_gflops", Label: "performance [Gflop/s]",
		Get: func(r spec.RunResult) float64 { return r.Usage.PerfFlops() / 1e9 }},
	{Name: "simd_pct", Label: "vectorization ratio [%]",
		Get: func(r spec.RunResult) float64 { return 100 * r.Usage.SIMDRatio() }},
	{Name: "membw_gbs", Label: "memory bandwidth [GB/s]",
		Get: func(r spec.RunResult) float64 { return r.Usage.MemBandwidth() / 1e9 }},
	{Name: "pernode_membw_gbs", Label: "per-node memory bandwidth [GB/s]",
		Get: func(r spec.RunResult) float64 {
			return r.Usage.MemBandwidth() / 1e9 / float64(r.Usage.Nodes)
		}},
	{Name: "memvol_gb", Label: "memory data volume [GB]",
		Get: func(r spec.RunResult) float64 { return r.Usage.BytesMem / 1e9 }},
	{Name: "chip_w", Label: "chip power [W]",
		Get: func(r spec.RunResult) float64 { return r.Usage.ChipPower() }},
	{Name: "dram_w", Label: "DRAM power [W]",
		Get: func(r spec.RunResult) float64 { return r.Usage.DRAMPower() }},
	{Name: "power_w", Label: "total power [W]",
		Get: func(r spec.RunResult) float64 { return r.Usage.TotalPower() }},
	{Name: "energy_j", Label: "total energy [J]",
		Get: func(r spec.RunResult) float64 { return r.Usage.TotalEnergy() }},
	{Name: "energy_per_gflop_j", Label: "energy per Gflop [J]",
		Get: func(r spec.RunResult) float64 {
			if f := r.Usage.Flops(); f > 0 {
				return r.Usage.TotalEnergy() / f * 1e9
			}
			return 0
		}},
	{Name: "edp_js", Label: "energy-delay product [Js]",
		Get: func(r spec.RunResult) float64 { return r.Usage.EDP() }},
	{Name: "mpi_pct", Label: "MPI time share [%]",
		Get: func(r spec.RunResult) float64 { return 100 * r.Usage.MPIFraction() }},
}

// DefaultMetrics is the generic renderer's selection when a sweep names
// none.
var DefaultMetrics = []string{"speedup", "wall_s", "membw_gbs", "energy_j"}

// MetricByName resolves a metric identifier.
func MetricByName(name string) (Metric, bool) {
	for _, m := range metricTable {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// MetricNames returns every known metric identifier in display order.
func MetricNames() []string {
	out := make([]string, len(metricTable))
	for i, m := range metricTable {
		out[i] = m.Name
	}
	return out
}

// metricValues derives a metric series from sweep results.
func metricValues(m Metric, results []spec.RunResult) []float64 {
	out := make([]float64, len(results))
	if m.Relative {
		if len(results) == 0 {
			return out
		}
		base := results[0].Usage.Wall
		for i, r := range results {
			if r.Usage.Wall > 0 {
				out[i] = base / r.Usage.Wall
			}
		}
		return out
	}
	for i, r := range results {
		out[i] = m.Get(r)
	}
	return out
}
