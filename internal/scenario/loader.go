package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// Scenario files are JSON with one relaxation: lines whose first
// non-blank characters are "//" are comments. Unknown keys are rejected,
// so typos fail loudly instead of silently running a different study.
// See docs/SCENARIOS.md for the full format reference.

// fileScenario mirrors the on-disk schema.
type fileScenario struct {
	Name   string      `json:"name"`
	Title  string      `json:"title"`
	Sweeps []fileSweep `json:"sweeps"`
	Jobs   []fileJob   `json:"jobs"`
	// Mode selects the query tier: "exact" (default) or "fast" (serve
	// from the fitted surrogate when within tolerance, simulate
	// otherwise).
	Mode string `json:"mode"`
}

type fileSweep struct {
	Benchmarks []string `json:"benchmarks"`
	Clusters   []string `json:"clusters"`
	Class      string   `json:"class"`
	// Points is either a preset name ("node", "domain", "multinode",
	// "one-domain") or an explicit rank list.
	Points json.RawMessage `json:"points"`
	// Clocks is either "ladder" or an explicit GHz list; absent = no
	// frequency axis.
	Clocks   json.RawMessage `json:"clocks"`
	SimSteps int             `json:"sim_steps"`
	ScaleDiv int             `json:"scale_div"`
	Metrics  []string        `json:"metrics"`
	Net      *fileNet        `json:"net"`
}

// fileNet overrides individual fields of the default HDR100 fabric, in
// human units (GB/s, microseconds, KiB). Pointer fields distinguish
// "absent" from zero.
type fileNet struct {
	Name               *string  `json:"name"`
	LinkBandwidthGBs   *float64 `json:"link_bandwidth_gbs"`
	IntraNodeLatencyUs *float64 `json:"intra_node_latency_us"`
	InterNodeLatencyUs *float64 `json:"inter_node_latency_us"`
	ShmemBandwidthGBs  *float64 `json:"shmem_bandwidth_gbs"`
	ShmemPerFlowGBs    *float64 `json:"shmem_per_flow_gbs"`
	EagerThresholdKiB  *float64 `json:"eager_threshold_kib"`
	SendOverheadUs     *float64 `json:"send_overhead_us"`
	RecvOverheadUs     *float64 `json:"recv_overhead_us"`
}

type fileJob struct {
	Benchmark string  `json:"benchmark"`
	Cluster   string  `json:"cluster"`
	Class     string  `json:"class"`
	Ranks     int     `json:"ranks"`
	ClockGHz  float64 `json:"clock_ghz"`
	SimSteps  int     `json:"sim_steps"`
	ScaleDiv  int     `json:"scale_div"`
}

// stripComments removes full-line // comments (leading whitespace
// allowed) so scenario files can be annotated. Inline comments are not
// supported: "//" is valid inside JSON strings (URLs), and full-line
// stripping never has to guess.
func stripComments(data []byte) []byte {
	lines := bytes.Split(data, []byte("\n"))
	out := make([][]byte, 0, len(lines))
	for _, line := range lines {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("//")) {
			out = append(out, nil)
			continue
		}
		out = append(out, line)
	}
	return bytes.Join(out, []byte("\n"))
}

// parseClass maps the file-format class names onto bench classes.
func parseClass(s string) (bench.Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "tiny":
		return bench.Tiny, nil
	case "small":
		return bench.Small, nil
	default:
		return 0, fmt.Errorf("scenario: unknown class %q (want tiny or small)", s)
	}
}

// parsePoints decodes the polymorphic points field.
func parsePoints(raw json.RawMessage) (Points, error) {
	if len(raw) == 0 {
		return Points{}, fmt.Errorf("scenario: sweep without points")
	}
	var name string
	if err := json.Unmarshal(raw, &name); err == nil {
		return Points{Kind: PointsKind(name)}, nil
	}
	var list []int
	if err := json.Unmarshal(raw, &list); err == nil {
		return Points{Kind: PointsList, List: list}, nil
	}
	return Points{}, fmt.Errorf("scenario: points must be a preset name or a rank list, got %s", raw)
}

// parseClocks decodes the polymorphic clocks field.
func parseClocks(raw json.RawMessage) (Clocks, error) {
	if len(raw) == 0 {
		return Clocks{}, nil
	}
	var name string
	if err := json.Unmarshal(raw, &name); err == nil {
		if !strings.EqualFold(name, "ladder") {
			return Clocks{}, fmt.Errorf("scenario: clocks must be \"ladder\" or a GHz list, got %q", name)
		}
		return Clocks{Ladder: true}, nil
	}
	var list []float64
	if err := json.Unmarshal(raw, &list); err == nil {
		return Clocks{GHz: list}, nil
	}
	return Clocks{}, fmt.Errorf("scenario: clocks must be \"ladder\" or a GHz list, got %s", raw)
}

// parseNet applies overrides on top of the default HDR100 fabric.
func parseNet(fn *fileNet) *netsim.Spec {
	if fn == nil {
		return nil
	}
	n := netsim.HDR100()
	set := func(dst *float64, src *float64, scale float64) {
		if src != nil {
			*dst = *src * scale
		}
	}
	if fn.Name != nil {
		n.Name = *fn.Name
	}
	set(&n.LinkBandwidth, fn.LinkBandwidthGBs, units.G)
	set(&n.IntraNodeLatency, fn.IntraNodeLatencyUs, 1e-6)
	set(&n.InterNodeLatency, fn.InterNodeLatencyUs, 1e-6)
	set(&n.ShmemBandwidthPerNode, fn.ShmemBandwidthGBs, units.G)
	set(&n.ShmemPerFlowMax, fn.ShmemPerFlowGBs, units.G)
	set(&n.EagerThreshold, fn.EagerThresholdKiB, 1024)
	set(&n.SendOverhead, fn.SendOverheadUs, 1e-6)
	set(&n.RecvOverhead, fn.RecvOverheadUs, 1e-6)
	return &n
}

// Parse decodes and validates a scenario document. fallbackName names
// the scenario when the document does not (callers pass the file stem).
func Parse(data []byte, fallbackName string) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(stripComments(data)))
	dec.DisallowUnknownFields()
	var fs fileScenario
	if err := dec.Decode(&fs); err != nil {
		return nil, fmt.Errorf("scenario: parsing: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		// A second document (merge artifact, stray text) would otherwise
		// be dropped silently — the opposite of failing loudly.
		return nil, fmt.Errorf("scenario: trailing content after the scenario document")
	}
	sc := &Scenario{Name: fs.Name, Title: fs.Title}
	if sc.Name == "" {
		sc.Name = fallbackName
	}
	mode, err := ParseMode(fs.Mode)
	if err != nil {
		return nil, err
	}
	sc.Mode = mode
	for i, s := range fs.Sweeps {
		class, err := parseClass(s.Class)
		if err != nil {
			return nil, fmt.Errorf("scenario sweep %d: %w", i+1, err)
		}
		points, err := parsePoints(s.Points)
		if err != nil {
			return nil, fmt.Errorf("scenario sweep %d: %w", i+1, err)
		}
		clocks, err := parseClocks(s.Clocks)
		if err != nil {
			return nil, fmt.Errorf("scenario sweep %d: %w", i+1, err)
		}
		sc.Sweeps = append(sc.Sweeps, Sweep{
			Benchmarks: s.Benchmarks,
			Clusters:   s.Clusters,
			Class:      class,
			Points:     points,
			Clocks:     clocks,
			SimSteps:   s.SimSteps,
			ScaleDiv:   s.ScaleDiv,
			Net:        parseNet(s.Net),
			Metrics:    s.Metrics,
		})
	}
	for i, j := range fs.Jobs {
		class, err := parseClass(j.Class)
		if err != nil {
			return nil, fmt.Errorf("scenario job %d: %w", i+1, err)
		}
		sc.Jobs = append(sc.Jobs, Job{
			Benchmark: j.Benchmark,
			Cluster:   j.Cluster,
			Class:     class,
			Ranks:     j.Ranks,
			ClockGHz:  j.ClockGHz,
			SimSteps:  j.SimSteps,
			ScaleDiv:  j.ScaleDiv,
		})
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// LoadFile reads and parses a scenario file.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	stem := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	sc, err := Parse(data, stem)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}
