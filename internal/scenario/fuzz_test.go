package scenario

import (
	"strings"
	"testing"
)

// Corpus seeds for the relaxed-JSON loader: accept-path documents
// shaped like the built-in paper figures (node/domain/multinode
// ladders, clock sweeps, fabric overrides, pinned inset jobs) plus the
// documented reject paths. The fuzzer mutates from here; CI runs the
// targets briefly on every push (-fuzztime smoke) and the corpus keeps
// regressions reproducible.
var parseSeeds = []string{
	// Fig. 1/2 shape: full suite over the node ladder on both clusters.
	`{
	  // scaling study
	  "name": "fig12",
	  "title": "node-level scaling",
	  "sweeps": [{"points": "node", "metrics": ["speedup", "wall_s"]}]
	}`,
	// Fig. 3/4 shape: domain ladder, explicit kernels and cluster.
	`{
	  "name": "fig34",
	  "sweeps": [
	    {"benchmarks": ["tealeaf", "lbm"], "clusters": ["ClusterA"],
	     "class": "tiny", "points": "domain", "metrics": ["membw_gbs"]}
	  ]
	}`,
	// Fig. 5/6 shape: multinode ladder with a fabric override.
	`{
	  "name": "fig56",
	  "sweeps": [
	    {"points": "multinode", "sim_steps": 2,
	     "net": {"link_bandwidth_gbs": 25, "inter_node_latency_us": 1.5}}
	  ]
	}`,
	// Frequency sweep at one domain, full ladder.
	`{"name": "clocks", "sweeps": [{"points": "one-domain", "clocks": "ladder"}]}`,
	// Explicit clock list on a one-point rank axis.
	`{"name": "clocks2", "sweeps": [{"points": [18], "clocks": [1.2, 1.6, 2.4]}]}`,
	// Pinned inset jobs (minisweep@59, lbm@71).
	`{
	  "name": "insets",
	  "jobs": [
	    {"benchmark": "minisweep", "cluster": "ClusterA", "ranks": 59},
	    {"benchmark": "lbm", "cluster": "ClusterA", "ranks": 71, "clock_ghz": 2.0}
	  ]
	}`,
	// Fast-tier study: mode=fast rides the surrogate where fitted.
	`{"name": "fastpath", "mode": "fast", "sweeps": [{"points": [2, 8, 20]}]}`,
	// Reject paths: unknown key, bad preset, bad mode, two documents,
	// clock sweep over a multi-point axis, empty scenario.
	`{"name": "x", "sweeps": [{"points": "node", "typo_key": 1}]}`,
	`{"name": "x", "sweeps": [{"points": "bogus-preset"}]}`,
	`{"name": "x", "mode": "turbo", "sweeps": [{"points": [1]}]}`,
	`{"name": "x", "jobs": [{"benchmark": "lbm", "cluster": "A", "ranks": 1}]} {"second": true}`,
	`{"name": "x", "sweeps": [{"points": [1, 2], "clocks": "ladder"}]}`,
	`{"name": "x"}`,
	`not json at all`,
	`// only a comment`,
}

// FuzzParse asserts the loader never panics and that every accepted
// document is internally consistent: it validates, carries a name, and
// parses identically a second time (the loader has no hidden state).
func FuzzParse(f *testing.F) {
	for _, seed := range parseSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data, "fuzz")
		if err != nil {
			if sc != nil {
				t.Fatalf("Parse returned both a scenario and an error: %v", err)
			}
			return
		}
		if sc == nil {
			t.Fatal("Parse returned nil scenario without an error")
		}
		if sc.Name == "" {
			t.Fatal("accepted scenario has no name (fallback not applied)")
		}
		if verr := sc.Validate(); verr != nil {
			t.Fatalf("accepted scenario fails its own validation: %v", verr)
		}
		again, err := Parse(data, "fuzz")
		if err != nil {
			t.Fatalf("second parse of an accepted document failed: %v", err)
		}
		if again.Name != sc.Name || len(again.Sweeps) != len(sc.Sweeps) ||
			len(again.Jobs) != len(sc.Jobs) || again.Mode != sc.Mode {
			t.Fatalf("parse is not deterministic: %+v vs %+v", sc, again)
		}
	})
}

// FuzzStripComments asserts comment stripping never panics, never grows
// the input, preserves the line count (errors keep pointing at real
// lines), and is idempotent.
func FuzzStripComments(f *testing.F) {
	f.Add([]byte("// comment\n{\"a\": 1}\n"))
	f.Add([]byte("{\"url\": \"http://x//y\"}"))
	f.Add([]byte("  // indented\r\n\t// tabbed\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		once := stripComments(data)
		if len(once) > len(data) {
			t.Fatalf("stripComments grew the input: %d -> %d bytes", len(data), len(once))
		}
		if got, want := strings.Count(string(once), "\n"), strings.Count(string(data), "\n"); got != want {
			t.Fatalf("line count changed: %d -> %d", want, got)
		}
		twice := stripComments(once)
		if string(twice) != string(once) {
			t.Fatal("stripComments is not idempotent")
		}
	})
}
