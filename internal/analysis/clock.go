package analysis

import "github.com/spechpc/spechpc-sim/internal/spec"

// ClockPoint is one frequency-sweep sample: the energy-vs-time view of a
// fixed (benchmark, cluster, ranks) point with the core clock as the
// implicit parameter — the frequency analogue of ZPoint.
type ClockPoint struct {
	// ClockHz is the core clock of the sample.
	ClockHz float64
	// Wall is the extrapolated wall time (s).
	Wall float64
	// Energy is total chip+DRAM energy (J); EnergyPerFlop normalizes it
	// by the executed DP flops (J/flop), the "energy per unit of work"
	// metric of the companion energy studies.
	Energy        float64
	EnergyPerFlop float64
	// EDP is the energy-delay product (J*s).
	EDP float64
}

// ClockPoints reduces a frequency sweep to clock points. The clock is
// taken from the run's ClockHz override, falling back to the cluster's
// pinned base clock for runs without one.
func ClockPoints(results []spec.RunResult) []ClockPoint {
	out := make([]ClockPoint, len(results))
	for i, r := range results {
		u := r.Usage
		hz := r.Spec.ClockHz
		if hz == 0 && r.Spec.Cluster != nil {
			hz = r.Spec.Cluster.CPU.BaseClockHz
		}
		e := u.TotalEnergy()
		p := ClockPoint{
			ClockHz: hz,
			Wall:    u.Wall,
			Energy:  e,
			EDP:     u.EDP(),
		}
		if f := u.Flops(); f > 0 {
			p.EnergyPerFlop = e / f
		}
		out[i] = p
	}
	return out
}

// MinEnergyClock returns the index of the clock point with minimal total
// energy — the energy-optimal operating frequency.
func MinEnergyClock(pts []ClockPoint) int {
	best := 0
	for i, p := range pts {
		if p.Energy < pts[best].Energy {
			best = i
		}
	}
	return best
}

// MinEDPClock returns the index with minimal energy-delay product.
func MinEDPClock(pts []ClockPoint) int {
	best := 0
	for i, p := range pts {
		if p.EDP < pts[best].EDP {
			best = i
		}
	}
	return best
}
