package analysis

import (
	"math"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

func TestClockMinima(t *testing.T) {
	pts := []ClockPoint{
		{ClockHz: 0.8e9, Wall: 10, Energy: 90, EDP: 900},
		{ClockHz: 1.6e9, Wall: 6, Energy: 80, EDP: 480},
		{ClockHz: 2.4e9, Wall: 5, Energy: 85, EDP: 425},
	}
	if i := MinEnergyClock(pts); i != 1 {
		t.Errorf("min energy at index %d, want 1", i)
	}
	if i := MinEDPClock(pts); i != 2 {
		t.Errorf("min EDP at index %d, want 2", i)
	}
}

// TestClockPoints reduces synthetic run results and checks the derived
// quantities: clock from the override (or the cluster's pinned clock),
// energy per flop, and EDP.
func TestClockPoints(t *testing.T) {
	cluster := machine.MustGet("ClusterA")
	results := []spec.RunResult{
		{
			Spec: spec.RunSpec{Cluster: cluster, ClockHz: 1.2e9},
			Usage: machine.Usage{
				Wall: 4, FlopsSIMD: 2e9, ChipEnergy: 100, DRAMEnergy: 20,
			},
		},
		{
			Spec: spec.RunSpec{Cluster: cluster}, // no override: pinned clock
			Usage: machine.Usage{
				Wall: 2, FlopsSIMD: 2e9, ChipEnergy: 80, DRAMEnergy: 16,
			},
		},
	}
	pts := ClockPoints(results)
	if pts[0].ClockHz != 1.2e9 {
		t.Errorf("point 0 clock %g, want the 1.2e9 override", pts[0].ClockHz)
	}
	if pts[1].ClockHz != cluster.CPU.BaseClockHz {
		t.Errorf("point 1 clock %g, want the pinned base clock %g",
			pts[1].ClockHz, cluster.CPU.BaseClockHz)
	}
	if math.Abs(pts[0].Energy-120) > 1e-12 {
		t.Errorf("point 0 energy %g, want 120 (chip+DRAM)", pts[0].Energy)
	}
	if math.Abs(pts[0].EnergyPerFlop-120/2e9) > 1e-21 {
		t.Errorf("point 0 energy/flop %g, want %g", pts[0].EnergyPerFlop, 120/2e9)
	}
	if math.Abs(pts[0].EDP-480) > 1e-12 {
		t.Errorf("point 0 EDP %g, want 480", pts[0].EDP)
	}
}
