package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func linearPoints(n int, base float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		r := float64(i + 1)
		pts[i] = Point{Ranks: r, Wall: base / r, BytesMem: 1000}
	}
	return pts
}

func TestSpeedupLinear(t *testing.T) {
	pts := linearPoints(8, 100)
	sp := Speedup(pts)
	for i, s := range sp {
		want := float64(i + 1)
		if math.Abs(s-want) > 1e-9 {
			t.Fatalf("speedup[%d] = %v, want %v", i, s, want)
		}
	}
}

func TestDomainEfficiency(t *testing.T) {
	// Domain (18 cores) wall 4s, node (72) wall 1s: perfect 4x over 4
	// domains -> 100%.
	pts := []Point{
		{Ranks: 18, Wall: 4},
		{Ranks: 72, Wall: 1},
	}
	eff, err := DomainEfficiency(pts, 18, 72)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eff-100) > 1e-9 {
		t.Fatalf("efficiency = %v, want 100", eff)
	}
	// Superlinear: node wall 0.8s -> 125%.
	pts[1].Wall = 0.8
	eff, _ = DomainEfficiency(pts, 18, 72)
	if math.Abs(eff-125) > 1e-9 {
		t.Fatalf("superlinear efficiency = %v, want 125", eff)
	}
}

func TestDomainEfficiencyMissingPoint(t *testing.T) {
	if _, err := DomainEfficiency(linearPoints(4, 10), 18, 72); err == nil {
		t.Fatal("missing points not reported")
	}
}

func TestZPlotAndMinima(t *testing.T) {
	// Energy falls then rises; EDP minimum at or after the energy
	// minimum in speedup order.
	pts := []Point{
		{Ranks: 1, Wall: 10, ChipEnergy: 1000, DRAMEnergy: 100},
		{Ranks: 2, Wall: 5, ChipEnergy: 700, DRAMEnergy: 70},
		{Ranks: 4, Wall: 2.6, ChipEnergy: 650, DRAMEnergy: 60},
		{Ranks: 8, Wall: 1.5, ChipEnergy: 800, DRAMEnergy: 65},
	}
	z := ZPlot(pts)
	if len(z) != 4 {
		t.Fatal("zplot length")
	}
	if MinEnergyPoint(z) != 2 {
		t.Fatalf("min energy at %d, want 2", MinEnergyPoint(z))
	}
	if MinEDPPoint(z) != 3 {
		t.Fatalf("min EDP at %d, want 3", MinEDPPoint(z))
	}
}

func TestClassifyCases(t *testing.T) {
	mk := func(effLast float64, volumeDrop bool) []Point {
		pts := make([]Point, 5)
		for i := range pts {
			r := math.Pow(2, float64(i))
			// Wall shaped to land at the requested efficiency at the end.
			eff := 1 + (effLast-1)*float64(i)/4
			pts[i] = Point{Ranks: r, Wall: 100 / (r * eff), BytesMem: 1000}
			if volumeDrop {
				pts[i].BytesMem = 1000 * math.Pow(0.8, float64(i))
			}
		}
		return pts
	}
	cases := []struct {
		eff  float64
		drop bool
		want ScalingCase
	}{
		{1.3, true, CaseA},
		{0.97, true, CaseB},
		{0.75, true, CaseC},
		{0.75, false, CaseD},
		{0.3, false, CasePoor},
	}
	for _, c := range cases {
		got := Classify(mk(c.eff, c.drop))
		if got != c.want {
			t.Errorf("eff=%v drop=%v -> %v, want %v", c.eff, c.drop, got, c.want)
		}
	}
}

func TestFluctuationDetectsJitter(t *testing.T) {
	smooth := linearPoints(10, 100)
	if f := Fluctuation(smooth); f > 0.01 {
		t.Fatalf("smooth curve fluctuation = %v", f)
	}
	jitter := linearPoints(10, 100)
	for i := range jitter {
		if i%2 == 1 {
			jitter[i].Wall *= 1.5 // alternating slow points
		}
	}
	if f := Fluctuation(jitter); f < 0.05 {
		t.Fatalf("jittery curve fluctuation = %v, want > 0.05", f)
	}
}

func TestBaselineExtrapolation(t *testing.T) {
	// Power = 98 + 4.2*cores: extrapolation must recover ~98.
	var cores, power []float64
	for c := 1.0; c <= 8; c++ {
		cores = append(cores, c)
		power = append(power, 98+4.2*c)
	}
	base := BaselinePowerExtrapolation(cores, power)
	if math.Abs(base-98) > 1e-9 {
		t.Fatalf("baseline = %v, want 98", base)
	}
}

func TestBaselineExtrapolationProperty(t *testing.T) {
	f := func(b0 uint8, slope uint8) bool {
		base := 50 + float64(b0)
		sl := float64(slope%40) / 10
		var cores, power []float64
		for c := 1.0; c <= 10; c++ {
			cores = append(cores, c)
			power = append(power, base+sl*c)
		}
		got := BaselinePowerExtrapolation(cores, power)
		return math.Abs(got-base) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupEmpty(t *testing.T) {
	if got := Speedup(nil); len(got) != 0 {
		t.Fatal("empty speedup not empty")
	}
}
