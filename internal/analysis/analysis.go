// Package analysis derives the paper's evaluation metrics from sweep
// results: speedup and parallel efficiency with the ccNUMA-domain
// baseline, Z-plots (energy vs speedup), energy/EDP minima, the four
// multi-node scaling cases of Sect. 5.1, and fluctuation statistics for
// the lbm/minisweep envelopes.
package analysis

import (
	"fmt"
	"math"

	"github.com/spechpc/spechpc-sim/internal/spec"
)

// Point is one sweep sample reduced to the quantities the figures use.
type Point struct {
	Ranks float64
	// Wall is the extrapolated wall time (s).
	Wall float64
	// Perf is flop/s; PerfSIMD the AVX-DP part.
	Perf     float64
	PerfSIMD float64
	// MemBW is average memory bandwidth (B/s); BytesMem total volume (B).
	MemBW    float64
	BytesMem float64
	// ChipPower/DRAMPower are average watts; ChipEnergy/DRAMEnergy joules.
	ChipPower  float64
	DRAMPower  float64
	ChipEnergy float64
	DRAMEnergy float64
}

// Points reduces sweep results to analysis points.
func Points(results []spec.RunResult) []Point {
	out := make([]Point, len(results))
	for i, r := range results {
		u := r.Usage
		out[i] = Point{
			Ranks:      float64(u.Ranks),
			Wall:       u.Wall,
			Perf:       u.PerfFlops(),
			PerfSIMD:   u.PerfFlopsSIMD(),
			MemBW:      u.MemBandwidth(),
			BytesMem:   u.BytesMem,
			ChipPower:  u.ChipPower(),
			DRAMPower:  u.DRAMPower(),
			ChipEnergy: u.ChipEnergy,
			DRAMEnergy: u.DRAMEnergy,
		}
	}
	return out
}

// Speedup returns wall-time speedups relative to the first point.
func Speedup(pts []Point) []float64 {
	out := make([]float64, len(pts))
	if len(pts) == 0 {
		return out
	}
	base := pts[0].Wall
	for i, p := range pts {
		out[i] = base / p.Wall
	}
	return out
}

// find returns the point with the given rank count, or nil.
func find(pts []Point, ranks int) *Point {
	for i := range pts {
		if int(pts[i].Ranks) == ranks {
			return &pts[i]
		}
	}
	return nil
}

// DomainEfficiency computes the paper's Sect. 4.1.1 metric: speedup from
// one ccNUMA domain to the full node, divided by the number of domains,
// in percent. The sweep must contain both rank counts.
func DomainEfficiency(pts []Point, coresPerDomain, coresPerNode int) (float64, error) {
	dom := find(pts, coresPerDomain)
	node := find(pts, coresPerNode)
	if dom == nil || node == nil {
		return 0, fmt.Errorf("analysis: sweep lacks domain (%d) or node (%d) points",
			coresPerDomain, coresPerNode)
	}
	domains := float64(coresPerNode) / float64(coresPerDomain)
	return 100 * (dom.Wall / node.Wall) / domains, nil
}

// ZPoint is one Z-plot sample: energy vs speedup with resources (ranks)
// as the implicit parameter.
type ZPoint struct {
	Ranks   float64
	Speedup float64
	Energy  float64
	EDP     float64
}

// ZPlot builds the Fig. 4 representation from a sweep (baseline = first
// point).
func ZPlot(pts []Point) []ZPoint {
	sp := Speedup(pts)
	out := make([]ZPoint, len(pts))
	for i, p := range pts {
		e := p.ChipEnergy + p.DRAMEnergy
		out[i] = ZPoint{Ranks: p.Ranks, Speedup: sp[i], Energy: e, EDP: e * p.Wall}
	}
	return out
}

// MinEnergyPoint returns the index of the sweep point with minimal total
// energy; MinEDPPoint likewise for the energy-delay product. The paper's
// race-to-idle finding is that these nearly coincide on modern CPUs.
func MinEnergyPoint(z []ZPoint) int {
	best := 0
	for i, p := range z {
		if p.Energy < z[best].Energy {
			best = i
		}
	}
	return best
}

// MinEDPPoint returns the index with minimal EDP.
func MinEDPPoint(z []ZPoint) int {
	best := 0
	for i, p := range z {
		if p.EDP < z[best].EDP {
			best = i
		}
	}
	return best
}

// ScalingCase is the paper's Sect. 5.1.1 taxonomy.
type ScalingCase int

// The four cases plus the poor-scaling bucket.
const (
	// CaseA: cache effect prevails over communication -> superlinear.
	CaseA ScalingCase = iota
	// CaseB: cache effect and communication balance out -> linear.
	CaseB
	// CaseC: communication dominates over a present cache effect ->
	// close-to-linear.
	CaseC
	// CaseD: no cache effect, only communication -> close-to-linear.
	CaseD
	// CasePoor: poor scaling (small data set + heavy communication).
	CasePoor
)

// String names the case as the paper does.
func (c ScalingCase) String() string {
	switch c {
	case CaseA:
		return "A (super-linear: cache effect prevails)"
	case CaseB:
		return "B (linear: cache and communication balance)"
	case CaseC:
		return "C (close-to-linear: communication over cache effect)"
	case CaseD:
		return "D (close-to-linear: communication only)"
	case CasePoor:
		return "poor (communication + small data set)"
	default:
		return fmt.Sprintf("ScalingCase(%d)", int(c))
	}
}

// Short returns the single-letter tag.
func (c ScalingCase) Short() string {
	return [...]string{"A", "B", "C", "D", "poor"}[int(c)]
}

// Classify assigns a multi-node sweep to one of the paper's cases using
// the same two signals the paper uses: relative parallel efficiency at
// the largest scale, and whether the aggregate memory volume falls with
// rank count (the cache-effect signature).
func Classify(pts []Point) ScalingCase {
	if len(pts) < 2 {
		return CaseB
	}
	sp := Speedup(pts)
	last := len(pts) - 1
	ideal := pts[last].Ranks / pts[0].Ranks
	eff := sp[last] / ideal

	// Cache effect: total memory volume at the largest scale measurably
	// below the smallest-scale volume (the total work per step is
	// identical, so any drop means cache capture).
	cacheEffect := pts[last].BytesMem < pts[0].BytesMem*0.96

	switch {
	case eff >= 1.08:
		return CaseA
	case eff < 0.55:
		return CasePoor
	case eff >= 0.9 && cacheEffect:
		// Linear with a visible cache effect: the two must balance (B).
		return CaseB
	case cacheEffect:
		return CaseC
	default:
		// No cache effect: communication alone sets the deviation (D).
		return CaseD
	}
}

// Fluctuation quantifies the jitter of a node-level speedup curve: the
// mean relative deviation from its monotone upper envelope. Codes like
// lbm and minisweep show large values; smooth scalers near zero.
func Fluctuation(pts []Point) float64 {
	sp := Speedup(pts)
	if len(sp) < 3 {
		return 0
	}
	envelope := make([]float64, len(sp))
	peak := 0.0
	for i, s := range sp {
		if s > peak {
			peak = s
		}
		envelope[i] = peak
	}
	var dev float64
	for i := range sp {
		if envelope[i] > 0 {
			dev += (envelope[i] - sp[i]) / envelope[i]
		}
	}
	return dev / float64(len(sp))
}

// AccelerationFactor computes the paper's Sect. 4.1.2 node ratio: wall
// time on cluster A's node over wall time on cluster B's node for the
// same workload.
func AccelerationFactor(wallA, wallB float64) float64 {
	if wallB == 0 {
		return math.Inf(1)
	}
	return wallA / wallB
}

// BaselinePowerExtrapolation performs the paper's zero-core chip-power
// extrapolation (Fig. 3a/3c dotted lines): a least-squares linear fit of
// socket power vs active cores over the first few points, evaluated at
// zero cores.
func BaselinePowerExtrapolation(activeCores, socketPower []float64) float64 {
	n := len(activeCores)
	if n == 0 || n != len(socketPower) {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		sx += activeCores[i]
		sy += socketPower[i]
		sxx += activeCores[i] * activeCores[i]
		sxy += activeCores[i] * socketPower[i]
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return sy / float64(n)
	}
	slope := (float64(n)*sxy - sx*sy) / den
	return (sy - slope*sx) / float64(n)
}
