package suite_test

import (
	"reflect"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// TestSuiteRegistersAllNineKernels pins the registry against the
// paper's Table 1: nine kernels, distinct SPEC ids, complete metadata.
func TestSuiteRegistersAllNineKernels(t *testing.T) {
	all := bench.All()
	if len(all) != 9 {
		t.Fatalf("registry holds %d kernels, want 9", len(all))
	}
	seen := map[int]string{}
	for _, b := range all {
		if b.ID <= 0 {
			t.Errorf("%s: non-positive SPEC id %d", b.Name, b.ID)
		}
		if prev, dup := seen[b.ID]; dup {
			t.Errorf("%s and %s share SPEC id %d", prev, b.Name, b.ID)
		}
		seen[b.ID] = b.Name
		if b.Language == "" || b.Numerics == "" || b.Domain == "" || b.Collective == "" {
			t.Errorf("%s: incomplete Table 1/2 metadata: %+v", b.Name, b)
		}
		if b.LOC <= 0 || b.VectorPct <= 0 {
			t.Errorf("%s: non-positive LOC/VectorPct (%d, %g)", b.Name, b.LOC, b.VectorPct)
		}
	}
}

// TestKernelInvariants runs every kernel once per class point and
// checks the physical invariants any simulated result must satisfy:
// positive work and traffic, communication time once more than one rank
// talks, phase sums consistent with the critical-path wall clock, a
// passing validation report, and per-rank trace sums for every rank.
func TestKernelInvariants(t *testing.T) {
	cs := machine.MustGet("ClusterA")
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			res, err := spec.Run(spec.RunSpec{
				Benchmark: b.Name,
				Class:     bench.Tiny,
				Cluster:   cs,
				Ranks:     4,
				Options:   bench.Options{SimSteps: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			u := res.Usage
			if u.Wall <= 0 {
				t.Fatalf("non-positive wall clock %g", u.Wall)
			}
			if u.Flops() <= 0 {
				t.Errorf("no modeled flops (scalar=%g simd=%g)", u.FlopsScalar, u.FlopsSIMD)
			}
			if u.BytesMem <= 0 || u.BytesL2 <= 0 || u.BytesL3 <= 0 {
				t.Errorf("memory hierarchy traffic not positive: mem=%g l2=%g l3=%g",
					u.BytesMem, u.BytesL2, u.BytesL3)
			}
			if u.TimeExec <= 0 {
				t.Errorf("no execution time attributed (%g)", u.TimeExec)
			}
			if u.TimeMPI <= 0 {
				t.Errorf("4 ranks exchanged no MPI time (%g)", u.TimeMPI)
			}
			if u.TimeStall < 0 {
				t.Errorf("negative stall time %g", u.TimeStall)
			}
			// Phase times are rank-summed; no rank can run past the
			// critical path, so the sum is bounded by ranks x wall.
			phaseSum := u.TimeExec + u.TimeStall + u.TimeMPI
			if limit := u.Wall * float64(u.Ranks) * 1.0001; phaseSum > limit {
				t.Errorf("phase sum %g exceeds ranks x wall = %g", phaseSum, limit)
			}
			if u.ChipEnergy <= 0 || u.DRAMEnergy <= 0 {
				t.Errorf("energy not positive: chip=%g dram=%g", u.ChipEnergy, u.DRAMEnergy)
			}
			if res.Report.StepsSimulated <= 0 || res.Report.StepsModeled < res.Report.StepsSimulated {
				t.Errorf("step accounting inverted: %+v", res.Report)
			}
			if len(res.Report.Checks) == 0 {
				t.Error("kernel reported no validation checks")
			}
			if !res.Report.Valid() {
				t.Errorf("validation checks failed: %+v", res.Report.Checks)
			}
			if res.Trace == nil {
				t.Fatal("run carries no trace recorder")
			}
			if sums := res.Trace.Sums(); len(sums) != 4 {
				t.Errorf("trace has %d rank rows, want 4", len(sums))
			}
		})
	}
}

// TestKernelDeterminism runs every kernel twice with identical specs
// and requires bit-identical Usage — the property the campaign store,
// the memo, and the surrogate's first-write-wins sample dedup all rely
// on.
func TestKernelDeterminism(t *testing.T) {
	cs := machine.MustGet("ClusterB")
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rs := spec.RunSpec{
				Benchmark: name,
				Class:     bench.Tiny,
				Cluster:   cs,
				Ranks:     3,
				Options:   bench.Options{SimSteps: 1},
			}
			first, err := spec.Run(rs)
			if err != nil {
				t.Fatal(err)
			}
			second, err := spec.Run(rs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first.Usage, second.Usage) {
				t.Errorf("two identical runs disagree:\n%+v\nvs\n%+v", first.Usage, second.Usage)
			}
			if !reflect.DeepEqual(first.Trace.Sums(), second.Trace.Sums()) {
				t.Error("two identical runs produced different trace sums")
			}
		})
	}
}
