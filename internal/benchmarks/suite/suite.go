// Package suite registers the full SPEChpc 2021 benchmark collection.
// Importing it (usually blank) makes all nine kernels available in the
// bench registry, mirroring the suite the paper runs.
package suite

import (
	// Each kernel registers itself in its init function.
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/cloverleaf"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/hpgmgfv"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/lbm"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/minisweep"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/pot3d"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/soma"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/sphexa"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/tealeaf"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/weather"
)
