// Package pot3d implements the 528.pot3d_t / 628.pot3d_s benchmark:
// potential-field solutions of the Laplace equation in 3D spherical
// coordinates with a preconditioned conjugate-gradient solver (solar
// physics).
//
// The paper's node-level analysis singles pot3d out as the most strongly
// memory-bound, perfectly saturating code (100% parallel efficiency with
// the ccNUMA-domain baseline, near-perfect vectorization at 99.9%), and
// uses its L3-vs-L2 bandwidth profile to demonstrate the victim-cache
// behaviour of Ice Lake's L3. Multi-node, pot3d is the canonical Case A:
// cache effects outweigh communication and scaling turns superlinear.
package pot3d

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

type config struct {
	nr, nt, np int // spherical grid: radial, polar, azimuthal
	iters      int // modeled CG iterations to the 1e-15 residual target
}

func configFor(c bench.Class) config {
	switch c {
	case bench.Tiny:
		return config{nr: 173, nt: 361, np: 1171, iters: 3000}
	default:
		return config{nr: 325, nt: 450, np: 2050, iters: 3000}
	}
}

const (
	flopsPerCell = 30.0 // 7-pt SpMV + diagonal precond + dots + axpys
	simdFraction = 0.999
	simdEff      = 0.35
	bytesPerCell = 62.0
	l2PerCell    = 17.0 // below L3: the victim L3 sees traffic L2 misses
	l3PerCell    = 26.0 // prefetched lines pass through the victim cache
	hotArrays    = 3
	cacheable    = 0.60
	heatFrac     = 0.70
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:          28,
		Name:        "pot3d",
		Language:    "Fortran",
		LOC:         495000, // includes the HDF5 library, as in Table 1
		Collective:  "Allreduce",
		Numerics:    "Preconditioned CG, Laplace eq., 3D spherical coords",
		Domain:      "Solar physics",
		MemoryBound: true,
		VectorPct:   99.9,
		Run:         run,
	})
}

func run(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
	cfg := configFor(c)
	simIters := o.SimSteps
	if simIters <= 0 {
		simIters = 8
	}
	scaleDiv := o.ScaleDiv
	if scaleDiv <= 0 {
		scaleDiv = 48
	}

	p := r.Size()
	// 2D decomposition over (theta, phi); full radial pencils per rank.
	px, py := bench.Grid2D(p)
	cart := bench.NewCart2D(r, px, py)
	mt0, mt1 := bench.Split1D(cfg.nt, px, cart.X)
	mp0, mp1 := bench.Split1D(cfg.np, py, cart.Y)
	mtLoc, mpLoc := mt1-mt0, mp1-mp0
	cells := float64(cfg.nr) * float64(mtLoc) * float64(mpLoc)

	ws := cells * 8 * hotArrays
	spill := machine.CacheFit(ws, bench.CachePerRank(r.Cluster(), p, r.ID()))
	memFactor := (1 - cacheable) + cacheable*spill

	phase := machine.Phase{
		Name:        "pcg-iteration",
		FlopsSIMD:   flopsPerCell * simdFraction * cells,
		FlopsScalar: flopsPerCell * (1 - simdFraction) * cells,
		SIMDEff:     simdEff,
		ScalarEff:   0.4,
		BytesMem:    bytesPerCell * cells * memFactor,
		BytesL2:     l2PerCell * cells,
		BytesL3:     l3PerCell * cells * (1 + 0.6*(1-spill)),
		HeatFrac:    heatFrac,
	}

	// Real spherical PCG on the scaled pencil.
	rt := maxInt(4, mtLoc/scaleDiv)
	rp := maxInt(4, mpLoc/scaleDiv)
	rr := maxInt(4, cfg.nr/scaleDiv)
	s := newSpherical(rr, rt, rp, cart)

	modelX := bench.DoubleBytes(cfg.nr * mpLoc)
	modelY := bench.DoubleBytes(cfg.nr * mtLoc)
	res0 := s.residualNorm(r)
	for it := 0; it < simIters; it++ {
		s.pcgIteration(r, modelX, modelY)
		r.Compute(phase)
	}
	resN := math.Sqrt(math.Abs(s.rz))

	rep := bench.RunReport{StepsModeled: cfg.iters, StepsSimulated: simIters}
	if r.ID() == 0 {
		rep.Checks = append(rep.Checks,
			bench.Check{
				Name:  "pcg residual reduction",
				Value: resN / res0,
				OK:    resN < res0*0.9 && !math.IsNaN(resN),
			},
			bench.Check{
				Name:  "preconditioner SPD (rz positive)",
				Value: s.rz,
				OK:    s.rz >= 0,
			})
	}
	return rep, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
