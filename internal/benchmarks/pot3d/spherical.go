package pot3d

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

// spherical is a real diagonally-preconditioned CG solver for the
// 7-point discretization of the Laplace operator in spherical coordinates
// (r, theta, phi) on this rank's pencil: full radial extent, a (theta,
// phi) tile with halo exchange in both angular directions.
//
// The operator uses the standard metric coefficients r^2 and sin(theta);
// it is symmetric positive definite on the Dirichlet problem, so the CG
// residual must fall — the kernel's validation invariant.
type spherical struct {
	nr, nt, np int
	cart       *bench.Cart2D
	// Metric coefficient arrays (precomputed, as pot3d does).
	r2 []float64 // r^2 at radial nodes
	st []float64 // sin(theta) at polar nodes
	// CG state with ghost layers in theta/phi.
	x, res, p, ap, diag []float64
	rz                  float64
}

func newSpherical(nr, nt, np int, cart *bench.Cart2D) *spherical {
	s := &spherical{nr: nr, nt: nt, np: np, cart: cart}
	s.r2 = make([]float64, nr)
	for i := 0; i < nr; i++ {
		r := 1.0 + 9.0*float64(i)/float64(nr-1) // shells from 1 to 10 R_sun
		s.r2[i] = r * r
	}
	s.st = make([]float64, nt+2)
	for j := 0; j < nt+2; j++ {
		// Global theta depends on the rank's tile position; avoid the
		// poles to keep sin(theta) positive.
		frac := (float64(cart.X) + float64(j)/float64(nt)) / float64(cart.PX)
		s.st[j] = math.Sin(0.1 + 2.9*frac/1.05)
		if s.st[j] < 0.05 {
			s.st[j] = 0.05
		}
	}
	n := nr * (nt + 2) * (np + 2)
	s.x = make([]float64, n)
	s.res = make([]float64, n)
	s.p = make([]float64, n)
	s.ap = make([]float64, n)
	s.diag = make([]float64, n)
	for k := 0; k < np; k++ {
		for j := 0; j < nt; j++ {
			for i := 0; i < nr; i++ {
				id := s.idx(i, j, k)
				s.diag[id] = s.diagAt(i, j)
				// b: boundary-driven source (flux emerging from the
				// inner shell).
				v := 0.0
				if i == 0 {
					v = 1.0 + 0.3*math.Sin(2*math.Pi*float64(k)/float64(np))
				}
				s.res[id] = v
				s.p[id] = v / s.diag[id] // preconditioned initial direction
			}
		}
	}
	return s
}

// idx maps (r, theta, phi) with theta/phi ghosts at j=-1..nt, k=-1..np.
func (s *spherical) idx(i, j, k int) int {
	return ((k+1)*(s.nt+2)+(j+1))*s.nr + i
}

// Face coefficients (symmetric by construction: the coefficient between
// two cells is the average of their metric factors, computed identically
// from either side — including across rank boundaries, whose metric
// arrays agree by the global-fraction formula in newSpherical).

// faceR is the radial face coefficient between shells i and i+1
// (clamped at the Dirichlet boundaries).
func (s *spherical) faceR(i int) float64 {
	lo := clampInt(i, 0, s.nr-1)
	hi := clampInt(i+1, 0, s.nr-1)
	return 0.5 * (s.r2[lo] + s.r2[hi])
}

// faceT is the polar face coefficient between rows j and j+1.
func (s *spherical) faceT(j int) float64 {
	return 0.5 * (s.st[j+1] + s.st[clampInt(j+2, 0, s.nt+1)])
}

// coefP is the azimuthal coefficient of row j (same for both phi
// neighbors, hence symmetric).
func (s *spherical) coefP(j int) float64 {
	v := s.st[j+1]
	return 1.0 / (v * v)
}

// diagAt is the positive diagonal of the operator at (i, j).
func (s *spherical) diagAt(i, j int) float64 {
	return s.faceR(i-1) + s.faceR(i) + s.faceT(j-1) + s.faceT(j) +
		2*s.coefP(j) + 1e-3 // small shift keeps the operator SPD
}

// applyA computes ap = A p on the interior using current ghosts
// (Dirichlet zero outside the radial shells and at angular walls).
func (s *spherical) applyA() {
	for k := 0; k < s.np; k++ {
		for j := 0; j < s.nt; j++ {
			for i := 0; i < s.nr; i++ {
				id := s.idx(i, j, k)
				acc := s.diagAt(i, j) * s.p[id]
				if i > 0 {
					acc -= s.faceR(i-1) * s.p[s.idx(i-1, j, k)]
				}
				if i < s.nr-1 {
					acc -= s.faceR(i) * s.p[s.idx(i+1, j, k)]
				}
				acc -= s.faceT(j-1) * s.p[s.idx(i, j-1, k)]
				acc -= s.faceT(j) * s.p[s.idx(i, j+1, k)]
				acc -= s.coefP(j) * (s.p[s.idx(i, j, k-1)] + s.p[s.idx(i, j, k+1)])
				s.ap[id] = acc
			}
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// exchangeP refreshes the theta/phi ghost shells of p across ranks.
func (s *spherical) exchangeP(r *mpi.Rank, modelX, modelY float64) {
	pack := func(j0, k0, count, dj, dk int) []float64 {
		out := make([]float64, 0, count*s.nr)
		for c := 0; c < count; c++ {
			for i := 0; i < s.nr; i++ {
				out = append(out, s.p[s.idx(i, j0+c*dj, k0+c*dk)])
			}
		}
		return out
	}
	unpack := func(data []float64, j0, k0, dj, dk int) {
		for c := 0; (c+1)*s.nr <= len(data); c++ {
			for i := 0; i < s.nr; i++ {
				s.p[s.idx(i, j0+c*dj, k0+c*dk)] = data[c*s.nr+i]
			}
		}
	}
	halo := s.cart.Exchange(bench.HaloSpec{
		Tag:         100,
		West:        pack(0, 0, s.np, 0, 1),
		East:        pack(s.nt-1, 0, s.np, 0, 1),
		South:       pack(0, 0, s.nt, 1, 0),
		North:       pack(0, s.np-1, s.nt, 1, 0),
		ModelBytesX: modelX,
		ModelBytesY: modelY,
	})
	if halo.FromWest != nil {
		unpack(halo.FromWest, -1, 0, 0, 1)
	}
	if halo.FromEast != nil {
		unpack(halo.FromEast, s.nt, 0, 0, 1)
	}
	if halo.FromSouth != nil {
		unpack(halo.FromSouth, 0, -1, 1, 0)
	}
	if halo.FromNorth != nil {
		unpack(halo.FromNorth, 0, s.np, 1, 0)
	}
}

// dotInterior computes the local dot product of two fields.
func (s *spherical) dotInterior(a, b []float64) float64 {
	var sum float64
	for k := 0; k < s.np; k++ {
		for j := 0; j < s.nt; j++ {
			base := s.idx(0, j, k)
			for i := 0; i < s.nr; i++ {
				sum += a[base+i] * b[base+i]
			}
		}
	}
	return sum
}

// residualNorm initializes rz = <res, M^-1 res> globally.
func (s *spherical) residualNorm(r *mpi.Rank) float64 {
	local := 0.0
	for k := 0; k < s.np; k++ {
		for j := 0; j < s.nt; j++ {
			for i := 0; i < s.nr; i++ {
				id := s.idx(i, j, k)
				local += s.res[id] * s.res[id] / s.diag[id]
			}
		}
	}
	s.rz = r.Allreduce([]float64{local}, 8, mpi.OpSum)[0]
	return math.Sqrt(s.rz)
}

// pcgIteration performs one diagonally-preconditioned CG iteration with
// the benchmark's two global reductions.
func (s *spherical) pcgIteration(r *mpi.Rank, modelX, modelY float64) {
	s.exchangeP(r, modelX, modelY)
	s.applyA()
	pap := r.Allreduce([]float64{s.dotInterior(s.p, s.ap)}, 8, mpi.OpSum)[0]
	if pap <= 0 {
		return // converged (or numerically exhausted)
	}
	alpha := s.rz / pap
	for k := 0; k < s.np; k++ {
		for j := 0; j < s.nt; j++ {
			base := s.idx(0, j, k)
			for i := 0; i < s.nr; i++ {
				s.x[base+i] += alpha * s.p[base+i]
				s.res[base+i] -= alpha * s.ap[base+i]
			}
		}
	}
	local := 0.0
	for k := 0; k < s.np; k++ {
		for j := 0; j < s.nt; j++ {
			for i := 0; i < s.nr; i++ {
				id := s.idx(i, j, k)
				local += s.res[id] * s.res[id] / s.diag[id]
			}
		}
	}
	rzNew := r.Allreduce([]float64{local}, 8, mpi.OpSum)[0]
	beta := rzNew / s.rz
	for k := 0; k < s.np; k++ {
		for j := 0; j < s.nt; j++ {
			base := s.idx(0, j, k)
			for i := 0; i < s.nr; i++ {
				id := base + i
				s.p[id] = s.res[id]/s.diag[id] + beta*s.p[id]
			}
		}
	}
	s.rz = rzNew
}
