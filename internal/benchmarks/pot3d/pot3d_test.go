package pot3d

import (
	"math"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/trace"
	"github.com/spechpc/spechpc-sim/internal/units"
)

func runPot3d(t *testing.T, cs *machine.ClusterSpec, n, iters int) (mpi.Result, bench.RunReport) {
	t.Helper()
	var rep bench.RunReport
	res, err := mpi.Run(mpi.Config{Cluster: cs, Ranks: n, Trace: trace.NewRecorder(n, false)},
		func(r *mpi.Rank) {
			rr, err := run(r, bench.Tiny, bench.Options{SimSteps: iters})
			if err != nil {
				t.Error(err)
			}
			if r.ID() == 0 {
				rep = rr
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	return res, rep
}

func TestRegistered(t *testing.T) {
	b, err := bench.Get("pot3d")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 28 || !b.MemoryBound || b.Language != "Fortran" {
		t.Fatalf("pot3d metadata wrong: %+v", b)
	}
}

func TestResidualReduction(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6} {
		_, rep := runPot3d(t, machine.ClusterA(), n, 10)
		if !rep.Valid() {
			t.Fatalf("n=%d: %+v", n, rep.Checks)
		}
	}
}

func TestPCGConvergesDeep(t *testing.T) {
	var ratio float64
	_, err := mpi.Run(mpi.Config{Cluster: machine.ClusterA(), Ranks: 1}, func(r *mpi.Rank) {
		s := newSpherical(8, 8, 8, bench.NewCart2D(r, 1, 1))
		r0 := s.residualNorm(r)
		for i := 0; i < 80; i++ {
			s.pcgIteration(r, 8, 8)
		}
		ratio = math.Sqrt(math.Abs(s.rz)) / r0
	})
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 1e-6 {
		t.Fatalf("PCG residual ratio after 80 iters = %g, want deep convergence", ratio)
	}
}

func TestOperatorSymmetry(t *testing.T) {
	// <u, A v> must equal <v, A u> for the CG to be legitimate.
	_, err := mpi.Run(mpi.Config{Cluster: machine.ClusterA(), Ranks: 1}, func(r *mpi.Rank) {
		s := newSpherical(6, 6, 6, bench.NewCart2D(r, 1, 1))
		u := make([]float64, len(s.p))
		v := make([]float64, len(s.p))
		for k := 0; k < s.np; k++ {
			for j := 0; j < s.nt; j++ {
				for i := 0; i < s.nr; i++ {
					id := s.idx(i, j, k)
					u[id] = math.Sin(float64(3*i + 5*j + 7*k))
					v[id] = math.Cos(float64(2*i + 3*j + 11*k))
				}
			}
		}
		apply := func(in []float64) []float64 {
			copy(s.p, in)
			s.applyA()
			out := make([]float64, len(s.ap))
			copy(out, s.ap)
			return out
		}
		au := apply(u)
		av := apply(v)
		uav := s.dotInterior(u, av)
		vau := s.dotInterior(v, au)
		if math.Abs(uav-vau) > 1e-9*(math.Abs(uav)+1) {
			t.Errorf("operator not symmetric: <u,Av>=%g <v,Au>=%g", uav, vau)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStrongSaturation(t *testing.T) {
	// pot3d is the most strongly saturating code: a ccNUMA domain must
	// pin the memory bandwidth at the saturated value.
	res, _ := runPot3d(t, machine.ClusterA(), 18, 5)
	if bw := res.Usage.MemBandwidth(); bw < 72*units.G {
		t.Fatalf("domain bandwidth = %s, want ~76.5 GB/s", units.Bandwidth(bw))
	}
}

func TestNodePerformanceCalibration(t *testing.T) {
	// Fig. 1(c): pot3d reaches ~150 Gflop/s on a ClusterA node.
	res, _ := runPot3d(t, machine.ClusterA(), 72, 4)
	gf := res.Usage.PerfFlops() / 1e9
	if gf < 110 || gf > 190 {
		t.Fatalf("node perf = %.0f Gflop/s, want ~150", gf)
	}
}

func TestVictimCacheProfile(t *testing.T) {
	// Paper Sect. 4.1.4: on ClusterA, pot3d's L3 bandwidth (~124 GB/s)
	// exceeds its L2 bandwidth (~80 GB/s) — victim-cache traffic. The
	// model must preserve L3 > L2 for this kernel.
	res, _ := runPot3d(t, machine.ClusterA(), 72, 4)
	l2 := res.Usage.L2Bandwidth()
	l3 := res.Usage.L3Bandwidth()
	if l3 <= l2 {
		t.Fatalf("L3 bandwidth (%s) not above L2 (%s)", units.Bandwidth(l3), units.Bandwidth(l2))
	}
}

func TestNearPerfectVectorization(t *testing.T) {
	res, _ := runPot3d(t, machine.ClusterA(), 4, 4)
	if r := res.Usage.SIMDRatio(); r < 0.995 {
		t.Fatalf("SIMD ratio = %.4f, want ~0.999", r)
	}
}
