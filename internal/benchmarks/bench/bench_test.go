package bench

import (
	"testing"
	"testing/quick"

	"github.com/spechpc/spechpc-sim/internal/machine"
)

func TestSplit1DBalanced(t *testing.T) {
	cases := []struct {
		n, parts, idx, lo, hi int
	}{
		{10, 3, 0, 0, 4},
		{10, 3, 1, 4, 7},
		{10, 3, 2, 7, 10},
		{9, 3, 1, 3, 6},
	}
	for _, c := range cases {
		lo, hi := Split1D(c.n, c.parts, c.idx)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Split1D(%d,%d,%d) = [%d,%d), want [%d,%d)", c.n, c.parts, c.idx, lo, hi, c.lo, c.hi)
		}
	}
}

func TestSplit1DProperty(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw)%10000 + 1
		parts := int(pRaw)%64 + 1
		prev := 0
		total := 0
		for i := 0; i < parts; i++ {
			lo, hi := Split1D(n, parts, i)
			if lo != prev || hi < lo {
				return false
			}
			if (hi-lo)-(n/parts) > 1 { // balanced: at most one extra
				return false
			}
			total += hi - lo
			prev = hi
		}
		return total == n && prev == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCeil1DProperty(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw)%10000 + 1
		parts := int(pRaw)%64 + 1
		total := 0
		for i := 0; i < parts; i++ {
			lo, hi := SplitCeil1D(n, parts, i)
			if hi < lo {
				return false
			}
			total += hi - lo
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2D(t *testing.T) {
	cases := []struct{ p, px, py int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {12, 3, 4},
		{71, 1, 71}, {72, 8, 9}, {104, 8, 13}, {36, 6, 6},
	}
	for _, c := range cases {
		px, py := Grid2D(c.p)
		if px != c.px || py != c.py {
			t.Errorf("Grid2D(%d) = (%d,%d), want (%d,%d)", c.p, px, py, c.px, c.py)
		}
	}
}

func TestGrid2DProperty(t *testing.T) {
	f := func(pRaw uint16) bool {
		p := int(pRaw)%2048 + 1
		px, py := Grid2D(p)
		return px*py == p && px <= py && px >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrid3DProperty(t *testing.T) {
	f := func(pRaw uint16) bool {
		p := int(pRaw)%2048 + 1
		a, b, c := Grid3D(p)
		return a*b*c == p && a <= b && b <= c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2DDividing(t *testing.T) {
	// minisweep tiny grid is 96x64: 24 ranks must find (6,4) exactly.
	px, py, exact := Grid2DDividing(24, 96, 64)
	if !exact || 96%px != 0 || 64%py != 0 {
		t.Errorf("Grid2DDividing(24,96,64) = (%d,%d,%v), want exact divisors", px, py, exact)
	}
	// 26 ranks cannot divide 96x64 evenly.
	_, _, exact26 := Grid2DDividing(26, 96, 64)
	if exact26 {
		t.Error("Grid2DDividing(26,96,64) claimed exact division")
	}
}

func TestRanksInDomainAndCache(t *testing.T) {
	a := machine.ClusterA()
	// 20 ranks on ClusterA: domain 0 holds 18, domain 1 holds 2.
	if got := RanksInDomain(a, 20, 0); got != 18 {
		t.Errorf("ranks in domain of rank 0 = %d, want 18", got)
	}
	if got := RanksInDomain(a, 20, 19); got != 2 {
		t.Errorf("ranks in domain of rank 19 = %d, want 2", got)
	}
	// Cache per rank shrinks as the domain fills.
	sparse := CachePerRank(a, 2, 0)
	dense := CachePerRank(a, 72, 0)
	if sparse <= dense {
		t.Errorf("cache per rank did not shrink: sparse %v, dense %v", sparse, dense)
	}
}

func TestRegistryOrdering(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("registry not sorted by id: %v", Names())
		}
	}
}

func TestRunReport(t *testing.T) {
	rr := RunReport{StepsModeled: 600, StepsSimulated: 4}
	if rr.RepFactor() != 150 {
		t.Errorf("rep factor = %v, want 150", rr.RepFactor())
	}
	rr.Checks = []Check{{Name: "x", OK: true}, {Name: "y", OK: false}}
	if rr.Valid() {
		t.Error("report with failing check claimed valid")
	}
}
