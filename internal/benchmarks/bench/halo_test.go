package bench

import (
	"testing"

	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

func runCart(t *testing.T, n int, body func(r *mpi.Rank)) {
	t.Helper()
	_, err := mpi.Run(mpi.Config{Cluster: machine.ClusterA(), Ranks: n}, body)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCart2DCoordinates(t *testing.T) {
	runCart(t, 6, func(r *mpi.Rank) {
		c := NewCart2D(r, 2, 3)
		if c.Rank(c.X, c.Y) != r.ID() {
			t.Errorf("rank %d: coords (%d,%d) round-trip failed", r.ID(), c.X, c.Y)
		}
		if c.Rank(-1, 0) != -1 || c.Rank(2, 0) != -1 || c.Rank(0, 3) != -1 {
			t.Error("out-of-grid coordinates not -1")
		}
	})
}

func TestCart2DNeighborSymmetry(t *testing.T) {
	runCart(t, 12, func(r *mpi.Rank) {
		c := NewCart2D(r, 3, 4)
		w, e, s, n := c.Neighbors()
		// If I have an east neighbor, its west neighbor is me, etc.
		check := func(nbr int, dx, dy int) {
			if nbr < 0 {
				return
			}
			o := &Cart2D{PX: 3, PY: 4, X: nbr % 3, Y: nbr / 3}
			if back := o.Rank(o.X-dx, o.Y-dy); back != r.ID() {
				t.Errorf("rank %d neighbor %d not symmetric (back=%d)", r.ID(), nbr, back)
			}
		}
		check(e, 1, 0)
		check(w, -1, 0)
		check(n, 0, 1)
		check(s, 0, -1)
	})
}

func TestExchangeDeliversBorders(t *testing.T) {
	// Each rank sends its id-stamped borders; received halos must carry
	// the right neighbor's stamp, and boundary sides must be nil.
	runCart(t, 9, func(r *mpi.Rank) {
		c := NewCart2D(r, 3, 3)
		stamp := func() []float64 { return []float64{float64(r.ID())} }
		h := c.Exchange(HaloSpec{
			Tag:  10,
			West: stamp(), East: stamp(), South: stamp(), North: stamp(),
			ModelBytesX: 8, ModelBytesY: 8,
		})
		w, e, s, n := c.Neighbors()
		checkSide := func(got []float64, nbr int, side string) {
			if nbr < 0 {
				if got != nil {
					t.Errorf("rank %d: %s halo at boundary not nil", r.ID(), side)
				}
				return
			}
			if got == nil || got[0] != float64(nbr) {
				t.Errorf("rank %d: %s halo = %v, want [%d]", r.ID(), side, got, nbr)
			}
		}
		checkSide(h.FromWest, w, "west")
		checkSide(h.FromEast, e, "east")
		checkSide(h.FromSouth, s, "south")
		checkSide(h.FromNorth, n, "north")
	})
}

func TestExchangeXThenYAllCounts(t *testing.T) {
	// The staged exchange must complete without deadlock on strips,
	// columns, and grids.
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		runCart(t, n, func(r *mpi.Rank) {
			px, py := Grid2D(n)
			c := NewCart2D(r, px, py)
			hx := c.ExchangeX([]float64{1}, []float64{2}, 30, 8)
			hy := c.ExchangeY([]float64{3}, []float64{4}, 34, 8)
			_ = hx
			_ = hy
		})
	}
}

func TestCart2DWrongDimsPanics(t *testing.T) {
	runCart(t, 4, func(r *mpi.Rank) {
		defer func() {
			if recover() == nil {
				t.Error("mismatched dims did not panic")
			}
		}()
		NewCart2D(r, 3, 3) // 9 != 4
	})
}

func TestDoubleBytes(t *testing.T) {
	if DoubleBytes(10) != 80 {
		t.Errorf("DoubleBytes(10) = %v", DoubleBytes(10))
	}
	if MiB(2) != 2*1024*1024 {
		t.Errorf("MiB(2) = %v", MiB(2))
	}
}
