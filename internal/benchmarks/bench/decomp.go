package bench

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/machine"
)

// Split1D partitions n items over parts ranks in balanced blocks: the
// first n%parts ranks receive one extra item. It returns the half-open
// range [lo, hi) of part idx.
func Split1D(n, parts, idx int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = idx*base + min(idx, rem)
	hi = lo + base
	if idx < rem {
		hi++
	}
	return lo, hi
}

// SplitCeil1D partitions n items in the "naive" style many production
// codes use: every rank except the last receives ceil(n/parts) items and
// the last takes the remainder. The uneven tail tile this produces is the
// seed of the lbm straggler model (Sect. 4.1.6).
func SplitCeil1D(n, parts, idx int) (lo, hi int) {
	chunk := (n + parts - 1) / parts
	lo = idx * chunk
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}

// Grid2D factorizes p into (px, py) with px <= py and the pair as close
// to square as possible — the MPI_Dims_create convention. Prime rank
// counts degenerate to (1, p) strips, which is what makes them
// pathological for wavefront codes.
func Grid2D(p int) (px, py int) {
	px = 1
	for f := int(math.Sqrt(float64(p))); f >= 1; f-- {
		if p%f == 0 {
			px = f
			break
		}
	}
	return px, p / px
}

// Grid2DDividing returns the factor pair (px, py) of p that divides
// (nx, ny) most evenly, preferring exact divisibility of both dimensions
// and near-square aspect. Sweep-style codes use this: when no factor pair
// divides the grid, the returned decomposition is unbalanced and the
// caller inherits the load imbalance.
func Grid2DDividing(p, nx, ny int) (px, py int, exact bool) {
	bestPx, bestPy := 1, p
	bestScore := math.Inf(1)
	for f := 1; f <= p; f++ {
		if p%f != 0 {
			continue
		}
		cx, cy := f, p/f
		score := 0.0
		if nx%cx != 0 {
			score += 10
		}
		if ny%cy != 0 {
			score += 10
		}
		// Prefer near-square tiles.
		w := float64(nx) / float64(cx)
		h := float64(ny) / float64(cy)
		score += math.Abs(math.Log(w / h))
		if score < bestScore {
			bestScore = score
			bestPx, bestPy = cx, cy
		}
	}
	return bestPx, bestPy, bestScore < 10
}

// Grid3D factorizes p into (px, py, pz), px <= py <= pz, near-cubic.
func Grid3D(p int) (px, py, pz int) {
	best := [3]int{1, 1, p}
	bestScore := math.Inf(1)
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b != 0 {
				continue
			}
			c := q / b
			score := float64(c - a)
			if score < bestScore {
				bestScore = score
				best = [3]int{a, b, c}
			}
		}
	}
	return best[0], best[1], best[2]
}

// RanksInDomain returns how many of the job's n ranks land in the same
// ccNUMA domain as rank r under block mapping.
func RanksInDomain(cs *machine.ClusterSpec, n, r int) int {
	d := cs.Place(r).GlobalDomain
	count := 0
	cpd := cs.CPU.CoresPerDomain()
	// Ranks in domain d are the contiguous block [d*cpd, (d+1)*cpd).
	lo := d * cpd
	hi := lo + cpd
	if lo < 0 {
		return 0
	}
	if hi > n {
		hi = n
	}
	if hi > lo {
		count = hi - lo
	}
	return count
}

// CachePerRank returns the cache capacity (bytes) effectively available
// to rank r: its private L2 plus its share of the domain's L3 slice given
// how many ranks currently populate that domain.
func CachePerRank(cs *machine.ClusterSpec, n, r int) float64 {
	inDom := RanksInDomain(cs, n, r)
	if inDom < 1 {
		inDom = 1
	}
	return cs.CPU.L2PerCore + cs.CPU.L3PerDomain/float64(inDom)
}
