// Package bench defines the common interface of the nine SPEChpc-like
// benchmark kernels, their registry, and shared helpers (domain
// decomposition, halo exchange, cache-availability queries).
//
// Each kernel runs real (scaled-down) numerics through the simulated MPI
// runtime while charging the machine model with paper-scale work: the
// Options.ScaleDiv divisor shrinks only the in-memory arrays, never the
// communication structure or the modeled flop/byte counts.
package bench

import (
	"fmt"
	"sort"

	"github.com/spechpc/spechpc-sim/internal/mpi"
)

// Class selects a workload suite from Table 1 of the paper.
type Class int

// Workload classes. The paper evaluates tiny (node-level, Sect. 4) and
// small (multi-node, Sect. 5); medium/large are not supported by all nine
// benchmarks and are out of scope, as in the paper.
const (
	Tiny Class = iota
	Small
)

// String returns the suite name.
func (c Class) String() string {
	switch c {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Options tunes how much of the workload is actually simulated.
type Options struct {
	// SimSteps limits the number of simulated time steps (0 = kernel
	// default, typically a handful). Reported results are extrapolated to
	// the full Table 1 step count via RunReport.RepFactor.
	SimSteps int
	// ScaleDiv divides the real in-memory problem geometry (0 = kernel
	// default). It has no effect on modeled work or communication
	// structure.
	ScaleDiv int
}

// Check is one validation result from a kernel run (conservation laws,
// residual reductions, ...). The SPEC harness refuses results whose
// checks fail, mirroring SPEC's result verification.
type Check struct {
	// Name describes the invariant, e.g. "mass conservation".
	Name string
	// Value is the measured quantity (typically a relative error).
	Value float64
	// OK reports whether the invariant held.
	OK bool
}

// RunReport is returned by a kernel run on every rank.
type RunReport struct {
	// StepsModeled is the full Table 1 step count of the workload;
	// StepsSimulated is how many were actually executed.
	StepsModeled   int
	StepsSimulated int
	// Checks holds validation results (rank 0 only; empty elsewhere).
	Checks []Check
}

// RepFactor returns the extrapolation factor from simulated steps to the
// full workload.
func (rr RunReport) RepFactor() float64 {
	if rr.StepsSimulated <= 0 {
		return 1
	}
	return float64(rr.StepsModeled) / float64(rr.StepsSimulated)
}

// Valid reports whether all checks passed.
func (rr RunReport) Valid() bool {
	for _, c := range rr.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// Runner executes a kernel workload on one MPI rank. Implementations must
// be collective: every rank of the job calls the same runner.
type Runner func(r *mpi.Rank, c Class, o Options) (RunReport, error)

// Benchmark is the registry entry of one kernel, carrying the Table 1 and
// Table 2 metadata of the paper next to its runner.
type Benchmark struct {
	// ID is the SPEChpc numeric id (e.g. 5 for lbm: 505.lbm_t/605.lbm_s).
	ID int
	// Name is the kernel name, e.g. "lbm".
	Name string
	// Language and LOC record the original implementation (Table 1).
	Language string
	LOC      int
	// Collective names the dominant collective primitive (Table 1),
	// "-" if none.
	Collective string
	// Numerics and Domain describe the method and application area
	// (Table 2).
	Numerics string
	Domain   string
	// MemoryBound is the paper's node-level classification (Sect. 4.1.4).
	MemoryBound bool
	// VectorPct is the paper-reported vectorization percentage
	// (Sect. 4.1.3), used as a calibration target in tests.
	VectorPct float64
	// Run executes the workload.
	Run Runner
}

// registry holds all known benchmarks keyed by name.
var registry = map[string]*Benchmark{}

// Register adds a benchmark to the global registry. It panics on
// duplicates or incomplete entries; registration happens in kernel
// package init functions.
func Register(b *Benchmark) {
	if b.Name == "" || b.Run == nil {
		panic("bench: registering incomplete benchmark")
	}
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("bench: duplicate benchmark %q", b.Name))
	}
	registry[b.Name] = b
}

// Get returns a registered benchmark by name.
func Get(name string) (*Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	return b, nil
}

// All returns all registered benchmarks sorted by SPEC id — the paper's
// table order.
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Names returns all benchmark names in id order.
func Names() []string {
	bs := All()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}
