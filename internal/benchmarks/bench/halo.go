package bench

import (
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// Cart2D is a two-dimensional Cartesian process topology with non-periodic
// boundaries, the layout the grid kernels (tealeaf, cloverleaf, weather,
// lbm, pot3d surfaces) share.
type Cart2D struct {
	// PX, PY are the process grid dimensions; X, Y this rank's coordinates.
	PX, PY int
	X, Y   int
	rank   *mpi.Rank
}

// NewCart2D builds the topology for rank r on a px x py grid in row-major
// rank order (x fastest).
func NewCart2D(r *mpi.Rank, px, py int) *Cart2D {
	if px*py != r.Size() {
		panic("bench: Cart2D dims do not cover job size")
	}
	return &Cart2D{PX: px, PY: py, X: r.ID() % px, Y: r.ID() / px, rank: r}
}

// Rank returns the MPI rank at grid coordinates (x, y), or -1 outside the
// non-periodic boundary.
func (c *Cart2D) Rank(x, y int) int {
	if x < 0 || x >= c.PX || y < 0 || y >= c.PY {
		return -1
	}
	return y*c.PX + x
}

// Neighbors returns the four neighbor ranks (west, east, south, north),
// -1 at boundaries.
func (c *Cart2D) Neighbors() (w, e, s, n int) {
	return c.Rank(c.X-1, c.Y), c.Rank(c.X+1, c.Y), c.Rank(c.X, c.Y-1), c.Rank(c.X, c.Y+1)
}

// HaloSpec describes one halo exchange: real border payloads per
// direction plus the paper-scale byte count per message.
type HaloSpec struct {
	// Tag is the base message tag (uses Tag..Tag+3).
	Tag int
	// West/East/South/North are the real border payloads to send in each
	// direction (nil borders are sent as empty messages).
	West, East, South, North []float64
	// ModelBytesX is the paper-scale size of an east/west message,
	// ModelBytesY of a north/south message.
	ModelBytesX, ModelBytesY float64
}

// Halo are the received border payloads of an exchange.
type Halo struct {
	FromWest, FromEast, FromSouth, FromNorth []float64
}

// Exchange performs a deadlock-free 4-direction halo exchange with
// Sendrecv in the X then Y dimension, the standard stencil-code pattern.
// Payloads are packed by the caller before the call; kernels that need
// corner-correct halos (diagonal stencils) should use ExchangeX followed
// by ExchangeY, repacking the Y borders in between.
func (c *Cart2D) Exchange(h HaloSpec) Halo {
	out := c.ExchangeX(h.West, h.East, h.Tag, h.ModelBytesX)
	y := c.ExchangeY(h.South, h.North, h.Tag+2, h.ModelBytesY)
	out.FromSouth, out.FromNorth = y.FromSouth, y.FromNorth
	return out
}

// ExchangeX exchanges only the west/east borders.
func (c *Cart2D) ExchangeX(west, east []float64, tag int, modelBytes float64) Halo {
	w, e, _, _ := c.Neighbors()
	var out Halo
	out.FromWest = c.shift(w, e, east, tag, modelBytes, false)
	out.FromEast = c.shift(e, w, west, tag+1, modelBytes, true)
	return out
}

// ExchangeY exchanges only the south/north borders.
func (c *Cart2D) ExchangeY(south, north []float64, tag int, modelBytes float64) Halo {
	_, _, s, n := c.Neighbors()
	var out Halo
	out.FromSouth = c.shift(s, n, north, tag, modelBytes, false)
	out.FromNorth = c.shift(n, s, south, tag+1, modelBytes, true)
	return out
}

// shift sends data toward dst and receives from src (either may be -1 at
// a boundary). The reverse flag only distinguishes the two shift phases
// for symmetry; behaviour is identical.
func (c *Cart2D) shift(src, dst int, data []float64, tag int, modelBytes float64, reverse bool) []float64 {
	_ = reverse
	r := c.rank
	switch {
	case src < 0 && dst < 0:
		return nil
	case src < 0:
		r.Send(dst, tag, data, modelBytes)
		return nil
	case dst < 0:
		return r.Recv(src, tag).Data
	default:
		return r.Sendrecv(dst, tag, data, modelBytes, src, tag).Data
	}
}

// DoubleBytes returns the byte size of n float64 values — a convenience
// for model-byte computations (8 bytes each).
func DoubleBytes(n int) float64 { return 8 * float64(n) }

// MiB converts mebibytes to bytes; a readability helper for work models.
func MiB(v float64) float64 { return v * units.MiB }
