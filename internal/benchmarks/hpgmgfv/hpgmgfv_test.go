package hpgmgfv

import (
	"math"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

func runMG(t *testing.T, cs *machine.ClusterSpec, n, steps int) (mpi.Result, bench.RunReport, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder(n, false)
	var rep bench.RunReport
	res, err := mpi.Run(mpi.Config{Cluster: cs, Ranks: n, Trace: rec}, func(r *mpi.Rank) {
		rr, err := run(r, bench.Tiny, bench.Options{SimSteps: steps})
		if err != nil {
			t.Error(err)
		}
		if r.ID() == 0 {
			rep = rr
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rep, rec
}

func TestRegistered(t *testing.T) {
	b, err := bench.Get("hpgmgfv")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 34 || !b.MemoryBound {
		t.Fatalf("hpgmgfv metadata wrong: %+v", b)
	}
}

func TestVCycleContraction(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		_, rep, _ := runMG(t, machine.ClusterA(), n, 2)
		if !rep.Valid() {
			t.Fatalf("n=%d: %+v", n, rep.Checks)
		}
	}
}

func TestMultigridSolvesPoisson(t *testing.T) {
	// Several V-cycles must reduce the residual by orders of magnitude.
	mg := newMultigrid(16)
	r0 := mg.residualNorm()
	for i := 0; i < 8; i++ {
		mg.vCycle()
	}
	r1 := mg.residualNorm()
	if r1 > r0*1e-4 {
		t.Fatalf("residual after 8 V-cycles: %g -> %g (ratio %g), want < 1e-4", r0, r1, r1/r0)
	}
}

func TestVCycleBeatsPlainSmoothing(t *testing.T) {
	// The multigrid hierarchy must converge much faster than smoothing
	// alone — otherwise the V-cycle plumbing is broken.
	mgA := newMultigrid(16)
	mgA.vCycle()
	vres := mgA.residualNorm()

	mgB := newMultigrid(16)
	mgB.levels[0].smooth(6) // same number of fine-grid smoothing sweeps
	sres := mgB.residualNorm()
	if vres >= sres {
		t.Fatalf("V-cycle (%g) no better than plain smoothing (%g)", vres, sres)
	}
}

func TestManySmallMessagesAtCoarseLevels(t *testing.T) {
	// hpgmgfv's multi-node signature (Case C): communication overhead
	// from per-level halos. At 64 ranks, point-to-point time must be
	// visible in the trace.
	_, _, rec := runMG(t, machine.ClusterA(), 64, 2)
	p2p := rec.GlobalFraction(trace.KindSendrecv) + rec.GlobalFraction(trace.KindSend) +
		rec.GlobalFraction(trace.KindRecv) + rec.GlobalFraction(trace.KindWait)
	if p2p <= 0 {
		t.Fatal("no point-to-point time recorded for multigrid halos")
	}
}

func TestWeaklySaturating(t *testing.T) {
	// hpgmgfv saturates less sharply than pot3d: one ccNUMA domain draws
	// high but not pinned bandwidth.
	res, _, _ := runMG(t, machine.ClusterA(), 18, 2)
	bw := res.Usage.MemBandwidth() / 1e9
	if bw < 40 || bw > 77 {
		t.Fatalf("domain bandwidth = %.1f GB/s, want high but below full saturation", bw)
	}
}

func TestVectorization(t *testing.T) {
	res, _, _ := runMG(t, machine.ClusterA(), 4, 2)
	if r := res.Usage.SIMDRatio(); math.Abs(r-0.948) > 0.005 {
		t.Fatalf("SIMD ratio = %.3f, want 0.948", r)
	}
}
