package hpgmgfv

import "math"

// multigrid is a real 3D geometric multigrid solver for the Poisson
// problem -lap(u) = f with Dirichlet walls on this rank's local grid:
// damped-Jacobi smoothing, full-weighting restriction, constant
// prolongation, V-cycles. Its measurable contraction factor per cycle is
// the kernel's validation invariant.
type multigrid struct {
	levels []*level
}

// level is one grid of the hierarchy (cube of side n, no ghosts; walls
// are implicit zeros).
type level struct {
	n       int
	u, f, r []float64
}

func newLevel(n int) *level {
	size := n * n * n
	return &level{
		n: n,
		u: make([]float64, size),
		f: make([]float64, size),
		r: make([]float64, size),
	}
}

func (l *level) idx(i, j, k int) int { return (k*l.n+j)*l.n + i }

// at returns u with Dirichlet-zero walls.
func (l *level) at(u []float64, i, j, k int) float64 {
	if i < 0 || i >= l.n || j < 0 || j >= l.n || k < 0 || k >= l.n {
		return 0
	}
	return u[l.idx(i, j, k)]
}

// newMultigrid builds a hierarchy from side n (a power of two) down to 4.
func newMultigrid(n int) *multigrid {
	mg := &multigrid{}
	for d := n; d >= 4; d /= 2 {
		mg.levels = append(mg.levels, newLevel(d))
	}
	fine := mg.levels[0]
	h := 1.0 / float64(n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x := (float64(i) + 0.5) * h
				y := (float64(j) + 0.5) * h
				z := (float64(k) + 0.5) * h
				fine.f[fine.idx(i, j, k)] =
					math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
			}
		}
	}
	return mg
}

// smooth applies sweeps of red-black Gauss-Seidel (the smoother HPGMG
// itself uses): each sweep updates the red parity then the black parity
// in place, which damps the high frequencies prolongation introduces far
// better than Jacobi.
func (l *level) smooth(sweeps int) {
	h2 := 1.0 / float64(l.n*l.n)
	for s := 0; s < sweeps; s++ {
		for parity := 0; parity < 2; parity++ {
			for k := 0; k < l.n; k++ {
				for j := 0; j < l.n; j++ {
					// Step straight to the cells of this parity (same
					// visit order as filtering every i).
					for i := (parity + j + k) % 2; i < l.n; i += 2 {
						nb := l.at(l.u, i-1, j, k) + l.at(l.u, i+1, j, k) +
							l.at(l.u, i, j-1, k) + l.at(l.u, i, j+1, k) +
							l.at(l.u, i, j, k-1) + l.at(l.u, i, j, k+1)
						l.u[l.idx(i, j, k)] = (nb + h2*l.f[l.idx(i, j, k)]) / 6
					}
				}
			}
		}
	}
}

// residual computes r = f - A u with A = -lap (scaled by 1/h^2).
func (l *level) residual() {
	invH2 := float64(l.n * l.n)
	for k := 0; k < l.n; k++ {
		for j := 0; j < l.n; j++ {
			for i := 0; i < l.n; i++ {
				id := l.idx(i, j, k)
				lap := l.at(l.u, i-1, j, k) + l.at(l.u, i+1, j, k) +
					l.at(l.u, i, j-1, k) + l.at(l.u, i, j+1, k) +
					l.at(l.u, i, j, k-1) + l.at(l.u, i, j, k+1) -
					6*l.u[id]
				l.r[id] = l.f[id] + lap*invH2
			}
		}
	}
}

// restrictTo full-weights this level's residual into the coarse f.
func (l *level) restrictTo(coarse *level) {
	for k := 0; k < coarse.n; k++ {
		for j := 0; j < coarse.n; j++ {
			for i := 0; i < coarse.n; i++ {
				var sum float64
				for dk := 0; dk < 2; dk++ {
					for dj := 0; dj < 2; dj++ {
						for di := 0; di < 2; di++ {
							sum += l.r[l.idx(2*i+di, 2*j+dj, 2*k+dk)]
						}
					}
				}
				coarse.f[coarse.idx(i, j, k)] = sum / 8
				coarse.u[coarse.idx(i, j, k)] = 0
			}
		}
	}
}

// prolongAdd adds the trilinearly interpolated coarse correction into
// this level's u (cell-centered 3/4-1/4 weights per dimension, clamped
// at the walls).
func (l *level) prolongAdd(coarse *level) {
	interp := func(i int) (a, b int, wa float64) {
		base := i / 2
		var nb int
		if i%2 == 0 {
			nb = base - 1
		} else {
			nb = base + 1
		}
		if nb < 0 || nb >= coarse.n {
			nb = base
		}
		return base, nb, 0.75
	}
	for k := 0; k < l.n; k++ {
		k0, k1, wk := interp(k)
		for j := 0; j < l.n; j++ {
			j0, j1, wj := interp(j)
			for i := 0; i < l.n; i++ {
				i0, i1, wi := interp(i)
				var v float64
				for _, ci := range [2]struct {
					idx int
					w   float64
				}{{i0, wi}, {i1, 1 - wi}} {
					for _, cj := range [2]struct {
						idx int
						w   float64
					}{{j0, wj}, {j1, 1 - wj}} {
						for _, ck := range [2]struct {
							idx int
							w   float64
						}{{k0, wk}, {k1, 1 - wk}} {
							v += ci.w * cj.w * ck.w *
								coarse.u[coarse.idx(ci.idx, cj.idx, ck.idx)]
						}
					}
				}
				l.u[l.idx(i, j, k)] += v
			}
		}
	}
}

// vCycle runs one V-cycle over the hierarchy.
func (mg *multigrid) vCycle() { mg.cycle(0) }

func (mg *multigrid) cycle(li int) {
	l := mg.levels[li]
	if li == len(mg.levels)-1 {
		l.smooth(12) // coarse "solve"
		return
	}
	l.smooth(3)
	l.residual()
	l.restrictTo(mg.levels[li+1])
	mg.cycle(li + 1)
	l.prolongAdd(mg.levels[li+1])
	l.smooth(3)
}

// residualNorm returns the L2 norm of the finest-level residual.
func (mg *multigrid) residualNorm() float64 {
	fine := mg.levels[0]
	fine.residual()
	var sum float64
	for _, v := range fine.r {
		sum += v * v
	}
	return math.Sqrt(sum)
}
