// Package hpgmgfv implements the 534.hpgmgfv_t / 634.hpgmgfv_s benchmark:
// finite-volume-based high-performance geometric multigrid solving
// variable-coefficient elliptic problems on Cartesian grids (cosmology,
// astrophysics, combustion).
//
// The paper's characterization: memory-bound but only weakly saturating —
// it "becomes less memory-bound with more cores" because the coarse
// multigrid levels live in cache. Multi-node it is the canonical Case C:
// memory traffic drops with node count (cache capture), but the expected
// superlinear speedup is eaten by communication overhead — every level of
// every V-cycle exchanges halos, and the coarse levels send many tiny,
// latency-bound messages.
package hpgmgfv

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

type config struct {
	boxLog2  int // log2 of box dimension (Table 1: 5 -> 32^3 boxes)
	gridLog2 int // log2 of grid dimension (9 -> 512^3 total, tiny)
	steps    int
}

func configFor(c bench.Class) config {
	switch c {
	case bench.Tiny:
		return config{boxLog2: 5, gridLog2: 9, steps: 300}
	default:
		return config{boxLog2: 5, gridLog2: 10, steps: 300}
	}
}

const (
	flopsPerCell  = 90.0 // smoother + residual + transfers, fine-grid equivalent
	simdFraction  = 0.948
	simdEff       = 0.23
	scalarEff     = 0.40
	bytesPerCell  = 150.0
	l2PerCell     = 260.0
	l3PerCell     = 200.0
	hotArrays     = 3
	cacheableFrac = 0.48
	heatFrac      = 0.76
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:          34,
		Name:        "hpgmgfv",
		Language:    "C",
		LOC:         16700,
		Collective:  "Allreduce",
		Numerics:    "Finite-volume geometric multigrid, variable coefficients",
		Domain:      "Cosmology, astrophysics, combustion",
		MemoryBound: true,
		VectorPct:   94.8,
		Run:         run,
	})
}

func run(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
	cfg := configFor(c)
	simSteps := o.SimSteps
	if simSteps <= 0 {
		simSteps = 2
	}
	if simSteps > cfg.steps {
		simSteps = cfg.steps
	}

	p := r.Size()
	px, py, pz := bench.Grid3D(p)
	dim := 1 << cfg.gridLog2
	cellsGlobal := float64(dim) * float64(dim) * float64(dim)
	cells := cellsGlobal / float64(p)

	// Levels continue down to 4^3 boxes; coarse levels carry 1/8 of the
	// work of the level above.
	localDim := float64(dim) / math.Cbrt(float64(p))
	levels := 0
	for d := localDim; d >= 4; d /= 2 {
		levels++
	}
	if levels < 1 {
		levels = 1
	}

	// Per-level cache model: each level's working set is 8x smaller than
	// the one above, so coarse levels live in cache while the fine level
	// streams. As ranks are added, progressively finer levels start to
	// fit — hpgmgfv's falling memory volume (the cache-effect half of the
	// paper's Case C).
	cache := bench.CachePerRank(r.Cluster(), p, r.ID())
	var workSum, memSum, fineSpill float64
	for l := 0; l < levels; l++ {
		w := math.Pow(0.125, float64(l))
		lvlCells := cells * w
		spill := machine.CacheFit(lvlCells*8*hotArrays, cache)
		if l == 0 {
			fineSpill = spill
		}
		workSum += w
		memSum += w * ((1 - cacheableFrac) + cacheableFrac*spill)
	}
	memFactor := memSum / workSum

	phase := machine.Phase{
		Name:        "v-cycle",
		FlopsSIMD:   flopsPerCell * workSum * simdFraction * cells,
		FlopsScalar: flopsPerCell * workSum * (1 - simdFraction) * cells,
		SIMDEff:     simdEff,
		ScalarEff:   scalarEff,
		BytesMem:    bytesPerCell * workSum * cells * memFactor,
		BytesL2:     l2PerCell * workSum * cells,
		BytesL3:     l3PerCell * workSum * cells * (1 + 0.4*(1-fineSpill)),
		HeatFrac:    heatFrac,
	}

	// Rank coordinates in the 3D grid (x fastest), z-neighbors exchange
	// real digests.
	cx := r.ID() % px
	cy := (r.ID() / px) % py
	cz := r.ID() / (px * py)
	rank3 := func(x, y, z int) int {
		if x < 0 || x >= px || y < 0 || y >= py || z < 0 || z >= pz {
			return -1
		}
		return (z*py+y)*px + x
	}

	// Real multigrid solver on a small local grid.
	mg := newMultigrid(16)
	var contraction float64

	exchange := func(dst, src int, payload []float64, modelBytes float64, tag int) {
		switch {
		case dst < 0 && src < 0:
		case dst < 0:
			r.Recv(src, tag)
		case src < 0:
			r.Send(dst, tag, payload, modelBytes)
		default:
			r.Sendrecv(dst, tag, payload, modelBytes, src, tag)
		}
	}

	for step := 0; step < simSteps; step++ {
		// Halo traffic of one V-cycle: two smoother applications per
		// level on the way down and up.
		for lvl := 0; lvl < levels; lvl++ {
			shrink := math.Pow(0.25, float64(lvl))
			face := localDim * localDim * 8 * shrink
			digest := []float64{float64(lvl)}
			for pass := 0; pass < 2; pass++ {
				tag := 300 + lvl*8 + pass*4
				exchange(rank3(cx+1, cy, cz), rank3(cx-1, cy, cz), digest, face, tag)
				exchange(rank3(cx-1, cy, cz), rank3(cx+1, cy, cz), digest, face, tag+1)
				exchange(rank3(cx, cy+1, cz), rank3(cx, cy-1, cz), digest, face, tag+2)
				exchange(rank3(cx, cy-1, cz), rank3(cx, cy+1, cz), digest, face, tag+3)
			}
		}
		before := mg.residualNorm()
		mg.vCycle()
		after := mg.residualNorm()
		if before > 0 {
			contraction = after / before
		}
		r.Compute(phase)
		// Global residual norm: the Allreduce of Table 1.
		r.Allreduce([]float64{after * after}, 8, mpi.OpSum)
	}

	rep := bench.RunReport{StepsModeled: cfg.steps, StepsSimulated: simSteps}
	if r.ID() == 0 {
		rep.Checks = append(rep.Checks,
			// The first cycle carries a prolongation transient (~0.6);
			// the asymptotic rate (~0.25) is exercised by the package
			// tests over multiple cycles.
			bench.Check{
				Name:  "v-cycle contraction",
				Value: contraction,
				OK:    contraction > 0 && contraction < 0.7,
			},
			bench.Check{
				Name:  "residual finite",
				Value: mg.residualNorm(),
				OK:    !math.IsNaN(mg.residualNorm()),
			})
	}
	return rep, nil
}
