package soma

import (
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

func runSoma(t *testing.T, n, steps int) (mpi.Result, bench.RunReport, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder(n, false)
	var rep bench.RunReport
	res, err := mpi.Run(mpi.Config{Cluster: machine.ClusterA(), Ranks: n, Trace: rec},
		func(r *mpi.Rank) {
			rr, err := run(r, bench.Tiny, bench.Options{SimSteps: steps})
			if err != nil {
				t.Error(err)
			}
			if r.ID() == 0 {
				rep = rr
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	return res, rep, rec
}

func TestRegistered(t *testing.T) {
	b, err := bench.Get("soma")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 13 || b.MemoryBound || b.VectorPct != 2.2 {
		t.Fatalf("soma metadata wrong: %+v", b)
	}
}

func TestChecksPass(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		_, rep, _ := runSoma(t, n, 2)
		if !rep.Valid() {
			t.Fatalf("n=%d: %+v", n, rep.Checks)
		}
	}
}

func TestBeadsConservedUnderMC(t *testing.T) {
	s := newPolymerSystem(7, 10, 16, 8)
	want := float64(s.beadCount())
	for i := 0; i < 5; i++ {
		s.mcSweep()
		s.binDensity()
		got := 0.0
		for _, v := range s.density {
			got += v
		}
		if got != want {
			t.Fatalf("sweep %d: binned beads %v, want %v", i, got, want)
		}
	}
}

func TestPositionsStayInBox(t *testing.T) {
	s := newPolymerSystem(3, 6, 16, 8)
	for i := 0; i < 10; i++ {
		s.mcSweep()
	}
	for i, v := range s.pos {
		if v < 0 || v >= 1 {
			t.Fatalf("pos[%d] = %v escaped the unit box", i, v)
		}
	}
}

func TestFieldSuppressesCrowding(t *testing.T) {
	// With kappa > 0, beads prefer low-density cells: the max cell count
	// should not grow over sweeps (soft repulsion).
	s := newPolymerSystem(5, 40, 16, 6)
	maxCell := func() float64 {
		s.binDensity()
		m := 0.0
		for _, v := range s.density {
			if v > m {
				m = v
			}
		}
		return m
	}
	before := maxCell()
	copy(s.field, s.density)
	for i := 0; i < 15; i++ {
		s.mcSweep()
		s.binDensity()
		copy(s.field, s.density)
	}
	after := maxCell()
	if after > before*1.5 {
		t.Fatalf("density peak grew under repulsive field: %v -> %v", before, after)
	}
}

func TestAllreduceDominatesAtScale(t *testing.T) {
	// soma is the code with the largest MPI_Allreduce share.
	_, _, rec := runSoma(t, 32, 2)
	frac := rec.GlobalFraction(trace.KindAllreduce)
	if frac <= 0 {
		t.Fatal("no Allreduce time recorded")
	}
	for _, k := range []trace.Kind{trace.KindSend, trace.KindRecv, trace.KindBarrier} {
		if rec.GlobalFraction(k) > frac {
			t.Fatalf("%v fraction above Allreduce; soma must be reduction-dominated", k)
		}
	}
}

func TestReplicatedFieldTrafficGrowsAtScale(t *testing.T) {
	// Aggregate memory volume must grow with rank count at multi-node
	// scale: the replicated field sweep adds constant per-rank traffic
	// (Sect. 5.1.2; Fig. 5e shows the linear rise over hundreds of
	// processes).
	res576, _, _ := runSoma(t, 576, 1)
	res1152, _, _ := runSoma(t, 1152, 1)
	growth := res1152.Usage.BytesMem / res576.Usage.BytesMem
	if growth < 1.3 {
		t.Fatalf("memory volume growth 576->1152 ranks = %.2fx; replication signature missing", growth)
	}
}

func TestScalarCode(t *testing.T) {
	res, _, _ := runSoma(t, 4, 2)
	if r := res.Usage.SIMDRatio(); r > 0.05 {
		t.Fatalf("SIMD ratio = %.3f, want ~0.022", r)
	}
}
