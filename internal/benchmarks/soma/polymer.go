package soma

import "math"

// polymerSystem is the real (scaled-down) Monte-Carlo state of one rank:
// bead-spring chains in the unit box moved by Metropolis displacement
// trials against a soft density-field energy, plus a small replicated
// density grid that is globally reduced each step — the real counterpart
// of SOMA's SCMF iteration.
type polymerSystem struct {
	chains int
	beads  int
	grid   int // density grid cells per dimension
	// Bead positions, flattened [chain*beads*3].
	pos []float64
	// density is this rank's contribution (rebinned each step); field is
	// the global (allreduced) density all ranks share.
	density []float64
	field   []float64
	rng     uint64
	// Soft-interaction strength (kappa in SCMF terms).
	kappa float64
}

func newPolymerSystem(seed, chains, beads, grid int) *polymerSystem {
	s := &polymerSystem{
		chains: chains,
		beads:  beads,
		grid:   grid,
		rng:    uint64(seed)*2862933555777941757 + 3037000493,
		kappa:  0.5,
	}
	n := chains * beads
	s.pos = make([]float64, 3*n)
	s.density = make([]float64, grid*grid*grid)
	s.field = make([]float64, grid*grid*grid)
	// Random-walk chain initialization in the unit box.
	for c := 0; c < chains; c++ {
		x, y, z := s.rand(), s.rand(), s.rand()
		for b := 0; b < beads; b++ {
			i := 3 * (c*beads + b)
			s.pos[i] = wrap(x)
			s.pos[i+1] = wrap(y)
			s.pos[i+2] = wrap(z)
			x += 0.02 * (s.rand() - 0.5)
			y += 0.02 * (s.rand() - 0.5)
			z += 0.02 * (s.rand() - 0.5)
		}
	}
	s.binDensity()
	copy(s.field, s.density)
	return s
}

// rand returns a deterministic uniform value in [0, 1).
func (s *polymerSystem) rand() float64 {
	s.rng = s.rng*6364136223846793005 + 1442695040888963407
	return float64(s.rng>>11) / float64(1<<53)
}

// wrap applies periodic boundary conditions to the unit box.
func vwrap(v float64) float64 {
	v = math.Mod(v, 1)
	if v < 0 {
		v++
	}
	return v
}

func wrap(v float64) float64 { return vwrap(v) }

// cellOf returns the density-grid cell index of a position.
func (s *polymerSystem) cellOf(x, y, z float64) int {
	g := float64(s.grid)
	cx := int(x * g)
	cy := int(y * g)
	cz := int(z * g)
	if cx >= s.grid {
		cx = s.grid - 1
	}
	if cy >= s.grid {
		cy = s.grid - 1
	}
	if cz >= s.grid {
		cz = s.grid - 1
	}
	return (cz*s.grid+cy)*s.grid + cx
}

// beadCount returns the number of beads this rank owns.
func (s *polymerSystem) beadCount() int { return s.chains * s.beads }

// energyAt is the soft density energy of a bead in a cell of the shared
// field.
func (s *polymerSystem) energyAt(cell int) float64 {
	return s.kappa * s.field[cell]
}

// mcSweep proposes one displacement trial per bead with Metropolis
// acceptance against the current shared field, plus a harmonic bond
// penalty to the previous bead. Returns (accepted, trials).
func (s *polymerSystem) mcSweep() (accepted, trials float64) {
	const stepSize = 0.05
	const bondK = 20.0
	n := s.chains * s.beads
	for i := 0; i < n; i++ {
		ix := 3 * i
		ox, oy, oz := s.pos[ix], s.pos[ix+1], s.pos[ix+2]
		nx := wrap(ox + stepSize*(s.rand()-0.5))
		ny := wrap(oy + stepSize*(s.rand()-0.5))
		nz := wrap(oz + stepSize*(s.rand()-0.5))

		dE := s.energyAt(s.cellOf(nx, ny, nz)) - s.energyAt(s.cellOf(ox, oy, oz))
		// Bond to the previous bead of the same chain.
		if i%s.beads != 0 {
			px, py, pz := s.pos[ix-3], s.pos[ix-2], s.pos[ix-1]
			dE += bondK * (dist2(nx, ny, nz, px, py, pz) - dist2(ox, oy, oz, px, py, pz))
		}
		trials++
		if dE <= 0 || s.rand() < math.Exp(-dE) {
			s.pos[ix], s.pos[ix+1], s.pos[ix+2] = nx, ny, nz
			accepted++
		}
	}
	return accepted, trials
}

// dist2 is the squared periodic distance between two points.
func dist2(ax, ay, az, bx, by, bz float64) float64 {
	dx := pdist(ax - bx)
	dy := pdist(ay - by)
	dz := pdist(az - bz)
	return dx*dx + dy*dy + dz*dz
}

func pdist(d float64) float64 {
	if d > 0.5 {
		return d - 1
	}
	if d < -0.5 {
		return d + 1
	}
	return d
}

// binDensity recomputes this rank's density contribution from its beads.
func (s *polymerSystem) binDensity() {
	for i := range s.density {
		s.density[i] = 0
	}
	n := s.chains * s.beads
	for i := 0; i < n; i++ {
		ix := 3 * i
		s.density[s.cellOf(s.pos[ix], s.pos[ix+1], s.pos[ix+2])]++
	}
}

// setField installs the globally reduced density as the shared field.
func (s *polymerSystem) setField(global []float64) {
	copy(s.field, global)
}
