// Package soma implements the 513.soma_t / 613.soma_s benchmark:
// Monte-Carlo acceleration for soft coarse-grained polymers (the SCMF
// algorithm: bead displacement moves against a density field).
//
// soma is the paper's most communication-intensive code: it spends the
// majority of its time in MPI_Allreduce, because the density field is
// *replicated* on every rank and globally reduced each time step. That
// replication is also the root of the unusual multi-node pattern of
// Sect. 5.1.2: aggregate memory volume grows linearly with ranks while
// scaling stalls, and per-node bandwidth climbs to a plateau (~150 GB/s
// on ClusterA) set by the reduction. It is also barely vectorized (2.2%).
package soma

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/units"
)

type config struct {
	polymers   int
	beads      int // beads per polymer chain
	steps      int
	fieldBytes float64 // replicated density-field size (model scale)
}

func configFor(c bench.Class) config {
	switch c {
	case bench.Tiny:
		return config{polymers: 14_000_000, beads: 32, steps: 200, fieldBytes: 8 * units.MiB}
	default:
		return config{polymers: 25_000_000, beads: 32, steps: 400, fieldBytes: 32 * units.MiB}
	}
}

const (
	flopsPerMove = 60.0
	simdFraction = 0.022 // paper: soma is essentially scalar
	simdEff      = 0.25
	scalarEff    = 0.31
	bytesPerMove = 14.0 // bead data + field cache lines
	l2PerMove    = 30.0
	l3PerMove    = 22.0
	fieldPasses  = 2.0 // zero + accumulate sweeps over the replicated field
	heatFrac     = 0.82
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:          13,
		Name:        "soma",
		Language:    "C",
		LOC:         9500,
		Collective:  "Allreduce",
		Numerics:    "Monte-Carlo for soft coarse-grained polymers (SCMF)",
		Domain:      "Physics / polymeric systems",
		MemoryBound: false,
		VectorPct:   2.2,
		Run:         run,
	})
}

func run(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
	cfg := configFor(c)
	simSteps := o.SimSteps
	if simSteps <= 0 {
		simSteps = 2
	}
	if simSteps > cfg.steps {
		simSteps = cfg.steps
	}

	p := r.Size()
	lo, hi := bench.Split1D(cfg.polymers, p, r.ID())
	myPolymers := hi - lo
	moves := float64(myPolymers) * float64(cfg.beads)

	// The replicated field is swept locally each step (zero + accumulate)
	// in addition to the bead moves: per-rank traffic that does NOT
	// shrink with P — the replication signature.
	phase := machine.Phase{
		Name:          "mc-sweep",
		FlopsSIMD:     flopsPerMove * simdFraction * moves,
		FlopsScalar:   flopsPerMove * (1 - simdFraction) * moves,
		SIMDEff:       simdEff,
		ScalarEff:     scalarEff,
		IrregularFrac: 0.55, // random field lookups per MC trial
		BytesMem:      bytesPerMove*moves + fieldPasses*cfg.fieldBytes,
		BytesL2:       l2PerMove*moves + 2*fieldPasses*cfg.fieldBytes,
		BytesL3:       l3PerMove*moves + fieldPasses*cfg.fieldBytes,
		HeatFrac:      heatFrac,
	}

	// Real MC system: a handful of real chains per rank against a small
	// replicated grid; the global density field is genuinely allreduced.
	sys := newPolymerSystem(r.ID(), maxInt(8, myPolymers/500_000), cfg.beads, 12)

	var acceptSum, trials float64
	for step := 0; step < simSteps; step++ {
		acc, tr := sys.mcSweep()
		acceptSum += acc
		trials += tr
		r.Compute(phase)
		// Replicated density field: every rank contributes its beads and
		// receives the global field — the big Allreduce.
		sys.binDensity()
		global := r.Allreduce(sys.density, cfg.fieldBytes, mpi.OpSum)
		sys.setField(global)
	}

	// Global bead count from the final field (exact: binning conserves
	// beads, summation is integer-valued).
	totalBeads := 0.0
	for _, v := range sys.field {
		totalBeads += v
	}
	wantBeads := 0.0
	counts := r.Allreduce([]float64{float64(sys.beadCount())}, 8, mpi.OpSum)
	wantBeads = counts[0]

	rep := bench.RunReport{StepsModeled: cfg.steps, StepsSimulated: simSteps}
	if r.ID() == 0 {
		ratio := acceptSum / trials
		rep.Checks = append(rep.Checks,
			bench.Check{
				Name:  "global bead count conserved in field",
				Value: math.Abs(totalBeads - wantBeads),
				OK:    math.Abs(totalBeads-wantBeads) < 1e-6,
			},
			bench.Check{
				Name:  "MC acceptance ratio sane",
				Value: ratio,
				OK:    ratio > 0.05 && ratio < 0.995,
			})
	}
	return rep, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
