package lbm

import (
	"math"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// runLBM executes the tiny workload on n ranks of ClusterA.
func runLBM(t *testing.T, n int, steps int) (mpi.Result, bench.RunReport, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder(n, false)
	var rep bench.RunReport
	res, err := mpi.Run(mpi.Config{Cluster: machine.ClusterA(), Ranks: n, Trace: rec},
		func(r *mpi.Rank) {
			rr, err := run(r, bench.Tiny, bench.Options{SimSteps: steps})
			if err != nil {
				t.Error(err)
			}
			if r.ID() == 0 {
				rep = rr
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	return res, rep, rec
}

func TestRegistered(t *testing.T) {
	b, err := bench.Get("lbm")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 5 || b.Collective != "Barrier" || b.MemoryBound {
		t.Fatalf("lbm metadata wrong: %+v", b)
	}
}

func TestMassConservationSingleRank(t *testing.T) {
	_, rep, _ := runLBM(t, 1, 3)
	if !rep.Valid() {
		t.Fatalf("checks failed: %+v", rep.Checks)
	}
}

func TestMassConservationMultiRank(t *testing.T) {
	for _, n := range []int{2, 4, 6, 9} {
		_, rep, _ := runLBM(t, n, 3)
		if !rep.Valid() {
			t.Fatalf("n=%d checks failed: %+v", n, rep.Checks)
		}
	}
}

func TestLatticePhysicsDirect(t *testing.T) {
	l := newLattice(16, 16)
	m0 := l.mass()
	for i := 0; i < 10; i++ {
		l.applyHaloX(bench.Halo{}) // walls on all sides
		l.applyHaloY(bench.Halo{})
		l.step()
	}
	m1 := l.mass()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-12 {
		t.Fatalf("closed-box mass drift %g", rel)
	}
	if l.minDensity() <= 0 {
		t.Fatalf("negative density %v", l.minDensity())
	}
}

func TestPerturbationDecays(t *testing.T) {
	// BGK relaxation in a closed box: the density contrast must shrink.
	contrast := func(l *lattice) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for y := 0; y < l.h; y++ {
			for x := 0; x < l.w; x++ {
				id := l.idx(x, y)
				rho := 0.0
				for i := 0; i < 9; i++ {
					rho += l.f[i][id]
				}
				lo = math.Min(lo, rho)
				hi = math.Max(hi, rho)
			}
		}
		return hi - lo
	}
	l := newLattice(24, 24)
	c0 := contrast(l)
	for i := 0; i < 40; i++ {
		l.applyHaloX(bench.Halo{})
		l.applyHaloY(bench.Halo{})
		l.step()
	}
	if c1 := contrast(l); c1 >= c0 {
		t.Fatalf("perturbation grew: %v -> %v", c0, c1)
	}
}

func TestRepFactor(t *testing.T) {
	_, rep, _ := runLBM(t, 2, 3)
	if rep.StepsModeled != 600 || rep.StepsSimulated != 3 {
		t.Fatalf("steps = %d/%d, want 600/3", rep.StepsModeled, rep.StepsSimulated)
	}
	if math.Abs(rep.RepFactor()-200) > 1e-9 {
		t.Fatalf("rep factor = %v, want 200", rep.RepFactor())
	}
}

func TestVectorizationRatio(t *testing.T) {
	res, _, _ := runLBM(t, 4, 2)
	if r := res.Usage.SIMDRatio(); math.Abs(r-0.951) > 0.002 {
		t.Fatalf("SIMD ratio = %v, want ~0.951 (paper table)", r)
	}
}

func TestBarrierShowsInTrace(t *testing.T) {
	_, _, rec := runLBM(t, 8, 3)
	tot := 0.0
	for rank := 0; rank < 8; rank++ {
		tot += rec.Sum(rank, trace.KindBarrier)
	}
	if tot <= 0 {
		t.Fatal("no MPI_Barrier time recorded; lbm must barrier each step")
	}
}

func TestStragglerAt71RanksA(t *testing.T) {
	// The alignment model makes rank 70 the slow process at 71 ranks
	// (Fig. 2(h) inset) and 72 ranks fast: 71 must be slower than 72.
	res71, _, _ := runLBM(t, 71, 2)
	res72, _, _ := runLBM(t, 72, 2)
	if res71.Wall <= res72.Wall {
		t.Fatalf("71 ranks (%.4fs) not slower than 72 (%.4fs)", res71.Wall, res72.Wall)
	}
	drop := 1 - res72.Wall/res71.Wall
	if drop < 0.15 || drop > 0.45 {
		t.Fatalf("71->72 performance gap = %.0f%%, want ~25-40%% (paper: ~33%%)", drop*100)
	}
}

func TestAlignPenaltyShape(t *testing.T) {
	// 72 ranks -> 8x9 tiles of width 512: fast path.
	if p := alignPenalty(8, 9, 512, 1820); p.core != 1 {
		t.Errorf("aligned tile penalized: %+v", p)
	}
	// Strip remainder tile with even height: straggler.
	if p := alignPenalty(1, 71, 4096, 214); p.core <= 1.3 {
		t.Errorf("strip remainder tile not penalized: %+v", p)
	}
	// Odd width: uniform slowdown with extra L2 traffic.
	p := alignPenalty(5, 9, 819, 1820)
	if p.core <= 1 || p.l2Factor <= 1 {
		t.Errorf("misaligned width not penalized: %+v", p)
	}
}

func TestWorkModelIntensity(t *testing.T) {
	// lbm is non-memory-bound: arithmetic intensity well above the node
	// balance (~1.3 flop/byte on ClusterA).
	intensity := flopsPerSite / bytesPerSite
	if intensity < 2 {
		t.Fatalf("lbm intensity %.2f too low; must be clearly compute-bound", intensity)
	}
}

func TestNodePerformanceNearCalibration(t *testing.T) {
	// Full ClusterA node: ~400 Gflop/s (Fig. 1b reads ~4e5 Mflop/s).
	res, _, _ := runLBM(t, 72, 2)
	gf := res.Usage.PerfFlops() / 1e9
	if gf < 300 || gf > 500 {
		t.Fatalf("node performance = %.0f Gflop/s, want ~400 (calibration)", gf)
	}
}
