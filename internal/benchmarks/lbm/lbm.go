// Package lbm implements the 505.lbm_t / 605.lbm_s benchmark: a 2D
// lattice-Boltzmann CFD solver.
//
// The SPEChpc code is a D2Q37 model with ~6600 flops per lattice-site
// update in the collision kernel (Sect. 4.1.6 of the paper) and a strongly
// memory-bound propagate kernel. Our executable lattice is a real D2Q9
// BGK solver (verifiable physics: mass conservation, bounce-back walls)
// while the cost model charges D2Q37 rates: 37 populations of traffic and
// the full collision flop count. The paper's reported behaviours —
// per-step MPI_Barrier overhead, fluctuating performance with clear upper
// and lower envelopes, and a straggler rank at awkward process counts —
// are produced by the alignment-penalty model in penalty.go.
package lbm

import (
	"fmt"
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

// Table 1 inputs (tiny, small).
type config struct {
	nx, ny int // lattice dimensions {X, Y}
	steps  int // number of iterations
}

func configFor(c bench.Class) config {
	switch c {
	case bench.Tiny:
		return config{nx: 4096, ny: 16384, steps: 600}
	default:
		return config{nx: 12000, ny: 48000, steps: 500}
	}
}

// D2Q37 cost-model constants (per lattice-site update).
const (
	flopsPerSite   = 6600.0 // collision kernel, Sect. 4.1.6
	populations    = 37
	simdFraction   = 0.951 // paper vectorization table
	simdEff        = 0.076 // calibrated: ~400 Gflop/s on a ClusterA node
	scalarEff      = 0.30
	bytesPerSite   = populations * 8 * 4 // collide r/w + sparse propagate r/w
	l2BytesPerSite = populations * 8 * 5
	l3BytesPerSite = populations * 8 * 2.5
	heatFrac       = 0.87
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:          5,
		Name:        "lbm",
		Language:    "C",
		LOC:         9000,
		Collective:  "Barrier",
		Numerics:    "Lattice-Boltzmann Method D2Q37",
		Domain:      "2D CFD solver",
		MemoryBound: false,
		VectorPct:   95.1,
		Run:         run,
	})
}

func run(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
	cfg := configFor(c)
	simSteps := o.SimSteps
	if simSteps <= 0 {
		simSteps = 4
	}
	if simSteps > cfg.steps {
		simSteps = cfg.steps
	}
	scaleDiv := o.ScaleDiv
	if scaleDiv <= 0 {
		scaleDiv = 64
	}

	p := r.Size()
	px, py := bench.Grid2D(p)
	cart := bench.NewCart2D(r, px, py)

	// Model-scale tile (paper geometry, naive ceil split: the uneven tail
	// tile drives the straggler model).
	mx0, mx1 := bench.Split1D(cfg.nx, px, cart.X)
	my0, my1 := bench.SplitCeil1D(cfg.ny, py, cart.Y)
	mw, mh := mx1-mx0, my1-my0
	pen := alignPenalty(px, py, mw, mh)

	// Real lattice tile: model tile divided by scaleDiv, at least 4x4.
	rw, rh := max(4, mw/scaleDiv), max(4, mh/scaleDiv)
	lat := newLattice(rw, rh)
	initialMass := lat.mass()

	sites := float64(mw) * float64(mh)
	phase := machine.Phase{
		Name:        "collide+propagate",
		FlopsSIMD:   flopsPerSite * simdFraction * sites,
		FlopsScalar: flopsPerSite * (1 - simdFraction) * sites,
		SIMDEff:     simdEff,
		ScalarEff:   scalarEff,
		BytesMem:    bytesPerSite * sites,
		BytesL2:     l2BytesPerSite * sites * pen.l2Factor,
		BytesL3:     l3BytesPerSite * sites,
		CorePenalty: pen.core,
		HeatFrac:    heatFrac,
	}

	// Halo model bytes: one lattice line of all populations crossing the
	// cut (one third of the velocities point across any given face).
	modelX := float64(mh) * populations * 8 / 3
	modelY := float64(mw) * populations * 8 / 3

	globalMass0 := r.Allreduce([]float64{initialMass}, 8, mpi.OpSum)[0]

	for step := 0; step < simSteps; step++ {
		// Two-stage exchange so diagonal populations cross rank corners:
		// the Y borders are packed after the X ghosts have arrived.
		hx := cart.ExchangeX(lat.edgeW(), lat.edgeE(), 16, modelX)
		lat.applyHaloX(hx)
		hy := cart.ExchangeY(lat.edgeS(), lat.edgeN(), 20, modelY)
		lat.applyHaloY(hy)
		lat.step()
		r.Compute(phase)
		// The SPEC code synchronizes all ranks at the end of every
		// iteration; the paper notes this barrier is avoidable but
		// present (Sect. 5, "Communication routines").
		r.Barrier()
	}

	globalMass1 := r.Allreduce([]float64{lat.mass()}, 8, mpi.OpSum)[0]

	rep := bench.RunReport{StepsModeled: cfg.steps, StepsSimulated: simSteps}
	if r.ID() == 0 {
		relErr := math.Abs(globalMass1-globalMass0) / globalMass0
		rep.Checks = append(rep.Checks, bench.Check{
			Name:  "global mass conservation",
			Value: relErr,
			OK:    relErr < 1e-9,
		})
		rep.Checks = append(rep.Checks, bench.Check{
			Name:  "densities finite and positive",
			Value: lat.minDensity(),
			OK:    lat.minDensity() > 0,
		})
	}
	return rep, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// penalties bundles the alignment-model outputs for one rank's tile.
type penalties struct {
	core     float64 // multiplier on in-core time
	l2Factor float64 // multiplier on L2 traffic
}

// alignPenalty is the phenomenological data-layout model for lbm's
// fluctuating performance (Sect. 4.1.6). The paper attributes the
// fluctuations to several overlapping effects (TLB shortage from many
// concurrent SoA streams, L1 bank conflicts, unfortunate local tile
// sizes) without a complete root-cause per process count; we encode the
// two mechanisms it demonstrates:
//
//   - Straggler tiles: in full-width strip decompositions (px == 1) the
//     naive ceil-split leaves the last rank a remainder tile whose height
//     breaks the SoA page interleaving; that rank runs ~1.5x slower and
//     everybody else waits at the per-step barrier. At 71 ranks this is
//     exactly "process 70 being significantly slower" of Fig. 2(h).
//   - Width misalignment: tile widths that are not a multiple of 16
//     doubles (one 128-byte sector pair) cost extra in-core time and L2
//     traffic on every stream — a uniform slowdown with excess L2 volume,
//     the signature the paper reports at e.g. 45 and 49 processes.
//
// Counts whose decomposition yields aligned, even tiles (44, 64, 72, ...)
// run at the fast envelope.
func alignPenalty(px, py, tileW, tileH int) penalties {
	pen := penalties{core: 1, l2Factor: 1}
	if px == 1 && py >= 20 && tileH%2 == 0 {
		// Remainder strip tile with broken page interleaving.
		pen.core += 0.5
		pen.l2Factor += 0.6
	}
	if tileW%16 != 0 {
		pen.core += 0.30
		pen.l2Factor += 0.9
	}
	return pen
}

// String implements a debug display for penalties.
func (p penalties) String() string {
	return fmt.Sprintf("core x%.2f, L2 x%.2f", p.core, p.l2Factor)
}
