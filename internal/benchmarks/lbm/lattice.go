package lbm

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
)

// lattice is the executable D2Q9 BGK lattice: real populations with a
// one-cell ghost ring, pull-scheme streaming, and halfway bounce-back at
// physical (non-neighbor) boundaries. It provides the verifiable physics
// (global mass conservation, positivity) under the D2Q37 cost model.
type lattice struct {
	w, h int
	f    [9][]float64 // populations, ghost ring included
	fnew [9][]float64
	tau  float64
	// wall flags: true where there is no neighbor rank. Streaming applies
	// on-site halfway bounce-back across these sides instead of reading
	// ghost cells.
	wallW, wallE, wallS, wallN bool
}

// D2Q9 velocity set and weights.
var (
	cx = [9]int{0, 1, -1, 0, 0, 1, -1, 1, -1}
	cy = [9]int{0, 0, 0, 1, -1, 1, -1, -1, 1}
	wt = [9]float64{4.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36}
	// opposite[i] is the direction of -c_i, used by bounce-back.
	opposite = [9]int{0, 2, 1, 4, 3, 6, 5, 8, 7}
)

func newLattice(w, h int) *lattice {
	l := &lattice{w: w, h: h, tau: 0.8}
	n := (w + 2) * (h + 2)
	for i := 0; i < 9; i++ {
		l.f[i] = make([]float64, n)
		l.fnew[i] = make([]float64, n)
	}
	// Smooth density perturbation at rest: equilibrium populations.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			rho := 1.0 + 0.05*math.Sin(2*math.Pi*float64(x)/float64(w))*
				math.Cos(2*math.Pi*float64(y)/float64(h))
			for i := 0; i < 9; i++ {
				l.f[i][l.idx(x, y)] = wt[i] * rho
			}
		}
	}
	return l
}

// idx maps interior coordinates (x in [-1,w], y in [-1,h]) to the flat
// ghost-ring layout.
func (l *lattice) idx(x, y int) int { return (y+1)*(l.w+2) + (x + 1) }

// mass returns the total interior density.
func (l *lattice) mass() float64 {
	var m float64
	for y := 0; y < l.h; y++ {
		for x := 0; x < l.w; x++ {
			id := l.idx(x, y)
			for i := 0; i < 9; i++ {
				m += l.f[i][id]
			}
		}
	}
	return m
}

// minDensity returns the smallest interior density, for positivity checks.
func (l *lattice) minDensity() float64 {
	minRho := math.Inf(1)
	for y := 0; y < l.h; y++ {
		for x := 0; x < l.w; x++ {
			id := l.idx(x, y)
			rho := 0.0
			for i := 0; i < 9; i++ {
				rho += l.f[i][id]
			}
			if rho < minRho {
				minRho = rho
			}
		}
	}
	return minRho
}

// pack serializes the 9 populations of a run of cells.
func (l *lattice) pack(xs, ys, count, dx, dy int) []float64 {
	out := make([]float64, 0, 9*count)
	for k := 0; k < count; k++ {
		id := l.idx(xs+k*dx, ys+k*dy)
		for i := 0; i < 9; i++ {
			out = append(out, l.f[i][id])
		}
	}
	return out
}

// unpack writes serialized populations into a run of (ghost) cells.
func (l *lattice) unpack(data []float64, xs, ys, dx, dy int) {
	for k := 0; k*9+8 < len(data); k++ {
		id := l.idx(xs+k*dx, ys+k*dy)
		for i := 0; i < 9; i++ {
			l.f[i][id] = data[k*9+i]
		}
	}
}

// Edge payloads: full population sets of the boundary layer. The X
// exchange sends interior columns; the Y exchange sends full rows
// including the just-filled ghost corners, so diagonal streams cross rank
// corners correctly.
func (l *lattice) edgeW() []float64 { return l.pack(0, 0, l.h, 0, 1) }
func (l *lattice) edgeE() []float64 { return l.pack(l.w-1, 0, l.h, 0, 1) }
func (l *lattice) edgeS() []float64 { return l.pack(-1, 0, l.w+2, 1, 0) }
func (l *lattice) edgeN() []float64 { return l.pack(-1, l.h-1, l.w+2, 1, 0) }

// applyHaloX fills the ghost columns from neighbor payloads; missing
// neighbors get halfway bounce-back ghosts (reflected edge populations).
// applyHaloX fills the ghost columns from neighbor payloads and records
// wall sides (no neighbor): streaming bounces back across walls on-site.
func (l *lattice) applyHaloX(h bench.Halo) {
	l.wallW = h.FromWest == nil
	l.wallE = h.FromEast == nil
	if !l.wallW {
		l.unpack(h.FromWest, -1, 0, 0, 1)
	}
	if !l.wallE {
		l.unpack(h.FromEast, l.w, 0, 0, 1)
	}
}

// applyHaloY fills the ghost rows (including corners, since Y payloads
// span the ghost columns filled by the preceding X exchange).
func (l *lattice) applyHaloY(h bench.Halo) {
	l.wallS = h.FromSouth == nil
	l.wallN = h.FromNorth == nil
	if !l.wallS {
		l.unpack(h.FromSouth, -1, -1, 1, 0)
	}
	if !l.wallN {
		l.unpack(h.FromNorth, -1, l.h, 1, 0)
	}
}

// wallCrossed reports whether a pull from source (sx, sy) crosses a wall
// side of the tile.
func (l *lattice) wallCrossed(sx, sy int) bool {
	return (sx < 0 && l.wallW) || (sx >= l.w && l.wallE) ||
		(sy < 0 && l.wallS) || (sy >= l.h && l.wallN)
}

// step performs one pull-stream + BGK collision over the interior. Pulls
// whose source lies across a wall use on-site halfway bounce-back
// (f_i(x,t+1) = f_opp(i)(x,t)), which conserves mass exactly; pulls from
// neighbor ranks read the ghost ring filled by the halo exchange.
func (l *lattice) step() {
	for y := 0; y < l.h; y++ {
		for x := 0; x < l.w; x++ {
			id := l.idx(x, y)
			var rho, ux, uy float64
			var fin [9]float64
			for i := 0; i < 9; i++ {
				sx, sy := x-cx[i], y-cy[i]
				var v float64
				if l.wallCrossed(sx, sy) {
					v = l.f[opposite[i]][id]
				} else {
					v = l.f[i][l.idx(sx, sy)]
				}
				fin[i] = v
				rho += v
				ux += v * float64(cx[i])
				uy += v * float64(cy[i])
			}
			ux /= rho
			uy /= rho
			usq := ux*ux + uy*uy
			for i := 0; i < 9; i++ {
				cu := float64(cx[i])*ux + float64(cy[i])*uy
				feq := wt[i] * rho * (1 + 3*cu + 4.5*cu*cu - 1.5*usq)
				l.fnew[i][id] = fin[i] - (fin[i]-feq)/l.tau
			}
		}
	}
	l.f, l.fnew = l.fnew, l.f
}
