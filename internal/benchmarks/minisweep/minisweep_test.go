package minisweep

import (
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

func runSweep(t *testing.T, n int) (mpi.Result, bench.RunReport, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder(n, false)
	var rep bench.RunReport
	res, err := mpi.Run(mpi.Config{Cluster: machine.ClusterA(), Ranks: n, Trace: rec},
		func(r *mpi.Rank) {
			rr, err := run(r, bench.Tiny, bench.Options{SimSteps: 1})
			if err != nil {
				t.Error(err)
			}
			if r.ID() == 0 {
				rep = rr
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	return res, rep, rec
}

func TestRegistered(t *testing.T) {
	b, err := bench.Get("minisweep")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 21 || b.Collective != "-" || b.MemoryBound {
		t.Fatalf("minisweep metadata wrong: %+v", b)
	}
}

func TestFluxInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		_, rep, _ := runSweep(t, n)
		if !rep.Valid() {
			t.Fatalf("n=%d: %+v", n, rep.Checks)
		}
	}
}

func TestSweepDirectionality(t *testing.T) {
	// With vacuum inflow and a positive source, the flux must grow along
	// the sweep direction (upwind accumulates source).
	s := newSweeper(8, 8, 8, 1, 1)
	s.sweepBlock(0, nil, nil) // +x +y +z octant
	first := s.psi[s.idx(0, 0, 0, 0, 0)]
	last := s.psi[s.idx(0, 0, 7, 7, 7)]
	if last <= first {
		t.Fatalf("flux did not grow along sweep: %v -> %v", first, last)
	}
}

func TestFaceContinuity(t *testing.T) {
	// Feeding a block's outgoing face into another sweeper must give a
	// higher flux than vacuum inflow (transport across the interface).
	a := newSweeper(6, 6, 6, 2, 2)
	outX, _ := a.sweepBlock(0, nil, nil)
	b := newSweeper(6, 6, 6, 2, 2)
	b.sweepBlock(0, outX, nil)
	vac := newSweeper(6, 6, 6, 2, 2)
	vac.sweepBlock(0, nil, nil)
	_, hiB := b.fluxBounds()
	_, hiVac := vac.fluxBounds()
	if hiB <= hiVac {
		t.Fatalf("incoming face did not raise flux: %v vs %v", hiB, hiVac)
	}
}

func TestSerializationAtPrimeCounts(t *testing.T) {
	// The paper's Sect. 4.1.5: at 59 ranks (1x59 chain) the rendezvous
	// sweep serializes and most time goes to MPI_Recv; 58 ranks (2x29) is
	// far better. Performance per rank must drop sharply from 58 to 59.
	res58, _, _ := runSweep(t, 58)
	res59, _, rec59 := runSweep(t, 59)
	slowdown := res59.Wall / res58.Wall
	if slowdown < 1.5 {
		t.Fatalf("59-rank chain only %.2fx slower than 58: serialization missing", slowdown)
	}
	recvFrac := rec59.GlobalFraction(trace.KindRecv)
	if recvFrac < 0.4 {
		t.Fatalf("MPI_Recv fraction at 59 ranks = %.0f%%, want dominant (paper: 75%%)", recvFrac*100)
	}
}

func TestPipelineEfficiencyReasonable(t *testing.T) {
	// With a well-factorable count the sweep pipeline must not serialize:
	// MPI fraction at 16 ranks (4x4) stays moderate.
	_, _, rec := runSweep(t, 16)
	if f := rec.MPIFraction(); f > 0.6 {
		t.Fatalf("MPI fraction at 16 ranks = %.0f%%, pipeline broken", f*100)
	}
}

func TestVectorizationRatio(t *testing.T) {
	res, _, _ := runSweep(t, 4)
	r := res.Usage.SIMDRatio()
	if r < 0.87 || r > 0.91 {
		t.Fatalf("SIMD ratio = %.3f, want ~0.891", r)
	}
}
