package minisweep

import "math"

// sweeper holds the real (scaled-down) discrete-ordinates state of one
// rank: angular flux psi over a local block for a few angles and energy
// groups, with an isotropic source and absorption. A single sweep from
// vacuum inflow is bounded by q/sigma — the validation invariant.
type sweeper struct {
	w, h, d     int
	na, ng      int
	sigma       float64
	q           float64
	mu, eta, xi []float64 // per-angle direction cosines (positive)
	psi         []float64 // [g][a][z][y][x] flattened
	// outX, outY are reusable downwind-face scratch buffers: sweepBlock
	// overwrites them fully and the caller hands them straight to Isend,
	// which copies, so one pair per sweeper suffices.
	outX, outY []float64
}

func newSweeper(w, h, d, na, ng int) *sweeper {
	s := &sweeper{w: w, h: h, d: d, na: na, ng: ng, sigma: 1.0, q: 1.0}
	s.mu = make([]float64, na)
	s.eta = make([]float64, na)
	s.xi = make([]float64, na)
	for a := 0; a < na; a++ {
		// Deterministic positive direction cosines.
		s.mu[a] = 0.3 + 0.5*float64(a)/float64(na)
		s.eta[a] = 0.25 + 0.4*float64(a)/float64(na)
		s.xi[a] = 0.2 + 0.3*float64(a)/float64(na)
	}
	s.psi = make([]float64, ng*na*d*h*w)
	s.outX = make([]float64, s.faceXLen())
	s.outY = make([]float64, s.faceYLen())
	return s
}

func (s *sweeper) idx(g, a, z, y, x int) int {
	return (((g*s.na+a)*s.d+z)*s.h+y)*s.w + x
}

// faceXLen and faceYLen are the real payload lengths of downwind faces.
func (s *sweeper) faceXLen() int { return s.ng * s.na * s.d * s.h }
func (s *sweeper) faceYLen() int { return s.ng * s.na * s.d * s.w }

// sweepBlock performs one upwind sweep of the whole local block in the
// direction of octant oct, using incoming x/y faces (nil = vacuum) and
// returning the outgoing downwind faces.
func (s *sweeper) sweepBlock(oct int, inX, inY []float64) (outX, outY []float64) {
	sx, sy := octantDir(oct)
	sz := 1
	if oct&4 != 0 {
		sz = -1
	}
	xs, xe := sweepRange(s.w, sx)
	ys, ye := sweepRange(s.h, sy)
	zs, ze := sweepRange(s.d, sz)

	faceAt := func(face []float64, i int) float64 {
		if face == nil || i >= len(face) {
			return 0 // vacuum / size-mismatch tolerance
		}
		return face[i]
	}

	outX, outY = s.outX, s.outY
	// Strides of the flattened [g][a][z][y][x] layout: moving one cell in
	// y is w, in z is h*w; the upwind neighbors at i are i-sx, i-sy*w,
	// and i-sz*h*w. Running row indices replace the 5-term idx() products
	// in the innermost loop; the update expression is unchanged.
	yStride := s.w
	zStride := s.h * s.w
	for g := 0; g < s.ng; g++ {
		for a := 0; a < s.na; a++ {
			mu, eta, xi := s.mu[a], s.eta[a], s.xi[a]
			denom := mu + eta + xi + s.sigma
			plane := (g*s.na + a) * s.d
			for z := zs; z != ze; z += sz {
				faceYbase := (plane + z) * s.w
				for y := ys; y != ye; y += sy {
					row := ((plane+z)*s.h + y) * s.w
					faceX := (plane+z)*s.h + y
					for x := xs; x != xe; x += sx {
						i := row + x
						var px, py, pz float64
						if x == xs {
							px = faceAt(inX, faceX)
						} else {
							px = s.psi[i-sx]
						}
						if y == ys {
							py = faceAt(inY, faceYbase+x)
						} else {
							py = s.psi[i-sy*yStride]
						}
						if z != zs {
							pz = s.psi[i-sz*zStride]
						}
						s.psi[i] = (s.q + mu*px + eta*py + xi*pz) / denom
					}
				}
			}
		}
	}
	// Pack downwind faces (the last computed x and y layers).
	lastX := xe - sx
	lastY := ye - sy
	for g := 0; g < s.ng; g++ {
		for a := 0; a < s.na; a++ {
			for z := 0; z < s.d; z++ {
				for y := 0; y < s.h; y++ {
					outX[((g*s.na+a)*s.d+z)*s.h+y] = s.psi[s.idx(g, a, z, y, lastX)]
				}
				for x := 0; x < s.w; x++ {
					outY[((g*s.na+a)*s.d+z)*s.w+x] = s.psi[s.idx(g, a, z, lastY, x)]
				}
			}
		}
	}
	return outX, outY
}

// sweepRange returns the start and (exclusive) end indices for a sweep of
// extent n in direction dir.
func sweepRange(n, dir int) (start, end int) {
	if dir > 0 {
		return 0, n
	}
	return n - 1, -1
}

// fluxBounds returns the minimum and maximum angular flux.
func (s *sweeper) fluxBounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range s.psi {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// sourceBound returns q/sigma, the supremum of the flux reachable from
// vacuum inflow.
func (s *sweeper) sourceBound() float64 { return s.q / s.sigma }
