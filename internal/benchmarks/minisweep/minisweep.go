// Package minisweep implements the 521.miniswp_t / 621.miniswp_s
// benchmark: a discrete-ordinates radiation-transport sweep (successor of
// Sweep3D) with Koch-Baker-Alcouffe (KBA) pipelining over z-blocks.
//
// The communication structure is the point of this kernel: ranks form a
// 2D (x,y) process grid, and for every octant and z-block each rank
// receives upwind faces, sweeps the block, and passes downwind faces on
// with *blocking rendezvous sends* (the messages are large). With open
// boundary conditions only the most-downwind rank can proceed freely, so
// transfers resolve serially down the chain — the paper's Sect. 4.1.5
// serialization bug, which makes prime rank counts (1 x P chains) lose up
// to 75% of their performance to MPI_Recv waiting. No penalty model is
// involved: the behaviour emerges from the protocol.
package minisweep

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

type config struct {
	nx, ny, nz int
	groups     int // energy groups
	angles     int // angles per octant
	nblock     int // z-blocks tiling the Z dimension
	iters      int // sweep iterations
}

func configFor(c bench.Class) config {
	switch c {
	case bench.Tiny:
		return config{nx: 96, ny: 64, nz: 64, groups: 64, angles: 32, nblock: 8, iters: 40}
	default:
		return config{nx: 128, ny: 64, nz: 64, groups: 64, angles: 32, nblock: 8, iters: 80}
	}
}

const (
	flopsPerUpdate = 36.0
	simdFraction   = 0.891
	simdEff        = 0.10
	scalarEff      = 0.35
	bytesPerUpdate = 26.0
	l2PerUpdate    = 40.0
	l3PerUpdate    = 18.0
	heatFrac       = 0.92
	octants        = 8
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:          21,
		Name:        "minisweep",
		Language:    "C",
		LOC:         17500,
		Collective:  "-",
		Numerics:    "Discrete-ordinates KBA sweep (Sweep3D successor)",
		Domain:      "Radiation transport in nuclear engineering",
		MemoryBound: false,
		VectorPct:   89.1,
		Run:         run,
	})
}

func run(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
	cfg := configFor(c)
	simIters := o.SimSteps
	if simIters <= 0 {
		simIters = 1
	}
	if simIters > cfg.iters {
		simIters = cfg.iters
	}

	p := r.Size()
	px, py, _ := bench.Grid2DDividing(p, cfg.nx, cfg.ny)
	cart := bench.NewCart2D(r, px, py)

	mx0, mx1 := bench.Split1D(cfg.nx, px, cart.X)
	my0, my1 := bench.Split1D(cfg.ny, py, cart.Y)
	mw, mh := mx1-mx0, my1-my0
	zPerBlock := cfg.nz / cfg.nblock

	// Modeled work per (octant, z-block): every local cell of the block
	// updated for all angles and groups.
	updates := float64(mw) * float64(mh) * float64(zPerBlock) *
		float64(cfg.groups) * float64(cfg.angles)
	blockPhase := machine.Phase{
		Name:          "sweep-block",
		FlopsSIMD:     flopsPerUpdate * simdFraction * updates,
		FlopsScalar:   flopsPerUpdate * (1 - simdFraction) * updates,
		SIMDEff:       simdEff,
		ScalarEff:     scalarEff,
		IrregularFrac: 0.5, // upwind dependencies limit regular streaming
		BytesMem:      bytesPerUpdate * updates,
		BytesL2:       l2PerUpdate * updates,
		BytesL3:       l3PerUpdate * updates,
		HeatFrac:      heatFrac,
	}

	// Model face-message sizes: the downwind face of a block carries one
	// value per boundary cell, angle, and group.
	modelFaceY := float64(mw) * float64(zPerBlock) * float64(cfg.angles) * float64(cfg.groups) * 8
	modelFaceX := float64(mh) * float64(zPerBlock) * float64(cfg.angles) * float64(cfg.groups) * 8

	// Real sweep state (small): a scaled local block with a few angles
	// and groups, enough to validate transport physics.
	sw := newSweeper(maxInt(4, mw/8), maxInt(4, mh/8), maxInt(4, zPerBlock), 2, 2)

	// Octants are processed in the real code's fashion: one pair of
	// opposite-direction octants in flight at a time, their z-blocks
	// interleaving as upwind faces arrive. Opposite directions let the
	// two pipeline fills overlap (the rank draining one wavefront seeds
	// the other), which keeps well-factorable counts efficient. The data
	// dependency still serializes long chains: a 1xP decomposition at
	// prime rank counts degenerates every pair into a P-deep pipeline
	// and MPI receive waiting dominates — the Sect. 4.1.5 pathology.
	octantPairs := [4][2]int{{0, 3}, {1, 2}, {4, 7}, {5, 6}}
	for iter := 0; iter < simIters; iter++ {
		var sends []*mpi.Request
		for _, pair := range octantPairs {
			states := make([]*octState, 0, 2)
			for _, oct := range pair {
				sx, sy := octantDir(oct)
				st := &octState{
					oct:   oct,
					upX:   cart.Rank(cart.X-sx, cart.Y),
					downX: cart.Rank(cart.X+sx, cart.Y),
					upY:   cart.Rank(cart.X, cart.Y-sy),
					downY: cart.Rank(cart.X, cart.Y+sy),
				}
				states = append(states, st)
				st.postRecvs(r)
			}
			remaining := len(states)
			for remaining > 0 {
				st := pickReady(states, cfg.nblock)
				if st == nil {
					// Nothing computable: wait for any outstanding inflow.
					var waitset []*mpi.Request
					for _, s := range states {
						if s.next < cfg.nblock {
							if s.rqX != nil && !s.rqX.Done() {
								waitset = append(waitset, s.rqX)
							}
							if s.rqY != nil && !s.rqY.Done() {
								waitset = append(waitset, s.rqY)
							}
						}
					}
					r.Waitany(waitset)
					continue
				}
				var inX, inY []float64
				if st.rqX != nil {
					inX = st.rqX.Message().Data
				}
				if st.rqY != nil {
					inY = st.rqY.Message().Data
				}
				outX, outY := sw.sweepBlock(st.oct, inX, inY)
				r.Compute(blockPhase)
				tag := 80 + st.oct
				if st.downX >= 0 {
					sends = append(sends, r.Isend(st.downX, tag, outX, modelFaceX))
				}
				if st.downY >= 0 {
					sends = append(sends, r.Isend(st.downY, tag+8, outY, modelFaceY))
				}
				st.next++
				if st.next < cfg.nblock {
					st.postRecvs(r)
				} else {
					remaining--
				}
			}
		}
		r.Waitall(sends)
	}

	rep := bench.RunReport{StepsModeled: cfg.iters, StepsSimulated: simIters}
	if r.ID() == 0 {
		lo, hi := sw.fluxBounds()
		bound := sw.sourceBound()
		rep.Checks = append(rep.Checks,
			bench.Check{Name: "flux positive", Value: lo, OK: lo >= 0},
			bench.Check{
				Name:  "flux bounded by source/sigma",
				Value: hi / bound,
				OK:    hi <= bound*(1+1e-12) && !math.IsNaN(hi),
			})
	}
	return rep, nil
}

// octState tracks one octant's sweep progress: its up/downwind neighbors,
// the next z-block to compute, and the posted inflow receives.
type octState struct {
	oct                    int
	upX, upY, downX, downY int
	next                   int // next block to sweep
	rqX, rqY               *mpi.Request
}

// postRecvs posts the upwind-face receives for the octant's next block
// (open boundaries leave the request nil: vacuum inflow).
func (st *octState) postRecvs(r *mpi.Rank) {
	tag := 80 + st.oct
	st.rqX, st.rqY = nil, nil
	if st.upX >= 0 {
		st.rqX = r.Irecv(st.upX, tag)
	}
	if st.upY >= 0 {
		st.rqY = r.Irecv(st.upY, tag+8)
	}
}

// pickReady returns an octant whose next block's inflows have arrived,
// or nil if none is computable right now.
func pickReady(states []*octState, nblock int) *octState {
	for _, st := range states {
		if st.next >= nblock {
			continue
		}
		if (st.rqX == nil || st.rqX.Done()) && (st.rqY == nil || st.rqY.Done()) {
			return st
		}
	}
	return nil
}

// octantDir maps an octant index to the sweep direction signs in x and y
// (z direction is folded into the block loop order).
func octantDir(oct int) (sx, sy int) {
	sx, sy = 1, 1
	if oct&1 != 0 {
		sx = -1
	}
	if oct&2 != 0 {
		sy = -1
	}
	return sx, sy
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
