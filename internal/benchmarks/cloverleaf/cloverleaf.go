// Package cloverleaf implements the 519.clvleaf_t / 619.clvleaf_s
// benchmark: compressible Euler equations on a 2D Cartesian grid with an
// explicit method.
//
// The paper classifies cloverleaf as memory-bound and fully vectorized
// (100%). The executable physics here is a conservative finite-volume
// Euler solver with Rusanov fluxes and reflective walls (exactly
// conserving mass and energy in a closed box), while the cost model
// charges the original code's streaming footprint: ~15 field arrays swept
// multiple times per step. Every step ends in the global timestep
// reduction (MPI_Allreduce on dt) that the paper lists among cloverleaf's
// collectives.
package cloverleaf

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

type config struct {
	nx, ny int
	steps  int
}

func configFor(c bench.Class) config {
	switch c {
	case bench.Tiny:
		return config{nx: 15360, ny: 15360, steps: 400}
	default:
		return config{nx: 61440, ny: 30720, steps: 500}
	}
}

// Cost-model constants per cell per step.
const (
	flopsPerCell   = 160.0
	simdFraction   = 1.0 // paper: 100% vectorized
	simdEff        = 0.16
	bytesPerCell   = 370.0 // ~15 arrays, several sweeps
	l2BytesPerCell = 560.0
	l3BytesPerCell = 460.0
	hotArrays      = 4
	cacheableFrac  = 0.25
	heatFrac       = 0.78
	exchangesStep  = 4 // halo'd field groups per hydro cycle
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:          19,
		Name:        "cloverleaf",
		Language:    "Fortran",
		LOC:         12500,
		Collective:  "Allreduce",
		Numerics:    "Compressible Euler, 2D Cartesian, explicit 2nd order",
		Domain:      "Physics / high energy physics",
		MemoryBound: true,
		VectorPct:   100,
		Run:         run,
	})
}

func run(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
	cfg := configFor(c)
	simSteps := o.SimSteps
	if simSteps <= 0 {
		simSteps = 4
	}
	if simSteps > cfg.steps {
		simSteps = cfg.steps
	}
	scaleDiv := o.ScaleDiv
	if scaleDiv <= 0 {
		scaleDiv = 96
	}

	p := r.Size()
	px, py := bench.Grid2D(p)
	cart := bench.NewCart2D(r, px, py)
	mx0, mx1 := bench.Split1D(cfg.nx, px, cart.X)
	my0, my1 := bench.Split1D(cfg.ny, py, cart.Y)
	mw, mh := mx1-mx0, my1-my0
	cells := float64(mw) * float64(mh)

	ws := cells * 8 * hotArrays
	spill := machine.CacheFit(ws, bench.CachePerRank(r.Cluster(), p, r.ID()))
	memFactor := (1 - cacheableFrac) + cacheableFrac*spill

	phase := machine.Phase{
		Name:      "hydro-cycle",
		FlopsSIMD: flopsPerCell * simdFraction * cells,
		SIMDEff:   simdEff,
		BytesMem:  bytesPerCell * cells * memFactor,
		BytesL2:   l2BytesPerCell * cells,
		BytesL3:   l3BytesPerCell * cells,
		HeatFrac:  heatFrac,
	}

	rw, rh := maxInt(6, mw/scaleDiv), maxInt(6, mh/scaleDiv)
	hy := newHydro(rw, rh, cart)
	mass0, energy0 := hy.totals(r)

	// Model halo payloads: one boundary line of one field, sent for each
	// of the exchanged field groups.
	modelX := bench.DoubleBytes(mh) * exchangesStep
	modelY := bench.DoubleBytes(mw) * exchangesStep

	for step := 0; step < simSteps; step++ {
		hy.step(r, modelX, modelY)
		r.Compute(phase)
	}

	mass1, energy1 := hy.totals(r)
	rep := bench.RunReport{StepsModeled: cfg.steps, StepsSimulated: simSteps}
	if r.ID() == 0 {
		dm := math.Abs(mass1-mass0) / mass0
		de := math.Abs(energy1-energy0) / energy0
		rep.Checks = append(rep.Checks,
			bench.Check{Name: "global mass conservation", Value: dm, OK: dm < 1e-9},
			bench.Check{Name: "global energy conservation", Value: de, OK: de < 1e-9},
			bench.Check{Name: "density positive", Value: hy.minDensity(), OK: hy.minDensity() > 0},
		)
	}
	return rep, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
