package cloverleaf

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

// Conserved variable indices.
const (
	qRho = iota // density
	qMx         // x momentum
	qMy         // y momentum
	qE          // total energy density
	nq
)

const gamma = 1.4

// hydro is a real conservative finite-volume solver for the 2D Euler
// equations with Rusanov fluxes and reflective walls. Face fluxes are
// computed identically on both sides of rank boundaries (from halo data),
// so mass and energy are conserved exactly across the whole job.
type hydro struct {
	w, h   int
	cart   *bench.Cart2D
	q      [nq][]float64 // ghost ring included
	qn     [nq][]float64
	dx, dy float64
}

func newHydro(w, h int, cart *bench.Cart2D) *hydro {
	hy := &hydro{w: w, h: h, cart: cart, dx: 1, dy: 1}
	n := (w + 2) * (h + 2)
	for k := 0; k < nq; k++ {
		hy.q[k] = make([]float64, n)
		hy.qn[k] = make([]float64, n)
	}
	// Two ideal-gas states as in Table 1: ambient (rho=0.2, e=1) with a
	// dense energetic region (rho=1, e=2.5) in the lower-left quadrant of
	// the global domain.
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			gx := (float64(cart.X) + (float64(i)+0.5)/float64(w)) / float64(cart.PX)
			gy := (float64(cart.Y) + (float64(j)+0.5)/float64(h)) / float64(cart.PY)
			rho, e := 0.2, 1.0
			if gx < 0.25 && gy < 0.25 {
				rho, e = 1.0, 2.5
			}
			id := hy.idx(i, j)
			hy.q[qRho][id] = rho
			hy.q[qE][id] = rho * e // at rest: E = rho * e
		}
	}
	return hy
}

func (hy *hydro) idx(i, j int) int { return (j+1)*(hy.w+2) + (i + 1) }

// pressure returns the ideal-gas pressure of the conserved state at id.
func (hy *hydro) pressure(id int) float64 {
	rho := hy.q[qRho][id]
	u := hy.q[qMx][id] / rho
	v := hy.q[qMy][id] / rho
	return (gamma - 1) * (hy.q[qE][id] - 0.5*rho*(u*u+v*v))
}

// soundSpeed returns the local speed of sound.
func (hy *hydro) soundSpeed(id int) float64 {
	return math.Sqrt(gamma * math.Max(hy.pressure(id), 1e-12) / hy.q[qRho][id])
}

// exchange refreshes ghost cells for all conserved fields; reflective
// walls mirror the edge cell with the normal momentum negated.
func (hy *hydro) exchange(r *mpi.Rank, modelX, modelY float64) {
	pack := func(i0, j0, count, di, dj int) []float64 {
		out := make([]float64, 0, nq*count)
		for k := 0; k < count; k++ {
			id := hy.idx(i0+k*di, j0+k*dj)
			for f := 0; f < nq; f++ {
				out = append(out, hy.q[f][id])
			}
		}
		return out
	}
	unpack := func(data []float64, i0, j0, di, dj int) {
		for k := 0; k*nq+nq-1 < len(data); k++ {
			id := hy.idx(i0+k*di, j0+k*dj)
			for f := 0; f < nq; f++ {
				hy.q[f][id] = data[k*nq+f]
			}
		}
	}
	halo := hy.cart.Exchange(bench.HaloSpec{
		Tag:         60,
		West:        pack(0, 0, hy.h, 0, 1),
		East:        pack(hy.w-1, 0, hy.h, 0, 1),
		South:       pack(0, 0, hy.w, 1, 0),
		North:       pack(0, hy.h-1, hy.w, 1, 0),
		ModelBytesX: modelX,
		ModelBytesY: modelY,
	})
	if halo.FromWest != nil {
		unpack(halo.FromWest, -1, 0, 0, 1)
	} else {
		hy.mirrorColumn(0, -1, qMx)
	}
	if halo.FromEast != nil {
		unpack(halo.FromEast, hy.w, 0, 0, 1)
	} else {
		hy.mirrorColumn(hy.w-1, hy.w, qMx)
	}
	if halo.FromSouth != nil {
		unpack(halo.FromSouth, 0, -1, 1, 0)
	} else {
		hy.mirrorRow(0, -1, qMy)
	}
	if halo.FromNorth != nil {
		unpack(halo.FromNorth, 0, hy.h, 1, 0)
	} else {
		hy.mirrorRow(hy.h-1, hy.h, qMy)
	}
}

func (hy *hydro) mirrorColumn(edgeX, ghostX, flipField int) {
	for j := 0; j < hy.h; j++ {
		src, dst := hy.idx(edgeX, j), hy.idx(ghostX, j)
		for f := 0; f < nq; f++ {
			v := hy.q[f][src]
			if f == flipField {
				v = -v
			}
			hy.q[f][dst] = v
		}
	}
}

func (hy *hydro) mirrorRow(edgeY, ghostY, flipField int) {
	for i := 0; i < hy.w; i++ {
		src, dst := hy.idx(i, edgeY), hy.idx(i, ghostY)
		for f := 0; f < nq; f++ {
			v := hy.q[f][src]
			if f == flipField {
				v = -v
			}
			hy.q[f][dst] = v
		}
	}
}

// flux computes the Rusanov numerical flux between cells l and r along
// axis (0 = x, 1 = y), writing the nq components into out.
func (hy *hydro) flux(l, r int, axis int, out *[nq]float64) {
	var fl, fr [nq]float64
	hy.physFlux(l, axis, &fl)
	hy.physFlux(r, axis, &fr)
	mom := qMx + axis
	ul := hy.q[mom][l] / hy.q[qRho][l]
	ur := hy.q[mom][r] / hy.q[qRho][r]
	smax := math.Max(math.Abs(ul)+hy.soundSpeed(l), math.Abs(ur)+hy.soundSpeed(r))
	for f := 0; f < nq; f++ {
		out[f] = 0.5*(fl[f]+fr[f]) - 0.5*smax*(hy.q[f][r]-hy.q[f][l])
	}
}

// physFlux evaluates the physical Euler flux of the cell state.
func (hy *hydro) physFlux(id, axis int, out *[nq]float64) {
	rho := hy.q[qRho][id]
	u := hy.q[qMx][id] / rho
	v := hy.q[qMy][id] / rho
	p := hy.pressure(id)
	e := hy.q[qE][id]
	if axis == 0 {
		out[qRho] = rho * u
		out[qMx] = rho*u*u + p
		out[qMy] = rho * u * v
		out[qE] = u * (e + p)
	} else {
		out[qRho] = rho * v
		out[qMx] = rho * u * v
		out[qMy] = rho*v*v + p
		out[qE] = v * (e + p)
	}
}

// step advances one explicit hydro cycle: ghost refresh, global CFL
// timestep (MPI_Allreduce MIN), and a conservative flux update.
func (hy *hydro) step(r *mpi.Rank, modelX, modelY float64) {
	hy.exchange(r, modelX, modelY)

	// Local CFL limit, then the global reduction the benchmark performs.
	local := math.Inf(1)
	for j := 0; j < hy.h; j++ {
		for i := 0; i < hy.w; i++ {
			id := hy.idx(i, j)
			rho := hy.q[qRho][id]
			u := math.Abs(hy.q[qMx][id] / rho)
			v := math.Abs(hy.q[qMy][id] / rho)
			c := hy.soundSpeed(id)
			local = math.Min(local, math.Min(hy.dx/(u+c), hy.dy/(v+c)))
		}
	}
	dt := 0.3 * r.Allreduce([]float64{local}, 8, mpi.OpMin)[0]

	var fw, fe, fs, fn [nq]float64
	for j := 0; j < hy.h; j++ {
		for i := 0; i < hy.w; i++ {
			id := hy.idx(i, j)
			hy.flux(hy.idx(i-1, j), id, 0, &fw)
			hy.flux(id, hy.idx(i+1, j), 0, &fe)
			hy.flux(hy.idx(i, j-1), id, 1, &fs)
			hy.flux(id, hy.idx(i, j+1), 1, &fn)
			for f := 0; f < nq; f++ {
				hy.qn[f][id] = hy.q[f][id] -
					dt/hy.dx*(fe[f]-fw[f]) -
					dt/hy.dy*(fn[f]-fs[f])
			}
		}
	}
	for f := 0; f < nq; f++ {
		hy.q[f], hy.qn[f] = hy.qn[f], hy.q[f]
	}
}

// totals returns global (mass, energy) via a real reduction.
func (hy *hydro) totals(r *mpi.Rank) (mass, energy float64) {
	var m, e float64
	for j := 0; j < hy.h; j++ {
		for i := 0; i < hy.w; i++ {
			id := hy.idx(i, j)
			m += hy.q[qRho][id]
			e += hy.q[qE][id]
		}
	}
	out := r.Allreduce([]float64{m, e}, 16, mpi.OpSum)
	return out[0], out[1]
}

// minDensity returns the local minimum density (positivity check).
func (hy *hydro) minDensity() float64 {
	lo := math.Inf(1)
	for j := 0; j < hy.h; j++ {
		for i := 0; i < hy.w; i++ {
			lo = math.Min(lo, hy.q[qRho][hy.idx(i, j)])
		}
	}
	return lo
}
