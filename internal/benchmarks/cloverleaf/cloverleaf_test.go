package cloverleaf

import (
	"math"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/trace"
	"github.com/spechpc/spechpc-sim/internal/units"
)

func runClover(t *testing.T, cs *machine.ClusterSpec, n, steps int) (mpi.Result, bench.RunReport) {
	t.Helper()
	var rep bench.RunReport
	res, err := mpi.Run(mpi.Config{Cluster: cs, Ranks: n, Trace: trace.NewRecorder(n, false)},
		func(r *mpi.Rank) {
			rr, err := run(r, bench.Tiny, bench.Options{SimSteps: steps})
			if err != nil {
				t.Error(err)
			}
			if r.ID() == 0 {
				rep = rr
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	return res, rep
}

func TestRegistered(t *testing.T) {
	b, err := bench.Get("cloverleaf")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 19 || !b.MemoryBound || b.VectorPct != 100 {
		t.Fatalf("cloverleaf metadata wrong: %+v", b)
	}
}

func TestConservationAcrossDecompositions(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 9} {
		_, rep := runClover(t, machine.ClusterA(), n, 4)
		if !rep.Valid() {
			t.Fatalf("n=%d: %+v", n, rep.Checks)
		}
	}
}

func TestShockPropagates(t *testing.T) {
	// The energetic quadrant must set the gas in motion: kinetic energy
	// appears after a few steps.
	var kinetic float64
	_, err := mpi.Run(mpi.Config{Cluster: machine.ClusterA(), Ranks: 1}, func(r *mpi.Rank) {
		hy := newHydro(32, 32, bench.NewCart2D(r, 1, 1))
		for s := 0; s < 8; s++ {
			hy.step(r, 8, 8)
		}
		for j := 0; j < hy.h; j++ {
			for i := 0; i < hy.w; i++ {
				id := hy.idx(i, j)
				rho := hy.q[qRho][id]
				kinetic += (hy.q[qMx][id]*hy.q[qMx][id] + hy.q[qMy][id]*hy.q[qMy][id]) / (2 * rho)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if kinetic <= 0 {
		t.Fatal("no kinetic energy developed; shock did not propagate")
	}
}

func TestFullyVectorized(t *testing.T) {
	res, _ := runClover(t, machine.ClusterA(), 4, 3)
	if r := res.Usage.SIMDRatio(); r < 0.999 {
		t.Fatalf("SIMD ratio = %v, want 1.0 (paper: 100%%)", r)
	}
}

func TestMemoryBandwidthSaturation(t *testing.T) {
	res, _ := runClover(t, machine.ClusterA(), 18, 3)
	if bw := res.Usage.MemBandwidth(); bw < 70*units.G {
		t.Fatalf("domain bandwidth = %s, want near 76.5 GB/s", units.Bandwidth(bw))
	}
}

func TestNodePerformanceCalibration(t *testing.T) {
	// Paper Sect. 5.1.3: cloverleaf single-node baseline ~160 Gflop/s on
	// ClusterA, ~250 on ClusterB (ratio 1.57 in the acceleration table).
	resA, _ := runClover(t, machine.ClusterA(), 72, 3)
	gfA := resA.Usage.PerfFlops() / 1e9
	if gfA < 110 || gfA > 210 {
		t.Fatalf("ClusterA node = %.0f Gflop/s, want ~160", gfA)
	}
	resB, _ := runClover(t, machine.ClusterB(), 104, 3)
	ratio := resB.Usage.PerfFlops() / resA.Usage.PerfFlops()
	if ratio < 1.35 || ratio > 1.8 {
		t.Fatalf("B/A = %.2f, want ~1.57", ratio)
	}
}

func TestTimestepPositive(t *testing.T) {
	_, err := mpi.Run(mpi.Config{Cluster: machine.ClusterA(), Ranks: 2}, func(r *mpi.Rank) {
		hy := newHydro(16, 16, bench.NewCart2D(r, 1, 2))
		for s := 0; s < 5; s++ {
			hy.step(r, 8, 8)
		}
		if hy.minDensity() <= 0 || math.IsNaN(hy.minDensity()) {
			t.Errorf("rank %d density degenerate: %v", r.ID(), hy.minDensity())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
