package tealeaf

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

// solver is a real distributed conjugate-gradient solver for the implicit
// heat step (I - dt*L) x = b on the rank's scaled tile, with Dirichlet
// walls and halo exchanges across rank boundaries. It validates the
// kernel: the residual must fall the way a CG on an SPD operator does.
type solver struct {
	w, h int
	cart *bench.Cart2D
	// Fields with a one-cell ghost ring (ghosts are zero at walls).
	x, r, p, ap []float64
	dt          float64
	rz          float64 // current global <r,r>
}

func newSolver(w, h int, cart *bench.Cart2D) *solver {
	s := &solver{w: w, h: h, cart: cart, dt: 0.2}
	n := (w + 2) * (h + 2)
	s.x = make([]float64, n)
	s.r = make([]float64, n)
	s.p = make([]float64, n)
	s.ap = make([]float64, n)
	// b = smooth temperature field; with x0 = 0 the initial residual is b.
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			id := s.idx(i, j)
			v := math.Sin(math.Pi*(float64(i)+0.5)/float64(w)) *
				math.Sin(math.Pi*(float64(j)+0.5)/float64(h))
			s.r[id] = v
			s.p[id] = v
		}
	}
	return s
}

func (s *solver) idx(i, j int) int { return (j+1)*(s.w+2) + (i + 1) }

// localDot returns the interior dot product of two ghost-ring fields.
func (s *solver) localDot(a, b []float64) float64 {
	var sum float64
	for j := 0; j < s.h; j++ {
		base := s.idx(0, j)
		for i := 0; i < s.w; i++ {
			sum += a[base+i] * b[base+i]
		}
	}
	return sum
}

// residualNorm returns the global L2 norm of the residual, initializing
// the solver's rz state.
func (s *solver) residualNorm(r *mpi.Rank) float64 {
	local := s.localDot(s.r, s.r)
	s.rz = r.Allreduce([]float64{local}, 8, mpi.OpSum)[0]
	return math.Sqrt(s.rz)
}

// exchangeP refreshes the ghost ring of the search direction p.
func (s *solver) exchangeP(r *mpi.Rank, modelX, modelY float64) {
	edge := func(i0, j0, count, di, dj int) []float64 {
		out := make([]float64, count)
		for k := 0; k < count; k++ {
			out[k] = s.p[s.idx(i0+k*di, j0+k*dj)]
		}
		return out
	}
	write := func(data []float64, i0, j0, di, dj int) {
		for k := 0; k < len(data); k++ {
			s.p[s.idx(i0+k*di, j0+k*dj)] = data[k]
		}
	}
	halo := s.cart.Exchange(bench.HaloSpec{
		Tag:         40,
		West:        edge(0, 0, s.h, 0, 1),
		East:        edge(s.w-1, 0, s.h, 0, 1),
		South:       edge(0, 0, s.w, 1, 0),
		North:       edge(0, s.h-1, s.w, 1, 0),
		ModelBytesX: modelX,
		ModelBytesY: modelY,
	})
	// Missing neighbors leave ghosts at zero: Dirichlet walls.
	if halo.FromWest != nil {
		write(halo.FromWest, -1, 0, 0, 1)
	}
	if halo.FromEast != nil {
		write(halo.FromEast, s.w, 0, 0, 1)
	}
	if halo.FromSouth != nil {
		write(halo.FromSouth, 0, -1, 1, 0)
	}
	if halo.FromNorth != nil {
		write(halo.FromNorth, 0, s.h, 1, 0)
	}
}

// cgIteration performs one distributed CG iteration on (I - dt*L),
// including the two global reductions the benchmark is known for.
func (s *solver) cgIteration(r *mpi.Rank, modelX, modelY float64) {
	s.exchangeP(r, modelX, modelY)

	// ap = (I - dt*L) p using the 5-point stencil.
	for j := 0; j < s.h; j++ {
		for i := 0; i < s.w; i++ {
			id := s.idx(i, j)
			lap := s.p[s.idx(i-1, j)] + s.p[s.idx(i+1, j)] +
				s.p[s.idx(i, j-1)] + s.p[s.idx(i, j+1)] - 4*s.p[id]
			s.ap[id] = s.p[id] - s.dt*lap
		}
	}

	pap := r.Allreduce([]float64{s.localDot(s.p, s.ap)}, 8, mpi.OpSum)[0]
	if pap == 0 {
		return // converged to machine zero
	}
	alpha := s.rz / pap
	for j := 0; j < s.h; j++ {
		base := s.idx(0, j)
		for i := 0; i < s.w; i++ {
			s.x[base+i] += alpha * s.p[base+i]
			s.r[base+i] -= alpha * s.ap[base+i]
		}
	}
	rzNew := r.Allreduce([]float64{s.localDot(s.r, s.r)}, 8, mpi.OpSum)[0]
	beta := rzNew / s.rz
	for j := 0; j < s.h; j++ {
		base := s.idx(0, j)
		for i := 0; i < s.w; i++ {
			s.p[base+i] = s.r[base+i] + beta*s.p[base+i]
		}
	}
	s.rz = rzNew
}
