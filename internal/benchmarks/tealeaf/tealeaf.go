// Package tealeaf implements the 518.tealeaf_t / 618.tealeaf_s benchmark:
// implicit solution of the linear heat-conduction equation on a 2D
// regular grid with a 5-point stencil and a conjugate-gradient solver.
//
// The paper classifies tealeaf as strongly memory-bound with a very low
// vectorization ratio (8.8%) and heavy use of MPI_Allreduce (the CG dot
// products). Both properties are reflected here: the work model charges
// mostly scalar flops against a streaming memory footprint, and every CG
// iteration performs two global reductions plus a halo exchange — the
// communication structure that makes tealeaf scale linearly (case B) in
// the multi-node analysis.
package tealeaf

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

type config struct {
	n          int // square cell count per side (Table 1)
	outerSteps int // simulation end step
	innerIters int // PPCG inner steps per outer step
}

func configFor(c bench.Class) config {
	switch c {
	case bench.Tiny:
		return config{n: 8192, outerSteps: 100, innerIters: 350}
	default:
		return config{n: 16384, outerSteps: 100, innerIters: 350}
	}
}

// Cost-model constants, per cell per CG iteration.
const (
	flopsPerCell   = 22.0 // SpMV 10, two dots 4, three axpys 6, precond 2
	simdFraction   = 0.088
	simdEff        = 0.20
	scalarEff      = 0.50
	bytesPerCell   = 88.0 // ~5 arrays, ~2.2 sweeps
	l2BytesPerCell = 130.0
	l3BytesPerCell = 110.0
	hotArrays      = 3 // u, p, w: the per-iteration working set
	cacheableFrac  = 0.42
	heatFrac       = 0.72
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:          18,
		Name:        "tealeaf",
		Language:    "C",
		LOC:         5400,
		Collective:  "Allreduce",
		Numerics:    "Linear heat conduction, 5-point stencil, implicit CG",
		Domain:      "Physics / high energy physics",
		MemoryBound: true,
		VectorPct:   8.8,
		Run:         run,
	})
}

func run(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
	cfg := configFor(c)
	// Simulated iterations: a few CG iterations of one outer step stand in
	// for the full outer x inner iteration space.
	simIters := o.SimSteps
	if simIters <= 0 {
		simIters = 8
	}
	scaleDiv := o.ScaleDiv
	if scaleDiv <= 0 {
		scaleDiv = 64
	}

	p := r.Size()
	px, py := bench.Grid2D(p)
	cart := bench.NewCart2D(r, px, py)

	mx0, mx1 := bench.Split1D(cfg.n, px, cart.X)
	my0, my1 := bench.Split1D(cfg.n, py, cart.Y)
	mw, mh := mx1-mx0, my1-my0
	cells := float64(mw) * float64(mh)

	// Cache model: the per-iteration working set against this rank's
	// cache share determines how much traffic spills to DRAM.
	ws := cells * 8 * hotArrays
	spill := machine.CacheFit(ws, bench.CachePerRank(r.Cluster(), p, r.ID()))
	memFactor := (1 - cacheableFrac) + cacheableFrac*spill

	phase := machine.Phase{
		Name:        "cg-iteration",
		FlopsSIMD:   flopsPerCell * simdFraction * cells,
		FlopsScalar: flopsPerCell * (1 - simdFraction) * cells,
		SIMDEff:     simdEff,
		ScalarEff:   scalarEff,
		BytesMem:    bytesPerCell * cells * memFactor,
		BytesL2:     l2BytesPerCell * cells,
		BytesL3:     l3BytesPerCell * cells * (1 + 0.5*(1-spill)),
		HeatFrac:    heatFrac,
	}

	// Real solver state on the scaled tile.
	rw, rh := maxInt(4, mw/scaleDiv), maxInt(4, mh/scaleDiv)
	s := newSolver(rw, rh, cart)

	modelX := bench.DoubleBytes(mh)
	modelY := bench.DoubleBytes(mw)
	res0 := s.residualNorm(r)
	resPrev := res0
	for it := 0; it < simIters; it++ {
		s.cgIteration(r, modelX, modelY)
		r.Compute(phase)
		resPrev = s.rz
	}

	rep := bench.RunReport{
		StepsModeled:   cfg.outerSteps * cfg.innerIters,
		StepsSimulated: simIters,
	}
	if r.ID() == 0 {
		resNow := math.Sqrt(math.Abs(resPrev))
		rep.Checks = append(rep.Checks,
			bench.Check{
				Name:  "cg residual reduction",
				Value: resNow / res0,
				OK:    resNow < res0*0.9,
			},
			bench.Check{
				Name:  "residual finite",
				Value: resNow,
				OK:    !math.IsNaN(resNow) && !math.IsInf(resNow, 0),
			})
	}
	return rep, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
