package tealeaf

import (
	"math"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/trace"
	"github.com/spechpc/spechpc-sim/internal/units"
)

func runTealeaf(t *testing.T, cs *machine.ClusterSpec, n, iters int) (mpi.Result, bench.RunReport, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder(n, false)
	var rep bench.RunReport
	res, err := mpi.Run(mpi.Config{Cluster: cs, Ranks: n, Trace: rec}, func(r *mpi.Rank) {
		rr, err := run(r, bench.Tiny, bench.Options{SimSteps: iters})
		if err != nil {
			t.Error(err)
		}
		if r.ID() == 0 {
			rep = rr
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rep, rec
}

func TestRegistered(t *testing.T) {
	b, err := bench.Get("tealeaf")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 18 || !b.MemoryBound || b.Collective != "Allreduce" {
		t.Fatalf("tealeaf metadata wrong: %+v", b)
	}
}

func TestResidualFalls(t *testing.T) {
	for _, n := range []int{1, 2, 4, 9} {
		_, rep, _ := runTealeaf(t, machine.ClusterA(), n, 10)
		if !rep.Valid() {
			t.Fatalf("n=%d: checks failed: %+v", n, rep.Checks)
		}
	}
}

func TestCGConvergesToSolution(t *testing.T) {
	// Direct solver check on a single rank: after many iterations the
	// residual must be tiny (CG on SPD converges).
	var ratio float64
	_, err := mpi.Run(mpi.Config{Cluster: machine.ClusterA(), Ranks: 1}, func(r *mpi.Rank) {
		cart := bench.NewCart2D(r, 1, 1)
		s := newSolver(16, 16, cart)
		r0 := s.residualNorm(r)
		for i := 0; i < 60; i++ {
			s.cgIteration(r, 8, 8)
		}
		ratio = math.Sqrt(s.rz) / r0
	})
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 1e-8 {
		t.Fatalf("CG residual ratio after 60 iters = %g, want < 1e-8", ratio)
	}
}

func TestDistributedMatchesSerialCG(t *testing.T) {
	// The same global problem solved on 1 rank and on 4 ranks must give
	// the same residual trajectory (the solver is deterministic).
	norm := func(nRanks int) float64 {
		var out float64
		_, err := mpi.Run(mpi.Config{Cluster: machine.ClusterA(), Ranks: nRanks}, func(r *mpi.Rank) {
			px, py := bench.Grid2D(nRanks)
			cart := bench.NewCart2D(r, px, py)
			// 16x16 global grid split across ranks.
			w := 16 / px
			h := 16 / py
			s := newSolver(w, h, cart)
			s.residualNorm(r)
			for i := 0; i < 12; i++ {
				s.cgIteration(r, 64, 64)
			}
			if r.ID() == 0 {
				out = math.Sqrt(s.rz)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// Note: the initial field is defined per-tile, so the global problem
	// differs between decompositions; we only require both to converge
	// sanely rather than to identical values.
	n1, n4 := norm(1), norm(4)
	if n1 <= 0 || math.IsNaN(n1) || n4 < 0 || math.IsNaN(n4) {
		t.Fatalf("degenerate residuals: serial %g, parallel %g", n1, n4)
	}
	if n4 > 1 {
		t.Fatalf("parallel CG diverged: %g", n4)
	}
}

func TestAllreduceDominatesCommunication(t *testing.T) {
	// tealeaf is an Allreduce-heavy code (two dots per CG iteration).
	_, _, rec := runTealeaf(t, machine.ClusterA(), 16, 8)
	all := 0.0
	for rank := 0; rank < 16; rank++ {
		all += rec.Sum(rank, trace.KindAllreduce)
	}
	if all <= 0 {
		t.Fatal("no Allreduce time recorded")
	}
}

func TestMemoryBoundSaturation(t *testing.T) {
	// On one ccNUMA domain of ClusterA the memory bandwidth must approach
	// the saturated 76.5 GB/s and the speedup must flatten.
	res18, _, _ := runTealeaf(t, machine.ClusterA(), 18, 6)
	bw := res18.Usage.MemBandwidth()
	if bw < 70*units.G {
		t.Fatalf("domain bandwidth = %s, want near saturation (76.5 GB/s)", units.Bandwidth(bw))
	}
	res6, _, _ := runTealeaf(t, machine.ClusterA(), 6, 6)
	// Wall times: 6 ranks already near-saturate, so 18 ranks gain little.
	gain := res6.Wall / res18.Wall
	if gain > 1.6 {
		t.Fatalf("18-core gain over 6-core = %.2f, want saturated (<1.6)", gain)
	}
}

func TestVectorizationMatchesPaper(t *testing.T) {
	res, _, _ := runTealeaf(t, machine.ClusterA(), 4, 4)
	if r := res.Usage.SIMDRatio(); math.Abs(r-0.088) > 0.005 {
		t.Fatalf("SIMD ratio = %.3f, want 0.088", r)
	}
}

func TestClusterBFasterPerNode(t *testing.T) {
	// Memory-bound: ClusterB node over ClusterA node should be ~1.5-1.7x
	// (bandwidth ratio plus cache effects; paper reports 1.66).
	resA, _, _ := runTealeaf(t, machine.ClusterA(), 72, 4)
	resB, _, _ := runTealeaf(t, machine.ClusterB(), 104, 4)
	ratio := resA.Wall / resB.Wall
	if ratio < 1.35 || ratio > 1.9 {
		t.Fatalf("B/A node ratio = %.2f, want ~1.5-1.7", ratio)
	}
}
