package sphexa

import (
	"math"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

func runSph(t *testing.T, cs *machine.ClusterSpec, n, steps int) (mpi.Result, bench.RunReport) {
	t.Helper()
	var rep bench.RunReport
	res, err := mpi.Run(mpi.Config{Cluster: cs, Ranks: n, Trace: trace.NewRecorder(n, false)},
		func(r *mpi.Rank) {
			rr, err := run(r, bench.Tiny, bench.Options{SimSteps: steps})
			if err != nil {
				t.Error(err)
			}
			if r.ID() == 0 {
				rep = rr
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	return res, rep
}

func TestRegistered(t *testing.T) {
	b, err := bench.Get("sph-exa")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 32 || b.MemoryBound || b.Language != "C++14" {
		t.Fatalf("sph-exa metadata wrong: %+v", b)
	}
}

func TestChecksPass(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		_, rep := runSph(t, machine.ClusterA(), n, 2)
		if !rep.Valid() {
			t.Fatalf("n=%d: %+v", n, rep.Checks)
		}
	}
}

func TestDensityNearUniform(t *testing.T) {
	// A near-uniform lattice must produce near-uniform densities around
	// the mean (total mass / unit volume = 1).
	p := newParticles(1, 8)
	p.densityPass()
	var mean float64
	for _, v := range p.rho {
		mean += v
	}
	mean /= float64(p.n)
	if mean < 0.5 || mean > 2.0 {
		t.Fatalf("mean density = %v, want ~1", mean)
	}
	for i, v := range p.rho {
		if v < mean*0.3 || v > mean*3 {
			t.Fatalf("density[%d] = %v far from mean %v", i, v, mean)
		}
	}
}

func TestPressureForcesPushApart(t *testing.T) {
	// Two close particles must repel: accelerations point away from each
	// other.
	p := newParticles(1, 4)
	// Move particle 1 close to particle 0.
	p.x[1] = p.x[0] + 0.3*p.h
	p.y[1] = p.y[0]
	p.z[1] = p.z[0]
	p.densityPass()
	p.forcePass()
	if p.ax[1] <= p.ax[0] {
		t.Fatalf("no repulsion: ax0=%v ax1=%v", p.ax[0], p.ax[1])
	}
}

func TestKernelProperties(t *testing.T) {
	p := newParticles(1, 4)
	if p.kernel(0) <= 0 {
		t.Error("kernel not positive at 0")
	}
	if p.kernel(p.h*1.01) != 0 {
		t.Error("kernel has support beyond h")
	}
	// Monotone decreasing on [0, h].
	prev := p.kernel(0)
	for q := 0.1; q <= 1.0; q += 0.1 {
		cur := p.kernel(q * p.h)
		if cur > prev+1e-12 {
			t.Fatalf("kernel not monotone at q=%v", q)
		}
		prev = cur
	}
}

func TestCFLPositive(t *testing.T) {
	p := newParticles(2, 5)
	p.densityPass()
	p.forcePass()
	dt := p.cflLimit()
	if dt <= 0 || math.IsNaN(dt) {
		t.Fatalf("CFL dt = %v", dt)
	}
}

func TestHottestCodeNearTDP(t *testing.T) {
	// Paper Sect. 4.2.1: sph-exa reaches 98% of socket TDP (244 W) on a
	// full ClusterA socket.
	res, _ := runSph(t, machine.ClusterA(), 36, 2)
	p := res.Usage.SocketChipPower[0]
	if p < 235 || p > 246 {
		t.Fatalf("socket power = %.1f W, want ~244 (98%% TDP)", p)
	}
}

func TestNodeAccelerationFactor(t *testing.T) {
	// Paper: sph-exa B/A node ratio 1.48 (the highest non-cache case).
	resA, _ := runSph(t, machine.ClusterA(), 72, 2)
	resB, _ := runSph(t, machine.ClusterB(), 104, 2)
	ratio := resA.Wall / resB.Wall
	if ratio < 1.25 || ratio > 1.7 {
		t.Fatalf("B/A = %.2f, want ~1.48", ratio)
	}
}

func TestComputeBoundScaling(t *testing.T) {
	// sph-exa must scale well within a node (not bandwidth-limited).
	res1, _ := runSph(t, machine.ClusterA(), 1, 1)
	res18, _ := runSph(t, machine.ClusterA(), 18, 1)
	speedup := res1.Wall / res18.Wall
	if speedup < 12 {
		t.Fatalf("18-core speedup = %.1f, want near-linear (>12)", speedup)
	}
}
