package sphexa

import "math"

// particles is the real (scaled-down) SPH state of one rank: a particle
// set in the unit box with cell-list neighbor search, cubic-spline
// kernel, isothermal pressure forces, and halo layers received from the
// z neighbors. The numerics are genuine SPH; only the particle count is
// reduced relative to the modeled workload.
type particles struct {
	n          int
	h          float64 // smoothing length
	m          float64 // particle mass
	cs         float64 // isothermal sound speed
	x, y, z    []float64
	vx, vy, vz []float64
	ax, ay, az []float64
	rho        []float64
	// halo particle coordinates (from z neighbors), packed x,y,z.
	hx, hy, hz []float64
	// cell list.
	g     int
	cells [][]int
	// nbr is the reusable neighbor-candidate scratch list.
	nbr []int
}

func newParticles(seed, side int) *particles {
	n := side * side * side
	p := &particles{n: n, h: 1.6 / float64(side), cs: 1.0}
	p.m = 1.0 / float64(n)
	alloc := func() []float64 { return make([]float64, n) }
	p.x, p.y, p.z = alloc(), alloc(), alloc()
	p.vx, p.vy, p.vz = alloc(), alloc(), alloc()
	p.ax, p.ay, p.az = alloc(), alloc(), alloc()
	p.rho = alloc()
	rng := uint64(seed)*0x9E3779B97F4A7C15 + 1
	rnd := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / float64(1<<53)
	}
	i := 0
	for a := 0; a < side; a++ {
		for b := 0; b < side; b++ {
			for c := 0; c < side; c++ {
				p.x[i] = (float64(a) + 0.5 + 0.1*(rnd()-0.5)) / float64(side)
				p.y[i] = (float64(b) + 0.5 + 0.1*(rnd()-0.5)) / float64(side)
				p.z[i] = (float64(c) + 0.5 + 0.1*(rnd()-0.5)) / float64(side)
				i++
			}
		}
	}
	p.g = int(math.Max(1, math.Floor(1/p.h)))
	p.cells = make([][]int, p.g*p.g*p.g)
	return p
}

// kernel is the normalized 3D cubic-spline kernel W(r, h).
func (p *particles) kernel(r float64) float64 {
	q := r / p.h
	sigma := 8 / (math.Pi * p.h * p.h * p.h)
	switch {
	case q < 0.5:
		return sigma * (6*(q*q*q-q*q) + 1)
	case q < 1:
		d := 1 - q
		return sigma * 2 * d * d * d
	default:
		return 0
	}
}

// kernelGrad is dW/dr.
func (p *particles) kernelGrad(r float64) float64 {
	q := r / p.h
	sigma := 8 / (math.Pi * p.h * p.h * p.h)
	switch {
	case q < 0.5:
		return sigma * 6 * (3*q*q - 2*q) / p.h
	case q < 1:
		d := 1 - q
		return -sigma * 6 * d * d / p.h
	default:
		return 0
	}
}

// haloParticles packs the positions of particles within one smoothing
// length of the top (z near 1) or bottom (z near 0) face, shifted so the
// receiving neighbor sees them adjacent to its own box.
func (p *particles) haloParticles(top bool) []float64 {
	var out []float64
	for i := 0; i < p.n; i++ {
		if top && p.z[i] > 1-p.h {
			out = append(out, p.x[i], p.y[i], p.z[i]-1)
		} else if !top && p.z[i] < p.h {
			out = append(out, p.x[i], p.y[i], p.z[i]+1)
		}
	}
	return out
}

// setHalo installs received halo particles (nil = open boundary).
func (p *particles) setHalo(fromDown, fromUp []float64) {
	p.hx, p.hy, p.hz = nil, nil, nil
	add := func(data []float64) {
		for i := 0; i+2 < len(data); i += 3 {
			p.hx = append(p.hx, data[i])
			p.hy = append(p.hy, data[i+1])
			p.hz = append(p.hz, data[i+2])
		}
	}
	add(fromDown)
	add(fromUp)
}

// buildCells rebins owned particles into the cell list.
func (p *particles) buildCells() {
	for i := range p.cells {
		p.cells[i] = p.cells[i][:0]
	}
	for i := 0; i < p.n; i++ {
		p.cells[p.cellOf(p.x[i], p.y[i], p.z[i])] = append(p.cells[p.cellOf(p.x[i], p.y[i], p.z[i])], i)
	}
}

func (p *particles) cellOf(x, y, z float64) int {
	c := func(v float64) int {
		i := int(v * float64(p.g))
		if i < 0 {
			i = 0
		}
		if i >= p.g {
			i = p.g - 1
		}
		return i
	}
	return (c(z)*p.g+c(y))*p.g + c(x)
}

// neighbors collects owned neighbor candidates of (x,y,z) into the
// reusable scratch list using the 27-cell stencil with periodic wrap in
// all dimensions, in deterministic stencil order. Gathering into a flat
// slice keeps the per-candidate work in the callers' tight loops free of
// closure dispatch.
func (p *particles) neighbors(x, y, z float64) []int {
	nbr := p.nbr[:0]
	cx := int(x * float64(p.g))
	cy := int(y * float64(p.g))
	cz := int(z * float64(p.g))
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				ix := (cx + dx + p.g) % p.g
				iy := (cy + dy + p.g) % p.g
				iz := (cz + dz + p.g) % p.g
				nbr = append(nbr, p.cells[(iz*p.g+iy)*p.g+ix]...)
			}
		}
	}
	p.nbr = nbr
	return nbr
}

// densityPass computes SPH densities over owned + halo particles.
func (p *particles) densityPass() {
	p.buildCells()
	for i := 0; i < p.n; i++ {
		rho := p.m * p.kernel(0) // self contribution
		xi, yi, zi := p.x[i], p.y[i], p.z[i]
		for _, j := range p.neighbors(xi, yi, zi) {
			if j == i {
				continue
			}
			r := dist(xi, yi, zi, p.x[j], p.y[j], p.z[j])
			if r < p.h {
				rho += p.m * p.kernel(r)
			}
		}
		// Halo contributions (linear scan; halo sets are small).
		for k := range p.hx {
			r := dist(xi, yi, zi, p.hx[k], p.hy[k], p.hz[k])
			if r < p.h {
				rho += p.m * p.kernel(r)
			}
		}
		p.rho[i] = rho
	}
}

// forcePass computes isothermal pressure accelerations
// (P = cs^2 rho, symmetric SPH form).
func (p *particles) forcePass() {
	for i := 0; i < p.n; i++ {
		p.ax[i], p.ay[i], p.az[i] = 0, 0, 0
		xi, yi, zi := p.x[i], p.y[i], p.z[i]
		pi := p.cs * p.cs / p.rho[i] // P_i / rho_i^2 with P = cs^2 rho
		for _, j := range p.neighbors(xi, yi, zi) {
			if j == i {
				continue
			}
			r := dist(xi, yi, zi, p.x[j], p.y[j], p.z[j])
			if r <= 1e-12 || r >= p.h {
				continue
			}
			pj := p.cs * p.cs / p.rho[j]
			f := -p.m * (pi + pj) * p.kernelGrad(r) / r
			p.ax[i] += f * (xi - p.x[j])
			p.ay[i] += f * (yi - p.y[j])
			p.az[i] += f * (zi - p.z[j])
		}
	}
}

// cflLimit returns the local CFL timestep bound.
func (p *particles) cflLimit() float64 {
	vmax := p.maxSpeed()
	return 0.25 * p.h / (p.cs + vmax)
}

// integrate advances positions and velocities (periodic unit box).
func (p *particles) integrate(dt float64) {
	for i := 0; i < p.n; i++ {
		p.vx[i] += dt * p.ax[i]
		p.vy[i] += dt * p.ay[i]
		p.vz[i] += dt * p.az[i]
		p.x[i] = wrap01(p.x[i] + dt*p.vx[i])
		p.y[i] = wrap01(p.y[i] + dt*p.vy[i])
		p.z[i] = wrap01(p.z[i] + dt*p.vz[i])
	}
}

// minDensity returns the smallest computed density.
func (p *particles) minDensity() float64 {
	lo := math.Inf(1)
	for _, v := range p.rho {
		if v < lo {
			lo = v
		}
	}
	return lo
}

// maxSpeed returns the largest particle speed.
func (p *particles) maxSpeed() float64 {
	hi := 0.0
	for i := 0; i < p.n; i++ {
		s := math.Sqrt(p.vx[i]*p.vx[i] + p.vy[i]*p.vy[i] + p.vz[i]*p.vz[i])
		if s > hi {
			hi = s
		}
	}
	return hi
}

// totalMomentum returns the signed sum of momentum components.
func (p *particles) totalMomentum() float64 {
	var sum float64
	for i := 0; i < p.n; i++ {
		sum += p.m * (p.vx[i] + p.vy[i] + p.vz[i])
	}
	return sum
}

func dist(ax, ay, az, bx, by, bz float64) float64 {
	dx, dy, dz := ax-bx, ay-by, az-bz
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

func wrap01(v float64) float64 {
	v = math.Mod(v, 1)
	if v < 0 {
		v++
	}
	return v
}
