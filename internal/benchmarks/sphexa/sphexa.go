// Package sphexa implements the 532.sph_exa_t / 632.sph_exa_s benchmark:
// smoothed-particle hydrodynamics, a meshless Lagrangian method
// (astrophysics and cosmology).
//
// The paper's characterization: the hottest code of the suite (98% of
// socket TDP on ClusterA), compute-bound, 83.3% vectorized, with the
// largest single-node B/A speedup among the non-memory-bound codes
// (1.48). Multi-node it scales poorly — the small data set leaves too
// little work per rank against halo exchanges and the global timestep
// reduction — which in turn makes it one of the codes whose energy grows
// when scaling out (Fig. 6).
package sphexa

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

type config struct {
	side  int // particles per box edge (cube total)
	steps int
}

func configFor(c bench.Class) config {
	switch c {
	case bench.Tiny:
		return config{side: 210, steps: 80}
	default:
		return config{side: 350, steps: 100}
	}
}

const (
	flopsPerParticle = 5000.0 // ~60 neighbors x ~80 flops + cell search
	simdFraction     = 0.833
	simdEff          = 0.25
	scalarEff        = 0.35
	bytesPerParticle = 150.0
	l2PerParticle    = 600.0
	l3PerParticle    = 280.0
	bytesPerHaloPart = 48.0 // position + velocity + density per halo particle
	heatFrac         = 1.0  // the hottest code of the suite
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:          32,
		Name:        "sph-exa",
		Language:    "C++14",
		LOC:         3400,
		Collective:  "Allreduce",
		Numerics:    "Smoothed Particle Hydrodynamics (meshless Lagrangian)",
		Domain:      "Astrophysics and cosmology",
		MemoryBound: false,
		VectorPct:   83.3,
		Run:         run,
	})
}

func run(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
	cfg := configFor(c)
	simSteps := o.SimSteps
	if simSteps <= 0 {
		simSteps = 2
	}
	if simSteps > cfg.steps {
		simSteps = cfg.steps
	}

	p := r.Size()
	px, py, pz := bench.Grid3D(p)
	total := float64(cfg.side) * float64(cfg.side) * float64(cfg.side)
	mine := total / float64(p)

	// Halo work: the smoothing-kernel support reaches ~4 particle
	// spacings past each subdomain face, so density/force passes also
	// process a halo shell whose relative size grows as subdomains
	// shrink — the surface-to-volume term that erodes sph-exa's strong
	// scaling (the paper reports 80%/79% node-level efficiency).
	const haloReach = 4.0
	sX := float64(cfg.side) / float64(px)
	sY := float64(cfg.side) / float64(py)
	sZ := float64(cfg.side) / float64(pz)
	haloWork := 1 + 2*haloReach*(1/sX+1/sY+1/sZ)

	phase := machine.Phase{
		Name:          "sph-step",
		FlopsSIMD:     flopsPerParticle * simdFraction * mine,
		FlopsScalar:   flopsPerParticle * (1 - simdFraction) * mine,
		SIMDEff:       simdEff,
		ScalarEff:     scalarEff,
		IrregularFrac: 0.8, // neighbor gathers dominate the inner loops
		BytesMem:      bytesPerParticle * mine,
		BytesL2:       l2PerParticle * mine,
		BytesL3:       l3PerParticle * mine,
		HeatFrac:      heatFrac,
	}.Scale(haloWork)

	// Model halo sizes: one smoothing-length layer of particles on each
	// face of the rank's subdomain.
	sideX := float64(cfg.side) / float64(px)
	sideY := float64(cfg.side) / float64(py)
	sideZ := float64(cfg.side) / float64(pz)
	faceXY := sideX * sideY * 2 * bytesPerHaloPart
	faceXZ := sideX * sideZ * 2 * bytesPerHaloPart
	faceYZ := sideY * sideZ * 2 * bytesPerHaloPart

	// Rank coordinates in the 3D grid (x fastest).
	cx := r.ID() % px
	cy := (r.ID() / px) % py
	cz := r.ID() / (px * py)
	rank3 := func(x, y, z int) int {
		if x < 0 || x >= px || y < 0 || y >= py || z < 0 || z >= pz {
			return -1
		}
		return (z*py+y)*px + x
	}

	// Real particle system: a scaled-down box per rank.
	sys := newParticles(r.ID(), 6)
	mom0 := sys.totalMomentum()

	for step := 0; step < simSteps; step++ {
		// Halo exchanges: real particle payloads along z, modeled sizes
		// everywhere (x/y faces carry a real digest only).
		exchange := func(dst, src int, payload []float64, modelBytes float64, tag int) []float64 {
			switch {
			case dst < 0 && src < 0:
				return nil
			case dst < 0:
				return r.Recv(src, tag).Data
			case src < 0:
				r.Send(dst, tag, payload, modelBytes)
				return nil
			default:
				return r.Sendrecv(dst, tag, payload, modelBytes, src, tag).Data
			}
		}
		zUp, zDown := rank3(cx, cy, cz+1), rank3(cx, cy, cz-1)
		up := sys.haloParticles(true)
		down := sys.haloParticles(false)
		fromDown := exchange(zUp, zDown, up, faceXY, 200)
		fromUp := exchange(zDown, zUp, down, faceXY, 201)
		sys.setHalo(fromDown, fromUp)
		// Modeled x/y faces (small real digest payloads).
		digest := []float64{float64(sys.n)}
		exchange(rank3(cx+1, cy, cz), rank3(cx-1, cy, cz), digest, faceYZ, 202)
		exchange(rank3(cx-1, cy, cz), rank3(cx+1, cy, cz), digest, faceYZ, 203)
		exchange(rank3(cx, cy+1, cz), rank3(cx, cy-1, cz), digest, faceXZ, 204)
		exchange(rank3(cx, cy-1, cz), rank3(cx, cy+1, cz), digest, faceXZ, 205)

		sys.densityPass()
		sys.forcePass()
		r.Compute(phase)

		// Global CFL timestep — the Allreduce of Table 1.
		dtLocal := sys.cflLimit()
		dt := r.Allreduce([]float64{dtLocal}, 8, mpi.OpMin)[0]
		sys.integrate(dt)
	}

	rep := bench.RunReport{StepsModeled: cfg.steps, StepsSimulated: simSteps}
	if r.ID() == 0 {
		minRho := sys.minDensity()
		mom1 := sys.totalMomentum()
		rep.Checks = append(rep.Checks,
			bench.Check{Name: "density positive", Value: minRho, OK: minRho > 0},
			bench.Check{
				Name:  "local momentum bounded",
				Value: mom1 - mom0,
				OK:    !math.IsNaN(mom1) && math.Abs(mom1-mom0) < 1e3,
			},
			bench.Check{
				Name:  "velocities finite",
				Value: sys.maxSpeed(),
				OK:    !math.IsNaN(sys.maxSpeed()) && !math.IsInf(sys.maxSpeed(), 0),
			})
	}
	return rep, nil
}
