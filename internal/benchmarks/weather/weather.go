// Package weather implements the 535.weather_t / 635.weather_s benchmark:
// a traditional finite-volume atmospheric model (model 6, "Injection",
// per Table 1).
//
// weather is the paper's showcase for cache effects: nominally
// non-memory-bound (only 22.2% vectorized, mixed kernels), it contains
// memory-intensive loops whose working set starts fitting into cache as
// ranks are added. On Sapphire Rapids, with 45-60% more cache per core,
// this happens earlier — producing the 121% node-level parallel
// efficiency, the largest B/A acceleration factor of the suite (2.03),
// and the strongly superlinear multi-node scaling of Case A.
package weather

import (
	"math"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
)

type config struct {
	nx, nz int
	steps  int
}

func configFor(c bench.Class) config {
	switch c {
	case bench.Tiny:
		return config{nx: 24000, nz: 3000, steps: 600}
	default:
		return config{nx: 192000, nz: 1250, steps: 600}
	}
}

const (
	flopsPerCell  = 180.0
	simdFraction  = 0.222
	simdEff       = 0.15
	scalarEff     = 0.52
	bytesPerCell  = 260.0
	l2PerCell     = 420.0
	l3PerCell     = 330.0
	hotArrays     = 2 // the memory-intensive kernels sweep two state arrays
	cacheableFrac = 0.75
	heatFrac      = 0.80
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:          35,
		Name:        "weather",
		Language:    "Fortran",
		LOC:         1100,
		Collective:  "-",
		Numerics:    "Traditional finite-volume control flow (model 6: Injection)",
		Domain:      "Atmospheric weather and climate",
		MemoryBound: false,
		VectorPct:   22.2,
		Run:         run,
	})
}

func run(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
	cfg := configFor(c)
	simSteps := o.SimSteps
	if simSteps <= 0 {
		simSteps = 4
	}
	if simSteps > cfg.steps {
		simSteps = cfg.steps
	}
	scaleDiv := o.ScaleDiv
	if scaleDiv <= 0 {
		scaleDiv = 64
	}

	// miniWeather-style 1D decomposition along X: pure point-to-point
	// communication (Table 1 lists no collective for weather).
	p := r.Size()
	mx0, mx1 := bench.Split1D(cfg.nx, p, r.ID())
	mw := mx1 - mx0
	cells := float64(mw) * float64(cfg.nz)

	ws := cells * 8 * hotArrays
	spill := machine.CacheFit(ws, bench.CachePerRank(r.Cluster(), p, r.ID()))
	memFactor := (1 - cacheableFrac) + cacheableFrac*spill

	phase := machine.Phase{
		Name:        "fv-step",
		FlopsSIMD:   flopsPerCell * simdFraction * cells,
		FlopsScalar: flopsPerCell * (1 - simdFraction) * cells,
		SIMDEff:     simdEff,
		ScalarEff:   scalarEff,
		BytesMem:    bytesPerCell * cells * memFactor,
		BytesL2:     l2PerCell * cells,
		BytesL3:     l3PerCell * cells * (1 + 0.4*(1-spill)),
		HeatFrac:    heatFrac,
	}

	// Real column model on a scaled strip.
	rw := maxInt(4, mw/scaleDiv)
	rh := maxInt(4, cfg.nz/scaleDiv)
	st := newStrip(rw, rh, r.ID() == 0)

	left, right := r.ID()-1, r.ID()+1
	if left < 0 {
		left = -1
	}
	if right >= p {
		right = -1
	}
	modelHalo := bench.DoubleBytes(cfg.nz * 2 * 3) // 2 ghost columns x 3 fields

	injectedTotal := 0.0
	for step := 0; step < simSteps; step++ {
		// Halo exchange with the x neighbors: both directions posted
		// nonblocking, then completed together (the miniWeather pattern;
		// sequential pairwise exchanges would serialize the whole chain).
		sendL, sendR := st.edgeColumns()
		var reqs []*mpi.Request
		var rqL, rqR *mpi.Request
		if right >= 0 {
			reqs = append(reqs, r.Isend(right, 400, sendR, modelHalo))
			rqR = r.Irecv(right, 401)
			reqs = append(reqs, rqR)
		}
		if left >= 0 {
			reqs = append(reqs, r.Isend(left, 401, sendL, modelHalo))
			rqL = r.Irecv(left, 400)
			reqs = append(reqs, rqL)
		}
		r.Waitall(reqs)
		var fromL, fromR []float64
		if rqL != nil && rqL.Done() {
			fromL = r.Wait(rqL).Data
		}
		if rqR != nil && rqR.Done() {
			fromR = r.Wait(rqR).Data
		}
		st.applyHalo(fromL, fromR)
		injectedTotal += st.step()
		r.Compute(phase)
	}

	// Global tracer budget: total mass must equal initial + injected
	// (conservative fluxes, closed domain).
	sums := r.Allreduce([]float64{st.totalMass(), injectedTotal}, 16, mpi.OpSum)
	globalMass, globalInjected := sums[0], sums[1]
	globalInitial := r.Allreduce([]float64{st.initialMass}, 8, mpi.OpSum)[0]

	rep := bench.RunReport{StepsModeled: cfg.steps, StepsSimulated: simSteps}
	if r.ID() == 0 {
		budget := math.Abs(globalMass-(globalInitial+globalInjected)) /
			(globalInitial + globalInjected)
		rep.Checks = append(rep.Checks,
			bench.Check{
				Name:  "tracer budget (mass = initial + injected)",
				Value: budget,
				OK:    budget < 1e-9,
			},
			bench.Check{
				Name:  "fields finite",
				Value: st.maxAbs(),
				OK:    !math.IsNaN(st.maxAbs()) && !math.IsInf(st.maxAbs(), 0),
			})
	}
	return rep, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
