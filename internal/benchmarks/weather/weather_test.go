package weather

import (
	"math"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

func runWeather(t *testing.T, cs *machine.ClusterSpec, n, steps int, class bench.Class) (mpi.Result, bench.RunReport) {
	t.Helper()
	var rep bench.RunReport
	res, err := mpi.Run(mpi.Config{Cluster: cs, Ranks: n, Trace: trace.NewRecorder(n, false)},
		func(r *mpi.Rank) {
			rr, err := run(r, class, bench.Options{SimSteps: steps})
			if err != nil {
				t.Error(err)
			}
			if r.ID() == 0 {
				rep = rr
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	return res, rep
}

func TestRegistered(t *testing.T) {
	b, err := bench.Get("weather")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 35 || b.MemoryBound || b.Collective != "-" {
		t.Fatalf("weather metadata wrong: %+v", b)
	}
}

func TestTracerBudget(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		_, rep := runWeather(t, machine.ClusterA(), n, 5, bench.Tiny)
		if !rep.Valid() {
			t.Fatalf("n=%d: %+v", n, rep.Checks)
		}
	}
}

func TestInjectionAddsMass(t *testing.T) {
	s := newStrip(16, 16, true)
	m0 := s.totalMass()
	s.applyHalo(nil, nil)
	injected := 0.0
	for i := 0; i < 5; i++ {
		injected += s.step()
	}
	m1 := s.totalMass()
	if injected <= 0 {
		t.Fatal("no mass injected")
	}
	if rel := math.Abs(m1 - (m0 + injected)); rel > 1e-10*m0 {
		t.Fatalf("closed-box budget violated by %g", rel)
	}
}

func TestAdvectionMovesTracerDownstream(t *testing.T) {
	// With positive u, a tracer bump must drift toward larger x.
	s := newStrip(32, 8, false)
	for i := range s.q {
		s.q[i] = 0
	}
	s.q[s.idx(4, 4)] = 1.0
	centroid := func() float64 {
		var m, mx float64
		for k := 0; k < s.h; k++ {
			for i := 0; i < s.w; i++ {
				v := s.q[s.idx(i, k)]
				m += v
				mx += v * float64(i)
			}
		}
		return mx / m
	}
	c0 := centroid()
	s.applyHalo(nil, nil)
	for i := 0; i < 8; i++ {
		s.step()
	}
	if c1 := centroid(); c1 <= c0 {
		t.Fatalf("tracer centroid did not advance: %v -> %v", c0, c1)
	}
}

func TestSuperlinearOnClusterBNode(t *testing.T) {
	// Paper Sect. 4.1.1: weather's node-level efficiency on ClusterB is
	// 121% (domain baseline) thanks to cache capture. Verify that the
	// full node exceeds the domain-extrapolated speedup.
	b := machine.ClusterB()
	dom, _ := runWeather(t, b, 13, 3, bench.Tiny)
	node, _ := runWeather(t, b, 104, 3, bench.Tiny)
	eff := dom.Wall / node.Wall / 8.0 // 8 domains per node
	if eff < 1.02 {
		t.Fatalf("ClusterB node efficiency = %.2f, want superlinear (>1.02)", eff)
	}
	// And on ClusterA the same measurement stays near or below 1.0.
	a := machine.ClusterA()
	domA, _ := runWeather(t, a, 18, 3, bench.Tiny)
	nodeA, _ := runWeather(t, a, 72, 3, bench.Tiny)
	effA := domA.Wall / nodeA.Wall / 4.0
	if effA > 1.1 {
		t.Fatalf("ClusterA node efficiency = %.2f, want ~0.95", effA)
	}
}

func TestHighestAccelerationFactor(t *testing.T) {
	// Paper: weather has the largest B/A node ratio (2.03).
	resA, _ := runWeather(t, machine.ClusterA(), 72, 3, bench.Tiny)
	resB, _ := runWeather(t, machine.ClusterB(), 104, 3, bench.Tiny)
	ratio := resA.Wall / resB.Wall
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("B/A = %.2f, want ~2.0", ratio)
	}
}

func TestLowVectorization(t *testing.T) {
	res, _ := runWeather(t, machine.ClusterA(), 4, 3, bench.Tiny)
	if r := res.Usage.SIMDRatio(); math.Abs(r-0.222) > 0.01 {
		t.Fatalf("SIMD ratio = %.3f, want 0.222", r)
	}
}

func TestMultiNodeSuperlinearSmall(t *testing.T) {
	// Case A on ClusterB: the small workload's working set falls into
	// cache at scale; speedup per rank must exceed 1 going from 2 to 8
	// nodes.
	b := machine.ClusterB()
	r2, _ := runWeather(t, b, 208, 2, bench.Small)
	r8, _ := runWeather(t, b, 832, 2, bench.Small)
	speedup := r2.Wall / r8.Wall
	if speedup < 4.0 {
		t.Fatalf("2->8 node speedup = %.2f, want superlinear (>4)", speedup)
	}
}
