package weather

import "math"

// strip is the real (scaled-down) state of one rank: a vertical slice of
// the atmosphere carrying a tracer advected by an analytic jet with
// conservative upwind fluxes, plus an injection source on rank 0 (the
// benchmark's model 6). Fluxes at rank boundaries are computed from halo
// columns identically on both sides, so the global tracer budget is
// exact: total mass = initial mass + injected mass.
type strip struct {
	w, h int
	// q has one ghost column on each side (x ghosts only; z walls are
	// closed).
	q, qn []float64
	u     []float64 // zonal wind per level
	wv    []float64 // vertical wind per level (small)
	dt    float64
	// inject marks the source region (rank 0 only); injRate is the mass
	// added per source cell per unit time.
	inject  bool
	injRate float64
	// initialMass is the tracer mass at construction.
	initialMass float64
	// wallL/wallR mark closed domain walls (no neighbor).
	wallL, wallR bool
}

func newStrip(w, h int, inject bool) *strip {
	s := &strip{w: w, h: h, inject: inject, injRate: 0.5}
	s.q = make([]float64, (w+2)*h)
	s.qn = make([]float64, (w+2)*h)
	s.u = make([]float64, h)
	s.wv = make([]float64, h)
	for k := 0; k < h; k++ {
		zf := (float64(k) + 0.5) / float64(h)
		s.u[k] = 1.0 + 0.5*math.Sin(math.Pi*zf) // jet profile
		s.wv[k] = 0.1 * math.Cos(math.Pi*zf)
	}
	for k := 0; k < h; k++ {
		for i := 0; i < w; i++ {
			xf := (float64(i) + 0.5) / float64(w)
			s.q[s.idx(i, k)] = 0.2 + 0.1*math.Sin(2*math.Pi*xf)*math.Cos(math.Pi*(float64(k)+0.5)/float64(h))
		}
	}
	s.initialMass = s.totalMass()
	// CFL-safe fixed step for |u| <= 1.5, |w| <= 0.1, dx = dz = 1.
	s.dt = 0.4 / 1.6
	return s
}

// idx maps x in [-1, w] (ghosts) and z in [0, h).
func (s *strip) idx(i, k int) int { return k*(s.w+2) + (i + 1) }

// edgeColumns returns the left and right interior edge columns.
func (s *strip) edgeColumns() (left, right []float64) {
	left = make([]float64, s.h)
	right = make([]float64, s.h)
	for k := 0; k < s.h; k++ {
		left[k] = s.q[s.idx(0, k)]
		right[k] = s.q[s.idx(s.w-1, k)]
	}
	return left, right
}

// applyHalo installs neighbor ghost columns; nil marks a closed wall.
func (s *strip) applyHalo(fromL, fromR []float64) {
	s.wallL = fromL == nil
	s.wallR = fromR == nil
	for k := 0; k < s.h; k++ {
		if !s.wallL && k < len(fromL) {
			s.q[s.idx(-1, k)] = fromL[k]
		}
		if !s.wallR && k < len(fromR) {
			s.q[s.idx(s.w, k)] = fromR[k]
		}
	}
}

// fluxX returns the upwind x-face flux between cells i-1 and i at level
// k; faces at closed walls carry no flux.
func (s *strip) fluxX(i, k int) float64 {
	if (i == 0 && s.wallL) || (i == s.w && s.wallR) {
		return 0
	}
	if s.u[k] >= 0 {
		return s.u[k] * s.q[s.idx(i-1, k)]
	}
	return s.u[k] * s.q[s.idx(i, k)]
}

// fluxZ returns the upwind z-face flux between levels k-1 and k in
// column i; the top and bottom are closed.
func (s *strip) fluxZ(i, k int) float64 {
	if k == 0 || k == s.h {
		return 0
	}
	wf := 0.5 * (s.wv[k-1] + s.wv[k])
	if wf >= 0 {
		return wf * s.q[s.idx(i, k-1)]
	}
	return wf * s.q[s.idx(i, k)]
}

// step advances one conservative upwind step and returns the tracer mass
// injected by the source during the step.
func (s *strip) step() float64 {
	injected := 0.0
	for k := 0; k < s.h; k++ {
		for i := 0; i < s.w; i++ {
			id := s.idx(i, k)
			div := (s.fluxX(i+1, k) - s.fluxX(i, k)) +
				(s.fluxZ(i, k+1) - s.fluxZ(i, k))
			v := s.q[id] - s.dt*div
			// Injection source: a small region near the inflow wall.
			if s.inject && i < 2 && k >= s.h/3 && k < 2*s.h/3 {
				v += s.dt * s.injRate
				injected += s.dt * s.injRate
			}
			s.qn[id] = v
		}
	}
	// Preserve ghosts; swap interiors.
	for k := 0; k < s.h; k++ {
		for i := 0; i < s.w; i++ {
			s.q[s.idx(i, k)] = s.qn[s.idx(i, k)]
		}
	}
	return injected
}

// totalMass returns the interior tracer mass.
func (s *strip) totalMass() float64 {
	var m float64
	for k := 0; k < s.h; k++ {
		for i := 0; i < s.w; i++ {
			m += s.q[s.idx(i, k)]
		}
	}
	return m
}

// maxAbs returns the largest |q|, for finiteness checks.
func (s *strip) maxAbs() float64 {
	hi := 0.0
	for k := 0; k < s.h; k++ {
		for i := 0; i < s.w; i++ {
			if v := math.Abs(s.q[s.idx(i, k)]); v > hi {
				hi = v
			}
		}
	}
	return hi
}
