package sim

import (
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
)

// ProcState describes what a process is currently doing. It is exported so
// that diagnostic output (e.g. deadlock reports) can name the state.
type ProcState int

// Process states.
const (
	// StateNew means the process was spawned but has not run yet.
	StateNew ProcState = iota
	// StateRunning means the process is the one currently executing.
	StateRunning
	// StateWaiting means the process sleeps until a scheduled resume event.
	StateWaiting
	// StateParked means the process blocks until another party wakes it.
	StateParked
	// StateDone means the process function returned.
	StateDone
)

// String returns a human-readable state name.
func (s ProcState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunning:
		return "running"
	case StateWaiting:
		return "waiting"
	case StateParked:
		return "parked"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// Env is a discrete-event simulation environment: a virtual clock, an event
// queue, and a set of processes. An Env must be created with NewEnv (or
// taken from the pool with AcquireEnv). It is not safe for concurrent use
// from multiple OS threads; all interaction happens either from the
// goroutine that calls Run or from within process functions (which the
// scheduler serializes).
type Env struct {
	now float64
	seq uint64

	// slots is the event slab; freeSlots recycles indices of released
	// events so steady-state scheduling allocates nothing.
	slots     []eventSlot
	freeSlots []int32
	// heap holds future events ordered by (time, seq), keys inline.
	heap []heapEntry
	// nowq is a FIFO of slot indices for events scheduled at the current
	// timestamp (wakes, zero-length waits): they are already in (time,
	// seq) order by construction, so they bypass the heap entirely.
	nowq    []int32
	nowHead int

	procs    []*Proc
	procFree []*Proc
	current  *Proc
	yieldCh  chan struct{}
	failure  error
	stopped  bool

	// flowChunk bump-allocates Flow structs for this run's resources;
	// the chunks are dropped at reset, so flows never alias across runs.
	flowChunk []Flow

	// oracle, when set, tightens EarliestOutput: a model-level promise
	// about when this environment can next affect another one. Nil for
	// serial runs and partitions without a registered oracle.
	oracle OutputOracle
}

// OutputOracle is a conservative promise about an environment's next
// externally visible action. EarliestOutputTime returns a lower bound
// on the virtual time at which the environment can next produce output
// for another partition (post cross-partition mail). The bound must be
// sound under any future schedule: returning -Inf (no promise) is
// always safe, returning +Inf promises the partition will never send
// again. The parallel engine reads it only at window barriers, so the
// implementation may consult state mutated freely inside windows.
type OutputOracle interface {
	EarliestOutputTime() float64
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yieldCh: make(chan struct{})}
}

// envPool recycles environments — and with them event slabs, process
// structs, and their resume channels — across simulation runs. Campaign
// workers each acquire their own Env, so pooled reuse is race-free by
// construction and is exercised under -race by the campaign tests.
var envPool = sync.Pool{New: func() any { return NewEnv() }}

// AcquireEnv returns a reset environment from the pool. Release it with
// ReleaseEnv after Run completes to recycle its buffers.
func AcquireEnv() *Env {
	return envPool.Get().(*Env)
}

// ReleaseEnv resets e and returns it to the pool. Environments that did
// not finish cleanly (failed runs, undrained queues, processes still
// blocked) are abandoned to the garbage collector instead: their
// goroutines may still hold references to internal state.
func ReleaseEnv(e *Env) {
	if e == nil || !e.clean() {
		return
	}
	e.reset()
	envPool.Put(e)
}

// clean reports whether the environment finished a run with no failure,
// an empty queue, and every process completed.
func (e *Env) clean() bool {
	if e.failure != nil || e.current != nil {
		return false
	}
	if len(e.heap) > 0 || e.nowHead < len(e.nowq) {
		return false
	}
	for _, p := range e.procs {
		if p.state != StateDone {
			return false
		}
	}
	return true
}

// reset rewinds the environment to the zero-time state while keeping all
// allocated capacity: the event slab, the free list, and finished process
// structs (whose resume channels are reused by future Spawns).
func (e *Env) reset() {
	e.now, e.seq = 0, 0
	e.failure = nil
	e.stopped = false
	for _, p := range e.procs {
		p.fn = nil
		p.state = StateNew
		p.wakeTokens = 0
		p.pending = Event{}
		p.parkReason = ""
		p.name = ""
		e.procFree = append(e.procFree, p)
	}
	e.procs = e.procs[:0]
	e.nowq, e.nowHead = e.nowq[:0], 0
	e.flowChunk = nil
	e.oracle = nil
}

// SetOutputOracle registers (or clears, with nil) the environment's
// output oracle. The caller keeps ownership of the oracle; reset drops
// the reference.
func (e *Env) SetOutputOracle(o OutputOracle) { e.oracle = o }

// BumpAlloc hands out one zeroed *T from the chunk, growing by whole
// chunks of n, so allocation cost is paid once per n objects. Handed-out
// objects stay live until the chunk is dropped; use it for run-scoped
// objects (flows, MPI protocol state) that die with their run.
func BumpAlloc[T any](chunk *[]T, n int) *T {
	if len(*chunk) == 0 {
		*chunk = make([]T, n)
	}
	p := &(*chunk)[0]
	*chunk = (*chunk)[1:]
	return p
}

// allocFlow hands out one zeroed Flow from the environment's bump arena.
func (e *Env) allocFlow() *Flow {
	return BumpAlloc(&e.flowChunk, 256)
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() float64 { return e.now }

// checkTime panics on times that always indicate a modeling bug.
func (e *Env) checkTime(t float64) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %v < now %v", t, e.now))
	}
}

// allocSlot takes a slot from the free list (or grows the slab), stamps
// it with the next sequence number, and enqueues it: events at the
// current timestamp go to the FIFO now-queue, future events to the heap.
func (e *Env) allocSlot(t float64) int32 {
	e.checkTime(t)
	e.seq++
	var idx int32
	if n := len(e.freeSlots) - 1; n >= 0 {
		idx = e.freeSlots[n]
		e.freeSlots = e.freeSlots[:n]
	} else {
		e.slots = append(e.slots, eventSlot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	if s.gen&1 == 1 {
		s.gen++ // slot was last cancelled; restore the even live parity
	}
	s.time, s.seq = t, e.seq
	if t == e.now {
		s.pos = posNow
		e.nowq = append(e.nowq, idx)
	} else {
		e.heapPush(idx)
	}
	return idx
}

// releaseSlot clears a detached slot's references and recycles its index.
func (e *Env) releaseSlot(idx int32) {
	s := &e.slots[idx]
	s.fn, s.proc, s.proc2, s.flow = nil, nil, nil, nil
	s.fnArg, s.arg = nil, nil
	s.dead = false
	s.pos = posDetached
	e.freeSlots = append(e.freeSlots, idx)
}

// schedule inserts a callback event at absolute time t.
func (e *Env) schedule(t float64, fn func()) Event {
	idx := e.allocSlot(t)
	s := &e.slots[idx]
	s.kind, s.fn = evFn, fn
	return Event{env: e, idx: idx, gen: s.gen}
}

// scheduleArg inserts a static-callback event at absolute time t. The
// callback function value must not capture state — everything it needs
// travels in arg — so the hot path allocates no closure.
func (e *Env) scheduleArg(t float64, fn func(any), arg any) Event {
	idx := e.allocSlot(t)
	s := &e.slots[idx]
	s.kind, s.fnArg, s.arg = evFnArg, fn, arg
	return Event{env: e, idx: idx, gen: s.gen}
}

// scheduleProc inserts a typed process event (start, resume, wake) at
// absolute time t without allocating a closure.
func (e *Env) scheduleProc(t float64, kind evKind, p *Proc) Event {
	idx := e.allocSlot(t)
	s := &e.slots[idx]
	s.kind, s.proc = kind, p
	return Event{env: e, idx: idx, gen: s.gen}
}

// scheduleFlow inserts a flow-completion event at absolute time t.
func (e *Env) scheduleFlow(t float64, f *Flow) Event {
	idx := e.allocSlot(t)
	s := &e.slots[idx]
	s.kind, s.flow = evFlow, f
	return Event{env: e, idx: idx, gen: s.gen}
}

// retimeFlow moves a flow's completion event to a new time, reusing the
// queued slot when possible. It consumes exactly one sequence number —
// the same accounting as the cancel-plus-reschedule it replaces — so
// event ordering is identical to the original engine's.
func (e *Env) retimeFlow(ev Event, t float64, f *Flow) Event {
	if ev.valid() {
		s := &e.slots[ev.idx]
		if s.pos >= 0 {
			e.checkTime(t)
			e.seq++
			s.time, s.seq = t, e.seq
			ent := &e.heap[s.pos]
			ent.time, ent.seq = t, e.seq
			e.heapFix(s.pos)
			return ev
		}
		// Rare: the event sits in the now-queue (a flow that was due to
		// complete at the current instant is being rescheduled). FIFO
		// entries cannot move; cancel in place and start fresh.
		ev.Cancel()
	}
	return e.scheduleFlow(t, f)
}

// At schedules fn to run at absolute virtual time t. The callback runs on
// the scheduler and must not block in virtual time; use Spawn for blocking
// logic.
func (e *Env) At(t float64, fn func()) Event { return e.schedule(t, fn) }

// After schedules fn to run d seconds after the current time.
func (e *Env) After(d float64, fn func()) Event { return e.schedule(e.now+d, fn) }

// AtArg schedules fn(arg) to run at absolute virtual time t. Unlike At,
// the callback carries its state in arg, so callers passing a top-level
// function allocate nothing — the closure-free variant for hot paths
// (MPI protocol events fire once per message).
func (e *Env) AtArg(t float64, fn func(any), arg any) Event { return e.scheduleArg(t, fn, arg) }

// AfterArg schedules fn(arg) to run d seconds after the current time; see
// AtArg for the allocation contract.
func (e *Env) AfterArg(d float64, fn func(any), arg any) Event {
	return e.scheduleArg(e.now+d, fn, arg)
}

// Proc is a simulation process: a goroutine whose execution is interleaved
// with other processes in virtual time. Process methods that block (Wait,
// Park, resource acquisition) must only be called from within the process's
// own function.
type Proc struct {
	env        *Env
	id         int
	name       string
	state      ProcState
	resume     chan struct{}
	wakeTokens int
	pending    Event // scheduled resume while in StateWaiting
	parkReason string
	fn         func(*Proc)
}

// Spawn creates a process named name executing fn and schedules it to start
// at the current virtual time. It returns immediately; fn runs once the
// scheduler reaches the start event during Run. Finished process structs
// from a previous run of a pooled environment are reused, resume channel
// included.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	var p *Proc
	if n := len(e.procFree) - 1; n >= 0 {
		p = e.procFree[n]
		e.procFree = e.procFree[:n]
	} else {
		p = &Proc{env: e, resume: make(chan struct{})}
	}
	p.id = len(e.procs)
	p.name = name
	p.state = StateNew
	p.fn = fn
	e.procs = append(e.procs, p)
	e.scheduleProc(e.now, evStart, p)
	return p
}

// startProc launches the process goroutine and immediately hands control to
// it; the scheduler blocks until the process yields.
func (e *Env) startProc(p *Proc) {
	go p.run()
	e.transferTo(p)
}

// run is the body of a process goroutine.
func (p *Proc) run() {
	e := p.env
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			if e.failure == nil {
				e.failure = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
			}
		}
		p.state = StateDone
		e.yieldCh <- struct{}{}
	}()
	p.fn(p)
}

// transferTo hands control to p and blocks the scheduler goroutine until p
// yields (parks, waits, or finishes).
func (e *Env) transferTo(p *Proc) {
	prev := e.current
	e.current = p
	p.state = StateRunning
	p.resume <- struct{}{}
	<-e.yieldCh
	e.current = prev
}

// yield returns control from the running process to the scheduler and
// blocks until the scheduler resumes this process.
func (p *Proc) yield() {
	p.env.yieldCh <- struct{}{}
	<-p.resume
	p.state = StateRunning
}

// mustBeCurrent panics unless p is the currently executing process; all
// blocking primitives require this.
func (p *Proc) mustBeCurrent(op string) {
	if p.env.current != p {
		panic(fmt.Sprintf("sim: %s called on process %q which is not running (state %v)", op, p.name, p.state))
	}
}

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the process's spawn index, unique within its Env.
func (p *Proc) ID() int { return p.id }

// State returns the current scheduling state of the process.
func (p *Proc) State() ProcState { return p.state }

// Now returns the current virtual time; shorthand for p.Env().Now().
func (p *Proc) Now() float64 { return p.env.now }

// Wait suspends the process for d seconds of virtual time. A negative d is
// treated as zero (the process yields and resumes at the same timestamp,
// after already-scheduled events at that timestamp).
func (p *Proc) Wait(d float64) {
	if d < 0 {
		d = 0
	}
	p.WaitUntil(p.env.now + d)
}

// WaitUntil suspends the process until absolute virtual time t.
func (p *Proc) WaitUntil(t float64) {
	p.mustBeCurrent("WaitUntil")
	e := p.env
	if t < e.now {
		t = e.now
	}
	p.state = StateWaiting
	p.pending = e.scheduleProc(t, evResume, p)
	p.yield()
}

// Park blocks the process until another party calls Wake or WakeAt for it.
// If a wake token is already available (Wake happened first), Park consumes
// it and returns immediately. The reason string appears in deadlock
// reports; hot paths should pass a precomputed or constant string.
func (p *Proc) Park(reason string) {
	p.mustBeCurrent("Park")
	if p.wakeTokens > 0 {
		p.wakeTokens--
		return
	}
	p.state = StateParked
	p.parkReason = reason
	p.yield()
	p.parkReason = ""
}

// Wake makes a parked process runnable at the current virtual time. If the
// process is not parked (yet, or anymore — something else may have woken it
// between scheduling and firing), the wake is remembered as a token that
// the next Park consumes; Park users re-check their condition in a loop, so
// spurious tokens are harmless.
func (e *Env) Wake(p *Proc) { e.WakeAt(e.now, p) }

// WakeAt schedules a wake for process p at absolute virtual time t.
func (e *Env) WakeAt(t float64, p *Proc) {
	if p.state == StateDone {
		panic(fmt.Sprintf("sim: waking finished process %q", p.name))
	}
	e.scheduleProc(t, evWake, p)
}

// WakePair schedules one event at the current time that wakes a and then
// b, exactly as two consecutive Wake calls would but with a single queue
// entry — the batched fast path for symmetric completions (a rendezvous
// message finishing wakes sender and receiver together).
func (e *Env) WakePair(a, b *Proc) {
	if a.state == StateDone || b.state == StateDone {
		panic(fmt.Sprintf("sim: waking finished process %q/%q", a.name, b.name))
	}
	idx := e.allocSlot(e.now)
	s := &e.slots[idx]
	s.kind, s.proc, s.proc2 = evWakePair, a, b
}

// fireWake delivers one wake: a parked process resumes, a finished one
// drops the wake, anything else (running, timed wait, not started) keeps
// a token for its next Park.
func (e *Env) fireWake(p *Proc) {
	switch p.state {
	case StateParked:
		e.transferTo(p)
	case StateDone:
		// Process finished between scheduling and firing; drop.
	default:
		p.wakeTokens++
	}
}

// peekNext returns the queue position of the earliest live event without
// removing it: (slot index, whether it sits in the heap, found). Dead
// now-queue entries (cancelled in place) are drained and released here.
func (e *Env) peekNext() (int32, bool, bool) {
	for e.nowHead < len(e.nowq) {
		idx := e.nowq[e.nowHead]
		if !e.slots[idx].dead {
			break
		}
		e.nowHead++
		e.releaseSlot(idx)
	}
	if e.nowHead == len(e.nowq) {
		e.nowq, e.nowHead = e.nowq[:0], 0
	}
	hasNow := e.nowHead < len(e.nowq)
	hasHeap := len(e.heap) > 0
	switch {
	case hasNow && hasHeap:
		nowIdx := e.nowq[e.nowHead]
		ns := &e.slots[nowIdx]
		if entryLess(e.heap[0], heapEntry{time: ns.time, seq: ns.seq}) {
			return e.heap[0].idx, true, true
		}
		return nowIdx, false, true
	case hasNow:
		return e.nowq[e.nowHead], false, true
	case hasHeap:
		return e.heap[0].idx, true, true
	default:
		return 0, false, false
	}
}

// dispatch releases the slot and then executes the event. Releasing
// first means the event's own callback can recycle the slot and that a
// late Cancel on a fired event is a no-op, as before.
func (e *Env) dispatch(idx int32) {
	s := &e.slots[idx]
	kind := s.kind
	fn := s.fn
	fnArg, arg := s.fnArg, s.arg
	p, p2, flow := s.proc, s.proc2, s.flow
	s.gen += 2 // fired: handles go stale with even parity (not cancelled)
	e.releaseSlot(idx)
	switch kind {
	case evFn:
		fn()
	case evFnArg:
		fnArg(arg)
	case evStart:
		e.startProc(p)
	case evResume:
		p.pending = Event{}
		e.transferTo(p)
	case evWake:
		e.fireWake(p)
	case evWakePair:
		e.fireWake(p)
		e.fireWake(p2)
	case evFlow:
		flow.res.complete(flow)
	}
}

// Run executes events until the queue is exhausted or a process panics.
// It returns an error if a process panicked or if, after the queue drained,
// some processes are still parked (a deadlock in the simulated system).
func (e *Env) Run() error { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with timestamps <= t. The clock is left at the
// time of the last executed event (or at t if no event remained).
func (e *Env) RunUntil(t float64) error {
	if e.stopped {
		return fmt.Errorf("sim: environment already stopped")
	}
	for {
		idx, fromHeap, ok := e.peekNext()
		if !ok {
			break
		}
		s := &e.slots[idx]
		if s.time > t {
			// Leave it queued for a later RunUntil call.
			if e.now < t && !math.IsInf(t, 1) {
				e.now = t
			}
			return e.failure
		}
		if fromHeap {
			e.heapPopMin()
		} else {
			e.nowHead++
			s.pos = posDetached
		}
		e.now = s.time
		e.dispatch(idx)
		if e.failure != nil {
			e.stopped = true
			return e.failure
		}
	}
	if math.IsInf(t, 1) {
		if err := e.deadlockError(); err != nil {
			e.stopped = true
			return err
		}
	}
	return nil
}

// RunBefore executes events with timestamps strictly below t and leaves
// later events queued. The clock stays at the last executed event, so
// events delivered afterwards at times >= t never land in the past. It
// is the window-execution primitive of the conservative-lookahead
// parallel engine: each partition runs RunBefore(window) concurrently,
// then merges cross-partition messages at the barrier. No deadlock
// check happens here — an empty queue only means this partition is
// waiting for the next window.
func (e *Env) RunBefore(t float64) error {
	if e.stopped {
		return fmt.Errorf("sim: environment already stopped")
	}
	for {
		idx, fromHeap, ok := e.peekNext()
		if !ok {
			return nil
		}
		s := &e.slots[idx]
		if s.time >= t {
			return nil
		}
		if fromHeap {
			e.heapPopMin()
		} else {
			e.nowHead++
			s.pos = posDetached
		}
		e.now = s.time
		e.dispatch(idx)
		if e.failure != nil {
			e.stopped = true
			return e.failure
		}
	}
}

// NextEventTime returns the timestamp of the earliest queued live event,
// or false when the queue is empty. The parallel engine uses it to
// compute the global window floor between barriers.
func (e *Env) NextEventTime() (float64, bool) {
	idx, _, ok := e.peekNext()
	if !ok {
		return 0, false
	}
	return e.slots[idx].time, true
}

// EarliestOutput returns a lower bound on the virtual time at which
// this environment can next affect another partition. With no queued
// events the environment is inert until mail arrives (+Inf); otherwise
// the next event time is always a sound bound — nothing can happen
// before it — and a registered oracle may tighten it further (a parked
// compute phase cannot send before it ends, even though its completion
// event is already queued). Never lower than NextEventTime, so a
// confused oracle can only cost performance, not correctness. An
// infinite promise is honored only when the queue really is empty: a
// partition with queued events always reports a finite bound, so an
// oracle bug can never make the engine skip over live work.
func (e *Env) EarliestOutput() float64 {
	nt, ok := e.NextEventTime()
	if !ok {
		return math.Inf(1)
	}
	if e.oracle != nil {
		if b := e.oracle.EarliestOutputTime(); b > nt && !math.IsInf(b, 1) {
			return b
		}
	}
	return nt
}

// CheckDeadlock reports parked processes on a drained environment; the
// parallel engine calls it once every partition has run out of events
// and no inter-partition messages remain.
func (e *Env) CheckDeadlock() error { return e.deadlockError() }

// deadlockError reports parked processes after the event queue drained.
func (e *Env) deadlockError() error {
	var stuck []*Proc
	for _, p := range e.procs {
		if p.state == StateParked {
			stuck = append(stuck, p)
		}
	}
	if len(stuck) == 0 {
		return nil
	}
	sort.Slice(stuck, func(i, j int) bool { return stuck[i].id < stuck[j].id })
	msg := "sim: deadlock, parked processes:"
	for _, p := range stuck {
		msg += fmt.Sprintf(" %q(%s)", p.name, p.parkReason)
	}
	return fmt.Errorf("%s", msg)
}

// Procs returns all processes ever spawned in the environment.
func (e *Env) Procs() []*Proc { return e.procs }
