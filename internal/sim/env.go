package sim

import (
	"fmt"
	"math"
	"runtime/debug"
	"sort"
)

// ProcState describes what a process is currently doing. It is exported so
// that diagnostic output (e.g. deadlock reports) can name the state.
type ProcState int

// Process states.
const (
	// StateNew means the process was spawned but has not run yet.
	StateNew ProcState = iota
	// StateRunning means the process is the one currently executing.
	StateRunning
	// StateWaiting means the process sleeps until a scheduled resume event.
	StateWaiting
	// StateParked means the process blocks until another party wakes it.
	StateParked
	// StateDone means the process function returned.
	StateDone
)

// String returns a human-readable state name.
func (s ProcState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunning:
		return "running"
	case StateWaiting:
		return "waiting"
	case StateParked:
		return "parked"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// Env is a discrete-event simulation environment: a virtual clock, an event
// queue, and a set of processes. An Env must be created with NewEnv. It is
// not safe for concurrent use from multiple OS threads; all interaction
// happens either from the goroutine that calls Run or from within process
// functions (which the scheduler serializes).
type Env struct {
	now     float64
	seq     uint64
	queue   eventHeap
	procs   []*Proc
	current *Proc
	yieldCh chan struct{}
	failure error
	stopped bool
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yieldCh: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() float64 { return e.now }

// schedule inserts an event at absolute time t. Panics if t is in the past
// or not a finite number, which always indicates a modeling bug.
func (e *Env) schedule(t float64, fn func()) *Event {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %v < now %v", t, e.now))
	}
	e.seq++
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.queue.push(ev)
	return ev
}

// At schedules fn to run at absolute virtual time t. The callback runs on
// the scheduler and must not block in virtual time; use Spawn for blocking
// logic.
func (e *Env) At(t float64, fn func()) *Event { return e.schedule(t, fn) }

// After schedules fn to run d seconds after the current time.
func (e *Env) After(d float64, fn func()) *Event { return e.schedule(e.now+d, fn) }

// Proc is a simulation process: a goroutine whose execution is interleaved
// with other processes in virtual time. Process methods that block (Wait,
// Park, resource acquisition) must only be called from within the process's
// own function.
type Proc struct {
	env        *Env
	id         int
	name       string
	state      ProcState
	resume     chan struct{}
	wakeTokens int
	pending    *Event // scheduled resume while in StateWaiting
	parkReason string
	fn         func(*Proc)
}

// Spawn creates a process named name executing fn and schedules it to start
// at the current virtual time. It returns immediately; fn runs once the
// scheduler reaches the start event during Run.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		env:    e,
		id:     len(e.procs),
		name:   name,
		state:  StateNew,
		resume: make(chan struct{}),
		fn:     fn,
	}
	e.procs = append(e.procs, p)
	e.schedule(e.now, func() { e.startProc(p) })
	return p
}

// startProc launches the process goroutine and immediately hands control to
// it; the scheduler blocks until the process yields.
func (e *Env) startProc(p *Proc) {
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if e.failure == nil {
					e.failure = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			p.state = StateDone
			e.yieldCh <- struct{}{}
		}()
		p.fn(p)
	}()
	e.transferTo(p)
}

// transferTo hands control to p and blocks the scheduler goroutine until p
// yields (parks, waits, or finishes).
func (e *Env) transferTo(p *Proc) {
	prev := e.current
	e.current = p
	p.state = StateRunning
	p.resume <- struct{}{}
	<-e.yieldCh
	e.current = prev
}

// yield returns control from the running process to the scheduler and
// blocks until the scheduler resumes this process.
func (p *Proc) yield() {
	p.env.yieldCh <- struct{}{}
	<-p.resume
	p.state = StateRunning
}

// mustBeCurrent panics unless p is the currently executing process; all
// blocking primitives require this.
func (p *Proc) mustBeCurrent(op string) {
	if p.env.current != p {
		panic(fmt.Sprintf("sim: %s called on process %q which is not running (state %v)", op, p.name, p.state))
	}
}

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the process's spawn index, unique within its Env.
func (p *Proc) ID() int { return p.id }

// State returns the current scheduling state of the process.
func (p *Proc) State() ProcState { return p.state }

// Now returns the current virtual time; shorthand for p.Env().Now().
func (p *Proc) Now() float64 { return p.env.now }

// Wait suspends the process for d seconds of virtual time. A negative d is
// treated as zero (the process yields and resumes at the same timestamp,
// after already-scheduled events at that timestamp).
func (p *Proc) Wait(d float64) {
	if d < 0 {
		d = 0
	}
	p.WaitUntil(p.env.now + d)
}

// WaitUntil suspends the process until absolute virtual time t.
func (p *Proc) WaitUntil(t float64) {
	p.mustBeCurrent("WaitUntil")
	e := p.env
	if t < e.now {
		t = e.now
	}
	p.state = StateWaiting
	p.pending = e.schedule(t, func() {
		p.pending = nil
		e.transferTo(p)
	})
	p.yield()
}

// Park blocks the process until another party calls Wake or WakeAt for it.
// If a wake token is already available (Wake happened first), Park consumes
// it and returns immediately. The reason string appears in deadlock reports.
func (p *Proc) Park(reason string) {
	p.mustBeCurrent("Park")
	if p.wakeTokens > 0 {
		p.wakeTokens--
		return
	}
	p.state = StateParked
	p.parkReason = reason
	p.yield()
	p.parkReason = ""
}

// Wake makes a parked process runnable at the current virtual time. If the
// process is not parked (yet, or anymore — something else may have woken it
// between scheduling and firing), the wake is remembered as a token that
// the next Park consumes; Park users re-check their condition in a loop, so
// spurious tokens are harmless.
func (e *Env) Wake(p *Proc) { e.WakeAt(e.now, p) }

// WakeAt schedules a wake for process p at absolute virtual time t.
func (e *Env) WakeAt(t float64, p *Proc) {
	if p.state == StateDone {
		panic(fmt.Sprintf("sim: waking finished process %q", p.name))
	}
	e.schedule(t, func() {
		switch p.state {
		case StateParked:
			e.transferTo(p)
		case StateDone:
			// Process finished between scheduling and firing; drop.
		default:
			// Running, in a timed wait, or not started: leave a token for
			// the next Park.
			p.wakeTokens++
		}
	})
}

// Run executes events until the queue is exhausted or a process panics.
// It returns an error if a process panicked or if, after the queue drained,
// some processes are still parked (a deadlock in the simulated system).
func (e *Env) Run() error { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with timestamps <= t. The clock is left at the
// time of the last executed event (or at t if no event remained).
func (e *Env) RunUntil(t float64) error {
	if e.stopped {
		return fmt.Errorf("sim: environment already stopped")
	}
	for {
		ev := e.queue.popLive()
		if ev == nil {
			break
		}
		if ev.time > t {
			// Put it back for a later RunUntil call.
			e.queue.push(ev)
			if e.now < t && !math.IsInf(t, 1) {
				e.now = t
			}
			return e.failure
		}
		e.now = ev.time
		ev.fn()
		if e.failure != nil {
			e.stopped = true
			return e.failure
		}
	}
	if math.IsInf(t, 1) {
		if err := e.deadlockError(); err != nil {
			e.stopped = true
			return err
		}
	}
	return nil
}

// deadlockError reports parked processes after the event queue drained.
func (e *Env) deadlockError() error {
	var stuck []*Proc
	for _, p := range e.procs {
		if p.state == StateParked {
			stuck = append(stuck, p)
		}
	}
	if len(stuck) == 0 {
		return nil
	}
	sort.Slice(stuck, func(i, j int) bool { return stuck[i].id < stuck[j].id })
	msg := "sim: deadlock, parked processes:"
	for _, p := range stuck {
		msg += fmt.Sprintf(" %q(%s)", p.name, p.parkReason)
	}
	return fmt.Errorf("%s", msg)
}

// Procs returns all processes ever spawned in the environment.
func (e *Env) Procs() []*Proc { return e.procs }
