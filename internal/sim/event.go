// Package sim implements a process-oriented discrete-event simulation
// engine with a virtual clock.
//
// The engine is the substrate for the whole repository: MPI ranks are
// simulated as processes (goroutines) that advance a shared virtual clock,
// and hardware resources (memory-domain bandwidth, network links) are
// modeled as processor-sharing resources in virtual time.
//
// Exactly one process executes at any instant; the scheduler hands control
// to processes in (time, sequence) order, which makes every simulation run
// fully deterministic. Wall-clock time plays no role.
package sim

import "container/heap"

// Event is a scheduled occurrence in virtual time. Events are created
// through Env.At and Env.After or indirectly by process primitives such as
// Proc.Wait. An Event can be cancelled before it fires.
type Event struct {
	time float64
	seq  uint64
	fn   func()
	dead bool
	idx  int // heap index, -1 once popped
}

// Time returns the virtual time at which the event is scheduled to fire.
func (ev *Event) Time() float64 { return ev.time }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (ev *Event) Cancel() { ev.dead = true }

// Cancelled reports whether the event was cancelled.
func (ev *Event) Cancelled() bool { return ev.dead }

// eventHeap is a min-heap ordered by (time, seq). The sequence number makes
// the pop order — and therefore the entire simulation — deterministic when
// several events share a timestamp.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// push schedules ev on the heap.
func (h *eventHeap) push(ev *Event) { heap.Push(h, ev) }

// popLive removes and returns the earliest non-cancelled event, or nil if
// the heap holds no live events.
func (h *eventHeap) popLive() *Event {
	for h.Len() > 0 {
		ev := heap.Pop(h).(*Event)
		if !ev.dead {
			return ev
		}
	}
	return nil
}
