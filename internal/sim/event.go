// Package sim implements a process-oriented discrete-event simulation
// engine with a virtual clock.
//
// The engine is the substrate for the whole repository: MPI ranks are
// simulated as processes (goroutines) that advance a shared virtual clock,
// and hardware resources (memory-domain bandwidth, network links) are
// modeled as processor-sharing resources in virtual time.
//
// Exactly one process executes at any instant; the scheduler hands control
// to processes in (time, sequence) order, which makes every simulation run
// fully deterministic. Wall-clock time plays no role.
//
// The event queue is allocation-free on the hot path: events live in a
// reusable slab of slots recycled through a free list, ordered by an
// index-based min-heap plus a FIFO "now queue" for events scheduled at
// the current timestamp. Events are typed — process starts, timed-wait
// resumes, wakes, and flow completions are dispatched directly on the
// scheduler without per-event closures; only user callbacks (Env.At,
// Env.After) carry a function value.
package sim

// Event is a handle to a scheduled occurrence in virtual time. Events are
// created through Env.At and Env.After or indirectly by process
// primitives such as Proc.Wait. An Event can be cancelled before it
// fires. The zero Event is inert: Cancel is a no-op and Cancelled
// reports false.
//
// Handles are generation-checked: once the event has fired and its slot
// has been recycled by a later event, the handle goes stale and all
// methods degrade to the zero-Event behaviour.
type Event struct {
	env *Env
	idx int32
	gen uint64
}

// evKind discriminates what an event does when it fires.
type evKind uint8

const (
	// evFn runs a user callback on the scheduler (Env.At / Env.After).
	evFn evKind = iota
	// evStart launches a spawned process.
	evStart
	// evResume resumes a process from a timed wait (Proc.Wait).
	evResume
	// evWake wakes a parked process or leaves a wake token (Env.Wake).
	evWake
	// evWakePair wakes two processes in order with one queue entry.
	evWakePair
	// evFlow completes a PSResource flow.
	evFlow
	// evFnArg runs a static callback with a stored argument (Env.AtArg /
	// Env.AfterArg) — the closure-free variant of evFn for hot paths.
	evFnArg
)

// eventSlot is the in-queue representation of one event. Slots live in
// Env.slots and are recycled through Env.freeSlots; the generation
// counter distinguishes a live Event handle from a stale one whose slot
// has been reused. A slot's generation is even while the event is live
// or has fired, and odd after a Cancel — which is how Cancelled can
// still answer truthfully for a cancelled event whose slot has not been
// reallocated yet.
type eventSlot struct {
	time  float64
	seq   uint64
	fn    func()
	fnArg func(any) // evFnArg: static callback taking arg, so no closure is built
	arg   any
	proc  *Proc
	proc2 *Proc
	flow  *Flow
	kind  evKind
	dead  bool // cancelled while in the now-queue; released on drain
	pos   int32
	gen   uint64
}

// Slot positions outside the heap.
const (
	posDetached int32 = -1 // not queued: dispatching or released
	posNow      int32 = -2 // in the now-queue
)

// Time returns the virtual time at which the event is scheduled to fire
// (0 once the slot has been recycled by a later event).
func (ev Event) Time() float64 {
	if ev.env == nil {
		return 0
	}
	s := &ev.env.slots[ev.idx]
	if s.gen == ev.gen || s.gen == ev.gen+1 {
		return s.time
	}
	return 0
}

// Cancel prevents the event from firing. Cancelling an event that
// already fired or was already cancelled is a no-op. Unlike the heap of
// the original engine, cancellation removes the entry immediately, so
// cancelled events never pile up in the queue.
func (ev Event) Cancel() {
	e := ev.env
	if e == nil {
		return
	}
	s := &e.slots[ev.idx]
	if s.gen != ev.gen {
		return // already fired, cancelled, or recycled
	}
	if s.pos == posNow {
		// FIFO entries cannot be unlinked in O(1); mark dead and let the
		// queue release the slot when the drain reaches it.
		s.gen++
		s.dead = true
		return
	}
	if s.pos >= 0 {
		e.heapRemove(s.pos)
	}
	s.gen++
	e.releaseSlot(ev.idx)
}

// Cancelled reports whether the event was cancelled. Accurate until the
// event's slot is reused by a later event, after which it reports false.
func (ev Event) Cancelled() bool {
	if ev.env == nil {
		return false
	}
	return ev.env.slots[ev.idx].gen == ev.gen+1
}

// valid reports whether the handle still addresses its live event.
func (ev Event) valid() bool {
	return ev.env != nil && ev.env.slots[ev.idx].gen == ev.gen
}

// heapEntry mirrors a queued slot's ordering key so comparisons during
// sifting touch only the contiguous heap array, not the slot slab.
type heapEntry struct {
	time float64
	seq  uint64
	idx  int32
}

// entryLess orders queued events by (time, seq). The sequence number
// makes the pop order — and therefore the entire simulation — fully
// deterministic when several events share a timestamp.
func entryLess(a, b heapEntry) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// The heap is 4-ary: half the levels of a binary heap, so pops and
// retimes do fewer cache-missing hops for the same (time, seq) order.

// heapPush inserts a slot index into the min-heap.
func (e *Env) heapPush(idx int32) {
	s := &e.slots[idx]
	i := int32(len(e.heap))
	e.heap = append(e.heap, heapEntry{time: s.time, seq: s.seq, idx: idx})
	s.pos = i
	e.siftUp(i)
}

// heapPopMin removes and returns the earliest heap entry's slot index.
func (e *Env) heapPopMin() int32 {
	h := e.heap
	idx := h[0].idx
	last := len(h) - 1
	e.slots[idx].pos = posDetached
	if last > 0 {
		h[0] = h[last]
		e.slots[h[0].idx].pos = 0
	}
	e.heap = h[:last]
	if last > 1 {
		e.siftDown(0)
	}
	return idx
}

// heapRemove deletes the entry at heap position pos.
func (e *Env) heapRemove(pos int32) {
	h := e.heap
	idx := h[pos].idx
	last := int32(len(h) - 1)
	e.slots[idx].pos = posDetached
	if pos != last {
		h[pos] = h[last]
		e.slots[h[pos].idx].pos = pos
	}
	e.heap = h[:last]
	if pos < last {
		e.heapFix(pos)
	}
}

// heapFix restores heap order after the entry at pos changed its key.
func (e *Env) heapFix(pos int32) {
	if !e.siftDown(pos) {
		e.siftUp(pos)
	}
}

// siftUp moves the entry at i toward the root until its parent is not
// larger, writing the moving entry once into its final hole.
func (e *Env) siftUp(i int32) {
	h := e.heap
	ent := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(ent, h[parent]) {
			break
		}
		h[i] = h[parent]
		e.slots[h[i].idx].pos = i
		i = parent
	}
	h[i] = ent
	e.slots[ent.idx].pos = i
}

// siftDown sinks the entry at i below its smallest child while that
// child is smaller; it reports whether the entry moved.
func (e *Env) siftDown(i int32) bool {
	h := e.heap
	n := int32(len(h))
	ent := h[i]
	start := i
	for {
		first := 4*i + 1
		if first >= n || first < 0 { // first < 0 after int32 overflow
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(h[c], h[m]) {
				m = c
			}
		}
		if !entryLess(h[m], ent) {
			break
		}
		h[i] = h[m]
		e.slots[h[i].idx].pos = i
		i = m
	}
	h[i] = ent
	e.slots[ent.idx].pos = i
	return i > start
}
