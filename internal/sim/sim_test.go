package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("new env clock = %v, want 0", e.Now())
	}
}

func TestSingleProcessWait(t *testing.T) {
	e := NewEnv()
	var end float64
	e.Spawn("p", func(p *Proc) {
		p.Wait(1.5)
		p.Wait(2.5)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 4.0 {
		t.Fatalf("process ended at %v, want 4.0", end)
	}
}

func TestNegativeWaitActsAsZero(t *testing.T) {
	e := NewEnv()
	var end float64
	e.Spawn("p", func(p *Proc) {
		p.Wait(-3)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Fatalf("end = %v, want 0", end)
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		var log []string
		for _, spec := range []struct {
			name string
			step float64
		}{{"a", 1.0}, {"b", 1.5}} {
			name, step := spec.name, spec.step
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Wait(step)
					log = append(log, fmt.Sprintf("%s@%.1f", name, p.Now()))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	// At the t=3.0 tie, b resumes first: its resume event was scheduled at
	// t=1.5, before a scheduled its own at t=2.0 (FIFO by scheduling order).
	want := "a@1.0 b@1.5 a@2.0 b@3.0 a@3.0 b@4.5"
	if got := strings.Join(first, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
	for i := 0; i < 5; i++ {
		if got := strings.Join(run(), " "); got != strings.Join(first, " ") {
			t.Fatalf("run %d nondeterministic: %v vs %v", i, run(), first)
		}
	}
}

func TestTieBreakBySpawnOrder(t *testing.T) {
	e := NewEnv()
	var order []string
	for _, n := range []string{"x", "y", "z"} {
		name := n
		e.Spawn(name, func(p *Proc) {
			p.Wait(1)
			order = append(order, name)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "xyz" {
		t.Fatalf("tie-break order = %q, want xyz", got)
	}
}

func TestParkWake(t *testing.T) {
	e := NewEnv()
	var wokenAt float64
	sleeper := e.Spawn("sleeper", func(p *Proc) {
		p.Park("waiting for waker")
		wokenAt = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Wait(7)
		p.Env().Wake(sleeper)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt != 7 {
		t.Fatalf("woken at %v, want 7", wokenAt)
	}
}

func TestWakeBeforeParkLeavesToken(t *testing.T) {
	e := NewEnv()
	var seq []string
	var target *Proc
	target = e.Spawn("target", func(p *Proc) {
		p.Wait(5) // waker fires at t=1 while we are in timed wait? No: wake targets only parked procs.
		seq = append(seq, "pre-park")
		p.Park("token should exist")
		seq = append(seq, fmt.Sprintf("resumed@%v", p.Now()))
	})
	_ = target
	e.Spawn("waker", func(p *Proc) {
		p.Wait(6)
		p.Env().Wake(target)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "pre-park resumed@6"
	if got := strings.Join(seq, " "); got != want {
		t.Fatalf("sequence = %q, want %q", got, want)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEnv()
	e.Spawn("stuck", func(p *Proc) { p.Park("never woken") })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
	if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "never woken") {
		t.Fatalf("deadlock error %q lacks process name or reason", err)
	}
}

func TestProcessPanicIsReported(t *testing.T) {
	e := NewEnv()
	e.Spawn("boom", func(p *Proc) {
		p.Wait(1)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not propagated: %v", err)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEnv()
	ticks := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Wait(1)
			ticks++
		}
	})
	if err := e.RunUntil(10.5); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if err := e.RunUntil(20.5); err != nil {
		t.Fatal(err)
	}
	if ticks != 20 {
		t.Fatalf("ticks = %d after second leg, want 20", ticks)
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEnv()
	fired := false
	ev := e.At(5, func() { fired = true })
	e.At(1, func() { ev.Cancel() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) { p.Wait(10) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestPSResourceSingleFlowFullRate(t *testing.T) {
	e := NewEnv()
	r := NewPSResource(e, "mem", 10, 0)
	var done float64
	e.Spawn("p", func(p *Proc) {
		r.Transfer(p, 100)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(done, 10, 1e-9) {
		t.Fatalf("transfer completed at %v, want 10", done)
	}
}

func TestPSResourceFlowCap(t *testing.T) {
	e := NewEnv()
	r := NewPSResource(e, "mem", 10, 4)
	var done float64
	e.Spawn("p", func(p *Proc) {
		r.Transfer(p, 100)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(done, 25, 1e-9) {
		t.Fatalf("capped transfer completed at %v, want 25", done)
	}
}

func TestPSResourceEqualSharing(t *testing.T) {
	e := NewEnv()
	r := NewPSResource(e, "mem", 10, 0)
	times := make([]float64, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Transfer(p, 100)
			times[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, tm := range times {
		if !almostEqual(tm, 20, 1e-9) {
			t.Fatalf("flow %d completed at %v, want 20 (shared rate)", i, tm)
		}
	}
}

func TestPSResourceStaggeredArrival(t *testing.T) {
	// Capacity 10, no cap. Flow A: 100 units at t=0. Flow B: 50 units at t=5.
	// t in [0,5): A alone at 10/s -> 50 done, 50 left.
	// t in [5,?): both at 5/s. B needs 10 s -> done t=15; A needs 10 s -> done t=15.
	e := NewEnv()
	r := NewPSResource(e, "mem", 10, 0)
	var doneA, doneB float64
	e.Spawn("a", func(p *Proc) {
		r.Transfer(p, 100)
		doneA = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Wait(5)
		r.Transfer(p, 50)
		doneB = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(doneA, 15, 1e-9) || !almostEqual(doneB, 15, 1e-9) {
		t.Fatalf("doneA=%v doneB=%v, want both 15", doneA, doneB)
	}
}

func TestPSResourceRateReallocationAfterCompletion(t *testing.T) {
	// Capacity 10, no cap. A: 40 units, B: 100 units, both at t=0.
	// Shared at 5/s: A done at t=8 (B has 60 left). B alone at 10/s: done t=14.
	e := NewEnv()
	r := NewPSResource(e, "mem", 10, 0)
	var doneA, doneB float64
	e.Spawn("a", func(p *Proc) { r.Transfer(p, 40); doneA = p.Now() })
	e.Spawn("b", func(p *Proc) { r.Transfer(p, 100); doneB = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(doneA, 8, 1e-9) {
		t.Fatalf("doneA=%v, want 8", doneA)
	}
	if !almostEqual(doneB, 14, 1e-9) {
		t.Fatalf("doneB=%v, want 14", doneB)
	}
}

func TestPSResourceCapPreventsSpeedupWhenAlone(t *testing.T) {
	// With per-flow cap 3 on capacity 10: three flows run at 3 each (9 < 10),
	// so a flow finishing does not speed up the others.
	e := NewEnv()
	r := NewPSResource(e, "mem", 10, 3)
	var times [3]float64
	sizes := []float64{30, 60, 90}
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Transfer(p, sizes[i])
			times[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := [3]float64{10, 20, 30}
	for i := range times {
		if !almostEqual(times[i], want[i], 1e-9) {
			t.Fatalf("flow %d done at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestPSResourceZeroAmountIsInstant(t *testing.T) {
	e := NewEnv()
	r := NewPSResource(e, "mem", 10, 0)
	var done float64 = -1
	e.Spawn("p", func(p *Proc) {
		r.Transfer(p, 0)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 0 {
		t.Fatalf("zero transfer done at %v, want 0", done)
	}
}

func TestPSResourceAsyncFlowAwait(t *testing.T) {
	e := NewEnv()
	r := NewPSResource(e, "mem", 10, 0)
	var done float64
	e.Spawn("p", func(p *Proc) {
		f := r.StartFlow(50, nil)
		p.Wait(1) // overlap with the flow
		f.Await(p)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(done, 5, 1e-9) {
		t.Fatalf("async flow done at %v, want 5", done)
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	e := NewEnv()
	s := NewSemaphore(e, "nic", 1)
	var order []string
	for _, n := range []string{"a", "b", "c"} {
		name := n
		e.Spawn(name, func(p *Proc) {
			s.Acquire(p)
			order = append(order, name+"-in")
			p.Wait(1)
			order = append(order, name+"-out")
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a-in a-out b-in b-out c-in c-out"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("semaphore order = %q, want %q", got, want)
	}
}

func TestSemaphoreCounting(t *testing.T) {
	e := NewEnv()
	s := NewSemaphore(e, "slots", 2)
	finish := make([]float64, 4)
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Acquire(p)
			p.Wait(10)
			s.Release()
			finish[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 10, 20, 20}
	for i := range finish {
		if !almostEqual(finish[i], want[i], 1e-9) {
			t.Fatalf("worker %d finished at %v, want %v", i, finish[i], want[i])
		}
	}
}

// Property: for any set of flow sizes started simultaneously on an uncapped
// resource, total completion time equals total work / capacity (work
// conservation of processor sharing), and flows complete in size order.
func TestPSResourceWorkConservationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true // skip degenerate/oversized cases
		}
		const capacity = 7.5
		e := NewEnv()
		r := NewPSResource(e, "mem", capacity, 0)
		total := 0.0
		sizes := make([]float64, len(raw))
		for i, v := range raw {
			sizes[i] = float64(v%1000) + 1 // 1..1000
			total += sizes[i]
		}
		var last float64
		times := make([]float64, len(sizes))
		for i := range sizes {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				r.Transfer(p, sizes[i])
				times[i] = p.Now()
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		if !almostEqual(last, total/capacity, 1e-6*total) {
			return false
		}
		// Flows must complete in (stable) size order.
		for i := range sizes {
			for j := range sizes {
				if sizes[i] < sizes[j] && times[i] > times[j]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine is deterministic — identical programs produce
// identical event traces.
func TestDeterminismProperty(t *testing.T) {
	build := func(seed int64) string {
		e := NewEnv()
		var log strings.Builder
		rng := seed
		next := func() float64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return float64((rng>>33)&1023) / 64.0
		}
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			e.Spawn(name, func(p *Proc) {
				for j := 0; j < 4; j++ {
					p.Wait(next())
					fmt.Fprintf(&log, "%s@%.4f;", name, p.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log.String()
	}
	f := func(seed int64) bool { return build(seed) == build(seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
