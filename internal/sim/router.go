package sim

// Router gives partition-aware components (the network, the machine
// model, the MPI runtime) access to per-node simulation environments and
// a way to schedule events across partition boundaries. The serial
// engine routes everything to one Env; the conservative-lookahead
// parallel engine (internal/sim/psim) maps each node to its own
// partition and turns cross-node Post calls into timestamped
// inter-partition messages delivered at window barriers.
type Router interface {
	// NodeEnv returns the environment that simulates the given node.
	NodeEnv(node int) *Env
	// Post schedules fn(arg) at absolute virtual time t on node dst's
	// partition. It must be called from code currently executing on node
	// src's partition, and t must not precede dst's committed horizon —
	// conservative engines guarantee this by construction when t is at
	// least one lookahead past src's clock.
	Post(src, dst int, t float64, fn func(any), arg any)
}

// UniRouter is the serial Router: every node maps to the same Env and
// Post degenerates to AtArg. It is the identity wiring that keeps the
// single-threaded engine byte-identical to its pre-partitioned form.
type UniRouter struct {
	E *Env
}

// NodeEnv returns the single environment for every node.
func (u UniRouter) NodeEnv(int) *Env { return u.E }

// Post schedules fn(arg) at absolute time t on the single environment.
func (u UniRouter) Post(_, _ int, t float64, fn func(any), arg any) {
	u.E.AtArg(t, fn, arg)
}
