package sim

import (
	"fmt"
	"math"
	"sort"
)

// PSResource is a processor-sharing resource in virtual time: a service
// capacity (e.g. bytes/s of a ccNUMA memory domain, or of a network link)
// shared fairly among all active flows, with an optional per-flow rate cap
// (e.g. the bandwidth a single core can draw).
//
// Rates follow water-filling fairness: every flow gets an equal share of the
// remaining capacity, but never more than FlowCap; capacity unused by capped
// flows is redistributed to the rest. Whenever the set of active flows
// changes, remaining work is advanced at the old rates and completion events
// are rescheduled at the new rates. This is the mechanism that produces
// bandwidth-saturation speedup curves for memory-bound kernels.
type PSResource struct {
	env *Env
	// Name identifies the resource in diagnostics.
	Name string
	// Capacity is the aggregate service rate (units/s) of the resource.
	Capacity float64
	// FlowCap limits the rate of a single flow (units/s); 0 means no cap.
	FlowCap float64

	flows      []*Flow
	lastUpdate float64
	// parkTransfer and parkAwait are the Park reasons for blocked
	// processes, precomputed so the hot path does not build strings.
	parkTransfer string
	parkAwait    string
}

// Flow is an in-flight transfer on a PSResource.
type Flow struct {
	res       *PSResource
	remaining float64
	rate      float64
	proc      *Proc
	completed bool
	done      func()
	doneArg   func(any) // closure-free completion callback (StartFlowArg)
	arg       any
	ev        Event
}

// EarliestFinish returns a lower bound on the virtual time at which the
// flow can complete: the remaining work served at the fastest rate the
// resource could ever grant one flow (full capacity, capped by FlowCap).
// Unlike the currently scheduled completion event — which water-filling
// rescheduling can move EARLIER when competing flows finish — this bound
// is sound under any future contention, so the adaptive-lookahead oracle
// may promise it across window barriers. Completed flows return -Inf.
func (f *Flow) EarliestFinish() float64 {
	if f.completed {
		return math.Inf(-1)
	}
	r := f.res
	rate := r.Capacity
	if r.FlowCap > 0 && r.FlowCap < rate {
		rate = r.FlowCap
	}
	// remaining is accrued as of lastUpdate; work done since then only
	// brings the true finish closer to (never below) this bound.
	return r.lastUpdate + f.remaining/rate
}

// NewPSResource creates a processor-sharing resource. Capacity must be
// positive; flowCap <= 0 means individual flows are limited only by the
// total capacity.
func NewPSResource(env *Env, name string, capacity, flowCap float64) *PSResource {
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("sim: PSResource %q with non-positive capacity %v", name, capacity))
	}
	return &PSResource{
		env: env, Name: name, Capacity: capacity, FlowCap: flowCap,
		parkTransfer: "transfer on " + name,
		parkAwait:    "await flow on " + name,
	}
}

// Reinit repoints a pooled resource at a new environment and parameters,
// keeping its allocated flow-list capacity and — when the name is
// unchanged — its precomputed park-reason strings. It is the zero-cost
// counterpart of NewPSResource for job-state pools that recycle whole
// machine/network instances across simulation runs.
func (r *PSResource) Reinit(env *Env, name string, capacity, flowCap float64) {
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("sim: PSResource %q with non-positive capacity %v", name, capacity))
	}
	r.env = env
	r.Capacity, r.FlowCap = capacity, flowCap
	r.flows = r.flows[:0]
	r.lastUpdate = 0
	if r.Name != name {
		r.Name = name
		r.parkTransfer = "transfer on " + name
		r.parkAwait = "await flow on " + name
	}
}

// ActiveFlows returns the number of currently active flows.
func (r *PSResource) ActiveFlows() int { return len(r.flows) }

// CurrentRate returns the service rate currently granted to a single flow
// if n flows are active, following the same water-filling rule used for
// live flows. Useful for analytical probes and tests.
func (r *PSResource) CurrentRate(n int) float64 {
	if n <= 0 {
		return 0
	}
	share := r.Capacity / float64(n)
	if r.FlowCap > 0 && share > r.FlowCap {
		return r.FlowCap
	}
	return share
}

// Utilization returns the fraction of Capacity currently in service,
// in [0, 1].
func (r *PSResource) Utilization() float64 {
	r.advance()
	total := 0.0
	for _, f := range r.flows {
		total += f.rate
	}
	return total / r.Capacity
}

// Transfer moves amount units through the resource on behalf of process p,
// blocking p in virtual time until the transfer completes. A non-positive
// amount returns immediately.
func (r *PSResource) Transfer(p *Proc, amount float64) {
	if amount <= 0 {
		return
	}
	p.mustBeCurrent("PSResource.Transfer")
	f := r.startFlow(amount, p, nil)
	for !f.completed {
		p.Park(r.parkTransfer)
	}
}

// StartFlow begins an asynchronous transfer of amount units and returns the
// flow handle. The optional done callback fires on the scheduler when the
// flow completes. Use Flow.Await from a process to block on completion.
func (r *PSResource) StartFlow(amount float64, done func()) *Flow {
	if amount <= 0 {
		f := r.env.allocFlow()
		f.res, f.completed = r, true
		if done != nil {
			r.env.After(0, done)
		}
		return f
	}
	return r.startFlow(amount, nil, done)
}

// StartFlowArg is the closure-free variant of StartFlow: fn(arg) fires on
// completion, with fn expected to be a top-level function so the call
// allocates nothing beyond the flow itself (which comes from the
// environment's bump arena).
func (r *PSResource) StartFlowArg(amount float64, fn func(any), arg any) *Flow {
	if amount <= 0 {
		f := r.env.allocFlow()
		f.res, f.completed = r, true
		if fn != nil {
			r.env.AfterArg(0, fn, arg)
		}
		return f
	}
	r.advance()
	f := r.env.allocFlow()
	f.res, f.remaining, f.doneArg, f.arg = r, amount, fn, arg
	r.flows = append(r.flows, f)
	r.reschedule()
	return f
}

func (r *PSResource) startFlow(amount float64, p *Proc, done func()) *Flow {
	r.advance()
	f := r.env.allocFlow()
	f.res, f.remaining, f.proc, f.done = r, amount, p, done
	r.flows = append(r.flows, f)
	r.reschedule()
	return f
}

// Await blocks process p until the flow completes.
func (f *Flow) Await(p *Proc) {
	p.mustBeCurrent("Flow.Await")
	if f.completed {
		return
	}
	if f.proc != nil && f.proc != p {
		panic("sim: Flow.Await by a second process")
	}
	f.proc = p
	for !f.completed {
		p.Park(f.res.parkAwait)
	}
}

// Completed reports whether the flow has finished.
func (f *Flow) Completed() bool { return f.completed }

// Remaining returns the amount of work left in the flow as of the last
// resource update (call Utilization or start/finish a flow to force one).
func (f *Flow) Remaining() float64 { return f.remaining }

// advance accrues progress on all flows at the rates fixed since the last
// set change.
func (r *PSResource) advance() {
	now := r.env.now
	dt := now - r.lastUpdate
	if dt > 0 {
		for _, f := range r.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	r.lastUpdate = now
}

// reschedule recomputes water-filling rates and completion events for all
// active flows. Must be called with progress already advanced.
func (r *PSResource) reschedule() {
	n := len(r.flows)
	if n == 0 {
		return
	}
	// Water-filling: all flows capped at FlowCap; leftover capacity from
	// capped flows is redistributed among the others. With identical caps a
	// single pass suffices: rate = min(FlowCap, Capacity/n) leaves capacity
	// unused only if all flows are capped, in which case no redistribution
	// is possible anyway.
	rate := r.Capacity / float64(n)
	if r.FlowCap > 0 && rate > r.FlowCap {
		rate = r.FlowCap
	}
	for _, f := range r.flows {
		f.rate = rate
		eta := r.env.now + f.remaining/rate
		f.ev = r.env.retimeFlow(f.ev, eta, f)
	}
}

// complete finishes a flow: removes it from the active set, re-shares
// capacity among the remaining flows, and wakes the waiting process.
func (r *PSResource) complete(f *Flow) {
	r.advance()
	idx := -1
	for i, g := range r.flows {
		if g == f {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // already removed (spurious cancelled event)
	}
	r.flows = append(r.flows[:idx], r.flows[idx+1:]...)
	f.completed = true
	f.remaining = 0
	f.rate = 0
	f.ev = Event{}
	r.reschedule()
	if f.proc != nil && f.proc.state == StateParked {
		r.env.Wake(f.proc)
	} else if f.proc != nil {
		f.proc.wakeTokens++
	}
	if f.done != nil {
		f.done()
	}
	if f.doneArg != nil {
		f.doneArg(f.arg)
	}
}

// Semaphore is a counting semaphore in virtual time with FIFO wakeup order.
// It models exclusive or limited-concurrency resources (e.g. a NIC engine).
type Semaphore struct {
	env     *Env
	Name    string
	tokens  int
	waiters []*Proc
	parkMsg string
}

// NewSemaphore creates a semaphore with the given initial token count.
func NewSemaphore(env *Env, name string, tokens int) *Semaphore {
	if tokens < 0 {
		panic(fmt.Sprintf("sim: semaphore %q with negative tokens %d", name, tokens))
	}
	return &Semaphore{env: env, Name: name, tokens: tokens, parkMsg: "semaphore " + name}
}

// Acquire takes one token, blocking the process in virtual time until one
// is available. Wakeup order is FIFO.
func (s *Semaphore) Acquire(p *Proc) {
	p.mustBeCurrent("Semaphore.Acquire")
	if s.tokens > 0 && len(s.waiters) == 0 {
		s.tokens--
		return
	}
	s.waiters = append(s.waiters, p)
	for {
		p.Park(s.parkMsg)
		// We are only woken by Release after being granted a token and
		// removed from the queue; a defensive re-check keeps FIFO intact
		// under spurious wake tokens.
		granted := true
		for _, w := range s.waiters {
			if w == p {
				granted = false
				break
			}
		}
		if granted {
			return
		}
	}
}

// Release returns one token, waking the longest-waiting process if any.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		p := s.waiters[0]
		s.waiters = s.waiters[1:]
		if p.state == StateParked {
			s.env.Wake(p)
		} else {
			p.wakeTokens++
		}
		return
	}
	s.tokens++
}

// Available returns the number of free tokens.
func (s *Semaphore) Available() int { return s.tokens }

// sortFlowsByRemaining is a test helper ordering; exported logic does not
// depend on flow order, but deterministic diagnostics do.
func (r *PSResource) sortFlowsByRemaining() {
	sort.SliceStable(r.flows, func(i, j int) bool { return r.flows[i].remaining < r.flows[j].remaining })
}
