package sim

import "testing"

// The scheduler microbenchmarks pin the engine's hot paths in isolation:
// heap events, now-queue wakes, timed process waits, processor-sharing
// retime churn, and pooled whole-run turnaround. scripts/bench_compare.sh
// gates these against BENCH_baseline.json in CI.

// BenchmarkScheduleFire measures pure event throughput through the heap:
// schedule a future callback, fire it, recycle the slot.
func BenchmarkScheduleFire(b *testing.B) {
	e := NewEnv()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, nop)
		if err := e.RunUntil(e.Now() + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNowQueueFire measures the FIFO fast path for events at the
// current timestamp (the wake pattern of blocking MPI primitives).
func BenchmarkNowQueueFire(b *testing.B) {
	e := NewEnv()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(0, nop)
		if err := e.RunUntil(e.Now()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimedWait measures a full process wait cycle: typed resume
// event plus the two goroutine handoffs.
func BenchmarkTimedWait(b *testing.B) {
	e := NewEnv()
	n := b.N
	e.Spawn("waiter", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Wait(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPSResourceChurn measures the processor-sharing retime storm:
// staggered flows join and leave a shared resource, re-timing every
// sibling's completion event at each set change.
func BenchmarkPSResourceChurn(b *testing.B) {
	const flows = 8
	e := NewEnv()
	r := NewPSResource(e, "mem", 100, 0)
	n := b.N
	for i := 0; i < flows; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Wait(float64(i)) // stagger arrivals
			for j := 0; j < n; j++ {
				r.Transfer(p, 100)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPooledRun measures whole-run turnaround through the pool:
// acquire, spawn processes, run to completion, release. This is the
// per-job overhead every campaign worker pays.
func BenchmarkPooledRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := AcquireEnv()
		for p := 0; p < 8; p++ {
			e.Spawn("p", func(p *Proc) {
				p.Wait(1)
				p.Wait(1)
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		ReleaseEnv(e)
	}
}
