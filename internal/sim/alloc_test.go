package sim

import (
	"strings"
	"testing"
)

func nop() {}

// TestScheduleAllocationFree pins the slab event queue's core property:
// once the slab and heap have warmed up, scheduling and firing events —
// through both the heap and the now-queue paths — performs zero heap
// allocations.
func TestScheduleAllocationFree(t *testing.T) {
	e := NewEnv()
	var err error
	tick := func() {
		e.After(1, nop)    // heap path
		e.After(0.25, nop) // heap path, fires first
		e.After(0, nop)    // now-queue path
		if err == nil {
			err = e.RunUntil(e.Now() + 2)
		}
	}
	for i := 0; i < 4; i++ {
		tick() // warm the slab, free list, heap, and now-queue
	}
	if err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(100, tick); a != 0 {
		t.Fatalf("schedule+dispatch allocates %v objects/op, want 0", a)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestTimedWaitAllocationFree pins the typed-event fast path: a process
// doing timed waits does not allocate per wait (no closures, no event
// objects) once its environment is warm.
func TestTimedWaitAllocationFree(t *testing.T) {
	e := NewEnv()
	resume := make(chan struct{})
	release := make(chan struct{})
	e.Spawn("waiter", func(p *Proc) {
		for range resume {
			p.Wait(1)
			release <- struct{}{}
		}
	})
	// Start the process: it blocks reading resume, which parks its
	// goroutine outside virtual time. Drive one wait per measured run.
	go func() { _ = e.Run() }()
	step := func() {
		resume <- struct{}{}
		<-release
	}
	for i := 0; i < 4; i++ {
		step()
	}
	if a := testing.AllocsPerRun(100, step); a != 0 {
		t.Fatalf("Proc.Wait allocates %v objects/op, want 0", a)
	}
	close(resume)
}

// TestCancelAllocationFree verifies Cancel releases slots for immediate
// reuse and the cancel-reschedule churn of processor sharing stays
// allocation-free.
func TestCancelAllocationFree(t *testing.T) {
	e := NewEnv()
	churn := func() {
		ev := e.After(5, nop)
		ev.Cancel()
	}
	churn()
	if a := testing.AllocsPerRun(100, churn); a != 0 {
		t.Fatalf("cancel churn allocates %v objects/op, want 0", a)
	}
}

// TestWakePairOrder verifies the batched pair wake resumes both parked
// processes in argument order at the same timestamp, exactly like two
// consecutive Wake calls.
func TestWakePairOrder(t *testing.T) {
	e := NewEnv()
	var order []string
	mk := func(name string) *Proc {
		return e.Spawn(name, func(p *Proc) {
			p.Park("pair test")
			order = append(order, name)
		})
	}
	a := mk("a")
	b := mk("b")
	e.Spawn("waker", func(p *Proc) {
		p.Wait(3)
		p.Env().WakePair(a, b)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "ab" {
		t.Fatalf("pair wake order = %q, want ab", got)
	}
}

// TestWakePairWithTokens verifies the non-parked halves of a pair wake
// degrade to wake tokens, like plain Wake.
func TestWakePairWithTokens(t *testing.T) {
	e := NewEnv()
	var resumedAt, tokenAt float64
	a := e.Spawn("parked", func(p *Proc) {
		p.Park("pair")
		resumedAt = p.Now()
	})
	b := e.Spawn("busy", func(p *Proc) {
		p.Wait(10) // in a timed wait when the pair wake fires
		p.Park("token expected")
		tokenAt = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Wait(2)
		p.Env().WakePair(a, b)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumedAt != 2 {
		t.Fatalf("parked half resumed at %v, want 2", resumedAt)
	}
	if tokenAt != 10 {
		t.Fatalf("busy half consumed its token at %v, want 10", tokenAt)
	}
}

// TestCancelNowQueueEvent covers cancelling an event that sits in the
// now-queue: it must not fire, and Cancelled must report true.
func TestCancelNowQueueEvent(t *testing.T) {
	e := NewEnv()
	fired := false
	var ev Event
	e.Spawn("canceller", func(p *Proc) {
		ev = e.After(0, func() { fired = true }) // same timestamp: now-queue
		ev.Cancel()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled now-queue event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false for cancelled now-queue event")
	}
}

// TestEnvPoolReuse verifies a released environment comes back reset and
// produces identical results, reusing its slab and process structs.
func TestEnvPoolReuse(t *testing.T) {
	run := func(e *Env) float64 {
		var end float64
		e.Spawn("p", func(p *Proc) {
			p.Wait(1.5)
			r := NewPSResource(e, "mem", 10, 0)
			r.Transfer(p, 30)
			end = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	e := AcquireEnv()
	first := run(e)
	ReleaseEnv(e)
	e2 := AcquireEnv() // may or may not be the same object; both must work
	defer ReleaseEnv(e2)
	if e2.Now() != 0 || len(e2.Procs()) != 0 {
		t.Fatalf("pooled env not reset: now=%v procs=%d", e2.Now(), len(e2.Procs()))
	}
	if second := run(e2); second != first {
		t.Fatalf("pooled rerun produced %v, want %v", second, first)
	}
}

// TestReleaseEnvRejectsDirtyEnv verifies failed runs are not recycled:
// a deadlocked environment keeps parked goroutines alive and must not
// reach the pool.
func TestReleaseEnvRejectsDirtyEnv(t *testing.T) {
	e := NewEnv()
	e.Spawn("stuck", func(p *Proc) { p.Park("forever") })
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	if e.clean() {
		t.Fatal("deadlocked env reported clean")
	}
	ReleaseEnv(e) // must be a no-op; nothing to assert beyond not panicking
}

// TestRetimeFlowKeepsOrder pins the determinism contract of in-place
// retiming: a retimed flow event consumes a fresh sequence number, so
// it fires after an event scheduled at the same instant before the
// retime — exactly as the original cancel+reschedule engine behaved.
func TestRetimeFlowKeepsOrder(t *testing.T) {
	e := NewEnv()
	r := NewPSResource(e, "mem", 10, 0)
	var order []string
	e.Spawn("a", func(p *Proc) {
		r.Transfer(p, 50) // alone until t=2, then shared
		order = append(order, "a")
	})
	e.Spawn("b", func(p *Proc) {
		p.Wait(2)
		// This timer lands exactly at a's final completion time t=7. When
		// b finishes at t=6, a's completion event is retimed to t=7 with a
		// FRESH sequence number — later than the timer's — so the timer
		// must fire first, exactly as the cancel+reschedule engine did.
		e.At(7, func() { order = append(order, "timer") })
		r.Transfer(p, 20)
		order = append(order, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// a: alone until t=2 (30 left), shared at rate 5 until b finishes at
	// t=6 (10 left), alone again at rate 10 -> done at t=7.
	want := "b,timer,a"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("completion order = %q, want %q", got, want)
	}
}
