// Package psim is the conservative-lookahead parallel execution engine
// for one large simulated job: it partitions a multi-node job into one
// logical partition per node, each with its own event queue and clock
// (a sim.Env), and advances all partitions concurrently inside safe
// windows derived from the interconnect latency floor.
//
// The scheme is the classic null-message-free window synchronization
// (YAWNS / bounded-lag Chandy-Misra): because every cross-node effect
// trails its cause by at least the inter-node latency L (netsim's
// cut-through transfer model guarantees this for headers, data legs,
// CTS, and ACK alike), all partitions may execute events in
// [T, T+L) concurrently, where T is the global minimum next-event time.
// Cross-partition sends become timestamped mail collected in per-source
// outboxes during the window and merged into the receivers' queues at
// the barrier, ordered by (time, source partition, submission order) —
// a canonical order independent of how the window's execution
// interleaved. Each partition assigns its own (time, seq) tiebreaks
// from its private counter, so the simulation is deterministic and
// byte-identical for ANY worker count, including one. The serial
// engine's identity to the partitioned one is pinned by the determinism
// goldens in internal/spec.
//
// In adaptive mode the engine widens windows beyond the static floor
// using per-partition earliest-output-time promises (sim.Env's
// EarliestOutput, fed by the MPI layer's oracle): each barrier advances
// to min over partitions of EOT plus the latency floor. Because every
// promise is a sound lower bound on the partition's next cross-node
// send, all mail posted inside the wider window still carries
// timestamps at or past the next barrier, and because windows only
// partition virtual time — equal-timestamp mail always lands in the
// same window under any window schedule — the canonical merge order,
// and therefore the output bytes, are unchanged. A compute-heavy job
// that would take ~10^5 latency-floor windows collapses to a few
// hundred barriers.
package psim

import (
	"math"
	"sort"
	"sync"

	"github.com/spechpc/spechpc-sim/internal/sim"
)

// mail is one cross-partition event in flight: fn(arg) scheduled at
// absolute time t on the destination, posted by partition src.
type mail struct {
	t   float64
	src int32
	fn  func(any)
	arg any
}

// partition is one per-node logical partition: its environment plus the
// outboxes it fills during a window (indexed by destination partition).
// Only the owning partition appends to its outboxes, so window
// execution shares no mutable state between partitions.
type partition struct {
	env *sim.Env
	out [][]mail
}

// Engine coordinates the window loop. It implements sim.Router: node i
// maps to partition i, always — the partition structure is a property
// of the job, not of the worker count, which is what makes output
// independent of parallelism.
type Engine struct {
	parts     []*partition // live partitions: partStore[:nodes]
	partStore []*partition
	lookahead float64
	workers   int
	adaptive  bool

	window float64 // current window end, set before dispatch
	inbox  []mail  // per-destination merge scratch
	work   chan *partition
	wg     sync.WaitGroup
	mu     sync.Mutex
	err    error
	stat   Stats
}

// Stats counts one run's window behavior; read it with Engine.Stats
// after Run and before Release. The counters are what make the adaptive
// win observable without a profiler: a compute-heavy job shows Windows
// collapsing by orders of magnitude versus static mode while Mail stays
// identical (the same simulation flows through fewer barriers).
type Stats struct {
	// Windows is the number of barrier-to-barrier windows executed.
	Windows int64
	// AdaptiveWindows counts windows the oracle widened beyond the
	// static latency floor. Zero in static mode.
	AdaptiveWindows int64
	// Mail is the number of cross-partition events merged at barriers.
	Mail int64
	// IdleParts counts partition×window pairs where a partition had no
	// event before the window end (it sat out the barrier).
	IdleParts int64
	// Widest and Narrowest are the extreme window spans (window end
	// minus global minimum event time) in virtual seconds. Narrowest is
	// never below the lookahead: windows only ever widen.
	Widest    float64
	Narrowest float64
}

// merge folds another run's stats into s (for process-wide totals).
func (s *Stats) merge(o Stats) {
	s.Windows += o.Windows
	s.AdaptiveWindows += o.AdaptiveWindows
	s.Mail += o.Mail
	s.IdleParts += o.IdleParts
	if o.Widest > s.Widest {
		s.Widest = o.Widest
	}
	if s.Narrowest == 0 || (o.Narrowest > 0 && o.Narrowest < s.Narrowest) {
		s.Narrowest = o.Narrowest
	}
}

// Stats returns the counters of the engine's last (or in-progress) run.
func (g *Engine) Stats() Stats { return g.stat }

// Process-wide totals across every engine run, for /statsz and -v
// style observability surfaces.
var (
	totalsMu sync.Mutex
	totals   Totals
)

// Totals aggregates window statistics across all engine runs in this
// process.
type Totals struct {
	// Runs counts completed Engine.Run calls; AdaptiveRuns those in
	// adaptive mode.
	Runs, AdaptiveRuns int64
	Stats
}

// Snapshot returns the process-wide window statistics accumulated by
// every engine run so far.
func Snapshot() Totals {
	totalsMu.Lock()
	defer totalsMu.Unlock()
	return totals
}

// flushTotals folds the finished run's counters into the process-wide
// snapshot.
func (g *Engine) flushTotals() {
	totalsMu.Lock()
	defer totalsMu.Unlock()
	totals.Runs++
	if g.adaptive {
		totals.AdaptiveRuns++
	}
	totals.Stats.merge(g.stat)
}

// enginePool recycles Engine coordination state (partition structs,
// outbox and merge buffers, worker channels) across jobs; the partition
// environments themselves come from the sim environment pool.
var enginePool = sync.Pool{New: func() any { return &Engine{} }}

// Acquire returns an engine for a job spanning nodes partitions,
// executed by up to workers concurrent executors, with the given
// conservative lookahead (netsim.Spec.LatencyFloor). Each partition
// gets a reset environment from the sim pool. With adaptive set, the
// engine widens windows past the static floor using the partitions'
// EarliestOutput bounds; callers that register no oracle get static
// behavior either way, so adaptive is safe to request unconditionally.
func Acquire(nodes, workers int, lookahead float64, adaptive bool) *Engine {
	if nodes <= 0 {
		panic("psim: engine with no partitions")
	}
	if lookahead <= 0 {
		panic("psim: non-positive lookahead")
	}
	g := enginePool.Get().(*Engine)
	g.lookahead = lookahead
	g.adaptive = adaptive
	g.stat = Stats{}
	g.workers = workers
	if g.workers > nodes {
		g.workers = nodes
	}
	for len(g.partStore) < nodes {
		g.partStore = append(g.partStore, &partition{})
	}
	g.parts = g.partStore[:nodes]
	for _, p := range g.parts {
		p.env = sim.AcquireEnv()
		for len(p.out) < nodes {
			p.out = append(p.out, nil)
		}
	}
	g.err = nil
	return g
}

// Release returns clean partition environments to the sim pool and the
// engine to its own pool. Environments of failed runs are abandoned to
// the GC (blocked rank goroutines may still reference them), exactly as
// the serial engine abandons its environment.
func (g *Engine) Release() {
	for _, p := range g.parts {
		sim.ReleaseEnv(p.env)
		p.env = nil
		for d := range p.out {
			// Drop any undelivered mail references (failed runs) so the
			// pooled buffers do not pin callback arguments.
			clear(p.out[d][:cap(p.out[d])])
			p.out[d] = p.out[d][:0]
		}
	}
	clear(g.inbox[:cap(g.inbox)])
	g.inbox = g.inbox[:0]
	g.parts = nil
	enginePool.Put(g)
}

// NodeEnv returns the partition environment simulating the given node.
func (g *Engine) NodeEnv(node int) *sim.Env { return g.parts[node].env }

// Post schedules fn(arg) at absolute time t on node dst's partition.
// Same-partition posts schedule directly; cross-partition posts go to
// the source's outbox and are merged at the next window barrier. The
// conservative contract — t is at least one lookahead past the source
// clock — guarantees the destination has not advanced past t.
func (g *Engine) Post(src, dst int, t float64, fn func(any), arg any) {
	if src == dst {
		g.parts[src].env.AtArg(t, fn, arg)
		return
	}
	p := g.parts[src]
	p.out[dst] = append(p.out[dst], mail{t: t, src: int32(src), fn: fn, arg: arg})
}

// Run executes the window loop to completion: deliver pending mail,
// find the global minimum next-event time T, execute every partition's
// events in [T, w) concurrently, repeat. The window end w is the static
// T+lookahead, or — in adaptive mode — the global earliest-output bound
// plus the lookahead, whichever is later: every partition has promised
// not to post cross-partition mail before the bound, and all mail
// trails its cause by at least the lookahead, so nothing can land
// inside the wider window. It returns the first process panic, or a
// deadlock error if parked processes remain after all queues and
// mailboxes drain.
func (g *Engine) Run() error {
	defer g.flushTotals()
	if g.workers > 1 {
		// Workers receive the channel by value: the engine field is
		// cleared on return while late-starting workers still read from
		// the (closed) channel.
		g.work = make(chan *partition)
		for i := 0; i < g.workers; i++ {
			go g.worker(g.work)
		}
		defer func() {
			close(g.work)
			g.work = nil
		}()
	}
	for {
		g.deliver()
		t, ok := g.minNextEvent()
		if !ok {
			break
		}
		// span is recorded as exactly the lookahead for unwidened
		// windows (t+lookahead-t can round one ulp below it), so the
		// Narrowest counter honors "windows only widen" literally.
		span := g.lookahead
		w := t + g.lookahead
		if g.adaptive {
			// minEarliestOutput is finite here (the partition owning t
			// reports at most a finite bound while events are queued)
			// and never below t; the IsInf check is pure defense.
			if eo := g.minEarliestOutput(); eo > t && !math.IsInf(eo, 1) {
				w = eo + g.lookahead
				span = w - t
				g.stat.AdaptiveWindows++
			}
		}
		g.noteWindow(span)
		g.runWindow(w)
		if g.err != nil {
			return g.err
		}
	}
	for _, p := range g.parts {
		if err := p.env.CheckDeadlock(); err != nil {
			return err
		}
	}
	return nil
}

// minEarliestOutput returns the earliest time any partition may next
// produce cross-partition output: the min over partitions of their
// EarliestOutput bound. Partitions with no queued events are inert
// until mail reaches them (+Inf) and do not gate the window.
func (g *Engine) minEarliestOutput() float64 {
	m := math.Inf(1)
	for _, p := range g.parts {
		if eo := p.env.EarliestOutput(); eo < m {
			m = eo
		}
	}
	return m
}

// noteWindow records one window's span in the run counters.
func (g *Engine) noteWindow(span float64) {
	g.stat.Windows++
	if span > g.stat.Widest {
		g.stat.Widest = span
	}
	if g.stat.Narrowest == 0 || span < g.stat.Narrowest {
		g.stat.Narrowest = span
	}
}

// deliver merges every outbox into its destination queue, ordered by
// (time, source partition, submission order). The order is canonical —
// it depends only on the simulation, not on which worker ran what when —
// so the destination's private seq counter assigns identical tiebreaks
// on every run at every worker count.
func (g *Engine) deliver() {
	for d, pd := range g.parts {
		box := g.inbox[:0]
		for _, ps := range g.parts {
			if len(ps.out[d]) > 0 {
				box = append(box, ps.out[d]...)
				clear(ps.out[d])
				ps.out[d] = ps.out[d][:0]
			}
		}
		if len(box) == 0 {
			continue
		}
		g.stat.Mail += int64(len(box))
		sort.SliceStable(box, func(i, j int) bool {
			if box[i].t != box[j].t {
				return box[i].t < box[j].t
			}
			return box[i].src < box[j].src
		})
		for i := range box {
			pd.env.AtArg(box[i].t, box[i].fn, box[i].arg)
		}
		clear(box)
		g.inbox = box[:0]
	}
}

// minNextEvent returns the earliest queued event time across partitions.
func (g *Engine) minNextEvent() (float64, bool) {
	var t float64
	found := false
	for _, p := range g.parts {
		if nt, ok := p.env.NextEventTime(); ok && (!found || nt < t) {
			t, found = nt, true
		}
	}
	return t, found
}

// runWindow executes every partition with work before the window end,
// concurrently when more than one is active and workers allow. A lone
// active partition runs inline — the common tail pattern when one node
// straggles — skipping the dispatch round trip.
func (g *Engine) runWindow(w float64) {
	g.window = w
	var solo *partition
	active := 0
	for _, p := range g.parts {
		if nt, ok := p.env.NextEventTime(); ok && nt < w {
			active++
			solo = p
		}
	}
	g.stat.IdleParts += int64(len(g.parts) - active)
	if active == 0 {
		return
	}
	if active == 1 {
		g.runOne(solo)
		return
	}
	if g.work == nil {
		for _, p := range g.parts {
			if nt, ok := p.env.NextEventTime(); ok && nt < w {
				g.runOne(p)
			}
		}
		return
	}
	g.wg.Add(active)
	for _, p := range g.parts {
		if nt, ok := p.env.NextEventTime(); ok && nt < w {
			g.work <- p
		}
	}
	g.wg.Wait()
}

// worker drains partition executions dispatched by runWindow. The
// window bound read inside runOne is ordered by the channel handoff:
// runWindow writes g.window before sending, the send happens-before the
// receive, and wg.Wait keeps every worker parked between windows.
func (g *Engine) worker(work chan *partition) {
	for p := range work {
		g.runOne(p)
		g.wg.Done()
	}
}

// runOne advances one partition to the window end, recording the first
// failure.
func (g *Engine) runOne(p *partition) {
	if err := p.env.RunBefore(g.window); err != nil {
		g.mu.Lock()
		if g.err == nil {
			g.err = err
		}
		g.mu.Unlock()
	}
}
