// Package psim is the conservative-lookahead parallel execution engine
// for one large simulated job: it partitions a multi-node job into one
// logical partition per node, each with its own event queue and clock
// (a sim.Env), and advances all partitions concurrently inside safe
// windows derived from the interconnect latency floor.
//
// The scheme is the classic null-message-free window synchronization
// (YAWNS / bounded-lag Chandy-Misra): because every cross-node effect
// trails its cause by at least the inter-node latency L (netsim's
// cut-through transfer model guarantees this for headers, data legs,
// CTS, and ACK alike), all partitions may execute events in
// [T, T+L) concurrently, where T is the global minimum next-event time.
// Cross-partition sends become timestamped mail collected in per-source
// outboxes during the window and merged into the receivers' queues at
// the barrier, ordered by (time, source partition, submission order) —
// a canonical order independent of how the window's execution
// interleaved. Each partition assigns its own (time, seq) tiebreaks
// from its private counter, so the simulation is deterministic and
// byte-identical for ANY worker count, including one. The serial
// engine's identity to the partitioned one is pinned by the determinism
// goldens in internal/spec.
package psim

import (
	"sort"
	"sync"

	"github.com/spechpc/spechpc-sim/internal/sim"
)

// mail is one cross-partition event in flight: fn(arg) scheduled at
// absolute time t on the destination, posted by partition src.
type mail struct {
	t   float64
	src int32
	fn  func(any)
	arg any
}

// partition is one per-node logical partition: its environment plus the
// outboxes it fills during a window (indexed by destination partition).
// Only the owning partition appends to its outboxes, so window
// execution shares no mutable state between partitions.
type partition struct {
	env *sim.Env
	out [][]mail
}

// Engine coordinates the window loop. It implements sim.Router: node i
// maps to partition i, always — the partition structure is a property
// of the job, not of the worker count, which is what makes output
// independent of parallelism.
type Engine struct {
	parts     []*partition // live partitions: partStore[:nodes]
	partStore []*partition
	lookahead float64
	workers   int

	window float64 // current window end, set before dispatch
	inbox  []mail  // per-destination merge scratch
	work   chan *partition
	wg     sync.WaitGroup
	mu     sync.Mutex
	err    error
}

// enginePool recycles Engine coordination state (partition structs,
// outbox and merge buffers, worker channels) across jobs; the partition
// environments themselves come from the sim environment pool.
var enginePool = sync.Pool{New: func() any { return &Engine{} }}

// Acquire returns an engine for a job spanning nodes partitions,
// executed by up to workers concurrent executors, with the given
// conservative lookahead (netsim.Spec.LatencyFloor). Each partition
// gets a reset environment from the sim pool.
func Acquire(nodes, workers int, lookahead float64) *Engine {
	if nodes <= 0 {
		panic("psim: engine with no partitions")
	}
	if lookahead <= 0 {
		panic("psim: non-positive lookahead")
	}
	g := enginePool.Get().(*Engine)
	g.lookahead = lookahead
	g.workers = workers
	if g.workers > nodes {
		g.workers = nodes
	}
	for len(g.partStore) < nodes {
		g.partStore = append(g.partStore, &partition{})
	}
	g.parts = g.partStore[:nodes]
	for _, p := range g.parts {
		p.env = sim.AcquireEnv()
		for len(p.out) < nodes {
			p.out = append(p.out, nil)
		}
	}
	g.err = nil
	return g
}

// Release returns clean partition environments to the sim pool and the
// engine to its own pool. Environments of failed runs are abandoned to
// the GC (blocked rank goroutines may still reference them), exactly as
// the serial engine abandons its environment.
func (g *Engine) Release() {
	for _, p := range g.parts {
		sim.ReleaseEnv(p.env)
		p.env = nil
		for d := range p.out {
			// Drop any undelivered mail references (failed runs) so the
			// pooled buffers do not pin callback arguments.
			clear(p.out[d][:cap(p.out[d])])
			p.out[d] = p.out[d][:0]
		}
	}
	clear(g.inbox[:cap(g.inbox)])
	g.inbox = g.inbox[:0]
	g.parts = nil
	enginePool.Put(g)
}

// NodeEnv returns the partition environment simulating the given node.
func (g *Engine) NodeEnv(node int) *sim.Env { return g.parts[node].env }

// Post schedules fn(arg) at absolute time t on node dst's partition.
// Same-partition posts schedule directly; cross-partition posts go to
// the source's outbox and are merged at the next window barrier. The
// conservative contract — t is at least one lookahead past the source
// clock — guarantees the destination has not advanced past t.
func (g *Engine) Post(src, dst int, t float64, fn func(any), arg any) {
	if src == dst {
		g.parts[src].env.AtArg(t, fn, arg)
		return
	}
	p := g.parts[src]
	p.out[dst] = append(p.out[dst], mail{t: t, src: int32(src), fn: fn, arg: arg})
}

// Run executes the window loop to completion: deliver pending mail,
// find the global minimum next-event time T, execute every partition's
// events in [T, T+lookahead) concurrently, repeat. It returns the first
// process panic, or a deadlock error if parked processes remain after
// all queues and mailboxes drain.
func (g *Engine) Run() error {
	if g.workers > 1 {
		// Workers receive the channel by value: the engine field is
		// cleared on return while late-starting workers still read from
		// the (closed) channel.
		g.work = make(chan *partition)
		for i := 0; i < g.workers; i++ {
			go g.worker(g.work)
		}
		defer func() {
			close(g.work)
			g.work = nil
		}()
	}
	for {
		g.deliver()
		t, ok := g.minNextEvent()
		if !ok {
			break
		}
		g.runWindow(t + g.lookahead)
		if g.err != nil {
			return g.err
		}
	}
	for _, p := range g.parts {
		if err := p.env.CheckDeadlock(); err != nil {
			return err
		}
	}
	return nil
}

// deliver merges every outbox into its destination queue, ordered by
// (time, source partition, submission order). The order is canonical —
// it depends only on the simulation, not on which worker ran what when —
// so the destination's private seq counter assigns identical tiebreaks
// on every run at every worker count.
func (g *Engine) deliver() {
	for d, pd := range g.parts {
		box := g.inbox[:0]
		for _, ps := range g.parts {
			if len(ps.out[d]) > 0 {
				box = append(box, ps.out[d]...)
				clear(ps.out[d])
				ps.out[d] = ps.out[d][:0]
			}
		}
		if len(box) == 0 {
			continue
		}
		sort.SliceStable(box, func(i, j int) bool {
			if box[i].t != box[j].t {
				return box[i].t < box[j].t
			}
			return box[i].src < box[j].src
		})
		for i := range box {
			pd.env.AtArg(box[i].t, box[i].fn, box[i].arg)
		}
		clear(box)
		g.inbox = box[:0]
	}
}

// minNextEvent returns the earliest queued event time across partitions.
func (g *Engine) minNextEvent() (float64, bool) {
	var t float64
	found := false
	for _, p := range g.parts {
		if nt, ok := p.env.NextEventTime(); ok && (!found || nt < t) {
			t, found = nt, true
		}
	}
	return t, found
}

// runWindow executes every partition with work before the window end,
// concurrently when more than one is active and workers allow. A lone
// active partition runs inline — the common tail pattern when one node
// straggles — skipping the dispatch round trip.
func (g *Engine) runWindow(w float64) {
	g.window = w
	var solo *partition
	active := 0
	for _, p := range g.parts {
		if nt, ok := p.env.NextEventTime(); ok && nt < w {
			active++
			solo = p
		}
	}
	if active == 0 {
		return
	}
	if active == 1 {
		g.runOne(solo)
		return
	}
	if g.work == nil {
		for _, p := range g.parts {
			if nt, ok := p.env.NextEventTime(); ok && nt < w {
				g.runOne(p)
			}
		}
		return
	}
	g.wg.Add(active)
	for _, p := range g.parts {
		if nt, ok := p.env.NextEventTime(); ok && nt < w {
			g.work <- p
		}
	}
	g.wg.Wait()
}

// worker drains partition executions dispatched by runWindow. The
// window bound read inside runOne is ordered by the channel handoff:
// runWindow writes g.window before sending, the send happens-before the
// receive, and wg.Wait keeps every worker parked between windows.
func (g *Engine) worker(work chan *partition) {
	for p := range work {
		g.runOne(p)
		g.wg.Done()
	}
}

// runOne advances one partition to the window end, recording the first
// failure.
func (g *Engine) runOne(p *partition) {
	if err := p.env.RunBefore(g.window); err != nil {
		g.mu.Lock()
		if g.err == nil {
			g.err = err
		}
		g.mu.Unlock()
	}
}
