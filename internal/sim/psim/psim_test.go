package psim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/sim"
)

const look = 1e-6 // lookahead used throughout; posts delay by >= this

// ping bounces a token between two partitions: each hop posts the next
// hop one lookahead ahead on the peer, recording the hop times.
type ping struct {
	g     *Engine
	a, b  int
	hops  int
	times []float64
	from  int
}

func (p *ping) hop(any) {
	dst := p.a
	if p.from == p.a {
		dst = p.b
	}
	p.times = append(p.times, p.g.NodeEnv(p.from).Now())
	if p.hops--; p.hops <= 0 {
		return
	}
	src := p.from
	p.from = dst
	p.g.Post(src, dst, p.g.NodeEnv(src).Now()+look, p.hop, nil)
}

// TestCrossPartitionPingPong bounces a token across the partition
// boundary and checks every hop lands exactly one lookahead after the
// previous one, at every worker count.
func TestCrossPartitionPingPong(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		g := Acquire(2, workers, look, false)
		p := &ping{g: g, a: 0, b: 1, hops: 5, from: 0}
		g.NodeEnv(0).AtArg(0, p.hop, nil)
		if err := g.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(p.times) != 5 {
			t.Fatalf("workers=%d: %d hops, want 5", workers, len(p.times))
		}
		for i, tm := range p.times {
			if want := float64(i) * look; tm != want {
				t.Errorf("workers=%d hop %d at %v, want %v", workers, i, tm, want)
			}
		}
		g.Release()
	}
}

// TestMergeOrderIsCanonical posts mail to one destination from several
// source partitions with colliding timestamps and checks delivery order
// is (time, source partition, submission order) regardless of worker
// count — the property that makes the destination's seq tiebreaks, and
// hence the whole simulation, independent of execution interleaving.
func TestMergeOrderIsCanonical(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4} {
		g := Acquire(4, workers, look, false)
		var got strings.Builder
		rec := func(a any) { fmt.Fprintf(&got, "%s@%v ", a.(string), g.NodeEnv(0).Now()) }
		// Sources 3, 2, 1 post at identical times; source order must win.
		for src := 3; src >= 1; src-- {
			src := src
			g.NodeEnv(src).AtArg(0, func(any) {
				t0 := g.NodeEnv(src).Now() + look
				g.Post(src, 0, t0, rec, fmt.Sprintf("s%d-first", src))
				g.Post(src, 0, t0, rec, fmt.Sprintf("s%d-second", src))
			}, nil)
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		g.Release()
		if want == "" {
			want = got.String()
			wantOrder := "s1-first@1e-06 s1-second@1e-06 s2-first@1e-06 s2-second@1e-06 s3-first@1e-06 s3-second@1e-06 "
			if want != wantOrder {
				t.Fatalf("merge order %q, want %q", want, wantOrder)
			}
		} else if got.String() != want {
			t.Errorf("workers=%d delivered %q, want %q", workers, got.String(), want)
		}
	}
}

// TestDeadlockDetected parks a process that nothing ever wakes and
// expects Run to fail once all queues drain.
func TestDeadlockDetected(t *testing.T) {
	g := Acquire(2, 2, look, false)
	g.NodeEnv(1).Spawn("stuck", func(p *sim.Proc) { p.Park("never woken") })
	if err := g.Run(); err == nil {
		t.Fatal("deadlocked run reported success")
	}
	g.Release()
}

// TestAcquireValidation pins the constructor contract: partitions and
// lookahead must be positive, and the worker count clamps to the
// partition count (extra workers could never have work).
func TestAcquireValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { Acquire(0, 1, look, false) },
		func() { Acquire(2, 1, 0, false) },
		func() { Acquire(2, 1, -1, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Acquire did not panic")
				}
			}()
			bad()
		}()
	}
	g := Acquire(2, 16, look, false)
	if g.workers != 2 {
		t.Errorf("workers clamped to %d, want 2", g.workers)
	}
	g.Release()
}

// boundOracle promises a fixed earliest-output time.
type boundOracle struct{ bound float64 }

func (o *boundOracle) EarliestOutputTime() float64 { return o.bound }

// TestAdaptiveWidensWindows drives two partitions whose processes wake
// repeatedly at sub-promise times without ever posting cross-partition
// mail before a known bound, and checks the adaptive engine executes the
// whole stretch in fewer, wider windows than the static floor while the
// same workload static stays at the floor.
func TestAdaptiveWidensWindows(t *testing.T) {
	const wakes = 20
	run := func(adaptive bool) Stats {
		g := Acquire(2, 2, look, adaptive)
		defer g.Release()
		for i := 0; i < 2; i++ {
			i := i
			// Each partition promises nothing can leave before the last
			// wake; the wakes themselves are 10 lookaheads apart, so the
			// static engine needs a window per wake.
			g.NodeEnv(i).SetOutputOracle(&boundOracle{bound: wakes * 10 * look})
			g.NodeEnv(i).Spawn("ticker", func(p *sim.Proc) {
				for k := 0; k < wakes; k++ {
					p.Wait(10 * look)
				}
				g.Post(i, 1-i, p.Now()+look, func(any) {}, nil)
			})
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return g.Stats()
	}
	st := run(false)
	ad := run(true)
	if st.AdaptiveWindows != 0 {
		t.Errorf("static run widened %d windows", st.AdaptiveWindows)
	}
	if ad.AdaptiveWindows == 0 {
		t.Error("adaptive run never widened a window")
	}
	if ad.Windows*5 > st.Windows {
		t.Errorf("windows did not collapse: adaptive %d vs static %d", ad.Windows, st.Windows)
	}
	if ad.Narrowest < look {
		t.Errorf("narrowest window %g below lookahead %g", ad.Narrowest, look)
	}
	if ad.Widest <= st.Widest {
		t.Errorf("adaptive widest %g not beyond static widest %g", ad.Widest, st.Widest)
	}
	if ad.Mail != st.Mail {
		t.Errorf("mail diverged: adaptive %d vs static %d", ad.Mail, st.Mail)
	}
}

// TestAdaptiveFallsBackWithoutPromise checks an adaptive engine whose
// partitions never register an oracle (or promise nothing useful)
// behaves exactly like the static one: EarliestOutput degrades to the
// next event time, so no window widens.
func TestAdaptiveFallsBackWithoutPromise(t *testing.T) {
	g := Acquire(2, 2, look, true)
	defer g.Release()
	p := &ping{g: g, a: 0, b: 1, hops: 5, from: 0}
	g.NodeEnv(0).AtArg(0, p.hop, nil)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.AdaptiveWindows != 0 {
		t.Errorf("oracle-less adaptive run widened %d windows", st.AdaptiveWindows)
	}
	for i, tm := range p.times {
		if want := float64(i) * look; tm != want {
			t.Errorf("hop %d at %v, want %v", i, tm, want)
		}
	}
}

// TestEngineReuse runs the same workload on a pooled engine repeatedly,
// alternating worker counts, and checks no state leaks between runs.
func TestEngineReuse(t *testing.T) {
	var total atomic.Int64
	run := func(workers int) int64 {
		g := Acquire(3, workers, look, false)
		defer g.Release()
		start := total.Load()
		for i := 0; i < 3; i++ {
			i := i
			g.NodeEnv(i).Spawn("w", func(p *sim.Proc) {
				p.Wait(look / 2)
				g.Post(i, (i+1)%3, p.Now()+look, func(any) { total.Add(1) }, nil)
			})
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return total.Load() - start
	}
	for i, workers := range []int{1, 3, 1, 2, 3} {
		if n := run(workers); n != 3 {
			t.Fatalf("iteration %d (workers=%d): %d deliveries, want 3", i, workers, n)
		}
	}
}
