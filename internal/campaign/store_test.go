package campaign

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

var _ Store = (*DirStore)(nil)

// TestStoreServesAcrossEngines is the cross-process cache contract,
// modeled with two engines sharing one directory: the first engine
// simulates and writes through; a second (fresh-process stand-in) serves
// the same jobs entirely from the store, with zero fresh simulations and
// results identical to the originals — including the per-kind trace sums
// the figure insets read.
func TestStoreServesAcrossEngines(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := []spec.RunSpec{counterJob(1), counterJob(2)}

	before := simCount.Load()
	e1 := NewWithStore(2, st)
	first := e1.Run(jobs)
	for i, o := range first {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
	}
	if got := simCount.Load() - before; got != 3 {
		t.Fatalf("first engine executed on %d ranks, want 3", got)
	}
	if s := e1.Stats(); s.Misses != 2 || s.StoreHits != 0 || s.StoreFaults != 0 {
		t.Errorf("first engine stats = %+v, want 2 misses, no store hits/faults", s)
	}
	if n, err := st.Len(); err != nil || n != 2 {
		t.Fatalf("store holds %d records (err %v), want 2", n, err)
	}

	e2 := NewWithStore(2, st)
	second := e2.Run(jobs)
	if got := simCount.Load() - before; got != 3 {
		t.Errorf("second engine re-simulated: %d ranks executed, want still 3", got)
	}
	if s := e2.Stats(); s.StoreHits != 2 || s.Misses != 0 {
		t.Errorf("second engine stats = %+v, want 2 store hits and 0 misses", s)
	}
	for i := range jobs {
		a, b := first[i].Result, second[i].Result
		if !reflect.DeepEqual(a.Usage, b.Usage) || !reflect.DeepEqual(a.RawUsage, b.RawUsage) {
			t.Errorf("job %d: usage round-tripped inexactly:\n%+v\nvs\n%+v", i, a.Usage, b.Usage)
		}
		if !reflect.DeepEqual(a.Report, b.Report) {
			t.Errorf("job %d: report differs after store round trip", i)
		}
		if !reflect.DeepEqual(a.Spec.Cluster, b.Spec.Cluster) || a.Spec.Benchmark != b.Spec.Benchmark ||
			a.Spec.ClockHz != b.Spec.ClockHz || a.Spec.Ranks != b.Spec.Ranks {
			t.Errorf("job %d: spec differs after store round trip", i)
		}
		if !reflect.DeepEqual(a.Trace.Sums(), b.Trace.Sums()) {
			t.Errorf("job %d: trace sums differ after store round trip", i)
		}
	}
}

// TestKeepTraceBypassesStore checks that jobs recording full event
// timelines neither write to nor read from the persistent store (event
// lists are not serialized), while still memoizing in process.
func TestKeepTraceBypassesStore(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := counterJob(1)
	job.KeepTrace = true

	e := NewWithStore(2, st)
	if out := e.Run([]spec.RunSpec{job}); out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	if n, _ := st.Len(); n != 0 {
		t.Errorf("KeepTrace job persisted %d records, want 0", n)
	}
	// In-process memo still applies.
	e.Run([]spec.RunSpec{job})
	if s := e.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}
	// A fresh engine must re-simulate.
	before := simCount.Load()
	NewWithStore(2, st).Run([]spec.RunSpec{job})
	if simCount.Load() == before {
		t.Error("KeepTrace job served from store instead of re-simulating")
	}
}

// TestErrorsNotPersisted checks failing jobs never poison the store.
func TestErrorsNotPersisted(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := spec.RunSpec{Benchmark: "no-such-kernel", Class: bench.Tiny,
		Cluster: machine.MustGet("ClusterA"), Ranks: 1}
	e := NewWithStore(2, st)
	if out := e.Run([]spec.RunSpec{bad}); out[0].Err == nil {
		t.Fatal("bad job succeeded")
	}
	if n, _ := st.Len(); n != 0 {
		t.Errorf("failed job persisted %d records, want 0", n)
	}
}

// TestCorruptRecordRepaired truncates a persisted record and checks the
// next engine counts a fault, re-simulates, and rewrites a good record.
func TestCorruptRecordRepaired(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := counterJob(1)
	if out := NewWithStore(1, st).Run([]spec.RunSpec{job}); out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	var file string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			file = path
		}
		return nil
	})
	if file == "" {
		t.Fatal("no record written")
	}
	if err := os.WriteFile(file, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	e := NewWithStore(1, st)
	if out := e.Run([]spec.RunSpec{job}); out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	if s := e.Stats(); s.StoreFaults == 0 || s.Misses != 1 {
		t.Errorf("stats = %+v, want a recorded fault and one fresh simulation", s)
	}
	if rec, ok, err := st.Get(Key(job)); err != nil || !ok || rec.Bench != job.Benchmark {
		t.Errorf("corrupt record not repaired: ok=%v err=%v", ok, err)
	}
}

// TestZeroLengthRecordSelfHeals covers the crash artifact the fsync in
// Put defends against: a zero-length file under a valid record name. It
// must read as a clean miss (not a fault — there is nothing to decode),
// be removed on sight, and be transparently replaced by the
// re-simulated record.
func TestZeroLengthRecordSelfHeals(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := counterJob(1)
	key := Key(job)
	if out := NewWithStore(1, st).Run([]spec.RunSpec{job}); out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	path := filepath.Join(dir, key[3:5], key+".json")
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}

	if _, ok, err := st.Get(key); ok || err != nil {
		t.Fatalf("zero-length record read as ok=%v err=%v, want a clean miss", ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("zero-length record not removed on Get (stat err %v)", err)
	}
	e := NewWithStore(1, st)
	if out := e.Run([]spec.RunSpec{job}); out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	if s := e.Stats(); s.Misses != 1 || s.StoreFaults != 0 {
		t.Errorf("stats = %+v, want one quiet miss and no fault for a zero-length record", s)
	}
	if rec, ok, err := st.Get(key); err != nil || !ok || rec.Bench != job.Benchmark {
		t.Errorf("record not rewritten after self-heal: ok=%v err=%v", ok, err)
	}
}

// TestCorruptRecordRemovedOnGet checks a torn record costs exactly one
// fault: the first Get surfaces the decode error and removes the file,
// so the second Get is a clean miss instead of faulting forever.
func TestCorruptRecordRemovedOnGet(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := counterJob(1)
	key := Key(job)
	if out := NewWithStore(1, st).Run([]spec.RunSpec{job}); out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	path := filepath.Join(dir, key[3:5], key+".json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := st.Get(key); err == nil {
		t.Fatal("torn record read without error")
	}
	if _, ok, err := st.Get(key); ok || err != nil {
		t.Errorf("second Get after a torn record: ok=%v err=%v, want a clean miss", ok, err)
	}
}

// TestPutLeavesNoTempFiles checks successful and replaced writes clean
// up their ".tmp-" staging files — a leak here grows without bound on a
// long-lived daemon rewriting hot keys.
func TestPutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := counterJob(1)
	key := Key(job)
	rec := Record{Format: recordFormat, Key: key, Spec: job}
	for i := 0; i < 3; i++ { // overwrite twice to cover the replace path
		if err := st.Put(key, rec); err != nil {
			t.Fatal(err)
		}
	}
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.Contains(d.Name(), ".tmp-") {
			t.Errorf("leftover staging file %s", path)
		}
		return nil
	})
}

// TestTruncatedTraceSumsDegradeToMiss checks a record whose trace
// snapshot does not cover the job's ranks is rejected at load (and
// re-simulated) instead of reconstructing a short Recorder that would
// panic renderers indexing per-rank sums.
func TestTruncatedTraceSumsDegradeToMiss(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := counterJob(2)
	key := Key(job)
	if out := NewWithStore(1, st).Run([]spec.RunSpec{job}); out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	rec, ok, err := st.Get(key)
	if err != nil || !ok {
		t.Fatalf("record not written: ok=%v err=%v", ok, err)
	}
	rec.TraceSums = nil // valid JSON, wrong shape
	if err := st.Put(key, rec); err != nil {
		t.Fatal(err)
	}

	e := NewWithStore(1, st)
	outs := e.Run([]spec.RunSpec{job})
	if outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}
	if got := outs[0].Result.Trace.Ranks(); got != 2 {
		t.Errorf("reconstructed trace covers %d ranks, want 2", got)
	}
	if s := e.Stats(); s.Misses != 1 || s.StoreHits != 0 {
		t.Errorf("stats = %+v, want the malformed record treated as a miss", s)
	}
}

// gate coordination for the goroutine-bound test. The gate kernel blocks
// its rank-0 body on gateCh, stalling the simulation from inside, so the
// test can observe how many goroutines a large batch spawns mid-flight.
var (
	gateCh      chan struct{}
	gateStarted atomic.Int64
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:   91,
		Name: "campaign-gate",
		Run: func(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
			gateStarted.Add(1)
			<-gateCh
			r.Compute(machine.Phase{Name: "gate", FlopsSIMD: 1e6, BytesMem: 1e4})
			rep := bench.RunReport{StepsModeled: 1, StepsSimulated: 1}
			if r.ID() == 0 {
				rep.Checks = []bench.Check{{Name: "synthetic", Value: 0, OK: true}}
			}
			return rep, nil
		},
	})
}

// TestRunSpawnsBoundedGoroutines submits a 48-job batch on a 2-worker
// engine and samples the process goroutine count while the first jobs
// are stalled inside the simulator. The engine must spawn at most
// `workers` executor goroutines — not one parked goroutine per fresh job,
// which is what a 10k-job scenario batch would otherwise pay.
func TestRunSpawnsBoundedGoroutines(t *testing.T) {
	gateCh = make(chan struct{})
	gateStarted.Store(0)
	jobs := make([]spec.RunSpec, 48)
	for i := range jobs {
		jobs[i] = spec.RunSpec{
			Benchmark: "campaign-gate", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterA"), Ranks: 1,
			Options: bench.Options{SimSteps: i + 1}, // distinct keys, no dedup
		}
	}
	baseline := runtime.NumGoroutine()
	done := make(chan []Outcome, 1)
	go func() { done <- New(2).Run(jobs) }()

	deadline := time.Now().Add(10 * time.Second)
	for gateStarted.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("gate jobs never started")
		}
		time.Sleep(time.Millisecond)
	}
	inFlight := runtime.NumGoroutine() - baseline
	close(gateCh)
	outs := <-done
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
	}
	// 2 workers + their in-flight simulations + the Run caller is well
	// under 24 goroutines; one goroutine per fresh job would be 48+.
	if inFlight >= 24 {
		t.Errorf("batch of 48 jobs held %d extra goroutines mid-flight; want bounded by the worker pool", inFlight)
	}
}
