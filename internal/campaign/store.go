package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// recordFormat is the schema generation of persisted Records. A store
// only serves records whose format matches; bump it when the Record
// layout (or the meaning of a persisted field) changes so stale caches
// degrade to misses instead of mis-deserializing.
const recordFormat = 1

// Record is the serialized outcome of one successful job — everything a
// RunResult carries except the full event timeline (jobs run with
// KeepTrace bypass the store entirely; per-kind trace sums are
// persisted, so figure insets work from a warm store). The Bench /
// Cluster / ClassName / Ranks / ClockGHz fields duplicate Spec content in
// flat, grep-friendly form for store inspection tooling
// (scripts/cache_stats.sh).
type Record struct {
	Format    int     `json:"format"`
	Key       string  `json:"key"`
	Bench     string  `json:"bench"`
	Cluster   string  `json:"cluster"`
	ClassName string  `json:"class"`
	Ranks     int     `json:"ranks"`
	ClockGHz  float64 `json:"clock_ghz"`

	Spec      spec.RunSpec    `json:"spec"`
	Usage     machine.Usage   `json:"usage"`
	RawUsage  machine.Usage   `json:"raw_usage"`
	Report    bench.RunReport `json:"report"`
	TraceSums [][]float64     `json:"trace_sums"`
}

// NewRecord snapshots a successful result for persistence — exported so
// warm-up tooling and tests can seed a store without a scheduler.
func NewRecord(key string, res spec.RunResult) Record {
	cluster := ""
	if res.Spec.Cluster != nil {
		cluster = res.Spec.Cluster.Name
	}
	return Record{
		Format:    recordFormat,
		Key:       key,
		Bench:     res.Spec.Benchmark,
		Cluster:   cluster,
		ClassName: res.Spec.Class.String(),
		Ranks:     res.Spec.Ranks,
		ClockGHz:  res.Spec.ClockHz / 1e9,
		Spec:      res.Spec,
		Usage:     res.Usage,
		RawUsage:  res.RawUsage,
		Report:    res.Report,
		TraceSums: res.Trace.Sums(),
	}
}

// Result reconstructs the RunResult a record was snapshotted from —
// exported for the fleet dispatcher, which receives Records over the
// worker HTTP API and must reject malformed ones as retryable faults.
func (r Record) Result() (spec.RunResult, bool) { return r.result() }

// result reconstructs the RunResult a record was snapshotted from. It
// reports false for records of a different format generation or with a
// trace snapshot that does not cover the job's ranks (a truncated or
// hand-edited record must degrade to a re-simulated miss, not panic a
// renderer indexing per-rank sums).
func (r Record) result() (spec.RunResult, bool) {
	if r.Format != recordFormat || len(r.TraceSums) != r.Spec.Ranks {
		return spec.RunResult{}, false
	}
	return spec.RunResult{
		Spec:     r.Spec,
		Usage:    r.Usage,
		RawUsage: r.RawUsage,
		Report:   r.Report,
		Trace:    trace.FromSums(r.TraceSums),
	}, true
}

// Store is a persistent, content-addressed result cache keyed by the
// canonical job Key. Implementations must be safe for concurrent use and
// tolerate concurrent writers on shared storage (last write wins; records
// under one key are interchangeable by construction). A Get miss is
// (Record{}, false, nil); errors are reserved for faults (unreadable or
// corrupt entries), which the engine treats as misses and repairs by
// re-simulating and re-writing.
type Store interface {
	Get(key string) (Record, bool, error)
	Put(key string, rec Record) error
}

// DirStore is the on-disk Store: one JSON file per record under
// dir/<kk>/<key>.json, where <kk> is a two-character shard taken from the
// key hash (256 shards keep directory listings short for big campaigns).
// Writes go through a temp file plus atomic rename, so concurrent
// processes sharing a cache directory never observe torn records.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a store rooted at dir.
func NewDirStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("campaign: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening store: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

// shard returns the two-character shard directory of a key, derived from
// the leading hash characters after the version prefix.
func shard(key string) string {
	h := key
	if i := strings.IndexByte(h, '-'); i >= 0 {
		h = h[i+1:]
	}
	if len(h) < 2 {
		return "00"
	}
	return h[:2]
}

func (s *DirStore) path(key string) string {
	return filepath.Join(s.dir, shard(key), key+".json")
}

// Get loads the record persisted under key. Corrupt entries self-heal:
// a zero-length file (the classic artifact of a crash between create
// and flush on filesystems that do not order data before rename) is
// removed and reported as a clean miss, while a torn or mismatched
// record is removed and surfaced as an error so the engine counts the
// fault; either way the next Get is a plain miss and the re-simulated
// result overwrites the damage.
func (s *DirStore) Get(key string) (Record, bool, error) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Record{}, false, nil
		}
		return Record{}, false, fmt.Errorf("campaign: store read %s: %w", key, err)
	}
	if len(data) == 0 {
		os.Remove(path)
		return Record{}, false, nil
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		os.Remove(path)
		return Record{}, false, fmt.Errorf("campaign: store decode %s: %w", key, err)
	}
	if rec.Key != key {
		os.Remove(path)
		return Record{}, false, fmt.Errorf("campaign: store entry %s carries key %s", key, rec.Key)
	}
	return rec, true, nil
}

// Put persists a record under key, atomically replacing any existing
// entry. The temp file is fsynced before the rename: the rename alone
// is atomic with respect to concurrent readers but not with respect to
// a crash — without the flush, a power loss can leave the final name
// pointing at zero-length or partial content. The containing directory
// is then fsynced so the rename itself survives the crash.
func (s *DirStore) Put(key string, rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: store encode %s: %w", key, err)
	}
	dir := filepath.Join(s.dir, shard(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign: store write %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(dir, "."+key+".tmp-")
	if err != nil {
		return fmt.Errorf("campaign: store write %s: %w", key, err)
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: store write %s: %v/%v/%v", key, werr, serr, cerr)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: store write %s: %w", key, err)
	}
	// Directory flush is best-effort: the record is already visible and
	// well-formed, so a filesystem that rejects fsync on directories only
	// re-widens the crash window — it must not fail a successful write.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ModelsDir returns the directory reserved for fitted surrogate models
// (see internal/surrogate). It lives inside the store root so one
// -cache-dir carries both tiers, but is excluded from record Usage and
// reported distinctly by scripts/cache_stats.sh — model files use an
// "m1-" prefix, never the record "v1-" prefix, so inspection and
// pruning tooling can tell the tiers apart.
func (s *DirStore) ModelsDir() string { return filepath.Join(s.dir, "models") }

// Walk invokes fn for every readable, well-formed record in the store,
// in unspecified order. Unreadable or corrupt entries are skipped (they
// degrade to misses at Get time anyway) and fn errors abort the walk.
// This is the surrogate fitter's bulk-load path — not a hot path.
func (s *DirStore) Walk(fn func(Record) error) error {
	return filepath.WalkDir(s.dir, func(path string, d os.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			if path == s.ModelsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".json") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil
		}
		if rec.Format != recordFormat {
			return nil
		}
		return fn(rec)
	})
}

// Len walks the store and returns the number of persisted records —
// inspection/testing helper, not on any hot path.
func (s *DirStore) Len() (int, error) {
	n, _, err := s.Usage()
	return n, err
}

// Usage walks the store and returns the persisted record count and
// their total size in bytes — the numbers behind the service /statsz
// endpoint and scripts/cache_stats.sh. Not on any hot path.
func (s *DirStore) Usage() (records int, bytes int64, err error) {
	err = filepath.WalkDir(s.dir, func(path string, d os.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			if path == s.ModelsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".json") {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return ierr
		}
		records++
		bytes += info.Size()
		return nil
	})
	return records, bytes, err
}
