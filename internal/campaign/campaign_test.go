package campaign

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// simCount counts fresh simulations of the synthetic "campaign-counter"
// kernel (it runs with Ranks: 1, so one increment per simulation).
var simCount atomic.Int64

func init() {
	bench.Register(&bench.Benchmark{
		ID:   90,
		Name: "campaign-counter",
		Run: func(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
			simCount.Add(1)
			r.Compute(machine.Phase{Name: "count", FlopsSIMD: 1e6, BytesMem: 1e4})
			rep := bench.RunReport{StepsModeled: 1, StepsSimulated: 1}
			if r.ID() == 0 {
				rep.Checks = []bench.Check{{Name: "synthetic", Value: 0, OK: true}}
			}
			return rep, nil
		},
	})
}

func counterJob(ranks int) spec.RunSpec {
	return spec.RunSpec{
		Benchmark: "campaign-counter", Class: bench.Tiny,
		Cluster: machine.MustGet("ClusterA"), Ranks: ranks,
	}
}

// TestParallelMatchesSerial runs a campaign of >= 8 jobs on >= 4 workers
// and requires results identical to the serial spec.Sweep baseline.
func TestParallelMatchesSerial(t *testing.T) {
	base := spec.RunSpec{
		Benchmark: "tealeaf", Class: bench.Tiny,
		Cluster: machine.MustGet("ClusterA"),
		Options: bench.Options{SimSteps: 2},
	}
	points := []int{1, 2, 3, 4, 6, 8, 12, 16}

	serial, err := spec.Sweep(base, points)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(4).Sweep(base, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("got %d results, want %d", len(parallel), len(serial))
	}
	for i := range serial {
		if !reflect.DeepEqual(parallel[i].Usage, serial[i].Usage) {
			t.Errorf("point %d: parallel usage differs from serial:\n%+v\nvs\n%+v",
				points[i], parallel[i].Usage, serial[i].Usage)
		}
		if !reflect.DeepEqual(parallel[i].RawUsage, serial[i].RawUsage) {
			t.Errorf("point %d: raw usage differs", points[i])
		}
		if !reflect.DeepEqual(parallel[i].Report, serial[i].Report) {
			t.Errorf("point %d: report differs", points[i])
		}
	}
}

// TestCacheSkipsResimulation proves memoized jobs are not re-simulated:
// the synthetic kernel's global counter advances once per unique job no
// matter how many times the job is submitted.
func TestCacheSkipsResimulation(t *testing.T) {
	e := New(2)
	before := simCount.Load()

	// Three submissions of the same job in one batch plus one distinct job.
	outs := e.Run([]spec.RunSpec{counterJob(1), counterJob(1), counterJob(1), counterJob(2)})
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
	}
	// A second batch resubmitting both jobs.
	outs2 := e.Run([]spec.RunSpec{counterJob(1), counterJob(2)})

	// 1-rank job simulated once (1 rank) + 2-rank job once (2 ranks).
	if got := simCount.Load() - before; got != 3 {
		t.Errorf("kernel executed on %d ranks total, want 3 (one simulation per unique job)", got)
	}
	st := e.Stats()
	if st.Jobs != 6 || st.Misses != 2 || st.Hits != 4 {
		t.Errorf("stats = %+v, want {Jobs:6 Hits:4 Misses:2}", st)
	}
	if !reflect.DeepEqual(outs[0].Result.Usage, outs2[0].Result.Usage) {
		t.Error("cached result differs from original")
	}
}

// TestPerJobErrorsDoNotAbortSiblings mixes failing jobs into a batch and
// requires every sibling to complete.
func TestPerJobErrorsDoNotAbortSiblings(t *testing.T) {
	e := New(4)
	outs := e.Run([]spec.RunSpec{
		counterJob(1),
		{Benchmark: "no-such-kernel", Class: bench.Tiny, Cluster: machine.MustGet("ClusterA"), Ranks: 1},
		counterJob(2),
		{Benchmark: "campaign-counter", Class: bench.Tiny, Ranks: 1}, // nil cluster
	})
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Errorf("good jobs failed: %v, %v", outs[0].Err, outs[2].Err)
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "unknown benchmark") {
		t.Errorf("unknown kernel not reported: %v", outs[1].Err)
	}
	if outs[3].Err == nil || !strings.Contains(outs[3].Err.Error(), "without cluster") {
		t.Errorf("nil cluster not reported: %v", outs[3].Err)
	}
	// Errors are memoized too.
	st := e.Stats()
	outs2 := e.Run([]spec.RunSpec{outs[1].Job})
	if outs2[0].Err == nil {
		t.Error("memoized error lost")
	}
	if e.Stats().Misses != st.Misses {
		t.Error("failed job re-simulated instead of served from cache")
	}
}

// TestOutcomesInInputOrder submits jobs in shuffled rank order and
// requires outcomes to line up with the inputs.
func TestOutcomesInInputOrder(t *testing.T) {
	ranks := []int{4, 1, 3, 1, 2, 4}
	jobs := make([]spec.RunSpec, len(ranks))
	for i, r := range ranks {
		jobs[i] = counterJob(r)
	}
	outs := New(3).Run(jobs)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.Result.Usage.Ranks != ranks[i] {
			t.Errorf("outcome %d has %d ranks, want %d", i, o.Result.Usage.Ranks, ranks[i])
		}
		if o.Job.Ranks != ranks[i] {
			t.Errorf("outcome %d echoes job with %d ranks, want %d", i, o.Job.Ranks, ranks[i])
		}
	}
}

// TestKeyDistinguishesClustersByValue checks the cache key reflects the
// cluster hardware, not the pointer identity, so mutated cluster copies
// (ablation studies) never collide with the registered presets.
func TestKeyDistinguishesClustersByValue(t *testing.T) {
	a1, a2 := machine.MustGet("ClusterA"), machine.MustGet("ClusterA")
	j1, j2 := counterJob(1), counterJob(1)
	j1.Cluster, j2.Cluster = a1, a2
	if Key(j1) != Key(j2) {
		t.Error("identical hardware on distinct pointers produced distinct keys")
	}
	a2.CPU.MemSaturatedPerDomain *= 2
	if Key(j1) == Key(j2) {
		t.Error("mutated cluster spec shares a key with the preset")
	}
	j3 := j1
	j3.Options = bench.Options{SimSteps: 7}
	if Key(j1) == Key(j3) {
		t.Error("different options share a key")
	}
}

// TestKeyDistinguishesClockPoints checks that jobs differing only in the
// ClockHz override never share a memoized result, so every point of a
// frequency sweep is simulated in its own right.
func TestKeyDistinguishesClockPoints(t *testing.T) {
	j1, j2 := counterJob(1), counterJob(1)
	j2.ClockHz = 1.6e9
	if Key(j1) == Key(j2) {
		t.Error("clock override shares a key with the pinned-clock job")
	}
	j3 := j1
	j3.ClockHz = 1.2e9
	if Key(j2) == Key(j3) {
		t.Error("distinct clock points share a key")
	}
	// Requests snapping to the same ladder step run the same simulation
	// and must share one memo entry.
	j4, j5 := counterJob(1), counterJob(1)
	j4.ClockHz, j5.ClockHz = 1.21e9, 1.24e9
	if Key(j4) != Key(j5) {
		t.Error("requests quantizing to the same ladder step have distinct keys")
	}
}

// TestFrequencySweep fans one job across a clock list, checks ladder
// order and per-point memoization, and that nil clocks expand to the
// cluster's full DVFS ladder.
func TestFrequencySweep(t *testing.T) {
	e := New(4)
	base := counterJob(2)
	clocks := []float64{0.8e9, 1.6e9, 2.4e9}

	results, err := e.FrequencySweep(base, clocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(clocks) {
		t.Fatalf("got %d results, want %d", len(results), len(clocks))
	}
	for i, r := range results {
		if r.Spec.ClockHz != clocks[i] {
			t.Errorf("point %d ran at %g Hz, want %g", i, r.Spec.ClockHz, clocks[i])
		}
	}
	// Slower clocks may not beat the base wall time for this tiny kernel,
	// but the three points must be distinct simulations.
	st := e.Stats()
	if st.Misses != 3 {
		t.Errorf("%d fresh simulations, want 3 (one per clock)", st.Misses)
	}
	// Resubmitting is all cache hits.
	if _, err := e.FrequencySweep(base, clocks); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Misses != st.Misses {
		t.Error("repeated frequency sweep re-simulated instead of hitting the cache")
	}

	// nil clocks = the full ladder of the job's cluster.
	ladder := base.Cluster.CPU.DVFS.Ladder()
	full, err := e.FrequencySweep(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(ladder) {
		t.Fatalf("full sweep has %d points, want ladder length %d", len(full), len(ladder))
	}
	for i, r := range full {
		if r.Spec.ClockHz != ladder[i] {
			t.Errorf("full sweep point %d at %g Hz, want %g", i, r.Spec.ClockHz, ladder[i])
		}
	}
}

// TestSweepAllCoversCrossProduct checks the batched multi-kernel sweep
// returns every (kernel, point) result in order.
func TestSweepAllCoversCrossProduct(t *testing.T) {
	e := New(4)
	names := []string{"campaign-counter", "tealeaf"}
	points := []int{1, 2}
	out, err := e.SweepAll(names, spec.RunSpec{
		Class:   bench.Tiny,
		Cluster: machine.MustGet("ClusterA"),
		Options: bench.Options{SimSteps: 1},
	}, points)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		res, ok := out[name]
		if !ok || len(res) != len(points) {
			t.Fatalf("missing or short sweep for %s: %v", name, res)
		}
		for i, p := range points {
			if res[i].Usage.Ranks != p {
				t.Errorf("%s point %d has %d ranks, want %d", name, i, res[i].Usage.Ranks, p)
			}
		}
	}
}

// TestPooledEnvReuseAcrossWorkers drives many fresh simulations through
// a parallel worker pool, twice, so workers concurrently acquire,
// release, and reuse pooled sim environments (event slabs, process
// structs, resume channels). Run under -race in CI, this pins the
// thread-safety of pooled-buffer reuse; the result comparison between
// the two rounds pins that reuse never leaks state between jobs.
func TestPooledEnvReuseAcrossWorkers(t *testing.T) {
	cluster := machine.MustGet("ClusterA")
	jobs := make([]spec.RunSpec, 0, 12)
	for _, name := range []string{"tealeaf", "lbm", "minisweep", "pot3d"} {
		for _, ranks := range []int{2, 4, 7} {
			jobs = append(jobs, spec.RunSpec{
				Benchmark: name, Class: bench.Tiny, Cluster: cluster,
				Ranks: ranks, Options: bench.Options{SimSteps: 1},
			})
		}
	}
	run := func() []Outcome {
		// A fresh engine per round defeats memoization, forcing every
		// job to re-simulate on recycled environments.
		return New(4).Run(jobs)
	}
	first := run()
	second := run()
	for i := range jobs {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, first[i].Err, second[i].Err)
		}
		a, b := first[i].Result.Usage, second[i].Result.Usage
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("job %d: usage differs across pooled reruns:\n%+v\n%+v", i, a, b)
		}
	}
}

// TestPooledJobReuseOscillatingShapes stresses the job-pool Reinit paths
// the allocation-free MPI layer introduced: rank counts that oscillate
// between large and small (growing and shrinking the pooled rank,
// resource, and arena slices) and jobs alternating between clusters
// (repointing pooled Systems at different specs). Concurrent execution
// must produce results identical to a single-worker run of the same
// batch — any stale pooled state (leaked envelopes, mis-sized rank
// slices, reused payload arenas) shows up as a diff or as a -race report.
func TestPooledJobReuseOscillatingShapes(t *testing.T) {
	a := machine.MustGet("ClusterA")
	bCluster := machine.MustGet("ClusterB")
	shapes := []struct {
		cluster *machine.ClusterSpec
		ranks   int
	}{
		{a, 36}, {a, 2}, {bCluster, 52}, {a, 7}, {bCluster, 1}, {a, 18},
		{bCluster, 13}, {a, 1}, {a, 24}, {bCluster, 4},
	}
	jobs := make([]spec.RunSpec, 0, len(shapes)*2)
	for _, name := range []string{"tealeaf", "minisweep"} {
		for _, sh := range shapes {
			jobs = append(jobs, spec.RunSpec{
				Benchmark: name, Class: bench.Tiny, Cluster: sh.cluster,
				Ranks: sh.ranks, Options: bench.Options{SimSteps: 1},
			})
		}
	}
	// Fresh engines defeat memoization so both runs simulate every job;
	// the single worker run is the sequential reference.
	serial := New(1).Run(jobs)
	parallel := New(4).Run(jobs)
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Fatalf("job %d (%s ranks=%d on %s): parallel result differs from serial",
				i, jobs[i].Benchmark, jobs[i].Ranks, jobs[i].Cluster.Name)
		}
	}
}
