package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// keyVersion names the canonical encoding generation. It is part of every
// job key, so bumping it invalidates all previously persisted results at
// once — do that whenever the encoding below, the simulation semantics of
// an encoded field, or the persisted Record schema changes incompatibly.
const keyVersion = "spechpc-job/v1"

// Canonical returns the canonical plain-text encoding of a job: one
// versioned header line followed by one key=value line per field of the
// spec, in a fixed order, with floats rendered at full round-trip
// precision. Two specs describing the same simulation produce identical
// encodings; any field that changes the simulation changes the encoding
// (pinned by a reflection test walking every field of RunSpec).
//
// The clock override is quantized onto the cluster's DVFS ladder before
// encoding — that is the clock the run executes at — so requests snapping
// to the same ladder step share one identity while every distinct ladder
// point keys independently.
//
// Canonical exists for debugging and golden tests; cache lookups use the
// fixed-length hash from Key.
func Canonical(rs spec.RunSpec) string {
	var b strings.Builder
	b.Grow(1024)
	wr := func(k, v string) {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
		b.WriteByte('\n')
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := strconv.Itoa
	t := strconv.FormatBool

	var cl machine.ClusterSpec
	if rs.Cluster != nil {
		cl = *rs.Cluster
	}
	hz := rs.ClockHz
	// Quantize only requests the run itself would snap: Quantize clamps
	// out-of-range clocks onto the ladder endpoints, but spec.Run rejects
	// them, so an invalid-clock job must key (and memoize its error)
	// separately from the legitimate endpoint job.
	if d := cl.CPU.DVFS; hz > 0 && d.Enabled() && hz >= d.MinHz && hz <= d.MaxHz {
		hz = d.Quantize(hz)
	}

	b.WriteString(keyVersion)
	b.WriteByte('\n')
	wr("bench", rs.Benchmark)
	wr("class", d(int(rs.Class)))
	wr("ranks", d(rs.Ranks))
	wr("clock_hz", f(hz))
	wr("opt.sim_steps", d(rs.Options.SimSteps))
	wr("opt.scale_div", d(rs.Options.ScaleDiv))
	wr("keep_trace", t(rs.KeepTrace))

	n := rs.Net
	wr("net.name", n.Name)
	wr("net.intra_latency", f(n.IntraNodeLatency))
	wr("net.inter_latency", f(n.InterNodeLatency))
	wr("net.link_bw", f(n.LinkBandwidth))
	wr("net.shmem_bw", f(n.ShmemBandwidthPerNode))
	wr("net.shmem_flow_max", f(n.ShmemPerFlowMax))
	wr("net.eager_threshold", f(n.EagerThreshold))
	wr("net.send_overhead", f(n.SendOverhead))
	wr("net.recv_overhead", f(n.RecvOverhead))

	wr("cluster.name", cl.Name)
	wr("cluster.max_nodes", d(cl.MaxNodes))
	c := cl.CPU
	wr("cpu.name", c.Name)
	wr("cpu.base_clock_hz", f(c.BaseClockHz))
	wr("cpu.cores_per_socket", d(c.CoresPerSocket))
	wr("cpu.sockets_per_node", d(c.SocketsPerNode))
	wr("cpu.domains_per_socket", d(c.DomainsPerSocket))
	wr("cpu.simd_flops_per_cycle", f(c.SIMDFlopsPerCycle))
	wr("cpu.scalar_flops_per_cycle", f(c.ScalarFlopsPerCycle))
	wr("cpu.irregular_access_eff", f(c.IrregularAccessEff))
	wr("cpu.l1_per_core", f(c.L1PerCore))
	wr("cpu.l2_per_core", f(c.L2PerCore))
	wr("cpu.l3_per_domain", f(c.L3PerDomain))
	wr("cpu.l2_bw_per_core", f(c.L2BandwidthPerCore))
	wr("cpu.l3_bw_per_domain", f(c.L3BandwidthPerDomain))
	wr("cpu.l3_bw_per_core_max", f(c.L3BandwidthPerCoreMax))
	wr("cpu.mem_theoretical_per_domain", f(c.MemTheoreticalPerDomain))
	wr("cpu.mem_saturated_per_domain", f(c.MemSaturatedPerDomain))
	wr("cpu.mem_per_core_max", f(c.MemPerCoreMax))
	wr("cpu.tdp_per_socket", f(c.TDPPerSocket))
	wr("cpu.tdp_cap_fraction", f(c.TDPCapFraction))
	wr("cpu.base_power_per_socket", f(c.BasePowerPerSocket))
	wr("cpu.core_dyn_max_power", f(c.CoreDynMaxPower))
	wr("cpu.core_stall_power", f(c.CoreStallPower))
	wr("cpu.core_mpi_power", f(c.CoreMPIPower))
	wr("cpu.dram_idle_per_domain", f(c.DRAMIdlePerDomain))
	wr("cpu.dram_energy_per_byte", f(c.DRAMEnergyPerByte))
	v := c.DVFS
	wr("dvfs.min_hz", f(v.MinHz))
	wr("dvfs.max_hz", f(v.MaxHz))
	wr("dvfs.step_hz", f(v.StepHz))
	wr("dvfs.ref_hz", f(v.RefHz))
	wr("dvfs.v_min", f(v.VMin))
	wr("dvfs.v_max", f(v.VMax))
	return b.String()
}

// Key returns the canonical identity of a job: a versioned, fixed-length
// content hash of the Canonical encoding. Two specs with equal keys
// describe the same simulation and may share a memoized or persisted
// result. The cluster is keyed by value, not by pointer, so two
// independently resolved (or mutated) ClusterSpec instances only collide
// when they describe identical hardware; the ladder-quantized clock
// override is part of the key, so every distinct frequency point memoizes
// independently while requests snapping to the same ladder step share one
// simulation. The key doubles as the file name in the on-disk Store, so
// its format must stay stable across processes and machines.
func Key(rs spec.RunSpec) string {
	sum := sha256.Sum256([]byte(Canonical(rs)))
	return "v1-" + hex.EncodeToString(sum[:])
}

// jobDesc renders a job's identity for error messages: benchmark, class,
// cluster (with the clock override when present), and rank count.
func jobDesc(rs spec.RunSpec) string {
	cluster := "<nil cluster>"
	if rs.Cluster != nil {
		cluster = rs.Cluster.Name
	}
	clock := ""
	if rs.ClockHz > 0 {
		clock = fmt.Sprintf(" at %g GHz", rs.ClockHz/1e9)
	}
	return fmt.Sprintf("%s/%v on %s%s with %d ranks",
		rs.Benchmark, rs.Class, cluster, clock, rs.Ranks)
}
