// Package campaign is the job-oriented experiment engine behind every
// sweep in this repository. The paper's evaluation is built from large
// campaigns — 9 kernels x 2 clusters x dozens of rank counts per figure —
// and each simulated MPI job is an independent single-threaded
// discrete-event run, so campaigns are embarrassingly parallel across
// host cores.
//
// The core is a long-lived asynchronous Scheduler: jobs are submitted
// with a context and a priority, deduplicated under a canonical
// content-addressed job Key, coalesced across requests (identical jobs
// in flight from different callers share one simulation), executed on a
// bounded on-demand worker pool fed by a priority queue, and memoized
// for the scheduler's lifetime. Queued jobs whose submitters all cancel
// are dropped without running; running simulations always complete.
//
// The synchronous Engine (Run, Sweep, SweepAll, FrequencySweep) is a
// thin batch adapter over the scheduler, preserved for CLIs, figures,
// and tests: it submits a batch, waits for every ticket, and returns
// outcomes in deterministic input order with per-job errors — one
// failing job never aborts its siblings.
//
// Backed by a persistent Store (see NewWithStore), the memo additionally
// survives the process: results are looked up in — and written through to
// — an on-disk content-addressed cache, so re-running the same scenarios
// in a fresh process serves them without re-simulating.
package campaign

import (
	"context"
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/spec"
)

// Outcome is the result of one job of a campaign.
type Outcome struct {
	// Job is the spec as submitted.
	Job spec.RunSpec
	// Result is valid iff Err is nil.
	Result spec.RunResult
	// Err is this job's failure (errors are memoized like results).
	Err error
}

// Stats counts the scheduler's cache behaviour. A "miss" is a fresh
// simulation; a "hit" is a job served from the in-process memo, whether
// it completed earlier or is still in flight. Coalesced counts the hits
// that attached to a job not yet finished — concurrent submissions of
// one identity sharing a single simulation. StoreHits count jobs served
// from the persistent store instead of simulating; StoreFaults count
// store read/write errors (each such job falls back to a fresh
// simulation, so faults never lose results). Cancelled counts queued
// jobs dropped before starting (submitters all cancelled, or scheduler
// shutdown). The Surrogate* counters cover Fast-mode submissions (see
// SubmitMode): SurrogateHits are queries answered analytically without
// simulating, SurrogateMisses fell back because no fitted model covered
// the job's family, and SurrogateRefused fell back because the model
// declined the query (extrapolation outside the fitted hull, or an
// error bound too loose to trust).
type Stats struct {
	Jobs             int
	Hits             int
	Coalesced        int
	Misses           int
	StoreHits        int
	StoreFaults      int
	Cancelled        int
	SurrogateHits    int
	SurrogateMisses  int
	SurrogateRefused int
}

// String renders the counters in the stable one-line form the CLIs print
// to stderr when a persistent store is attached. The field names are
// load-bearing: scripts/warm_cache_check.sh and scripts/service_smoke.sh
// parse them to assert a warm store serves a repeated run with
// fresh-sims=0.
func (s Stats) String() string {
	line := fmt.Sprintf("campaign: jobs=%d memo-hits=%d coalesced=%d store-hits=%d fresh-sims=%d store-faults=%d cancelled=%d",
		s.Jobs, s.Hits, s.Coalesced, s.StoreHits, s.Misses, s.StoreFaults, s.Cancelled)
	if s.SurrogateHits > 0 || s.SurrogateMisses > 0 || s.SurrogateRefused > 0 {
		line += fmt.Sprintf(" surrogate-hits=%d surrogate-misses=%d surrogate-refused=%d",
			s.SurrogateHits, s.SurrogateMisses, s.SurrogateRefused)
	}
	return line
}

// Engine is the synchronous batch view of a Scheduler. The zero value is
// not usable; construct with New, NewWithStore, or NewWithScheduler. An
// Engine is safe for concurrent use; concurrent Run calls share the
// scheduler's worker pool, memo, and coalescing.
type Engine struct {
	sched *Scheduler
	mode  Mode
}

// New returns an engine running at most workers simulations at once.
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Engine {
	return NewWithStore(workers, nil)
}

// NewWithStore returns an engine whose in-process memo is backed by a
// persistent store: jobs missing from the memo are looked up in the store
// before simulating, and freshly simulated results are written through.
// Jobs that keep full event traces (RunSpec.KeepTrace) bypass the store —
// event timelines are not persisted — and failed jobs are never written,
// so transient faults cannot poison a shared cache. A nil store behaves
// exactly like New.
func NewWithStore(workers int, store Store) *Engine {
	return NewWithScheduler(NewScheduler(workers, store))
}

// NewWithScheduler wraps an existing scheduler in the synchronous batch
// API, so long-lived services can share one scheduler between HTTP
// submissions and planner-driven batches.
func NewWithScheduler(s *Scheduler) *Engine {
	return &Engine{sched: s}
}

// NewWithCacheDir returns an engine backed by an on-disk store rooted at
// cacheDir, or a store-less engine when cacheDir is empty — the one-stop
// constructor behind both CLIs' -cache-dir flag.
func NewWithCacheDir(workers int, cacheDir string) (*Engine, error) {
	if cacheDir == "" {
		return New(workers), nil
	}
	st, err := NewDirStore(cacheDir)
	if err != nil {
		return nil, err
	}
	return NewWithStore(workers, st), nil
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.sched.Workers() }

// Store returns the persistent store backing the engine (nil if none).
func (e *Engine) Store() Store { return e.sched.Store() }

// Scheduler returns the asynchronous scheduler behind the engine.
func (e *Engine) Scheduler() *Scheduler { return e.sched }

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() Stats { return e.sched.Stats() }

// Mode returns the query mode every submission through this engine view
// uses (Exact unless derived with WithMode).
func (e *Engine) Mode() Mode { return e.mode }

// WithMode returns a derived view of the same engine — same scheduler,
// memo, store, and counters — whose submissions carry the given query
// mode. A Fast view lets whole scenario renders ride the surrogate,
// while the original Exact view is untouched; because surrogate answers
// are never memoized, the two views cannot contaminate each other.
func (e *Engine) WithMode(mode Mode) *Engine {
	if mode == e.mode {
		return e
	}
	return &Engine{sched: e.sched, mode: mode}
}

// Submit enqueues one job on the underlying scheduler without blocking —
// the asynchronous escape hatch for callers (the scenario planner, the
// HTTP service) that want results to stream in as they land. The
// engine's mode applies (see WithMode).
func (e *Engine) Submit(ctx context.Context, rs spec.RunSpec) *Ticket {
	return e.sched.SubmitMode(ctx, rs, 0, e.mode)
}

// Run executes a campaign and returns one Outcome per job, in input
// order. Jobs already memoized (or duplicated within the batch) are
// served from the in-process memo, then from the persistent store if one
// is attached; the rest run on the scheduler's worker pool. At most
// Workers() worker goroutines exist no matter the batch size, so 10k-job
// scenario batches do not create 10k parked goroutines.
func (e *Engine) Run(jobs []spec.RunSpec) []Outcome {
	return e.RunCtx(context.Background(), jobs)
}

// RunCtx is Run under a cancellable context: the batch is submitted and
// awaited with ctx, so cancelling it releases the batch's claim on
// queued jobs and unblocks the waits (outcomes carry the context
// error). A cancelled ctx can never pin work alive — the path renderers
// use so an abandoned study stops resubmitting its own jobs.
func (e *Engine) RunCtx(ctx context.Context, jobs []spec.RunSpec) []Outcome {
	tickets := make([]*Ticket, len(jobs))
	for i, rs := range jobs {
		tickets[i] = e.Submit(ctx, rs)
	}
	out := make([]Outcome, len(jobs))
	for i, t := range tickets {
		out[i] = t.Wait(ctx)
	}
	return out
}

// Sweep runs one benchmark over a list of rank counts through the engine
// and returns results in point order — the parallel, cached counterpart
// of spec.Sweep. The first job error aborts the sweep's result (the
// remaining points still complete and stay memoized).
func (e *Engine) Sweep(base spec.RunSpec, points []int) ([]spec.RunResult, error) {
	return e.SweepCtx(context.Background(), base, points)
}

// SweepCtx is Sweep under a cancellable context (see RunCtx).
func (e *Engine) SweepCtx(ctx context.Context, base spec.RunSpec, points []int) ([]spec.RunResult, error) {
	jobs := make([]spec.RunSpec, len(points))
	for i, p := range points {
		rs := base
		rs.Ranks = p
		jobs[i] = rs
	}
	outs := e.RunCtx(ctx, jobs)
	results := make([]spec.RunResult, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, o.Err
		}
		results[i] = o.Result
	}
	return results, nil
}

// SweepAll runs base over points for every named benchmark, submitting
// the full cross product as one batch so jobs parallelize across kernels
// and rank counts alike. Results are keyed by benchmark name.
func (e *Engine) SweepAll(names []string, base spec.RunSpec, points []int) (map[string][]spec.RunResult, error) {
	jobs := make([]spec.RunSpec, 0, len(names)*len(points))
	for _, name := range names {
		for _, p := range points {
			rs := base
			rs.Benchmark = name
			rs.Ranks = p
			jobs = append(jobs, rs)
		}
	}
	outs := e.Run(jobs)
	out := make(map[string][]spec.RunResult, len(names))
	i := 0
	for _, name := range names {
		results := make([]spec.RunResult, len(points))
		for j := range points {
			o := outs[i]
			i++
			if o.Err != nil {
				return nil, fmt.Errorf("campaign: sweep %s: %w", jobDesc(o.Job), o.Err)
			}
			results[j] = o.Result
		}
		out[name] = results
	}
	return out, nil
}

// FrequencySweep fans one (benchmark, cluster, ranks) point across a
// clock ladder on the worker pool: the frequency-axis counterpart of
// Sweep. An empty clocks slice selects the cluster's full DVFS ladder.
// Results come back in ladder order; the first job error aborts the
// returned slice (remaining points still complete and stay memoized).
func (e *Engine) FrequencySweep(base spec.RunSpec, clocks []float64) ([]spec.RunResult, error) {
	return e.FrequencySweepCtx(context.Background(), base, clocks)
}

// FrequencySweepCtx is FrequencySweep under a cancellable context (see
// RunCtx).
func (e *Engine) FrequencySweepCtx(ctx context.Context, base spec.RunSpec, clocks []float64) ([]spec.RunResult, error) {
	if len(clocks) == 0 {
		if base.Cluster == nil {
			return nil, fmt.Errorf("campaign: frequency sweep without cluster")
		}
		clocks = base.Cluster.CPU.DVFS.Ladder()
		if len(clocks) == 0 {
			return nil, fmt.Errorf("campaign: %s has no DVFS ladder", base.Cluster.Name)
		}
	}
	jobs := make([]spec.RunSpec, len(clocks))
	for i, hz := range clocks {
		rs := base
		rs.ClockHz = hz
		jobs[i] = rs
	}
	outs := e.RunCtx(ctx, jobs)
	results := make([]spec.RunResult, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, o.Err
		}
		results[i] = o.Result
	}
	return results, nil
}
