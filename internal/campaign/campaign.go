// Package campaign is the job-oriented experiment engine behind every
// sweep in this repository. The paper's evaluation is built from large
// campaigns — 9 kernels x 2 clusters x dozens of rank counts per figure —
// and each simulated MPI job is an independent single-threaded
// discrete-event run, so campaigns are embarrassingly parallel across
// host cores.
//
// The engine takes a batch of spec.RunSpec jobs, deduplicates them under
// a canonical job key, executes the unique jobs on a bounded worker pool,
// memoizes every outcome for the lifetime of the engine (identical jobs
// are simulated exactly once per process, however many figures ask for
// them), and returns outcomes in deterministic input order with per-job
// errors — one failing job never aborts its siblings.
package campaign

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// Outcome is the result of one job of a campaign.
type Outcome struct {
	// Job is the spec as submitted.
	Job spec.RunSpec
	// Result is valid iff Err is nil.
	Result spec.RunResult
	// Err is this job's failure (errors are memoized like results).
	Err error
}

// Stats counts the engine's cache behaviour. A "miss" is a fresh
// simulation; a "hit" is a job served from the memo, whether it was
// cached by an earlier batch or is a duplicate within the current one.
type Stats struct {
	Jobs   int
	Hits   int
	Misses int
}

// entry is one memoized job. done is closed after res/err are written,
// so waiters synchronize on the channel close (singleflight-style: a
// batch that re-submits a job still in flight waits instead of re-running
// it).
type entry struct {
	done chan struct{}
	res  spec.RunResult
	err  error
}

// Engine executes campaigns. The zero value is not usable; construct
// with New. An Engine is safe for concurrent use.
type Engine struct {
	workers int
	// sem bounds in-flight simulations engine-wide, so the worker cap
	// holds even across concurrent Run calls.
	sem chan struct{}

	mu    sync.Mutex
	cache map[string]*entry
	stats Stats
}

// New returns an engine running at most workers simulations at once.
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Engine{
		workers: workers,
		sem:     make(chan struct{}, workers),
		cache:   map[string]*entry{},
	}
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Key returns the canonical identity of a job: two specs with equal keys
// describe the same simulation and may share a memoized result. The
// cluster is keyed by value, not by pointer, so two independently
// resolved (or mutated) ClusterSpec instances only collide when they
// describe identical hardware. The clock override is part of the key —
// quantized onto the cluster's DVFS ladder, since that is the clock the
// run executes at — so every distinct frequency point memoizes
// independently and requests snapping to the same ladder step share one
// simulation.
func Key(rs spec.RunSpec) string {
	var cl machine.ClusterSpec
	if rs.Cluster != nil {
		cl = *rs.Cluster
	}
	hz := rs.ClockHz
	if hz > 0 {
		hz = cl.CPU.DVFS.Quantize(hz)
	}
	return fmt.Sprintf("%s|%v|%d|%g|%+v|%t|%+v|%+v",
		rs.Benchmark, rs.Class, rs.Ranks, hz, rs.Options, rs.KeepTrace, rs.Net, cl)
}

// Run executes a campaign and returns one Outcome per job, in input
// order. Jobs already memoized (or duplicated within the batch) are
// served from cache; the rest run on the worker pool.
func (e *Engine) Run(jobs []spec.RunSpec) []Outcome {
	type task struct {
		ent *entry
		rs  spec.RunSpec
	}
	ents := make([]*entry, len(jobs))
	var fresh []task
	e.mu.Lock()
	e.stats.Jobs += len(jobs)
	for i, rs := range jobs {
		k := Key(rs)
		ent, ok := e.cache[k]
		if ok {
			e.stats.Hits++
		} else {
			ent = &entry{done: make(chan struct{})}
			e.cache[k] = ent
			fresh = append(fresh, task{ent, rs})
			e.stats.Misses++
		}
		ents[i] = ent
	}
	e.mu.Unlock()

	var wg sync.WaitGroup
	for _, t := range fresh {
		wg.Add(1)
		go func(t task) {
			defer wg.Done()
			e.sem <- struct{}{}
			defer func() { <-e.sem }()
			t.ent.res, t.ent.err = spec.Run(t.rs)
			close(t.ent.done)
		}(t)
	}
	wg.Wait()

	out := make([]Outcome, len(jobs))
	for i, rs := range jobs {
		<-ents[i].done // entry may be in flight in a concurrent Run
		out[i] = Outcome{Job: rs, Result: ents[i].res, Err: ents[i].err}
	}
	return out
}

// Sweep runs one benchmark over a list of rank counts through the engine
// and returns results in point order — the parallel, cached counterpart
// of spec.Sweep. The first job error aborts the sweep's result (the
// remaining points still complete and stay memoized).
func (e *Engine) Sweep(base spec.RunSpec, points []int) ([]spec.RunResult, error) {
	jobs := make([]spec.RunSpec, len(points))
	for i, p := range points {
		rs := base
		rs.Ranks = p
		jobs[i] = rs
	}
	outs := e.Run(jobs)
	results := make([]spec.RunResult, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, o.Err
		}
		results[i] = o.Result
	}
	return results, nil
}

// SweepAll runs base over points for every named benchmark, submitting
// the full cross product as one batch so jobs parallelize across kernels
// and rank counts alike. Results are keyed by benchmark name.
func (e *Engine) SweepAll(names []string, base spec.RunSpec, points []int) (map[string][]spec.RunResult, error) {
	jobs := make([]spec.RunSpec, 0, len(names)*len(points))
	for _, name := range names {
		for _, p := range points {
			rs := base
			rs.Benchmark = name
			rs.Ranks = p
			jobs = append(jobs, rs)
		}
	}
	outs := e.Run(jobs)
	out := make(map[string][]spec.RunResult, len(names))
	i := 0
	for _, name := range names {
		results := make([]spec.RunResult, len(points))
		for j := range points {
			o := outs[i]
			i++
			if o.Err != nil {
				return nil, fmt.Errorf("campaign: sweep %s/%v on %s: %w",
					name, base.Class, clusterName(base), o.Err)
			}
			results[j] = o.Result
		}
		out[name] = results
	}
	return out, nil
}

// FrequencySweep fans one (benchmark, cluster, ranks) point across a
// clock ladder on the worker pool: the frequency-axis counterpart of
// Sweep. An empty clocks slice selects the cluster's full DVFS ladder.
// Results come back in ladder order; the first job error aborts the
// returned slice (remaining points still complete and stay memoized).
func (e *Engine) FrequencySweep(base spec.RunSpec, clocks []float64) ([]spec.RunResult, error) {
	if len(clocks) == 0 {
		if base.Cluster == nil {
			return nil, fmt.Errorf("campaign: frequency sweep without cluster")
		}
		clocks = base.Cluster.CPU.DVFS.Ladder()
		if len(clocks) == 0 {
			return nil, fmt.Errorf("campaign: %s has no DVFS ladder", base.Cluster.Name)
		}
	}
	jobs := make([]spec.RunSpec, len(clocks))
	for i, hz := range clocks {
		rs := base
		rs.ClockHz = hz
		jobs[i] = rs
	}
	outs := e.Run(jobs)
	results := make([]spec.RunResult, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, o.Err
		}
		results[i] = o.Result
	}
	return results, nil
}

func clusterName(rs spec.RunSpec) string {
	if rs.Cluster == nil {
		return "<nil cluster>"
	}
	return rs.Cluster.Name
}
