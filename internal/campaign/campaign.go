// Package campaign is the job-oriented experiment engine behind every
// sweep in this repository. The paper's evaluation is built from large
// campaigns — 9 kernels x 2 clusters x dozens of rank counts per figure —
// and each simulated MPI job is an independent single-threaded
// discrete-event run, so campaigns are embarrassingly parallel across
// host cores.
//
// The engine takes a batch of spec.RunSpec jobs, deduplicates them under
// a canonical content-addressed job key, executes the unique jobs on a
// bounded worker pool, memoizes every outcome for the lifetime of the
// engine (identical jobs are simulated exactly once per process, however
// many figures ask for them), and returns outcomes in deterministic input
// order with per-job errors — one failing job never aborts its siblings.
//
// Backed by a persistent Store (see NewWithStore), the memo additionally
// survives the process: results are looked up in — and written through to
// — an on-disk content-addressed cache, so re-running the same scenarios
// in a fresh process serves them without re-simulating.
package campaign

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/spechpc/spechpc-sim/internal/spec"
)

// Outcome is the result of one job of a campaign.
type Outcome struct {
	// Job is the spec as submitted.
	Job spec.RunSpec
	// Result is valid iff Err is nil.
	Result spec.RunResult
	// Err is this job's failure (errors are memoized like results).
	Err error
}

// Stats counts the engine's cache behaviour. A "miss" is a fresh
// simulation; a "hit" is a job served from the in-process memo, whether
// it was cached by an earlier batch or is a duplicate within the current
// one. StoreHits count jobs served from the persistent store instead of
// simulating; StoreFaults count store read/write errors (each such job
// falls back to a fresh simulation, so faults never lose results).
type Stats struct {
	Jobs        int
	Hits        int
	Misses      int
	StoreHits   int
	StoreFaults int
}

// String renders the counters in the stable one-line form the CLIs print
// to stderr when a persistent store is attached. The field names are
// load-bearing: scripts/warm_cache_check.sh parses them to assert a warm
// store serves a repeated run with fresh-sims=0.
func (s Stats) String() string {
	return fmt.Sprintf("campaign: jobs=%d memo-hits=%d store-hits=%d fresh-sims=%d store-faults=%d",
		s.Jobs, s.Hits, s.StoreHits, s.Misses, s.StoreFaults)
}

// entry is one memoized job. done is closed after res/err are written,
// so waiters synchronize on the channel close (singleflight-style: a
// batch that re-submits a job still in flight waits instead of re-running
// it).
type entry struct {
	done chan struct{}
	res  spec.RunResult
	err  error
}

// task pairs a memo entry with the job that fills it and its canonical
// key (computed once at submission, reused for the store round trip).
type task struct {
	ent *entry
	rs  spec.RunSpec
	key string
}

// Engine executes campaigns. The zero value is not usable; construct
// with New or NewWithStore. An Engine is safe for concurrent use.
type Engine struct {
	workers int
	// sem bounds in-flight simulations engine-wide, so the worker cap
	// holds even across concurrent Run calls.
	sem chan struct{}
	// store is the persistent second-level cache (nil = in-process only).
	store Store

	mu    sync.Mutex
	cache map[string]*entry
	stats Stats
}

// New returns an engine running at most workers simulations at once.
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Engine {
	return NewWithStore(workers, nil)
}

// NewWithStore returns an engine whose in-process memo is backed by a
// persistent store: jobs missing from the memo are looked up in the store
// before simulating, and freshly simulated results are written through.
// Jobs that keep full event traces (RunSpec.KeepTrace) bypass the store —
// event timelines are not persisted — and failed jobs are never written,
// so transient faults cannot poison a shared cache. A nil store behaves
// exactly like New.
func NewWithStore(workers int, store Store) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Engine{
		workers: workers,
		sem:     make(chan struct{}, workers),
		store:   store,
		cache:   map[string]*entry{},
	}
}

// NewWithCacheDir returns an engine backed by an on-disk store rooted at
// cacheDir, or a store-less engine when cacheDir is empty — the one-stop
// constructor behind both CLIs' -cache-dir flag.
func NewWithCacheDir(workers int, cacheDir string) (*Engine, error) {
	if cacheDir == "" {
		return New(workers), nil
	}
	st, err := NewDirStore(cacheDir)
	if err != nil {
		return nil, err
	}
	return NewWithStore(workers, st), nil
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Store returns the persistent store backing the engine (nil if none).
func (e *Engine) Store() Store { return e.store }

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Run executes a campaign and returns one Outcome per job, in input
// order. Jobs already memoized (or duplicated within the batch) are
// served from the in-process memo, then from the persistent store if one
// is attached; the rest run on the worker pool. At most Workers()
// goroutines are spawned per call no matter the batch size, so
// 10k-job scenario batches do not create 10k parked goroutines.
func (e *Engine) Run(jobs []spec.RunSpec) []Outcome {
	ents := make([]*entry, len(jobs))
	var fresh []task
	e.mu.Lock()
	e.stats.Jobs += len(jobs)
	for i, rs := range jobs {
		k := Key(rs)
		ent, ok := e.cache[k]
		if ok {
			e.stats.Hits++
		} else {
			ent = &entry{done: make(chan struct{})}
			e.cache[k] = ent
			fresh = append(fresh, task{ent, rs, k})
		}
		ents[i] = ent
	}
	e.mu.Unlock()

	if len(fresh) > 0 {
		workers := e.workers
		if workers > len(fresh) {
			workers = len(fresh)
		}
		next := make(chan task)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for t := range next {
					e.exec(t)
				}
			}()
		}
		for _, t := range fresh {
			next <- t
		}
		close(next)
		wg.Wait()
	}

	out := make([]Outcome, len(jobs))
	for i, rs := range jobs {
		<-ents[i].done // entry may be in flight in a concurrent Run
		out[i] = Outcome{Job: rs, Result: ents[i].res, Err: ents[i].err}
	}
	return out
}

// exec fills one memo entry: persistent-store lookup first (when
// attached and the job is storable), then a fresh simulation with
// write-through. The engine-wide semaphore bounds concurrent work across
// overlapping Run calls.
func (e *Engine) exec(t task) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	defer close(t.ent.done)

	storable := e.store != nil && !t.rs.KeepTrace
	if storable {
		rec, ok, err := e.store.Get(t.key)
		if err != nil {
			e.count(func(s *Stats) { s.StoreFaults++ })
		} else if ok {
			if res, valid := rec.result(); valid {
				t.ent.res = res
				e.count(func(s *Stats) { s.StoreHits++ })
				return
			}
		}
	}

	e.count(func(s *Stats) { s.Misses++ })
	t.ent.res, t.ent.err = spec.Run(t.rs)
	if storable && t.ent.err == nil {
		if err := e.store.Put(t.key, newRecord(t.key, t.ent.res)); err != nil {
			e.count(func(s *Stats) { s.StoreFaults++ })
		}
	}
}

// count applies a stats mutation under the engine lock.
func (e *Engine) count(f func(*Stats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

// Sweep runs one benchmark over a list of rank counts through the engine
// and returns results in point order — the parallel, cached counterpart
// of spec.Sweep. The first job error aborts the sweep's result (the
// remaining points still complete and stay memoized).
func (e *Engine) Sweep(base spec.RunSpec, points []int) ([]spec.RunResult, error) {
	jobs := make([]spec.RunSpec, len(points))
	for i, p := range points {
		rs := base
		rs.Ranks = p
		jobs[i] = rs
	}
	outs := e.Run(jobs)
	results := make([]spec.RunResult, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, o.Err
		}
		results[i] = o.Result
	}
	return results, nil
}

// SweepAll runs base over points for every named benchmark, submitting
// the full cross product as one batch so jobs parallelize across kernels
// and rank counts alike. Results are keyed by benchmark name.
func (e *Engine) SweepAll(names []string, base spec.RunSpec, points []int) (map[string][]spec.RunResult, error) {
	jobs := make([]spec.RunSpec, 0, len(names)*len(points))
	for _, name := range names {
		for _, p := range points {
			rs := base
			rs.Benchmark = name
			rs.Ranks = p
			jobs = append(jobs, rs)
		}
	}
	outs := e.Run(jobs)
	out := make(map[string][]spec.RunResult, len(names))
	i := 0
	for _, name := range names {
		results := make([]spec.RunResult, len(points))
		for j := range points {
			o := outs[i]
			i++
			if o.Err != nil {
				return nil, fmt.Errorf("campaign: sweep %s: %w", jobDesc(o.Job), o.Err)
			}
			results[j] = o.Result
		}
		out[name] = results
	}
	return out, nil
}

// FrequencySweep fans one (benchmark, cluster, ranks) point across a
// clock ladder on the worker pool: the frequency-axis counterpart of
// Sweep. An empty clocks slice selects the cluster's full DVFS ladder.
// Results come back in ladder order; the first job error aborts the
// returned slice (remaining points still complete and stay memoized).
func (e *Engine) FrequencySweep(base spec.RunSpec, clocks []float64) ([]spec.RunResult, error) {
	if len(clocks) == 0 {
		if base.Cluster == nil {
			return nil, fmt.Errorf("campaign: frequency sweep without cluster")
		}
		clocks = base.Cluster.CPU.DVFS.Ladder()
		if len(clocks) == 0 {
			return nil, fmt.Errorf("campaign: %s has no DVFS ladder", base.Cluster.Name)
		}
	}
	jobs := make([]spec.RunSpec, len(clocks))
	for i, hz := range clocks {
		rs := base
		rs.ClockHz = hz
		jobs[i] = rs
	}
	outs := e.Run(jobs)
	results := make([]spec.RunResult, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, o.Err
		}
		results[i] = o.Result
	}
	return results, nil
}
