package campaign

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenJobs returns representative jobs whose canonical keys are pinned
// on disk: a plain tiny job, a small job with a clock override, and a
// job with a custom interconnect. Accidental key-format changes — which
// would silently invalidate every on-disk cache — fail the golden test.
func goldenJobs() []struct {
	name string
	rs   spec.RunSpec
} {
	fabric := netsim.HDR100()
	fabric.Name = "HDR200 InfiniBand fat-tree"
	fabric.LinkBandwidth *= 2
	return []struct {
		name string
		rs   spec.RunSpec
	}{
		{"tealeaf_tiny_72_ClusterA", spec.RunSpec{
			Benchmark: "tealeaf", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterA"), Ranks: 72,
		}},
		{"pot3d_small_104_ClusterB_1.6GHz", spec.RunSpec{
			Benchmark: "pot3d", Class: bench.Small,
			Cluster: machine.MustGet("ClusterB"), Ranks: 104, ClockHz: 1.6e9,
		}},
		{"lbm_tiny_8_ClusterA_steps2_HDR200", spec.RunSpec{
			Benchmark: "lbm", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterA"), Ranks: 8,
			Options: bench.Options{SimSteps: 2}, Net: fabric,
		}},
	}
}

// TestKeyGolden pins the canonical job keys of representative RunSpecs.
// A mismatch means persisted stores from earlier builds will no longer be
// hit — if the change is intentional (simulation semantics changed), bump
// keyVersion and regenerate with -update.
func TestKeyGolden(t *testing.T) {
	golden := filepath.Join("testdata", "keys.golden")
	if *update {
		var b strings.Builder
		for _, g := range goldenJobs() {
			fmt.Fprintf(&b, "%s %s\n", g.name, Key(g.rs))
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	defer f.Close()
	want := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 {
			want[fields[0]] = fields[1]
		}
	}
	if len(want) == 0 {
		t.Fatal("empty golden file")
	}
	for _, g := range goldenJobs() {
		got := Key(g.rs)
		if w, ok := want[g.name]; !ok {
			t.Errorf("%s missing from golden file (regenerate with -update)", g.name)
		} else if got != w {
			t.Errorf("%s key changed:\n got %s\nwant %s\ncanonical encoding:\n%s\n"+
				"(intentional? bump keyVersion and regenerate with -update)",
				g.name, got, w, Canonical(g.rs))
		}
	}
}

// TestKeyStableAcrossInstances checks that independently resolved specs
// produce identical keys (content addressing, not pointer identity).
func TestKeyStableAcrossInstances(t *testing.T) {
	mk := func() spec.RunSpec {
		return spec.RunSpec{
			Benchmark: "tealeaf", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterA"), Ranks: 18, ClockHz: 1.6e9,
		}
	}
	if Key(mk()) != Key(mk()) {
		t.Error("identical jobs from independent cluster instances have distinct keys")
	}
}

// leafPaths walks a struct type and returns the field-index chains of
// every exported scalar leaf, following pointers.
func leafPaths(t reflect.Type, prefix []int, name string, add func(path []int, name string)) {
	switch t.Kind() {
	case reflect.Pointer:
		leafPaths(t.Elem(), prefix, name, add)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			leafPaths(f.Type, append(append([]int(nil), prefix...), i), name+"."+f.Name, add)
		}
	default:
		add(prefix, name)
	}
}

// field navigates a value along a leaf path, dereferencing pointers.
func field(v reflect.Value, path []int) reflect.Value {
	for _, i := range path {
		for v.Kind() == reflect.Pointer {
			v = v.Elem()
		}
		v = v.Field(i)
	}
	return v
}

// keyExempt lists the RunSpec fields that deliberately do NOT enter the
// job key: pure execution-strategy knobs whose results are byte-identical
// at every setting. For these the test asserts the inverse invariant —
// perturbing them must NOT change the key — so a serial warm cache keeps
// hitting when the scheduler later grants intra-job parallelism (and
// vice versa). Adding a field here requires the same byte-identity
// guarantee SimWorkers has (pinned by the parity goldens in
// internal/spec).
var keyExempt = map[string]bool{
	"RunSpec.SimWorkers":       true,
	"RunSpec.SimStaticWindows": true,
}

// TestKeyCoversEveryField perturbs every exported scalar field reachable
// from a RunSpec — including the full cluster, CPU, DVFS, and
// interconnect specs — and requires the canonical key to change. This is
// the guard against silently adding a simulation-relevant field that the
// canonical encoding forgets, which would alias distinct jobs in the
// persistent store. Fields in keyExempt are held to the opposite rule.
func TestKeyCoversEveryField(t *testing.T) {
	base := func() spec.RunSpec {
		return spec.RunSpec{
			Benchmark: "lbm", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterA"), Ranks: 4,
			ClockHz: 1.2e9, Net: netsim.HDR100(),
		}
	}
	k0 := Key(base())

	var paths [][]int
	var names []string
	leafPaths(reflect.TypeOf(spec.RunSpec{}), nil, "RunSpec", func(p []int, n string) {
		paths = append(paths, p)
		names = append(names, n)
	})
	if len(paths) < 40 {
		t.Fatalf("walked only %d leaf fields; reflection walk broken?", len(paths))
	}
	for i, p := range paths {
		rs := base()
		v := field(reflect.ValueOf(&rs).Elem(), p)
		switch v.Kind() {
		case reflect.String:
			v.SetString(v.String() + "~")
		case reflect.Bool:
			v.SetBool(!v.Bool())
		case reflect.Float64:
			// Doubling (plus one, so zero moves too) keeps clock values on
			// a changed ladder point even under DVFS quantization.
			v.SetFloat(v.Float()*2 + 1)
		case reflect.Int:
			v.SetInt(v.Int()*2 + 1)
		default:
			t.Errorf("%s: unhandled field kind %v — teach the key test (and Canonical) about it",
				names[i], v.Kind())
			continue
		}
		if keyExempt[names[i]] {
			if Key(rs) != k0 {
				t.Errorf("%s is declared execution-only but changes the job key — it would split the cache by worker count", names[i])
			}
			continue
		}
		if Key(rs) == k0 {
			t.Errorf("%s does not affect the job key — Canonical is missing a field", names[i])
		}
	}
}

// TestKeyDoesNotClampInvalidClocks checks that clock overrides outside
// the DVFS range — which spec.Run rejects — never share a key with the
// legitimate ladder-endpoint job: the invalid job must memoize its own
// error, and the valid endpoint job must never be served that error.
func TestKeyDoesNotClampInvalidClocks(t *testing.T) {
	valid, invalid := counterJob(1), counterJob(1)
	valid.ClockHz = valid.Cluster.CPU.DVFS.MinHz
	invalid.ClockHz = valid.Cluster.CPU.DVFS.MinHz / 2
	if Key(valid) == Key(invalid) {
		t.Fatal("out-of-range clock clamped onto the ladder endpoint key")
	}
	e := New(1)
	outs := e.Run([]spec.RunSpec{invalid, valid})
	if outs[0].Err == nil {
		t.Error("out-of-range clock job did not fail")
	}
	if outs[1].Err != nil {
		t.Errorf("endpoint-clock job inherited the invalid job's error: %v", outs[1].Err)
	}
}

// TestJobDescReportsOverrides checks error identities carry the failing
// job's own cluster and clock, not a sibling's.
func TestJobDescReportsOverrides(t *testing.T) {
	rs := spec.RunSpec{
		Benchmark: "pot3d", Class: bench.Small,
		Cluster: machine.MustGet("ClusterB"), Ranks: 26, ClockHz: 1.6e9,
	}
	got := jobDesc(rs)
	for _, want := range []string{"pot3d", "small", "ClusterB", "1.6 GHz", "26 ranks"} {
		if !strings.Contains(got, want) {
			t.Errorf("jobDesc %q missing %q", got, want)
		}
	}
	if got := jobDesc(spec.RunSpec{Benchmark: "lbm", Ranks: 1}); !strings.Contains(got, "<nil cluster>") {
		t.Errorf("jobDesc without cluster = %q", got)
	}
}
