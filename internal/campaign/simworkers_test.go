package campaign

import (
	"context"
	"sync"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// TestWithSimWorkersEligibility pins which jobs a worker grant may touch:
// multi-node jobs on fabrics with a positive latency floor that did not
// pin their own worker count — and nothing else.
func TestWithSimWorkersEligibility(t *testing.T) {
	zeroLat := netsim.HDR100()
	zeroLat.InterNodeLatency = 0
	pinned := counterJob(100)
	pinned.SimWorkers = 2
	cases := []struct {
		name  string
		rs    spec.RunSpec
		grant int
		want  int
	}{
		{"multi-node granted", counterJob(100), 8, 8},
		{"single node ineligible", counterJob(72), 8, 0},
		{"grant of one is a no-op", counterJob(100), 1, 0},
		{"disabled grant", counterJob(100), 0, 0},
		{"pinned worker count kept", pinned, 8, 2},
		{"nil cluster ineligible", spec.RunSpec{Benchmark: "campaign-counter", Ranks: 100}, 8, 0},
	}
	for _, c := range cases {
		if got := withSimWorkers(c.rs, c.grant).SimWorkers; got != c.want {
			t.Errorf("%s: SimWorkers = %d, want %d", c.name, got, c.want)
		}
	}
	zl := counterJob(100)
	zl.Net = zeroLat
	if got := withSimWorkers(zl, 8).SimWorkers; got != 0 {
		t.Errorf("zero-latency fabric granted %d workers; the partitioned engine cannot run it", got)
	}
}

// TestSchedulerGrantPolicy drives the scheduler with an intercepting
// runner and checks the grant policy end to end: an otherwise-idle pool
// donates its full worker budget to a lone multi-node job, a forced
// setting overrides the budget, and -1 switches grants off. Single-node
// jobs are never granted workers whatever the policy.
func TestSchedulerGrantPolicy(t *testing.T) {
	run := func(setting int, rs spec.RunSpec) int {
		s := NewScheduler(4, nil)
		s.SetSimWorkers(setting)
		var mu sync.Mutex
		seen := -1
		s.SetRunner(func(rs spec.RunSpec) (spec.RunResult, error) {
			mu.Lock()
			seen = rs.SimWorkers
			mu.Unlock()
			return spec.Run(rs)
		})
		defer s.Close()
		if out := s.Submit(context.Background(), rs).Wait(context.Background()); out.Err != nil {
			t.Fatalf("setting %d: %v", setting, out.Err)
		}
		mu.Lock()
		defer mu.Unlock()
		return seen
	}
	multi := counterJob(100) // two ClusterA nodes
	if got := run(0, multi); got != 4 {
		t.Errorf("idle auto grant gave %d workers, want the pool budget 4", got)
	}
	if got := run(2, multi); got != 2 {
		t.Errorf("forced setting gave %d workers, want 2", got)
	}
	if got := run(-1, multi); got != 0 {
		t.Errorf("disabled grants still gave %d workers", got)
	}
	if got := run(0, counterJob(4)); got != 0 {
		t.Errorf("single-node job granted %d workers", got)
	}
}

// TestSchedulerStaticWindows checks SetStaticWindows rides along with
// worker grants — granted jobs run with static windows when set, and
// ungranted (serial) jobs never carry the flag.
func TestSchedulerStaticWindows(t *testing.T) {
	run := func(static bool, rs spec.RunSpec) (workers int, staticSeen bool) {
		s := NewScheduler(4, nil)
		s.SetSimWorkers(4)
		s.SetStaticWindows(static)
		var mu sync.Mutex
		s.SetRunner(func(rs spec.RunSpec) (spec.RunResult, error) {
			mu.Lock()
			workers, staticSeen = rs.SimWorkers, rs.SimStaticWindows
			mu.Unlock()
			return spec.Run(rs)
		})
		defer s.Close()
		if out := s.Submit(context.Background(), rs).Wait(context.Background()); out.Err != nil {
			t.Fatalf("static=%v: %v", static, out.Err)
		}
		mu.Lock()
		defer mu.Unlock()
		return workers, staticSeen
	}
	if w, st := run(true, counterJob(100)); w != 4 || !st {
		t.Errorf("granted job ran workers=%d static=%v, want 4/true", w, st)
	}
	if _, st := run(false, counterJob(100)); st {
		t.Error("adaptive scheduler pinned static windows")
	}
	if w, st := run(true, counterJob(4)); w != 0 || st {
		t.Errorf("single-node job ran workers=%d static=%v; the flag must ride worker grants only", w, st)
	}
}

// TestGrantedJobSharesSerialKey confirms a granted execution memoizes
// under the job's serial identity: a follow-up serial submission of the
// same spec must hit the memo, not re-simulate.
func TestGrantedJobSharesSerialKey(t *testing.T) {
	s := NewScheduler(4, nil)
	s.SetSimWorkers(4)
	defer s.Close()
	before := simCount.Load()
	rs := counterJob(100)
	if out := s.Submit(context.Background(), rs).Wait(context.Background()); out.Err != nil {
		t.Fatal(out.Err)
	}
	ran := simCount.Load() - before
	if ran != 100 {
		t.Fatalf("first run simulated %d rank bodies, want 100", ran)
	}
	if out := s.Submit(context.Background(), rs).Wait(context.Background()); out.Err != nil {
		t.Fatal(out.Err)
	}
	if again := simCount.Load() - before; again != ran {
		t.Errorf("resubmission re-simulated (%d total rank bodies, want %d): granted run missed the memo", again, ran)
	}
}
