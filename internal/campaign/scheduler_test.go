package campaign

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// Gate coordination for the scheduler tests. The sched-block kernel
// blocks its rank body on schedGate, so tests can pin a job in the
// Running state (occupying a worker) while they probe queue behaviour;
// sched-order records the SimSteps tag of each execution, exposing the
// order the queue released jobs in.
var (
	schedGate    chan struct{}
	schedStarted atomic.Int64

	schedOrderMu sync.Mutex
	schedOrder   []int
)

func init() {
	bench.Register(&bench.Benchmark{
		ID:   92,
		Name: "sched-block",
		Run: func(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
			schedStarted.Add(1)
			<-schedGate
			r.Compute(machine.Phase{Name: "blocked", FlopsSIMD: 1e6, BytesMem: 1e4})
			rep := bench.RunReport{StepsModeled: 1, StepsSimulated: 1}
			if r.ID() == 0 {
				rep.Checks = []bench.Check{{Name: "synthetic", Value: 0, OK: true}}
			}
			return rep, nil
		},
	})
	bench.Register(&bench.Benchmark{
		ID:   93,
		Name: "sched-order",
		Run: func(r *mpi.Rank, c bench.Class, o bench.Options) (bench.RunReport, error) {
			schedOrderMu.Lock()
			schedOrder = append(schedOrder, o.SimSteps)
			schedOrderMu.Unlock()
			r.Compute(machine.Phase{Name: "ordered", FlopsSIMD: 1e6, BytesMem: 1e4})
			rep := bench.RunReport{StepsModeled: 1, StepsSimulated: 1}
			if r.ID() == 0 {
				rep.Checks = []bench.Check{{Name: "synthetic", Value: 0, OK: true}}
			}
			return rep, nil
		},
	})
}

// blockJob is a sched-block job; the tag keeps keys distinct.
func blockJob(tag int) spec.RunSpec {
	return spec.RunSpec{
		Benchmark: "sched-block", Class: bench.Tiny,
		Cluster: machine.MustGet("ClusterA"), Ranks: 1,
		Options: bench.Options{SimSteps: tag},
	}
}

// waitStarted blocks until n sched-block executions have begun.
func waitStarted(t *testing.T, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for schedStarted.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("gated jobs never started (%d of %d)", schedStarted.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrossRequestCoalescing is the acceptance test of the asynchronous
// scheduler: two concurrent submissions of an identical job — as if from
// two HTTP requests — perform exactly one simulation, both waiters
// receive the same result, and Stats shows one miss plus one coalesced
// hit.
func TestCrossRequestCoalescing(t *testing.T) {
	schedGate = make(chan struct{})
	schedStarted.Store(0)
	s := NewScheduler(2, nil)
	defer s.Close()

	job := blockJob(1)
	t1 := s.Submit(context.Background(), job)
	waitStarted(t, 1) // first submission is mid-simulation
	t2 := s.Submit(context.Background(), job)

	if st := s.Stats(); st.Coalesced != 1 {
		t.Fatalf("stats before release = %+v, want exactly one coalesced hit", st)
	}
	close(schedGate)
	o1 := t1.Wait(context.Background())
	o2 := t2.Wait(context.Background())
	if o1.Err != nil || o2.Err != nil {
		t.Fatalf("coalesced jobs failed: %v / %v", o1.Err, o2.Err)
	}
	if !reflect.DeepEqual(o1.Result.Usage, o2.Result.Usage) {
		t.Error("coalesced submissions returned different results")
	}
	if got := schedStarted.Load(); got != 1 {
		t.Errorf("%d simulations ran, want exactly 1", got)
	}
	st := s.Stats()
	if st.Jobs != 2 || st.Misses != 1 || st.Hits != 1 || st.Coalesced != 1 {
		t.Errorf("stats = %+v, want {Jobs:2 Misses:1 Hits:1 Coalesced:1}", st)
	}
}

// TestCancelQueuedJob pins a 1-worker scheduler with a gated job, queues
// a second job behind it, and cancels the second submission's context:
// the waiter must unblock with the context error, the job must be
// dropped without ever simulating, and a later resubmission must run it
// fresh.
func TestCancelQueuedJob(t *testing.T) {
	schedGate = make(chan struct{})
	schedStarted.Store(0)
	s := NewScheduler(1, nil)
	defer s.Close()

	front := s.Submit(context.Background(), blockJob(1))
	waitStarted(t, 1) // the only worker is pinned inside job 1

	ctx, cancel := context.WithCancel(context.Background())
	queued := s.Submit(ctx, blockJob(2))
	if got := queued.State(); got != Queued {
		t.Fatalf("second job state = %v, want Queued behind the pinned worker", got)
	}
	cancel()
	out := queued.Wait(context.Background())
	if !errors.Is(out.Err, ErrCancelled) && !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("cancelled job resolved with %v, want a cancellation error", out.Err)
	}
	if got := queued.State(); got != Cancelled {
		t.Errorf("cancelled job state = %v, want Cancelled", got)
	}
	if st := s.Stats(); st.Cancelled != 1 {
		t.Errorf("stats = %+v, want Cancelled:1", st)
	}

	close(schedGate)
	if o := front.Wait(context.Background()); o.Err != nil {
		t.Fatalf("front job failed: %v", o.Err)
	}
	// The dropped job left no memo entry: resubmitting simulates fresh.
	before := schedStarted.Load()
	if o := s.Submit(context.Background(), blockJob(2)).Wait(context.Background()); o.Err != nil {
		t.Fatalf("resubmitted job failed: %v", o.Err)
	}
	if schedStarted.Load() != before+1 {
		t.Error("resubmitted job did not simulate fresh after cancellation")
	}
}

// TestCancelOneOfTwoWaiters cancels one of two coalesced submissions of
// a queued job: the job must survive and deliver to the remaining
// waiter.
func TestCancelOneOfTwoWaiters(t *testing.T) {
	schedGate = make(chan struct{})
	schedStarted.Store(0)
	s := NewScheduler(1, nil)
	defer s.Close()

	front := s.Submit(context.Background(), blockJob(1))
	waitStarted(t, 1)

	ctx, cancel := context.WithCancel(context.Background())
	first := s.Submit(ctx, blockJob(2))
	second := s.Submit(context.Background(), blockJob(2))
	cancel()
	// The released claim must not drop the job while `second` still
	// wants it: refs fall 2 -> 1, whenever the ctx watcher runs.
	_ = first
	close(schedGate)
	if o := front.Wait(context.Background()); o.Err != nil {
		t.Fatalf("front job failed: %v", o.Err)
	}
	if o := second.Wait(context.Background()); o.Err != nil {
		t.Fatalf("surviving waiter failed: %v", o.Err)
	}
	if st := s.Stats(); st.Cancelled != 0 {
		t.Errorf("stats = %+v, want no cancelled jobs (one claim remained)", st)
	}
}

// TestPriorityOrdersQueue pins the single worker, queues two default-
// priority jobs and one high-priority job, and checks the high-priority
// job runs first — with FIFO order preserved among equal priorities.
func TestPriorityOrdersQueue(t *testing.T) {
	schedGate = make(chan struct{})
	schedStarted.Store(0)
	schedOrderMu.Lock()
	schedOrder = nil
	schedOrderMu.Unlock()
	s := NewScheduler(1, nil)
	defer s.Close()

	orderJob := func(tag int) spec.RunSpec {
		return spec.RunSpec{
			Benchmark: "sched-order", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterA"), Ranks: 1,
			Options: bench.Options{SimSteps: tag},
		}
	}
	front := s.Submit(context.Background(), blockJob(1))
	waitStarted(t, 1)

	tickets := []*Ticket{
		s.Submit(context.Background(), orderJob(10)),
		s.Submit(context.Background(), orderJob(11)),
		s.SubmitPriority(context.Background(), orderJob(99), 5),
	}
	close(schedGate)
	for _, tk := range tickets {
		if o := tk.Wait(context.Background()); o.Err != nil {
			t.Fatalf("job failed: %v", o.Err)
		}
	}
	if o := front.Wait(context.Background()); o.Err != nil {
		t.Fatalf("front job failed: %v", o.Err)
	}
	schedOrderMu.Lock()
	got := append([]int(nil), schedOrder...)
	schedOrderMu.Unlock()
	want := []int{99, 10, 11}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("execution order = %v, want %v (priority first, then FIFO)", got, want)
	}
}

// TestCloseDropsQueuedUnblocksWaiters closes a scheduler with one job
// running and one queued: the queued waiter unblocks with ErrClosed, the
// running job completes and delivers, and submissions after Close are
// rejected without deadlocking.
func TestCloseDropsQueuedUnblocksWaiters(t *testing.T) {
	schedGate = make(chan struct{})
	schedStarted.Store(0)
	s := NewScheduler(1, nil)

	front := s.Submit(context.Background(), blockJob(1))
	waitStarted(t, 1)
	queued := s.Submit(context.Background(), blockJob(2))

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	// The queued job resolves immediately, while the gate still blocks
	// the running one.
	if o := queued.Wait(context.Background()); !errors.Is(o.Err, ErrClosed) {
		t.Fatalf("queued job resolved with %v, want ErrClosed", o.Err)
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a simulation was still running")
	default:
	}
	close(schedGate)
	<-closed
	if o := front.Wait(context.Background()); o.Err != nil {
		t.Errorf("running job lost by shutdown: %v", o.Err)
	}
	if o := s.Submit(context.Background(), blockJob(3)).Wait(context.Background()); !errors.Is(o.Err, ErrClosed) {
		t.Errorf("post-Close submission resolved with %v, want ErrClosed", o.Err)
	}
}

// TestMemoBoundEvictsToStore pins the daemon memory bound: a
// store-backed scheduler holds at most LimitMemo completed entries in
// process, and an evicted job's resubmission is served from the store
// (a StoreHit), never re-simulated.
func TestMemoBoundEvictsToStore(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(2, st)
	s.LimitMemo(2)
	defer s.Close()

	jobs := []spec.RunSpec{counterJob(1), counterJob(2), counterJob(3), counterJob(4)}
	for _, rs := range jobs {
		if o := s.Submit(context.Background(), rs).Wait(context.Background()); o.Err != nil {
			t.Fatal(o.Err)
		}
	}
	s.mu.Lock()
	cached := len(s.cache)
	s.mu.Unlock()
	if cached > 2 {
		t.Errorf("memo holds %d entries, want <= 2 (LimitMemo)", cached)
	}

	// Resubmitting an evicted job costs a store read, not a simulation.
	before := s.Stats()
	if o := s.Submit(context.Background(), jobs[0]).Wait(context.Background()); o.Err != nil {
		t.Fatal(o.Err)
	}
	after := s.Stats()
	if after.Misses != before.Misses {
		t.Errorf("evicted job re-simulated (misses %d -> %d), want a store hit", before.Misses, after.Misses)
	}
	if after.StoreHits != before.StoreHits+1 {
		t.Errorf("store hits %d -> %d, want +1 for the evicted job", before.StoreHits, after.StoreHits)
	}
}

// TestCloseDuringSubmitCancelStorm races Scheduler.Close against a
// storm of concurrent Submit/Cancel calls. The contract under -race:
// every ticket resolves (its Done channel closes — no leaked waiter, no
// deadlock), Close returns, and submissions that land after the close
// resolve promptly with ErrClosed instead of hanging on a queue nobody
// drains. Jobs use the real counter kernel so tickets can resolve any
// of the four ways (result, coalesced hit, cancelled, closed).
func TestCloseDuringSubmitCancelStorm(t *testing.T) {
	s := NewScheduler(2, nil)
	const goroutines = 8
	const submitsPer = 30

	jobs := make([]spec.RunSpec, 4)
	for i := range jobs {
		jobs[i] = spec.RunSpec{
			Benchmark: "campaign-counter", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterA"), Ranks: 1,
			Options: bench.Options{SimSteps: 1 + i},
		}
	}

	var mu sync.Mutex
	var tickets []*Ticket
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			<-start
			for i := 0; i < submitsPer; i++ {
				tk := s.SubmitPriority(context.Background(), jobs[r.Intn(len(jobs))], r.Intn(3))
				if r.Intn(2) == 0 {
					tk.Cancel()
				}
				mu.Lock()
				tickets = append(tickets, tk)
				mu.Unlock()
			}
		}(int64(g) + 1)
	}
	closed := make(chan struct{})
	go func() {
		<-start
		s.Close() // races the storm: some submissions land before, some after
		close(closed)
	}()
	close(start)
	wg.Wait()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked against the Submit/Cancel storm")
	}

	deadline := time.After(30 * time.Second)
	for i, tk := range tickets {
		select {
		case <-tk.Done():
		case <-deadline:
			t.Fatalf("ticket %d leaked: still unresolved after Close (state %v)", i, tk.State())
		}
		o, ok := tk.Outcome()
		if !ok {
			t.Fatalf("ticket %d: Done closed without an outcome", i)
		}
		if o.Err != nil && !errors.Is(o.Err, ErrCancelled) && !errors.Is(o.Err, ErrClosed) {
			t.Errorf("ticket %d resolved with unexpected error %v", i, o.Err)
		}
	}
	// The scheduler stays rejecting — and non-blocking — after the storm.
	if o := s.Submit(context.Background(), jobs[0]).Wait(context.Background()); !errors.Is(o.Err, ErrClosed) {
		t.Errorf("post-storm submission resolved with %v, want ErrClosed", o.Err)
	}
}

// TestSetRunnerRoutesExecution checks SetRunner redirects job execution
// away from spec.Run — the seam the fleet coordinator uses to dispatch
// jobs to remote workers — while coalescing and memoization still apply
// in front of it: one runner call per unique key, and the runner's
// result (not a local simulation) is what waiters receive.
func TestSetRunnerRoutesExecution(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()

	var calls atomic.Int64
	s.SetRunner(func(rs spec.RunSpec) (spec.RunResult, error) {
		calls.Add(1)
		return spec.RunResult{
			Spec:   rs,
			Report: bench.RunReport{StepsModeled: 7, StepsSimulated: 7},
			Trace:  trace.FromSums(make([][]float64, rs.Ranks)),
		}, nil
	})

	job := blockJob(401) // sched-block would hang if spec.Run were used
	t1 := s.Submit(context.Background(), job)
	t2 := s.Submit(context.Background(), job)
	o1, o2 := t1.Wait(context.Background()), t2.Wait(context.Background())
	if o1.Err != nil || o2.Err != nil {
		t.Fatalf("runner-backed jobs failed: %v / %v", o1.Err, o2.Err)
	}
	if o1.Result.Report.StepsModeled != 7 {
		t.Errorf("waiter got StepsModeled=%d, want the runner's synthetic 7", o1.Result.Report.StepsModeled)
	}
	if o := s.Submit(context.Background(), blockJob(402)).Wait(context.Background()); o.Err != nil {
		t.Fatalf("second unique job failed: %v", o.Err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("runner called %d times, want 2 (one per unique key; duplicates coalesce)", got)
	}
}

// TestSchedulerStress hammers one scheduler from many goroutines —
// submitting a small key space of real jobs, waiting with sometimes-
// cancelled contexts, polling states — then shuts it down. Run under
// -race in CI, this pins the thread-safety of the queue, the coalescing
// map, and the resolve-once discipline; every ticket must resolve
// (result, job error, cancellation, or shutdown), never hang.
func TestSchedulerStress(t *testing.T) {
	s := NewScheduler(4, nil)
	rng := rand.New(rand.NewSource(1))
	const goroutines = 8
	const submitsPer = 40

	jobs := make([]spec.RunSpec, 6)
	for i := range jobs {
		jobs[i] = spec.RunSpec{
			Benchmark: "campaign-counter", Class: bench.Tiny,
			Cluster: machine.MustGet("ClusterA"), Ranks: 1 + i%3,
			Options: bench.Options{SimSteps: 1 + i},
		}
	}
	seeds := make([]int64, goroutines)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < submitsPer; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				tk := s.SubmitPriority(ctx, jobs[r.Intn(len(jobs))], r.Intn(3))
				switch r.Intn(4) {
				case 0: // abandon immediately
					cancel()
					tk.Wait(context.Background())
				case 1: // poll, then wait
					tk.State()
					tk.Outcome()
					tk.Wait(context.Background())
					cancel()
				default:
					o := tk.Wait(ctx)
					cancel()
					if o.Err != nil && !errors.Is(o.Err, ErrCancelled) &&
						!errors.Is(o.Err, context.Canceled) && !errors.Is(o.Err, ErrClosed) {
						t.Errorf("unexpected job error: %v", o.Err)
					}
				}
			}
		}(seeds[g])
	}
	wg.Wait()
	s.Close()

	st := s.Stats()
	if st.Jobs != goroutines*submitsPer {
		t.Errorf("accounted %d submissions, want %d", st.Jobs, goroutines*submitsPer)
	}
	if st.Hits+st.Misses+st.Cancelled+st.Coalesced == 0 {
		t.Error("stress run recorded no cache activity at all")
	}
}
