package campaign

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/spec"
)

// fakePredictor scripts the surrogate's answer per call: each Predict
// pops the next canned response. It also implements Observer, recording
// every exact result the scheduler feeds back.
type fakePredictor struct {
	mu       sync.Mutex
	answers  []fakeAnswer
	calls    int
	observed []spec.RunResult
}

type fakeAnswer struct {
	pred Predicted
	err  error
}

func (p *fakePredictor) Predict(rs spec.RunSpec) (Predicted, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if len(p.answers) == 0 {
		return Predicted{}, ErrNoModel
	}
	a := p.answers[0]
	p.answers = p.answers[1:]
	return a.pred, a.err
}

func (p *fakePredictor) Observe(res spec.RunResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observed = append(p.observed, res)
}

func (p *fakePredictor) callCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

func (p *fakePredictor) observedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.observed)
}

// fakePrediction builds a plausible Predicted for a spec.
func fakePrediction(rs spec.RunSpec, wall float64) Predicted {
	res := spec.RunResult{Spec: rs}
	res.Usage.Ranks = rs.Ranks
	res.Usage.Wall = wall
	return Predicted{Result: res, Bound: 0.05}
}

// TestSubmitModeFastHit is the fast path's acceptance test: with a
// predictor attached, a Fast submission resolves instantly from the
// model — no simulation, ticket already Done, prediction and bound on
// the ticket, SurrogateHits counted.
func TestSubmitModeFastHit(t *testing.T) {
	simCount.Store(0)
	s := NewScheduler(2, nil)
	defer s.Close()
	job := counterJob(3)
	p := &fakePredictor{answers: []fakeAnswer{{pred: fakePrediction(job, 1.25)}}}
	s.SetPredictor(p)

	tk := s.SubmitMode(context.Background(), job, 0, Fast)
	select {
	case <-tk.Done():
	default:
		t.Fatal("fast-hit ticket not already resolved")
	}
	out, ok := tk.Outcome()
	if !ok || out.Err != nil {
		t.Fatalf("fast-hit outcome: ok=%v err=%v", ok, out.Err)
	}
	if out.Result.Usage.Wall != 1.25 {
		t.Errorf("predicted wall = %v, want 1.25", out.Result.Usage.Wall)
	}
	if bound, sur := tk.Surrogate(); !sur || bound != 0.05 {
		t.Errorf("Surrogate() = (%v, %v), want (0.05, true)", bound, sur)
	}
	if n := simCount.Load(); n != 0 {
		t.Errorf("fast hit ran %d simulated ranks, want 0", n)
	}
	st := s.Stats()
	if st.SurrogateHits != 1 || st.Misses != 0 || st.Jobs != 1 {
		t.Errorf("stats = %+v, want SurrogateHits=1 Misses=0 Jobs=1", st)
	}
}

// TestSubmitModeFallbacks covers both fallback classes: ErrNoModel
// counts a surrogate miss, any other predictor error counts a refusal,
// and both fall back to a real simulation whose result is fed back to
// the observer.
func TestSubmitModeFallbacks(t *testing.T) {
	cases := []struct {
		name    string
		err     error
		missed  int
		refused int
	}{
		{"no-model", ErrNoModel, 1, 0},
		{"refused", errorsJoin(ErrRefused, "ranks=999 outside fitted hull"), 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewScheduler(2, nil)
			defer s.Close()
			p := &fakePredictor{answers: []fakeAnswer{{err: tc.err}}}
			s.SetPredictor(p)

			tk := s.SubmitMode(context.Background(), counterJob(2), 0, Fast)
			out := tk.Wait(context.Background())
			if out.Err != nil {
				t.Fatalf("fallback simulation failed: %v", out.Err)
			}
			if _, sur := tk.Surrogate(); sur {
				t.Error("fallback ticket claims a surrogate answer")
			}
			st := s.Stats()
			if st.SurrogateMisses != tc.missed || st.SurrogateRefused != tc.refused || st.Misses != 1 {
				t.Errorf("stats = %+v, want SurrogateMisses=%d SurrogateRefused=%d Misses=1",
					st, tc.missed, tc.refused)
			}
			if n := p.observedCount(); n != 1 {
				t.Errorf("observer saw %d results, want 1 (fallback must feed the model)", n)
			}
		})
	}
}

// errorsJoin wraps a sentinel with context the way the surrogate does.
func errorsJoin(sentinel error, msg string) error {
	return &wrappedErr{sentinel: sentinel, msg: msg}
}

type wrappedErr struct {
	sentinel error
	msg      string
}

func (e *wrappedErr) Error() string { return e.sentinel.Error() + ": " + e.msg }
func (e *wrappedErr) Unwrap() error { return e.sentinel }

// TestSubmitModeExactMemoBeatsSurrogate: once the exact result is
// memoized, a Fast submission serves it (a free exact answer) without
// consulting the predictor at all.
func TestSubmitModeExactMemoBeatsSurrogate(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()
	job := counterJob(2)
	s.Submit(context.Background(), job).Wait(context.Background())

	p := &fakePredictor{answers: []fakeAnswer{{pred: fakePrediction(job, 99)}}}
	s.SetPredictor(p)
	tk := s.SubmitMode(context.Background(), job, 0, Fast)
	out := tk.Wait(context.Background())
	if out.Err != nil {
		t.Fatalf("memo-served fast submission failed: %v", out.Err)
	}
	if out.Result.Usage.Wall == 99 {
		t.Error("fast submission returned the prediction over the memoized exact result")
	}
	if n := p.callCount(); n != 0 {
		t.Errorf("predictor consulted %d times despite exact memo hit, want 0", n)
	}
	if st := s.Stats(); st.Hits != 1 || st.SurrogateHits != 0 {
		t.Errorf("stats = %+v, want Hits=1 SurrogateHits=0", st)
	}
}

// TestSubmitModeNoMemoPollution: a surrogate answer must never shadow
// the exact identity — an Exact submission after a fast hit still
// simulates.
func TestSubmitModeNoMemoPollution(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()
	job := counterJob(4)
	p := &fakePredictor{answers: []fakeAnswer{{pred: fakePrediction(job, 1)}}}
	s.SetPredictor(p)

	if _, sur := s.SubmitMode(context.Background(), job, 0, Fast).Surrogate(); !sur {
		t.Fatal("setup: fast submission was not surrogate-answered")
	}
	out := s.Submit(context.Background(), job).Wait(context.Background())
	if out.Err != nil {
		t.Fatalf("exact submission failed: %v", out.Err)
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Errorf("exact submission after fast hit: Misses = %d, want 1 (prediction leaked into memo)", st.Misses)
	}
}

// TestSubmitModeKeepTraceBypassesSurrogate: trace-keeping jobs need the
// full event timeline, which no analytic model can produce.
func TestSubmitModeKeepTraceBypassesSurrogate(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()
	p := &fakePredictor{answers: []fakeAnswer{{pred: fakePrediction(counterJob(1), 1)}}}
	s.SetPredictor(p)

	job := counterJob(1)
	job.KeepTrace = true
	out := s.SubmitMode(context.Background(), job, 0, Fast).Wait(context.Background())
	if out.Err != nil {
		t.Fatalf("trace job failed: %v", out.Err)
	}
	if n := p.callCount(); n != 0 {
		t.Errorf("predictor consulted for a KeepTrace job (%d calls)", n)
	}
	if st := s.Stats(); st.Misses != 1 || st.SurrogateHits != 0 {
		t.Errorf("stats = %+v, want Misses=1 SurrogateHits=0", st)
	}
}

// TestEngineWithMode: a Fast-derived engine view routes whole batches
// through the surrogate while the original Exact view still simulates —
// both over one shared scheduler.
func TestEngineWithMode(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()
	e := NewWithScheduler(s)
	if e.Mode() != Exact {
		t.Fatalf("default engine mode = %v, want Exact", e.Mode())
	}
	fast := e.WithMode(Fast)
	if fast.Mode() != Fast || e.Mode() != Exact {
		t.Fatalf("WithMode mutated the base view: fast=%v base=%v", fast.Mode(), e.Mode())
	}
	if e.WithMode(Exact) != e {
		t.Error("WithMode(same) should return the receiver")
	}

	jobs := []spec.RunSpec{counterJob(1), counterJob(2)}
	p := &fakePredictor{answers: []fakeAnswer{
		{pred: fakePrediction(jobs[0], 1)},
		{pred: fakePrediction(jobs[1], 2)},
	}}
	s.SetPredictor(p)

	for i, o := range fast.Run(jobs) {
		if o.Err != nil {
			t.Fatalf("fast job %d: %v", i, o.Err)
		}
		if want := float64(i + 1); o.Result.Usage.Wall != want {
			t.Errorf("fast job %d wall = %v, want %v", i, o.Result.Usage.Wall, want)
		}
	}
	st := s.Stats()
	if st.SurrogateHits != 2 || st.Misses != 0 {
		t.Fatalf("fast batch stats = %+v, want SurrogateHits=2 Misses=0", st)
	}
	for i, o := range e.Run(jobs) {
		if o.Err != nil {
			t.Fatalf("exact job %d: %v", i, o.Err)
		}
	}
	if st := s.Stats(); st.Misses != 2 {
		t.Errorf("exact batch after fast batch: Misses = %d, want 2", st.Misses)
	}
}

// TestModeString pins the wire spellings the service accepts and
// reports.
func TestModeString(t *testing.T) {
	if Exact.String() != "exact" || Fast.String() != "fast" {
		t.Errorf("mode spellings = %q/%q, want exact/fast", Exact, Fast)
	}
}

// TestStatsStringSurrogateCounters: the surrogate counters appear in
// the stats line only when the fast tier was actually exercised, so
// warm_cache_check.sh's parser keeps seeing the historical line shape.
func TestStatsStringSurrogateCounters(t *testing.T) {
	plain := Stats{Jobs: 2, Misses: 2}.String()
	if want := "campaign: jobs=2 memo-hits=0 coalesced=0 store-hits=0 fresh-sims=2 store-faults=0 cancelled=0"; plain != want {
		t.Errorf("plain stats line = %q, want %q", plain, want)
	}
	withSur := Stats{Jobs: 2, SurrogateHits: 1, SurrogateMisses: 1}.String()
	if want := "campaign: jobs=2 memo-hits=0 coalesced=0 store-hits=0 fresh-sims=0 store-faults=0 cancelled=0 surrogate-hits=1 surrogate-misses=1 surrogate-refused=0"; withSur != want {
		t.Errorf("surrogate stats line = %q, want %q", withSur, want)
	}
}

// TestObserverFeedsFromStoreHits: results served from the persistent
// store (not just fresh simulations) reach the observer, so a warm
// store fits models without re-simulating anything.
func TestObserverFeedsFromStoreHits(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warm := NewScheduler(2, st)
	warm.Submit(context.Background(), counterJob(2)).Wait(context.Background())
	warm.Close()

	s := NewScheduler(2, st)
	defer s.Close()
	p := &fakePredictor{}
	s.SetPredictor(p)
	out := s.Submit(context.Background(), counterJob(2)).Wait(context.Background())
	if out.Err != nil {
		t.Fatalf("store-served job failed: %v", out.Err)
	}
	if stats := s.Stats(); stats.StoreHits != 1 {
		t.Fatalf("stats = %+v, want StoreHits=1", stats)
	}
	if n := p.observedCount(); n != 1 {
		t.Errorf("observer saw %d results from store hits, want 1", n)
	}
}

// TestErrRefusedIs: sentinel classification contract the surrogate
// package relies on.
func TestErrRefusedIs(t *testing.T) {
	if !errors.Is(errorsJoin(ErrRefused, "x"), ErrRefused) {
		t.Error("wrapped ErrRefused not matched by errors.Is")
	}
	if errors.Is(ErrRefused, ErrNoModel) {
		t.Error("ErrRefused matches ErrNoModel")
	}
}

var _ atomic.Int64 // keep import parity with sibling test files
