package campaign

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// Scheduler errors. ErrCancelled resolves jobs whose every interested
// submission released its ticket (or cancelled its submit context) while
// the job was still queued; ErrClosed resolves jobs dropped by Close and
// tickets returned by Submit after Close.
var (
	ErrCancelled = errors.New("campaign: job cancelled before it started")
	ErrClosed    = errors.New("campaign: scheduler closed")
)

// Predictor errors: a Predict call that cannot answer returns an error
// wrapping one of these, so the scheduler can count why a fast-mode
// submission fell back to the simulator. ErrNoModel means no model is
// fitted for the job's family (benchmark x cluster x class x options);
// ErrRefused means a model exists but declined — the query extrapolates
// outside the fitted hull or the model's self-reported error bound
// exceeds its tolerance.
var (
	ErrNoModel = errors.New("campaign: no surrogate model for job family")
	ErrRefused = errors.New("campaign: surrogate refused the query")
)

// Mode selects how a submission may be answered. Exact always resolves
// through the discrete-event engine (memo, store, or fresh simulation);
// Fast may be answered instantly by an attached analytic surrogate
// within its self-reported error bound, falling back to the exact path
// whenever the surrogate has no model, the query extrapolates outside
// the fitted hull, or the bound is too loose.
type Mode int

// Submission modes.
const (
	Exact Mode = iota
	Fast
)

// String renders the mode in the wire form the service accepts.
func (m Mode) String() string {
	switch m {
	case Exact:
		return "exact"
	case Fast:
		return "fast"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Predicted is a surrogate answer to one job: a synthesized result plus
// the model's self-reported relative error bound on its wall/energy/EDP
// predictions.
type Predicted struct {
	Result spec.RunResult
	// Bound is the relative error bound (0.02 = +-2%) the model claims
	// for the prediction; internal/surrogate/validate asserts it covers
	// held-out points.
	Bound float64
}

// Predictor is the analytic fast-path hook the scheduler consults before
// queueing a Fast-mode simulation (internal/surrogate implements it). A
// failed Predict must wrap ErrNoModel or ErrRefused; implementations
// must be safe for concurrent use.
type Predictor interface {
	Predict(rs spec.RunSpec) (Predicted, error)
}

// Observer is the feedback half of a predictor: the scheduler reports
// every exact result it resolves (fresh simulations and store hits
// alike), so fallback simulations continuously refine the model.
type Observer interface {
	Observe(res spec.RunResult)
}

// Runner executes one resolved job. The default runner is spec.Run —
// simulate in process — but a coordinator replaces it with a dispatcher
// that ships the job to a fleet worker over HTTP (internal/fleet), so
// the whole scheduler pipeline (priority queue, coalescing, memo, store
// write-through) is reused unchanged for distributed execution. A
// Runner must be safe for concurrent use: up to Workers() calls run at
// once.
type Runner func(rs spec.RunSpec) (spec.RunResult, error)

// JobState is the lifecycle position of a scheduled job.
type JobState int

// Job lifecycle: a submitted job waits in the priority queue (Queued),
// executes on a worker (Running), and resolves exactly once — Done with a
// result or error, or Cancelled without ever starting. Running jobs are
// never interrupted: a simulation, once started, always completes and
// memoizes.
const (
	Queued JobState = iota
	Running
	Done
	Cancelled
)

// String renders the state for status endpoints and logs.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// schedJob is the shared in-flight record of one unique job key: every
// submission of an identical spec — from any goroutine, batch, or HTTP
// request — attaches to the same schedJob, so the simulation runs once
// and its outcome fans out to all waiters. Fields before done are
// guarded by the scheduler mutex; res/err are written exactly once
// before done closes and read only after.
type schedJob struct {
	key string
	rs  spec.RunSpec
	// pri/seq order the queue: higher priority first, FIFO within a
	// priority level. index is the heap slot (-1 once dequeued).
	pri   int
	seq   uint64
	index int
	// refs counts submissions still interested in the outcome; a queued
	// job whose refs drop to zero is removed and resolved as Cancelled.
	refs  int
	state JobState

	// surrogate marks a job answered by the analytic fast path instead of
	// the engine; bound is the model's self-reported relative error bound.
	// Surrogate jobs resolve at submission and never enter the memo, so an
	// exact query for the same identity still simulates.
	surrogate bool
	bound     float64

	done chan struct{}
	res  spec.RunResult
	err  error
}

// jobQueue is the scheduler's priority queue: a max-heap on (pri, -seq),
// i.e. highest priority first and submission order within a priority.
type jobQueue []*schedJob

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].pri != q[j].pri {
		return q[i].pri > q[j].pri
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *jobQueue) Push(x any) {
	j := x.(*schedJob)
	j.index = len(*q)
	*q = append(*q, j)
}
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*q = old[:n-1]
	return j
}

// Scheduler is the long-lived asynchronous campaign executor: Submit
// enqueues one job and returns a Ticket immediately; a pool of at most
// Workers() on-demand worker goroutines drains the priority queue;
// identical jobs submitted by different callers coalesce onto one
// simulation; completed outcomes stay memoized for the scheduler's
// lifetime (and, with a Store attached, across processes). A Scheduler
// is safe for concurrent use from any number of goroutines.
//
// The synchronous Engine API (Run, Sweep, SweepAll, FrequencySweep) is a
// thin adapter over a Scheduler — CLIs and tests use it unchanged, while
// the HTTP service (internal/service) drives the Scheduler directly.
type Scheduler struct {
	workers int
	store   Store

	// predictor/observer form the analytic fast path (SetPredictor):
	// consulted on Fast submissions, fed every exact result. Set before
	// serving traffic; read without further synchronization.
	predictor Predictor
	observer  Observer

	// runner resolves jobs that miss the memo and store (SetRunner); nil
	// means spec.Run. Set before serving traffic.
	runner Runner

	// simWorkers controls intra-job parallelism grants (SetSimWorkers):
	// 0 grants automatically when the campaign cannot keep the pool busy,
	// -1 never grants, n > 0 forces n workers onto every eligible job.
	simWorkers int

	// staticWindows pins granted partitioned jobs to static latency-floor
	// windows (SetStaticWindows); wall-clock strategy only, results and
	// job keys are unaffected.
	staticWindows bool

	mu      sync.Mutex
	cache   map[string]*schedJob // every key ever submitted (minus cancelled/evicted)
	queue   jobQueue
	seq     uint64
	spawned int // live worker goroutines
	active  int // jobs currently executing
	closed  bool
	stats   Stats
	// memoCap bounds the in-process memo when a persistent store backs
	// the scheduler (0 = unbounded): completed store-backed entries
	// beyond the cap are evicted oldest-first, in doneOrder, and served
	// from the store on resubmission. Keeps a long-lived daemon's memory
	// bounded however many unique jobs flow through it.
	memoCap   int
	doneOrder []string

	wg sync.WaitGroup // tracks worker goroutines for Close
}

// NewScheduler returns a scheduler running at most workers simulations
// at once (workers <= 0 selects the host core count) with an optional
// persistent store (nil = in-process memo only). Workers are spawned on
// demand and exit when the queue drains, so an idle scheduler holds no
// goroutines.
func NewScheduler(workers int, store Store) *Scheduler {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	s := &Scheduler{
		workers: workers,
		store:   store,
		cache:   map[string]*schedJob{},
	}
	if store != nil {
		s.memoCap = defaultMemoCap
	}
	return s
}

// defaultMemoCap is the store-backed memo bound: large enough that any
// one study's working set stays fully in process, small enough that a
// daemon fed unique jobs forever does not grow without bound.
const defaultMemoCap = 4096

// LimitMemo overrides the in-process memo bound: completed entries that
// the persistent store also holds are evicted oldest-first beyond n
// (<= 0 disables eviction). Entries the store cannot serve — failed
// jobs, KeepTrace jobs, everything when no store is attached — are
// never evicted, since dropping them would forfeit dedup rather than
// trade memory for a disk read. Call before submitting work.
func (s *Scheduler) LimitMemo(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memoCap = n
}

// noteDoneLocked records a completed entry as evictable (when the store
// can re-serve it) and enforces the memo bound. Callers hold s.mu.
func (s *Scheduler) noteDoneLocked(j *schedJob) {
	if s.memoCap <= 0 || s.store == nil || j.err != nil || j.rs.KeepTrace {
		return
	}
	s.doneOrder = append(s.doneOrder, j.key)
	for len(s.cache) > s.memoCap && len(s.doneOrder) > 0 {
		key := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		if old, ok := s.cache[key]; ok && old.state == Done {
			delete(s.cache, key)
		}
	}
}

// SetPredictor attaches the analytic surrogate consulted on Fast-mode
// submissions. When p also implements Observer, every exact result the
// scheduler resolves is fed back so fallback simulations refine the
// model. Call once, before submitting work.
func (s *Scheduler) SetPredictor(p Predictor) {
	s.predictor = p
	if o, ok := p.(Observer); ok {
		s.observer = o
	}
}

// SetSimWorkers controls how the scheduler grants intra-job parallelism
// (spec.RunSpec.SimWorkers, the conservative-lookahead engine of
// internal/sim/psim). The default 0 grants the full worker budget to a
// multi-node job only when the campaign itself cannot use it — the
// queue is empty and nothing else is running — so job-level parallelism
// (many independent simulations) always wins when there is enough of
// it, and the partitioned engine soaks up the cores it leaves idle.
// -1 disables grants; n > 0 forces n workers onto every eligible job.
// Because partitioned results are byte-identical to serial ones (and
// job keys exclude SimWorkers), grants never split or poison the memo
// or the persistent store. Call before submitting work.
func (s *Scheduler) SetSimWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.simWorkers = n
}

// SetStaticWindows disables the partitioned engine's adaptive window
// widening for every job this scheduler grants workers to, pinning the
// static latency-floor windows (spec.RunSpec.SimStaticWindows). Like
// SetSimWorkers it selects wall-clock strategy only: results stay
// byte-identical and job keys are unchanged, so flipping it never splits
// the memo or the persistent store. Intended for benchmarking and
// engine bisection. Call before submitting work.
func (s *Scheduler) SetStaticWindows(static bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.staticWindows = static
}

// grantWorkersLocked decides the intra-job worker grant for a job about
// to execute. Callers hold s.mu; the caller is already counted in
// s.active, so the idle-pool condition is active == 1.
func (s *Scheduler) grantWorkersLocked() int {
	switch {
	case s.simWorkers < 0:
		return 0
	case s.simWorkers > 0:
		return s.simWorkers
	case len(s.queue) == 0 && s.active == 1:
		return s.workers
	default:
		return 0
	}
}

// withSimWorkers applies a worker grant to an eligible job spec: one
// that did not pin its own worker count, spans more than one node, and
// runs on a fabric with a positive latency floor (the conservative
// lookahead the partitioned engine requires). Ineligible specs pass
// through unchanged.
func withSimWorkers(rs spec.RunSpec, grant int) spec.RunSpec {
	if grant <= 1 || rs.SimWorkers != 0 || rs.Cluster == nil ||
		rs.Cluster.NodesFor(rs.Ranks) <= 1 {
		return rs
	}
	net := rs.Net
	if net.Name == "" {
		net = netsim.HDR100()
	}
	if _, err := net.LatencyFloor(); err != nil {
		return rs
	}
	rs.SimWorkers = grant
	return rs
}

// SetRunner replaces the scheduler's job executor (default spec.Run).
// Store lookups, memoization, coalescing, and surrogate handling are
// unaffected: only the "actually run this job" step is routed through r.
// Call once, before submitting work.
func (s *Scheduler) SetRunner(r Runner) { s.runner = r }

// Workers returns the worker-pool cap.
func (s *Scheduler) Workers() int { return s.workers }

// Closed reports whether Close has begun: new submissions are rejected
// with ErrClosed. The service's readiness probe reads this.
func (s *Scheduler) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Store returns the persistent store backing the scheduler (nil if none).
func (s *Scheduler) Store() Store { return s.store }

// Stats returns a snapshot of the cache/queue counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// QueueDepth returns the number of jobs waiting to start.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Active returns the number of simulations currently executing.
func (s *Scheduler) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Submit enqueues one job at default priority. See SubmitPriority.
func (s *Scheduler) Submit(ctx context.Context, rs spec.RunSpec) *Ticket {
	return s.SubmitPriority(ctx, rs, 0)
}

// SubmitMode submits one job under a query mode. Exact is exactly
// SubmitPriority. Fast consults the attached predictor first: a usable
// model answers in microseconds with a ticket that is already Done
// (carrying the prediction and its error bound, see Ticket.Surrogate),
// while a missing model, an extrapolating query, or a too-loose bound
// falls back to the exact path — queueing a simulation whose result,
// once resolved, feeds back into the model. An exact result already
// memoized beats the surrogate: fast mode never degrades a free exact
// answer to an approximation.
func (s *Scheduler) SubmitMode(ctx context.Context, rs spec.RunSpec, pri int, mode Mode) *Ticket {
	// KeepTrace jobs need the full event timeline, which no analytic
	// model can synthesize.
	if mode != Fast || s.predictor == nil || rs.KeepTrace {
		return s.SubmitPriority(ctx, rs, pri)
	}
	key := Key(rs)
	s.mu.Lock()
	j, ok := s.cache[key]
	exact := ok && j.state == Done && j.err == nil
	closed := s.closed
	s.mu.Unlock()
	if exact || closed {
		return s.SubmitPriority(ctx, rs, pri)
	}
	pred, err := s.predictor.Predict(rs)
	if err != nil {
		s.count(func(st *Stats) {
			if errors.Is(err, ErrNoModel) {
				st.SurrogateMisses++
			} else {
				st.SurrogateRefused++
			}
		})
		return s.SubmitPriority(ctx, rs, pri)
	}
	s.count(func(st *Stats) { st.Jobs++; st.SurrogateHits++ })
	// The answered job never enters the memo: predictions are cheap to
	// recompute and must not shadow the exact identity.
	pj := &schedJob{key: key, rs: rs, index: -1, state: Done,
		surrogate: true, bound: pred.Bound,
		done: make(chan struct{}), res: pred.Result}
	close(pj.done)
	return &Ticket{s: s, j: pj, rs: rs}
}

// SubmitPriority enqueues one job and returns its Ticket without
// blocking. Higher priorities run sooner; equal priorities run in
// submission order. A job whose canonical Key is already known — queued,
// running, or done — coalesces onto the existing entry instead of
// re-simulating, whoever submitted it first.
//
// The context governs the submission's interest, not the simulation:
// cancelling ctx while the job is still queued releases this
// submission's claim, and a queued job with no remaining claims is
// dropped from the queue and resolved as Cancelled. Once a job starts
// running it always completes (and memoizes), whatever its submitters'
// contexts do; ctx then only affects how long Wait blocks.
func (s *Scheduler) SubmitPriority(ctx context.Context, rs spec.RunSpec, pri int) *Ticket {
	key := Key(rs)
	s.mu.Lock()
	s.stats.Jobs++
	if s.closed {
		s.mu.Unlock()
		j := &schedJob{key: key, rs: rs, index: -1, state: Cancelled,
			done: make(chan struct{}), err: ErrClosed}
		close(j.done)
		return &Ticket{s: s, j: j, rs: rs}
	}
	if j, ok := s.cache[key]; ok {
		s.stats.Hits++
		if j.state != Done {
			s.stats.Coalesced++
		}
		j.refs++
		// A hotter submission drags a queued job forward in the queue.
		if j.state == Queued && pri > j.pri {
			j.pri = pri
			heap.Fix(&s.queue, j.index)
		}
		s.mu.Unlock()
		t := &Ticket{s: s, j: j, rs: rs}
		t.watch(ctx)
		return t
	}
	j := &schedJob{
		key:  key,
		rs:   rs,
		pri:  pri,
		seq:  s.seq,
		refs: 1,
		done: make(chan struct{}),
	}
	s.seq++
	s.cache[key] = j
	heap.Push(&s.queue, j)
	s.ensureWorkerLocked()
	s.mu.Unlock()
	t := &Ticket{s: s, j: j, rs: rs}
	t.watch(ctx)
	return t
}

// ensureWorkerLocked spawns a worker goroutine if the queue has waiting
// jobs and the pool is below its cap. Callers hold s.mu.
func (s *Scheduler) ensureWorkerLocked() {
	if s.spawned >= s.workers || len(s.queue) == 0 {
		return
	}
	s.spawned++
	s.wg.Add(1)
	go s.worker()
}

// worker drains the queue until it is empty, then exits: the pool grows
// on demand under load and holds zero goroutines when idle.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.spawned--
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*schedJob)
		j.state = Running
		s.active++
		// Decide the intra-job parallelism grant while the queue state is
		// still visible; the granted spec shares the job's key (SimWorkers
		// is execution strategy, not identity).
		rs := withSimWorkers(j.rs, s.grantWorkersLocked())
		if rs.SimWorkers > 1 && s.staticWindows {
			rs.SimStaticWindows = true
		}
		s.mu.Unlock()

		res, err := s.execute(j.key, rs)

		s.mu.Lock()
		j.res, j.err = res, err
		j.state = Done
		s.active--
		s.noteDoneLocked(j)
		s.mu.Unlock()
		close(j.done)
	}
}

// execute resolves one unique job: persistent-store lookup first (when
// attached and the job is storable), then a fresh simulation with
// write-through.
func (s *Scheduler) execute(key string, rs spec.RunSpec) (spec.RunResult, error) {
	storable := s.store != nil && !rs.KeepTrace
	if storable {
		rec, ok, err := s.store.Get(key)
		if err != nil {
			s.count(func(st *Stats) { st.StoreFaults++ })
		} else if ok {
			if res, valid := rec.result(); valid {
				s.count(func(st *Stats) { st.StoreHits++ })
				s.observe(res)
				return res, nil
			}
		}
	}
	s.count(func(st *Stats) { st.Misses++ })
	run := s.runner
	if run == nil {
		run = spec.Run
	}
	res, err := run(rs)
	if storable && err == nil {
		if perr := s.store.Put(key, NewRecord(key, res)); perr != nil {
			s.count(func(st *Stats) { st.StoreFaults++ })
		}
	}
	if err == nil {
		s.observe(res)
	}
	return res, err
}

// observe feeds one exact result back into the attached surrogate, so
// every fallback simulation a fast query triggers tightens the model
// that could not answer it.
func (s *Scheduler) observe(res spec.RunResult) {
	if s.observer != nil {
		s.observer.Observe(res)
	}
}

// count applies a stats mutation under the scheduler lock.
func (s *Scheduler) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Close shuts the scheduler down: new submissions are rejected with
// ErrClosed, every queued-but-unstarted job is dropped (its waiters
// unblock with ErrClosed), and Close blocks until the simulations
// already running have completed and memoized. Close is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for len(s.queue) > 0 {
			j := heap.Pop(&s.queue).(*schedJob)
			s.resolveDroppedLocked(j, ErrClosed)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// resolveDroppedLocked finishes a queued job that will never run:
// removed from the memo (so a later resubmission re-simulates), marked
// Cancelled, and its done channel closed to release every waiter.
// Callers hold s.mu and must have already removed j from the queue.
func (s *Scheduler) resolveDroppedLocked(j *schedJob, err error) {
	delete(s.cache, j.key)
	j.state = Cancelled
	j.err = err
	s.stats.Cancelled++
	close(j.done)
}

// Ticket is one submission's handle on a scheduled job. Multiple tickets
// may share one underlying job (coalesced submissions); each carries the
// spec exactly as its own caller submitted it.
type Ticket struct {
	s  *Scheduler
	j  *schedJob
	rs spec.RunSpec

	releaseOnce sync.Once
}

// Key returns the job's canonical content-addressed identity.
func (t *Ticket) Key() string { return t.j.key }

// Job returns the spec as this submission provided it.
func (t *Ticket) Job() spec.RunSpec { return t.rs }

// Surrogate reports whether this ticket was answered by the analytic
// surrogate instead of a simulation, and if so the model's self-reported
// relative error bound on the prediction.
func (t *Ticket) Surrogate() (bound float64, ok bool) {
	return t.j.bound, t.j.surrogate
}

// State returns the job's current lifecycle position.
func (t *Ticket) State() JobState {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.j.state
}

// Done returns a channel closed when the job resolves (Done or
// Cancelled) — select-friendly for callers multiplexing many tickets.
func (t *Ticket) Done() <-chan struct{} { return t.j.done }

// Outcome returns the job's outcome and true once it has resolved; a
// non-blocking poll for status endpoints.
func (t *Ticket) Outcome() (Outcome, bool) {
	select {
	case <-t.j.done:
		return Outcome{Job: t.rs, Result: t.j.res, Err: t.j.err}, true
	default:
		return Outcome{Job: t.rs}, false
	}
}

// Wait blocks until the job resolves or ctx is cancelled and returns the
// outcome. A ctx cancellation abandons this submission's interest — a
// queued job with no other interested submissions is dropped — and
// surfaces ctx's error as the outcome's Err.
func (t *Ticket) Wait(ctx context.Context) Outcome {
	select {
	case <-t.j.done:
		return Outcome{Job: t.rs, Result: t.j.res, Err: t.j.err}
	case <-ctx.Done():
		t.Cancel()
		// The job may have resolved while we raced its cancellation;
		// prefer the real outcome when it exists.
		select {
		case <-t.j.done:
			if t.j.state == Cancelled {
				return Outcome{Job: t.rs, Err: ctx.Err()}
			}
			return Outcome{Job: t.rs, Result: t.j.res, Err: t.j.err}
		default:
			return Outcome{Job: t.rs, Err: ctx.Err()}
		}
	}
}

// Cancel releases this submission's interest in the job. When the last
// interested submission of a still-queued job cancels, the job is
// removed from the queue and resolved as Cancelled (ErrCancelled);
// running or completed jobs are unaffected. Cancel is idempotent and
// never blocks on the simulation.
func (t *Ticket) Cancel() {
	t.releaseOnce.Do(func() {
		s := t.s
		s.mu.Lock()
		defer s.mu.Unlock()
		j := t.j
		if j.state == Done || j.state == Cancelled {
			return
		}
		j.refs--
		if j.refs > 0 || j.state != Queued {
			return
		}
		heap.Remove(&s.queue, j.index)
		s.resolveDroppedLocked(j, ErrCancelled)
	})
}

// watch releases the ticket when its submit context is cancelled before
// the job resolves. Background contexts (Done() == nil) — the Engine
// adapters' case — spawn nothing.
func (t *Ticket) watch(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	go func() {
		select {
		case <-ctx.Done():
			t.Cancel()
		case <-t.j.done:
		}
	}()
}
