package trace

import (
	"math"
	"testing"
)

func TestKindNames(t *testing.T) {
	if KindCompute.String() != "compute" {
		t.Errorf("compute name = %q", KindCompute.String())
	}
	if KindRecv.String() != "MPI_Recv" || KindAllreduce.String() != "MPI_Allreduce" {
		t.Error("MPI kind names wrong")
	}
	if len(Kinds()) != int(numKinds) {
		t.Errorf("Kinds() length %d", len(Kinds()))
	}
}

func TestSumsAndFractions(t *testing.T) {
	r := NewRecorder(2, false)
	r.Record(0, KindCompute, 0, 3, -1)
	r.Record(0, KindRecv, 3, 4, 1)
	r.Record(1, KindCompute, 0, 4, -1)

	if got := r.Sum(0, KindCompute); got != 3 {
		t.Errorf("sum = %v, want 3", got)
	}
	if got := r.RankTotal(0); got != 4 {
		t.Errorf("rank total = %v, want 4", got)
	}
	if got := r.Fraction(0, KindRecv); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("fraction = %v, want 0.25", got)
	}
	// Global: 8 s total, 1 s MPI.
	if got := r.GlobalFraction(KindRecv); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("global fraction = %v, want 0.125", got)
	}
	if got := r.MPIFraction(); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("mpi fraction = %v, want 0.125", got)
	}
}

func TestZeroLengthIntervalsDropped(t *testing.T) {
	r := NewRecorder(1, true)
	r.Record(0, KindCompute, 5, 5, -1)
	r.Record(0, KindCompute, 6, 5, -1) // negative: dropped too
	if r.RankTotal(0) != 0 || len(r.Events()) != 0 {
		t.Error("degenerate intervals recorded")
	}
}

func TestEventRetention(t *testing.T) {
	keep := NewRecorder(1, true)
	keep.Record(0, KindSend, 0, 1, 7)
	if len(keep.Events()) != 1 || keep.Events()[0].Peer != 7 {
		t.Error("events not retained with keepEvents")
	}
	if keep.Events()[0].Duration() != 1 {
		t.Error("duration wrong")
	}
	drop := NewRecorder(1, false)
	drop.Record(0, KindSend, 0, 1, 7)
	if len(drop.Events()) != 0 {
		t.Error("events retained without keepEvents")
	}
	if drop.Sum(0, KindSend) != 1 {
		t.Error("sums must accumulate regardless of retention")
	}
}

func TestRankEventsFilters(t *testing.T) {
	r := NewRecorder(3, true)
	r.Record(0, KindCompute, 0, 1, -1)
	r.Record(1, KindCompute, 0, 2, -1)
	r.Record(1, KindSend, 2, 3, 0)
	if got := len(r.RankEvents(1)); got != 2 {
		t.Errorf("rank 1 events = %d, want 2", got)
	}
	if got := len(r.RankEvents(2)); got != 0 {
		t.Errorf("rank 2 events = %d, want 0", got)
	}
}

func TestSlowestRank(t *testing.T) {
	r := NewRecorder(3, false)
	r.Record(0, KindCompute, 0, 1, -1)
	r.Record(1, KindCompute, 0, 5, -1)
	r.Record(2, KindCompute, 0, 3, -1)
	if got := r.SlowestRank(); got != 1 {
		t.Errorf("slowest rank = %d, want 1", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, KindCompute, 0, 1, -1) // must not panic
}

// TestRecordAllocationFree pins the recorder's hot path: per-kind sum
// accounting (the always-on mode campaigns use) allocates nothing.
func TestRecordAllocationFree(t *testing.T) {
	r := NewRecorder(4, false)
	if a := testing.AllocsPerRun(200, func() {
		r.Record(2, KindCompute, 1, 2, -1)
		r.Record(3, KindRecv, 2, 3, 0)
	}); a != 0 {
		t.Fatalf("Recorder.Record allocates %v objects/op, want 0", a)
	}
	if got := r.Sum(2, KindCompute); got == 0 {
		t.Fatal("sums not accumulated")
	}
}
