// Package trace records per-rank event timelines, playing the role the
// Intel Trace Analyzer and Collector (ITAC) plays in the paper: it
// attributes every interval of a rank's virtual time to computation or to
// a specific MPI call class, so that serialization patterns (the
// minisweep "ripple", the lbm straggler) become visible.
package trace

import (
	"fmt"
	"sort"
)

// Kind classifies what a rank is doing during an interval.
type Kind int

// Interval kinds. The MPI kinds correspond to the call classes the paper
// discusses (MPI_Recv, MPI_Send, MPI_Wait, MPI_Barrier, MPI_Allreduce...).
const (
	KindCompute Kind = iota
	KindSend
	KindRecv
	KindWait
	KindSendrecv
	KindBarrier
	KindAllreduce
	KindReduce
	KindBcast
	KindAllgather
	KindAlltoall
	numKinds
)

// String returns the display name of the kind, using MPI call names for
// communication intervals.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "MPI_Send"
	case KindRecv:
		return "MPI_Recv"
	case KindWait:
		return "MPI_Wait"
	case KindSendrecv:
		return "MPI_Sendrecv"
	case KindBarrier:
		return "MPI_Barrier"
	case KindAllreduce:
		return "MPI_Allreduce"
	case KindReduce:
		return "MPI_Reduce"
	case KindBcast:
		return "MPI_Bcast"
	case KindAllgather:
		return "MPI_Allgather"
	case KindAlltoall:
		return "MPI_Alltoall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns all kinds in display order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Event is one attributed interval on one rank's timeline.
type Event struct {
	Rank  int
	Kind  Kind
	Start float64
	End   float64
	// Peer is the remote rank for point-to-point events, -1 otherwise.
	Peer int
}

// Duration returns the interval length.
func (e Event) Duration() float64 { return e.End - e.Start }

// Recorder accumulates events. Per-kind time sums are always kept; full
// event lists are kept only when created with keepEvents, since fine
// timelines of large runs can be big. All mutable per-run state is
// sharded by rank — each rank records only from its own (possibly
// concurrently executing) partition, so recording needs no locking.
type Recorder struct {
	ranks      int
	keepEvents bool
	events     [][]Event   // [rank], each in time order
	sums       [][]float64 // [rank][kind]
}

// NewRecorder creates a recorder for the given number of ranks.
func NewRecorder(ranks int, keepEvents bool) *Recorder {
	r := &Recorder{ranks: ranks, keepEvents: keepEvents}
	r.sums = make([][]float64, ranks)
	for i := range r.sums {
		r.sums[i] = make([]float64, numKinds)
	}
	if keepEvents {
		r.events = make([][]Event, ranks)
	}
	return r
}

// Record attributes [t0, t1) on a rank to kind. Zero-length intervals are
// dropped.
func (r *Recorder) Record(rank int, k Kind, t0, t1 float64, peer int) {
	if r == nil || t1 <= t0 {
		return
	}
	r.sums[rank][k] += t1 - t0
	if r.keepEvents {
		r.events[rank] = append(r.events[rank], Event{Rank: rank, Kind: k, Start: t0, End: t1, Peer: peer})
	}
}

// Ranks returns the number of ranks.
func (r *Recorder) Ranks() int { return r.ranks }

// Sum returns the total time rank spent in kind.
func (r *Recorder) Sum(rank int, k Kind) float64 { return r.sums[rank][k] }

// RankTotal returns total attributed time of a rank.
func (r *Recorder) RankTotal(rank int) float64 {
	tot := 0.0
	for _, v := range r.sums[rank] {
		tot += v
	}
	return tot
}

// Fraction returns the share of rank's attributed time spent in kind.
func (r *Recorder) Fraction(rank int, k Kind) float64 {
	tot := r.RankTotal(rank)
	if tot == 0 {
		return 0
	}
	return r.sums[rank][k] / tot
}

// GlobalFraction returns the share of all ranks' attributed time spent in
// kind — the run-level breakdown the paper quotes (e.g. "75% of the time
// is spent in MPI_Recv").
func (r *Recorder) GlobalFraction(k Kind) float64 {
	var tot, part float64
	for rank := 0; rank < r.ranks; rank++ {
		tot += r.RankTotal(rank)
		part += r.sums[rank][k]
	}
	if tot == 0 {
		return 0
	}
	return part / tot
}

// MPIFraction returns the share of attributed time spent in any MPI kind.
func (r *Recorder) MPIFraction() float64 {
	var tot, mpi float64
	for rank := 0; rank < r.ranks; rank++ {
		tot += r.RankTotal(rank)
		for k := KindSend; k < numKinds; k++ {
			mpi += r.sums[rank][k]
		}
	}
	if tot == 0 {
		return 0
	}
	return mpi / tot
}

// Events returns the recorded events of all ranks merged into one
// timeline ordered by (Start, Rank) — a canonical order independent of
// how rank execution interleaved, so serial and partitioned engines
// render identical timelines. Empty unless keepEvents.
func (r *Recorder) Events() []Event {
	var out []Event
	for _, evs := range r.events {
		out = append(out, evs...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// RankEvents returns the events of a single rank in time order.
func (r *Recorder) RankEvents(rank int) []Event {
	if r.events == nil {
		return nil
	}
	return r.events[rank]
}

// Sums returns a deep copy of the per-rank, per-kind time sums — the
// serializable core of a recorder. Persisted campaign results round-trip
// through Sums/FromSums; full event lists (kept only under keepEvents)
// are deliberately not part of the exchange format.
func (r *Recorder) Sums() [][]float64 {
	out := make([][]float64, r.ranks)
	for i := range out {
		out[i] = append([]float64(nil), r.sums[i]...)
	}
	return out
}

// FromSums reconstructs a recorder from a Sums snapshot. Rows shorter
// than the current kind set (a snapshot from an older build) are padded
// with zeros; longer rows are truncated — unknown kinds cannot be
// attributed anyway. The recorder keeps no event list.
func FromSums(sums [][]float64) *Recorder {
	r := NewRecorder(len(sums), false)
	for i, row := range sums {
		copy(r.sums[i], row)
	}
	return r
}

// SlowestRank returns the rank with the largest compute time — used to
// identify stragglers like lbm's slow process 70 in Fig. 2(h).
func (r *Recorder) SlowestRank() int {
	best, bestVal := 0, -1.0
	for rank := 0; rank < r.ranks; rank++ {
		if v := r.sums[rank][KindCompute]; v > bestVal {
			best, bestVal = rank, v
		}
	}
	return best
}
