package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines: %q", out)
	}
	// Header and rows align: "value" column starts at the same offset.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `say "hi"`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

// TestAddRowPadsShortRows pins that short rows are padded to the header
// count — every stored row has exactly one cell per column, so CSV
// output carries a full record per line.
func TestAddRowPadsShortRows(t *testing.T) {
	tb := NewTable("t", "a", "b", "c")
	tb.AddRow("only")
	if got := len(tb.Rows[0]); got != 3 {
		t.Fatalf("short row stored with %d cells, want 3 (padded)", got)
	}
	if tb.Rows[0][1] != "" || tb.Rows[0][2] != "" {
		t.Fatalf("padding cells not empty: %q", tb.Rows[0])
	}
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if want := "a,b,c\nonly,,\n"; sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

// TestAddRowOverflowPanics pins that a row wider than the table surfaces
// the bug loudly instead of silently truncating data.
func TestAddRowOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow with more cells than headers did not panic")
		}
	}()
	NewTable("t", "a", "b").AddRow("1", "2", "3")
}

func TestAddFloats(t *testing.T) {
	tb := NewTable("t", "k", "v1", "v2")
	tb.AddFloats("row", "%.1f", 1.25, 2.5)
	if tb.Rows[0][1] != "1.2" && tb.Rows[0][1] != "1.3" {
		t.Fatalf("formatted float = %q", tb.Rows[0][1])
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	p := NewPlot("speedup", "ranks", "speedup")
	p.Add("lbm", []float64{1, 2, 4, 8}, []float64{1, 2, 3.5, 6})
	p.Add("pot3d", []float64{1, 2, 4, 8}, []float64{1, 1.8, 2.1, 2.2})
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## speedup", "o=lbm", "+=pot3d", "ranks"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.ContainsRune(out, 'o') || !strings.ContainsRune(out, '+') {
		t.Error("plot glyphs missing")
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("empty", "x", "y")
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(no data)") {
		t.Error("empty plot not handled")
	}
}

func TestPlotLogX(t *testing.T) {
	p := NewPlot("log", "ranks", "y")
	p.LogX = true
	p.Add("s", []float64{1, 10, 100, 1000}, []float64{1, 2, 3, 4})
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1000") {
		t.Errorf("log axis label wrong:\n%s", sb.String())
	}
}

func TestSeriesCSV(t *testing.T) {
	var sb strings.Builder
	err := SeriesCSV(&sb, "ranks", []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "b", X: []float64{2, 3}, Y: []float64{200, 300}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "ranks,a,b\n1,10,\n2,20,200\n3,,300\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}
