// Package report renders experiment series as aligned text tables, CSV
// files, and terminal ASCII plots — the output layer of cmd/figures and
// the examples.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-oriented table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Short rows are padded with empty cells to the
// header count; a row with more cells than the table has headers is a
// programming error and panics — silently dropping data would corrupt
// the rendered artifact.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("report: AddRow got %d cells for a %d-column table %q (overflow: %v)",
			len(cells), len(t.Headers), t.Title, cells[len(t.Headers):]))
	}
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddFloats appends a row of formatted numbers after a leading label.
func (t *Table) AddFloats(label string, format string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(t.Headers))
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (quoting cells containing commas).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named line of (x, y) samples for plotting.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Plot renders series as a fixed-size ASCII scatter plot, the terminal
// stand-in for the paper's figures. Each series uses its own glyph.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Series []Series
	// LogX plots the x axis logarithmically (multi-node sweeps).
	LogX bool
}

// NewPlot creates a plot with sensible terminal dimensions.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// Add appends a series.
func (p *Plot) Add(name string, x, y []float64) {
	p.Series = append(p.Series, Series{Name: name, X: x, Y: y})
}

var glyphs = []byte{'o', '+', 'x', '*', '#', '@', '%', '&', '$', '~'}

// Write renders the plot.
func (p *Plot) Write(w io.Writer) error {
	if len(p.Series) == 0 {
		_, err := fmt.Fprintf(w, "## %s\n(no data)\n", p.Title)
		return err
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(v float64) float64 {
		if p.LogX && v > 0 {
			return math.Log10(v)
		}
		return v
	}
	for _, s := range p.Series {
		for i := range s.X {
			xmin = math.Min(xmin, tx(s.X[i]))
			xmax = math.Max(xmax, tx(s.X[i]))
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if ymin > 0 {
		ymin = 0 // the paper's figures anchor the y axis at zero
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, p.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.Width))
	}
	for si, s := range p.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			cx := int((tx(s.X[i]) - xmin) / (xmax - xmin) * float64(p.Width-1))
			cy := int((s.Y[i] - ymin) / (ymax - ymin) * float64(p.Height-1))
			row := p.Height - 1 - cy
			if row >= 0 && row < p.Height && cx >= 0 && cx < p.Width {
				grid[row][cx] = g
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s\n", p.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s (max %.4g)\n", p.YLabel, ymax); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s\n", string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "+%s\n", strings.Repeat("-", p.Width)); err != nil {
		return err
	}
	xAxis := fmt.Sprintf("%s: %.4g .. %.4g", p.XLabel, untx(xmin, p.LogX), untx(xmax, p.LogX))
	if _, err := fmt.Fprintln(w, xAxis); err != nil {
		return err
	}
	var legend []string
	for si, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	_, err := fmt.Fprintf(w, "legend: %s\n\n", strings.Join(legend, " "))
	return err
}

func untx(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

// SeriesCSV writes multiple series with a shared x column to CSV:
// x, name1, name2, ... (series must share x grids; missing values are
// left empty).
func SeriesCSV(w io.Writer, xName string, series []Series) error {
	// Collect the union of x values in order of first appearance.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	headers := []string{xName}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, x := range xs {
		cells := []string{fmt.Sprintf("%g", x)}
		for _, s := range series {
			val := ""
			for i := range s.X {
				if s.X[i] == x {
					val = fmt.Sprintf("%g", s.Y[i])
					break
				}
			}
			cells = append(cells, val)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
