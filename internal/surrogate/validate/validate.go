// Package validate is the cross-validation harness that keeps the
// surrogate tier's self-reported error bounds honest: it refits models
// with single sweep points held out (leave-one-out) and checks that the
// bound each reduced model reports actually covers its error on the
// held-out truth — and that held-out endpoints, which shrink the fitted
// hull, are refused rather than extrapolated. The harness operates on
// exact results the caller already computed (through the campaign
// engine or spec.Run directly), so validation itself never simulates.
package validate

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/surrogate"
)

// Point is one held-out probe: the reduced model's prediction compared
// against the exact result it never saw.
type Point struct {
	// Ranks is the held-out sweep point.
	Ranks int
	// Bound is the reduced model's self-reported relative error bound
	// at this query.
	Bound float64
	// ErrWall, ErrEnergy, ErrEDP are the actual relative errors against
	// the held-out truth.
	ErrWall   float64
	ErrEnergy float64
	ErrEDP    float64
	// Covered reports whether every error fell within Bound.
	Covered bool
}

// MaxErr returns the worst of the three tracked errors.
func (p Point) MaxErr() float64 {
	return math.Max(p.ErrWall, math.Max(p.ErrEnergy, p.ErrEDP))
}

// Report is the leave-one-out outcome for one (benchmark, cluster)
// sweep.
type Report struct {
	Benchmark string
	Cluster   string
	// Held are the interior held-out probes, in rank order.
	Held []Point
	// Covered counts the held probes whose errors fell within the
	// reduced model's bound.
	Covered int
	// EndpointsRefused reports that models fitted without each hull
	// endpoint refused to extrapolate to it (both ends).
	EndpointsRefused bool
}

// Coverage returns the fraction of held-out probes within bound.
func (r Report) Coverage() float64 {
	if len(r.Held) == 0 {
		return 0
	}
	return float64(r.Covered) / float64(len(r.Held))
}

// LeaveOneOut cross-validates one family sweep: results must all belong
// to one (benchmark, class, cluster, options, network) family at the
// base clock, with at least six distinct rank points. For every
// interior point it fits a fresh model on the remaining points and
// probes the held-out truth; for each endpoint it asserts the reduced
// model refuses the now-out-of-hull query.
func LeaveOneOut(results []spec.RunResult) (Report, error) {
	if len(results) < 6 {
		return Report{}, fmt.Errorf("validate: need >= 6 sweep points, got %d", len(results))
	}
	sorted := append([]spec.RunResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Spec.Ranks < sorted[j].Spec.Ranks })
	rep := Report{Benchmark: sorted[0].Spec.Benchmark}
	if sorted[0].Spec.Cluster != nil {
		rep.Cluster = sorted[0].Spec.Cluster.Name
	}

	reduced := func(hold int) (*surrogate.Model, error) {
		idx := surrogate.NewIndex()
		for j, res := range sorted {
			if j != hold {
				idx.Observe(res)
			}
		}
		m, ok := idx.Lookup(sorted[hold].Spec)
		if !ok {
			return nil, fmt.Errorf("validate: %s/%s: no model after holding out ranks=%d",
				rep.Benchmark, rep.Cluster, sorted[hold].Spec.Ranks)
		}
		return m, nil
	}

	for i := 1; i < len(sorted)-1; i++ {
		m, err := reduced(i)
		if err != nil {
			return rep, err
		}
		truth := sorted[i]
		p, err := m.Predict(truth.Spec.Ranks, truth.Spec.ClockHz)
		if err != nil {
			return rep, fmt.Errorf("validate: %s/%s: interior ranks=%d refused: %v",
				rep.Benchmark, rep.Cluster, truth.Spec.Ranks, err)
		}
		actE := truth.Usage.TotalEnergy()
		pt := Point{
			Ranks:     truth.Spec.Ranks,
			Bound:     p.Bound,
			ErrWall:   relErr(p.Wall, truth.Usage.Wall),
			ErrEnergy: relErr(p.TotalEnergy(), actE),
			ErrEDP:    relErr(p.EDP(), actE*truth.Usage.Wall),
		}
		pt.Covered = pt.MaxErr() <= pt.Bound
		if pt.Covered {
			rep.Covered++
		}
		rep.Held = append(rep.Held, pt)
	}

	rep.EndpointsRefused = true
	for _, i := range []int{0, len(sorted) - 1} {
		m, err := reduced(i)
		if err != nil {
			return rep, err
		}
		if _, err := m.Predict(sorted[i].Spec.Ranks, sorted[i].Spec.ClockHz); !errors.Is(err, campaign.ErrRefused) {
			rep.EndpointsRefused = false
		}
	}
	return rep, nil
}

func relErr(pred, act float64) float64 {
	if act == 0 {
		return math.Abs(pred)
	}
	return math.Abs(pred-act) / math.Abs(act)
}
