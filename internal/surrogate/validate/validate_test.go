package validate

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/surrogate"
)

// sweepPoints returns the cross-validation rank grid for a cluster:
// sub-domain, domain-multiple, and full-node points up to one node.
// Twelve points means ten interior held-out probes per combo, enough
// for the 90% coverage criterion to tolerate a single miss.
func sweepPoints(cs *machine.ClusterSpec) []int {
	switch cs.Name {
	case "ClusterA": // 18 cores/domain, 72/node
		return []int{1, 2, 3, 4, 6, 9, 12, 18, 24, 36, 54, 72}
	case "ClusterB": // 13 cores/domain, 104/node
		return []int{1, 2, 3, 4, 6, 8, 13, 26, 39, 52, 78, 104}
	}
	return spec.NodePoints(cs)
}

// exactSweep simulates one benchmark across the cluster's validation
// grid at the base clock with single-step runs (RepFactor extrapolates,
// and the surrogate fits the extrapolated totals either way).
func exactSweep(t *testing.T, name string, cs *machine.ClusterSpec) []spec.RunResult {
	t.Helper()
	base := spec.RunSpec{
		Benchmark: name,
		Class:     bench.Tiny,
		Cluster:   cs,
		Options:   bench.Options{SimSteps: 1},
	}
	results, err := spec.Sweep(base, sweepPoints(cs))
	if err != nil {
		t.Fatalf("sweep %s/%s: %v", name, cs.Name, err)
	}
	return results
}

// TestLeaveOneOutAllKernels is the headline cross-validation: for all
// nine SPEChpc kernels on both reference clusters, every interior
// sweep point held out must be predicted within the reduced model's
// own reported bound on at least 90% of probes, and held-out hull
// endpoints must be refused, never extrapolated.
func TestLeaveOneOutAllKernels(t *testing.T) {
	for _, clusterName := range []string{"ClusterA", "ClusterB"} {
		cs := machine.MustGet(clusterName)
		for _, name := range bench.Names() {
			name, cs := name, cs
			t.Run(name+"/"+clusterName, func(t *testing.T) {
				t.Parallel()
				rep, err := LeaveOneOut(exactSweep(t, name, cs))
				if err != nil {
					t.Fatal(err)
				}
				if got := rep.Coverage(); got < 0.9 {
					for _, p := range rep.Held {
						t.Logf("ranks=%-4d bound=%.4f wall=%.4f energy=%.4f edp=%.4f covered=%v",
							p.Ranks, p.Bound, p.ErrWall, p.ErrEnergy, p.ErrEDP, p.Covered)
					}
					t.Errorf("coverage = %.2f (%d/%d), want >= 0.90",
						got, rep.Covered, len(rep.Held))
				}
				if !rep.EndpointsRefused {
					t.Error("a model fitted without a hull endpoint extrapolated to it instead of refusing")
				}
			})
		}
	}
}

func TestLeaveOneOutRejectsShortSweeps(t *testing.T) {
	cs := machine.MustGet("ClusterA")
	base := spec.RunSpec{Benchmark: "lbm", Class: bench.Tiny, Cluster: cs, Options: bench.Options{SimSteps: 1}}
	results, err := spec.Sweep(base, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LeaveOneOut(results); err == nil {
		t.Fatal("LeaveOneOut accepted a 3-point sweep")
	}
}

// TestOutOfHullFallsBackToSimulator drives the full two-tier path
// through a real scheduler: a fast-mode query inside the fitted hull is
// served by the surrogate without simulating; a fast-mode query outside
// the hull is refused, simulated exactly, counted as a refusal, and the
// fresh exact result is fed back into the index.
func TestOutOfHullFallsBackToSimulator(t *testing.T) {
	cs := machine.MustGet("ClusterA")
	results := exactSweep(t, "lbm", cs)

	idx := surrogate.NewIndex()
	idx.MaxBound = 10 // isolate the hull axis: bound magnitude must not refuse
	for _, res := range results {
		idx.Observe(res)
	}
	_, _, _, seeded := idx.Counters()

	sched := campaign.NewScheduler(2, nil)
	defer sched.Close()
	sched.SetPredictor(idx)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	base := spec.RunSpec{Benchmark: "lbm", Class: bench.Tiny, Cluster: cs, Options: bench.Options{SimSteps: 1}}

	inHull := base
	inHull.Ranks = 30 // interior, not a sampled point
	tk := sched.SubmitMode(ctx, inHull, 0, campaign.Fast)
	out := tk.Wait(ctx)
	if out.Err != nil {
		t.Fatalf("in-hull fast query failed: %v", out.Err)
	}
	if bound, ok := tk.Surrogate(); !ok || bound <= 0 {
		t.Fatalf("in-hull fast query not served by surrogate (bound=%v ok=%v)", bound, ok)
	}

	outOfHull := base
	outOfHull.Ranks = 73 // one past the 72-rank fitted hull
	tk = sched.SubmitMode(ctx, outOfHull, 0, campaign.Fast)
	out = tk.Wait(ctx)
	if out.Err != nil {
		t.Fatalf("out-of-hull fallback simulation failed: %v", out.Err)
	}
	if _, ok := tk.Surrogate(); ok {
		t.Fatal("out-of-hull query claims a surrogate answer")
	}
	if out.Result.Usage.Wall <= 0 {
		t.Fatal("fallback simulation produced no usage")
	}

	st := sched.Stats()
	if st.SurrogateHits != 1 {
		t.Errorf("SurrogateHits = %d, want 1", st.SurrogateHits)
	}
	if st.SurrogateRefused != 1 {
		t.Errorf("SurrogateRefused = %d, want 1", st.SurrogateRefused)
	}
	if st.Misses != 1 {
		t.Errorf("fresh sims = %d, want exactly the out-of-hull fallback", st.Misses)
	}
	if _, _, _, observed := idx.Counters(); observed != seeded+1 {
		t.Errorf("observed = %d, want %d (fallback result fed back into the index)", observed, seeded+1)
	}

	// The fed-back exact result extended the fitted hull: repeating the
	// same query now gets a surrogate answer instead of a refusal.
	if _, err := idx.Predict(outOfHull); err != nil {
		t.Errorf("Predict after feedback = %v, want the learned hull to cover ranks=%d",
			err, outOfHull.Ranks)
	}
	// A fresh index fitted only from the original sweep still refuses.
	fresh := surrogate.NewIndex()
	fresh.MaxBound = 10
	for _, res := range results {
		fresh.Observe(res)
	}
	if _, err := fresh.Predict(outOfHull); !errors.Is(err, campaign.ErrRefused) {
		t.Errorf("fresh Predict(out-of-hull) = %v, want ErrRefused", err)
	}
}

// TestSurrogateSpeedup pins the headline performance claim: a fitted
// model answers a query at least 1000x faster than even a minimal
// single-step exact simulation (the observed gap is around four orders
// of magnitude).
func TestSurrogateSpeedup(t *testing.T) {
	cs := machine.MustGet("ClusterA")
	results := exactSweep(t, "lbm", cs)
	idx := surrogate.NewIndex()
	for _, res := range results {
		idx.Observe(res)
	}
	probe := spec.RunSpec{Benchmark: "lbm", Class: bench.Tiny, Cluster: cs, Ranks: 30, Options: bench.Options{SimSteps: 1}}
	m, ok := idx.Lookup(probe)
	if !ok {
		t.Fatal("no fitted model after sweep")
	}

	simStart := time.Now()
	if _, err := spec.Run(probe); err != nil {
		t.Fatal(err)
	}
	simTime := time.Since(simStart)

	const iters = 20000
	queryStart := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := m.Predict(probe.Ranks, 0); err != nil {
			t.Fatal(err)
		}
	}
	perQuery := time.Since(queryStart) / iters

	if perQuery <= 0 {
		perQuery = time.Nanosecond
	}
	speedup := float64(simTime) / float64(perQuery)
	t.Logf("simulation %v vs surrogate query %v: %.0fx", simTime, perQuery, speedup)
	if speedup < 1000 {
		t.Errorf("speedup = %.0fx, want >= 1000x", speedup)
	}
	if perQuery > time.Microsecond {
		t.Errorf("steady-state query = %v, want sub-microsecond", perQuery)
	}
}
