package surrogate

import (
	"fmt"
	"math"
	"sort"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/dvfs"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// The interpolated quantities of one job, in a fixed order shared by
// samples, fitted curves, and predictions. Wall, the two energies, and
// everything derived from them (power, EDP) are the headline outputs;
// the flop/traffic/time-partition totals exist so a synthesized Usage
// supports every generic metric the scenario renderer knows.
const (
	qWall = iota
	qFlopsScalar
	qFlopsSIMD
	qBytesL2
	qBytesL3
	qBytesMem
	qTimeExec
	qTimeStall
	qTimeMPI
	qChipE
	qDRAME
	nQuant
)

// sample is one observed exact result projected onto the fitted
// quantities: a (ranks, clock) grid point of a family.
type sample struct {
	ranks   int
	clockHz float64
	vals    [nQuant]float64
}

// newSample projects a Usage onto the fitted quantities.
func newSample(ranks int, clockHz float64, u machine.Usage) sample {
	return sample{ranks: ranks, clockHz: clockHz, vals: [nQuant]float64{
		qWall:        u.Wall,
		qFlopsScalar: u.FlopsScalar,
		qFlopsSIMD:   u.FlopsSIMD,
		qBytesL2:     u.BytesL2,
		qBytesL3:     u.BytesL3,
		qBytesMem:    u.BytesMem,
		qTimeExec:    u.TimeExec,
		qTimeStall:   u.TimeStall,
		qTimeMPI:     u.TimeMPI,
		qChipE:       u.ChipEnergy,
		qDRAME:       u.DRAMEnergy,
	}}
}

// clockFit is the fitted frequency response at one sampled rank count.
// Wall follows the two-component DVFS form t0 + t1/f (clock-bound work
// scales with the core clock, memory/network work does not); chip
// energy follows (e0 + e1*kappa(f)) * wall(f) with kappa the cluster's
// CMOS power factor (baseline power flat, core dynamic power scaling
// super-linearly); DRAM energy is d0*wall(f) + d1 (idle power times
// wall plus a traffic term independent of the clock).
type clockFit struct {
	rank   float64
	wall   linFit // x = 1/f
	chip   linFit // x = kappa(f), y = chipE/wall
	dram   linFit // x = wall,     y = dramE
	refW   float64
	refE   float64
	refD   float64
	refKap float64
}

// fitClock fits the frequency response from >= minClockPoints samples
// at one rank.
func fitClock(rank int, ss []sample, dv dvfs.Model, baseHz float64) clockFit {
	n := len(ss)
	xsInv := make([]float64, n)
	xsKap := make([]float64, n)
	ws := make([]float64, n)
	pw := make([]float64, n)
	de := make([]float64, n)
	for i, s := range ss {
		xsInv[i] = 1 / s.clockHz
		xsKap[i] = dv.PowerFactor(s.clockHz)
		ws[i] = s.vals[qWall]
		pw[i] = s.vals[qChipE] / s.vals[qWall]
		de[i] = s.vals[qDRAME]
	}
	cf := clockFit{rank: float64(rank)}
	cf.wall = fitLine(xsInv, ws)
	cf.chip = fitLine(xsKap, pw)
	cf.dram = fitLine(ws, de)
	cf.refKap = dv.PowerFactor(baseHz)
	cf.refW = cf.wall.at(1 / baseHz)
	cf.refE = cf.chip.at(cf.refKap) * cf.refW
	cf.refD = cf.dram.at(cf.refW)
	return cf
}

// ratio returns the multiplicative frequency response of quantity q at
// clock hz, relative to the family's base clock. Zero allocs.
func (cf *clockFit) ratio(q int, hz float64, dv *dvfs.Model) float64 {
	w := cf.wall.at(1 / hz)
	switch q {
	case qWall, qTimeExec, qTimeStall, qTimeMPI:
		return safeRatio(w, cf.refW)
	case qChipE:
		return safeRatio(cf.chip.at(dv.PowerFactor(hz))*w, cf.refE)
	case qDRAME:
		return safeRatio(cf.dram.at(w), cf.refD)
	default:
		// Flop and traffic totals are clock-independent by construction.
		return 1
	}
}

func safeRatio(num, den float64) float64 {
	if den <= 0 || num <= 0 {
		return 1
	}
	return num / den
}

// Model is one family's fitted surrogate: monotone PCHIP curves over
// the rank axis at the cluster's base clock, composed with per-rank
// DVFS-form frequency responses, plus the self-reported relative error
// bound derived by leave-one-out refitting. A Model is immutable after
// fitting; Predict is safe for concurrent use and allocation-free.
type Model struct {
	fam    spec.RunSpec // family-normalized spec (Ranks=0, ClockHz=0)
	report bench.RunReport
	dv     dvfs.Model
	baseHz float64

	rankX  []float64 // sorted rank grid at baseHz
	curves [nQuant]pchip
	clocks []clockFit // sorted by rank; empty = rank axis only

	minHz, maxHz float64 // fitted clock hull (baseHz only when clocks empty)

	// knotErr is the local leave-one-out relative error at each rank
	// knot (worst of wall, total energy, EDP when that knot is held
	// out and the curve refitted; endpoints inherit their neighbour's).
	// A query's bound is built from the errors bracketing it, so a
	// model that is tight where the grid is dense and loose where it
	// is sparse refuses only the sparse region instead of everything.
	knotErr []float64
	// clockErr is the worst clock-axis LOO error (zero-cost exact at
	// base clock; added to the rank term for off-base queries). When
	// no ladder is dense enough to probe, a conservative prior is used.
	clockErr float64

	// Bound is the model's worst-case self-reported relative error
	// bound over the whole fitted hull: the largest per-query bound
	// Predict can report. Individual predictions usually carry a
	// tighter local bound.
	Bound float64
}

// Fitting thresholds: a rank curve needs enough points for cubic
// interpolation plus interior LOO probes; a clock fit needs enough
// ladder points to over-determine the two-parameter forms.
const (
	minRankPoints  = 4
	minClockPoints = 3
	boundSafety    = 1.5
	boundFloor     = 0.01
	// clockErrPrior is assumed for off-base queries when every sampled
	// ladder was too sparse (exactly minClockPoints) to hold a point
	// out: the two-parameter DVFS forms are strongly structured, but an
	// unprobed fit should not claim floor-level accuracy.
	clockErrPrior = 0.05
)

// fitModel fits one family from its samples, or returns nil when the
// rank grid at the base clock is too sparse to interpolate.
func fitModel(fam spec.RunSpec, report bench.RunReport, samples []sample) *Model {
	if fam.Cluster == nil {
		return nil
	}
	base := fam.Cluster.CPU.BaseClockHz
	m := &Model{fam: fam, report: report, dv: fam.Cluster.CPU.DVFS, baseHz: base}

	byRank := make(map[int][]sample)
	refByRank := make(map[int]sample)
	for _, s := range samples {
		byRank[s.ranks] = append(byRank[s.ranks], s)
		if s.clockHz == base {
			refByRank[s.ranks] = s
		}
	}
	if len(refByRank) < minRankPoints {
		return nil
	}
	ranks := make([]int, 0, len(refByRank))
	for r := range refByRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	m.rankX = make([]float64, len(ranks))
	ys := make([][]float64, nQuant)
	for q := range ys {
		ys[q] = make([]float64, len(ranks))
	}
	for i, r := range ranks {
		m.rankX[i] = float64(r)
		for q := 0; q < nQuant; q++ {
			ys[q][i] = refByRank[r].vals[q]
		}
	}
	for q := 0; q < nQuant; q++ {
		m.curves[q] = fitPCHIP(m.rankX, ys[q])
	}

	// Frequency responses at every rank with a sampled clock ladder.
	m.minHz, m.maxHz = base, base
	for r, ss := range byRank {
		if countClocks(ss) < minClockPoints {
			continue
		}
		m.clocks = append(m.clocks, fitClock(r, ss, m.dv, base))
		for _, s := range ss {
			m.minHz = math.Min(m.minHz, s.clockHz)
			m.maxHz = math.Max(m.maxHz, s.clockHz)
		}
	}
	sort.Slice(m.clocks, func(i, j int) bool { return m.clocks[i].rank < m.clocks[j].rank })

	m.fitErrors(refByRank, byRank, ys)
	maxKnot := 0.0
	for _, e := range m.knotErr {
		maxKnot = math.Max(maxKnot, e)
	}
	m.Bound = boundSafety*(maxKnot+m.clockErr) + boundFloor
	return m
}

func countClocks(ss []sample) int {
	seen := make(map[float64]bool, len(ss))
	for _, s := range ss {
		seen[s.clockHz] = true
	}
	return len(seen)
}

// fitErrors measures the model's own interpolation error by
// leave-one-out refitting and stores it per rank knot plus one
// clock-axis term: every interior rank point (and, where a clock
// ladder is dense enough, every off-base clock point) is held out, the
// affected axis refitted without it, and the held-out truth compared
// against the reduced model's prediction on wall, total energy, and
// EDP. Endpoints are never held out — removing one shrinks the hull,
// which is the refusal path, not the accuracy path — so they inherit
// their interior neighbour's error.
func (m *Model) fitErrors(refByRank map[int]sample, byRank map[int][]sample, ys [][]float64) {
	relErr := func(pred, act float64) float64 {
		if act == 0 {
			return 0
		}
		return abs(pred-act) / abs(act)
	}
	worst := func(pw, pe, aw, ae float64) float64 {
		e := relErr(pw, aw)
		e = math.Max(e, relErr(pe, ae))
		return math.Max(e, relErr(pe*pw, ae*aw)) // EDP
	}

	// Rank axis: hold out each interior grid point.
	n := len(m.rankX)
	m.knotErr = make([]float64, n)
	for i := 1; i < n-1; i++ {
		xs := make([]float64, 0, n-1)
		wallY := make([]float64, 0, n-1)
		chipY := make([]float64, 0, n-1)
		dramY := make([]float64, 0, n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			xs = append(xs, m.rankX[j])
			wallY = append(wallY, ys[qWall][j])
			chipY = append(chipY, ys[qChipE][j])
			dramY = append(dramY, ys[qDRAME][j])
		}
		q := m.rankX[i]
		pw := fitPCHIP(xs, wallY).eval(q)
		pe := fitPCHIP(xs, chipY).eval(q) + fitPCHIP(xs, dramY).eval(q)
		m.knotErr[i] = worst(pw, pe, ys[qWall][i], ys[qChipE][i]+ys[qDRAME][i])
	}
	m.knotErr[0] = m.knotErr[1]
	m.knotErr[n-1] = m.knotErr[n-2]

	// Clock axis: hold out each off-base point of each dense ladder.
	probed := false
	for _, cf := range m.clocks {
		r := int(cf.rank)
		ss := byRank[r]
		anchor, haveAnchor := refByRank[r]
		if !haveAnchor || countClocks(ss) <= minClockPoints {
			continue
		}
		for i, held := range ss {
			if held.clockHz == m.baseHz {
				continue
			}
			reduced := make([]sample, 0, len(ss)-1)
			for j, s := range ss {
				if j != i {
					reduced = append(reduced, s)
				}
			}
			rf := fitClock(r, reduced, m.dv, m.baseHz)
			pw := anchor.vals[qWall] * rf.ratio(qWall, held.clockHz, &m.dv)
			pe := anchor.vals[qChipE]*rf.ratio(qChipE, held.clockHz, &m.dv) +
				anchor.vals[qDRAME]*rf.ratio(qDRAME, held.clockHz, &m.dv)
			probed = true
			m.clockErr = math.Max(m.clockErr, worst(pw, pe, held.vals[qWall], held.vals[qChipE]+held.vals[qDRAME]))
		}
	}
	if len(m.clocks) > 0 && !probed {
		m.clockErr = clockErrPrior
	}
}

// boundAt returns the per-query error bound at a (rank, clock) point
// inside the hull: the LOO errors of the two knots bracketing the rank,
// plus the clock-axis term for off-base clocks, scaled by the safety
// factor over the floor. Zero allocs.
func (m *Model) boundAt(r float64, offBase bool) float64 {
	n := len(m.rankX)
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if m.rankX[mid] <= r {
			lo = mid
		} else {
			hi = mid
		}
	}
	e := math.Max(m.knotErr[lo], m.knotErr[hi])
	if offBase {
		e += m.clockErr
	}
	return boundSafety*e + boundFloor
}

// Prediction is one analytic answer: the interpolated quantities plus
// the model's error bound. All fields are scalars, so the exact-path
// helpers below stay allocation-free.
type Prediction struct {
	Wall        float64
	FlopsScalar float64
	FlopsSIMD   float64
	BytesL2     float64
	BytesL3     float64
	BytesMem    float64
	TimeExec    float64
	TimeStall   float64
	TimeMPI     float64
	ChipEnergy  float64
	DRAMEnergy  float64
	Bound       float64
}

// TotalEnergy returns chip+DRAM energy (J).
func (p Prediction) TotalEnergy() float64 { return p.ChipEnergy + p.DRAMEnergy }

// EDP returns the energy-delay product (J*s).
func (p Prediction) EDP() float64 { return p.TotalEnergy() * p.Wall }

// Ranks returns the fitted rank hull [min, max].
func (m *Model) Ranks() (min, max int) {
	return int(m.rankX[0]), int(m.rankX[len(m.rankX)-1])
}

// Clocks returns the fitted clock hull [min, max] in Hz; min == max
// means the model only covers the base clock.
func (m *Model) Clocks() (min, max float64) { return m.minHz, m.maxHz }

// normClock maps a query clock onto the family grid: zero means the
// base clock, anything else snaps onto the cluster's DVFS ladder the
// same way spec.Run would. The bool is false when the clock cannot run
// on this cluster at all (out of ladder range, or DVFS disabled) — the
// simulator owns producing that error.
func (m *Model) normClock(hz float64) (float64, bool) {
	if hz == 0 {
		return m.baseHz, true
	}
	d := m.dv
	if !d.Enabled() || hz < d.MinHz || hz > d.MaxHz {
		return 0, false
	}
	return d.Quantize(hz), true
}

// Predict evaluates the model at a (ranks, clock) point. It returns a
// campaign.ErrRefused-wrapped error when the point extrapolates outside
// the fitted hull on either axis; inside the hull the call performs no
// heap allocation (binary searches over immutable fitted arrays plus
// scalar arithmetic), which is what lets the fast tier answer in
// sub-microsecond time — see BenchmarkSurrogateQuery.
func (m *Model) Predict(ranks int, clockHz float64) (Prediction, error) {
	lo, hi := m.Ranks()
	if ranks < lo || ranks > hi {
		return Prediction{}, fmt.Errorf("%w: ranks=%d outside fitted hull [%d, %d]",
			campaign.ErrRefused, ranks, lo, hi)
	}
	hz, ok := m.normClock(clockHz)
	if !ok {
		return Prediction{}, fmt.Errorf("%w: clock %g GHz not on the cluster ladder",
			campaign.ErrRefused, clockHz/1e9)
	}
	var cf *clockFit
	if hz != m.baseHz {
		if len(m.clocks) == 0 || hz < m.minHz || hz > m.maxHz {
			return Prediction{}, fmt.Errorf("%w: clock %g GHz outside fitted hull [%g, %g] GHz",
				campaign.ErrRefused, hz/1e9, m.minHz/1e9, m.maxHz/1e9)
		}
		cf = m.nearestClockFit(float64(ranks))
	}
	var vals [nQuant]float64
	r := float64(ranks)
	for q := 0; q < nQuant; q++ {
		v := m.curves[q].eval(r)
		if cf != nil {
			v *= cf.ratio(q, hz, &m.dv)
		}
		if v < 0 {
			v = 0
		}
		vals[q] = v
	}
	return Prediction{
		Wall:        vals[qWall],
		FlopsScalar: vals[qFlopsScalar],
		FlopsSIMD:   vals[qFlopsSIMD],
		BytesL2:     vals[qBytesL2],
		BytesL3:     vals[qBytesL3],
		BytesMem:    vals[qBytesMem],
		TimeExec:    vals[qTimeExec],
		TimeStall:   vals[qTimeStall],
		TimeMPI:     vals[qTimeMPI],
		ChipEnergy:  vals[qChipE],
		DRAMEnergy:  vals[qDRAME],
		Bound:       m.boundAt(r, cf != nil),
	}, nil
}

// nearestClockFit returns the frequency response fitted at the rank
// count closest to r (fits are sparse — typically one ladder per swept
// rank point). Zero allocs.
func (m *Model) nearestClockFit(r float64) *clockFit {
	lo, hi := 0, len(m.clocks)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if m.clocks[mid].rank <= r {
			lo = mid
		} else {
			hi = mid
		}
	}
	if abs(m.clocks[hi].rank-r) < abs(m.clocks[lo].rank-r) {
		return &m.clocks[hi]
	}
	return &m.clocks[lo]
}

// synthesize expands a Prediction into the full RunResult shape exact
// results carry, so downstream consumers (metrics registry, service
// payloads, figures) need no surrogate-specific code path: Usage totals
// are the interpolated quantities, per-socket/domain breakdowns are
// spread uniformly over the allocated geometry, RawUsage inverts the
// family's workload extrapolation factor, and the trace carries
// per-rank zero sums (an analytic model has no event timeline).
func (m *Model) synthesize(rs spec.RunSpec, p Prediction) spec.RunResult {
	cs := rs.Cluster
	nodes := cs.NodesFor(rs.Ranks)
	sockets := nodes * cs.CPU.SocketsPerNode
	domains := nodes * cs.CPU.DomainsPerNode()
	wall := p.Wall
	if wall <= 0 {
		wall = 1e-12
	}
	u := machine.Usage{
		Cluster:     cs.Name,
		Ranks:       rs.Ranks,
		Nodes:       nodes,
		Wall:        p.Wall,
		FlopsScalar: p.FlopsScalar,
		FlopsSIMD:   p.FlopsSIMD,
		BytesL2:     p.BytesL2,
		BytesL3:     p.BytesL3,
		BytesMem:    p.BytesMem,
		TimeExec:    p.TimeExec,
		TimeStall:   p.TimeStall,
		TimeMPI:     p.TimeMPI,
		ChipEnergy:  p.ChipEnergy,
		DRAMEnergy:  p.DRAMEnergy,
	}
	u.SocketChipPower = make([]float64, sockets)
	for i := range u.SocketChipPower {
		u.SocketChipPower[i] = p.ChipEnergy / wall / float64(sockets)
	}
	u.DomainDRAMPower = make([]float64, domains)
	u.DomainBytesMem = make([]float64, domains)
	for i := 0; i < domains; i++ {
		u.DomainDRAMPower[i] = p.DRAMEnergy / wall / float64(domains)
		u.DomainBytesMem[i] = p.BytesMem / float64(domains)
	}
	if hz, ok := m.normClock(rs.ClockHz); ok && rs.ClockHz > 0 {
		rs.ClockHz = hz // report the ladder point, as spec.Run does
	}
	rep := m.report.RepFactor()
	if rep <= 0 {
		rep = 1
	}
	return spec.RunResult{
		Spec:     rs,
		Usage:    u,
		RawUsage: u.Scale(1 / rep),
		Report:   m.report,
		Trace:    trace.FromSums(make([][]float64, rs.Ranks)),
	}
}
