package surrogate

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// synthUsage evaluates the synthetic family's closed form at (r, f): a
// strong-scaling 1/r wall with a serial floor, the exact DVFS
// decomposition the clock fit assumes (so clock-axis predictions can be
// checked tightly), and flop/traffic totals independent of both axes.
func synthUsage(cl *machine.ClusterSpec, r int, hz float64) machine.Usage {
	if hz == 0 {
		hz = cl.CPU.BaseClockHz
	}
	kap := cl.CPU.DVFS.PowerFactor(hz)
	wall := (2e9/float64(r))/hz + 0.05
	return machine.Usage{
		Cluster: cl.Name, Ranks: r, Nodes: cl.NodesFor(r),
		Wall:        wall,
		FlopsScalar: 1e10, FlopsSIMD: 9e10,
		BytesL2: 4e10, BytesL3: 2e10, BytesMem: 1e10,
		TimeExec: wall * float64(r) * 0.7, TimeStall: wall * float64(r) * 0.2, TimeMPI: wall * float64(r) * 0.1,
		ChipEnergy: (40 + 25*kap) * wall,
		DRAMEnergy: 6*wall + 2,
	}
}

func synthFamily() spec.RunSpec {
	return spec.RunSpec{
		Benchmark: "synthetic-surrogate",
		Class:     bench.Tiny,
		Cluster:   machine.MustGet("ClusterA"),
	}
}

// synthResult builds an observable exact-result stand-in at one grid
// point.
func synthResult(r int, hz float64) spec.RunResult {
	fam := synthFamily()
	fam.Ranks = r
	fam.ClockHz = hz
	return spec.RunResult{
		Spec:   fam,
		Usage:  synthUsage(fam.Cluster, r, hz),
		Report: bench.RunReport{StepsModeled: 10, StepsSimulated: 5},
		Trace:  trace.FromSums(make([][]float64, r)),
	}
}

var synthRanks = []int{1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32, 36}

// seedIndex observes a rank sweep at the base clock plus a clock ladder
// at one mid rank.
func seedIndex() *Index {
	idx := NewIndex()
	for _, r := range synthRanks {
		idx.Observe(synthResult(r, 0))
	}
	for _, ghz := range []float64{1.2, 1.6, 2.0, 2.4} {
		idx.Observe(synthResult(8, ghz*1e9))
	}
	return idx
}

func TestPCHIPInterpolatesKnotsAndPreservesMonotonicity(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := []float64{10, 5.2, 2.8, 1.6, 1.1} // decreasing, saturating
	p := fitPCHIP(xs, ys)
	for i, x := range xs {
		if got := p.eval(x); math.Abs(got-ys[i]) > 1e-12 {
			t.Errorf("knot %g: eval = %g, want %g", x, got, ys[i])
		}
	}
	prev := p.eval(xs[0])
	for q := xs[0]; q <= xs[len(xs)-1]; q += 0.05 {
		v := p.eval(q)
		if v > prev+1e-12 {
			t.Fatalf("interpolant not monotone: eval(%g)=%g > previous %g", q, v, prev)
		}
		if v < ys[len(ys)-1]-1e-12 || v > ys[0]+1e-12 {
			t.Fatalf("interpolant overshoots data range at %g: %g", q, v)
		}
		prev = v
	}
}

func TestPCHIPHandlesNonMonotoneData(t *testing.T) {
	// A valley: derivatives at the extremum must be zero, no overshoot
	// below the minimum.
	p := fitPCHIP([]float64{0, 1, 2, 3}, []float64{4, 1, 1.5, 3})
	for q := 0.0; q <= 3; q += 0.01 {
		if v := p.eval(q); v < 1-1e-9 || v > 4+1e-9 {
			t.Fatalf("overshoot at %g: %g", q, v)
		}
	}
}

func TestModelPredictsKnotsExactly(t *testing.T) {
	idx := seedIndex()
	m, ok := idx.Lookup(synthFamily())
	if !ok {
		t.Fatal("no model fitted from seeded sweep")
	}
	cl := synthFamily().Cluster
	for _, r := range synthRanks {
		want := synthUsage(cl, r, 0)
		p, err := m.Predict(r, 0)
		if err != nil {
			t.Fatalf("predict ranks=%d: %v", r, err)
		}
		if rel(p.Wall, want.Wall) > 1e-9 || rel(p.ChipEnergy, want.ChipEnergy) > 1e-9 {
			t.Errorf("knot ranks=%d: wall=%g want %g, chipE=%g want %g",
				r, p.Wall, want.Wall, p.ChipEnergy, want.ChipEnergy)
		}
	}
}

func TestModelInterpolatesWithinBound(t *testing.T) {
	idx := seedIndex()
	m, _ := idx.Lookup(synthFamily())
	cl := synthFamily().Cluster
	for _, r := range []int{3, 6, 12, 20, 30} {
		want := synthUsage(cl, r, 0)
		p, err := m.Predict(r, 0)
		if err != nil {
			t.Fatalf("predict ranks=%d: %v", r, err)
		}
		for _, c := range []struct {
			name       string
			got, want_ float64
		}{
			{"wall", p.Wall, want.Wall},
			{"energy", p.TotalEnergy(), want.ChipEnergy + want.DRAMEnergy},
			{"edp", p.EDP(), (want.ChipEnergy + want.DRAMEnergy) * want.Wall},
		} {
			if e := rel(c.got, c.want_); e > p.Bound {
				t.Errorf("ranks=%d %s: rel err %.4f exceeds reported bound %.4f", r, c.name, e, p.Bound)
			}
		}
	}
}

// TestModelClockAxis checks the DVFS decomposition reproduces off-base
// clocks: the synthetic truth follows the fitted form exactly, so even
// an unsampled ladder point inside the hull must come back tight.
func TestModelClockAxis(t *testing.T) {
	idx := seedIndex()
	m, _ := idx.Lookup(synthFamily())
	cl := synthFamily().Cluster
	for _, ghz := range []float64{1.2, 1.4, 1.8, 2.2} { // 1.4/1.8/2.2 unsampled
		hz := ghz * 1e9
		want := synthUsage(cl, 8, hz)
		p, err := m.Predict(8, hz)
		if err != nil {
			t.Fatalf("predict clock %g GHz: %v", ghz, err)
		}
		if e := rel(p.Wall, want.Wall); e > 1e-6 {
			t.Errorf("clock %g GHz wall: rel err %g (form should be exact)", ghz, e)
		}
		if e := rel(p.TotalEnergy(), want.ChipEnergy+want.DRAMEnergy); e > 1e-6 {
			t.Errorf("clock %g GHz energy: rel err %g", ghz, e)
		}
	}
}

func TestModelRefusals(t *testing.T) {
	idx := seedIndex()
	m, _ := idx.Lookup(synthFamily())
	cases := []struct {
		name  string
		ranks int
		hz    float64
	}{
		{"ranks-below-hull", 0, 0},
		{"ranks-above-hull", 72, 0},
		{"clock-off-ladder", 8, 5e9},
		{"clock-below-fitted-hull", 8, 0.8e9}, // on ladder, outside samples
		{"clock-at-unfitted-rank-ok-but-checked-range", 4, 0.9e9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Predict(tc.ranks, tc.hz); !errors.Is(err, campaign.ErrRefused) {
				t.Errorf("Predict(%d, %g) err = %v, want ErrRefused", tc.ranks, tc.hz, err)
			}
		})
	}
	// Clock inside the fitted hull at a rank without its own ladder:
	// served via the nearest fitted ladder.
	if _, err := m.Predict(16, 1.6e9); err != nil {
		t.Errorf("in-hull clock at unfitted rank refused: %v", err)
	}
}

func TestIndexPredictNoModelAndSparse(t *testing.T) {
	idx := NewIndex()
	fam := synthFamily()
	fam.Ranks = 4
	if _, err := idx.Predict(fam); !errors.Is(err, campaign.ErrNoModel) {
		t.Errorf("empty index: err = %v, want ErrNoModel", err)
	}
	// Fewer than minRankPoints grid points: still no model.
	for _, r := range []int{1, 2, 4} {
		idx.Observe(synthResult(r, 0))
	}
	if _, err := idx.Predict(fam); !errors.Is(err, campaign.ErrNoModel) {
		t.Errorf("sparse grid: err = %v, want ErrNoModel", err)
	}
	if _, _, noModel, _ := idx.Counters(); noModel != 2 {
		t.Errorf("noModel counter = %d, want 2", noModel)
	}
}

func TestIndexPredictSynthesizesFullResult(t *testing.T) {
	idx := seedIndex()
	fam := synthFamily()
	fam.Ranks = 12
	pred, err := idx.Predict(fam)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	res := pred.Result
	cl := fam.Cluster
	nodes := cl.NodesFor(12)
	if res.Usage.Ranks != 12 || res.Usage.Nodes != nodes || res.Usage.Cluster != cl.Name {
		t.Errorf("geometry: ranks=%d nodes=%d cluster=%q", res.Usage.Ranks, res.Usage.Nodes, res.Usage.Cluster)
	}
	sockets := nodes * cl.CPU.SocketsPerNode
	if len(res.Usage.SocketChipPower) != sockets {
		t.Errorf("socket power slice len %d, want %d", len(res.Usage.SocketChipPower), sockets)
	}
	var chipP float64
	for _, p := range res.Usage.SocketChipPower {
		chipP += p
	}
	if rel(chipP, res.Usage.ChipPower()) > 1e-9 {
		t.Errorf("socket powers sum %g != chip power %g", chipP, res.Usage.ChipPower())
	}
	if !res.Report.Valid() {
		t.Error("synthesized report not valid")
	}
	rep := res.Report.RepFactor()
	if rel(res.RawUsage.Wall*rep, res.Usage.Wall) > 1e-9 {
		t.Errorf("RawUsage not the rep-factor inverse: raw=%g rep=%g usage=%g",
			res.RawUsage.Wall, rep, res.Usage.Wall)
	}
	if res.Trace == nil || len(res.Trace.Sums()) != 12 {
		t.Error("synthesized trace missing per-rank rows")
	}
	if pred.Bound <= 0 {
		t.Errorf("bound = %g, want > 0", pred.Bound)
	}
}

func TestIndexMaxBoundRefusal(t *testing.T) {
	idx := seedIndex()
	idx.MaxBound = 1e-9 // nothing is this accurate
	fam := synthFamily()
	fam.Ranks = 8
	if _, err := idx.Predict(fam); !errors.Is(err, campaign.ErrRefused) {
		t.Errorf("over-tolerance model: err = %v, want ErrRefused", err)
	}
	if _, refused, _, _ := idx.Counters(); refused != 1 {
		t.Errorf("refused counter = %d, want 1", refused)
	}
}

func TestPredictAllocationFree(t *testing.T) {
	idx := seedIndex()
	m, _ := idx.Lookup(synthFamily())
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := m.Predict(13, 1.6e9); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Model.Predict allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	idx := seedIndex()
	dir := t.TempDir()
	saved, err := idx.Save(dir)
	if err != nil || saved != 1 {
		t.Fatalf("save: n=%d err=%v", saved, err)
	}

	fresh := NewIndex()
	loaded, err := fresh.Load(dir)
	if err != nil || loaded != 1 {
		t.Fatalf("load: n=%d err=%v", loaded, err)
	}
	orig, _ := idx.Lookup(synthFamily())
	rt, ok := fresh.Lookup(synthFamily())
	if !ok {
		t.Fatal("loaded index has no model")
	}
	for _, r := range []int{3, 8, 20} {
		po, _ := orig.Predict(r, 0)
		pr, err := rt.Predict(r, 0)
		if err != nil {
			t.Fatalf("round-tripped predict ranks=%d: %v", r, err)
		}
		if rel(po.Wall, pr.Wall) > 1e-12 || rel(po.ChipEnergy, pr.ChipEnergy) > 1e-12 {
			t.Errorf("ranks=%d: round-trip drifted wall %g->%g", r, po.Wall, pr.Wall)
		}
	}
	if po, pr := orig.Bound, rt.Bound; rel(po, pr) > 1e-12 {
		t.Errorf("bound drifted across round-trip: %g -> %g", po, pr)
	}
}

func TestLoadSkipsCorruptAndForeignFiles(t *testing.T) {
	idx := seedIndex()
	dir := t.TempDir()
	if _, err := idx.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt file, foreign prefix, and stale format must all be skipped.
	writeFile(t, dir, "m1-deadbeef.json", "{not json")
	writeFile(t, dir, "v1-0000.json", `{"format":1}`)
	writeFile(t, dir, "m1-0123.json", `{"format":99,"key":"f1-0123"}`)
	fresh := NewIndex()
	if n, err := fresh.Load(dir); err != nil || n != 1 {
		t.Errorf("load with junk: n=%d err=%v, want 1 loaded", n, err)
	}
}

func TestObserveDedupAndModels(t *testing.T) {
	idx := seedIndex()
	before, _ := countSamples(idx)
	idx.Observe(synthResult(8, 0)) // duplicate grid point
	after, _ := countSamples(idx)
	if before != after {
		t.Errorf("duplicate observation grew the grid: %d -> %d", before, after)
	}
	fitted, families := idx.Models()
	if fitted != 1 || families != 1 {
		t.Errorf("Models() = (%d, %d), want (1, 1)", fitted, families)
	}
}

func TestFitStore(t *testing.T) {
	st, err := campaign.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Persist synthetic grid points as store records via the public API.
	for _, r := range synthRanks {
		res := synthResult(r, 0)
		key := campaign.Key(res.Spec)
		if err := st.Put(key, campaign.NewRecord(key, res)); err != nil {
			t.Fatal(err)
		}
	}
	idx := NewIndex()
	n, err := idx.FitStore(st)
	if err != nil || n != len(synthRanks) {
		t.Fatalf("FitStore: n=%d err=%v, want %d", n, err, len(synthRanks))
	}
	if _, ok := idx.Lookup(synthFamily()); !ok {
		t.Error("store-fitted index has no model")
	}
}

func TestFamilyKeyNormalization(t *testing.T) {
	a := synthFamily()
	a.Ranks, a.ClockHz, a.KeepTrace = 4, 1.6e9, true
	b := synthFamily()
	b.Ranks = 32
	if familyKey(a) != familyKey(b) {
		t.Error("rank/clock/trace variations split the family")
	}
	c := b
	c.Benchmark = "other"
	if familyKey(b) == familyKey(c) {
		t.Error("different benchmarks share a family")
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func countSamples(idx *Index) (int, int) {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	n := 0
	for _, f := range idx.families {
		f.mu.Lock()
		n += len(f.samples)
		f.mu.Unlock()
	}
	return n, len(idx.families)
}

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
