package surrogate

// linFit is a two-parameter least-squares line y = a + b*x, the
// workhorse behind every clock-axis fit: the wall model t0 + t1*(1/f),
// the chip-power model a + b*kappa(f), and the DRAM-energy model
// c0*wall + c1 are all linear in one transformed regressor.
type linFit struct {
	a, b float64
}

// fitLine solves min sum (a + b*x_i - y_i)^2 via the normal equations.
// A degenerate design (all x equal, or fewer than two points) collapses
// to the mean with zero slope, so callers never see NaN coefficients.
func fitLine(xs, ys []float64) linFit {
	n := float64(len(xs))
	if len(xs) == 0 {
		return linFit{}
	}
	var sx, sy, sxx, sxy float64
	for i, x := range xs {
		sx += x
		sy += ys[i]
		sxx += x * x
		sxy += x * ys[i]
	}
	det := n*sxx - sx*sx
	// Relative degeneracy test: det underflows quadratically when the
	// x spread shrinks, so compare against the magnitude of sxx.
	if det <= 1e-12*n*sxx || len(xs) < 2 {
		return linFit{a: sy / n}
	}
	b := (n*sxy - sx*sy) / det
	return linFit{a: (sy - b*sx) / n, b: b}
}

// at evaluates the line.
func (l linFit) at(x float64) float64 { return l.a + l.b*x }
