// Package surrogate is the analytic fast tier of the two-tier oracle:
// per-(benchmark, cluster) models fitted from exact simulation results
// already observed (in process, or persisted in the campaign store)
// across the rank and clock axes, answering wall/energy/EDP queries in
// microseconds with a self-reported error bound.
//
// The model form follows the structure of the simulated physics rather
// than a generic regressor: the rank axis uses shape-preserving
// monotone PCHIP interpolation (scaling curves saturate, they do not
// ring), and the clock axis uses the DVFS decomposition the machine
// model itself is built from — wall = t0 + t1/f, package energy =
// (static + dynamic·κ(f))·wall with κ the CMOS power factor, DRAM
// energy affine in wall. Every model carries a leave-one-out
// cross-validated relative error bound; queries outside the fitted
// hull, or against a model whose bound exceeds the index tolerance,
// are refused so the campaign scheduler falls back to the exact
// discrete-event engine (and feeds the fresh result back in, see
// campaign.Observer). internal/surrogate/validate holds the
// cross-validation harness that keeps the bound honest.
package surrogate

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// DefaultMaxBound is the default accuracy tolerance: models whose
// self-reported LOO error bound exceeds it refuse all queries, pushing
// callers back to the exact tier.
const DefaultMaxBound = 0.25

// familyKey is the identity of a model family: the canonical job key
// with the two fitted axes (ranks, clock) and the trace flag zeroed
// out, so every sweep point of one (benchmark, class, cluster, options,
// network) study lands in one family. The "f1-" prefix versions the
// normalization; model files persist under an "m1-" prefix (see
// persist.go), distinct from the store's "v1-" records by construction.
func familyKey(rs spec.RunSpec) string {
	rs.Ranks = 0
	rs.ClockHz = 0
	rs.KeepTrace = false
	sum := sha256.Sum256([]byte(campaign.Canonical(rs)))
	return "f1-" + hex.EncodeToString(sum[:])
}

// family accumulates one family's observed grid points and caches its
// fitted model. Samples are deduplicated by (ranks, quantized clock):
// results for one grid point are interchangeable by construction (the
// simulator is deterministic), so first write wins.
type family struct {
	mu      sync.Mutex
	norm    spec.RunSpec // family-normalized spec; Cluster non-nil
	report  bench.RunReport
	samples map[gridPoint]sample
	dirty   bool
	model   atomic.Pointer[Model]
}

// gridPoint keys a sample inside a family. The clock is stored in kHz
// to keep the map key integral.
type gridPoint struct {
	ranks    int
	clockKHz int64
}

// fitted returns the family's current model, refitting first if new
// samples arrived since the last fit. Nil means the grid is still too
// sparse.
func (f *family) fitted() *Model {
	if !f.isDirty() {
		return f.model.Load()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dirty {
		ss := make([]sample, 0, len(f.samples))
		for _, s := range f.samples {
			ss = append(ss, s)
		}
		f.model.Store(fitModel(f.norm, f.report, ss))
		f.dirty = false
	}
	return f.model.Load()
}

func (f *family) isDirty() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dirty
}

// Index is the surrogate tier's front door: it owns every fitted
// family, implements campaign.Predictor (Predict) and campaign.Observer
// (Observe), and is safe for concurrent use. The zero value is not
// usable; construct with NewIndex.
type Index struct {
	// MaxBound is the accuracy tolerance: a model whose self-reported
	// error bound exceeds it refuses all queries. Set before serving.
	MaxBound float64

	mu       sync.RWMutex
	families map[string]*family

	hits     atomic.Int64
	refused  atomic.Int64
	noModel  atomic.Int64
	observed atomic.Int64
}

// refusedBoundErr wraps campaign.ErrRefused for a model too loose to
// trust.
func refusedBoundErr(bound, tolerance float64) error {
	return fmt.Errorf("%w: model error bound %.3f exceeds tolerance %.3f",
		campaign.ErrRefused, bound, tolerance)
}

// NewIndex returns an empty index with the default tolerance.
func NewIndex() *Index {
	return &Index{MaxBound: DefaultMaxBound, families: make(map[string]*family)}
}

// normSampleClock maps an observed result's clock onto the family grid:
// zero (no override) means the cluster's base clock; overrides are
// already ladder-snapped by spec.Run.
func normSampleClock(rs spec.RunSpec) float64 {
	if rs.ClockHz > 0 {
		return rs.ClockHz
	}
	return rs.Cluster.CPU.BaseClockHz
}

// Observe feeds one exact result into its family, marking the family
// for refit on the next query. Trace-keeping results are projected like
// any other (the fitted quantities ignore the timeline); results
// without a cluster are ignored.
func (x *Index) Observe(res spec.RunResult) {
	if res.Spec.Cluster == nil || res.Spec.Ranks <= 0 || res.Usage.Wall <= 0 {
		return
	}
	key := familyKey(res.Spec)
	x.mu.RLock()
	f := x.families[key]
	x.mu.RUnlock()
	if f == nil {
		norm := res.Spec
		norm.Ranks = 0
		norm.ClockHz = 0
		norm.KeepTrace = false
		x.mu.Lock()
		if f = x.families[key]; f == nil {
			f = &family{norm: norm, report: res.Report, samples: make(map[gridPoint]sample)}
			x.families[key] = f
		}
		x.mu.Unlock()
	}
	hz := normSampleClock(res.Spec)
	gp := gridPoint{ranks: res.Spec.Ranks, clockKHz: int64(hz / 1e3)}
	f.mu.Lock()
	if _, seen := f.samples[gp]; !seen {
		f.samples[gp] = newSample(res.Spec.Ranks, hz, res.Usage)
		f.dirty = true
	}
	f.mu.Unlock()
	x.observed.Add(1)
}

// Lookup resolves the fitted model covering a spec's family, refitting
// if needed. The second return is false when no model exists yet or the
// family grid is too sparse. Benchmarks use this to hoist the
// (allocating) family resolution out of the timed loop: the returned
// Model's Predict is allocation-free.
func (x *Index) Lookup(rs spec.RunSpec) (*Model, bool) {
	if rs.Cluster == nil {
		return nil, false
	}
	x.mu.RLock()
	f := x.families[familyKey(rs)]
	x.mu.RUnlock()
	if f == nil {
		return nil, false
	}
	m := f.fitted()
	return m, m != nil
}

// Predict implements campaign.Predictor: it answers from the fitted
// family model, or reports campaign.ErrNoModel / campaign.ErrRefused so
// the scheduler falls back to the exact tier (counting the reason).
func (x *Index) Predict(rs spec.RunSpec) (campaign.Predicted, error) {
	m, ok := x.Lookup(rs)
	if !ok {
		x.noModel.Add(1)
		return campaign.Predicted{}, campaign.ErrNoModel
	}
	p, err := m.Predict(rs.Ranks, rs.ClockHz)
	if err != nil {
		x.refused.Add(1)
		return campaign.Predicted{}, err
	}
	maxBound := x.MaxBound
	if maxBound <= 0 {
		maxBound = DefaultMaxBound
	}
	if p.Bound > maxBound {
		x.refused.Add(1)
		return campaign.Predicted{}, refusedBoundErr(p.Bound, maxBound)
	}
	x.hits.Add(1)
	return campaign.Predicted{Result: m.synthesize(rs, p), Bound: p.Bound}, nil
}

// Counters returns the index's own served/refused/no-model/observed
// totals — the model-side view behind the scheduler's Surrogate* stats.
func (x *Index) Counters() (hits, refused, noModel, observed int64) {
	return x.hits.Load(), x.refused.Load(), x.noModel.Load(), x.observed.Load()
}

// Models returns how many families currently hold a fitted model (and
// how many families exist at all) — the /statsz inventory numbers.
func (x *Index) Models() (fitted, families int) {
	x.mu.RLock()
	fams := make([]*family, 0, len(x.families))
	for _, f := range x.families {
		fams = append(fams, f)
	}
	x.mu.RUnlock()
	for _, f := range fams {
		if f.fitted() != nil {
			fitted++
		}
	}
	return fitted, len(fams)
}

// FitStore bulk-loads every record persisted in a campaign store into
// the index — the daemon's warm-start path. Returns the number of
// records observed.
func (x *Index) FitStore(st *campaign.DirStore) (int, error) {
	n := 0
	err := st.Walk(func(rec campaign.Record) error {
		x.Observe(spec.RunResult{Spec: rec.Spec, Usage: rec.Usage, Report: rec.Report})
		n++
		return nil
	})
	return n, err
}
