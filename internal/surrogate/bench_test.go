package surrogate

import "testing"

// BenchmarkSurrogateQuery measures the steady-state surrogate answer
// path: family resolution is hoisted out (Lookup allocates the family
// key once), the timed loop is Model.Predict — pure arithmetic over the
// fitted arrays. The benchgate pipeline holds this at 0 allocs/op.
func BenchmarkSurrogateQuery(b *testing.B) {
	idx := seedIndex()
	fam := synthFamily()
	fam.Ranks = 13
	m, ok := idx.Lookup(fam)
	if !ok {
		b.Fatal("no fitted model for seeded family")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := m.Predict(13, 1.6e9)
		if err != nil {
			b.Fatal(err)
		}
		if p.Wall <= 0 {
			b.Fatal("non-positive wall prediction")
		}
	}
}

// BenchmarkSurrogatePredictEndToEnd includes family resolution and
// result synthesis — the path campaign.Scheduler actually calls per
// fast-mode submission.
func BenchmarkSurrogatePredictEndToEnd(b *testing.B) {
	idx := seedIndex()
	fam := synthFamily()
	fam.Ranks = 13
	fam.ClockHz = 1.6e9
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Predict(fam); err != nil {
			b.Fatal(err)
		}
	}
}
