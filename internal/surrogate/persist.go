package surrogate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// modelFormat is the schema generation of persisted model files; bump
// it whenever the sample projection or the family normalization
// changes, so stale files degrade to "no model" instead of fitting
// garbage.
const modelFormat = 1

// modelPrefix distinguishes model files from the store's "v1-"
// simulation records: scripts/cache_stats.sh reports the two classes
// separately and its --prune mode evicts raw records before fitted
// models.
const modelPrefix = "m1-"

// modelFile is the persisted form of one family: the normalized spec,
// the representative report, and the raw observed samples. Persisting
// samples rather than fitted coefficients keeps the file format
// independent of the fitting internals — a load refits with the current
// code.
type modelFile struct {
	Format  int             `json:"format"`
	Key     string          `json:"key"` // family key ("f1-...")
	Bench   string          `json:"bench"`
	Cluster string          `json:"cluster"`
	Spec    spec.RunSpec    `json:"spec"`
	Report  bench.RunReport `json:"report"`
	Samples []sampleJSON    `json:"samples"`
}

// sampleJSON is one grid point in grep-friendly named form.
type sampleJSON struct {
	Ranks       int     `json:"ranks"`
	ClockHz     float64 `json:"clock_hz"`
	Wall        float64 `json:"wall"`
	FlopsScalar float64 `json:"flops_scalar"`
	FlopsSIMD   float64 `json:"flops_simd"`
	BytesL2     float64 `json:"bytes_l2"`
	BytesL3     float64 `json:"bytes_l3"`
	BytesMem    float64 `json:"bytes_mem"`
	TimeExec    float64 `json:"time_exec"`
	TimeStall   float64 `json:"time_stall"`
	TimeMPI     float64 `json:"time_mpi"`
	ChipEnergy  float64 `json:"chip_energy"`
	DRAMEnergy  float64 `json:"dram_energy"`
}

func toJSON(s sample) sampleJSON {
	return sampleJSON{
		Ranks: s.ranks, ClockHz: s.clockHz,
		Wall:        s.vals[qWall],
		FlopsScalar: s.vals[qFlopsScalar],
		FlopsSIMD:   s.vals[qFlopsSIMD],
		BytesL2:     s.vals[qBytesL2],
		BytesL3:     s.vals[qBytesL3],
		BytesMem:    s.vals[qBytesMem],
		TimeExec:    s.vals[qTimeExec],
		TimeStall:   s.vals[qTimeStall],
		TimeMPI:     s.vals[qTimeMPI],
		ChipEnergy:  s.vals[qChipE],
		DRAMEnergy:  s.vals[qDRAME],
	}
}

func fromJSON(j sampleJSON) sample {
	return sample{ranks: j.Ranks, clockHz: j.ClockHz, vals: [nQuant]float64{
		qWall:        j.Wall,
		qFlopsScalar: j.FlopsScalar,
		qFlopsSIMD:   j.FlopsSIMD,
		qBytesL2:     j.BytesL2,
		qBytesL3:     j.BytesL3,
		qBytesMem:    j.BytesMem,
		qTimeExec:    j.TimeExec,
		qTimeStall:   j.TimeStall,
		qTimeMPI:     j.TimeMPI,
		qChipE:       j.ChipEnergy,
		qDRAME:       j.DRAMEnergy,
	}}
}

// Save persists every family's observed samples under dir, one
// "m1-<family-hash>.json" per family, written atomically. The natural
// dir is campaign.DirStore.ModelsDir(), keeping both oracle tiers under
// one -cache-dir.
func (x *Index) Save(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("surrogate: saving models: %w", err)
	}
	x.mu.RLock()
	keys := make([]string, 0, len(x.families))
	for k := range x.families {
		keys = append(keys, k)
	}
	fams := make([]*family, 0, len(keys))
	for _, k := range keys {
		fams = append(fams, x.families[k])
	}
	x.mu.RUnlock()

	saved := 0
	for i, f := range fams {
		f.mu.Lock()
		mf := modelFile{
			Format:  modelFormat,
			Key:     keys[i],
			Bench:   f.norm.Benchmark,
			Spec:    f.norm,
			Report:  f.report,
			Samples: make([]sampleJSON, 0, len(f.samples)),
		}
		if f.norm.Cluster != nil {
			mf.Cluster = f.norm.Cluster.Name
		}
		for _, s := range f.samples {
			mf.Samples = append(mf.Samples, toJSON(s))
		}
		f.mu.Unlock()
		if err := writeModelFile(dir, keys[i], mf); err != nil {
			return saved, err
		}
		saved++
	}
	return saved, nil
}

// modelFileName maps a family key to its on-disk basename.
func modelFileName(familyKey string) string {
	return modelPrefix + strings.TrimPrefix(familyKey, "f1-") + ".json"
}

func writeModelFile(dir, key string, mf modelFile) error {
	data, err := json.Marshal(mf)
	if err != nil {
		return fmt.Errorf("surrogate: encode model %s: %w", key, err)
	}
	name := filepath.Join(dir, modelFileName(key))
	tmp, err := os.CreateTemp(dir, ".model.tmp-")
	if err != nil {
		return fmt.Errorf("surrogate: save model %s: %w", key, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("surrogate: save model %s: %v/%v", key, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), name); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("surrogate: save model %s: %w", key, err)
	}
	return nil
}

// Load seeds the index from every model file under dir. Corrupt,
// stale-format, or mis-keyed files are skipped — they degrade to
// no-model fallbacks, never to errors. Returns how many families were
// loaded.
func (x *Index) Load(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("surrogate: loading models: %w", err)
	}
	loaded := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, modelPrefix) || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var mf modelFile
		if err := json.Unmarshal(data, &mf); err != nil {
			continue
		}
		if mf.Format != modelFormat || mf.Spec.Cluster == nil {
			continue
		}
		// Re-derive the family key from the spec: a hand-moved or
		// corrupted file must not alias another family.
		key := familyKey(mf.Spec)
		if mf.Key != key || modelFileName(key) != name {
			continue
		}
		x.seedFamily(key, mf)
		loaded++
	}
	return loaded, nil
}

// seedFamily installs a loaded family, merging samples into any
// existing one (first write per grid point wins, matching Observe).
func (x *Index) seedFamily(key string, mf modelFile) {
	x.mu.Lock()
	f := x.families[key]
	if f == nil {
		f = &family{norm: mf.Spec, report: mf.Report, samples: make(map[gridPoint]sample)}
		x.families[key] = f
	}
	x.mu.Unlock()
	f.mu.Lock()
	for _, j := range mf.Samples {
		if j.Ranks <= 0 || j.Wall <= 0 {
			continue
		}
		gp := gridPoint{ranks: j.Ranks, clockKHz: int64(j.ClockHz / 1e3)}
		if _, seen := f.samples[gp]; !seen {
			f.samples[gp] = fromJSON(j)
			f.dirty = true
		}
	}
	f.mu.Unlock()
}
