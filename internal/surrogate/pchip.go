package surrogate

// pchip is a fitted shape-preserving piecewise-cubic Hermite interpolant
// (Fritsch–Carlson PCHIP): it passes through every knot, never
// overshoots between knots, and preserves local monotonicity — exactly
// the behaviour wanted for scaling curves, where a classic cubic spline
// would ring around the saturation knee. Evaluation is allocation-free.
type pchip struct {
	x []float64 // strictly increasing knots
	y []float64 // values at the knots
	d []float64 // Fritsch–Carlson derivatives at the knots
}

// fitPCHIP builds the interpolant over strictly increasing xs. It
// panics on mismatched lengths; callers guarantee len >= 2.
func fitPCHIP(xs, ys []float64) pchip {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("surrogate: pchip needs >= 2 matched points")
	}
	n := len(xs)
	h := make([]float64, n-1)     // interval widths
	delta := make([]float64, n-1) // secant slopes
	for i := 0; i < n-1; i++ {
		h[i] = xs[i+1] - xs[i]
		delta[i] = (ys[i+1] - ys[i]) / h[i]
	}
	d := make([]float64, n)
	// Interior derivatives: zero at local extrema (sign change or flat
	// secant), else the weighted harmonic mean of the two secants — the
	// Fritsch–Carlson choice that guarantees monotonicity per interval.
	for i := 1; i < n-1; i++ {
		if delta[i-1]*delta[i] <= 0 {
			d[i] = 0
			continue
		}
		w1 := 2*h[i] + h[i-1]
		w2 := h[i] + 2*h[i-1]
		d[i] = (w1 + w2) / (w1/delta[i-1] + w2/delta[i])
	}
	d[0] = endSlope(h[0], delta[0], hAt(h, 1), deltaAt(delta, 1))
	d[n-1] = endSlope(h[n-2], delta[n-2], hAt(h, n-3), deltaAt(delta, n-3))
	return pchip{x: xs, y: ys, d: d}
}

func hAt(h []float64, i int) float64 {
	if i < 0 || i >= len(h) {
		return 0
	}
	return h[i]
}

func deltaAt(delta []float64, i int) float64 {
	if i < 0 || i >= len(delta) {
		return 0
	}
	return delta[i]
}

// endSlope is the standard shape-preserving three-point endpoint
// formula, clamped so the boundary interval cannot overshoot. h0/delta0
// belong to the boundary interval, h1/delta1 to its neighbour (zero
// when only one interval exists, degrading to the secant slope).
func endSlope(h0, delta0, h1, delta1 float64) float64 {
	if h1 == 0 {
		return delta0
	}
	d := ((2*h0+h1)*delta0 - h0*delta1) / (h0 + h1)
	if d*delta0 <= 0 {
		return 0
	}
	if delta0*delta1 < 0 && abs(d) > 3*abs(delta0) {
		return 3 * delta0
	}
	return d
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// eval interpolates at q, clamping outside the knot range (the model
// layer refuses out-of-hull queries before eval is reached; the clamp
// only defends LOO probes landing exactly on a boundary). Zero allocs.
func (p pchip) eval(q float64) float64 {
	n := len(p.x)
	if q <= p.x[0] {
		return p.y[0]
	}
	if q >= p.x[n-1] {
		return p.y[n-1]
	}
	// Binary search for the interval with x[i] <= q < x[i+1].
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.x[mid] <= q {
			lo = mid
		} else {
			hi = mid
		}
	}
	h := p.x[lo+1] - p.x[lo]
	t := (q - p.x[lo]) / h
	t2 := t * t
	t3 := t2 * t
	h00 := 2*t3 - 3*t2 + 1
	h10 := t3 - 2*t2 + t
	h01 := -2*t3 + 3*t2
	h11 := t3 - t2
	return p.y[lo]*h00 + h*p.d[lo]*h10 + p.y[lo+1]*h01 + h*p.d[lo+1]*h11
}
