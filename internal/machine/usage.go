package machine

// Usage is the aggregated resource/energy record of one simulated job.
// It is the raw material for all LIKWID/RAPL-style derived metrics in
// package perf and for the figures of the paper.
type Usage struct {
	// Cluster is the cluster name; Ranks/Nodes the job geometry.
	Cluster string
	Ranks   int
	Nodes   int

	// Wall is the job wall-clock (virtual) time in seconds.
	Wall float64

	// Flop and traffic totals over all ranks.
	FlopsScalar float64
	FlopsSIMD   float64
	BytesL2     float64
	BytesL3     float64
	BytesMem    float64

	// Cumulative per-core time partition over all ranks (seconds).
	TimeExec  float64
	TimeStall float64
	TimeMPI   float64

	// ChipEnergy is package energy over all allocated sockets (J),
	// including baseline; DRAMEnergy likewise for memory (J).
	ChipEnergy float64
	DRAMEnergy float64

	// SocketChipPower is the average package power per allocated socket
	// (W), after the TDP clamp.
	SocketChipPower []float64
	// DomainDRAMPower is the average DRAM power per allocated domain (W).
	DomainDRAMPower []float64
	// DomainBytesMem is the DRAM traffic per allocated domain (B).
	DomainBytesMem []float64
}

// Usage aggregates the per-rank statistics into a job-level record,
// applying the power model: per-socket package power is baseline plus
// dynamic core power averaged over the wall time, clamped at the TDP cap;
// DRAM energy is background power plus a per-byte cost of traffic.
func (s *System) Usage() Usage {
	s.Finish()
	cpu := &s.spec.CPU
	u := Usage{
		Cluster: s.spec.Name,
		Ranks:   s.ranks,
		Nodes:   s.nodes,
		Wall:    s.wall,
	}
	sockets := s.nodes * cpu.SocketsPerNode
	domains := s.nodes * cpu.DomainsPerNode()
	sockDyn := make([]float64, sockets)
	u.DomainBytesMem = make([]float64, domains)

	for r := range s.rank {
		st := &s.rank[r]
		u.FlopsScalar += st.FlopsScalar
		u.FlopsSIMD += st.FlopsSIMD
		u.BytesL2 += st.BytesL2
		u.BytesL3 += st.BytesL3
		u.BytesMem += st.BytesMem
		u.TimeExec += st.TimeExec
		u.TimeStall += st.TimeStall
		u.TimeMPI += st.TimeMPI
		sockDyn[st.Placement.GlobalSocket] += st.EnergyDyn
		u.DomainBytesMem[st.Placement.GlobalDomain] += st.BytesMem
	}

	wall := s.wall
	if wall <= 0 {
		wall = 1e-12 // avoid division by zero for degenerate jobs
	}
	u.SocketChipPower = make([]float64, sockets)
	pcap := cpu.TDPPerSocket * cpu.TDPCapFraction
	for i := range sockDyn {
		p := cpu.BasePowerPerSocket + sockDyn[i]/wall
		if p > pcap {
			p = pcap
		}
		u.SocketChipPower[i] = p
		u.ChipEnergy += p * wall
	}
	u.DomainDRAMPower = make([]float64, domains)
	for d := range u.DomainBytesMem {
		p := cpu.DRAMIdlePerDomain + cpu.DRAMEnergyPerByte*u.DomainBytesMem[d]/wall
		u.DomainDRAMPower[d] = p
		u.DRAMEnergy += p * wall
	}
	return u
}

// Flops returns total DP flops.
func (u Usage) Flops() float64 { return u.FlopsScalar + u.FlopsSIMD }

// SIMDRatio returns the fraction of flops executed with SIMD instructions,
// the paper's "vectorization ratio".
func (u Usage) SIMDRatio() float64 {
	f := u.Flops()
	if f == 0 {
		return 0
	}
	return u.FlopsSIMD / f
}

// PerfFlops returns job performance in flop/s.
func (u Usage) PerfFlops() float64 { return u.Flops() / u.Wall }

// PerfFlopsSIMD returns the SIMD-only performance in flop/s (the paper's
// "AVX-DP" curves).
func (u Usage) PerfFlopsSIMD() float64 { return u.FlopsSIMD / u.Wall }

// MemBandwidth returns average memory bandwidth (B/s) over the job: the
// paper's methodology of memory data volume over wall-clock time.
func (u Usage) MemBandwidth() float64 { return u.BytesMem / u.Wall }

// L3Bandwidth and L2Bandwidth return average cache bandwidths (B/s).
func (u Usage) L3Bandwidth() float64 { return u.BytesL3 / u.Wall }

// L2Bandwidth returns average L2 bandwidth (B/s).
func (u Usage) L2Bandwidth() float64 { return u.BytesL2 / u.Wall }

// ChipPower returns average package power summed over sockets (W).
func (u Usage) ChipPower() float64 { return u.ChipEnergy / u.Wall }

// DRAMPower returns average DRAM power summed over domains (W).
func (u Usage) DRAMPower() float64 { return u.DRAMEnergy / u.Wall }

// TotalPower returns chip+DRAM average power (W).
func (u Usage) TotalPower() float64 { return u.ChipPower() + u.DRAMPower() }

// TotalEnergy returns chip+DRAM energy (J).
func (u Usage) TotalEnergy() float64 { return u.ChipEnergy + u.DRAMEnergy }

// EDP returns the energy-delay product (J*s) of the job.
func (u Usage) EDP() float64 { return u.TotalEnergy() * u.Wall }

// MPIFraction returns the fraction of cumulative rank time spent in MPI.
func (u Usage) MPIFraction() float64 {
	tot := u.TimeExec + u.TimeStall + u.TimeMPI
	if tot == 0 {
		return 0
	}
	return u.TimeMPI / tot
}

// Scale multiplies all extensive quantities (time, flops, traffic, energy)
// by f, leaving intensive ones (powers, ratios) unchanged. The SPEC
// harness uses this to extrapolate from a simulated subset of iterations
// to the full iteration count of the paper's workloads. Every slice of
// the returned Usage is freshly allocated — the copy shares no backing
// arrays with the receiver, so mutating one never corrupts the other
// (spec.Run keeps both the raw and the scaled record of one job).
func (u Usage) Scale(f float64) Usage {
	u.Wall *= f
	u.FlopsScalar *= f
	u.FlopsSIMD *= f
	u.BytesL2 *= f
	u.BytesL3 *= f
	u.BytesMem *= f
	u.TimeExec *= f
	u.TimeStall *= f
	u.TimeMPI *= f
	u.ChipEnergy *= f
	u.DRAMEnergy *= f
	scaled := make([]float64, len(u.DomainBytesMem))
	for i, v := range u.DomainBytesMem {
		scaled[i] = v * f
	}
	u.DomainBytesMem = scaled
	// Per-socket/domain powers are intensive — values carry over — but
	// the slices still need their own backing arrays.
	u.SocketChipPower = append([]float64(nil), u.SocketChipPower...)
	u.DomainDRAMPower = append([]float64(nil), u.DomainDRAMPower...)
	return u
}
