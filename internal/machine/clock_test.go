package machine

import (
	"math"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/dvfs"
)

// TestWithClockDerivesPeaks checks that a derived cluster re-derives its
// in-core peaks from the new clock while uncore and memory stay flat.
func TestWithClockDerivesPeaks(t *testing.T) {
	a := MustGet("ClusterA")
	d, err := a.WithClock(1.2e9)
	if err != nil {
		t.Fatal(err)
	}
	if d.CPU.BaseClockHz != 1.2e9 {
		t.Fatalf("derived clock %g, want 1.2e9", d.CPU.BaseClockHz)
	}
	ratio := 1.2e9 / a.CPU.BaseClockHz
	if got, want := d.CPU.SIMDPeakPerCore(), a.CPU.SIMDPeakPerCore()*ratio; math.Abs(got-want) > 1 {
		t.Errorf("SIMD peak %g, want %g (scales with clock)", got, want)
	}
	if got, want := d.CPU.L2BandwidthPerCore, a.CPU.L2BandwidthPerCore*ratio; math.Abs(got-want) > 1 {
		t.Errorf("L2 bandwidth %g, want %g (core-clocked)", got, want)
	}
	// Uncore, memory, baseline and DRAM power are frequency independent.
	if d.CPU.MemSaturatedPerDomain != a.CPU.MemSaturatedPerDomain {
		t.Error("memory bandwidth moved with clock")
	}
	if d.CPU.L3BandwidthPerDomain != a.CPU.L3BandwidthPerDomain {
		t.Error("L3 domain bandwidth moved with clock")
	}
	if d.CPU.BasePowerPerSocket != a.CPU.BasePowerPerSocket {
		t.Error("baseline power moved with clock")
	}
	if d.CPU.DRAMEnergyPerByte != a.CPU.DRAMEnergyPerByte {
		t.Error("DRAM energy per byte moved with clock")
	}
	// Dynamic core power follows f*V(f)^2: strictly below linear scaling.
	if d.CPU.CoreDynMaxPower >= a.CPU.CoreDynMaxPower*ratio {
		t.Errorf("core dynamic power %g not below linear %g",
			d.CPU.CoreDynMaxPower, a.CPU.CoreDynMaxPower*ratio)
	}
	// The original spec is untouched.
	if a.CPU.BaseClockHz != MustGet("ClusterA").CPU.BaseClockHz {
		t.Error("WithClock mutated its receiver")
	}
}

// TestWithClockComposes checks derivation is exact under composition:
// re-deriving a derived spec back to a clock equals deriving it directly.
func TestWithClockComposes(t *testing.T) {
	a := MustGet("ClusterA")
	direct, err := a.WithClock(2.0e9)
	if err != nil {
		t.Fatal(err)
	}
	low, err := a.WithClock(1.0e9)
	if err != nil {
		t.Fatal(err)
	}
	indirect, err := low.WithClock(2.0e9)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	if rel(indirect.CPU.CoreDynMaxPower, direct.CPU.CoreDynMaxPower) > tol ||
		rel(indirect.CPU.CoreStallPower, direct.CPU.CoreStallPower) > tol ||
		rel(indirect.CPU.CoreMPIPower, direct.CPU.CoreMPIPower) > tol ||
		rel(indirect.CPU.L2BandwidthPerCore, direct.CPU.L2BandwidthPerCore) > tol {
		t.Errorf("composed derivation differs from direct:\n%+v\nvs\n%+v",
			indirect.CPU, direct.CPU)
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestWithClockRejects covers the error paths: out-of-ladder clocks and
// clusters without a DVFS model.
func TestWithClockRejects(t *testing.T) {
	a := MustGet("ClusterA")
	for _, hz := range []float64{0.1e9, 5e9} {
		if _, err := a.WithClock(hz); err == nil {
			t.Errorf("clock %g Hz outside ladder accepted", hz)
		}
	}
	// Quantization snaps off-step requests onto the ladder.
	d, err := a.WithClock(1.234e9)
	if err != nil {
		t.Fatal(err)
	}
	if d.CPU.BaseClockHz != 1.2e9 {
		t.Errorf("off-step clock quantized to %g, want 1.2e9", d.CPU.BaseClockHz)
	}

	pinned := MustGet("ClusterB")
	pinned.CPU.DVFS = dvfs.Model{}
	if _, err := pinned.WithClock(1.5e9); err == nil {
		t.Error("cluster without DVFS accepted a clock change")
	}
	same, err := pinned.WithClock(pinned.CPU.BaseClockHz)
	if err != nil {
		t.Errorf("pinned cluster rejected its own base clock: %v", err)
	} else if same.CPU.BaseClockHz != pinned.CPU.BaseClockHz {
		t.Error("identity derivation changed the clock")
	}
}

// TestWithClockCached pins the memoization contract: repeated requests
// (including off-step requests snapping to the same ladder point) share
// one derived spec identical to a fresh WithClock derivation, and error
// paths behave exactly like the uncached method.
func TestWithClockCached(t *testing.T) {
	a := MustGet("ClusterA")
	d1, err := a.WithClockCached(1.6e9)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.WithClockCached(1.6e9)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("repeated WithClockCached returned distinct derivations")
	}
	// An off-step request snapping to the same ladder point shares the
	// same memo entry.
	d3, err := a.WithClockCached(1.61e9)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d1 {
		t.Error("snapped request did not share the ladder point's memo entry")
	}
	fresh, err := a.WithClock(1.6e9)
	if err != nil {
		t.Fatal(err)
	}
	if *fresh != *d1 {
		t.Error("cached derivation differs from a fresh WithClock")
	}
	// A cluster with the same hardware but a different identity (or a
	// mutated copy) must not collide with the cached entry.
	b := MustGet("ClusterA")
	b.CPU.L2PerCore *= 2
	m1, err := b.WithClockCached(1.6e9)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == d1 {
		t.Error("mutated cluster shared the unmutated cluster's memo entry")
	}
	if _, err := a.WithClockCached(9e9); err == nil {
		t.Error("out-of-range clock accepted by cached path")
	}
	pinned := MustGet("ClusterB")
	pinned.CPU.DVFS = dvfs.Model{}
	if _, err := pinned.WithClockCached(1.5e9); err == nil {
		t.Error("cluster without DVFS accepted a clock change via cache")
	}
}
