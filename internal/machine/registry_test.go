package machine

import (
	"strings"
	"testing"
)

func TestRegistryResolvesPaperClusters(t *testing.T) {
	for _, tc := range []struct{ query, want string }{
		{"ClusterA", "ClusterA"},
		{"ClusterB", "ClusterB"},
		{"A", "ClusterA"},
		{"b", "ClusterB"},
		{"clustera", "ClusterA"},
	} {
		cs, err := Get(tc.query)
		if err != nil {
			t.Errorf("Get(%q): %v", tc.query, err)
			continue
		}
		if cs.Name != tc.want {
			t.Errorf("Get(%q) = %s, want %s", tc.query, cs.Name, tc.want)
		}
	}
}

func TestRegistryUnknownClusterListsNames(t *testing.T) {
	_, err := Get("no-such-cluster")
	if err == nil || !strings.Contains(err.Error(), "ClusterA") {
		t.Fatalf("error should list registered names, got: %v", err)
	}
}

func TestGetReturnsFreshCopies(t *testing.T) {
	a1 := MustGet("ClusterA")
	a1.CPU.MemSaturatedPerDomain = 1 // mutate the returned instance
	a2 := MustGet("ClusterA")
	if a2.CPU.MemSaturatedPerDomain == 1 {
		t.Fatal("mutating a Get result leaked into the registry")
	}
}

func TestRegisterRejectsBadEntries(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate", func() { Register("ClusterA", ClusterA) })
	mustPanic("nil factory", func() { Register("X", nil) })
	mustPanic("name mismatch", func() { Register("WrongName", ClusterA) })
	mustPanic("invalid spec", func() {
		Register("Broken", func() *ClusterSpec {
			cs := ClusterA()
			cs.Name = "Broken"
			cs.MaxNodes = 0
			return cs
		})
	})
}

// TestFactoryMayDeriveFromRegistry pins the documented custom-cluster
// pattern: a factory that starts from another registered preset must
// resolve it without deadlocking on the registry lock.
func TestFactoryMayDeriveFromRegistry(t *testing.T) {
	Register("DerivedTest", func() *ClusterSpec {
		cs := MustGet("ClusterA")
		cs.Name = "DerivedTest"
		cs.CPU.MemTheoreticalPerDomain *= 2
		cs.CPU.MemSaturatedPerDomain *= 2
		return cs
	})
	done := make(chan *ClusterSpec)
	go func() { done <- MustGet("DerivedTest") }()
	cs := <-done
	if cs.Name != "DerivedTest" || cs.CPU.MemSaturatedPerDomain <= MustGet("ClusterA").CPU.MemSaturatedPerDomain {
		t.Fatalf("derived cluster wrong: %+v", cs)
	}
}

func TestNamesAndAll(t *testing.T) {
	names := Names()
	if len(names) < 2 || names[0] != "ClusterA" || names[1] != "ClusterB" {
		t.Fatalf("Names() = %v, want sorted list starting with the paper clusters", names)
	}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() has %d entries, Names() has %d", len(all), len(names))
	}
	for i, cs := range all {
		if cs.Name != names[i] {
			t.Errorf("All()[%d] = %s, want %s", i, cs.Name, names[i])
		}
	}
}
