package machine

// Phase describes the resource footprint of one compute phase of one MPI
// rank: the work between two MPI calls. Kernel work models produce Phase
// values at paper-scale inputs; the System executes them in virtual time.
type Phase struct {
	// Name labels the phase for traces (e.g. "collide", "cg-spmv").
	Name string

	// FlopsScalar and FlopsSIMD are double-precision flops executed with
	// scalar and AVX-512 instructions respectively. Their ratio is the
	// vectorization ratio the paper reports per benchmark.
	FlopsScalar float64
	FlopsSIMD   float64

	// SIMDEff and ScalarEff are the fractions of the respective peak rates
	// this instruction mix achieves in-core (pipeline/dependency limits).
	// Zero values default to 1.
	SIMDEff   float64
	ScalarEff float64

	// BytesL2 is private L1<->L2 traffic; BytesL3 is L2<->L3 traffic on the
	// shared L3 slice; BytesMem is L3<->DRAM traffic on the ccNUMA domain's
	// memory channels. All in bytes for this rank in this phase.
	BytesL2  float64
	BytesL3  float64
	BytesMem float64

	// CorePenalty multiplies the in-core time; >= 1. It models execution
	// slowdowns that are not extra traffic: TLB shortage, L1 bank
	// conflicts, unfortunate alignment (the lbm fluctuation model).
	CorePenalty float64

	// IrregularFrac in [0,1] is the share of in-core work dominated by
	// irregular/gather accesses; it is scaled by the CPU's
	// IrregularAccessEff. Particle and sweep codes set this high,
	// streaming stencil codes leave it zero.
	IrregularFrac float64

	// HeatFrac in (0,1] scales the per-core dynamic power while executing,
	// relative to the CPU's CoreDynMaxPower (1.0 = hottest code).
	HeatFrac float64
}

// withDefaults returns a copy with zero efficiency/penalty/heat fields
// replaced by neutral values.
func (ph Phase) withDefaults() Phase {
	if ph.SIMDEff <= 0 {
		ph.SIMDEff = 1
	}
	if ph.ScalarEff <= 0 {
		ph.ScalarEff = 1
	}
	if ph.CorePenalty < 1 {
		ph.CorePenalty = 1
	}
	if ph.HeatFrac <= 0 {
		ph.HeatFrac = 0.75
	}
	return ph
}

// Flops returns total DP flops of the phase.
func (ph Phase) Flops() float64 { return ph.FlopsScalar + ph.FlopsSIMD }

// Scale returns the phase with all extensive quantities multiplied by f.
// Used by work models to convert per-unit costs to per-step costs.
func (ph Phase) Scale(f float64) Phase {
	ph.FlopsScalar *= f
	ph.FlopsSIMD *= f
	ph.BytesL2 *= f
	ph.BytesL3 *= f
	ph.BytesMem *= f
	return ph
}

// Add merges another phase's extensive quantities into ph (efficiencies,
// penalty and heat are work-averaged by flops+bytes weight of the inputs).
func (ph Phase) Add(other Phase) Phase {
	wa := ph.weight()
	wb := other.weight()
	tot := wa + wb
	if tot > 0 {
		ph.SIMDEff = (ph.withDefaults().SIMDEff*wa + other.withDefaults().SIMDEff*wb) / tot
		ph.ScalarEff = (ph.withDefaults().ScalarEff*wa + other.withDefaults().ScalarEff*wb) / tot
		ph.CorePenalty = (ph.withDefaults().CorePenalty*wa + other.withDefaults().CorePenalty*wb) / tot
		ph.HeatFrac = (ph.withDefaults().HeatFrac*wa + other.withDefaults().HeatFrac*wb) / tot
	}
	ph.FlopsScalar += other.FlopsScalar
	ph.FlopsSIMD += other.FlopsSIMD
	ph.BytesL2 += other.BytesL2
	ph.BytesL3 += other.BytesL3
	ph.BytesMem += other.BytesMem
	return ph
}

func (ph Phase) weight() float64 {
	return ph.Flops() + ph.BytesL2 + ph.BytesL3 + ph.BytesMem
}

// CacheFit computes the fraction of nominally-memory traffic that still
// reaches DRAM when a rank's working set ws must live in cache of capacity
// cache (per-rank share of L2+L3). The transition is smooth: below
// fitLo x cache the cacheable traffic is fully absorbed, above fitHi x
// cache nothing is absorbed.
//
// This single function drives the paper's cache effects: weather's
// superlinear scaling (Case A), declining per-node memory volume with
// rising rank counts (Fig. 5c,f), and the earlier onset on Sapphire Rapids
// with its larger per-core caches.
func CacheFit(ws, cache float64) float64 {
	const fitLo, fitHi = 0.85, 3.5
	if cache <= 0 {
		return 1
	}
	x := ws / cache
	switch {
	case x <= fitLo:
		return 0
	case x >= fitHi:
		return 1
	default:
		// Smoothstep between the two thresholds.
		t := (x - fitLo) / (fitHi - fitLo)
		return t * t * (3 - 2*t)
	}
}
