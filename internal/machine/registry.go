package machine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory builds a fresh ClusterSpec. The registry stores factories, not
// instances, so every Get returns an independent copy callers may mutate
// freely (ablation studies tweak cache sizes, power floors, ...).
type Factory func() *ClusterSpec

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a named cluster to the global registry. The name must
// match the Name field of the spec the factory produces, the spec must
// validate, and duplicate names panic — registration is a programming
// error caught at init time, mirroring the bench kernel registry.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("machine: registering incomplete cluster")
	}
	cs := f()
	if cs == nil {
		panic(fmt.Sprintf("machine: factory for %q returned nil", name))
	}
	if cs.Name != name {
		panic(fmt.Sprintf("machine: cluster registered as %q but spec is named %q", name, cs.Name))
	}
	if err := cs.Validate(); err != nil {
		panic(fmt.Sprintf("machine: registering invalid cluster %q: %v", name, err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("machine: duplicate cluster %q", name))
	}
	registry[name] = f
}

// Get returns a fresh instance of a registered cluster. Besides exact
// names it accepts the short aliases the paper (and the CLIs) use:
// "A" resolves to "ClusterA", "b" to "ClusterB", and lookup is
// case-insensitive.
//
// The factory runs after the registry lock is released, so factories may
// themselves resolve other clusters (the derive-from-a-preset pattern of
// examples/custom_cluster) without self-deadlocking.
func Get(name string) (*ClusterSpec, error) {
	f, err := lookup(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

func lookup(name string) (Factory, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if f, ok := registry[name]; ok {
		return f, nil
	}
	for _, candidate := range []string{"Cluster" + name, name} {
		for reg, f := range registry {
			if strings.EqualFold(reg, candidate) {
				return f, nil
			}
		}
	}
	return nil, fmt.Errorf("machine: unknown cluster %q (registered: %s)",
		name, strings.Join(namesLocked(), ", "))
}

// MustGet is Get for static, known-registered names; it panics on error.
func MustGet(name string) *ClusterSpec {
	cs, err := Get(name)
	if err != nil {
		panic(err)
	}
	return cs
}

// Names returns all registered cluster names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns a fresh instance of every registered cluster in Names
// order. Like Get, factories run outside the registry lock.
func All() []*ClusterSpec {
	regMu.RLock()
	factories := make([]Factory, 0, len(registry))
	for _, n := range namesLocked() {
		factories = append(factories, registry[n])
	}
	regMu.RUnlock()
	out := make([]*ClusterSpec, 0, len(factories))
	for _, f := range factories {
		out = append(out, f())
	}
	return out
}

func init() {
	Register("ClusterA", ClusterA)
	Register("ClusterB", ClusterB)
}
