package machine

import (
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/sim"
)

// System is the runtime instance of a cluster for one simulated job: it
// owns the per-domain bandwidth resources and all performance/energy
// accounting for a set of block-mapped MPI ranks.
type System struct {
	env   *sim.Env
	spec  *ClusterSpec
	ranks int
	nodes int

	memRes []*sim.PSResource // one per ccNUMA domain of allocated nodes
	l3Res  []*sim.PSResource

	rank []RankStats
	// bound tracks each rank's in-progress compute phase for the
	// adaptive-lookahead oracle; see PhaseEndFloor.
	bound []computeBound

	finished bool
	wall     float64
}

// computeBound is the conservative promise a rank makes while inside
// Compute: the phase cannot end before the fixed in-core time elapses
// nor before its L3/memory flows can possibly drain. All fields are
// zero outside a compute phase.
type computeBound struct {
	until   float64
	l3, mem *sim.Flow
}

// RankStats accumulates raw counters for one rank. All quantities are
// extensive (sums over the simulated run).
type RankStats struct {
	// Placement caches the rank's location.
	Placement Placement

	// FlopsScalar and FlopsSIMD count executed DP flops by instruction kind.
	FlopsScalar float64
	FlopsSIMD   float64

	// BytesL2, BytesL3, BytesMem count data traffic at each level.
	BytesL2  float64
	BytesL3  float64
	BytesMem float64

	// TimeExec is in-core execution time; TimeStall is compute-phase time
	// beyond the in-core time (waiting for shared L3/memory); TimeMPI is
	// time spent blocked inside MPI calls.
	TimeExec  float64
	TimeStall float64
	TimeMPI   float64

	// EnergyDyn is the accumulated per-core dynamic energy (J), i.e.
	// everything above the socket baseline attributable to this core.
	EnergyDyn float64

	// Finish is the virtual time the rank completed its program.
	Finish float64
}

// NewSystem allocates a runtime for n block-mapped ranks on the cluster.
// It panics if n exceeds the cluster capacity, which is a configuration
// error the caller must prevent.
func NewSystem(env *sim.Env, spec *ClusterSpec, n int) *System {
	if n <= 0 {
		panic("machine: NewSystem with no ranks")
	}
	if n > spec.MaxRanks() {
		panic(fmt.Sprintf("machine: %d ranks exceed %s capacity %d", n, spec.Name, spec.MaxRanks()))
	}
	s := &System{}
	s.Reinit(env, spec, n)
	return s
}

// domNames caches per-domain resource names for common domain counts so
// per-job system construction does not Sprintf.
var domNames = func() (d struct{ mem, l3 [128]string }) {
	for i := range d.mem {
		d.mem[i] = fmt.Sprintf("mem-dom%d", i)
		d.l3[i] = fmt.Sprintf("l3-dom%d", i)
	}
	return
}()

func domName(mem bool, i int) string {
	if i < len(domNames.mem) {
		if mem {
			return domNames.mem[i]
		}
		return domNames.l3[i]
	}
	if mem {
		return fmt.Sprintf("mem-dom%d", i)
	}
	return fmt.Sprintf("l3-dom%d", i)
}

// Reinit repoints a pooled System at a new serial environment; see
// ReinitRouted for the partition-aware form.
func (s *System) Reinit(env *sim.Env, spec *ClusterSpec, n int) {
	s.ReinitRouted(sim.UniRouter{E: env}, spec, n)
}

// ReinitRouted repoints a pooled System at a new router, cluster, and
// rank count, reusing the per-domain resource structs and the rank-stats
// slice from previous runs. It resets all accounting to the zero state,
// so a reinitialized System is observationally identical to a fresh one.
// Each ccNUMA domain's L3/memory resources live on the environment of
// the node holding it, so compute phases never touch another partition.
func (s *System) ReinitRouted(rt sim.Router, spec *ClusterSpec, n int) {
	if n <= 0 {
		panic("machine: NewSystem with no ranks")
	}
	if n > spec.MaxRanks() {
		panic(fmt.Sprintf("machine: %d ranks exceed %s capacity %d", n, spec.Name, spec.MaxRanks()))
	}
	s.env, s.spec, s.ranks, s.nodes = rt.NodeEnv(0), spec, n, spec.NodesFor(n)
	s.finished, s.wall = false, 0
	cpu := &spec.CPU
	dpn := cpu.DomainsPerNode()
	domains := s.nodes * dpn
	// The resource slices keep their high-water length across reuses so a
	// campaign oscillating between job shapes never reconstructs them;
	// only the first `domains` entries are live for this job.
	for len(s.memRes) < domains {
		d := len(s.memRes)
		env := rt.NodeEnv(d / dpn)
		s.memRes = append(s.memRes, sim.NewPSResource(env, domName(true, d),
			cpu.MemSaturatedPerDomain, cpu.MemPerCoreMax))
		s.l3Res = append(s.l3Res, sim.NewPSResource(env, domName(false, d),
			cpu.L3BandwidthPerDomain, cpu.L3BandwidthPerCoreMax))
	}
	for d := 0; d < domains; d++ {
		env := rt.NodeEnv(d / dpn)
		s.memRes[d].Reinit(env, domName(true, d), cpu.MemSaturatedPerDomain, cpu.MemPerCoreMax)
		s.l3Res[d].Reinit(env, domName(false, d), cpu.L3BandwidthPerDomain, cpu.L3BandwidthPerCoreMax)
	}
	for len(s.rank) < n {
		s.rank = append(s.rank, RankStats{})
	}
	s.rank = s.rank[:n]
	for r := range s.rank {
		s.rank[r] = RankStats{Placement: spec.Place(r)}
	}
	for len(s.bound) < n {
		s.bound = append(s.bound, computeBound{})
	}
	s.bound = s.bound[:n]
	for r := range s.bound {
		s.bound[r] = computeBound{}
	}
}

// Env returns the simulation environment.
func (s *System) Env() *sim.Env { return s.env }

// Spec returns the cluster specification.
func (s *System) Spec() *ClusterSpec { return s.spec }

// Ranks returns the number of ranks in the job.
func (s *System) Ranks() int { return s.ranks }

// Nodes returns the number of allocated nodes.
func (s *System) Nodes() int { return s.nodes }

// Compute executes one compute phase for a rank, advancing virtual time
// according to the ECM-style cost model: the in-core part (flop streams at
// calibrated efficiency plus private L2 traffic, times the core penalty)
// overlaps with shared L3 and DRAM transfers on the rank's ccNUMA domain.
// The phase ends when the slowest of the three finishes.
func (s *System) Compute(p *sim.Proc, rank int, ph Phase) {
	ph = ph.withDefaults()
	st := &s.rank[rank]
	cpu := &s.spec.CPU
	dom := st.Placement.GlobalDomain

	tCore := ph.FlopsSIMD/(cpu.SIMDPeakPerCore()*ph.SIMDEff) +
		ph.FlopsScalar/(cpu.ScalarPeakPerCore()*ph.ScalarEff)
	// Irregular/gather-heavy work runs at the CPU's irregular-access
	// efficiency; regular streams at nominal speed.
	irrEff := cpu.IrregularAccessEff
	if irrEff <= 0 {
		irrEff = 1
	}
	tCore *= ph.IrregularFrac/irrEff + (1 - ph.IrregularFrac)
	tL2 := ph.BytesL2 / cpu.L2BandwidthPerCore
	tFixed := tCore*ph.CorePenalty + tL2

	start := p.Now()
	var l3Flow, memFlow *sim.Flow
	if ph.BytesL3 > 0 {
		l3Flow = s.l3Res[dom].StartFlow(ph.BytesL3, nil)
	}
	if ph.BytesMem > 0 {
		memFlow = s.memRes[dom].StartFlow(ph.BytesMem, nil)
	}
	s.bound[rank] = computeBound{until: start + tFixed, l3: l3Flow, mem: memFlow}
	if tFixed > 0 {
		p.Wait(tFixed)
	}
	if l3Flow != nil {
		l3Flow.Await(p)
	}
	if memFlow != nil {
		memFlow.Await(p)
	}
	s.bound[rank] = computeBound{}
	dur := p.Now() - start
	stall := dur - tFixed
	if stall < 0 {
		stall = 0
	}

	st.FlopsScalar += ph.FlopsScalar
	st.FlopsSIMD += ph.FlopsSIMD
	st.BytesL2 += ph.BytesL2
	st.BytesL3 += ph.BytesL3
	st.BytesMem += ph.BytesMem
	st.TimeExec += tFixed
	st.TimeStall += stall
	st.EnergyDyn += ph.HeatFrac*cpu.CoreDynMaxPower*tFixed + cpu.CoreStallPower*stall
}

// PhaseEndFloor returns a lower bound on the virtual time the rank's
// in-progress compute phase can end: the fixed in-core deadline and the
// earliest possible finish of its L3/memory flows, whichever is latest.
// The flow bounds self-refresh as resources drain (Flow.EarliestFinish
// accounts accrued work), so a stale promise tightens at every barrier
// rather than pinning the window. Only meaningful while the rank is
// inside Compute; the MPI oracle guards on its own park state.
func (s *System) PhaseEndFloor(rank int) float64 {
	b := &s.bound[rank]
	t := b.until
	if b.l3 != nil {
		if ef := b.l3.EarliestFinish(); ef > t {
			t = ef
		}
	}
	if b.mem != nil {
		if ef := b.mem.EarliestFinish(); ef > t {
			t = ef
		}
	}
	return t
}

// AccountMPI charges dt seconds of MPI busy-wait time (and its power) to a
// rank. The MPI layer calls this for every blocking interval.
func (s *System) AccountMPI(rank int, dt float64) {
	if dt <= 0 {
		return
	}
	st := &s.rank[rank]
	st.TimeMPI += dt
	st.EnergyDyn += s.spec.CPU.CoreMPIPower * dt
}

// RankFinished records the completion time of a rank's program. It only
// touches the rank's own stats slot — the job wall-clock is derived in
// Finish — so ranks on concurrently advancing partitions never share a
// write.
func (s *System) RankFinished(rank int, t float64) {
	if t > s.rank[rank].Finish {
		s.rank[rank].Finish = t
	}
}

// Finish closes accounting; must be called after the event loop returns.
// The job wall-clock is the latest rank finish time.
func (s *System) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	for r := range s.rank {
		if f := s.rank[r].Finish; f > s.wall {
			s.wall = f
		}
	}
	if s.wall == 0 {
		s.wall = s.env.Now()
	}
}

// Wall returns the job wall-clock (virtual) time: the latest rank finish.
func (s *System) Wall() float64 { return s.wall }

// RankStats returns a copy of the raw counters for one rank.
func (s *System) RankStats(rank int) RankStats { return s.rank[rank] }

// MemDomainResource exposes the memory PS resource of a global domain
// (used by tests and ablation benches).
func (s *System) MemDomainResource(d int) *sim.PSResource { return s.memRes[d] }
