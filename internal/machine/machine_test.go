package machine

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/spechpc/spechpc-sim/internal/sim"
	"github.com/spechpc/spechpc-sim/internal/units"
)

func TestPresetsValidate(t *testing.T) {
	for _, cs := range All() {
		if err := cs.Validate(); err != nil {
			t.Errorf("%s: %v", cs.Name, err)
		}
	}
}

func TestClusterGeometry(t *testing.T) {
	a := ClusterA()
	if got := a.CPU.CoresPerNode(); got != 72 {
		t.Errorf("ClusterA cores/node = %d, want 72", got)
	}
	if got := a.CPU.DomainsPerNode(); got != 4 {
		t.Errorf("ClusterA domains/node = %d, want 4", got)
	}
	if got := a.CPU.CoresPerDomain(); got != 18 {
		t.Errorf("ClusterA cores/domain = %d, want 18", got)
	}
	b := ClusterB()
	if got := b.CPU.CoresPerNode(); got != 104 {
		t.Errorf("ClusterB cores/node = %d, want 104", got)
	}
	if got := b.CPU.DomainsPerNode(); got != 8 {
		t.Errorf("ClusterB domains/node = %d, want 8", got)
	}
	if got := b.CPU.CoresPerDomain(); got != 13 {
		t.Errorf("ClusterB cores/domain = %d, want 13", got)
	}
}

func TestPeakRatiosMatchPaper(t *testing.T) {
	// Sect. 4.1.2: "comparing ClusterB with ClusterA the ratio of peak
	// performance and memory bandwidth is 1.2 and 1.5 respectively".
	a, b := ClusterA(), ClusterB()
	peakRatio := b.CPU.NodePeakFlops() / a.CPU.NodePeakFlops()
	if math.Abs(peakRatio-1.2) > 0.02 {
		t.Errorf("node peak ratio B/A = %.3f, want ~1.20", peakRatio)
	}
	bwRatio := (b.CPU.MemTheoreticalPerDomain * float64(b.CPU.DomainsPerNode())) /
		(a.CPU.MemTheoreticalPerDomain * float64(a.CPU.DomainsPerNode()))
	if math.Abs(bwRatio-1.5) > 0.02 {
		t.Errorf("node theoretical bandwidth ratio B/A = %.3f, want ~1.50", bwRatio)
	}
}

func TestPlacementBlockMapping(t *testing.T) {
	a := ClusterA()
	cases := []struct {
		rank                                   int
		node, socket, domain, gSocket, gDomain int
	}{
		{0, 0, 0, 0, 0, 0},
		{17, 0, 0, 0, 0, 0},
		{18, 0, 0, 1, 0, 1},
		{35, 0, 0, 1, 0, 1},
		{36, 0, 1, 2, 1, 2},
		{71, 0, 1, 3, 1, 3},
		{72, 1, 0, 0, 2, 4},
		{100, 1, 0, 1, 2, 5},
	}
	for _, c := range cases {
		p := a.Place(c.rank)
		if p.Node != c.node || p.Socket != c.socket || p.Domain != c.domain ||
			p.GlobalSocket != c.gSocket || p.GlobalDomain != c.gDomain {
			t.Errorf("Place(%d) = %+v, want node=%d socket=%d domain=%d gsock=%d gdom=%d",
				c.rank, p, c.node, c.socket, c.domain, c.gSocket, c.gDomain)
		}
	}
}

func TestPlacementPropertyConsistent(t *testing.T) {
	a, b := ClusterA(), ClusterB()
	f := func(r uint16) bool {
		for _, cs := range []*ClusterSpec{a, b} {
			rank := int(r) % cs.MaxRanks()
			p := cs.Place(rank)
			cpu := &cs.CPU
			if p.Core < 0 || p.Core >= cpu.CoresPerNode() {
				return false
			}
			if p.Domain != p.Core/cpu.CoresPerDomain() {
				return false
			}
			if p.Socket != p.Core/cpu.CoresPerSocket {
				return false
			}
			if p.GlobalDomain != p.Node*cpu.DomainsPerNode()+p.Domain {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodesFor(t *testing.T) {
	a := ClusterA()
	for _, c := range []struct{ ranks, nodes int }{
		{1, 1}, {72, 1}, {73, 2}, {144, 2}, {1152, 16},
	} {
		if got := a.NodesFor(c.ranks); got != c.nodes {
			t.Errorf("NodesFor(%d) = %d, want %d", c.ranks, got, c.nodes)
		}
	}
}

// runPhases executes n ranks each running the same phase sequence and
// returns the usage.
func runPhases(t *testing.T, cs *ClusterSpec, n int, steps int, ph Phase) Usage {
	t.Helper()
	env := sim.NewEnv()
	sys := NewSystem(env, cs, n)
	for r := 0; r < n; r++ {
		r := r
		env.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < steps; i++ {
				sys.Compute(p, r, ph)
			}
			sys.RankFinished(r, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return sys.Usage()
}

func TestComputeBoundPhaseTime(t *testing.T) {
	// Pure SIMD flops at full efficiency on one Ice Lake core:
	// 76.8 Gflop/s peak -> 76.8e9 flops take 1 s.
	a := ClusterA()
	u := runPhases(t, a, 1, 1, Phase{FlopsSIMD: 76.8e9})
	if math.Abs(u.Wall-1.0) > 1e-9 {
		t.Fatalf("wall = %v, want 1.0", u.Wall)
	}
	if math.Abs(u.PerfFlops()-76.8e9) > 1 {
		t.Fatalf("perf = %v, want 76.8e9", u.PerfFlops())
	}
}

func TestMemoryBoundPhaseSingleCore(t *testing.T) {
	// Pure memory traffic on one core: limited by MemPerCoreMax (13 GB/s).
	a := ClusterA()
	u := runPhases(t, a, 1, 1, Phase{BytesMem: 13e9})
	if math.Abs(u.Wall-1.0) > 1e-9 {
		t.Fatalf("wall = %v, want 1.0 (per-core cap)", u.Wall)
	}
}

func TestMemoryBandwidthSaturatesAcrossDomain(t *testing.T) {
	// 18 cores each demanding 13 GB/s = 234 GB/s demand against a 76.5
	// GB/s domain: bandwidth must saturate at the domain limit.
	a := ClusterA()
	u := runPhases(t, a, 18, 1, Phase{BytesMem: 10e9})
	bw := u.MemBandwidth()
	if math.Abs(bw-76.5*units.G) > 0.01*units.G {
		t.Fatalf("saturated bandwidth = %s, want 76.5 GB/s", units.Bandwidth(bw))
	}
}

func TestMemoryBoundSpeedupSaturates(t *testing.T) {
	// Memory-bound phases: speedup within a domain must flatten once the
	// domain bandwidth saturates (around 76.5/13 ~ 6 cores).
	a := ClusterA()
	const total = 72e9 // bytes, strong-scaled across ranks
	strong := func(n int) float64 {
		return runPhases(t, a, n, 1, Phase{BytesMem: total / float64(n)}).Wall
	}
	base := strong(1)
	s6 := base / strong(6)
	s18 := base / strong(18)
	if s6 < 5.0 {
		t.Errorf("speedup at 6 cores = %.2f, want near-linear (>5)", s6)
	}
	if s18 > 7.0 {
		t.Errorf("speedup at 18 cores = %.2f, want saturated (<7)", s18)
	}
	// Crossing into the second domain must add bandwidth again.
	s36 := base / strong(36)
	if s36 < 1.8*s18 {
		t.Errorf("two-domain speedup %.2f not ~2x one-domain %.2f", s36, s18)
	}
}

func TestComputeBoundScalesLinearly(t *testing.T) {
	a := ClusterA()
	ph := Phase{FlopsSIMD: 1e9}
	base := runPhases(t, a, 1, 1, ph)
	u72 := runPhases(t, a, 72, 1, ph)
	speedup := base.Wall / u72.Wall
	if math.Abs(speedup-1.0) > 1e-6 {
		// Each rank does the same work: wall time identical, aggregate
		// perf 72x.
		t.Fatalf("per-rank wall changed: speedup %v", speedup)
	}
	if r := u72.PerfFlops() / base.PerfFlops(); math.Abs(r-72) > 1e-6 {
		t.Fatalf("72-rank perf ratio = %v, want 72", r)
	}
}

func TestECMOverlapMaxRule(t *testing.T) {
	// A phase with 1 s of core work and 0.5 s of memory work must take
	// ~1 s (overlap), not 1.5 s.
	a := ClusterA()
	u := runPhases(t, a, 1, 1, Phase{FlopsSIMD: 76.8e9, BytesMem: 6.5e9})
	if u.Wall > 1.01 || u.Wall < 0.99 {
		t.Fatalf("overlapped phase wall = %v, want ~1.0", u.Wall)
	}
}

func TestCorePenaltySlowsExecution(t *testing.T) {
	a := ClusterA()
	u1 := runPhases(t, a, 1, 1, Phase{FlopsSIMD: 1e9})
	u2 := runPhases(t, a, 1, 1, Phase{FlopsSIMD: 1e9, CorePenalty: 1.5})
	r := u2.Wall / u1.Wall
	if math.Abs(r-1.5) > 1e-9 {
		t.Fatalf("penalty ratio = %v, want 1.5", r)
	}
}

func TestSIMDRatioReported(t *testing.T) {
	a := ClusterA()
	u := runPhases(t, a, 1, 1, Phase{FlopsSIMD: 95, FlopsScalar: 5})
	if math.Abs(u.SIMDRatio()-0.95) > 1e-12 {
		t.Fatalf("SIMD ratio = %v, want 0.95", u.SIMDRatio())
	}
}

func TestBaselinePowerDominatesIdle(t *testing.T) {
	// One rank busy on a 2-socket node: both sockets' baseline counts.
	a := ClusterA()
	u := runPhases(t, a, 1, 1, Phase{FlopsSIMD: 76.8e9, HeatFrac: 1})
	base := 2 * a.CPU.BasePowerPerSocket
	if u.ChipPower() < base {
		t.Fatalf("chip power %v below node baseline %v", u.ChipPower(), base)
	}
	if u.ChipPower() > base+a.CPU.CoreDynMaxPower+1 {
		t.Fatalf("chip power %v too far above baseline+1 core", u.ChipPower())
	}
}

func TestHotCodeApproachesTDP(t *testing.T) {
	// A full socket of maximally hot cores must clamp near the TDP cap
	// (sph-exa reaches 98% of 250 W on ClusterA).
	a := ClusterA()
	u := runPhases(t, a, 36, 1, Phase{FlopsSIMD: 1e9, HeatFrac: 1})
	p := u.SocketChipPower[0]
	want := a.CPU.TDPPerSocket * a.CPU.TDPCapFraction
	if math.Abs(p-want) > 1.0 {
		t.Fatalf("hot socket power = %.1f W, want clamp %.1f W", p, want)
	}
}

func TestDRAMPowerTracksBandwidth(t *testing.T) {
	// Saturated memory-bound domain on ClusterA: ~16 W DRAM (paper 4.2.1).
	a := ClusterA()
	u := runPhases(t, a, 18, 1, Phase{BytesMem: 10e9})
	p := u.DomainDRAMPower[0]
	if math.Abs(p-16.0) > 0.5 {
		t.Fatalf("saturated domain DRAM power = %.2f W, want ~16 W", p)
	}
	// A compute-bound run draws only idle DRAM power.
	u2 := runPhases(t, a, 18, 1, Phase{FlopsSIMD: 1e9})
	if u2.DomainDRAMPower[0] > a.CPU.DRAMIdlePerDomain+0.1 {
		t.Fatalf("compute-bound DRAM power = %.2f W, want ~idle", u2.DomainDRAMPower[0])
	}
}

func TestUsageScale(t *testing.T) {
	a := ClusterA()
	u := runPhases(t, a, 4, 2, Phase{FlopsSIMD: 1e9, BytesMem: 1e9})
	s := u.Scale(10)
	if math.Abs(s.Wall-10*u.Wall) > 1e-9 || math.Abs(s.Flops()-10*u.Flops()) > 1 {
		t.Fatal("Scale did not multiply extensive quantities")
	}
	if math.Abs(s.ChipPower()-u.ChipPower()) > 1e-6 {
		t.Fatal("Scale changed average power (intensive)")
	}
	if math.Abs(s.MemBandwidth()-u.MemBandwidth()) > 1e-3 {
		t.Fatal("Scale changed bandwidth (intensive)")
	}
}

// TestUsageScaleSharesNoBackingArrays pins that Scale deep-copies every
// slice field: the scaled copy and the receiver must stay independent
// when either is mutated (spec.Run keeps both the raw and the scaled
// record of one job, so aliasing would corrupt one through the other).
func TestUsageScaleSharesNoBackingArrays(t *testing.T) {
	a := ClusterA()
	u := runPhases(t, a, 4, 2, Phase{FlopsSIMD: 1e9, BytesMem: 1e9})
	s := u.Scale(10)

	check := func(name string, orig, scaled []float64) {
		t.Helper()
		if len(orig) == 0 || len(scaled) == 0 {
			t.Fatalf("%s: empty slice, test needs a populated usage", name)
		}
		before := orig[0]
		scaled[0] += 1234.5
		if orig[0] != before {
			t.Errorf("%s: mutating the scaled copy changed the original (shared backing array)", name)
		}
		scaled[0] -= 1234.5
	}
	check("SocketChipPower", u.SocketChipPower, s.SocketChipPower)
	check("DomainDRAMPower", u.DomainDRAMPower, s.DomainDRAMPower)
	check("DomainBytesMem", u.DomainBytesMem, s.DomainBytesMem)
}

func TestCacheFitMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		x := float64(a%1000) / 100.0
		y := float64(b%1000) / 100.0
		if x > y {
			x, y = y, x
		}
		c := 1.0
		return CacheFit(x, c) <= CacheFit(y, c)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCacheFitLimits(t *testing.T) {
	if got := CacheFit(0.1, 1); got != 0 {
		t.Errorf("small working set spill = %v, want 0", got)
	}
	if got := CacheFit(10, 1); got != 1 {
		t.Errorf("huge working set spill = %v, want 1", got)
	}
	if got := CacheFit(1, 0); got != 1 {
		t.Errorf("zero cache spill = %v, want 1", got)
	}
}

func TestPhaseAddAndScale(t *testing.T) {
	a := Phase{FlopsSIMD: 100, BytesMem: 50, SIMDEff: 0.5, HeatFrac: 1}
	b := Phase{FlopsScalar: 100, BytesL2: 30, SIMDEff: 1, HeatFrac: 0.5}
	c := a.Add(b)
	if c.FlopsSIMD != 100 || c.FlopsScalar != 100 || c.BytesMem != 50 || c.BytesL2 != 30 {
		t.Fatalf("Add lost quantities: %+v", c)
	}
	d := c.Scale(2)
	if d.FlopsSIMD != 200 || d.BytesL2 != 60 {
		t.Fatalf("Scale wrong: %+v", d)
	}
}

func TestMPIAccounting(t *testing.T) {
	a := ClusterA()
	env := sim.NewEnv()
	sys := NewSystem(env, a, 1)
	env.Spawn("rank", func(p *sim.Proc) {
		sys.Compute(p, 0, Phase{FlopsSIMD: 76.8e9})
		start := p.Now()
		p.Wait(2) // pretend MPI wait
		sys.AccountMPI(0, p.Now()-start)
		sys.RankFinished(0, p.Now())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	u := sys.Usage()
	if math.Abs(u.TimeMPI-2) > 1e-9 {
		t.Fatalf("MPI time = %v, want 2", u.TimeMPI)
	}
	if u.MPIFraction() < 0.6 || u.MPIFraction() > 0.7 {
		t.Fatalf("MPI fraction = %v, want ~2/3", u.MPIFraction())
	}
}
