// Package machine models the hardware of the two clusters the paper
// studies: core micro-architecture throughput, the cache/memory hierarchy
// with ccNUMA bandwidth saturation, and the package/DRAM power model.
//
// The model follows an ECM/Roofline view of a compute phase: in-core time
// (scalar + SIMD flop streams at calibrated efficiencies, private L2
// traffic) overlaps with shared L3 and memory transfers served by
// processor-sharing resources per ccNUMA domain. The phase finishes when
// the slowest of these finishes — this single mechanism produces the
// bandwidth-saturation speedup curves of memory-bound kernels and the
// near-linear scaling of compute-bound ones.
//
// Power follows the paper's observations: a large per-socket baseline
// (~40% of TDP on Ice Lake, ~50% on Sapphire Rapids), a per-core dynamic
// term that depends on what the core is doing (executing, memory-stalled,
// busy-waiting in MPI), a package-level TDP clamp, and DRAM power tied
// linearly to the achieved memory bandwidth.
package machine

import (
	"fmt"
	"sync"

	"github.com/spechpc/spechpc-sim/internal/dvfs"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// CPUSpec describes one processor model and its node integration,
// mirroring the rows of Table 3 in the paper plus calibration parameters
// derived from the paper's own measurements (saturated domain bandwidth,
// baseline power, per-core dynamic power).
type CPUSpec struct {
	// Name is the marketing name, e.g. "Xeon Platinum 8360Y (Ice Lake)".
	Name string
	// BaseClockHz is the fixed core clock (the paper pins frequencies).
	BaseClockHz float64
	// CoresPerSocket is the physical core count per socket (no SMT).
	CoresPerSocket int
	// SocketsPerNode is the number of sockets per node.
	SocketsPerNode int
	// DomainsPerSocket is the number of ccNUMA domains per socket
	// (Sub-NUMA Clustering is enabled on both systems).
	DomainsPerSocket int

	// SIMDFlopsPerCycle is the peak DP flops per cycle per core using
	// AVX-512 FMA (2 FMA units x 8 lanes x 2 flops = 32 on both CPUs).
	SIMDFlopsPerCycle float64
	// ScalarFlopsPerCycle is the peak DP flops per cycle per core with
	// scalar FMA instructions.
	ScalarFlopsPerCycle float64
	// IrregularAccessEff is the relative in-core efficiency on
	// gather/irregular-access instruction streams (>= 1 means faster than
	// the reference). Sapphire Rapids' larger private caches and improved
	// gather hardware let such codes exceed the plain peak-performance
	// ratio — the effect the paper notes for sph-exa, minisweep, and soma
	// (Sect. 4.1.2).
	IrregularAccessEff float64

	// L1PerCore, L2PerCore are private cache capacities in bytes.
	L1PerCore float64
	L2PerCore float64
	// L3PerDomain is the shared last-level slice per ccNUMA domain, bytes.
	L3PerDomain float64

	// L2BandwidthPerCore is the sustained private L2 bandwidth per core (B/s).
	L2BandwidthPerCore float64
	// L3BandwidthPerDomain is the sustained shared L3 bandwidth per ccNUMA
	// domain (B/s), shared processor-style among cores of the domain.
	L3BandwidthPerDomain float64
	// L3BandwidthPerCoreMax caps the L3 bandwidth a single core can draw.
	L3BandwidthPerCoreMax float64

	// MemTheoreticalPerDomain is the nominal DDR bandwidth per domain (B/s).
	MemTheoreticalPerDomain float64
	// MemSaturatedPerDomain is the achievable (measured-style) bandwidth a
	// domain saturates at; the paper reports 75-78 GB/s on Ice Lake and
	// 58-62 GB/s on Sapphire Rapids domains.
	MemSaturatedPerDomain float64
	// MemPerCoreMax is the memory bandwidth a single core can draw (B/s);
	// it sets how many cores are needed to saturate a domain.
	MemPerCoreMax float64

	// TDPPerSocket is the thermal design power per socket (W).
	TDPPerSocket float64
	// TDPCapFraction clamps sustained package power to this fraction of
	// TDP (RAPL power capping); the paper's hottest code reaches 97-98%.
	TDPCapFraction float64
	// BasePowerPerSocket is the extrapolated zero-core package power (W).
	BasePowerPerSocket float64
	// CoreDynMaxPower is the per-core dynamic power of the hottest
	// fully-executing code (W).
	CoreDynMaxPower float64
	// CoreStallPower is per-core dynamic power while stalled on memory (W).
	CoreStallPower float64
	// CoreMPIPower is per-core dynamic power while busy-waiting in MPI (W).
	CoreMPIPower float64

	// DRAMIdlePerDomain is DRAM background power per domain (W).
	DRAMIdlePerDomain float64
	// DRAMEnergyPerByte converts memory traffic to DRAM dynamic energy
	// (J/B); equivalently watts per byte/s of sustained bandwidth.
	DRAMEnergyPerByte float64

	// DVFS describes the admissible clock ladder and how the per-core
	// dynamic power terms scale with frequency (see ClusterSpec.WithClock).
	// The zero value pins the part at BaseClockHz.
	DVFS dvfs.Model
}

// CoresPerNode returns the number of physical cores in one node.
func (c *CPUSpec) CoresPerNode() int { return c.CoresPerSocket * c.SocketsPerNode }

// DomainsPerNode returns the number of ccNUMA domains in one node.
func (c *CPUSpec) DomainsPerNode() int { return c.DomainsPerSocket * c.SocketsPerNode }

// CoresPerDomain returns the number of cores in one ccNUMA domain.
func (c *CPUSpec) CoresPerDomain() int { return c.CoresPerSocket / c.DomainsPerSocket }

// SIMDPeakPerCore returns peak DP AVX-512 flops/s of one core.
func (c *CPUSpec) SIMDPeakPerCore() float64 { return c.BaseClockHz * c.SIMDFlopsPerCycle }

// ScalarPeakPerCore returns peak DP scalar flops/s of one core.
func (c *CPUSpec) ScalarPeakPerCore() float64 { return c.BaseClockHz * c.ScalarFlopsPerCycle }

// NodePeakFlops returns the DP AVX-512 peak of a full node.
func (c *CPUSpec) NodePeakFlops() float64 {
	return c.SIMDPeakPerCore() * float64(c.CoresPerNode())
}

// NodeMemBandwidth returns the saturated memory bandwidth of a full node.
func (c *CPUSpec) NodeMemBandwidth() float64 {
	return c.MemSaturatedPerDomain * float64(c.DomainsPerNode())
}

// CachePerCoreL3 returns the per-core share of the L3 slice.
func (c *CPUSpec) CachePerCoreL3() float64 {
	return c.L3PerDomain / float64(c.CoresPerDomain())
}

// ClusterSpec is a full cluster: homogeneous nodes of one CPUSpec plus the
// cluster size. Interconnect parameters live in package netsim and are
// composed with the machine model by the spec harness.
type ClusterSpec struct {
	// Name identifies the cluster ("ClusterA", "ClusterB").
	Name string
	// CPU is the node hardware description.
	CPU CPUSpec
	// MaxNodes is the number of nodes available to experiments.
	MaxNodes int
}

// MaxRanks returns the total number of cores across MaxNodes.
func (cs *ClusterSpec) MaxRanks() int { return cs.MaxNodes * cs.CPU.CoresPerNode() }

// NodesFor returns the number of nodes a block-mapped run of n ranks
// occupies (consecutive ranks on consecutive cores, likwid-mpirun style).
func (cs *ClusterSpec) NodesFor(n int) int {
	cpn := cs.CPU.CoresPerNode()
	return (n + cpn - 1) / cpn
}

// Placement locates one rank on the cluster under block mapping.
type Placement struct {
	// Node is the node index.
	Node int
	// Socket is the socket index within the node.
	Socket int
	// Domain is the ccNUMA domain index within the node.
	Domain int
	// Core is the core index within the node.
	Core int
	// GlobalSocket and GlobalDomain are cluster-wide indices.
	GlobalSocket int
	GlobalDomain int
}

// Place maps a rank to its core under block mapping: consecutive MPI ranks
// are pinned to consecutive cores, filling each node before the next.
func (cs *ClusterSpec) Place(rank int) Placement {
	cpu := &cs.CPU
	cpn := cpu.CoresPerNode()
	node := rank / cpn
	core := rank % cpn
	socket := core / cpu.CoresPerSocket
	domain := core / cpu.CoresPerDomain()
	return Placement{
		Node:         node,
		Socket:       socket,
		Domain:       domain,
		Core:         core,
		GlobalSocket: node*cpu.SocketsPerNode + socket,
		GlobalDomain: node*cpu.DomainsPerNode() + domain,
	}
}

// WithClock derives a copy of the cluster running at a different core
// clock. The requested frequency is snapped to the CPU's DVFS ladder and
// must lie within [MinHz, MaxHz]; clusters without a DVFS model reject
// every clock other than their pinned BaseClockHz.
//
// Scaling follows the dvfs model: BaseClockHz moves (so all in-core
// peaks — SIMD, scalar — re-derive with it), the private per-core L2
// bandwidth scales linearly (the L2 runs at core clock), and the three
// per-core dynamic power terms scale with f*V(f)^2. Everything served by
// the uncore or the memory subsystem — shared L3 bandwidth, saturated
// DRAM bandwidth, the socket power baseline, DRAM power — is held flat,
// which is what makes reduced clocks nearly free for memory-bound
// kernels. The derived spec is revalidated before it is returned.
func (cs *ClusterSpec) WithClock(hz float64) (*ClusterSpec, error) {
	cpu := &cs.CPU
	if !cpu.DVFS.Enabled() {
		if hz == cpu.BaseClockHz {
			out := *cs
			return &out, nil
		}
		return nil, fmt.Errorf("machine: %s has no DVFS model; clock pinned at %s",
			cs.Name, units.Frequency(cpu.BaseClockHz))
	}
	if hz < cpu.DVFS.MinHz || hz > cpu.DVFS.MaxHz {
		return nil, fmt.Errorf("machine: %s clock %s outside DVFS range [%s, %s]",
			cs.Name, units.Frequency(hz),
			units.Frequency(cpu.DVFS.MinHz), units.Frequency(cpu.DVFS.MaxHz))
	}
	q := cpu.DVFS.Quantize(hz)
	out := *cs
	c := &out.CPU
	// Power terms are stored at the current clock; rescaling by the
	// factor ratio keeps WithClock exact under composition
	// (a.WithClock(x).WithClock(y) == a.WithClock(y)).
	pf := c.DVFS.PowerFactor(q) / c.DVFS.PowerFactor(c.BaseClockHz)
	c.CoreDynMaxPower *= pf
	c.CoreStallPower *= pf
	c.CoreMPIPower *= pf
	c.L2BandwidthPerCore *= q / c.BaseClockHz
	c.BaseClockHz = q
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// clockKey identifies a WithClock derivation: the source cluster by
// value (ClusterSpec holds only scalars, so it is a valid map key) and
// the clock snapped onto its DVFS ladder.
type clockKey struct {
	spec ClusterSpec
	hz   float64
}

// clockCache memoizes WithClock derivations process-wide. Frequency
// sweeps submit one job per ladder point and campaigns re-submit the
// same points for every figure; deriving and revalidating the scaled
// spec once per (cluster, snapped clock) removes that per-job cost.
var clockCache sync.Map // clockKey -> *ClusterSpec

// WithClockCached is WithClock behind a process-wide memo keyed by
// (cluster value, ladder-snapped clock): requests snapping to the same
// ladder step share one derived spec, so each point validates once per
// process. The returned spec is shared — callers must treat it as
// immutable. Error paths (no DVFS model, clock out of range) are not
// cached and behave exactly like WithClock.
func (cs *ClusterSpec) WithClockCached(hz float64) (*ClusterSpec, error) {
	cpu := &cs.CPU
	if !cpu.DVFS.Enabled() || hz < cpu.DVFS.MinHz || hz > cpu.DVFS.MaxHz {
		return cs.WithClock(hz)
	}
	key := clockKey{spec: *cs, hz: cpu.DVFS.Quantize(hz)}
	if v, ok := clockCache.Load(key); ok {
		return v.(*ClusterSpec), nil
	}
	out, err := cs.WithClock(hz)
	if err != nil {
		return nil, err
	}
	if prev, loaded := clockCache.LoadOrStore(key, out); loaded {
		return prev.(*ClusterSpec), nil
	}
	return out, nil
}

// Validate checks internal consistency of the spec.
func (cs *ClusterSpec) Validate() error {
	c := &cs.CPU
	if err := c.DVFS.Validate(); err != nil {
		return fmt.Errorf("machine: %s: %w", cs.Name, err)
	}
	if c.DVFS.Enabled() &&
		(c.BaseClockHz < c.DVFS.MinHz || c.BaseClockHz > c.DVFS.MaxHz) {
		return fmt.Errorf("machine: %s clock %g Hz outside its own DVFS range", cs.Name, c.BaseClockHz)
	}
	switch {
	case c.CoresPerSocket <= 0 || c.SocketsPerNode <= 0 || c.DomainsPerSocket <= 0:
		return fmt.Errorf("machine: %s has non-positive core/socket/domain counts", cs.Name)
	case c.CoresPerSocket%c.DomainsPerSocket != 0:
		return fmt.Errorf("machine: %s cores per socket %d not divisible by domains %d",
			cs.Name, c.CoresPerSocket, c.DomainsPerSocket)
	case c.MemSaturatedPerDomain <= 0 || c.MemPerCoreMax <= 0:
		return fmt.Errorf("machine: %s has non-positive memory bandwidth", cs.Name)
	case c.MemSaturatedPerDomain > c.MemTheoreticalPerDomain:
		return fmt.Errorf("machine: %s saturated bandwidth exceeds theoretical", cs.Name)
	case c.BasePowerPerSocket >= c.TDPPerSocket:
		return fmt.Errorf("machine: %s baseline power above TDP", cs.Name)
	case cs.MaxNodes <= 0:
		return fmt.Errorf("machine: %s has no nodes", cs.Name)
	}
	return nil
}

// ClusterA returns the Ice Lake cluster of the paper: two Xeon Platinum
// 8360Y per node (36 cores each, SNC2 -> 4 ccNUMA domains of 18 cores),
// 8-channel DDR4-3200 per socket, HDR100 fat-tree.
//
// Calibration sources: Table 3 for the architectural numbers; Sect. 4.1.4
// for the 75-78 GB/s saturated domain bandwidth; Sect. 4.2.3 for the
// 95-101 W zero-core baseline; Sect. 4.2.1 for sph-exa at 244 W (98% TDP)
// and the 16 W saturated / 9.5 W minimum domain DRAM power.
func ClusterA() *ClusterSpec {
	return &ClusterSpec{
		Name: "ClusterA",
		CPU: CPUSpec{
			Name:                "Intel Xeon Platinum 8360Y (Ice Lake)",
			BaseClockHz:         2.4e9,
			CoresPerSocket:      36,
			SocketsPerNode:      2,
			DomainsPerSocket:    2,
			SIMDFlopsPerCycle:   32,
			ScalarFlopsPerCycle: 4,
			IrregularAccessEff:  1.0,
			L1PerCore:           48 * units.KiB,
			L2PerCore:           1.25 * units.MiB,
			L3PerDomain:         27 * units.MiB, // 54 MiB per socket, SNC2

			L2BandwidthPerCore:      100 * units.G,
			L3BandwidthPerDomain:    260 * units.G,
			L3BandwidthPerCoreMax:   42 * units.G,
			MemTheoreticalPerDomain: 102.4 * units.G,
			MemSaturatedPerDomain:   76.5 * units.G,
			MemPerCoreMax:           13 * units.G,

			TDPPerSocket:       250,
			TDPCapFraction:     0.976,
			BasePowerPerSocket: 98,
			CoreDynMaxPower:    4.5,
			CoreStallPower:     1.9,
			CoreMPIPower:       3.1,
			DRAMIdlePerDomain:  7.0,
			DRAMEnergyPerByte:  9.0 / (76.5 * units.G), // 16 W at saturation

			// Ice Lake exposes 100 MHz P-state steps from 800 MHz up to
			// the 2.4 GHz base clock the paper pins (Table 3); the power
			// calibration above was taken at that pinned clock.
			DVFS: dvfs.Model{
				MinHz:  0.8e9,
				MaxHz:  2.4e9,
				StepHz: 0.1e9,
				RefHz:  2.4e9,
				VMin:   0.70,
				VMax:   1.00,
			},
		},
		MaxNodes: 16,
	}
}

// ClusterB returns the Sapphire Rapids cluster of the paper: two Xeon
// Platinum 8470 per node (52 cores each, SNC4 -> 8 ccNUMA domains of 13
// cores), 8-channel DDR5-4800 per socket, HDR100 fat-tree.
//
// Calibration sources: Table 3; Sect. 4.1.4 for the 58-62 GB/s saturated
// domain bandwidth; Sect. 4.2.3 for the 176-181 W baseline; Sect. 4.2.1
// for sph-exa at 333 W (97% TDP) and the 10-13 W saturated / 5.5 W minimum
// domain DRAM power (DDR5 runs cooler than DDR4).
func ClusterB() *ClusterSpec {
	return &ClusterSpec{
		Name: "ClusterB",
		CPU: CPUSpec{
			Name:                "Intel Xeon Platinum 8470 (Sapphire Rapids)",
			BaseClockHz:         2.0e9,
			CoresPerSocket:      52,
			SocketsPerNode:      2,
			DomainsPerSocket:    4,
			SIMDFlopsPerCycle:   32,
			ScalarFlopsPerCycle: 4,
			IrregularAccessEff:  1.35,
			L1PerCore:           48 * units.KiB,
			L2PerCore:           2 * units.MiB,
			L3PerDomain:         26.25 * units.MiB, // 105 MiB per socket, SNC4

			L2BandwidthPerCore:      110 * units.G,
			L3BandwidthPerDomain:    300 * units.G,
			L3BandwidthPerCoreMax:   48 * units.G,
			MemTheoreticalPerDomain: 76.8 * units.G,
			MemSaturatedPerDomain:   60 * units.G,
			MemPerCoreMax:           11.5 * units.G,

			TDPPerSocket:       350,
			TDPCapFraction:     0.952,
			BasePowerPerSocket: 178,
			CoreDynMaxPower:    3.4,
			CoreStallPower:     1.5,
			CoreMPIPower:       2.3,
			DRAMIdlePerDomain:  3.8,
			DRAMEnergyPerByte:  7.0 / (60 * units.G), // ~10.8 W at saturation

			// Sapphire Rapids: 100 MHz steps from 800 MHz up to the
			// 2.0 GHz base clock the paper pins (Table 3); power constants
			// calibrated at the pinned clock.
			DVFS: dvfs.Model{
				MinHz:  0.8e9,
				MaxHz:  2.0e9,
				StepHz: 0.1e9,
				RefHz:  2.0e9,
				VMin:   0.72,
				VMax:   1.00,
			},
		},
		MaxNodes: 16,
	}
}
