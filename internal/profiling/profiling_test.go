package profiling

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestStartWithWritesAllProfiles exercises the full option set: after a
// run with some real blocking and lock contention, every requested
// artifact must exist and be non-empty, and the block/mutex collection
// rates must be restored to off.
func TestStartWithWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	o := Options{
		CPU:   filepath.Join(dir, "cpu.out"),
		Mem:   filepath.Join(dir, "mem.out"),
		Block: filepath.Join(dir, "block.out"),
		Mutex: filepath.Join(dir, "mutex.out"),
	}
	stop, err := StartWith(o)
	if err != nil {
		t.Fatal(err)
	}
	// Generate block events (channel wait) and mutex contention.
	ch := make(chan int)
	go func() { time.Sleep(time.Millisecond); ch <- 1 }()
	<-ch
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				mu.Lock()
				time.Sleep(10 * time.Microsecond)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	stop()
	stop() // idempotent
	for _, path := range []string{o.CPU, o.Mem, o.Block, o.Mutex} {
		st, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s missing: %v", filepath.Base(path), err)
		} else if st.Size() == 0 {
			t.Errorf("%s is empty", filepath.Base(path))
		}
	}
	if runtime.SetMutexProfileFraction(-1) != 0 {
		t.Error("mutex profiling left enabled after stop")
	}
}

// TestStartWithNothingIsFree checks the zero-value options are a no-op
// that still returns a callable stop.
func TestStartWithNothingIsFree(t *testing.T) {
	stop, err := StartWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

// TestStartWithBadPathFails checks an uncreatable CPU profile path
// surfaces as an error instead of a silent no-op.
func TestStartWithBadPathFails(t *testing.T) {
	if _, err := StartWith(Options{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}); err == nil {
		t.Fatal("uncreatable profile path accepted")
	}
}
