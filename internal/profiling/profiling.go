// Package profiling wires runtime/pprof collection into the command-line
// front ends, so hot-path regressions in the simulator can be diagnosed
// with -cpuprofile / -memprofile instead of editing benchmark code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Options names the profile artifacts to collect; empty paths collect
// nothing. Block and Mutex exist for the parallel simulation engine
// (internal/sim/psim): window-barrier convoys show up as block-profile
// time on the dispatch channel and WaitGroup, and coordination-lock
// contention as mutex-profile time, neither of which a CPU profile can
// attribute.
type Options struct {
	// CPU and Mem are the -cpuprofile / -memprofile artifacts.
	CPU, Mem string
	// Block collects goroutine blocking (channel waits, sync waits) at
	// full rate for the run's duration.
	Block string
	// Mutex samples mutex contention at full rate for the run's duration.
	Mutex string
}

// StartWith begins the requested profile collections and returns an
// idempotent stop function that writes every requested artifact; see
// Start. Block and mutex rates are restored to off at stop so profiling
// cost is bounded by the profiled run.
func StartWith(o Options) (func(), error) {
	stop, err := Start(o.CPU, o.Mem)
	if err != nil {
		return nil, err
	}
	if o.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	if o.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			stop()
			if o.Block != "" {
				writeLookup("block", o.Block)
				runtime.SetBlockProfileRate(0)
			}
			if o.Mutex != "" {
				writeLookup("mutex", o.Mutex)
				runtime.SetMutexProfileFraction(0)
			}
		})
	}, nil
}

// writeLookup dumps one named runtime profile, reporting (not failing
// on) write errors, matching the stop path's best-effort contract.
func writeLookup(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
	}
}

// Start begins CPU profiling if cpuPath is non-empty and returns a stop
// function that finishes the CPU profile and, if memPath is non-empty,
// writes the cumulative allocation profile ("allocs", which includes the
// live heap) there. The stop function is idempotent and safe to call on
// both normal and fatal exit paths. A nil error always comes with a
// non-nil stop function.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "profiling:", err)
				}
			}
			if memPath == "" {
				return
			}
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects are accurate
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		})
	}
	return stop, nil
}
