// Package profiling wires runtime/pprof collection into the command-line
// front ends, so hot-path regressions in the simulator can be diagnosed
// with -cpuprofile / -memprofile instead of editing benchmark code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling if cpuPath is non-empty and returns a stop
// function that finishes the CPU profile and, if memPath is non-empty,
// writes the cumulative allocation profile ("allocs", which includes the
// live heap) there. The stop function is idempotent and safe to call on
// both normal and fatal exit paths. A nil error always comes with a
// non-nil stop function.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "profiling:", err)
				}
			}
			if memPath == "" {
				return
			}
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects are accurate
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		})
	}
	return stop, nil
}
