package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// memStore is an in-memory campaign.Store for tier tests.
type memStore struct {
	mu   sync.Mutex
	m    map[string]campaign.Record
	puts int
}

func newMemStore() *memStore { return &memStore{m: make(map[string]campaign.Record)} }

func (s *memStore) Get(key string) (campaign.Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.m[key]
	return rec, ok, nil
}

func (s *memStore) Put(key string, rec campaign.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = rec
	s.puts++
	return nil
}

// newStoreServer serves the fleet store protocol from a memStore, the
// way the coordinator's service does.
func newStoreServer(t *testing.T, backing *memStore) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, StorePathPrefix)
		switch r.Method {
		case http.MethodGet:
			rec, ok, _ := backing.Get(key)
			if !ok {
				http.NotFound(w, r)
				return
			}
			json.NewEncoder(w).Encode(rec)
		case http.MethodPut:
			var rec campaign.Record
			if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			backing.Put(key, rec)
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func sampleRecord(tag int) (string, campaign.Record) {
	rs := testJob(tag)
	key := campaign.Key(rs)
	res := spec.RunResult{Spec: rs, Trace: trace.FromSums(make([][]float64, rs.Ranks))}
	return key, campaign.NewRecord(key, res)
}

// TestRemoteStoreRoundTrip exercises the HTTP store against a protocol
// stub: miss, put, hit, and the key-mismatch guard.
func TestRemoteStoreRoundTrip(t *testing.T) {
	backing := newMemStore()
	srv := newStoreServer(t, backing)
	rs := &RemoteStore{Base: srv.URL, WorkerID: "w1"}

	key, rec := sampleRecord(1)
	if _, ok, err := rs.Get(key); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v, want clean miss", ok, err)
	}
	if err := rs.Put(key, rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := rs.Get(key)
	if err != nil || !ok {
		t.Fatalf("after put: ok=%v err=%v", ok, err)
	}
	if got.Key != key || got.Bench != rec.Bench {
		t.Errorf("record did not round-trip: %+v", got)
	}
	if _, ok := got.Result(); !ok {
		t.Error("round-tripped record unusable as a result")
	}

	// A server bug pairing the wrong record with a key must not
	// propagate silently.
	backing.m[key] = campaign.Record{Format: 1, Key: "v1-other"}
	if _, _, err := rs.Get(key); err == nil {
		t.Error("key-mismatched record served without error")
	}
}

// TestTieredStore pins the two-tier read/write contract: local-first
// reads, remote-hit backfill into the local tier, and write-through on
// Put.
func TestTieredStore(t *testing.T) {
	local, remote := newMemStore(), newMemStore()
	st := &Tiered{Local: local, Remote: remote}
	key, rec := sampleRecord(2)

	// Remote-only record: served, then backfilled locally.
	remote.Put(key, rec)
	remote.puts = 0
	if _, ok, err := st.Get(key); !ok || err != nil {
		t.Fatalf("remote-tier record not served: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := local.Get(key); !ok {
		t.Error("remote hit not backfilled into the local tier")
	}
	// Warm local tier answers without touching remote state.
	if _, ok, _ := st.Get(key); !ok {
		t.Error("local-tier record not served")
	}

	key2, rec2 := sampleRecord(3)
	if err := st.Put(key2, rec2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := local.Get(key2); !ok {
		t.Error("Put skipped the local tier")
	}
	if _, ok, _ := remote.Get(key2); !ok {
		t.Error("Put skipped the remote tier")
	}
}
