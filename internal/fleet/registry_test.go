package fleet

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source for boundary-exact registry
// tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }
func stateOf(r *Registry, id string) State {
	for _, ws := range r.Snapshot() {
		if ws.ID == id {
			return ws.State
		}
	}
	return Dead
}

// TestHeartbeatStateBoundaries drives one worker through the
// suspect→dead state machine with a fake clock, pinning the transitions
// at exact interval boundaries: the worker is Alive strictly below
// SuspectAfter, Suspect at and beyond it, and Dead at DeadAfter.
func TestHeartbeatStateBoundaries(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(3*time.Second, 10*time.Second)
	r.SetClock(clk.Now)
	if err := r.Register(Worker{ID: "w1", URL: "http://w1"}); err != nil {
		t.Fatal(err)
	}

	steps := []struct {
		advance time.Duration
		want    State
	}{
		{0, Alive},
		{3*time.Second - time.Nanosecond, Alive}, // strictly below the boundary
		{time.Nanosecond, Suspect},               // exactly SuspectAfter
		{7*time.Second - time.Nanosecond, Suspect},
		{time.Nanosecond, Dead}, // exactly DeadAfter
		{time.Hour, Dead},
	}
	for i, s := range steps {
		clk.Advance(s.advance)
		if got := stateOf(r, "w1"); got != s.want {
			t.Fatalf("step %d (t=+%v): state = %v, want %v", i, clk.now.Sub(time.Unix(1_700_000_000, 0)), got, s.want)
		}
	}

	// A heartbeat resurrects even a Dead worker.
	if !r.Heartbeat("w1") {
		t.Fatal("heartbeat for a registered worker reported unknown")
	}
	if got := stateOf(r, "w1"); got != Alive {
		t.Errorf("state after heartbeat = %v, want Alive", got)
	}
	if r.Heartbeat("ghost") {
		t.Error("heartbeat for an unregistered worker reported known")
	}
}

// TestDispatchFailuresDriveState checks the failure-count half of the
// state machine: one failed dispatch makes a worker Suspect, a second
// makes it Dead, and a success (or re-registration) clears it.
func TestDispatchFailuresDriveState(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(3*time.Second, 10*time.Second)
	r.SetClock(clk.Now)
	r.Register(Worker{ID: "w1", URL: "http://w1"})

	r.ReportFailure("w1")
	if got := stateOf(r, "w1"); got != Suspect {
		t.Fatalf("after 1 failure: %v, want Suspect", got)
	}
	r.ReportFailure("w1")
	if got := stateOf(r, "w1"); got != Dead {
		t.Fatalf("after 2 failures: %v, want Dead", got)
	}
	// Heartbeats alone do not clear dispatch failures: the process is up
	// but dispatches to it still fail.
	r.Heartbeat("w1")
	if got := stateOf(r, "w1"); got != Dead {
		t.Fatalf("heartbeat cleared dispatch failures: %v, want still Dead", got)
	}
	r.ReportSuccess("w1")
	if got := stateOf(r, "w1"); got != Alive {
		t.Fatalf("after success: %v, want Alive", got)
	}

	r.ReportFailure("w1")
	r.ReportFailure("w1")
	if err := r.Register(Worker{ID: "w1", URL: "http://w1-restarted"}); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(r, "w1"); got != Alive {
		t.Errorf("re-registration did not clear failures: %v, want Alive", got)
	}
}

// TestRegistryCountsAndPools covers the aggregate views the dispatcher
// and /statsz read: Counts, InState, and Snapshot ordering.
func TestRegistryCountsAndPools(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(3*time.Second, 10*time.Second)
	r.SetClock(clk.Now)
	r.Register(Worker{ID: "w2", URL: "http://w2"})
	r.Register(Worker{ID: "w1", URL: "http://w1"})
	r.Register(Worker{ID: "w3", URL: "http://w3"})

	clk.Advance(4 * time.Second) // all would be suspect…
	r.Heartbeat("w1")            // …but w1 heartbeats…
	r.ReportFailure("w3")
	r.ReportFailure("w3") // …and w3 is dead on failures.

	alive, suspect, dead := r.Counts()
	if alive != 1 || suspect != 1 || dead != 1 {
		t.Errorf("Counts = %d/%d/%d, want 1/1/1", alive, suspect, dead)
	}
	if ws := r.InState(Alive); len(ws) != 1 || ws[0].ID != "w1" {
		t.Errorf("InState(Alive) = %v, want [w1]", ws)
	}
	if ws := r.InState(Suspect); len(ws) != 1 || ws[0].ID != "w2" {
		t.Errorf("InState(Suspect) = %v, want [w2]", ws)
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].ID != "w1" || snap[1].ID != "w2" || snap[2].ID != "w3" {
		t.Errorf("Snapshot not ID-sorted: %v", snap)
	}
	if snap[2].Fails != 2 || snap[2].State != Dead {
		t.Errorf("w3 snapshot = %+v, want 2 fails, dead", snap[2])
	}

	if err := r.Register(Worker{ID: "", URL: "http://x"}); err == nil {
		t.Error("register accepted an empty worker ID")
	}
}
