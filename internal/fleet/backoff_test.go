package fleet

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffSchedule pins the capped-exponential-with-jitter delays
// against a seeded RNG: the exact values below are load-bearing — a
// change to the base/cap/multiplier defaults or the equal-jitter form
// (delay × [0.5, 1)) must show up here as a diff, not slip through.
func TestBackoffSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	jitters := make([]float64, 8)
	for i := range jitters {
		jitters[i] = rng.Float64()
	}

	cases := []struct {
		name    string
		b       Backoff
		attempt int
		jitter  float64
	}{
		{"defaults-first", Backoff{}, 0, jitters[0]},
		{"defaults-second", Backoff{}, 1, jitters[1]},
		{"defaults-third", Backoff{}, 2, jitters[2]},
		{"defaults-capped", Backoff{}, 9, jitters[3]}, // 100ms·2^9 = 51.2s → cap 5s
		{"custom-growth", Backoff{Base: 50 * time.Millisecond, Cap: time.Second, Mult: 3}, 2, jitters[4]},
		{"custom-at-cap", Backoff{Base: 50 * time.Millisecond, Cap: time.Second, Mult: 3}, 5, jitters[5]},
		{"negative-attempt", Backoff{}, -3, jitters[6]}, // clamped to 0
	}
	// Expected = min(cap, base·mult^attempt) × (0.5 + 0.5·jitter),
	// computed independently of the implementation.
	raw := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		5 * time.Second,
		450 * time.Millisecond,
		time.Second,
		100 * time.Millisecond,
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.b.Jitter = func() float64 { return tc.jitter }
			want := time.Duration(float64(raw[i]) * (0.5 + 0.5*tc.jitter))
			if got := tc.b.Delay(tc.attempt); got != want {
				t.Errorf("Delay(%d) = %v, want %v (raw %v, jitter %.6f)",
					tc.attempt, got, want, raw[i], tc.jitter)
			}
		})
	}
}

// TestBackoffJitterBounds checks every delay stays inside
// [raw/2, raw) across the whole jitter range, including the endpoints.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Mult: 2}
	for _, j := range []float64{0, 0.25, 0.5, 0.999999} {
		b.Jitter = func() float64 { return j }
		d := b.Delay(3) // raw 800ms
		if d < 400*time.Millisecond || d >= 800*time.Millisecond {
			t.Errorf("jitter %.3f: Delay(3) = %v, want in [400ms, 800ms)", j, d)
		}
	}
}

// TestBackoffSeededSequence pins a full retry schedule drawn through a
// seeded source, the way the dispatcher consumes it: successive calls
// must walk the exponential ladder with fresh jitter each step.
func TestBackoffSeededSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := Backoff{Jitter: rng.Float64}
	var got []time.Duration
	for attempt := 0; attempt < 4; attempt++ {
		got = append(got, b.Delay(attempt))
	}
	// Re-derive with an identical source.
	check := rand.New(rand.NewSource(7))
	raw := []time.Duration{100, 200, 400, 800} // ms, under the 5s cap
	for i, r := range raw {
		want := time.Duration(float64(r*time.Millisecond) * (0.5 + 0.5*check.Float64()))
		if got[i] != want {
			t.Errorf("step %d = %v, want %v", i, got[i], want)
		}
	}
}
