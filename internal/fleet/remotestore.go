package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/spechpc/spechpc-sim/internal/campaign"
)

// RemoteStore implements campaign.Store over the coordinator's
// /api/v1/fleet/store/ routes, so results a worker simulates land in
// the fleet-wide store and every process's scheduler sees every other
// process's results. Content-addressed keys make the protocol trivial:
// GET is a blob read (404 is a miss, never an error), PUT is an
// idempotent blob write (records under one key are interchangeable by
// construction, so last-write-wins collisions are harmless).
type RemoteStore struct {
	Base     string       // coordinator base URL
	Client   *http.Client // nil means http.DefaultClient
	WorkerID string       // sent as WorkerHeader for attribution, may be empty
}

var _ campaign.Store = (*RemoteStore)(nil)

func (s *RemoteStore) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

// Get fetches the record under key from the coordinator.
func (s *RemoteStore) Get(key string) (campaign.Record, bool, error) {
	req, err := http.NewRequest(http.MethodGet, s.Base+StorePathPrefix+key, nil)
	if err != nil {
		return campaign.Record{}, false, err
	}
	if s.WorkerID != "" {
		req.Header.Set(WorkerHeader, s.WorkerID)
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return campaign.Record{}, false, fmt.Errorf("fleet: store get %s: %w", key, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var rec campaign.Record
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			return campaign.Record{}, false, fmt.Errorf("fleet: store get %s: %w", key, err)
		}
		if rec.Key != key {
			return campaign.Record{}, false, fmt.Errorf("fleet: store entry %s carries key %s", key, rec.Key)
		}
		return rec, true, nil
	case http.StatusNotFound:
		return campaign.Record{}, false, nil
	default:
		return campaign.Record{}, false, fmt.Errorf("fleet: store get %s: coordinator answered %s", key, resp.Status)
	}
}

// Put writes the record under key to the coordinator.
func (s *RemoteStore) Put(key string, rec campaign.Record) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: store put %s: %w", key, err)
	}
	req, err := http.NewRequest(http.MethodPut, s.Base+StorePathPrefix+key, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if s.WorkerID != "" {
		req.Header.Set(WorkerHeader, s.WorkerID)
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return fmt.Errorf("fleet: store put %s: %w", key, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("fleet: store put %s: coordinator answered %s", key, resp.Status)
	}
	return nil
}

// Tiered layers a local store in front of a remote one: reads try the
// local tier first and backfill it on remote hits; writes go to both,
// and only the remote write — the fleet-visible one — can fail the Put.
// A worker with a Tiered{DirStore, RemoteStore} keeps serving warm keys
// through coordinator outages while still publishing fresh results.
type Tiered struct {
	Local  campaign.Store
	Remote campaign.Store
}

var _ campaign.Store = (*Tiered)(nil)

// Get reads local-first with remote fallback and local backfill. A
// local fault falls through to the remote tier rather than surfacing —
// the remote copy is authoritative and the local one self-heals.
func (s *Tiered) Get(key string) (campaign.Record, bool, error) {
	if rec, ok, err := s.Local.Get(key); err == nil && ok {
		return rec, true, nil
	}
	rec, ok, err := s.Remote.Get(key)
	if err != nil || !ok {
		return campaign.Record{}, false, err
	}
	s.Local.Put(key, rec) // best-effort backfill
	return rec, true, nil
}

// Put writes through both tiers; the local write is best-effort.
func (s *Tiered) Put(key string, rec campaign.Record) error {
	s.Local.Put(key, rec)
	return s.Remote.Put(key, rec)
}
