package chaos_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/fleet"
	"github.com/spechpc/spechpc-sim/internal/fleet/chaos"
	"github.com/spechpc/spechpc-sim/internal/scenario"
	"github.com/spechpc/spechpc-sim/internal/service"
)

// scenarioDoc is the campaign both fleet passes and the single-process
// baseline run: two kernels over six rank points, 12 unique jobs —
// enough for rendezvous hashing to give every worker a share.
const scenarioDoc = `{
  "name": "chaosfig",
  "sweeps": [
    {"benchmarks": ["tealeaf", "lbm"], "clusters": ["ClusterA"],
     "points": [1, 2, 3, 4, 6, 8], "metrics": ["wall_s"]}
  ]
}`

// testFleet is one coordinator plus its workers, every dispatch routed
// through a chaos transport.
type testFleet struct {
	ctl        *chaos.Controller
	registry   *fleet.Registry
	dispatcher *fleet.Dispatcher
	coordSched *campaign.Scheduler
	coordTS    *httptest.Server
	workers    map[string]*workerProc // id -> process
}

type workerProc struct {
	id    string
	ts    *httptest.Server
	sched *campaign.Scheduler
}

// startFleet stands up a coordinator (DirStore-backed, chaos-wrapped
// dispatcher) and n workers writing through RemoteStore to the
// coordinator — the production topology in one test process.
func startFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	store, err := campaign.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := &testFleet{
		ctl:      chaos.New(),
		registry: fleet.NewRegistry(time.Hour, 2*time.Hour), // failure counts, not aging, drive state here
		workers:  make(map[string]*workerProc),
	}
	f.dispatcher = fleet.NewDispatcher(f.registry, &http.Client{Transport: f.ctl.Transport(nil)})
	f.dispatcher.Sleep = func(time.Duration) {} // no real backoff waits in tests

	f.coordSched = campaign.NewScheduler(4, store)
	coordSrv := service.New(f.coordSched, service.Options{
		Quick: true, ArtifactDir: t.TempDir(),
		Fleet: &fleet.Coordinator{Registry: f.registry, Dispatcher: f.dispatcher},
	})
	f.coordTS = httptest.NewServer(coordSrv.Handler())
	t.Cleanup(func() { f.coordTS.Close(); coordSrv.Close(); f.coordSched.Close() })

	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("w%d", i)
		wsched := campaign.NewScheduler(2, &fleet.RemoteStore{Base: f.coordTS.URL, WorkerID: id})
		wsrv := service.New(wsched, service.Options{Quick: true, ArtifactDir: t.TempDir()})
		wts := httptest.NewServer(wsrv.Handler())
		t.Cleanup(func() { wts.Close(); wsrv.Close(); wsched.Close() })
		if err := f.registry.Register(fleet.Worker{ID: id, URL: wts.URL}); err != nil {
			t.Fatal(err)
		}
		f.workers[id] = &workerProc{id: id, ts: wts, sched: wsched}
	}
	return f
}

// expansionKeys expands scenarioDoc exactly as the service will and
// returns the campaign keys, so tests can reason about rendezvous
// placement before submitting anything.
func expansionKeys(t *testing.T) []string {
	t.Helper()
	sc, err := scenario.Parse([]byte(scenarioDoc), "local")
	if err != nil {
		t.Fatal(err)
	}
	p := &scenario.Planner{Quick: true}
	sweeps, pinned, err := p.ExpandParts(sc)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, batch := range sweeps {
		for _, rs := range batch {
			keys = append(keys, campaign.Key(rs))
		}
	}
	for _, rs := range pinned {
		keys = append(keys, campaign.Key(rs))
	}
	return keys
}

// runScenario submits scenarioDoc to the coordinator and polls until
// the run reaches a terminal state, returning (id, state).
func runScenario(t *testing.T, baseURL string) (id, state string) {
	t.Helper()
	resp, err := http.Post(baseURL+"/api/v1/scenarios", "application/json",
		strings.NewReader(scenarioDoc))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scenario submit = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(120 * time.Second)
	for st.State == "running" {
		if time.Now().After(deadline) {
			t.Fatalf("scenario %s never finished", st.ID)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(baseURL + "/api/v1/scenarios/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
	}
	if st.Error != "" {
		t.Logf("scenario %s error: %s", st.ID, st.Error)
	}
	return st.ID, st.State
}

// fetchOutput reads a finished scenario's rendered output.
func fetchOutput(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/api/v1/scenarios/" + id + "/output")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestKillOneOfThreeWorkersMidCampaign is the headline fault drill: a
// three-worker fleet runs the scenario while the worker owning the most
// keys is crashed after completing exactly one dispatch. The campaign
// must still finish with zero lost jobs, zero duplicate fresh
// simulations fleet-wide, retries and re-sharding visible in the
// dispatcher counters, and output byte-identical to a single-process
// run of the same scenario. A second pass must be served entirely from
// the store: fleet-wide fresh_sims unchanged.
func TestKillOneOfThreeWorkersMidCampaign(t *testing.T) {
	f := startFleet(t, 3)

	// Pick the victim from rendezvous ownership of the expansion keys —
	// deterministic, since placement depends only on key bytes and the
	// stable worker IDs.
	keys := expansionKeys(t)
	candidates := []fleet.Worker{{ID: "w1"}, {ID: "w2"}, {ID: "w3"}}
	owned := map[string]int{}
	for _, k := range keys {
		w, ok := fleet.Pick(k, candidates)
		if !ok {
			t.Fatal("Pick failed on a non-empty candidate set")
		}
		owned[w.ID]++
	}
	victim := "w1"
	for id, n := range owned {
		if n > owned[victim] {
			victim = id
		}
	}
	if owned[victim] < 2 {
		t.Fatalf("victim %s owns %d of %d keys; need >= 2 for a mid-campaign crash (ownership %v)",
			victim, owned[victim], len(keys), owned)
	}

	// Crash the victim after one completed dispatch: it does real work
	// first, then every further request to it fails before arriving —
	// no torn responses, no work lost in flight.
	f.ctl.KillAfter(chaos.Host(f.workers[victim].ts.URL), 1)

	if _, state := runScenario(t, f.coordTS.URL); state != "done" {
		t.Fatalf("campaign with a mid-run worker crash ended as %q, want done", state)
	}

	// Zero lost jobs, zero duplicates: the coordinator simulated each
	// unique key exactly once fleet-wide, and the per-worker fresh-sim
	// counts add up to exactly that.
	fresh := f.coordSched.Stats().Misses
	if fresh != len(keys) {
		t.Errorf("fleet-wide fresh sims = %d, want %d (one per unique key)", fresh, len(keys))
	}
	sum := 0
	for _, w := range f.workers {
		sum += w.sched.Stats().Misses
	}
	if sum != fresh {
		t.Errorf("worker fresh sims sum to %d, coordinator dispatched %d — duplicates or losses", sum, fresh)
	}
	if got := f.workers[victim].sched.Stats().Misses; got != 1 {
		t.Errorf("victim simulated %d jobs, want exactly the 1 allowed before the crash", got)
	}

	ds := f.dispatcher.Stats()
	if ds.Retries < 1 || ds.Resharded < 1 {
		t.Errorf("dispatcher stats = %+v, want the victim's lost jobs retried and re-sharded", ds)
	}
	for _, ws := range f.registry.Snapshot() {
		if ws.ID == victim && ws.State == fleet.Alive {
			t.Errorf("victim %s still Alive after failed dispatches", victim)
		}
	}

	// Second pass: everything is memoized; no new fresh sims anywhere.
	if _, state := runScenario(t, f.coordTS.URL); state != "done" {
		t.Fatalf("second pass ended as %q, want done", state)
	}
	if got := f.coordSched.Stats().Misses; got != fresh {
		t.Errorf("second pass grew fleet-wide fresh sims %d -> %d; store should have served it all", fresh, got)
	}
	if got := f.dispatcher.Stats().Dispatched; got != ds.Dispatched {
		t.Errorf("second pass dispatched %d new jobs, want 0", got-ds.Dispatched)
	}
}

// TestFleetOutputMatchesSingleProcess renders the scenario once through
// a healthy fleet and once in-process, and requires byte-identical
// output: distribution must be invisible in the figures.
func TestFleetOutputMatchesSingleProcess(t *testing.T) {
	f := startFleet(t, 3)
	id, state := runScenario(t, f.coordTS.URL)
	if state != "done" {
		t.Fatalf("fleet pass ended as %q, want done", state)
	}
	fleetOut := fetchOutput(t, f.coordTS.URL, id)

	sc, err := scenario.Parse([]byte(scenarioDoc), "local")
	if err != nil {
		t.Fatal(err)
	}
	local := &scenario.Planner{Engine: campaign.New(2), Quick: true}
	var buf bytes.Buffer
	if err := local.Execute(sc, &buf, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetOut, buf.Bytes()) {
		t.Errorf("fleet output (%d bytes) differs from single-process output (%d bytes)",
			len(fleetOut), buf.Len())
	}
}

// lockedClock is a goroutine-safe manual clock for the partition test.
type lockedClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *lockedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *lockedClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestHeartbeatPartitionAndHeal drives the production Join loop through
// a scripted partition: the worker registers and stays Alive, its
// heartbeats are then dropped until the coordinator ages it to Dead,
// and healing the partition resurrects it — all on an injected clock,
// so the thresholds are exact.
func TestHeartbeatPartitionAndHeal(t *testing.T) {
	clk := &lockedClock{now: time.Unix(1_700_000_000, 0)}
	registry := fleet.NewRegistry(3*time.Second, 10*time.Second)
	registry.SetClock(clk.Now)

	sched := campaign.NewScheduler(1, nil)
	srv := service.New(sched, service.Options{
		Quick: true, ArtifactDir: t.TempDir(),
		Fleet: fleet.NewCoordinator(registry, nil),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); sched.Close() })

	ctl := chaos.New()
	ctx, cancel := context.WithCancel(context.Background())
	joinDone := make(chan error, 1)
	go func() {
		joinDone <- fleet.Join(ctx, fleet.JoinConfig{
			Coordinator: ts.URL,
			Self:        fleet.Worker{ID: "jw", URL: "http://worker.invalid"},
			Every:       2 * time.Millisecond,
			Client:      &http.Client{Transport: ctl.Transport(nil)},
		})
	}()
	t.Cleanup(cancel)

	stateOf := func() (fleet.State, bool) {
		for _, ws := range registry.Snapshot() {
			if ws.ID == "jw" {
				return ws.State, true
			}
		}
		return 0, false
	}
	waitFor := func(want fleet.State, context string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if st, ok := stateOf(); ok && st == want {
				return
			}
			if time.Now().After(deadline) {
				st, ok := stateOf()
				t.Fatalf("%s: worker state = %v (registered=%v), want %v", context, st, ok, want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	waitFor(fleet.Alive, "after join")

	// Partition: heartbeats vanish, the clock marches past DeadAfter.
	ctl.DropHeartbeats("jw")
	clk.Advance(11 * time.Second)
	waitFor(fleet.Dead, "after 11s of heartbeat silence")
	// The drop is total, so the worker cannot flap back on its own.
	time.Sleep(20 * time.Millisecond)
	if st, _ := stateOf(); st != fleet.Dead {
		t.Fatalf("partitioned worker resurrected itself: %v", st)
	}

	// Heal: the very next delivered heartbeat restores liveness.
	ctl.DeliverHeartbeats("jw")
	waitFor(fleet.Alive, "after partition heals")

	cancel()
	if err := <-joinDone; !errors.Is(err, context.Canceled) {
		t.Errorf("Join returned %v, want context.Canceled", err)
	}
}

// TestControllerPrimitives exercises each fault primitive against a
// live server: kill/revive, counted KillAfter, pause/resume honoring
// request contexts, and added latency.
func TestControllerPrimitives(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()
	host := chaos.Host(backend.URL)

	ctl := chaos.New()
	client := &http.Client{Transport: ctl.Transport(nil)}
	get := func() error {
		resp, err := client.Get(backend.URL)
		if err == nil {
			resp.Body.Close()
		}
		return err
	}

	if err := get(); err != nil {
		t.Fatalf("fault-free transport failed: %v", err)
	}

	ctl.Kill(host)
	if err := get(); err == nil {
		t.Fatal("request to a killed host succeeded")
	}
	ctl.Revive(host)
	if err := get(); err != nil {
		t.Fatalf("revived host still failing: %v", err)
	}

	ctl.KillAfter(host, 2)
	for i := 0; i < 2; i++ {
		if err := get(); err != nil {
			t.Fatalf("KillAfter(2): round trip %d failed early: %v", i+1, err)
		}
	}
	if err := get(); err == nil {
		t.Fatal("KillAfter(2): third round trip succeeded")
	}
	ctl.Revive(host)

	// Pause holds requests until resume; a paused request still honors
	// its context deadline.
	ctl.Pause(host)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, backend.URL, nil)
	if _, err := client.Do(req); err == nil {
		t.Fatal("paused request completed before resume")
	}
	cancel()
	released := make(chan error, 1)
	go func() { released <- get() }()
	select {
	case err := <-released:
		t.Fatalf("paused request returned before Resume: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	ctl.Resume(host)
	if err := <-released; err != nil {
		t.Fatalf("request after Resume failed: %v", err)
	}

	ctl.Delay(host, 15*time.Millisecond)
	start := time.Now()
	if err := get(); err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Errorf("delayed request returned in %v, want >= 15ms", el)
	}
	ctl.Delay(host, 0)
}

// TestHeartbeatDropIsSelective checks heartbeat drops key on the
// sending worker and leave all other traffic untouched.
func TestHeartbeatDropIsSelective(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()

	ctl := chaos.New()
	client := &http.Client{Transport: ctl.Transport(nil)}
	send := func(path, worker string) error {
		req, _ := http.NewRequest(http.MethodPost, backend.URL+path, strings.NewReader("{}"))
		if worker != "" {
			req.Header.Set(fleet.WorkerHeader, worker)
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		return err
	}

	ctl.DropHeartbeats("w1")
	if err := send(fleet.HeartbeatPath, "w1"); err == nil {
		t.Error("dropped worker's heartbeat got through")
	}
	if err := send(fleet.HeartbeatPath, "w2"); err != nil {
		t.Errorf("other worker's heartbeat dropped: %v", err)
	}
	if err := send(fleet.RunPath, "w1"); err != nil {
		t.Errorf("non-heartbeat traffic from the dropped worker failed: %v", err)
	}
	ctl.DeliverHeartbeats("w1")
	if err := send(fleet.HeartbeatPath, "w1"); err != nil {
		t.Errorf("heartbeat still dropped after DeliverHeartbeats: %v", err)
	}
}
