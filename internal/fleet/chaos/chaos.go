// Package chaos is a deterministic fault-injection harness for fleet
// tests: a Controller wraps any http.RoundTripper and, under test
// control, kills, pauses, or delays traffic to chosen hosts and drops
// chosen workers' heartbeats. Faults are injected at the transport
// seam, so the code under test — dispatcher, join loop, remote store —
// runs unmodified production paths while the test scripts exactly
// which request fails and when.
//
// Determinism comes from the failure model: a request either completes
// fully or never reaches the target (the transport fails it before
// forwarding). KillAfter(host, n) lets exactly n round trips through
// and fails the rest — so a test can let a worker finish one job and
// then "crash" it at a precisely reproducible point, with no partial
// responses and no timing races.
package chaos

import (
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"github.com/spechpc/spechpc-sim/internal/fleet"
)

// ErrKilled is the transport error injected for killed hosts and
// dropped heartbeats — the stand-in for "connection refused".
type errKilled struct{ host string }

func (e *errKilled) Error() string { return "chaos: host " + e.host + " killed" }

// Controller scripts faults. All methods are safe for concurrent use
// with in-flight requests; rules are keyed by host (the "host:port" of
// the target URL) except heartbeat drops, which are keyed by the
// sending worker's ID (fleet.WorkerHeader).
type Controller struct {
	mu     sync.Mutex
	rules  map[string]*rule
	dropHB map[string]bool
}

type rule struct {
	killed    bool
	killAfter int // remaining allowed round trips when killed is armed via KillAfter
	armed     bool
	delay     time.Duration
	pause     chan struct{} // non-nil while paused; closed on resume
}

// New builds a fault-free controller.
func New() *Controller {
	return &Controller{rules: make(map[string]*rule), dropHB: make(map[string]bool)}
}

// Host extracts the "host:port" rule key from a base URL, panicking on
// a malformed one (test-only code: fail loudly).
func Host(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		panic(fmt.Sprintf("chaos: bad URL %q: %v", rawURL, err))
	}
	return u.Host
}

func (c *Controller) rule(host string) *rule {
	r := c.rules[host]
	if r == nil {
		r = &rule{}
		c.rules[host] = r
	}
	return r
}

// Kill fails all future requests to host without forwarding them.
func (c *Controller) Kill(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rule(host)
	r.killed, r.armed = true, false
}

// KillAfter lets exactly n more round trips to host complete, then
// kills it — the deterministic mid-campaign crash.
func (c *Controller) KillAfter(host string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rule(host)
	r.armed, r.killAfter, r.killed = true, n, false
}

// Revive clears a kill (from Kill or a tripped KillAfter).
func (c *Controller) Revive(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rule(host)
	r.killed, r.armed = false, false
}

// Pause blocks requests to host until Resume; paused requests still
// honor their context deadlines.
func (c *Controller) Pause(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rule(host)
	if r.pause == nil {
		r.pause = make(chan struct{})
	}
}

// Resume releases requests blocked by Pause.
func (c *Controller) Resume(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rule(host)
	if r.pause != nil {
		close(r.pause)
		r.pause = nil
	}
}

// Delay adds fixed latency to every request to host (zero clears it).
func (c *Controller) Delay(host string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rule(host).delay = d
}

// DropHeartbeats fails every heartbeat sent by workerID (matched on
// fleet.WorkerHeader), simulating a partition that severs the health
// channel while dispatch traffic still flows.
func (c *Controller) DropHeartbeats(workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropHB[workerID] = true
}

// DeliverHeartbeats undoes DropHeartbeats.
func (c *Controller) DeliverHeartbeats(workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.dropHB, workerID)
}

// Transport wraps base (nil means http.DefaultTransport) with the
// controller's fault rules. Use it as the Transport of every client
// whose traffic the test wants under chaos control.
func (c *Controller) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{ctl: c, base: base}
}

type transport struct {
	ctl  *Controller
	base http.RoundTripper
}

// RoundTrip applies, in order: heartbeat drops, kills (including
// KillAfter trips), pause, delay — then forwards to the base
// transport. The kill decision is taken before forwarding, so a killed
// request never reaches the target.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	c := t.ctl

	c.mu.Lock()
	if req.URL.Path == fleet.HeartbeatPath && c.dropHB[req.Header.Get(fleet.WorkerHeader)] {
		c.mu.Unlock()
		return nil, &errKilled{host: host}
	}
	r := c.rule(host)
	if r.armed {
		if r.killAfter <= 0 {
			r.killed, r.armed = true, false
		} else {
			r.killAfter--
		}
	}
	if r.killed {
		c.mu.Unlock()
		return nil, &errKilled{host: host}
	}
	pause, delay := r.pause, r.delay
	c.mu.Unlock()

	if pause != nil {
		select {
		case <-pause:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return t.base.RoundTrip(req)
}
