// Package fleet turns a set of spechpcd processes into one
// failure-tolerant serving tier. A coordinator process owns the front
// door: submissions flow through its ordinary campaign.Scheduler (so
// priority queueing, cross-request coalescing, the memo, and store
// write-through all apply fleet-wide), but the scheduler's Runner is
// replaced by a Dispatcher that ships each job to a worker over HTTP.
// Workers are plain spechpcd processes that register with the
// coordinator, heartbeat it, and write results to the coordinator's
// store through RemoteStore, so every result is visible cluster-wide.
//
// Placement uses rendezvous (highest-random-weight) hashing of the
// content-addressed campaign key over the live worker set: identical
// specs land on the same worker no matter which client submitted them,
// and losing a worker only moves that worker's share of keys. Worker
// loss is detected by the Registry's heartbeat state machine
// (Alive → Suspect → Dead) and tolerated by the Dispatcher's capped
// exponential backoff with jitter, which re-ranks each retry over the
// surviving workers. The front door itself is protected by Admission
// (per-client token buckets, queue-depth shedding with priority lanes,
// optional degradation to the surrogate fast tier).
//
// The package is transport-thin by design: every wire exchange is JSON
// over the handful of /api/v1/fleet/* routes declared below, served by
// internal/service, so a test can stand up a whole fleet with httptest
// servers and the chaos subpackage's fault-injecting transport.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// Fleet protocol routes, served by internal/service. Workers call
// RegisterPath / HeartbeatPath / the store routes on the coordinator;
// the coordinator calls RunPath on workers; WorkersPath is for
// operators. The store routes use StorePathPrefix + <campaign key>.
const (
	RunPath         = "/api/v1/fleet/run"
	RegisterPath    = "/api/v1/fleet/register"
	HeartbeatPath   = "/api/v1/fleet/heartbeat"
	WorkersPath     = "/api/v1/fleet/workers"
	StorePathPrefix = "/api/v1/fleet/store/"

	// WorkerHeader carries the sending worker's ID on heartbeats and
	// store traffic — the chaos harness keys heartbeat drops on it, and
	// log lines use it to attribute writes.
	WorkerHeader = "X-Fleet-Worker"
)

// RunRequest is the coordinator→worker job dispatch body. The response
// is a campaign.Record (the store exchange format), so a dispatch and a
// store read deserialize identically.
type RunRequest struct {
	Spec spec.RunSpec `json:"spec"`
}

// RegisterRequest is the worker→coordinator enrolment body.
type RegisterRequest struct {
	Worker Worker `json:"worker"`
}

// HeartbeatRequest is the worker→coordinator liveness ping body.
type HeartbeatRequest struct {
	ID string `json:"id"`
}

// State is a worker's health as judged by the coordinator's Registry.
type State int

const (
	// Alive: heartbeats current, no outstanding dispatch failures.
	Alive State = iota
	// Suspect: a heartbeat is overdue or a dispatch failed — still
	// eligible for work, but only after every Alive worker is ruled out.
	Suspect
	// Dead: heartbeats long overdue or repeated dispatch failures; the
	// worker receives no jobs until it re-registers or heartbeats again.
	Dead
)

// String returns the lowercase state name used in /statsz and logs.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Worker identifies one spechpcd worker process. ID must be stable
// across restarts (it is the rendezvous-hash identity, so a stable ID
// keeps a restarted worker's key share); URL is the base HTTP address
// the coordinator dispatches to.
type Worker struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Capacity int    `json:"capacity,omitempty"` // advertised sim workers, informational
}

// WorkerStatus is a point-in-time health snapshot of one worker.
type WorkerStatus struct {
	Worker
	State    State     `json:"state"`
	LastSeen time.Time `json:"last_seen"`
	Fails    int       `json:"fails"`
}

// deadFailures is the dispatch-failure count that marks a worker Dead
// without waiting for its heartbeats to age out: the first failure
// makes it Suspect (skipped while alive workers remain), the second —
// necessarily from a retry or another job after the first — kills it.
const deadFailures = 2

// Registry tracks worker membership and health on the coordinator. A
// worker's state is derived, never stored: from the age of its last
// heartbeat (or successful dispatch) against the SuspectAfter /
// DeadAfter thresholds, and from its consecutive dispatch failures.
// All methods are safe for concurrent use.
type Registry struct {
	suspectAfter time.Duration
	deadAfter    time.Duration
	clock        func() time.Time // injectable for boundary tests

	mu      sync.Mutex
	workers map[string]*workerEntry
}

type workerEntry struct {
	w        Worker
	lastSeen time.Time
	fails    int
}

// Default health thresholds: a worker is Suspect after 3s of heartbeat
// silence and Dead after 10s. Production fleets heartbeat every ~1s
// (DefaultHeartbeatEvery), so one lost ping is tolerated and three in a
// row make the worker suspect.
const (
	DefaultSuspectAfter   = 3 * time.Second
	DefaultDeadAfter      = 10 * time.Second
	DefaultHeartbeatEvery = time.Second
)

// NewRegistry builds a registry with the given heartbeat-age
// thresholds; zero durations take the package defaults.
func NewRegistry(suspectAfter, deadAfter time.Duration) *Registry {
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter
	}
	if deadAfter <= 0 {
		deadAfter = DefaultDeadAfter
	}
	return &Registry{
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		clock:        time.Now,
		workers:      make(map[string]*workerEntry),
	}
}

// SetClock replaces the registry's time source — tests pin state
// transitions to exact interval boundaries with it. Not for production.
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = now
}

// Register enrols (or re-enrols) a worker and marks it freshly alive.
// Re-registration under an existing ID replaces the URL and clears the
// failure count — the restart path for a crashed worker.
func (r *Registry) Register(w Worker) error {
	if w.ID == "" || w.URL == "" {
		return fmt.Errorf("fleet: register needs a worker id and url, got %+v", w)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers[w.ID] = &workerEntry{w: w, lastSeen: r.clock()}
	return nil
}

// Heartbeat refreshes a worker's liveness. It reports false for an
// unknown ID — the signal for the worker to re-register (a coordinator
// restart loses membership; workers must survive that).
func (r *Registry) Heartbeat(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.workers[id]
	if !ok {
		return false
	}
	e.lastSeen = r.clock()
	return true
}

// ReportFailure records a failed dispatch to the worker: one failure
// makes it Suspect, deadFailures make it Dead.
func (r *Registry) ReportFailure(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.workers[id]; ok {
		e.fails++
	}
}

// ReportSuccess records a completed dispatch — proof of liveness at
// least as strong as a heartbeat, so it also refreshes lastSeen and
// clears the failure count.
func (r *Registry) ReportSuccess(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.workers[id]; ok {
		e.fails = 0
		e.lastSeen = r.clock()
	}
}

// state derives the entry's health at time now.
func (r *Registry) state(e *workerEntry, now time.Time) State {
	age := now.Sub(e.lastSeen)
	switch {
	case e.fails >= deadFailures || age >= r.deadAfter:
		return Dead
	case e.fails > 0 || age >= r.suspectAfter:
		return Suspect
	default:
		return Alive
	}
}

// InState returns the workers currently in exactly state s, sorted by
// ID for deterministic iteration.
func (r *Registry) InState(s State) []Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	var out []Worker
	for _, e := range r.workers {
		if r.state(e, now) == s {
			out = append(out, e.w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Counts returns the number of workers in each state — the /statsz
// worker-health gauge.
func (r *Registry) Counts() (alive, suspect, dead int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	for _, e := range r.workers {
		switch r.state(e, now) {
		case Alive:
			alive++
		case Suspect:
			suspect++
		default:
			dead++
		}
	}
	return alive, suspect, dead
}

// Snapshot returns every registered worker's status, sorted by ID —
// the WorkersPath response body.
func (r *Registry) Snapshot() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	out := make([]WorkerStatus, 0, len(r.workers))
	for _, e := range r.workers {
		out = append(out, WorkerStatus{
			Worker: e.w, State: r.state(e, now), LastSeen: e.lastSeen, Fails: e.fails,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Coordinator bundles the pieces a coordinator-mode spechpcd plugs into
// its service: the membership registry and the dispatching runner.
type Coordinator struct {
	Registry   *Registry
	Dispatcher *Dispatcher
}

// NewCoordinator wires a registry and a dispatcher over it with the
// given HTTP client (nil means http.DefaultClient).
func NewCoordinator(reg *Registry, client *http.Client) *Coordinator {
	return &Coordinator{Registry: reg, Dispatcher: NewDispatcher(reg, client)}
}

// Runner adapts the dispatcher to the scheduler's Runner seam. Jobs
// that keep full event traces run locally on the coordinator — event
// timelines are deliberately not part of the wire format (they are not
// part of the store format either), and such jobs are interactive
// one-offs, not campaign load.
func (c *Coordinator) Runner() campaign.Runner {
	return func(rs spec.RunSpec) (spec.RunResult, error) {
		if rs.KeepTrace {
			return spec.Run(rs)
		}
		return c.Dispatcher.Run(rs)
	}
}

// JoinConfig configures a worker's membership loop.
type JoinConfig struct {
	Coordinator string        // coordinator base URL, e.g. http://host:port
	Self        Worker        // this worker's identity and advertised URL
	Every       time.Duration // heartbeat period; zero means DefaultHeartbeatEvery
	Client      *http.Client  // nil means http.DefaultClient
}

// Join registers the worker with the coordinator and heartbeats it
// until ctx is cancelled, re-registering whenever the coordinator stops
// recognizing the worker (its restart loses membership state).
// Transient errors are retried on the next tick — the coordinator's
// suspect/dead thresholds are the authority on how much silence is
// tolerable, so Join itself never gives up. The initial registration is
// also retried, so workers may start before their coordinator.
func Join(ctx context.Context, cfg JoinConfig) error {
	if cfg.Coordinator == "" || cfg.Self.ID == "" || cfg.Self.URL == "" {
		return fmt.Errorf("fleet: join needs a coordinator URL and a worker id+url")
	}
	every := cfg.Every
	if every <= 0 {
		every = DefaultHeartbeatEvery
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}

	registered := register(ctx, client, cfg) == nil
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		if !registered {
			registered = register(ctx, client, cfg) == nil
			continue
		}
		ok, err := heartbeat(ctx, client, cfg)
		if err == nil && !ok {
			registered = register(ctx, client, cfg) == nil
		}
	}
}

func register(ctx context.Context, client *http.Client, cfg JoinConfig) error {
	body, _ := json.Marshal(RegisterRequest{Worker: cfg.Self})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		cfg.Coordinator+RegisterPath, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(WorkerHeader, cfg.Self.ID)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: register: coordinator answered %s", resp.Status)
	}
	return nil
}

// heartbeat pings the coordinator; ok=false with nil err means the
// coordinator no longer knows this worker and it must re-register.
func heartbeat(ctx context.Context, client *http.Client, cfg JoinConfig) (ok bool, err error) {
	body, _ := json.Marshal(HeartbeatRequest{ID: cfg.Self.ID})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		cfg.Coordinator+HeartbeatPath, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(WorkerHeader, cfg.Self.ID)
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound, http.StatusGone:
		return false, nil
	default:
		return false, fmt.Errorf("fleet: heartbeat: coordinator answered %s", resp.Status)
	}
}
