package fleet

import "hash/fnv"

// Rendezvous (highest-random-weight) hashing assigns each campaign key
// an owner among the workers: every (key, worker) pair gets a pseudo-
// random weight and the highest weight wins. Unlike a ring, there is no
// token state to maintain, placement depends only on the key and the
// candidate set, and removing a worker moves exactly that worker's keys
// (each to its second-ranked choice) — the property the dispatcher's
// retry path leans on when a worker dies mid-campaign.

// weight scores one (key, worker) pair: FNV-64a over the key, a NUL
// separator (neither side contains one — keys are "v1-"+hex, IDs are
// flag-supplied tokens), and the worker ID. The worker's stable ID, not
// its URL, is hashed so a worker restarting on a new port keeps its
// share of keys.
func weight(key, workerID string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(workerID))
	return h.Sum64()
}

// Rank orders workers by descending preference for the key (weight
// desc, ID asc on the astronomically unlikely tie). The first element
// is the key's owner; the rest are the failover order.
func Rank(key string, workers []Worker) []Worker {
	out := append([]Worker(nil), workers...)
	// Insertion sort: candidate sets are a handful of workers, and this
	// avoids importing sort for a two-key comparison.
	for i := 1; i < len(out); i++ {
		w := out[i]
		ww := weight(key, w.ID)
		j := i - 1
		for j >= 0 {
			wj := weight(key, out[j].ID)
			if wj > ww || (wj == ww && out[j].ID <= w.ID) {
				break
			}
			out[j+1] = out[j]
			j--
		}
		out[j+1] = w
	}
	return out
}

// Pick returns the key's owner among workers, reporting false for an
// empty candidate set.
func Pick(key string, workers []Worker) (Worker, bool) {
	if len(workers) == 0 {
		return Worker{}, false
	}
	best, bw := workers[0], weight(key, workers[0].ID)
	for _, w := range workers[1:] {
		if ww := weight(key, w.ID); ww > bw || (ww == bw && w.ID < best.ID) {
			best, bw = w, ww
		}
	}
	return best, true
}
