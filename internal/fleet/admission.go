package fleet

import (
	"sync"
	"sync/atomic"
	"time"
)

// Decision is the front door's verdict on one submission.
type Decision int

const (
	// Admit: let the submission into the scheduler.
	Admit Decision = iota
	// Degrade: the exact queue is saturated but the caller may answer
	// from the surrogate fast tier instead of shedding.
	Degrade
	// Shed: reject now with 429 and a Retry-After hint.
	Shed
)

// AdmissionConfig tunes the front door. Zero values disable the
// corresponding control (RatePerClient <= 0: no rate limiting;
// MaxQueue <= 0: no queue shedding), so an all-zero config admits
// everything — the pre-fleet behaviour.
type AdmissionConfig struct {
	// RatePerClient is each client's sustained submissions/second;
	// Burst is the bucket depth (zero means max(1, RatePerClient)).
	RatePerClient float64
	Burst         float64

	// MaxQueue sheds work when the scheduler's queue depth reaches it.
	// Bulk submissions (priority <= 0) shed earlier, at
	// BulkFraction×MaxQueue (zero means DefaultBulkFraction), keeping
	// headroom for interactive, higher-priority requests — the priority
	// lane.
	MaxQueue     int
	BulkFraction float64

	// RetryAfter is the hint attached to queue sheds (rate-limit sheds
	// compute the actual token wait); zero means DefaultRetryAfter.
	RetryAfter time.Duration

	// Clock is the token-bucket time source; nil means time.Now.
	Clock func() time.Time
}

// Admission defaults; see AdmissionConfig.
const (
	DefaultBulkFraction = 0.5
	DefaultRetryAfter   = time.Second
)

// AdmissionStats counts front-door outcomes for /statsz.
type AdmissionStats struct {
	Admitted    uint64 `json:"admitted"`
	RateLimited uint64 `json:"rate_limited"` // shed by a client's token bucket
	QueueShed   uint64 `json:"queue_shed"`   // shed (or degrade-shed) on queue depth
	Degraded    uint64 `json:"degraded"`     // answered by the surrogate instead of shed
}

// Admission is the front-door gate: per-client token buckets in front
// of a queue-depth limiter with priority lanes and optional surrogate
// degradation. Safe for concurrent use.
type Admission struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	buckets map[string]*bucket

	admitted    atomic.Uint64
	rateLimited atomic.Uint64
	queueShed   atomic.Uint64
	degraded    atomic.Uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewAdmission builds a gate from cfg, filling defaulted fields.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.RatePerClient
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.BulkFraction <= 0 || cfg.BulkFraction > 1 {
		cfg.BulkFraction = DefaultBulkFraction
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Admission{cfg: cfg, buckets: make(map[string]*bucket)}
}

// Decide gates one submission. client is the caller's identity (header
// or remote host), priority the submission's scheduler priority,
// queueDepth the scheduler's current backlog, and canDegrade whether
// the caller can answer from the surrogate tier. The returned
// retryAfter is meaningful for Shed only. A Degrade decision is
// tentative — the caller reports how it went via NoteDegraded or
// NoteDegradeShed, which do the counting.
func (a *Admission) Decide(client string, priority, queueDepth int, canDegrade bool) (d Decision, retryAfter time.Duration) {
	if a.cfg.RatePerClient > 0 {
		if wait, ok := a.take(client); !ok {
			a.rateLimited.Add(1)
			return Shed, wait
		}
	}
	if a.cfg.MaxQueue > 0 {
		limit := a.cfg.MaxQueue
		if priority <= 0 {
			if bulk := int(a.cfg.BulkFraction * float64(a.cfg.MaxQueue)); bulk < limit {
				limit = bulk
			}
		}
		if queueDepth >= limit {
			if canDegrade {
				return Degrade, a.cfg.RetryAfter
			}
			a.queueShed.Add(1)
			return Shed, a.cfg.RetryAfter
		}
	}
	a.admitted.Add(1)
	return Admit, 0
}

// take spends one token from client's bucket, reporting the wait until
// a token accrues when the bucket is empty.
func (a *Admission) take(client string) (wait time.Duration, ok bool) {
	now := a.cfg.Clock()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[client]
	if b == nil {
		b = &bucket{tokens: a.cfg.Burst, last: now}
		a.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * a.cfg.RatePerClient
	b.last = now
	if b.tokens > a.cfg.Burst {
		b.tokens = a.cfg.Burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / a.cfg.RatePerClient
	return time.Duration(need * float64(time.Second)), false
}

// NoteDegraded records a saturation-time submission answered by the
// surrogate fast tier.
func (a *Admission) NoteDegraded() { a.degraded.Add(1) }

// NoteDegradeShed records a Degrade decision the surrogate could not
// answer (out of model range), which the caller then shed.
func (a *Admission) NoteDegradeShed() { a.queueShed.Add(1) }

// Stats snapshots the admission counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Admitted:    a.admitted.Load(),
		RateLimited: a.rateLimited.Load(),
		QueueShed:   a.queueShed.Load(),
		Degraded:    a.degraded.Load(),
	}
}
