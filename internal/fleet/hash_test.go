package fleet

import (
	"fmt"
	"testing"
)

func workers(ids ...string) []Worker {
	out := make([]Worker, len(ids))
	for i, id := range ids {
		out[i] = Worker{ID: id, URL: "http://" + id}
	}
	return out
}

// TestRendezvousStability is the sharding contract: placement depends
// only on (key, candidate IDs) — stable across calls, insensitive to
// candidate order and to worker URLs (a restarted worker on a new port
// keeps its keys) — and removing one worker moves only that worker's
// keys.
func TestRendezvousStability(t *testing.T) {
	ws := workers("w1", "w2", "w3")
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("v1-%04x", i)
	}

	owner := make(map[string]string)
	for _, k := range keys {
		w, ok := Pick(k, ws)
		if !ok {
			t.Fatal("Pick failed with candidates present")
		}
		owner[k] = w.ID
	}
	// Stable across calls and candidate permutations.
	perm := workers("w3", "w1", "w2")
	for _, k := range keys {
		if w, _ := Pick(k, perm); w.ID != owner[k] {
			t.Fatalf("key %s: owner %s under permuted candidates, want %s", k, w.ID, owner[k])
		}
	}
	// URL changes must not move keys.
	moved := workers("w1", "w2", "w3")
	for i := range moved {
		moved[i].URL = "http://elsewhere:9"
	}
	for _, k := range keys {
		if w, _ := Pick(k, moved); w.ID != owner[k] {
			t.Fatalf("key %s moved when worker URLs changed", k)
		}
	}

	// Each worker owns a nonempty share (sanity on weight dispersion).
	share := map[string]int{}
	for _, id := range owner {
		share[id]++
	}
	for _, w := range ws {
		if share[w.ID] == 0 {
			t.Errorf("worker %s owns zero of %d keys", w.ID, len(keys))
		}
	}

	// Removing w2: its keys move, everyone else's stay put.
	survivors := workers("w1", "w3")
	for _, k := range keys {
		w, _ := Pick(k, survivors)
		if owner[k] != "w2" && w.ID != owner[k] {
			t.Fatalf("key %s moved from %s to %s though its owner survived", k, owner[k], w.ID)
		}
		if owner[k] == "w2" && w.ID == "w2" {
			t.Fatalf("key %s still assigned to removed worker", k)
		}
	}
}

// TestRankOrdersFailover checks Rank agrees with Pick at every prefix:
// Rank[0] is the owner, and dropping it makes Rank[1] the owner of the
// remainder — the failover order the dispatcher walks.
func TestRankOrdersFailover(t *testing.T) {
	ws := workers("w1", "w2", "w3", "w4")
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("v1-%04x", i)
		ranked := Rank(key, ws)
		if len(ranked) != len(ws) {
			t.Fatalf("Rank returned %d workers, want %d", len(ranked), len(ws))
		}
		remaining := append([]Worker(nil), ws...)
		for _, want := range ranked {
			got, ok := Pick(key, remaining)
			if !ok || got.ID != want.ID {
				t.Fatalf("key %s: rank order disagrees with iterated Pick", key)
			}
			next := remaining[:0]
			for _, w := range remaining {
				if w.ID != got.ID {
					next = append(next, w)
				}
			}
			remaining = next
		}
	}
	if _, ok := Pick("v1-00", nil); ok {
		t.Error("Pick reported an owner among zero candidates")
	}
}
