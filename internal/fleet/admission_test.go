package fleet

import (
	"testing"
	"time"
)

// TestTokenBucketRateLimits drives one client's bucket through burst
// exhaustion and refill with a fake clock: Burst requests pass, the
// next sheds with a wait matching the refill rate, and after that wait
// elapses a request passes again. A second client has its own bucket.
func TestTokenBucketRateLimits(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{RatePerClient: 2, Burst: 3, Clock: clk.Now})

	for i := 0; i < 3; i++ {
		if d, _ := a.Decide("alice", 1, 0, false); d != Admit {
			t.Fatalf("burst request %d not admitted", i)
		}
	}
	d, retry := a.Decide("alice", 1, 0, false)
	if d != Shed {
		t.Fatal("request over burst admitted")
	}
	if want := 500 * time.Millisecond; retry != want {
		t.Errorf("Retry-After = %v, want %v (1 token at 2/s)", retry, want)
	}
	// Other clients are unaffected.
	if d, _ := a.Decide("bob", 1, 0, false); d != Admit {
		t.Error("rate limit leaked across clients")
	}
	clk.Advance(500 * time.Millisecond)
	if d, _ := a.Decide("alice", 1, 0, false); d != Admit {
		t.Error("request after refill interval not admitted")
	}

	st := a.Stats()
	if st.Admitted != 5 || st.RateLimited != 1 {
		t.Errorf("stats = %+v, want 5 admitted / 1 rate-limited", st)
	}
}

// TestQueueDepthLanes pins the priority-lane thresholds: bulk
// (priority <= 0) submissions shed at BulkFraction×MaxQueue while
// interactive ones still pass, and everything sheds at MaxQueue. With a
// degradable caller, saturation yields Degrade instead of Shed.
func TestQueueDepthLanes(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxQueue: 10}) // bulk lane = 5

	cases := []struct {
		priority, depth int
		canDegrade      bool
		want            Decision
	}{
		{0, 4, false, Admit},
		{0, 5, false, Shed}, // bulk lane full
		{1, 5, false, Admit},
		{1, 9, false, Admit},
		{1, 10, false, Shed}, // queue full for everyone
		{5, 10, false, Shed},
		{0, 5, true, Degrade},
		{1, 10, true, Degrade},
	}
	for i, tc := range cases {
		d, retry := a.Decide("c", tc.priority, tc.depth, tc.canDegrade)
		if d != tc.want {
			t.Errorf("case %d (pri %d depth %d degrade %v): %v, want %v",
				i, tc.priority, tc.depth, tc.canDegrade, d, tc.want)
		}
		if d == Shed && retry != DefaultRetryAfter {
			t.Errorf("case %d: Retry-After = %v, want default %v", i, retry, DefaultRetryAfter)
		}
	}

	a.NoteDegraded()
	a.NoteDegradeShed()
	st := a.Stats()
	if st.QueueShed != 4 || st.Degraded != 1 { // 3 sheds above + 1 degrade-shed
		t.Errorf("stats = %+v, want 4 queue-shed / 1 degraded", st)
	}
}

// TestAdmissionZeroConfigAdmitsAll checks the disabled gate is truly
// open: no rate limit, no queue bound.
func TestAdmissionZeroConfigAdmitsAll(t *testing.T) {
	a := NewAdmission(AdmissionConfig{})
	for i := 0; i < 100; i++ {
		if d, _ := a.Decide("flood", 0, 1<<20, false); d != Admit {
			t.Fatalf("zero-config gate shed request %d", i)
		}
	}
}
