package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// ErrNoWorkers means a job could not be placed: no registered worker is
// live, or every candidate has already failed this job. The front door
// maps it to 503 so clients retry later.
var ErrNoWorkers = errors.New("fleet: no live workers")

// simError is a deterministic job failure reported by a worker (HTTP
// 422): the simulation itself rejected the spec or failed its checks.
// Retrying on another worker would reproduce it, so the dispatcher
// surfaces it unretried.
type simError struct{ msg string }

func (e *simError) Error() string { return e.msg }

// DispatchStats counts the dispatcher's fleet-facing events; exposed on
// /statsz so operators can see retries and re-sharding as they happen.
type DispatchStats struct {
	Dispatched uint64 `json:"dispatched"` // jobs completed on a worker
	Retries    uint64 `json:"retries"`    // extra attempts after a failure
	Resharded  uint64 `json:"resharded"`  // jobs that completed on a non-first-choice worker
	NoWorkers  uint64 `json:"no_workers"` // placements that found no live candidate
}

// Dispatcher places jobs on workers: rendezvous-rank the live set for
// the job's campaign key, call the owner, and on transport or worker
// failure walk down the failover order with capped exponential backoff,
// reporting each outcome to the Registry so health state converges.
// Safe for concurrent use by all scheduler workers at once.
type Dispatcher struct {
	Registry *Registry
	Client   *http.Client // nil means http.DefaultClient
	Backoff  Backoff

	// MaxAttempts bounds total tries per job (initial + retries); zero
	// means DefaultMaxAttempts.
	MaxAttempts int
	// CallTimeout bounds one worker call; zero means DefaultCallTimeout.
	// Generous by default: a cold Fig5-scale job is minutes of
	// simulation, and the heartbeat machinery — not the dispatch timeout
	// — is the crash detector.
	CallTimeout time.Duration
	// Sleep replaces time.Sleep between retries in tests.
	Sleep func(time.Duration)

	dispatched atomic.Uint64
	retries    atomic.Uint64
	resharded  atomic.Uint64
	noWorkers  atomic.Uint64
}

// Dispatcher defaults; see the field docs.
const (
	DefaultMaxAttempts = 4
	DefaultCallTimeout = 15 * time.Minute
)

// NewDispatcher builds a dispatcher over the registry with the default
// backoff schedule.
func NewDispatcher(reg *Registry, client *http.Client) *Dispatcher {
	return &Dispatcher{Registry: reg, Client: client}
}

// Stats snapshots the dispatch counters.
func (d *Dispatcher) Stats() DispatchStats {
	return DispatchStats{
		Dispatched: d.dispatched.Load(),
		Retries:    d.retries.Load(),
		Resharded:  d.resharded.Load(),
		NoWorkers:  d.noWorkers.Load(),
	}
}

// pick chooses the best untried worker for key: the rendezvous-ranked
// first choice among Alive workers, then — only when every Alive
// candidate is exhausted — among Suspect ones. Dead workers get
// nothing.
func (d *Dispatcher) pick(key string, tried map[string]bool) (Worker, bool) {
	for _, pool := range [][]Worker{d.Registry.InState(Alive), d.Registry.InState(Suspect)} {
		var fresh []Worker
		for _, w := range pool {
			if !tried[w.ID] {
				fresh = append(fresh, w)
			}
		}
		if w, ok := Pick(key, fresh); ok {
			return w, true
		}
	}
	return Worker{}, false
}

// Run executes one job on the fleet and blocks until it completes,
// fails deterministically, or placement is exhausted. It is the
// coordinator scheduler's Runner, so everything upstream of it — the
// queue, coalescing, the memo, the store — has already filtered this
// job down to a genuine fleet-wide miss.
func (d *Dispatcher) Run(rs spec.RunSpec) (spec.RunResult, error) {
	key := campaign.Key(rs)
	max := d.MaxAttempts
	if max <= 0 {
		max = DefaultMaxAttempts
	}
	sleep := d.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}

	tried := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt < max; attempt++ {
		w, ok := d.pick(key, tried)
		if !ok && attempt > 0 {
			// Every live worker failed this job once; after backoff, let
			// the survivors have another go — ReportFailure may have
			// demoted the genuinely dead ones to Dead by now.
			tried = make(map[string]bool)
			w, ok = d.pick(key, tried)
		}
		if !ok {
			d.noWorkers.Add(1)
			if lastErr != nil {
				return spec.RunResult{}, fmt.Errorf("%w (last failure: %v)", ErrNoWorkers, lastErr)
			}
			return spec.RunResult{}, ErrNoWorkers
		}
		if attempt > 0 {
			d.retries.Add(1)
			sleep(d.Backoff.Delay(attempt - 1))
		}
		tried[w.ID] = true

		res, err := d.call(w, rs)
		if err == nil {
			d.Registry.ReportSuccess(w.ID)
			d.dispatched.Add(1)
			if len(tried) > 1 {
				d.resharded.Add(1)
			}
			return res, nil
		}
		var se *simError
		if errors.As(err, &se) {
			// Deterministic failure: the job is bad, not the worker.
			d.Registry.ReportSuccess(w.ID)
			d.dispatched.Add(1)
			return spec.RunResult{}, errors.New(se.msg)
		}
		d.Registry.ReportFailure(w.ID)
		lastErr = fmt.Errorf("worker %s: %w", w.ID, err)
	}
	return spec.RunResult{}, fmt.Errorf("fleet: job %s failed after %d attempts: %w", key, max, lastErr)
}

// call performs one dispatch round trip. Any returned error except
// *simError is retryable on another worker.
func (d *Dispatcher) call(w Worker, rs spec.RunSpec) (spec.RunResult, error) {
	client := d.Client
	if client == nil {
		client = http.DefaultClient
	}
	timeout := d.CallTimeout
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	body, err := json.Marshal(RunRequest{Spec: rs})
	if err != nil {
		return spec.RunResult{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+RunPath, bytes.NewReader(body))
	if err != nil {
		return spec.RunResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return spec.RunResult{}, err
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		var rec campaign.Record
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			return spec.RunResult{}, fmt.Errorf("decoding result: %w", err)
		}
		res, ok := rec.Result()
		if !ok {
			return spec.RunResult{}, fmt.Errorf("worker returned a malformed record for %s", rec.Key)
		}
		return res, nil
	case http.StatusUnprocessableEntity:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return spec.RunResult{}, &simError{msg: string(bytes.TrimSpace(msg))}
	default:
		// 503 (worker draining), 5xx, 404 (not a worker) — all placement
		// failures worth a different worker.
		return spec.RunResult{}, fmt.Errorf("worker answered %s", resp.Status)
	}
}
