package fleet

import (
	"math"
	"math/rand"
	"time"
)

// Backoff computes capped exponential retry delays with equal jitter:
// attempt n sleeps min(Cap, Base·Mult^n) scaled by a uniform factor in
// [0.5, 1). The deterministic half keeps retries from hammering a
// recovering worker too soon; the jittered half de-synchronizes the
// retry herd when many in-flight jobs lose the same worker at once.
type Backoff struct {
	Base time.Duration // first delay; zero means DefaultBackoffBase
	Cap  time.Duration // delay ceiling; zero means DefaultBackoffCap
	Mult float64       // growth factor; zero means DefaultBackoffMult

	// Jitter returns a uniform sample in [0, 1). Nil uses the global
	// math/rand source (safe for concurrent use); tests inject a seeded
	// rand.Float64 to pin the schedule.
	Jitter func() float64
}

// Default backoff schedule: 100ms, 200ms, 400ms, … capped at 5s
// (before jitter halves-to-full scales each step).
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffCap  = 5 * time.Second
	DefaultBackoffMult = 2.0
)

// Delay returns the sleep before retry number attempt (0-based: the
// delay between the initial try and the first retry is Delay(0)).
func (b Backoff) Delay(attempt int) time.Duration {
	base, cap_, mult := b.Base, b.Cap, b.Mult
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap_ <= 0 {
		cap_ = DefaultBackoffCap
	}
	if mult <= 0 {
		mult = DefaultBackoffMult
	}
	if attempt < 0 {
		attempt = 0
	}
	d := float64(base) * math.Pow(mult, float64(attempt))
	if d > float64(cap_) {
		d = float64(cap_)
	}
	jitter := b.Jitter
	if jitter == nil {
		jitter = rand.Float64
	}
	return time.Duration(d * (0.5 + 0.5*jitter()))
}
