package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// fakeWorker is an httptest stand-in for a worker's RunPath handler:
// it answers with a synthetic but well-formed Record (or a scripted
// failure) and counts the dispatches it received.
type fakeWorker struct {
	id    string
	srv   *httptest.Server
	calls atomic.Int64
	fail  atomic.Int32 // 0 = succeed, else the HTTP status to answer
}

func newFakeWorker(t *testing.T, id string) *fakeWorker {
	t.Helper()
	w := &fakeWorker{id: id}
	w.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path != RunPath {
			http.NotFound(rw, r)
			return
		}
		w.calls.Add(1)
		if code := int(w.fail.Load()); code != 0 {
			http.Error(rw, "scripted failure from "+w.id, code)
			return
		}
		var req RunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		res := spec.RunResult{
			Spec:   req.Spec,
			Report: bench.RunReport{StepsModeled: 5, StepsSimulated: 5},
			Trace:  trace.FromSums(make([][]float64, req.Spec.Ranks)),
		}
		json.NewEncoder(rw).Encode(campaign.NewRecord(campaign.Key(req.Spec), res))
	}))
	t.Cleanup(w.srv.Close)
	return w
}

func (w *fakeWorker) worker() Worker { return Worker{ID: w.id, URL: w.srv.URL} }

func testJob(tag int) spec.RunSpec {
	return spec.RunSpec{
		Benchmark: "lbm", Class: bench.Tiny,
		Cluster: machine.MustGet("ClusterA"), Ranks: 2,
		Options: bench.Options{SimSteps: tag},
	}
}

// newTestDispatcher wires n fake workers into a registry with no-op
// retry sleeps and generous health thresholds.
func newTestDispatcher(t *testing.T, n int) (*Dispatcher, []*fakeWorker) {
	t.Helper()
	reg := NewRegistry(time.Hour, 2*time.Hour)
	fakes := make([]*fakeWorker, n)
	for i := range fakes {
		fakes[i] = newFakeWorker(t, "w"+string(rune('1'+i)))
		if err := reg.Register(fakes[i].worker()); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDispatcher(reg, nil)
	d.Sleep = func(time.Duration) {}
	return d, fakes
}

// ownerOf returns the fake holding the key's rendezvous ownership.
func ownerOf(key string, fakes []*fakeWorker) *fakeWorker {
	ws := make([]Worker, len(fakes))
	for i, f := range fakes {
		ws[i] = f.worker()
	}
	w, _ := Pick(key, ws)
	for _, f := range fakes {
		if f.id == w.ID {
			return f
		}
	}
	return nil
}

// TestDispatchToOwner checks a job lands on exactly its rendezvous
// owner and the record round-trips into a usable result.
func TestDispatchToOwner(t *testing.T) {
	d, fakes := newTestDispatcher(t, 3)
	rs := testJob(1)
	res, err := d.Run(rs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.StepsModeled != 5 {
		t.Errorf("result did not round-trip: %+v", res.Report)
	}
	owner := ownerOf(campaign.Key(rs), fakes)
	for _, f := range fakes {
		want := int64(0)
		if f == owner {
			want = 1
		}
		if got := f.calls.Load(); got != want {
			t.Errorf("worker %s received %d dispatches, want %d", f.id, got, want)
		}
	}
	if st := d.Stats(); st.Dispatched != 1 || st.Retries != 0 || st.Resharded != 0 {
		t.Errorf("stats = %+v, want one clean dispatch", st)
	}
}

// TestFailoverOnWorkerError kills the owner (scripted 500s) and checks
// the job retries onto a survivor, the registry demotes the failed
// worker, and the retry/reshard counters record it.
func TestFailoverOnWorkerError(t *testing.T) {
	d, fakes := newTestDispatcher(t, 3)
	rs := testJob(2)
	owner := ownerOf(campaign.Key(rs), fakes)
	owner.fail.Store(http.StatusInternalServerError)

	res, err := d.Run(rs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.StepsModeled != 5 {
		t.Errorf("failover result malformed: %+v", res.Report)
	}
	if got := owner.calls.Load(); got != 1 {
		t.Errorf("failed owner called %d times, want 1 (no retry on the same worker)", got)
	}
	st := d.Stats()
	if st.Dispatched != 1 || st.Retries != 1 || st.Resharded != 1 {
		t.Errorf("stats = %+v, want {Dispatched:1 Retries:1 Resharded:1}", st)
	}
	if got := stateOf(d.Registry, owner.id); got != Suspect {
		t.Errorf("failed owner state = %v, want Suspect after one failure", got)
	}
}

// TestUnreachableWorkerFailsOver covers the transport-error path (the
// worker process is gone, not answering 5xx): connection refused must
// re-shard like any other failure.
func TestUnreachableWorkerFailsOver(t *testing.T) {
	d, fakes := newTestDispatcher(t, 3)
	rs := testJob(3)
	owner := ownerOf(campaign.Key(rs), fakes)
	owner.srv.Close() // SIGKILL stand-in

	if _, err := d.Run(rs); err != nil {
		t.Fatalf("job lost to a dead worker: %v", err)
	}
	if st := d.Stats(); st.Retries < 1 || st.Resharded != 1 {
		t.Errorf("stats = %+v, want at least one retry and one reshard", st)
	}
}

// TestSimErrorNotRetried checks a 422 — the worker judged the job
// deterministically bad — surfaces immediately without burning retries
// on other workers, and does not poison the worker's health.
func TestSimErrorNotRetried(t *testing.T) {
	d, fakes := newTestDispatcher(t, 3)
	rs := testJob(4)
	owner := ownerOf(campaign.Key(rs), fakes)
	owner.fail.Store(http.StatusUnprocessableEntity)

	_, err := d.Run(rs)
	if err == nil || !strings.Contains(err.Error(), "scripted failure") {
		t.Fatalf("err = %v, want the worker's 422 body", err)
	}
	var total int64
	for _, f := range fakes {
		total += f.calls.Load()
	}
	if total != 1 {
		t.Errorf("%d total dispatches for a deterministic failure, want 1", total)
	}
	if got := stateOf(d.Registry, owner.id); got != Alive {
		t.Errorf("422 demoted the worker to %v; it answered correctly and must stay Alive", got)
	}
}

// TestNoWorkers checks placement on an empty registry fails fast with
// ErrNoWorkers and counts it.
func TestNoWorkers(t *testing.T) {
	d := NewDispatcher(NewRegistry(time.Hour, 2*time.Hour), nil)
	d.Sleep = func(time.Duration) {}
	if _, err := d.Run(testJob(5)); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("empty registry: err = %v, want ErrNoWorkers", err)
	}
	if st := d.Stats(); st.NoWorkers != 1 {
		t.Errorf("stats = %+v, want NoWorkers:1", st)
	}
}
