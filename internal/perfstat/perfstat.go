// Package perfstat implements the benchmark-statistics pipeline the
// perf-tracking gate is built on: parsing standard Go benchmark output
// (the benchfmt every `go test -bench` run emits), summarizing repeated
// samples, and comparing two sets of samples with a Mann-Whitney U test
// — the same nonparametric significance test benchstat uses.
//
// The point of the statistics is that as hot-path speedups get smaller,
// a single-run percent threshold becomes noise-limited: one slow sample
// on a busy CI runner reads as a 20% "regression", and a real 5%
// regression hides inside run-to-run jitter. With N samples per side,
// the U test asks whether the two sample sets plausibly come from the
// same distribution, so the gate only fails when the shift is both
// statistically significant and practically large.
//
// Everything here is standard library only; the package deliberately
// mirrors the vocabulary of golang.org/x/perf (benchfmt, benchstat)
// without depending on it.
package perfstat

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sample is one benchmark result line: a name plus its metric values
// ("ns/op", "B/op", "allocs/op", and any custom b.ReportMetric units).
type Sample struct {
	Name    string
	Iters   int
	Metrics map[string]float64
}

// Set groups repeated samples of many benchmarks, preserving first-seen
// benchmark order.
type Set struct {
	Names  []string
	byName map[string]map[string][]float64
}

// Values returns the samples of one metric of one benchmark (nil if
// absent).
func (s *Set) Values(name, metric string) []float64 {
	if s.byName == nil {
		return nil
	}
	return s.byName[name][metric]
}

// Metrics returns the metric units recorded for a benchmark, sorted.
func (s *Set) Metrics(name string) []string {
	var ms []string
	for m := range s.byName[name] {
		ms = append(ms, m)
	}
	sort.Strings(ms)
	return ms
}

// Add appends a sample to the set.
func (s *Set) Add(sm Sample) {
	if s.byName == nil {
		s.byName = make(map[string]map[string][]float64)
	}
	if _, ok := s.byName[sm.Name]; !ok {
		s.byName[sm.Name] = make(map[string][]float64)
		s.Names = append(s.Names, sm.Name)
	}
	for unit, v := range sm.Metrics {
		s.byName[sm.Name][unit] = append(s.byName[sm.Name][unit], v)
	}
}

// cpuSuffix strips the -N GOMAXPROCS suffix go test appends to names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// ParseLine parses one benchfmt result line; ok is false for non-result
// lines (headers, PASS, unit metadata), which callers skip.
func ParseLine(line string) (Sample, bool) {
	f := strings.Fields(line)
	// A result line is: BenchmarkName iters value unit [value unit]...
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || len(f)%2 != 0 {
		return Sample{}, false
	}
	iters, err := strconv.Atoi(f[1])
	if err != nil {
		return Sample{}, false
	}
	sm := Sample{
		Name:    cpuSuffix.ReplaceAllString(f[0], ""),
		Iters:   iters,
		Metrics: make(map[string]float64, (len(f)-2)/2),
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Sample{}, false
		}
		sm.Metrics[f[i+1]] = v
	}
	return sm, true
}

// Parse reads benchfmt output, collecting every result line into a Set.
// It returns an error only on I/O failure or if no result line was found
// (which almost always means a build failure upstream of the pipe).
func Parse(r io.Reader) (*Set, error) {
	s := &Set{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if sm, ok := ParseLine(sc.Text()); ok {
			s.Add(sm)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Names) == 0 {
		return nil, fmt.Errorf("perfstat: no benchmark result lines found")
	}
	return s, nil
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the middle value (NaN for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MannWhitneyU performs the two-sided Mann-Whitney U test (Wilcoxon
// rank-sum) and returns the p-value: the probability of a rank split at
// least this extreme if both sample sets came from one distribution. It
// uses the tie-corrected normal approximation with continuity
// correction, which is the standard choice for the small equal-size
// sample sets a benchmark gate collects (and what benchstat falls back
// to beyond its exact-distribution table). Degenerate inputs (either
// side empty, or all values across both sides identical) return 1.
func MannWhitneyU(x, y []float64) float64 {
	nx, ny := float64(len(x)), float64(len(y))
	if nx == 0 || ny == 0 {
		return 1
	}

	// Rank the pooled samples, assigning tied values their average rank.
	type obs struct {
		v     float64
		fromX bool
	}
	pool := make([]obs, 0, len(x)+len(y))
	for _, v := range x {
		pool = append(pool, obs{v, true})
	}
	for _, v := range y {
		pool = append(pool, obs{v, false})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })

	n := len(pool)
	ranks := make([]float64, n)
	tieTerm := 0.0 // sum over tie groups of t^3 - t, for the variance correction
	for i := 0; i < n; {
		j := i
		for j < n && pool[j].v == pool[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}

	rx := 0.0
	for i, o := range pool {
		if o.fromX {
			rx += ranks[i]
		}
	}
	u := rx - nx*(nx+1)/2 // U statistic for x

	mean := nx * ny / 2
	variance := nx * ny / 12 * ((nx + ny + 1) - tieTerm/((nx+ny)*(nx+ny-1)))
	if variance <= 0 {
		return 1 // every pooled value identical
	}
	// Continuity correction: shrink the deviation by 1/2 toward the mean.
	dev := math.Abs(u-mean) - 0.5
	if dev < 0 {
		dev = 0
	}
	z := dev / math.Sqrt(variance)
	// Two-sided p from the standard normal survival function.
	return math.Erfc(z / math.Sqrt2)
}
