package perfstat

import (
	"fmt"
	"io"
	"math"
)

// Delta is the comparison of one benchmark metric between a baseline
// ("old") and a candidate ("new") sample set.
type Delta struct {
	Name    string
	OldMean float64
	NewMean float64
	OldN    int
	NewN    int
	Pct     float64 // percent change of the means; +Inf for 0 -> nonzero
	P       float64 // two-sided Mann-Whitney p-value
	Sig     bool    // P < alpha
	OldOnly bool    // benchmark disappeared from the candidate run
	NewOnly bool    // benchmark absent from the baseline
}

// Compare evaluates one metric across two sample sets. Benchmarks are
// reported in the candidate set's order, followed by baseline-only
// entries; benchmarks lacking the metric on both sides are skipped.
func Compare(oldSet, newSet *Set, metric string, alpha float64) []Delta {
	var out []Delta
	seen := make(map[string]bool)
	for _, name := range newSet.Names {
		seen[name] = true
		nv := newSet.Values(name, metric)
		ov := oldSet.Values(name, metric)
		if len(nv) == 0 && len(ov) == 0 {
			continue
		}
		d := Delta{Name: name, OldN: len(ov), NewN: len(nv),
			OldMean: Mean(ov), NewMean: Mean(nv)}
		switch {
		case len(ov) == 0:
			d.NewOnly = true
		case len(nv) == 0:
			d.OldOnly = true
		default:
			d.P = MannWhitneyU(ov, nv)
			d.Sig = d.P < alpha
			if d.OldMean != 0 {
				d.Pct = 100 * (d.NewMean - d.OldMean) / d.OldMean
			} else if d.NewMean != 0 {
				d.Pct = math.Inf(1)
			}
		}
		out = append(out, d)
	}
	for _, name := range oldSet.Names {
		if seen[name] {
			continue
		}
		ov := oldSet.Values(name, metric)
		if len(ov) == 0 {
			continue
		}
		out = append(out, Delta{Name: name, OldN: len(ov), OldMean: Mean(ov),
			NewMean: math.NaN(), OldOnly: true})
	}
	return out
}

// Regressed reports whether a delta should fail a gate allowing metric
// growth of up to maxGrowthPct: the shift must be statistically
// significant AND exceed the growth allowance (so significant-but-tiny
// shifts pass, as do large-but-noisy ones). A disappeared benchmark is
// always a regression — a gate that silently stops measuring is worse
// than one that fails.
func (d Delta) Regressed(maxGrowthPct float64) bool {
	if d.OldOnly {
		return true
	}
	if d.NewOnly {
		return false
	}
	return d.Sig && d.Pct > maxGrowthPct
}

// FormatTable renders deltas as the benchstat-style table the CI log
// shows: mean ± sample count per side, percent shift, and either the
// p-value or "~" when the difference is not significant at alpha.
func FormatTable(w io.Writer, deltas []Delta, metric string, alpha, maxGrowthPct float64) {
	fmt.Fprintf(w, "%-34s %16s %16s %10s %9s\n",
		"benchmark", "old "+metric, "new "+metric, "delta", "p")
	for _, d := range deltas {
		switch {
		case d.OldOnly:
			fmt.Fprintf(w, "%-34s %16s %16s %10s %9s  << MISSING\n",
				d.Name, fmtMean(d.OldMean, d.OldN), "-", "-", "-")
		case d.NewOnly:
			fmt.Fprintf(w, "%-34s %16s %16s %10s %9s\n",
				d.Name, "-", fmtMean(d.NewMean, d.NewN), "new", "-")
		default:
			sig := "~"
			if d.Sig {
				sig = fmt.Sprintf("%.3f", d.P)
			}
			flag := ""
			if d.Regressed(maxGrowthPct) {
				flag = "  << REGRESSION"
			}
			fmt.Fprintf(w, "%-34s %16s %16s %+9.1f%% %9s%s\n",
				d.Name, fmtMean(d.OldMean, d.OldN), fmtMean(d.NewMean, d.NewN),
				d.Pct, sig, flag)
		}
	}
	fmt.Fprintf(w, "(%s; alpha=%.2g, max growth %.4g%%; '~' = not significant)\n",
		metric, alpha, maxGrowthPct)
}

func fmtMean(v float64, n int) string {
	return fmt.Sprintf("%.4g (n=%d)", v, n)
}
